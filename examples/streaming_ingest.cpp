/// \file streaming_ingest.cpp
/// Dynamic data-driven operation (paper §I: CI must handle "near real-time
/// big data processing capabilities to process data streaming from remote
/// instruments"): the MERRA-2 archive grows by one assimilated state every
/// 3 hours. A CronJob fetches each new file's IVT subset from THREDDS as it
/// appears, appends it to the Ceph archive, and a segmentation pod
/// immediately scores the new slab with the trained model — keeping the
/// science product continuously current.
///
///   $ build/examples/streaming_ingest

#include <cstdio>

#include "core/nautilus.hpp"
#include "ml/cost.hpp"
#include "thredds/server.hpp"

using namespace chase;

namespace {

struct StreamState {
  core::Nautilus* bed;
  std::size_t next_file = 0;       // next archive index to ingest
  std::size_t ingested = 0;
  std::size_t segmented = 0;
  double ingest_latency_sum = 0;   // file-available -> results-in-ceph
};

}  // namespace

int main() {
  core::Nautilus bed;
  StreamState state{&bed, 0, 0, 0, 0};
  const auto* dataset = bed.thredds->dataset("M2I3NPASM");
  const util::Bytes slab = *dataset->subset_bytes("IVT");

  // A pre-trained model is already in the object store (Step 2 ran earlier).
  {
    auto client = bed.inventory.machine(bed.gpu_machines()[0]).net_node;
    auto io = bed.fs->write_file_async(client, "/models/ffn-ckpt", util::mb(100));
    sim::run_until(bed.sim, io->done);
  }

  // Every 3 simulated hours a new instantaneous state lands on the DTN; the
  // CronJob ingests and segments it.
  kube::CronJobSpec cron;
  cron.ns = "default";
  cron.name = "merra-ingest";
  cron.period = 3 * util::kHour;
  cron.job_template.completions = 1;
  kube::ContainerSpec c;
  c.name = "ingest";
  c.image = "chase/stream-ingest";
  c.requests = {2, util::gb(8), 1};
  // Capture a pointer, not a reference: the program coroutine's frame
  // would otherwise hold a dangling reference if it outlived main's scope
  // (chase_lint coro-lambda-capture).
  c.program = [st = &state, slab](kube::PodContext& ctx) -> sim::Task {
    const double available_at = ctx.sim().now();
    // Fetch the newest file's IVT subset from THREDDS.
    thredds::Aria2Client aria(ctx.sim(), *st->bed->thredds, ctx.net_node(), 4);
    thredds::DownloadStats stats;
    std::vector<std::size_t> newest{st->next_file++};
    co_await aria.download("M2I3NPASM", std::move(newest), "IVT", &stats);
    if (!stats.ok) co_return;
    // Append to the rolling archive in Ceph.
    co_await st->bed->fs->write_file(
        ctx.net_node(), "/stream/ivt-" + std::to_string(st->ingested), stats.bytes);
    st->ingested += 1;
    // Segment the new slab with the trained FFN (one 576x361 frame).
    co_await st->bed->fs->read_file(ctx.net_node(), "/models/ffn-ckpt");
    ml::FfnCostModel cost;
    co_await ctx.gpu_compute(
        cost.inference_seconds(576.0 * 361.0, cluster::GpuModel::GTX1080Ti, 1));
    co_await st->bed->fs->write_file(
        ctx.net_node(), "/stream/segments-" + std::to_string(st->segmented),
        util::mb(1));
    st->segmented += 1;
    st->ingest_latency_sum += ctx.sim().now() - available_at;
  };
  cron.job_template.pod_template.containers.push_back(std::move(c));
  auto handle = bed.kube->create_cron_job(cron);
  if (!handle.ok()) {
    std::printf("cron rejected: %s\n", handle.error.c_str());
    return 1;
  }

  // Run two simulated days of continuous operation.
  std::printf("streaming MERRA-2 ingest: one %s IVT slab every 3 hours...\n\n",
              util::format_bytes(static_cast<double>(slab)).c_str());
  bed.sim.run(2 * util::kDay + 60.0);
  bed.kube->delete_cron_job("default", "merra-ingest");

  std::printf("after 48 simulated hours:\n");
  std::printf("  cron firings          : %llu (%llu skipped)\n",
              static_cast<unsigned long long>(handle.value->fired),
              static_cast<unsigned long long>(handle.value->skipped));
  std::printf("  slabs ingested        : %zu (%s in /stream/)\n", state.ingested,
              util::format_bytes(static_cast<double>(bed.fs->bytes_under("/stream/")))
                  .c_str());
  std::printf("  slabs segmented       : %zu\n", state.segmented);
  if (state.segmented > 0) {
    std::printf("  mean ingest-to-product: %s (vs 3h data cadence)\n",
                util::format_duration(state.ingest_latency_sum /
                                      static_cast<double>(state.segmented))
                    .c_str());
  }
  std::printf("\nnear-real-time: the science product trails the instrument by\n"
              "seconds-to-minutes rather than by a batch re-download cycle.\n");
  return state.segmented >= 15 ? 0 : 1;
}
