/// \file quickstart.cpp
/// Quickstart: build a small CHASE-CI testbed, submit a GPU training Job
/// through the Kubernetes substrate, watch it get scheduled onto a FIONA8,
/// and read the measurements back from the monitoring layer.
///
///   $ build/examples/quickstart

#include <cstdio>

#include "core/nautilus.hpp"

using namespace chase;

namespace {

/// A containerized workload: pull data from Ceph, crunch on the GPU, write
/// results back. Programs are coroutines over the simulated world.
kube::Program training_program(core::Nautilus* bed) {
  return [bed](kube::PodContext& ctx) -> sim::Task {
    std::printf("[%7.1fs] pod %s running on %s (GPUs:",
                ctx.sim().now(), ctx.pod().meta.name.c_str(),
                bed->inventory.machine(ctx.machine()).spec.name.c_str());
    for (int gpu : ctx.pod().gpu_ids) std::printf(" %d", gpu);
    std::printf(")\n");

    co_await bed->fs->read_file(ctx.net_node(), "/datasets/train.h5");
    std::printf("[%7.1fs]   dataset loaded from CephFS\n", ctx.sim().now());

    co_await ctx.gpu_compute(2400.0);  // 2400 GPU-seconds across the pod's GPUs
    std::printf("[%7.1fs]   training done (%.1f effective TFLOPS available)\n",
                ctx.sim().now(), ctx.gpu_tflops());

    co_await bed->fs->write_file(ctx.net_node(), "/models/quickstart.ckpt",
                                 util::mb(250));
    std::printf("[%7.1fs]   checkpoint written to the Ceph Object Store\n",
                ctx.sim().now());
  };
}

}  // namespace

int main() {
  // A Nautilus testbed: PRP network, FIONA8 GPU nodes, Rook/Ceph storage,
  // Kubernetes orchestration, Prometheus/Grafana-style monitoring.
  core::Nautilus bed;
  std::fputs(bed.describe().c_str(), stdout);

  // Stage a dataset into the distributed filesystem.
  {
    auto client = bed.inventory.machine(bed.gpu_machines()[0]).net_node;
    auto io = bed.fs->write_file_async(client, "/datasets/train.h5", util::gb(4));
    sim::run_until(bed.sim, io->done);
    std::printf("\n[%7.1fs] staged 4GB dataset (%zu objects in Ceph)\n",
                bed.sim.now(), bed.ceph->object_count(bed.fs->pool()));
  }

  // Submit a 4-GPU training Job.
  kube::JobSpec job;
  job.ns = "default";
  job.name = "quickstart-train";
  kube::ContainerSpec container;
  container.image = "tensorflow/tensorflow:gpu";
  container.image_size = util::gb(2);
  container.requests = {4, util::gb(32), 4};
  container.program = training_program(&bed);
  job.pod_template.containers.push_back(std::move(container));

  auto created = bed.kube->create_job(job);
  if (!created.ok()) {
    std::printf("job rejected: %s\n", created.error.c_str());
    return 1;
  }
  std::printf("[%7.1fs] job submitted (image pull + scheduling next)\n", bed.sim.now());
  sim::run_until(bed.sim, created.value->done);

  std::printf("[%7.1fs] job %s: %d succeeded / %d failed\n", bed.sim.now(),
              created.value->complete ? "complete" : "NOT complete",
              created.value->succeeded, created.value->failed);
  std::printf("\nCluster allocation after completion: %s\n",
              bed.kube->total_allocated().to_string().c_str());
  std::printf("Model checkpoint in Ceph: %s (%s)\n",
              bed.fs->exists("/models/quickstart.ckpt") ? "yes" : "no",
              util::format_bytes(
                  static_cast<double>(bed.fs->file_size("/models/quickstart.ckpt")
                                          .value_or(0)))
                  .c_str());
  return created.value->complete ? 0 : 1;
}
