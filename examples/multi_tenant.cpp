/// \file multi_tenant.cpp
/// Multi-tenant namespace management (paper §IV and §VII): several research
/// groups — the atmospheric-science team, CARL-UCI (neuromodulated
/// reinforcement learning) and ECEWCSNG (autonomous-vehicle perception) —
/// share the same hardware through namespaces, CILogon federated login,
/// namespace-admin RBAC, and resource quotas.
///
///   $ build/examples/multi_tenant

#include <cstdio>

#include "core/nautilus.hpp"

using namespace chase;

namespace {

kube::Program gpu_burn(double gpu_seconds) {
  return [gpu_seconds](kube::PodContext& ctx) -> sim::Task {
    co_await ctx.gpu_compute(gpu_seconds);
  };
}

void submit_job(core::Nautilus& bed, const std::string& ns, const std::string& name,
                int pods, int gpus_per_pod, const auth::Token& token) {
  kube::JobSpec job;
  job.ns = ns;
  job.name = name;
  job.completions = pods;
  job.parallelism = pods;
  kube::ContainerSpec c;
  c.requests = {2, util::gb(16), gpus_per_pod};
  c.program = gpu_burn(3600.0 * gpus_per_pod);
  job.pod_template.containers.push_back(std::move(c));
  auto result = bed.kube->create_job(job, &token);
  std::printf("  %-10s submits %-14s (%d pods x %d GPUs): %s\n", ns.c_str(),
              name.c_str(), pods, gpus_per_pod,
              result.ok() ? "accepted" : result.error.c_str());
}

}  // namespace

int main() {
  core::Nautilus bed;
  bed.kube->enable_auth(&bed.sso, &bed.rbac);

  // --- namespaces for three research communities ------------------------------
  for (const char* ns : {"atmos-connect", "carl-uci", "ecewcsng"}) {
    bed.kube->create_namespace(ns);
  }
  // Quotas: each group gets a slice of the 128 GPUs.
  kube::ResourceQuota quota;
  quota.hard = {200, util::gb(1500), 40};
  bed.kube->set_quota("atmos-connect", quota);
  quota.hard = {100, util::gb(800), 24};
  bed.kube->set_quota("carl-uci", quota);
  quota.hard = {100, util::gb(800), 24};
  bed.kube->set_quota("ecewcsng", quota);

  // --- CILogon federated login ("claim" your campus identity) -------------------
  auto sellars = *bed.sso.login("ucsd.edu", "ssellars");
  auto krichmar = *bed.sso.login("uci.edu", "jkrichmar");
  auto student = *bed.sso.login("ucsd.edu", "grad-student");

  // PIs become namespace administrators; they add their group members.
  bed.rbac.grant_admin("atmos-connect", sellars.identity);
  bed.rbac.grant_admin("carl-uci", krichmar.identity);
  bed.rbac.grant_member("atmos-connect", student.identity);

  std::printf("namespaces + quotas configured; identities federated via CILogon\n\n");

  // --- authorized and unauthorized submissions -----------------------------------
  submit_job(bed, "atmos-connect", "ffn-inference", 10, 2, sellars);
  submit_job(bed, "carl-uci", "neuromod-rl", 6, 4, krichmar);
  submit_job(bed, "atmos-connect", "validation", 4, 2, student);
  // Cross-namespace attempts are denied by RBAC:
  submit_job(bed, "carl-uci", "sneaky", 1, 8, student);
  submit_job(bed, "ecewcsng", "freeride", 1, 8, krichmar);

  // Quota protects the shared pool: this exceeds atmos-connect's 40 GPUs.
  // (Admission is per pod, as in Kubernetes: the Job is accepted, but its
  // pods are rejected once the namespace hits the quota ceiling.)
  submit_job(bed, "atmos-connect", "too-big", 30, 1, sellars);

  bed.sim.run(600.0);
  auto too_big = bed.kube->get_job("atmos-connect", "too-big");
  std::printf("\n  'too-big' job state: %s (namespace GPU quota exhausted)\n",
              too_big->failed_state ? "failed at quota ceiling" : "running");
  std::printf("\ncluster allocation at t=10m: %s\n",
              bed.kube->total_allocated().to_string().c_str());
  for (const char* ns : {"atmos-connect", "carl-uci"}) {
    const auto& info = bed.kube->get_namespace(ns);
    std::printf("  %-14s using %s of quota %s\n", ns, info.used.to_string().c_str(),
                info.quota.hard.to_string().c_str());
  }

  // Namespaces are virtual clusters over the same hardware: count the
  // FIONA8s in use and those hosting pods from more than one tenant
  // ("even though two containers may be running on the same physical
  // machine... they are isolated from one another", §IV).
  int busy_nodes = 0, shared_nodes = 0;
  for (auto machine : bed.gpu_machines()) {
    std::set<std::string> tenants;
    for (const auto& pod : bed.kube->node(machine).pods) {
      tenants.insert(pod->meta.ns);
    }
    busy_nodes += !tenants.empty();
    shared_nodes += tenants.size() > 1;
  }
  std::printf("\n%d of 16 FIONA8s busy; %d host pods from multiple namespaces\n"
              "(the spreading scheduler co-locates tenants only under pressure)\n",
              busy_nodes, shared_nodes);

  bed.sim.run();
  std::printf("all jobs drained at t=%s\n",
              util::format_duration(bed.sim.now()).c_str());
  return 0;
}
