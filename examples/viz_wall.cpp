/// \file viz_wall.cpp
/// The remote visualization demonstration from paper §VII: a CalVR-style
/// OpenGL application scheduled across 11 remote GPU nodes at UCSD driving
/// displays at UC Merced, steered by a motion-tracked wand — "with
/// unnoticeable latency" over the PRP. Kubernetes node labels target the
/// GPU nodes; the render wall streams tiles over the simulated WAN.
///
///   $ build/examples/viz_wall

#include <cstdio>

#include "core/nautilus.hpp"
#include "viz/renderwall.hpp"

using namespace chase;

int main() {
  core::Nautilus bed;

  // Target 11 GPU nodes at UCSD via node labels (the paper: "Kubernetes
  // object labeling conventions enabled straightforward targeting").
  std::vector<net::NodeId> render_nodes;
  std::vector<std::string> names;
  for (auto machine : bed.gpu_machines()) {
    const auto& m = bed.inventory.machine(machine);
    if (m.spec.site == "UCM") continue;  // render remotely, display locally
    render_nodes.push_back(m.net_node);
    names.push_back(m.spec.name);
    if (render_nodes.size() == 11) break;
  }
  std::printf("render nodes (%zu):", render_nodes.size());
  for (const auto& n : names) std::printf(" %s", n.c_str());
  std::printf("\n");

  // The SunCAVE display wall and the tracked wand live at UC Merced.
  auto ucm = bed.site_switch(6);  // "UCM"
  auto display = bed.net.add_node("suncave-display");
  bed.net.add_link(display, ucm, util::gbit_per_s(40), 1e-4);
  auto wand = bed.net.add_node("tracked-wand");
  bed.net.add_link(wand, ucm, util::gbit_per_s(1), 1e-4);

  viz::RenderWallOptions options;
  options.tiles = static_cast<int>(render_nodes.size());
  options.frame_rate_hz = 30.0;
  viz::RenderWall wall(bed.sim, bed.net, options);

  std::printf("driving %d tiles at %.0f Hz across the PRP (San Diego -> Merced)...\n\n",
              options.tiles, options.frame_rate_hz);
  auto done = sim::make_event();
  wall.run(render_nodes, display, wand, 600, done);
  sim::run_until(bed.sim, done);

  const auto report = wall.report();
  std::printf("frames rendered : %llu (20 seconds of interaction)\n",
              static_cast<unsigned long long>(report.frames));
  std::printf("latency mean    : %.1f ms\n", report.mean_latency * 1e3);
  std::printf("latency p50     : %.1f ms\n", report.p50_latency * 1e3);
  std::printf("latency p99     : %.1f ms\n", report.p99_latency * 1e3);
  std::printf("latency max     : %.1f ms\n", report.max_latency * 1e3);
  std::printf("on-time @30Hz   : %.1f%%\n", report.on_time_fraction * 100);
  std::printf("\n\"unnoticeable latency\": %s (p99 %s 80ms perception threshold)\n",
              report.p99_latency < 0.08 ? "reproduced" : "NOT reproduced",
              report.p99_latency < 0.08 ? "under" : "over");
  return report.p99_latency < 0.08 ? 0 : 1;
}
