/// \file connect_workflow.cpp
/// The paper's atmospheric-science case study end to end, with the *real* ML
/// algorithms at laptop scale:
///
///   1. generate a synthetic MERRA-2-like IVT field (an "archive" of
///      3-hourly global states with embedded atmospheric-river events),
///   2. run the CONNECT baseline (threshold + space-time connected
///      components with life-cycle tracking — the paper's prior MATLAB
///      approach),
///   3. train a real Flood-Filling Network on a labelled training window,
///   4. run FFN flood-fill inference on a held-out window,
///   5. evaluate both against ground truth and visualize a slice,
///   6. then run the same 4-step workflow on the simulated Nautilus testbed
///      to show how the full-scale execution is orchestrated.
///
///   $ build/examples/connect_workflow

#include <cstdio>

#include "core/connect_workflow.hpp"
#include "core/nautilus.hpp"
#include "ml/connect.hpp"
#include "ml/eval.hpp"
#include "ml/ffn.hpp"
#include "ml/ffn_infer.hpp"
#include "ml/synth.hpp"
#include "util/table.hpp"
#include "viz/ascii_render.hpp"

using namespace chase;

int main() {
  std::printf("== Part 1: the science (real algorithms, laptop scale) ==\n\n");

  // --- synthetic MERRA-2 IVT archive -----------------------------------------
  ml::IvtFieldParams train_params;
  train_params.nx = 96;
  train_params.ny = 64;
  train_params.nt = 32;
  train_params.events = 5;
  train_params.seed = 11;
  auto training = ml::generate_ivt(train_params);

  auto test_params = train_params;
  test_params.seed = 99;  // held-out window (train/test separation, §III-C)
  auto held_out = ml::generate_ivt(test_params);
  std::printf("generated IVT volumes: %dx%dx%d, %d embedded AR events each\n\n",
              train_params.nx, train_params.ny, train_params.nt, train_params.events);

  // --- CONNECT baseline: segment + track life cycles ---------------------------
  ml::ConnectParams cp;
  cp.threshold = test_params.label_threshold;
  cp.min_voxels = 16;
  auto connect = ml::connect_label(held_out.ivt, cp);
  auto cstats = ml::summarize(connect);
  std::printf("CONNECT found %zu objects; mean life cycle %.1f steps (%.1f hours), "
              "mean pathway %.1f grid units\n",
              cstats.object_count, cstats.mean_duration, cstats.mean_duration * 3,
              cstats.mean_track_length);
  for (const auto& obj : connect.objects) {
    std::printf("  object %d: genesis t=%d, termination t=%d, %zu voxels, "
                "peak IVT %.0f kg/m/s\n",
                obj.id, obj.t_start, obj.t_end, obj.voxels, obj.max_intensity);
  }

  // --- FFN: train on the labelled window ---------------------------------------
  std::printf("\ntraining the Flood-Filling Network...\n");
  ml::FfnConfig cfg;
  cfg.channels = 6;
  cfg.modules = 1;
  cfg.fov = 7;
  ml::FfnModel model(cfg);
  ml::FfnTrainer::Options topts;
  topts.steps = 600;
  topts.learning_rate = 0.02f;
  ml::FfnTrainer trainer(model, training.ivt, training.truth, topts);
  const float loss = trainer.train();
  std::printf("  %d SGD steps, %zu parameters, final loss %.3f\n", topts.steps,
              model.parameter_count(), loss);

  // --- FFN flood-fill inference on the held-out window --------------------------
  ml::InferenceOptions iopts;
  iopts.seed_threshold = 300.f;
  iopts.move_threshold = 0.7f;
  iopts.segment_threshold = 0.5f;
  auto inference = ml::ffn_inference(model, held_out.ivt, iopts);
  std::printf("  inference: %d objects from %llu FOV moves\n", inference.objects,
              static_cast<unsigned long long>(inference.fov_moves));

  // --- evaluation -----------------------------------------------------------------
  auto ffn_m = ml::voxel_metrics(inference.segments, held_out.truth);
  auto con_m = ml::voxel_metrics(connect.labels, held_out.truth);
  util::Table table({"Method", "Precision", "Recall", "IoU"});
  table.add_row({"CONNECT (threshold)", util::format_double(con_m.precision(), 3),
                 util::format_double(con_m.recall(), 3),
                 util::format_double(con_m.iou(), 3)});
  table.add_row({"FFN (learned)", util::format_double(ffn_m.precision(), 3),
                 util::format_double(ffn_m.recall(), 3),
                 util::format_double(ffn_m.iou(), 3)});
  std::fputs(table.render("\nSegmentation quality vs ground truth").c_str(), stdout);

  // --- Step-4-style visualization ----------------------------------------------
  const int slice = held_out.events.empty() ? 0 : held_out.events[0].t_start + 2;
  std::printf("\nIVT field, t=%d (3-hourly step):\n", slice);
  std::fputs(viz::render_field_slice(held_out.ivt, slice).c_str(), stdout);
  std::printf("\nFFN segmentation of the same slice:\n");
  std::fputs(viz::render_label_slice(inference.segments, slice).c_str(), stdout);

  // --- Part 2: same workflow on the simulated infrastructure ----------------------
  std::printf("\n== Part 2: the infrastructure (simulated Nautilus, 1/100 scale) ==\n\n");
  core::Nautilus bed;
  core::ConnectWorkflowParams params;
  params.data_fraction = 0.01;
  params.inference_gpus = 16;
  core::ConnectWorkflow cwf(bed, params);
  auto done = cwf.workflow().start(bed.sim);
  sim::run_until(bed.sim, done);
  std::fputs(cwf.workflow().summary_table().c_str(), stdout);
  std::printf("\n(At full scale this is Table I of the paper — see bench_table1.)\n");
  return 0;
}
