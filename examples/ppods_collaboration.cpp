/// \file ppods_collaboration.cpp
/// The PPoDS methodology in action (paper §VI): a data-science team
/// collaboratively develops the CONNECT workflow's download step. Each
/// developer owns a step, runs measured trials of alternative
/// implementations, validates them against shared expectations, and the
/// session board keeps "the workflow steps centralized in one location
/// where every one working on the project could see them".
///
///   $ build/examples/ppods_collaboration

#include <cstdio>

#include "core/nautilus.hpp"
#include "core/ppods.hpp"
#include "thredds/server.hpp"

using namespace chase;

namespace {

/// The download-step implementation under development, parameterized by the
/// knobs the paper's team actually turned: worker count and per-worker
/// Aria2 connections.
wf::StepSpec download_step(core::Nautilus* bed, int trial_id, int workers,
                           int connections) {
  const std::string job_name = "download-t" + std::to_string(trial_id);
  return wf::StepSpec{
      "download", "download",
      [bed, job_name, workers, connections](wf::StepContext* ctx) -> sim::Task {
        kube::JobSpec job;
        job.ns = ctx->ns();
        job.name = job_name;
        job.labels = ctx->step_labels();
        job.completions = workers;
        job.parallelism = workers;
        kube::ContainerSpec c;
        c.requests = {3, util::gb(16), 0};
        const int files_per_worker = 400 / workers;
        c.program = [bed, connections, files_per_worker](kube::PodContext& pctx)
            -> sim::Task {
          thredds::Aria2Client aria(pctx.sim(), *bed->thredds, pctx.net_node(),
                                    connections);
          std::vector<std::size_t> files(static_cast<std::size_t>(files_per_worker));
          for (std::size_t i = 0; i < files.size(); ++i) {
            files[i] = i * 7 + static_cast<std::size_t>(pctx.pod().meta.uid) * 1000;
          }
          thredds::DownloadStats stats;
          co_await aria.download("M2I3NPASM", std::move(files), "IVT", &stats);
        };
        job.pod_template.containers.push_back(std::move(c));
        auto handle = ctx->kube().create_job(job).value;
        co_await handle->done->wait(ctx->sim());
        ctx->add_data(400.0 * 2.19e6);
      }};
}

}  // namespace

int main() {
  core::Nautilus bed;
  wf::PpodsSession session(*bed.kube, bed.metrics, "connect-dev", "CONNECT workflow");

  // The team (paper authors' roles): Kyle owns the download step.
  session.register_step("download", "kyle");
  session.register_step("training", "isaac");
  session.register_step("inference", "scott");

  // Shared acceptance criteria for the download step.
  session.add_expectation("download", "moves the full 400-file sample",
                          [](const wf::StepReport& r) { return r.data_bytes >= 8e8; });
  session.add_expectation("download", "completes in under 4 minutes",
                          [](const wf::StepReport& r) { return r.duration() < 240.0; });

  struct TrialPlan {
    int workers, connections;
    const char* notes;
  };
  const TrialPlan plan[] = {
      {1, 1, "baseline: serial wget-style"},
      {1, 20, "single worker, aria2 -x20"},
      {4, 20, "scale out: 4 workers"},
      {10, 20, "the paper's configuration"},
  };
  int trial_id = 0;
  for (const auto& trial : plan) {
    auto done = session.run_trial(
        download_step(&bed, trial_id++, trial.workers, trial.connections), trial.notes);
    sim::run_until(bed.sim, done);
    const auto& recorded = session.trials().back();
    std::printf("trial %d (%-28s): %-8s %s\n", recorded.number, trial.notes,
                util::format_duration(recorded.report.duration()).c_str(),
                recorded.passed()
                    ? "PASS"
                    : ("FAIL: " + recorded.failed_expectations.front()).c_str());
  }

  std::printf("\n%s\n", session.render_board().c_str());
  std::printf("download step improved x%.1f across %zu trials\n",
              session.improvement("download"), session.trials_of("download").size());
  std::printf("\n(training and inference steps await their owners — the board\n"
              " shows per-step state for the whole team)\n");
  return 0;
}
