/// \file failure_recovery.cpp
/// Self-healing (paper §V): "The CHASE-CI infrastructure is very dynamic in
/// the fact that nodes can join and leave the cluster at any time... If a
/// node is taken offline the pods on that node will be rescheduled on
/// another node." This example kills a FIONA8 mid-job and a storage FIONA
/// mid-recovery, and shows the Job controller and Ceph healing both
/// converge.
///
///   $ build/examples/failure_recovery

#include <cstdio>
#include <set>

#include "core/nautilus.hpp"

using namespace chase;

int main() {
  core::Nautilus bed;

  // Stage data into Ceph (2x replicated).
  auto client = bed.inventory.machine(bed.gpu_machines()[0]).net_node;
  for (int i = 0; i < 32; ++i) {
    bed.fs->write_file_async(client, "/data/chunk-" + std::to_string(i), util::gb(4));
  }
  bed.sim.run();
  std::printf("[%6.0fs] staged %zu files, Ceph health: %d/%d PGs clean\n",
              bed.sim.now(), bed.fs->list("/data/").size(),
              bed.ceph->health().pgs_clean, bed.ceph->health().pgs_total);

  // A long-running 12-pod GPU job.
  kube::JobSpec job;
  job.ns = "default";
  job.name = "resilient";
  job.completions = 12;
  job.parallelism = 12;
  kube::ContainerSpec c;
  c.requests = {4, util::gb(24), 4};
  c.program = [bed = &bed](kube::PodContext& ctx) -> sim::Task {
    co_await bed->fs->read_file(ctx.net_node(), "/data/chunk-0");
    co_await ctx.gpu_compute(4 * 3600.0 * 4);  // 4 hours on 4 GPUs
  };
  job.pod_template.containers.push_back(std::move(c));
  auto handle = bed.kube->create_job(job).value;
  bed.sim.run(1800.0);

  std::set<int> used_nodes;
  for (const auto& pod : bed.kube->list_pods("default", {{"job", "resilient"}})) {
    if (pod->phase == kube::PodPhase::Running) used_nodes.insert(pod->node);
  }
  std::printf("[%6.0fs] job running: %d active pods across %zu FIONA8s\n",
              bed.sim.now(), handle->active, used_nodes.size());

  // --- kill a GPU node mid-run ---------------------------------------------------
  const auto victim = *used_nodes.begin();
  std::printf("[%6.0fs] !!! taking %s offline\n", bed.sim.now(),
              bed.inventory.machine(victim).spec.name.c_str());
  bed.inventory.set_up(victim, false);
  bed.sim.run(bed.sim.now() + 60.0);

  int evicted = 0, running = 0;
  for (const auto& pod : bed.kube->list_pods("default", {{"job", "resilient"}})) {
    evicted += pod->reason == "NodeLost";
    running += pod->phase == kube::PodPhase::Running;
  }
  std::printf("[%6.0fs] node controller evicted %d pods; %d running again "
              "(rescheduled elsewhere)\n",
              bed.sim.now(), evicted, running);

  // --- kill a storage node too ----------------------------------------------------
  std::printf("[%6.0fs] !!! taking %s offline (an OSD host)\n", bed.sim.now(),
              bed.inventory.machine(bed.storage_machines()[2]).spec.name.c_str());
  bed.inventory.set_up(bed.storage_machines()[2], false);
  auto health = bed.ceph->health();
  std::printf("[%6.0fs] Ceph: %d PGs recovering/degraded, data re-replicating\n",
              bed.sim.now(), health.pgs_recovering + health.pgs_degraded);

  bed.sim.run(bed.sim.now() + 2 * util::kHour);
  health = bed.ceph->health();
  std::printf("[%6.0fs] Ceph healed: %d/%d PGs clean\n", bed.sim.now(),
              health.pgs_clean, health.pgs_total);

  // --- node comes back ---------------------------------------------------------------
  bed.inventory.set_up(victim, true);
  std::printf("[%6.0fs] %s rejoined the cluster (schedulable again)\n", bed.sim.now(),
              bed.inventory.machine(victim).spec.name.c_str());

  sim::run_until(bed.sim, handle->done);
  std::printf("[%6.0fs] job %s: %d succeeded, %d evictions absorbed, %d failures\n",
              bed.sim.now(), handle->complete ? "COMPLETE" : "failed",
              handle->succeeded, evicted, handle->failed);

  // Files written before the failures are still readable.
  auto io = bed.fs->read_file_async(client, "/data/chunk-17");
  sim::run_until(bed.sim, io->done);
  std::printf("[%6.0fs] post-failure read of /data/chunk-17: %s\n", bed.sim.now(),
              io->ok ? "OK (replica survived)" : "FAILED");
  return handle->complete && io->ok ? 0 : 1;
}
