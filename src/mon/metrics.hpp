#pragma once
/// \file metrics.hpp
/// The Prometheus/Grafana substitute (paper §II-A, Figures 3–6): a metric
/// registry with labelled time series, pull-style probes sampled on a fixed
/// period by a simulation process, push-style counters/gauges, and the query
/// functions (max/avg/rate over time) the benchmark reports use to regenerate
/// the paper's dashboard panels.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/event.hpp"
#include "sim/simulation.hpp"
#include "util/chart.hpp"

namespace chase::mon {

using Labels = std::map<std::string, std::string>;

struct SeriesKey {
  std::string name;
  Labels labels;
  bool operator<(const SeriesKey& o) const {
    if (name != o.name) return name < o.name;
    return labels < o.labels;
  }
};

/// One metric's samples, ordered by time.
class TimeSeries {
 public:
  void append(double t, double v) { samples_.emplace_back(t, v); }
  const std::vector<std::pair<double, double>>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }

  double last() const { return samples_.empty() ? 0.0 : samples_.back().second; }
  double max_over_time() const;
  double min_over_time() const;
  double avg_over_time() const;
  /// Average increase per second between first and last sample (for
  /// cumulative counters).
  double rate() const;
  /// Value at or before `t` (step interpolation); 0 before first sample.
  double value_at(double t) const;
  /// Quantile of the sampled values, q in [0, 1].
  double quantile_over_time(double q) const;

 private:
  std::vector<std::pair<double, double>> samples_;
};

/// Threshold alert over selected series (the Grafana alerting model): fires
/// when the aggregate (sum across matching series) crosses the threshold.
struct AlertRule {
  std::string name;
  std::string metric;
  Labels selector;
  /// true: fire when sum > threshold; false: fire when sum < threshold.
  bool above = true;
  double threshold = 0.0;
};

struct AlertState {
  AlertRule rule;
  bool firing = false;
  double since = 0.0;       // when the current firing episode began
  int transitions = 0;      // count of fired events
};

class Registry {
 public:
  /// Register a pull-style probe: sampled every period by the sampler task.
  void register_probe(std::string name, Labels labels, std::function<double()> fn);
  /// Drop a probe (e.g. when a pod terminates). Its recorded series remains.
  void unregister_probe(const std::string& name, const Labels& labels);

  /// Push a sample directly (event-style metrics).
  void record(const std::string& name, const Labels& labels, double t, double v);

  /// Get (or create) a series.
  TimeSeries& series(const std::string& name, const Labels& labels = {});
  const TimeSeries* find(const std::string& name, const Labels& labels = {}) const;

  /// All series whose metric name matches and whose labels contain `selector`.
  std::vector<std::pair<SeriesKey, const TimeSeries*>> select(
      const std::string& name, const Labels& selector = {}) const;

  /// Sum across selected series evaluated at time t.
  double sum_at(const std::string& name, const Labels& selector, double t) const;
  /// Max over time of the per-timestamp sum across selected series.
  /// (Assumes series were sampled on a common grid, which the sampler does.)
  double max_sum(const std::string& name, const Labels& selector) const;

  /// Spawn a process sampling all probes every `period` seconds until `stop`
  /// fires (sampling once more after it fires, then exiting).
  void start_sampler(sim::Simulation& sim, double period, sim::EventPtr stop);

  /// Take one sample of every probe right now (also evaluates alert rules).
  void sample_now(double t);

  /// Register an alert rule; evaluated at every sample. The alert's boolean
  /// state is recorded as series "alert_firing"{alert=<name>}.
  void add_alert(AlertRule rule);
  const std::vector<AlertState>& alerts() const { return alerts_; }
  /// Names of alerts currently firing.
  std::vector<std::string> firing_alerts() const;

  /// Render selected series as an ASCII chart (the "Grafana panel").
  std::string chart(const std::string& title, const std::string& value_label,
                    const std::string& name, const Labels& selector = {},
                    double scale = 1.0) const;

  /// Export selected series to CSV at `path` (long format:
  /// series,time,value).
  void export_csv(const std::string& path, const std::string& name,
                  const Labels& selector = {}) const;

 private:
  struct Probe {
    SeriesKey key;
    std::function<double()> fn;
  };
  std::map<SeriesKey, TimeSeries> series_;
  std::vector<Probe> probes_;
  std::vector<AlertState> alerts_;
};

/// Format a series key as name{k=v,...} for legends.
std::string key_to_string(const SeriesKey& key);

}  // namespace chase::mon
