#include "mon/metrics.hpp"

#include <algorithm>
#include <set>

#include "util/csv.hpp"
#include "util/units.hpp"

namespace chase::mon {

double TimeSeries::max_over_time() const {
  double m = 0.0;
  bool first = true;
  for (auto [t, v] : samples_) {
    m = first ? v : std::max(m, v);
    first = false;
  }
  return m;
}

double TimeSeries::min_over_time() const {
  double m = 0.0;
  bool first = true;
  for (auto [t, v] : samples_) {
    m = first ? v : std::min(m, v);
    first = false;
  }
  return m;
}

double TimeSeries::avg_over_time() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (auto [t, v] : samples_) s += v;
  return s / static_cast<double>(samples_.size());
}

double TimeSeries::rate() const {
  if (samples_.size() < 2) return 0.0;
  const auto& [t0, v0] = samples_.front();
  const auto& [t1, v1] = samples_.back();
  if (t1 <= t0) return 0.0;
  return (v1 - v0) / (t1 - t0);
}

double TimeSeries::quantile_over_time(double q) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> values;
  values.reserve(samples_.size());
  for (auto [t, v] : samples_) values.push_back(v);
  std::sort(values.begin(), values.end());
  q = std::min(std::max(q, 0.0), 1.0);
  const auto index = static_cast<std::size_t>(q * static_cast<double>(values.size() - 1));
  return values[index];
}

double TimeSeries::value_at(double t) const {
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](double lhs, const std::pair<double, double>& s) { return lhs < s.first; });
  if (it == samples_.begin()) return 0.0;
  return std::prev(it)->second;
}

void Registry::register_probe(std::string name, Labels labels,
                              std::function<double()> fn) {
  probes_.push_back(Probe{SeriesKey{std::move(name), std::move(labels)}, std::move(fn)});
}

void Registry::unregister_probe(const std::string& name, const Labels& labels) {
  const SeriesKey key{name, labels};
  probes_.erase(std::remove_if(probes_.begin(), probes_.end(),
                               [&](const Probe& p) {
                                 return !(p.key < key) && !(key < p.key);
                               }),
                probes_.end());
}

void Registry::record(const std::string& name, const Labels& labels, double t,
                      double v) {
  series(name, labels).append(t, v);
}

TimeSeries& Registry::series(const std::string& name, const Labels& labels) {
  return series_[SeriesKey{name, labels}];
}

const TimeSeries* Registry::find(const std::string& name, const Labels& labels) const {
  auto it = series_.find(SeriesKey{name, labels});
  return it == series_.end() ? nullptr : &it->second;
}

std::vector<std::pair<SeriesKey, const TimeSeries*>> Registry::select(
    const std::string& name, const Labels& selector) const {
  std::vector<std::pair<SeriesKey, const TimeSeries*>> out;
  out.reserve(series_.size());
  for (const auto& [key, ts] : series_) {
    if (key.name != name) continue;
    bool match = true;
    for (const auto& [k, v] : selector) {
      auto it = key.labels.find(k);
      if (it == key.labels.end() || it->second != v) {
        match = false;
        break;
      }
    }
    if (match) out.emplace_back(key, &ts);
  }
  return out;
}

double Registry::sum_at(const std::string& name, const Labels& selector,
                        double t) const {
  double s = 0.0;
  for (const auto& [key, ts] : select(name, selector)) s += ts->value_at(t);
  return s;
}

double Registry::max_sum(const std::string& name, const Labels& selector) const {
  auto sel = select(name, selector);
  std::set<double> grid;
  for (const auto& [key, ts] : sel) {
    for (auto [t, v] : ts->samples()) grid.insert(t);
  }
  double best = 0.0;
  for (double t : grid) best = std::max(best, sum_at(name, selector, t));
  return best;
}

void Registry::start_sampler(sim::Simulation& sim, double period, sim::EventPtr stop) {
  auto loop = [](Registry* self, sim::Simulation* s, double p,
                 sim::EventPtr halt) -> sim::Task {
    while (true) {
      self->sample_now(s->now());
      if (halt->fired()) co_return;
      co_await s->sleep(p);
    }
  };
  sim.spawn(loop(this, &sim, period, std::move(stop)));
}

void Registry::sample_now(double t) {
  for (const auto& probe : probes_) {
    series_[probe.key].append(t, probe.fn());
  }
  for (auto& alert : alerts_) {
    const double value = sum_at(alert.rule.metric, alert.rule.selector, t);
    const bool fire =
        alert.rule.above ? value > alert.rule.threshold : value < alert.rule.threshold;
    if (fire && !alert.firing) {
      alert.firing = true;
      alert.since = t;
      alert.transitions += 1;
    } else if (!fire && alert.firing) {
      alert.firing = false;
    }
    record("alert_firing", {{"alert", alert.rule.name}}, t, alert.firing ? 1.0 : 0.0);
  }
}

void Registry::add_alert(AlertRule rule) {
  alerts_.push_back(AlertState{std::move(rule), false, 0.0, 0});
}

std::vector<std::string> Registry::firing_alerts() const {
  std::vector<std::string> out;
  for (const auto& alert : alerts_) {
    if (alert.firing) out.push_back(alert.rule.name);
  }
  return out;
}

std::string key_to_string(const SeriesKey& key) {
  std::string s = key.name;
  if (!key.labels.empty()) {
    s += "{";
    bool first = true;
    for (const auto& [k, v] : key.labels) {
      if (!first) s += ",";
      s += k + "=" + v;
      first = false;
    }
    s += "}";
  }
  return s;
}

std::string Registry::chart(const std::string& title, const std::string& value_label,
                            const std::string& name, const Labels& selector,
                            double scale) const {
  util::AsciiChart chart;
  for (const auto& [key, ts] : select(name, selector)) {
    util::Series s;
    s.name = key_to_string(key);
    for (auto [t, v] : ts->samples()) s.points.emplace_back(t, v * scale);
    chart.add_series(std::move(s));
  }
  return chart.render(title, value_label);
}

void Registry::export_csv(const std::string& path, const std::string& name,
                          const Labels& selector) const {
  util::CsvWriter csv(path, {"series", "time_s", "value"});
  for (const auto& [key, ts] : select(name, selector)) {
    const std::string label = key_to_string(key);
    for (auto [t, v] : ts->samples()) {
      csv.add_row(std::vector<std::string>{label, util::format_double(t, 3),
                                           util::format_double(v, 6)});
    }
  }
}

}  // namespace chase::mon
