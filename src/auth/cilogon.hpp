#pragma once
/// \file cilogon.hpp
/// The CILogon substitute (paper §IV): federated identity across many
/// identity providers ("over 2500 identity providers are supported, allowing
/// the use of home or campus credentials"), token issuance, and the
/// namespace-scoped RBAC model Nautilus layers on top — a PI is granted the
/// "namespace administrator" role and manages their group's users.

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace chase::auth {

struct Identity {
  std::string provider;  // e.g. "ucsd.edu"
  std::string user;      // e.g. "ialtintas"
  bool operator==(const Identity&) const = default;
  bool operator<(const Identity& o) const {
    return std::tie(provider, user) < std::tie(o.provider, o.user);
  }
};

struct Token {
  std::uint64_t id = 0;
  Identity identity;
};

/// Federated login service. Users "claim" an identity via their home
/// provider rather than creating a new account.
class CILogon {
 public:
  void register_provider(const std::string& provider);
  bool has_provider(const std::string& provider) const;
  std::size_t provider_count() const { return providers_.size(); }

  /// Returns a token, or nullopt if the provider is not federated.
  std::optional<Token> login(const std::string& provider, const std::string& user);
  /// Look up the identity bound to a token; nullopt if unknown/revoked.
  std::optional<Identity> validate(const Token& token) const;
  void revoke(const Token& token);

 private:
  std::set<std::string> providers_;
  std::map<std::uint64_t, Identity> sessions_;
  std::uint64_t next_token_ = 1;
};

/// Verbs on namespaced resources, Kubernetes-style.
enum class Verb { Get, Create, Delete, Admin };
const char* verb_name(Verb v);

/// Per-namespace role bindings. A namespace admin can do everything within
/// the namespace including managing members; members can create/get/delete
/// workloads; everyone else is denied.
class Rbac {
 public:
  void grant_admin(const std::string& ns, const Identity& who);
  void grant_member(const std::string& ns, const Identity& who);
  void revoke_all(const std::string& ns, const Identity& who);

  bool allowed(const std::string& ns, const Identity& who, Verb verb) const;
  bool is_admin(const std::string& ns, const Identity& who) const;
  std::vector<Identity> members(const std::string& ns) const;

 private:
  std::map<std::string, std::set<Identity>> admins_;
  std::map<std::string, std::set<Identity>> members_;
};

}  // namespace chase::auth
