#include "auth/cilogon.hpp"

namespace chase::auth {

void CILogon::register_provider(const std::string& provider) {
  providers_.insert(provider);
}

bool CILogon::has_provider(const std::string& provider) const {
  return providers_.count(provider) > 0;
}

std::optional<Token> CILogon::login(const std::string& provider,
                                    const std::string& user) {
  if (!has_provider(provider)) return std::nullopt;
  Token t;
  t.id = next_token_++;
  t.identity = Identity{provider, user};
  sessions_[t.id] = t.identity;
  return t;
}

std::optional<Identity> CILogon::validate(const Token& token) const {
  auto it = sessions_.find(token.id);
  if (it == sessions_.end() || !(it->second == token.identity)) return std::nullopt;
  return it->second;
}

void CILogon::revoke(const Token& token) { sessions_.erase(token.id); }

const char* verb_name(Verb v) {
  switch (v) {
    case Verb::Get:
      return "get";
    case Verb::Create:
      return "create";
    case Verb::Delete:
      return "delete";
    case Verb::Admin:
      return "admin";
  }
  return "?";
}

void Rbac::grant_admin(const std::string& ns, const Identity& who) {
  admins_[ns].insert(who);
}

void Rbac::grant_member(const std::string& ns, const Identity& who) {
  members_[ns].insert(who);
}

void Rbac::revoke_all(const std::string& ns, const Identity& who) {
  if (auto it = admins_.find(ns); it != admins_.end()) it->second.erase(who);
  if (auto it = members_.find(ns); it != members_.end()) it->second.erase(who);
}

bool Rbac::allowed(const std::string& ns, const Identity& who, Verb verb) const {
  if (is_admin(ns, who)) return true;
  auto it = members_.find(ns);
  const bool member = it != members_.end() && it->second.count(who) > 0;
  if (!member) return false;
  switch (verb) {
    case Verb::Get:
    case Verb::Create:
    case Verb::Delete:
      return true;
    case Verb::Admin:
      return false;
  }
  return false;
}

bool Rbac::is_admin(const std::string& ns, const Identity& who) const {
  auto it = admins_.find(ns);
  return it != admins_.end() && it->second.count(who) > 0;
}

std::vector<Identity> Rbac::members(const std::string& ns) const {
  std::vector<Identity> out;
  if (auto it = admins_.find(ns); it != admins_.end()) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  if (auto it = members_.find(ns); it != members_.end()) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

}  // namespace chase::auth
