#pragma once
/// \file machine.hpp
/// Hardware models for the CHASE-CI testbed: FIONA data-transfer nodes,
/// multi-tenant "FIONA8" GPU appliances (8 game GPUs each), and storage
/// FIONAs, matching the specifications in paper §II. The Inventory tracks
/// machine liveness and notifies subscribers (the Kubernetes node controller,
/// the Ceph OSD map) on state changes — the "nodes can join and leave the
/// cluster at any time" dynamism of §V.

#include <functional>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "util/units.hpp"

namespace chase::cluster {

using util::Bytes;

enum class GpuModel { None, GTX1080Ti, TitanXp, V100 };

/// Peak fp32 throughput; the basis of the simulated GPU rate model.
double gpu_fp32_tflops(GpuModel m);
const char* gpu_model_name(GpuModel m);

struct MachineSpec {
  std::string name;
  std::string site;        // PRP institution, e.g. "UCSD"
  int cpu_cores = 0;
  Bytes memory = 0;
  int gpus = 0;
  GpuModel gpu_model = GpuModel::None;
  Bytes disk_capacity = 0;
  double disk_write_bw = 0;  // bytes/s
  double disk_read_bw = 0;   // bytes/s
  double nic_bps = 0;        // bytes/s (host NIC, full duplex)
};

/// Basic FIONA (paper §II): dual 12-core CPUs, 96 GB RAM, 1 TB SSD, 2×10GbE.
MachineSpec fiona(std::string name, std::string site);
/// FIONA8: a FIONA chassis with eight game GPUs (NVIDIA 1080ti).
MachineSpec fiona8(std::string name, std::string site);
/// Storage FIONA: NVMe-heavy node contributing capacity to the Ceph pool.
MachineSpec storage_fiona(std::string name, std::string site, Bytes capacity);
/// Data Transfer Node fronting an archive (e.g. the THREDDS server host).
MachineSpec dtn(std::string name, std::string site);

struct Machine {
  MachineSpec spec;
  net::NodeId net_node = -1;
  bool up = true;
};

using MachineId = int;

/// The set of physical machines, with liveness callbacks.
class Inventory {
 public:
  explicit Inventory(net::Network& net) : net_(net) {}

  MachineId add(MachineSpec spec, net::NodeId net_node);
  const Machine& machine(MachineId id) const { return machines_.at(id); }
  std::size_t size() const { return machines_.size(); }

  /// Take a machine down/up. Propagates to the network (failing in-flight
  /// flows) and notifies subscribers.
  void set_up(MachineId id, bool up);
  bool up(MachineId id) const { return machines_.at(id).up; }

  /// Subscribe to liveness changes: fn(machine, is_up).
  void subscribe(std::function<void(MachineId, bool)> fn);

  /// Machines whose spec names this site (ascending id) — the federation
  /// bench/tools carve per-site node pools out of one shared inventory.
  std::vector<MachineId> at_site(const std::string& site) const;

  int total_gpus() const;
  int total_cpus() const;
  Bytes total_memory() const;
  Bytes total_disk() const;

 private:
  net::Network& net_;
  std::vector<Machine> machines_;
  std::vector<std::function<void(MachineId, bool)>> subscribers_;
};

}  // namespace chase::cluster
