#include "cluster/machine.hpp"

namespace chase::cluster {

using util::gb;
using util::tb;
using util::gbit_per_s;

double gpu_fp32_tflops(GpuModel m) {
  switch (m) {
    case GpuModel::None:
      return 0.0;
    case GpuModel::GTX1080Ti:
      return 11.3;
    case GpuModel::TitanXp:
      return 12.1;
    case GpuModel::V100:
      return 15.7;
  }
  return 0.0;
}

const char* gpu_model_name(GpuModel m) {
  switch (m) {
    case GpuModel::None:
      return "none";
    case GpuModel::GTX1080Ti:
      return "GTX 1080ti";
    case GpuModel::TitanXp:
      return "Titan Xp";
    case GpuModel::V100:
      return "V100";
  }
  return "unknown";
}

MachineSpec fiona(std::string name, std::string site) {
  MachineSpec s;
  s.name = std::move(name);
  s.site = std::move(site);
  s.cpu_cores = 24;  // dual 12-core
  s.memory = gb(96);
  s.disk_capacity = tb(1);
  s.disk_write_bw = 1.2e9;  // SATA/NVMe SSD class
  s.disk_read_bw = 2.0e9;
  s.nic_bps = gbit_per_s(20);  // two 10 GbE interfaces
  return s;
}

MachineSpec fiona8(std::string name, std::string site) {
  MachineSpec s = fiona(std::move(name), "");
  s.site = std::move(site);
  s.gpus = 8;
  s.gpu_model = GpuModel::GTX1080Ti;
  s.memory = gb(192);
  s.disk_capacity = tb(2);
  return s;
}

MachineSpec storage_fiona(std::string name, std::string site, Bytes capacity) {
  MachineSpec s;
  s.name = std::move(name);
  s.site = std::move(site);
  s.cpu_cores = 16;
  s.memory = gb(128);
  s.disk_capacity = capacity;
  s.disk_write_bw = 2.5e9;  // NVMe
  s.disk_read_bw = 3.5e9;
  s.nic_bps = gbit_per_s(40);
  return s;
}

MachineSpec dtn(std::string name, std::string site) {
  MachineSpec s;
  s.name = std::move(name);
  s.site = std::move(site);
  s.cpu_cores = 16;
  s.memory = gb(96);
  s.disk_capacity = tb(100);
  s.disk_write_bw = 1.5e9;
  s.disk_read_bw = 2.0e9;
  s.nic_bps = gbit_per_s(20);
  return s;
}

MachineId Inventory::add(MachineSpec spec, net::NodeId net_node) {
  machines_.push_back(Machine{std::move(spec), net_node, true});
  return static_cast<MachineId>(machines_.size() - 1);
}

void Inventory::set_up(MachineId id, bool up) {
  Machine& m = machines_.at(id);
  if (m.up == up) return;
  m.up = up;
  if (m.net_node >= 0) net_.set_node_up(m.net_node, up);
  for (auto& fn : subscribers_) fn(id, up);
}

void Inventory::subscribe(std::function<void(MachineId, bool)> fn) {
  subscribers_.push_back(std::move(fn));
}

std::vector<MachineId> Inventory::at_site(const std::string& site) const {
  std::vector<MachineId> out;
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    if (machines_[i].spec.site == site) out.push_back(static_cast<MachineId>(i));
  }
  return out;
}

int Inventory::total_gpus() const {
  int n = 0;
  for (const auto& m : machines_) n += m.spec.gpus;
  return n;
}

int Inventory::total_cpus() const {
  int n = 0;
  for (const auto& m : machines_) n += m.spec.cpu_cores;
  return n;
}

Bytes Inventory::total_memory() const {
  Bytes n = 0;
  for (const auto& m : machines_) n += m.spec.memory;
  return n;
}

Bytes Inventory::total_disk() const {
  Bytes n = 0;
  for (const auto& m : machines_) n += m.spec.disk_capacity;
  return n;
}

}  // namespace chase::cluster
