#include "kube/federation.hpp"

#include <algorithm>
#include <cassert>

namespace chase::kube {

int FederationController::add_site(std::string name, KubeCluster& cluster,
                                   std::vector<std::string> datasets) {
  sites_.push_back(FederationSite{std::move(name), &cluster, std::move(datasets)});
  return static_cast<int>(sites_.size() - 1);
}

double FederationController::headroom_score(const KubeCluster& cluster) {
  const ResourceList cap = cluster.total_allocatable();
  const ResourceList used = cluster.total_allocated();
  const double cpu_free = cap.cpu > 0.0 ? 1.0 - used.cpu / cap.cpu : 0.0;
  const double gpu_free =
      cap.gpus > 0 ? 1.0 - static_cast<double>(used.gpus) / cap.gpus : 0.0;
  return cpu_free + gpu_free;
}

bool FederationController::holds_dataset(const FederationSite& site,
                                         const std::string& dataset) {
  return std::find(site.datasets.begin(), site.datasets.end(), dataset) !=
         site.datasets.end();
}

Placement FederationController::place(const JobSpec& job,
                                      const std::string& dataset) const {
  ResourceList requests;
  for (const auto& c : job.pod_template.containers) requests += c.requests;

  // Pass 1: which members could ever run one pod of this template?
  // Pass 2: restrict to dataset holders when the data lives at a feasible
  // site. Pass 3: best headroom wins, first-registered on ties (strict >).
  Placement best;
  bool best_local = false;
  double best_score = 0.0;
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    const FederationSite& site = sites_[i];
    if (!site.cluster->has_capacity_for(requests)) continue;
    const bool local = !dataset.empty() && holds_dataset(site, dataset);
    const double score = headroom_score(*site.cluster);
    if (best.ok()) {
      if (best_local && !local) continue;           // locality dominates headroom
      if (local == best_local && score <= best_score) continue;
    }
    best.site = static_cast<int>(i);
    best.site_name = site.name;
    best_local = local;
    best_score = score;
  }
  best.reason = !best.ok() ? "infeasible" : (best_local ? "data-locality" : "capacity");
  return best;
}

Result<JobPtr> FederationController::submit_job(JobSpec spec,
                                                const std::string& dataset) {
  const Placement chosen = place(spec, dataset);
  if (!chosen.ok()) {
    return {nullptr, "no federation member has capacity for job '" + spec.name + "'"};
  }
  FederationSite& site = sites_[static_cast<std::size_t>(chosen.site)];
  spec.labels["federation-site"] = site.name;
  // Pin the pods to the site when its nodes actually carry the matching
  // label (operator relabeling may have renamed the zone — then the pin
  // would orphan the pods, so leave the selector alone).
  if (!site.cluster->nodes_matching({{"site", site.name}}).empty()) {
    spec.pod_template.node_selector["site"] = site.name;
  }
  return site.cluster->create_job(std::move(spec));
}

}  // namespace chase::kube
