#pragma once
/// \file cluster.hpp
/// The orchestrator facade: API server (object store + admission + RBAC),
/// scheduler, per-node kubelets with a GPU device plugin, and the Job /
/// ReplicaSet / node-lifecycle controllers. This is the "Kubernetes" of the
/// simulation — the paper's §II-A container-orchestration layer.
///
/// Workload programs interact with the world through PodContext (identity,
/// CPU/GPU compute primitives, live usage reporting for the monitoring
/// layer). The workflow manager (chase::wf) declares desired state (Jobs,
/// ReplicaSets) and the controllers converge on it, including rescheduling
/// pods off failed nodes (§V).

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "auth/cilogon.hpp"
#include "cluster/machine.hpp"
#include "kube/types.hpp"
#include "mon/metrics.hpp"
#include "net/network.hpp"
#include "sim/event.hpp"
#include "sim/simulation.hpp"

namespace chase::kube {

class KubeCluster;

/// Handle given to container programs: who am I, where am I running, and
/// primitives for consuming simulated compute while reporting live usage.
class PodContext {
 public:
  sim::Simulation& sim() const;
  net::Network& network() const;
  KubeCluster& cluster() const { return *cluster_; }

  const Pod& pod() const { return *pod_; }
  cluster::MachineId machine() const { return pod_->node; }
  /// Network endpoint of the machine this pod runs on.
  net::NodeId net_node() const;
  /// Hardware spec of the machine this pod runs on (GPU model, TFLOPS, ...).
  const cluster::MachineSpec& machine_spec() const;
  int gpus() const { return static_cast<int>(pod_->gpu_ids.size()); }
  /// Aggregate fp32 TFLOPS of the GPUs granted to this pod.
  double gpu_tflops() const;
  /// True once the pod has been deleted or its node was lost; long-running
  /// programs should poll this between work items and bail out.
  bool cancelled() const { return pod_->cancelled; }

  /// Consume `cpu_seconds` of single-core work spread across `cores`
  /// (wall-clock = cpu_seconds / cores). Reports usage while running.
  /// Returns early once the pod is cancelled — callers must re-check
  /// cancelled() before acting on the "finished" computation.
  sim::Task compute(double cpu_seconds, double cores);
  /// Consume `gpu_seconds` of single-GPU work across all granted GPUs.
  /// Cancellation-aware like compute().
  sim::Task gpu_compute(double gpu_seconds);

  /// Live usage reporting (sampled by the monitoring layer).
  void set_cpu_usage(double cores) { pod_->usage.cpu = cores; }
  void set_memory_usage(Bytes b) { pod_->usage.memory = b; }
  void set_gpu_usage(int gpus) { pod_->usage.gpus = gpus; }

  /// Mark the pod as failed; the phase is applied when the program returns.
  void fail(const std::string& reason);

 private:
  friend class KubeCluster;
  PodContext(KubeCluster* cluster, Pod* pod) : cluster_(cluster), pod_(pod) {}
  /// Sleep in bounded slices, returning early once the pod is cancelled so
  /// an evicted pod stops occupying simulated time and its replacement can
  /// take over promptly (chaos / self-healing paths).
  sim::Task cancellable_sleep(double duration);
  KubeCluster* cluster_;
  Pod* pod_;
};

/// Scheduler/kubelet view of a registered node.
struct NodeInfo {
  cluster::MachineId machine = -1;
  Labels labels;
  ResourceList allocatable;
  ResourceList allocated;
  bool ready = true;
  bool unschedulable = false;  // cordoned
  std::vector<Taint> taints;
  std::vector<bool> gpu_in_use;
  std::vector<std::string> image_cache;
  std::vector<PodPtr> pods;  // non-terminal pods bound here
  /// Feasibility-index slots (KubeCluster::reindex_node): the headroom /
  /// capacity class bucket currently holding this node, or -1 while the
  /// node is out of the index (not ready, or cordoned).
  int idx_free = -1;
  int idx_cap = -1;
};

class KubeCluster {
 public:
  /// Node-scoring policy: Spread (least-allocated, the Kubernetes default)
  /// balances load; BinPack (most-allocated) consolidates pods onto fewer
  /// nodes, freeing whole FIONA8s for large GPU pods.
  enum class SchedulingPolicy { Spread, BinPack };

  struct Options {
    /// Delay between a pod becoming schedulable and binding (API latency).
    double scheduling_latency = 0.2;
    /// Extra per-pod container start overhead after image pull.
    double container_start_latency = 1.0;
    /// If >= 0, node of the image registry; image pulls then cost a network
    /// transfer on first use per node. Negative disables pull modelling.
    net::NodeId registry_node = -1;
    SchedulingPolicy policy = SchedulingPolicy::Spread;
    /// Kubernetes-at-scale sampling: when more than this many feasible-class
    /// candidates exist, pick_node scores at most this many *feasible* nodes
    /// starting from a deterministic rotating offset instead of scoring the
    /// whole cluster (percentageOfNodesToScore). At or below the threshold —
    /// every pre-existing bench and test — behavior is bit-identical to the
    /// exhaustive scan, rotation state included. 0 disables sampling.
    int score_sample_max = 256;
  };

  KubeCluster(sim::Simulation& sim, net::Network& net, cluster::Inventory& inventory,
              mon::Registry* metrics, Options options);
  KubeCluster(sim::Simulation& sim, net::Network& net, cluster::Inventory& inventory,
              mon::Registry* metrics = nullptr);
  ~KubeCluster();
  KubeCluster(const KubeCluster&) = delete;
  KubeCluster& operator=(const KubeCluster&) = delete;

  // --- nodes ---------------------------------------------------------------

  /// Register a machine as a schedulable node. Merges `extra_labels` with
  /// the implicit labels derived from the machine spec — "site" and (for
  /// GPU machines) "gpu-model". On collision the explicit `extra_labels`
  /// value wins over the implicit one (operator overrides, e.g. relabeling
  /// a site's maintenance pool). The "machine" label is reserved: it is
  /// always forced to the node's own id, because DaemonSet pinning and the
  /// pick_node fast-path rely on it resolving to exactly this node.
  /// Re-registering replaces the previous label set (index entries are
  /// deduped, never accumulated) while preserving runtime state — bound
  /// pods, allocations, device grants, taints, and cordon status survive a
  /// live relabel.
  void register_node(cluster::MachineId machine, Labels extra_labels = {});
  const NodeInfo& node(cluster::MachineId machine) const;
  std::size_t node_count() const { return nodes_.size(); }
  /// Registered nodes whose labels satisfy `selector`, ascending machine id
  /// (ready/cordon state is not considered — this is pure label matching,
  /// answered from the inverted label index).
  std::vector<cluster::MachineId> nodes_matching(const Labels& selector);
  /// True iff some schedulable node's total capacity class could fit
  /// `requests` and the request fits its allocatable. Coarse federation
  /// feasibility: ignores taints/selectors and current allocations
  /// (preemption or drainage could still free the room).
  bool has_capacity_for(const ResourceList& requests) const;
  /// Cluster-wide allocatable and allocated resources over ready nodes.
  ResourceList total_allocatable() const;
  ResourceList total_allocated() const;

  /// Mark a node unschedulable (existing pods keep running).
  void cordon(cluster::MachineId machine);
  void uncordon(cluster::MachineId machine);
  /// Cordon + evict every pod on the node (reason "Drained"; owners
  /// recreate elsewhere, and drains do not count as Job failures).
  void drain(cluster::MachineId machine);
  /// Taint a node. NoSchedule keeps new non-tolerating pods away;
  /// NoExecute additionally evicts running non-tolerating pods.
  void add_taint(cluster::MachineId machine, Taint taint);
  void remove_taint(cluster::MachineId machine, const std::string& key);

  // --- namespaces, quota, auth ----------------------------------------------

  void create_namespace(const std::string& name);
  bool has_namespace(const std::string& name) const;
  void set_quota(const std::string& ns, ResourceQuota quota);
  const Namespace& get_namespace(const std::string& ns) const;

  /// Enable CILogon/RBAC admission: requests must then carry a token whose
  /// identity is authorized in the target namespace.
  void enable_auth(auth::CILogon* sso, auth::Rbac* rbac);

  // --- workloads -------------------------------------------------------------

  Result<PodPtr> create_pod(const std::string& ns, const std::string& name,
                            PodSpec spec, Labels labels = {}, OwnerRef owner = {},
                            const auth::Token* token = nullptr);
  /// Delete a pod: cancels it if running; controllers will not replace pods
  /// deleted through their owner's deletion path.
  void delete_pod(const std::string& ns, const std::string& name);
  /// Disruption-style eviction (chaos testing, involuntary preemption): the
  /// pod is killed and its owner recreates it elsewhere without the failure
  /// counting against a Job's backoff limit, like drains and node losses.
  void disrupt_pod(const std::string& ns, const std::string& name);

  Result<JobPtr> create_job(JobSpec spec, const auth::Token* token = nullptr);
  Result<ReplicaSetPtr> create_replica_set(ReplicaSetSpec spec,
                                           const auth::Token* token = nullptr);
  void delete_replica_set(const std::string& ns, const std::string& name);
  /// Change a ReplicaSet's desired replica count: scales up by creating
  /// pods, down by deleting the newest pods first.
  void scale_replica_set(const std::string& ns, const std::string& name, int replicas);

  Result<DeploymentPtr> create_deployment(DeploymentSpec spec,
                                          const auth::Token* token = nullptr);
  /// Roll the deployment to a new pod template, one pod at a time
  /// (surge 1). `rolled_out` is re-armed and fires when the new revision
  /// fully owns the replicas.
  void update_deployment(const std::string& ns, const std::string& name,
                         PodSpec new_template);
  void delete_deployment(const std::string& ns, const std::string& name);
  DeploymentPtr get_deployment(const std::string& ns, const std::string& name) const;

  /// One pod per matching ready node; pods are added when nodes register or
  /// come back, and their losses are not replaced elsewhere.
  Result<DaemonSetPtr> create_daemon_set(DaemonSetSpec spec,
                                         const auth::Token* token = nullptr);
  void delete_daemon_set(const std::string& ns, const std::string& name);

  /// Fire the job template every `period` seconds (first firing one period
  /// from now). Suspend/resume pauses firings; delete stops them.
  Result<CronJobPtr> create_cron_job(CronJobSpec spec,
                                     const auth::Token* token = nullptr);
  void suspend_cron_job(const std::string& ns, const std::string& name, bool suspended);
  void delete_cron_job(const std::string& ns, const std::string& name);

  void create_service(ServiceSpec spec);
  /// Resolve a service to a running pod (round-robin); nullopt if none.
  std::optional<PodPtr> resolve_service(const std::string& ns, const std::string& name);

  // --- queries ----------------------------------------------------------------

  PodPtr get_pod(const std::string& ns, const std::string& name) const;
  std::vector<PodPtr> list_pods(const std::string& ns, const Labels& selector = {}) const;
  JobPtr get_job(const std::string& ns, const std::string& name) const;

  /// Subscribe to pod phase transitions (integration tests, workflow layer).
  void watch_pods(std::function<void(const PodPtr&)> fn);

  /// Invariant audit (see util/check.hpp): pods are bound to live registered
  /// nodes, node/namespace resource accounting matches the bound pod set,
  /// GPU grants are exclusive, and controller replica counts agree with the
  /// pods they own. Called automatically at simulation checkpoints in audit
  /// builds.
  void check_invariants() const;

  sim::Simulation& sim() { return sim_; }
  net::Network& network() { return net_; }
  cluster::Inventory& inventory() { return inventory_; }
  mon::Registry* metrics() { return metrics_; }
  const Options& options() const { return options_; }

 private:
  friend class PodContext;

  // admission
  Result<PodPtr> create_pod_impl(const std::string& ns, const std::string& name,
                                 PodSpec spec, Labels labels, OwnerRef owner,
                                 const auth::Token* token, bool system);
  Result<JobPtr> create_job_impl(JobSpec spec, const auth::Token* token, bool system);
  std::string admit(const std::string& ns, const ResourceList& requests,
                    auth::Verb verb, const auth::Token* token, bool system);
  void release_quota(const std::string& ns, const ResourceList& requests);

  // scheduling
  void kick_scheduler();
  void scheduling_pass();
  std::optional<cluster::MachineId> pick_node(const Pod& pod);
  bool node_admits(const NodeInfo& info, const Pod& pod) const;
  /// Try to make room for `pod` by evicting lower-priority pods on one
  /// node; returns true if preemption happened.
  bool try_preempt(const Pod& pod);
  void evict_pod(const PodPtr& pod, const std::string& reason);
  void bind(const PodPtr& pod, cluster::MachineId machine);

  // Feasibility index: schedulable (ready, uncordoned) nodes bucketed by a
  // resource class — (free GPUs clamped to kGpuClassMax) x (bit width of
  // whole free CPU cores, clamped to kCpuClassMax). Both class functions
  // are monotone in the underlying resources, so every node that could fit
  // a request lives in a bucket at or above the request's own class:
  // pick_node / try_preempt scan that bucket range instead of all of
  // nodes_. Candidates are sorted by machine id before scoring, which
  // reproduces the old full-scan's first-best tie-break exactly.
  static constexpr int kGpuClassMax = 8;   // free GPUs 0..8+ (FIONA8s)
  static constexpr int kCpuClassMax = 10;  // bit_width(cores) 0..10 (1024+)
  static constexpr int kClassCount = (kGpuClassMax + 1) * (kCpuClassMax + 1);
  static int resource_class(double cpu, int gpus);
  /// Reconcile one node's index slots with its current state (membership,
  /// headroom class, capacity class). Call after any change to ready /
  /// unschedulable / allocated / allocatable.
  void reindex_node(NodeInfo& info);
  void index_remove(NodeInfo& info);
  /// Collect schedulable nodes whose class could fit `requests` into
  /// sched_candidates_, ascending machine id. `by_capacity` selects the
  /// allocatable-class buckets (preemption) over the headroom ones.
  void gather_candidates(const ResourceList& requests, bool by_capacity);

  // Inverted label index: "key\x1Fvalue" -> machine ids (ascending) of every
  // registered node carrying that label. Selector matching over thousands of
  // nodes intersects postings instead of scanning nodes_; resolutions are
  // memoized per serialized selector and invalidated by label_epoch_, which
  // bumps on any node (re)registration. DaemonSet reconciles and
  // selector-bearing pick_node/try_preempt queries hit the cache.
  void index_node_labels(const NodeInfo& info);
  void unindex_node_labels(const NodeInfo& info);
  /// Cached resolution of a full selector to its matching node set
  /// (ascending machine id). The reference is valid until the next label
  /// mutation; hot paths must not hold it across suspension points.
  const std::vector<cluster::MachineId>& resolve_selector_nodes(const Labels& selector);
  /// Drop sched_candidates_ entries whose node fails `selector` — a sorted
  /// intersection with the resolved selector set (no per-node map walks).
  void filter_candidates_by_selector(const Labels& selector);

  // kubelet
  static sim::Task run_pod(KubeCluster* self, PodPtr pod);
  static sim::Task run_container(KubeCluster* self, PodPtr pod, std::size_t index,
                                 std::shared_ptr<sim::Latch> latch);
  void finalize_pod(const PodPtr& pod, PodPhase phase, const std::string& reason);
  void release_node_resources(const PodPtr& pod);
  void register_pod_metrics(const PodPtr& pod);
  void unregister_pod_metrics(const PodPtr& pod);
  mon::Labels pod_metric_labels(const Pod& pod) const;

  // controllers
  void on_machine_state(cluster::MachineId machine, bool up);
  void on_pod_terminated(const PodPtr& pod);
  void reconcile_job(const JobPtr& job);
  void reconcile_replica_set(const ReplicaSetPtr& rs);
  void reconcile_daemon_set(const DaemonSetPtr& ds);
  static sim::Task cron_loop(KubeCluster* self, CronJobPtr cron);
  void notify_watchers(const PodPtr& pod);
  static sim::Task roll_deployment(KubeCluster* self, DeploymentPtr deployment,
                                   int target_revision);
  std::string deployment_rs_name(const Deployment& deployment, int revision) const {
    return deployment.spec.name + "-rev" + std::to_string(revision);
  }

  sim::Simulation& sim_;
  net::Network& net_;
  cluster::Inventory& inventory_;
  mon::Registry* metrics_;
  Options options_;

  std::map<cluster::MachineId, NodeInfo> nodes_;
  std::map<std::string, Namespace> namespaces_;
  std::map<std::string, PodPtr> pods_;          // key ns + "/" + name
  std::map<std::string, JobPtr> jobs_;          // key ns + "/" + name
  std::map<std::string, ReplicaSetPtr> replica_sets_;
  std::map<std::string, DeploymentPtr> deployments_;
  std::map<std::string, DaemonSetPtr> daemon_sets_;
  std::map<std::string, CronJobPtr> cron_jobs_;
  std::map<std::string, ServiceSpec> services_;
  std::map<std::string, std::size_t> service_rr_;
  std::deque<PodPtr> pending_;
  /// Feasibility-index buckets (machine ids, ascending) and the candidate
  /// scratch reused by every scheduling query.
  std::vector<std::vector<cluster::MachineId>> free_buckets_;
  std::vector<std::vector<cluster::MachineId>> cap_buckets_;
  std::vector<cluster::MachineId> sched_candidates_;
  /// Inverted label index + epoch-stamped selector-resolution cache.
  struct SelectorCache {
    std::uint64_t stamp = 0;  // valid iff == label_epoch_
    std::vector<cluster::MachineId> nodes;
  };
  std::map<std::string, std::vector<cluster::MachineId>> label_index_;
  std::map<std::string, SelectorCache> selector_cache_;
  std::uint64_t label_epoch_ = 1;
  std::vector<cluster::MachineId> sel_scratch_;  // intersection scratch
  /// Sampled-scoring rotation state: advances once per sampled pick_node so
  /// successive pods start their feasibility walk at different offsets
  /// (deterministic — part of replay state, see DESIGN.md).
  std::uint64_t sample_rotor_ = 0;
  bool pass_scheduled_ = false;
  std::uint64_t next_uid_ = 1;
  std::vector<std::function<void(const PodPtr&)>> watchers_;

  auth::CILogon* sso_ = nullptr;
  auth::Rbac* rbac_ = nullptr;
  std::uint64_t audit_hook_ = 0;
};

}  // namespace chase::kube
