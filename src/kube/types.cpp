#include "kube/types.hpp"

#include <sstream>

#include "util/units.hpp"

namespace chase::kube {

bool selector_matches(const Labels& selector, const Labels& labels) {
  for (const auto& [k, v] : selector) {
    auto it = labels.find(k);
    if (it == labels.end() || it->second != v) return false;
  }
  return true;
}

ResourceList& ResourceList::operator+=(const ResourceList& o) {
  cpu += o.cpu;
  memory += o.memory;
  gpus += o.gpus;
  return *this;
}

ResourceList& ResourceList::operator-=(const ResourceList& o) {
  cpu -= o.cpu;
  memory = memory >= o.memory ? memory - o.memory : 0;
  gpus -= o.gpus;
  return *this;
}

bool ResourceList::fits_within(const ResourceList& capacity) const {
  return cpu <= capacity.cpu + 1e-9 && memory <= capacity.memory &&
         gpus <= capacity.gpus;
}

std::string ResourceList::to_string() const {
  std::ostringstream os;
  os << "cpu=" << cpu << " mem=" << util::format_bytes(static_cast<double>(memory))
     << " gpus=" << gpus;
  return os.str();
}

ResourceList operator+(ResourceList a, const ResourceList& b) {
  a += b;
  return a;
}

const char* phase_name(PodPhase p) {
  switch (p) {
    case PodPhase::Pending:
      return "Pending";
    case PodPhase::Running:
      return "Running";
    case PodPhase::Succeeded:
      return "Succeeded";
    case PodPhase::Failed:
      return "Failed";
  }
  return "?";
}

ResourceList Pod::requests() const {
  ResourceList total;
  for (const auto& c : spec.containers) total += c.requests;
  return total;
}

}  // namespace chase::kube
