#pragma once
/// \file types.hpp
/// Kubernetes-style API objects for the CHASE-CI orchestrator substrate
/// (paper §II-A, §IV, §V): resource lists, label selectors, Pods and the
/// scheduling controllers the paper's workflow uses (Job for batch steps,
/// ReplicaSet for scaled services), namespaces and resource quotas.
///
/// Pods carry a *program*: a coroutine describing the containerized
/// workload's behaviour against the simulated world (compute, transfers,
/// storage and queue operations). The kubelet runs the program when the pod
/// is placed; the program's completion ends the pod.

#include <climits>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/event.hpp"
#include "sim/simulation.hpp"
#include "util/units.hpp"

namespace chase::kube {

using util::Bytes;
using Labels = std::map<std::string, std::string>;

/// True iff every selector entry is present (with equal value) in `labels`.
bool selector_matches(const Labels& selector, const Labels& labels);

/// Requestable compute resources. CPU is in cores (fractional allowed),
/// mirroring Kubernetes' milliCPU granularity.
struct ResourceList {
  double cpu = 0.0;
  Bytes memory = 0;
  int gpus = 0;

  ResourceList& operator+=(const ResourceList& o);
  ResourceList& operator-=(const ResourceList& o);
  /// True iff this resource request fits within `capacity`.
  bool fits_within(const ResourceList& capacity) const;
  std::string to_string() const;
};

ResourceList operator+(ResourceList a, const ResourceList& b);

struct ObjectMeta {
  std::string ns;
  std::string name;
  Labels labels;
  std::uint64_t uid = 0;
};

/// Owner reference for garbage collection / controller dispatch.
struct OwnerRef {
  std::string kind;  // "Job", "ReplicaSet" or empty
  std::string name;
  bool valid() const { return !kind.empty(); }
};

class PodContext;
/// A containerized workload: a coroutine run by the kubelet once the pod is
/// scheduled and its image is pulled.
using Program = std::function<sim::Task(PodContext&)>;

struct ContainerSpec {
  std::string name = "main";
  std::string image = "library/busybox";
  Bytes image_size = util::mb(200);
  ResourceList requests;
  Program program;  // may be empty: the container then completes immediately
};

/// Taint effects, Kubernetes-style.
enum class TaintEffect { NoSchedule, NoExecute };

struct Taint {
  std::string key;
  std::string value;
  TaintEffect effect = TaintEffect::NoSchedule;
};

struct Toleration {
  std::string key;
  std::string value;  // empty tolerates any value of the key
  bool tolerates(const Taint& taint) const {
    return key == taint.key && (value.empty() || value == taint.value);
  }
};

struct PodSpec {
  std::vector<ContainerSpec> containers;
  /// Node label selector (e.g. {"gpu-model": "1080ti"}); the paper's related
  /// work uses "Kubernetes object labeling conventions" to target nodes.
  Labels node_selector;
  /// Taints this pod tolerates.
  std::vector<Toleration> tolerations;
  /// Scheduling priority; higher preempts lower when the cluster is full.
  int priority = 0;
};

enum class PodPhase { Pending, Running, Succeeded, Failed };
const char* phase_name(PodPhase p);

struct Pod {
  ObjectMeta meta;
  PodSpec spec;
  OwnerRef owner;

  PodPhase phase = PodPhase::Pending;
  int node = -1;                // MachineId once bound
  std::vector<int> gpu_ids;     // devices granted by the node's device plugin
  ResourceList usage;           // live usage, probed by the monitoring layer
  int exit_code = 0;
  std::string reason;
  bool cancelled = false;       // deleted or lost its node mid-run

  double created_at = 0.0;
  double started_at = -1.0;
  double finished_at = -1.0;

  sim::EventPtr scheduled = sim::make_event();
  sim::EventPtr terminated = sim::make_event();

  /// Execution context while running (owned here so programs can outlive
  /// scheduling internals).
  std::unique_ptr<PodContext> context;

  ResourceList requests() const;
  bool terminal() const {
    return phase == PodPhase::Succeeded || phase == PodPhase::Failed;
  }
};

using PodPtr = std::shared_ptr<Pod>;

/// Batch controller: run `completions` pods to success, at most `parallelism`
/// at a time, tolerating up to `backoff_limit` failures (paper §III-A uses a
/// 10-worker Job for the THREDDS download).
struct JobSpec {
  std::string ns;
  std::string name;
  Labels labels;
  PodSpec pod_template;
  int completions = 1;
  int parallelism = 1;
  int backoff_limit = 6;
};

struct Job {
  JobSpec spec;
  int active = 0;
  int succeeded = 0;
  int failed = 0;
  bool complete = false;
  bool failed_state = false;
  double created_at = 0.0;
  double finished_at = -1.0;
  sim::EventPtr done = sim::make_event();
  std::uint64_t next_index = 0;  // pod name counter
};

using JobPtr = std::shared_ptr<Job>;

/// Keeps `replicas` pods running, replacing failures — used for long-running
/// services (Redis) and for the distributed-training extension (§III-E2).
struct ReplicaSetSpec {
  std::string ns;
  std::string name;
  Labels labels;
  PodSpec pod_template;
  int replicas = 1;
};

struct ReplicaSet {
  ReplicaSetSpec spec;
  int active = 0;
  bool deleted = false;
  std::uint64_t next_index = 0;
};

using ReplicaSetPtr = std::shared_ptr<ReplicaSet>;

/// Declarative rollout over ReplicaSets: each revision owns one ReplicaSet;
/// updates roll pods over one at a time (surge 1 / max unavailable 0).
struct DeploymentSpec {
  std::string ns;
  std::string name;
  Labels labels;
  PodSpec pod_template;
  int replicas = 1;
};

struct Deployment {
  DeploymentSpec spec;
  int revision = 0;            // current revision number
  bool rolling = false;        // an update is in progress
  sim::EventPtr rolled_out = sim::make_event();  // fires when stable
};

using DeploymentPtr = std::shared_ptr<Deployment>;

/// One pod on every (matching) node — monitoring agents, log shippers, the
/// device plugin itself. Pods follow nodes as they join and leave.
struct DaemonSetSpec {
  std::string ns;
  std::string name;
  Labels labels;
  PodSpec pod_template;
  /// Only nodes matching this selector host a daemon pod.
  Labels node_selector;
};

struct DaemonSet {
  DaemonSetSpec spec;
  bool deleted = false;
  std::uint64_t next_index = 0;
};

using DaemonSetPtr = std::shared_ptr<DaemonSet>;

/// Periodic Jobs — the ingest pattern for "near real-time big data
/// processing... of data streaming from remote instruments" (paper §I): a
/// Job template fired every `period` seconds.
struct CronJobSpec {
  std::string ns;
  std::string name;
  Labels labels;
  JobSpec job_template;   // ns/name fields are overridden per firing
  double period = 3600.0;
  /// Skip a firing while the previous Job is still active (Forbid policy);
  /// false allows concurrent Jobs.
  bool forbid_concurrent = true;
};

struct CronJob {
  CronJobSpec spec;
  bool suspended = false;
  bool deleted = false;
  std::uint64_t fired = 0;     // firings attempted
  std::uint64_t skipped = 0;   // skipped due to Forbid
  JobPtr last_job;
};

using CronJobPtr = std::shared_ptr<CronJob>;

/// Per-namespace ceilings (paper §IV: namespaces "may be obeying a vastly
/// different set of resource policies or constraints").
struct ResourceQuota {
  ResourceList hard;
  int max_pods = INT_MAX;
};

struct Namespace {
  std::string name;
  bool has_quota = false;
  ResourceQuota quota;
  ResourceList used;
  int pods_used = 0;
};

/// ClusterIP-style service: a stable name resolving to ready pods matching a
/// selector ("hostnames will be used instead of IP addresses", §III-E2).
struct ServiceSpec {
  std::string ns;
  std::string name;
  Labels selector;
};

/// Cheap expected/error return for admission results.
template <typename T>
struct Result {
  T value{};
  std::string error;
  bool ok() const { return error.empty(); }
};

}  // namespace chase::kube
