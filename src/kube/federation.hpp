#pragma once
/// \file federation.hpp
/// Cross-site job placement over a federation of per-site KubeClusters — the
/// paper's multi-campus PRP deployment (§II: "distributed across multiple
/// campuses"). Each member site runs its own orchestrator over its own
/// intra-site fabric; the FederationController is a thin placement layer
/// that routes a Job to one member by resource feasibility, data locality,
/// and headroom, then delegates to that cluster's own scheduler.
///
/// Everything is deterministic: sites keep registration order, scoring ties
/// resolve to the earliest-registered site, and no randomness is involved —
/// federation runs compose with tools/determinism_check --sites.

#include <string>
#include <vector>

#include "kube/cluster.hpp"
#include "kube/types.hpp"

namespace chase::kube {

/// One member cluster of the federation. `datasets` names the data resident
/// at the site (CHASE-CI's "data is pre-staged near the GPUs" model); jobs
/// that declare an input dataset prefer a site that already holds it.
struct FederationSite {
  std::string name;
  KubeCluster* cluster = nullptr;
  std::vector<std::string> datasets;
};

/// Outcome of a placement decision. `site` indexes the controller's site
/// list (registration order); -1 means no member can ever fit the job.
struct Placement {
  int site = -1;
  std::string site_name;
  /// Why this site won: "data-locality" (feasible + holds the dataset),
  /// "capacity" (feasible, best headroom), or "infeasible".
  std::string reason;
  bool ok() const { return site >= 0; }
};

class FederationController {
 public:
  /// Register a member cluster. Returns its site id. Registration order is
  /// the deterministic tie-break for placement scoring.
  int add_site(std::string name, KubeCluster& cluster,
               std::vector<std::string> datasets = {});

  std::size_t site_count() const { return sites_.size(); }
  const FederationSite& site(int id) const {
    return sites_[static_cast<std::size_t>(id)];
  }

  /// Choose a member site for `job`. Feasibility first (some node's capacity
  /// class fits one pod of the template), then data locality (`dataset`
  /// resident at a feasible site), then headroom (largest free CPU+GPU
  /// fraction over ready nodes); ties go to the earliest-registered site.
  Placement place(const JobSpec& job, const std::string& dataset = {}) const;

  /// Place and submit: stamps the job with a "federation-site" label, pins
  /// its pods to the chosen site via the node selector when the member's
  /// nodes carry the matching "site" label, and creates the Job on the
  /// chosen cluster. Fails with an error Result if no member is feasible.
  Result<JobPtr> submit_job(JobSpec spec, const std::string& dataset = {});

 private:
  static double headroom_score(const KubeCluster& cluster);
  static bool holds_dataset(const FederationSite& site, const std::string& dataset);

  std::vector<FederationSite> sites_;
};

}  // namespace chase::kube
