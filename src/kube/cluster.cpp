#include "kube/cluster.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdlib>

#include "util/check.hpp"

namespace chase::kube {

namespace {
std::string key_of(const std::string& ns, const std::string& name) {
  return ns + "/" + name;
}

/// Inverted-index key for one label pair. \x1F (unit separator) cannot
/// appear in sane label text, so "a=bc" and "ab=c" never collide.
std::string label_key(const std::string& k, const std::string& v) {
  std::string out;
  out.reserve(k.size() + v.size() + 1);
  out += k;
  out += '\x1F';
  out += v;
  return out;
}
}  // namespace

// --- PodContext --------------------------------------------------------------

sim::Simulation& PodContext::sim() const { return cluster_->sim_; }
net::Network& PodContext::network() const { return cluster_->net_; }

net::NodeId PodContext::net_node() const {
  return cluster_->inventory_.machine(pod_->node).net_node;
}

const cluster::MachineSpec& PodContext::machine_spec() const {
  return cluster_->inventory_.machine(pod_->node).spec;
}

double PodContext::gpu_tflops() const {
  const auto& spec = cluster_->inventory_.machine(pod_->node).spec;
  return cluster::gpu_fp32_tflops(spec.gpu_model) * gpus();
}

sim::Task PodContext::cancellable_sleep(double duration) {
  // Slice long computations so an evicted pod notices within a bounded
  // amount of simulated time instead of sleeping to its original finish.
  // The slice adapts to the job size so scaled-down runs still detect
  // eviction within a small fraction of the compute.
  const double kSlice = std::clamp(duration / 20.0, 1.0, 60.0);
  double left = duration;
  while (left > 0.0 && !cancelled()) {
    const double step = std::min(left, kSlice);
    co_await sim().sleep(step);
    left -= step;
  }
}

sim::Task PodContext::compute(double cpu_seconds, double cores) {
  assert(cores > 0.0);
  const double prev = pod_->usage.cpu;
  set_cpu_usage(cores);
  co_await cancellable_sleep(cpu_seconds / cores);
  set_cpu_usage(prev);
}

sim::Task PodContext::gpu_compute(double gpu_seconds) {
  const int n = gpus();
  assert(n > 0 && "gpu_compute on a pod without GPUs");
  const int prev = pod_->usage.gpus;
  set_gpu_usage(n);
  co_await cancellable_sleep(gpu_seconds / n);
  set_gpu_usage(prev);
}

void PodContext::fail(const std::string& reason) {
  pod_->exit_code = 1;
  if (pod_->reason.empty()) pod_->reason = reason;
}

// --- construction -------------------------------------------------------------

KubeCluster::KubeCluster(sim::Simulation& sim, net::Network& net,
                         cluster::Inventory& inventory, mon::Registry* metrics,
                         Options options)
    : sim_(sim), net_(net), inventory_(inventory), metrics_(metrics),
      options_(options) {
  create_namespace("default");
  free_buckets_.resize(kClassCount);
  cap_buckets_.resize(kClassCount);
  sched_candidates_.reserve(64);
  sel_scratch_.reserve(64);
  inventory_.subscribe([this](cluster::MachineId m, bool up) { on_machine_state(m, up); });
  audit_hook_ = sim_.add_audit_hook([this] { check_invariants(); });
}

KubeCluster::KubeCluster(sim::Simulation& sim, net::Network& net,
                         cluster::Inventory& inventory, mon::Registry* metrics)
    : KubeCluster(sim, net, inventory, metrics, Options{}) {}

KubeCluster::~KubeCluster() { sim_.remove_audit_hook(audit_hook_); }

// --- nodes ----------------------------------------------------------------------

void KubeCluster::register_node(cluster::MachineId machine, Labels extra_labels) {
  const auto& m = inventory_.machine(machine);
  NodeInfo info;
  info.machine = machine;
  info.labels = std::move(extra_labels);
  // Implicit labels. On collision the explicit extra_labels value wins for
  // "site" / "gpu-model" (operators may relabel a node into a logical zone);
  // "machine" is reserved and always forced to the node's own id — DaemonSet
  // pinning and the pick_node fast-path depend on it resolving uniquely.
  info.labels.try_emplace("site", m.spec.site);
  info.labels["machine"] = std::to_string(machine);
  if (m.spec.gpus > 0) {
    info.labels.try_emplace("gpu-model", cluster::gpu_model_name(m.spec.gpu_model));
  }
  info.allocatable.cpu = m.spec.cpu_cores;
  info.allocatable.memory = m.spec.memory;
  info.allocatable.gpus = m.spec.gpus;
  info.ready = m.up;
  info.gpu_in_use.assign(static_cast<std::size_t>(m.spec.gpus), false);
  info.pods.reserve(8);  // steady-state churn stays within the high water
  auto [it, inserted] = nodes_.try_emplace(machine);
  if (!inserted) {
    // Re-register: replace the label set (drop the stale index slots and
    // postings first) but keep runtime state — relabeling a live node must
    // not orphan its bound pods or leak their allocations/device grants.
    index_remove(it->second);
    unindex_node_labels(it->second);
    info.allocated = it->second.allocated;
    info.gpu_in_use = std::move(it->second.gpu_in_use);
    info.image_cache = std::move(it->second.image_cache);
    info.pods = std::move(it->second.pods);
    info.taints = std::move(it->second.taints);
    info.unschedulable = it->second.unschedulable;
  }
  it->second = std::move(info);
  reindex_node(it->second);
  index_node_labels(it->second);
  for (auto& [key, ds] : daemon_sets_) reconcile_daemon_set(ds);
  kick_scheduler();
}

const NodeInfo& KubeCluster::node(cluster::MachineId machine) const {
  return nodes_.at(machine);
}

ResourceList KubeCluster::total_allocatable() const {
  ResourceList total;
  for (const auto& [id, n] : nodes_) {
    if (n.ready) total += n.allocatable;
  }
  return total;
}

ResourceList KubeCluster::total_allocated() const {
  ResourceList total;
  for (const auto& [id, n] : nodes_) {
    if (n.ready) total += n.allocated;
  }
  return total;
}

void KubeCluster::cordon(cluster::MachineId machine) {
  NodeInfo& info = nodes_.at(machine);
  info.unschedulable = true;
  reindex_node(info);
}

void KubeCluster::uncordon(cluster::MachineId machine) {
  NodeInfo& info = nodes_.at(machine);
  info.unschedulable = false;
  reindex_node(info);
  kick_scheduler();
}

void KubeCluster::drain(cluster::MachineId machine) {
  cordon(machine);
  std::vector<PodPtr> doomed = nodes_.at(machine).pods;
  for (const auto& pod : doomed) {
    if (!pod->terminal()) evict_pod(pod, "Drained");
  }
}

void KubeCluster::add_taint(cluster::MachineId machine, Taint taint) {
  NodeInfo& info = nodes_.at(machine);
  info.taints.push_back(taint);
  if (taint.effect == TaintEffect::NoExecute) {
    std::vector<PodPtr> doomed;
    for (const auto& pod : info.pods) {
      bool tolerated = false;
      for (const auto& toleration : pod->spec.tolerations) {
        tolerated = tolerated || toleration.tolerates(taint);
      }
      if (!tolerated) doomed.push_back(pod);
    }
    for (const auto& pod : doomed) {
      if (!pod->terminal()) evict_pod(pod, "TaintNoExecute");
    }
  }
}

void KubeCluster::remove_taint(cluster::MachineId machine, const std::string& key) {
  auto& taints = nodes_.at(machine).taints;
  taints.erase(std::remove_if(taints.begin(), taints.end(),
                              [&](const Taint& t) { return t.key == key; }),
               taints.end());
  kick_scheduler();
}

void KubeCluster::evict_pod(const PodPtr& pod, const std::string& reason) {
  pod->cancelled = true;
  if (pod->phase == PodPhase::Pending) {
    pending_.erase(std::remove(pending_.begin(), pending_.end(), pod), pending_.end());
  }
  finalize_pod(pod, PodPhase::Failed, reason);
}

// --- namespaces / auth -------------------------------------------------------------

void KubeCluster::create_namespace(const std::string& name) {
  namespaces_.emplace(name, Namespace{name, false, {}, {}, 0});
}

bool KubeCluster::has_namespace(const std::string& name) const {
  return namespaces_.count(name) > 0;
}

void KubeCluster::set_quota(const std::string& ns, ResourceQuota quota) {
  auto& n = namespaces_.at(ns);
  n.has_quota = true;
  n.quota = quota;
}

const Namespace& KubeCluster::get_namespace(const std::string& ns) const {
  return namespaces_.at(ns);
}

void KubeCluster::enable_auth(auth::CILogon* sso, auth::Rbac* rbac) {
  sso_ = sso;
  rbac_ = rbac;
}

std::string KubeCluster::admit(const std::string& ns, const ResourceList& requests,
                               auth::Verb verb, const auth::Token* token, bool system) {
  auto nit = namespaces_.find(ns);
  if (nit == namespaces_.end()) return "namespace '" + ns + "' does not exist";
  if (!system && sso_ != nullptr && rbac_ != nullptr) {
    if (token == nullptr) return "authentication required";
    auto identity = sso_->validate(*token);
    if (!identity) return "invalid token";
    if (!rbac_->allowed(ns, *identity, verb)) {
      return "user '" + identity->user + "' is not authorized to " +
             auth::verb_name(verb) + " in namespace '" + ns + "'";
    }
  }
  Namespace& n = nit->second;
  if (n.has_quota) {
    ResourceList would = n.used + requests;
    if (!would.fits_within(n.quota.hard) || n.pods_used + 1 > n.quota.max_pods) {
      return "quota exceeded in namespace '" + ns + "' (used " + n.used.to_string() +
             ", requested " + requests.to_string() + ")";
    }
  }
  n.used += requests;
  n.pods_used += 1;
  return "";
}

void KubeCluster::release_quota(const std::string& ns, const ResourceList& requests) {
  auto nit = namespaces_.find(ns);
  if (nit == namespaces_.end()) return;
  nit->second.used -= requests;
  nit->second.pods_used -= 1;
}

// --- workload creation ----------------------------------------------------------

Result<PodPtr> KubeCluster::create_pod(const std::string& ns, const std::string& name,
                                       PodSpec spec, Labels labels, OwnerRef owner,
                                       const auth::Token* token) {
  return create_pod_impl(ns, name, std::move(spec), std::move(labels),
                         std::move(owner), token, /*system=*/false);
}

Result<PodPtr> KubeCluster::create_pod_impl(const std::string& ns,
                                            const std::string& name, PodSpec spec,
                                            Labels labels, OwnerRef owner,
                                            const auth::Token* token, bool system) {
  const std::string key = key_of(ns, name);
  if (pods_.count(key)) return {nullptr, "pod '" + key + "' already exists"};

  auto pod = std::make_shared<Pod>();
  pod->meta.ns = ns;
  pod->meta.name = name;
  pod->meta.labels = std::move(labels);
  pod->meta.uid = next_uid_++;
  pod->spec = std::move(spec);
  pod->owner = std::move(owner);
  pod->created_at = sim_.now();

  if (std::string err = admit(ns, pod->requests(), auth::Verb::Create, token, system);
      !err.empty()) {
    return {nullptr, err};
  }

  pods_[key] = pod;
  pending_.push_back(pod);
  kick_scheduler();
  notify_watchers(pod);
  return {pod, ""};
}

void KubeCluster::disrupt_pod(const std::string& ns, const std::string& name) {
  auto it = pods_.find(key_of(ns, name));
  if (it == pods_.end() || it->second->terminal()) return;
  evict_pod(it->second, "Disrupted");
}

void KubeCluster::delete_pod(const std::string& ns, const std::string& name) {
  auto it = pods_.find(key_of(ns, name));
  if (it == pods_.end()) return;
  PodPtr pod = it->second;
  if (pod->terminal()) return;
  pod->cancelled = true;
  if (pod->phase == PodPhase::Pending) {
    pending_.erase(std::remove(pending_.begin(), pending_.end(), pod), pending_.end());
  }
  finalize_pod(pod, PodPhase::Failed, "Deleted");
}

Result<JobPtr> KubeCluster::create_job(JobSpec spec, const auth::Token* token) {
  return create_job_impl(std::move(spec), token, /*system=*/false);
}

Result<JobPtr> KubeCluster::create_job_impl(JobSpec spec, const auth::Token* token,
                                            bool system) {
  // Authorization is checked once at Job admission; the controller's pods
  // are created with system privileges (matching Kubernetes' model).
  if (!system && sso_ != nullptr && rbac_ != nullptr) {
    if (token == nullptr) return {nullptr, "authentication required"};
    auto identity = sso_->validate(*token);
    if (!identity) return {nullptr, "invalid token"};
    if (!rbac_->allowed(spec.ns, *identity, auth::Verb::Create)) {
      return {nullptr, "not authorized"};
    }
  }
  if (!has_namespace(spec.ns)) {
    return {nullptr, "namespace '" + spec.ns + "' does not exist"};
  }
  const std::string key = key_of(spec.ns, spec.name);
  if (jobs_.count(key)) return {nullptr, "job '" + key + "' already exists"};
  auto job = std::make_shared<Job>();
  job->spec = std::move(spec);
  job->created_at = sim_.now();
  jobs_[key] = job;
  reconcile_job(job);
  return {job, ""};
}

Result<ReplicaSetPtr> KubeCluster::create_replica_set(ReplicaSetSpec spec,
                                                      const auth::Token* token) {
  if (sso_ != nullptr && rbac_ != nullptr) {
    if (token == nullptr) return {nullptr, "authentication required"};
    auto identity = sso_->validate(*token);
    if (!identity) return {nullptr, "invalid token"};
    if (!rbac_->allowed(spec.ns, *identity, auth::Verb::Create)) {
      return {nullptr, "not authorized"};
    }
  }
  if (!has_namespace(spec.ns)) {
    return {nullptr, "namespace '" + spec.ns + "' does not exist"};
  }
  const std::string key = key_of(spec.ns, spec.name);
  if (replica_sets_.count(key)) return {nullptr, "replicaset '" + key + "' already exists"};
  auto rs = std::make_shared<ReplicaSet>();
  rs->spec = std::move(spec);
  replica_sets_[key] = rs;
  reconcile_replica_set(rs);
  return {rs, ""};
}

void KubeCluster::delete_replica_set(const std::string& ns, const std::string& name) {
  auto it = replica_sets_.find(key_of(ns, name));
  if (it == replica_sets_.end()) return;
  it->second->deleted = true;
  // Tear down its pods.
  for (const auto& pod : list_pods(ns)) {
    if (pod->owner.kind == "ReplicaSet" && pod->owner.name == name && !pod->terminal()) {
      delete_pod(ns, pod->meta.name);
    }
  }
}

void KubeCluster::scale_replica_set(const std::string& ns, const std::string& name,
                                    int replicas) {
  auto it = replica_sets_.find(key_of(ns, name));
  if (it == replica_sets_.end()) return;
  ReplicaSetPtr rs = it->second;
  rs->spec.replicas = replicas;
  if (rs->active > replicas) {
    // Scale down: delete the newest non-terminal pods first.
    std::vector<PodPtr> owned;
    for (const auto& pod : list_pods(ns)) {
      if (pod->owner.kind == "ReplicaSet" && pod->owner.name == name &&
          !pod->terminal()) {
        owned.push_back(pod);
      }
    }
    std::sort(owned.begin(), owned.end(), [](const PodPtr& a, const PodPtr& b) {
      return a->meta.uid > b->meta.uid;
    });
    // Mark the ReplicaSet as deleted around each removal so the controller
    // does not replace the pods we are intentionally removing.
    const int excess = rs->active - replicas;
    for (int i = 0; i < excess && i < static_cast<int>(owned.size()); ++i) {
      const bool was_deleted = rs->deleted;
      rs->deleted = true;
      delete_pod(ns, owned[static_cast<std::size_t>(i)]->meta.name);
      rs->deleted = was_deleted;
    }
  }
  reconcile_replica_set(rs);
}

Result<DeploymentPtr> KubeCluster::create_deployment(DeploymentSpec spec,
                                                     const auth::Token* token) {
  const std::string key = key_of(spec.ns, spec.name);
  if (deployments_.count(key)) return {nullptr, "deployment '" + key + "' already exists"};
  auto deployment = std::make_shared<Deployment>();
  deployment->spec = spec;
  deployment->revision = 1;

  ReplicaSetSpec rs;
  rs.ns = spec.ns;
  rs.name = deployment_rs_name(*deployment, 1);
  rs.labels = spec.labels;
  rs.labels["deployment"] = spec.name;
  rs.pod_template = spec.pod_template;
  rs.replicas = spec.replicas;
  auto created = create_replica_set(rs, token);
  if (!created.ok()) return {nullptr, created.error};
  deployments_[key] = deployment;
  deployment->rolled_out->trigger(sim_);
  return {deployment, ""};
}

void KubeCluster::update_deployment(const std::string& ns, const std::string& name,
                                    PodSpec new_template) {
  auto it = deployments_.find(key_of(ns, name));
  if (it == deployments_.end()) return;
  DeploymentPtr deployment = it->second;
  deployment->spec.pod_template = std::move(new_template);
  deployment->revision += 1;
  deployment->rolling = true;
  deployment->rolled_out = sim::make_event();  // re-arm for this rollout
  sim_.spawn(roll_deployment(this, deployment, deployment->revision));
}

sim::Task KubeCluster::roll_deployment(KubeCluster* self, DeploymentPtr deployment,
                                       int target_revision) {
  const std::string ns = deployment->spec.ns;
  const std::string old_rs = self->deployment_rs_name(*deployment, target_revision - 1);
  const std::string new_rs = self->deployment_rs_name(*deployment, target_revision);

  ReplicaSetSpec rs;
  rs.ns = ns;
  rs.name = new_rs;
  rs.labels = deployment->spec.labels;
  rs.labels["deployment"] = deployment->spec.name;
  rs.labels["revision"] = std::to_string(target_revision);
  rs.pod_template = deployment->spec.pod_template;
  rs.replicas = 0;
  self->create_replica_set(rs);

  // Surge one new pod at a time; retire an old one once the replacement is
  // Running (max unavailable 0).
  for (int i = 1; i <= deployment->spec.replicas; ++i) {
    if (deployment->revision != target_revision) co_return;  // superseded
    self->scale_replica_set(ns, new_rs, i);
    // Wait for the i-th new pod to be Running.
    while (true) {
      int running = 0;
      for (const auto& pod : self->list_pods(ns, {{"replicaset", new_rs}})) {
        running += pod->phase == PodPhase::Running;
      }
      if (running >= i || deployment->revision != target_revision) break;
      co_await self->sim_.sleep(1.0);
    }
    if (deployment->revision != target_revision) co_return;
    self->scale_replica_set(ns, old_rs, deployment->spec.replicas - i);
  }
  if (deployment->revision != target_revision) co_return;
  self->delete_replica_set(ns, old_rs);
  self->replica_sets_.erase(key_of(ns, old_rs));
  deployment->rolling = false;
  deployment->rolled_out->trigger(self->sim_);
}

void KubeCluster::delete_deployment(const std::string& ns, const std::string& name) {
  auto it = deployments_.find(key_of(ns, name));
  if (it == deployments_.end()) return;
  DeploymentPtr deployment = it->second;
  deployment->revision += 1;  // cancels any in-flight rollout
  for (int rev = 1; rev <= deployment->revision; ++rev) {
    delete_replica_set(ns, deployment_rs_name(*deployment, rev));
  }
  deployments_.erase(it);
}

DeploymentPtr KubeCluster::get_deployment(const std::string& ns,
                                          const std::string& name) const {
  auto it = deployments_.find(key_of(ns, name));
  return it == deployments_.end() ? nullptr : it->second;
}

Result<DaemonSetPtr> KubeCluster::create_daemon_set(DaemonSetSpec spec,
                                                    const auth::Token* token) {
  if (sso_ != nullptr && rbac_ != nullptr) {
    if (token == nullptr) return {nullptr, "authentication required"};
    auto identity = sso_->validate(*token);
    if (!identity || !rbac_->allowed(spec.ns, *identity, auth::Verb::Create)) {
      return {nullptr, "not authorized"};
    }
  }
  if (!has_namespace(spec.ns)) {
    return {nullptr, "namespace '" + spec.ns + "' does not exist"};
  }
  const std::string key = key_of(spec.ns, spec.name);
  if (daemon_sets_.count(key)) return {nullptr, "daemonset '" + key + "' already exists"};
  auto ds = std::make_shared<DaemonSet>();
  ds->spec = std::move(spec);
  daemon_sets_[key] = ds;
  reconcile_daemon_set(ds);
  return {ds, ""};
}

void KubeCluster::delete_daemon_set(const std::string& ns, const std::string& name) {
  auto it = daemon_sets_.find(key_of(ns, name));
  if (it == daemon_sets_.end()) return;
  it->second->deleted = true;
  for (const auto& pod : list_pods(ns)) {
    if (pod->owner.kind == "DaemonSet" && pod->owner.name == name && !pod->terminal()) {
      delete_pod(ns, pod->meta.name);
    }
  }
  daemon_sets_.erase(it);
}

Result<CronJobPtr> KubeCluster::create_cron_job(CronJobSpec spec,
                                                const auth::Token* token) {
  if (sso_ != nullptr && rbac_ != nullptr) {
    if (token == nullptr) return {nullptr, "authentication required"};
    auto identity = sso_->validate(*token);
    if (!identity || !rbac_->allowed(spec.ns, *identity, auth::Verb::Create)) {
      return {nullptr, "not authorized"};
    }
  }
  if (!has_namespace(spec.ns)) {
    return {nullptr, "namespace '" + spec.ns + "' does not exist"};
  }
  if (spec.period <= 0.0) return {nullptr, "cron period must be positive"};
  const std::string key = key_of(spec.ns, spec.name);
  if (cron_jobs_.count(key)) return {nullptr, "cronjob '" + key + "' already exists"};
  auto cron = std::make_shared<CronJob>();
  cron->spec = std::move(spec);
  cron_jobs_[key] = cron;
  sim_.spawn(cron_loop(this, cron));
  return {cron, ""};
}

sim::Task KubeCluster::cron_loop(KubeCluster* self, CronJobPtr cron) {
  while (!cron->deleted) {
    co_await self->sim_.sleep(cron->spec.period);
    if (cron->deleted) co_return;
    if (cron->suspended) continue;
    if (cron->spec.forbid_concurrent && cron->last_job != nullptr &&
        !cron->last_job->complete && !cron->last_job->failed_state) {
      cron->skipped += 1;
      continue;
    }
    JobSpec job = cron->spec.job_template;
    job.ns = cron->spec.ns;
    job.name = cron->spec.name + "-" + std::to_string(cron->fired);
    for (const auto& [k, v] : cron->spec.labels) job.labels[k] = v;
    job.labels["cronjob"] = cron->spec.name;
    // Firings run with the CronJob's admission-time authority.
    auto result = self->create_job_impl(std::move(job), nullptr, /*system=*/true);
    cron->fired += 1;
    if (result.ok()) cron->last_job = result.value;
  }
}

void KubeCluster::suspend_cron_job(const std::string& ns, const std::string& name,
                                   bool suspended) {
  auto it = cron_jobs_.find(key_of(ns, name));
  if (it != cron_jobs_.end()) it->second->suspended = suspended;
}

void KubeCluster::delete_cron_job(const std::string& ns, const std::string& name) {
  auto it = cron_jobs_.find(key_of(ns, name));
  if (it == cron_jobs_.end()) return;
  it->second->deleted = true;
  cron_jobs_.erase(it);
}

void KubeCluster::reconcile_daemon_set(const DaemonSetPtr& ds) {
  if (ds->deleted) return;
  // Resolve matching nodes from the inverted label index — ascending machine
  // id, the same order as the old full nodes_ scan (an empty selector
  // resolves to every registered node).
  for (cluster::MachineId machine : resolve_selector_nodes(ds->spec.node_selector)) {
    const NodeInfo& info = nodes_.find(machine)->second;
    if (!info.ready) continue;
    // Already hosting a live daemon pod?
    bool present = false;
    for (const auto& pod : info.pods) {
      present = present || (pod->owner.kind == "DaemonSet" &&
                            pod->owner.name == ds->spec.name && !pod->terminal());
    }
    if (present) continue;
    const std::string pod_name = ds->spec.name + "-" + std::to_string(ds->next_index++);
    Labels labels = ds->spec.labels;
    labels["daemonset"] = ds->spec.name;
    PodSpec pod_spec = ds->spec.pod_template;
    pod_spec.node_selector["machine"] = std::to_string(machine);  // pin
    create_pod_impl(ds->spec.ns, pod_name, std::move(pod_spec), labels,
                    OwnerRef{"DaemonSet", ds->spec.name}, nullptr, /*system=*/true);
  }
}

void KubeCluster::create_service(ServiceSpec spec) {
  const std::string key = key_of(spec.ns, spec.name);
  services_[key] = std::move(spec);
}

std::optional<PodPtr> KubeCluster::resolve_service(const std::string& ns,
                                                   const std::string& name) {
  auto it = services_.find(key_of(ns, name));
  if (it == services_.end()) return std::nullopt;
  std::vector<PodPtr> ready;
  for (const auto& pod : list_pods(ns, it->second.selector)) {
    if (pod->phase == PodPhase::Running) ready.push_back(pod);
  }
  if (ready.empty()) return std::nullopt;
  std::size_t& rr = service_rr_[key_of(ns, name)];
  return ready[rr++ % ready.size()];
}

// --- queries ----------------------------------------------------------------------

PodPtr KubeCluster::get_pod(const std::string& ns, const std::string& name) const {
  auto it = pods_.find(key_of(ns, name));
  return it == pods_.end() ? nullptr : it->second;
}

std::vector<PodPtr> KubeCluster::list_pods(const std::string& ns,
                                           const Labels& selector) const {
  std::vector<PodPtr> out;
  for (const auto& [key, pod] : pods_) {
    if (pod->meta.ns != ns) continue;
    if (!selector_matches(selector, pod->meta.labels)) continue;
    out.push_back(pod);
  }
  return out;
}

JobPtr KubeCluster::get_job(const std::string& ns, const std::string& name) const {
  auto it = jobs_.find(key_of(ns, name));
  return it == jobs_.end() ? nullptr : it->second;
}

void KubeCluster::watch_pods(std::function<void(const PodPtr&)> fn) {
  watchers_.push_back(std::move(fn));
}

void KubeCluster::notify_watchers(const PodPtr& pod) {
  for (auto& fn : watchers_) fn(pod);
}

// --- invariant audit ----------------------------------------------------------------

void KubeCluster::check_invariants() const {
  constexpr double kCpuEps = 1e-6;
  for (const auto& [machine, info] : nodes_) {
    CHASE_INVARIANT(info.allocated.cpu >= -kCpuEps && info.allocated.gpus >= 0,
                    "negative node allocation");
    CHASE_INVARIANT(info.allocated.cpu <= info.allocatable.cpu + kCpuEps &&
                        info.allocated.memory <= info.allocatable.memory &&
                        info.allocated.gpus <= info.allocatable.gpus,
                    "node over-allocated beyond its capacity");
    CHASE_INVARIANT(info.gpu_in_use.size() ==
                        static_cast<std::size_t>(info.allocatable.gpus),
                    "device-plugin GPU table does not match the node's GPU count");
    ResourceList bound;
    std::size_t granted = 0;
    std::vector<bool> holder(info.gpu_in_use.size(), false);
    for (const auto& pod : info.pods) {
      CHASE_INVARIANT(pod != nullptr && !pod->terminal(),
                      "terminal pod still bound to a node");
      CHASE_INVARIANT(pod->node == machine, "pod listed on a node it is not bound to");
      bound += pod->requests();
      granted += pod->gpu_ids.size();
      for (int gpu : pod->gpu_ids) {
        CHASE_INVARIANT(gpu >= 0 && gpu < static_cast<int>(info.gpu_in_use.size()),
                        "granted GPU id out of range");
        CHASE_INVARIANT(info.gpu_in_use[static_cast<std::size_t>(gpu)],
                        "pod holds a GPU the device plugin marks free");
        CHASE_INVARIANT(!holder[static_cast<std::size_t>(gpu)],
                        "one GPU granted to two pods");
        holder[static_cast<std::size_t>(gpu)] = true;
      }
    }
    // Expensive: re-derive the node's accounting from its bound pod set.
    CHASE_AUDIT(std::fabs(bound.cpu - info.allocated.cpu) <= kCpuEps &&
                    bound.memory == info.allocated.memory &&
                    bound.gpus == info.allocated.gpus,
                "node allocated != sum of bound pod requests");
    CHASE_AUDIT(granted == static_cast<std::size_t>(std::count(info.gpu_in_use.begin(),
                                                               info.gpu_in_use.end(), true)),
                "GPUs marked in use != GPUs granted to bound pods");
  }
  for (const auto& pod : pending_) {
    CHASE_INVARIANT(pod != nullptr && !pod->terminal() && pod->node < 0,
                    "scheduler queue holds a terminal or already-bound pod");
  }
  // Feasibility index: every schedulable node sits in exactly the bucket its
  // current headroom/capacity class dictates, and the buckets hold nothing
  // else (sorted, no duplicates, totals match the schedulable node count).
  std::size_t schedulable = 0;
  for (const auto& [machine, info] : nodes_) {
    const bool member = info.ready && !info.unschedulable;
    const int fc = member ? resource_class(info.allocatable.cpu - info.allocated.cpu,
                                           info.allocatable.gpus - info.allocated.gpus)
                          : -1;
    const int cc =
        member ? resource_class(info.allocatable.cpu, info.allocatable.gpus) : -1;
    schedulable += member ? 1 : 0;
    CHASE_INVARIANT(info.idx_free == fc && info.idx_cap == cc,
                    "node's feasibility-index slot is stale for its class");
    if (member) {
      const auto& fb = free_buckets_[static_cast<std::size_t>(fc)];
      const auto& cb = cap_buckets_[static_cast<std::size_t>(cc)];
      CHASE_INVARIANT(std::binary_search(fb.begin(), fb.end(), machine) &&
                          std::binary_search(cb.begin(), cb.end(), machine),
                      "schedulable node missing from its feasibility bucket");
    }
  }
  std::size_t free_slots = 0;
  std::size_t cap_slots = 0;
  for (int b = 0; b < kClassCount; ++b) {
    CHASE_INVARIANT(std::is_sorted(free_buckets_[b].begin(), free_buckets_[b].end()) &&
                        std::is_sorted(cap_buckets_[b].begin(), cap_buckets_[b].end()),
                    "feasibility bucket out of machine-id order");
    free_slots += free_buckets_[b].size();
    cap_slots += cap_buckets_[b].size();
  }
  CHASE_INVARIANT(free_slots == schedulable && cap_slots == schedulable,
                  "feasibility index size diverged from the schedulable node set");
  // Inverted label index: every label a node carries has a posting holding
  // that node; at level 2 the whole index is rescanned — postings sorted,
  // deduped, and every slot justified by the node's actual label set.
  for (const auto& [machine, info] : nodes_) {
    for (const auto& [k, v] : info.labels) {
      const auto it = label_index_.find(label_key(k, v));
      CHASE_INVARIANT(it != label_index_.end() &&
                          std::binary_search(it->second.begin(), it->second.end(),
                                             machine),
                      "node label missing from the inverted label index");
    }
  }
  if (util::audit_level() >= 2) {
    std::size_t label_slots = 0;
    for (const auto& [key, posting] : label_index_) {
      CHASE_AUDIT(!posting.empty() &&
                      std::is_sorted(posting.begin(), posting.end()) &&
                      std::adjacent_find(posting.begin(), posting.end()) ==
                          posting.end(),
                  "label posting empty, unsorted, or duplicated");
      const std::size_t cut = key.find('\x1F');
      const std::string k = key.substr(0, cut);
      const std::string v = key.substr(cut + 1);
      for (cluster::MachineId machine : posting) {
        const auto nit = nodes_.find(machine);
        CHASE_AUDIT(nit != nodes_.end(), "label posting names an unregistered node");
        const auto lit = nit->second.labels.find(k);
        CHASE_AUDIT(lit != nit->second.labels.end() && lit->second == v,
                    "label posting slot not justified by the node's labels");
      }
      label_slots += posting.size();
    }
    std::size_t label_total = 0;
    for (const auto& [machine, info] : nodes_) label_total += info.labels.size();
    CHASE_AUDIT(label_slots == label_total,
                "inverted label index size diverged from node label sets");
  }
  for (const auto& [name, ns] : namespaces_) {
    CHASE_INVARIANT(ns.pods_used >= 0, "namespace pod count went negative");
    if (ns.has_quota) {
      CHASE_INVARIANT(ns.used.cpu <= ns.quota.hard.cpu + kCpuEps &&
                          ns.used.memory <= ns.quota.hard.memory &&
                          ns.used.gpus <= ns.quota.hard.gpus &&
                          ns.pods_used <= ns.quota.max_pods,
                      "namespace '" + name + "' exceeds its resource quota");
    }
  }
  for (const auto& [key, job] : jobs_) {
    CHASE_INVARIANT(job->active >= 0 && job->succeeded >= 0 && job->failed >= 0,
                    "Job counters went negative");
  }
  for (const auto& [key, rs] : replica_sets_) {
    CHASE_INVARIANT(rs->active >= 0, "ReplicaSet active count went negative");
  }
  // Expensive: controller replica counts and namespace usage re-derived from
  // the full pod set (pods_ retains terminal pods; only live ones count).
  if (util::audit_level() >= 2) {
    std::map<std::string, ResourceList> ns_used;
    std::map<std::string, int> ns_pods;
    std::map<std::string, int> owner_active;
    for (const auto& [key, pod] : pods_) {
      if (pod->terminal()) continue;
      ns_used[pod->meta.ns] += pod->requests();
      ns_pods[pod->meta.ns] += 1;
      if (pod->owner.valid()) {
        owner_active[pod->owner.kind + ":" + key_of(pod->meta.ns, pod->owner.name)] += 1;
      }
    }
    for (const auto& [name, ns] : namespaces_) {
      const ResourceList& expect = ns_used[name];
      CHASE_AUDIT(std::fabs(expect.cpu - ns.used.cpu) <= kCpuEps &&
                      expect.memory == ns.used.memory && expect.gpus == ns.used.gpus,
                  "namespace '" + name + "' usage != sum of its live pods' requests");
      CHASE_AUDIT(ns.pods_used == ns_pods[name],
                  "namespace '" + name + "' pod count != its live pods");
    }
    for (const auto& [key, job] : jobs_) {
      CHASE_AUDIT(job->active == owner_active["Job:" + key],
                  "Job '" + key + "' active count != its live pods");
    }
    for (const auto& [key, rs] : replica_sets_) {
      CHASE_AUDIT(rs->active == owner_active["ReplicaSet:" + key],
                  "ReplicaSet '" + key + "' active count != its live pods");
    }
  }
}

// --- scheduler ----------------------------------------------------------------------

void KubeCluster::kick_scheduler() {
  if (pass_scheduled_ || pending_.empty()) return;
  pass_scheduled_ = true;
  sim_.schedule(options_.scheduling_latency, [this] {
    pass_scheduled_ = false;
    scheduling_pass();
  });
}

void KubeCluster::scheduling_pass() {
  std::vector<PodPtr> still_pending;
  still_pending.reserve(pending_.size());
  while (!pending_.empty()) {
    PodPtr pod = pending_.front();
    pending_.pop_front();
    if (pod->terminal() || pod->cancelled) continue;
    auto choice = pick_node(*pod);
    if (!choice) {
      // Preemption: a high-priority pod may push lower-priority pods off a
      // node; the evicted pods' owners recreate them and they queue behind.
      if (pod->spec.priority > 0 && try_preempt(*pod)) {
        choice = pick_node(*pod);
      }
      if (!choice) {
        still_pending.push_back(std::move(pod));
        continue;
      }
    }
    bind(pod, *choice);
  }
  pending_.assign(std::make_move_iterator(still_pending.begin()),
                  std::make_move_iterator(still_pending.end()));
}

bool KubeCluster::node_admits(const NodeInfo& info, const Pod& pod) const {
  if (!info.ready || info.unschedulable) return false;
  if (!selector_matches(pod.spec.node_selector, info.labels)) return false;
  for (const auto& taint : info.taints) {
    if (taint.effect != TaintEffect::NoSchedule &&
        taint.effect != TaintEffect::NoExecute) {
      continue;
    }
    bool tolerated = false;
    for (const auto& toleration : pod.spec.tolerations) {
      tolerated = tolerated || toleration.tolerates(taint);
    }
    if (!tolerated) return false;
  }
  return true;
}

// --- feasibility index --------------------------------------------------------------

int KubeCluster::resource_class(double cpu, int gpus) {
  const int g = std::clamp(gpus, 0, kGpuClassMax);
  const auto whole = cpu <= 0.0 ? 0ull : static_cast<unsigned long long>(cpu);
  const int c = std::min(static_cast<int>(std::bit_width(whole)), kCpuClassMax);
  return g * (kCpuClassMax + 1) + c;
}

void KubeCluster::index_remove(NodeInfo& info) {
  const auto drop = [&](std::vector<cluster::MachineId>& bucket) {
    bucket.erase(std::remove(bucket.begin(), bucket.end(), info.machine), bucket.end());
  };
  if (info.idx_free >= 0) drop(free_buckets_[info.idx_free]);
  if (info.idx_cap >= 0) drop(cap_buckets_[info.idx_cap]);
  info.idx_free = -1;
  info.idx_cap = -1;
}

void KubeCluster::reindex_node(NodeInfo& info) {
  const bool member = info.ready && !info.unschedulable;
  const int fc = member ? resource_class(info.allocatable.cpu - info.allocated.cpu,
                                         info.allocatable.gpus - info.allocated.gpus)
                        : -1;
  const int cc = member ? resource_class(info.allocatable.cpu, info.allocatable.gpus) : -1;
  if (info.idx_free == fc && info.idx_cap == cc) return;
  index_remove(info);
  const auto put = [&](std::vector<cluster::MachineId>& bucket) {
    bucket.insert(std::lower_bound(bucket.begin(), bucket.end(), info.machine),
                  info.machine);
  };
  if (fc >= 0) put(free_buckets_[fc]);
  if (cc >= 0) put(cap_buckets_[cc]);
  info.idx_free = fc;
  info.idx_cap = cc;
}

void KubeCluster::gather_candidates(const ResourceList& requests, bool by_capacity) {
  // Both class functions are monotone, so every node with enough headroom
  // (or capacity) sits in a bucket at or above the request's class in both
  // axes: the scan below is a feasibility superset, never a miss. The merge
  // re-sorts by machine id so scoring visits candidates in the same order
  // as the old full nodes_ scan.
  sched_candidates_.clear();
  const auto& buckets = by_capacity ? cap_buckets_ : free_buckets_;
  const int g_lo = std::clamp(requests.gpus, 0, kGpuClassMax);
  const auto whole = requests.cpu <= 0.0 ? 0ull : static_cast<unsigned long long>(requests.cpu);
  const int c_lo = std::min(static_cast<int>(std::bit_width(whole)), kCpuClassMax);
  for (int g = g_lo; g <= kGpuClassMax; ++g) {
    for (int c = c_lo; c <= kCpuClassMax; ++c) {
      const auto& bucket = buckets[g * (kCpuClassMax + 1) + c];
      sched_candidates_.insert(sched_candidates_.end(), bucket.begin(), bucket.end());
    }
  }
  std::sort(sched_candidates_.begin(), sched_candidates_.end());
}

bool KubeCluster::has_capacity_for(const ResourceList& requests) const {
  // Same monotone-class superset scan as gather_candidates, but read-only and
  // short-circuiting: answers "could this pod EVER bind here" without
  // touching scheduler scratch state (used by the federation controller).
  const int g_lo = std::clamp(requests.gpus, 0, kGpuClassMax);
  const auto whole =
      requests.cpu <= 0.0 ? 0ull : static_cast<unsigned long long>(requests.cpu);
  const int c_lo = std::min(static_cast<int>(std::bit_width(whole)), kCpuClassMax);
  for (int g = g_lo; g <= kGpuClassMax; ++g) {
    for (int c = c_lo; c <= kCpuClassMax; ++c) {
      for (cluster::MachineId machine : cap_buckets_[g * (kCpuClassMax + 1) + c]) {
        if (requests.fits_within(nodes_.find(machine)->second.allocatable)) return true;
      }
    }
  }
  return false;
}

// --- inverted label index -----------------------------------------------------------

void KubeCluster::index_node_labels(const NodeInfo& info) {
  for (const auto& [k, v] : info.labels) {
    auto& posting = label_index_[label_key(k, v)];
    posting.insert(std::lower_bound(posting.begin(), posting.end(), info.machine),
                   info.machine);
  }
  ++label_epoch_;  // memoized selector resolutions are now stale
}

void KubeCluster::unindex_node_labels(const NodeInfo& info) {
  for (const auto& [k, v] : info.labels) {
    auto it = label_index_.find(label_key(k, v));
    if (it == label_index_.end()) continue;
    auto& posting = it->second;
    posting.erase(std::remove(posting.begin(), posting.end(), info.machine),
                  posting.end());
    if (posting.empty()) label_index_.erase(it);
  }
  ++label_epoch_;
}

const std::vector<cluster::MachineId>& KubeCluster::resolve_selector_nodes(
    const Labels& selector) {
  // Memoize per serialized selector; Labels is an ordered map, so equal
  // selectors serialize identically. Entries are epoch-validated, never
  // evicted — the live selector population (DaemonSets, pod templates) is
  // small and stable.
  std::string key;
  for (const auto& [k, v] : selector) {
    key += k;
    key += '\x1F';
    key += v;
    key += '\x1E';
  }
  SelectorCache& cached = selector_cache_[key];
  if (cached.stamp == label_epoch_) return cached.nodes;
  cached.stamp = label_epoch_;
  cached.nodes.clear();
  if (selector.empty()) {  // every registered node matches, ascending id
    cached.nodes.reserve(nodes_.size());
    for (const auto& [machine, info] : nodes_) cached.nodes.push_back(machine);
    return cached.nodes;
  }
  // Walk the rarest term's posting list and verify the rest against each
  // node's own label set — O(smallest posting), not O(nodes).
  const std::vector<cluster::MachineId>* base = nullptr;
  for (const auto& [k, v] : selector) {
    auto it = label_index_.find(label_key(k, v));
    if (it == label_index_.end()) return cached.nodes;  // no node carries the term
    if (base == nullptr || it->second.size() < base->size()) base = &it->second;
  }
  cached.nodes.reserve(base->size());
  for (cluster::MachineId machine : *base) {
    if (selector_matches(selector, nodes_.find(machine)->second.labels)) {
      cached.nodes.push_back(machine);
    }
  }
  return cached.nodes;
}

std::vector<cluster::MachineId> KubeCluster::nodes_matching(const Labels& selector) {
  return resolve_selector_nodes(selector);
}

void KubeCluster::filter_candidates_by_selector(const Labels& selector) {
  if (selector.empty() || sched_candidates_.empty()) return;
  const std::vector<cluster::MachineId>& match = resolve_selector_nodes(selector);
  sel_scratch_.clear();
  std::set_intersection(sched_candidates_.begin(), sched_candidates_.end(),
                        match.begin(), match.end(), std::back_inserter(sel_scratch_));
  sched_candidates_.swap(sel_scratch_);
}

bool KubeCluster::try_preempt(const Pod& pod) {
  const ResourceList requests = pod.requests();
  // Pick the node where evicting the cheapest set of strictly-lower-priority
  // pods frees enough room; prefer evicting as little priority as possible.
  // Candidates come from the capacity-class buckets: preemption can free
  // anything allocated, so total capacity is the binding constraint.
  cluster::MachineId best_node = -1;
  std::vector<PodPtr> best_victims;
  int best_cost = INT_MAX;
  gather_candidates(requests, /*by_capacity=*/true);
  filter_candidates_by_selector(pod.spec.node_selector);
  for (cluster::MachineId machine : sched_candidates_) {
    NodeInfo& info = nodes_.find(machine)->second;
    if (!node_admits(info, pod)) continue;
    if (requests.fits_within(info.allocatable) == false) continue;
    // Candidate victims: lower-priority pods, lowest priority first.
    std::vector<PodPtr> candidates;
    candidates.reserve(info.pods.size());
    for (const auto& victim : info.pods) {
      if (!victim->terminal() && victim->spec.priority < pod.spec.priority) {
        candidates.push_back(victim);
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const PodPtr& a, const PodPtr& b) {
                return a->spec.priority < b->spec.priority;
              });
    ResourceList would = info.allocated;
    std::vector<PodPtr> victims;
    victims.reserve(candidates.size());
    int cost = 0;
    for (const auto& victim : candidates) {
      ResourceList after = would + requests;
      if (after.fits_within(info.allocatable)) break;
      would -= victim->requests();
      victims.push_back(victim);
      cost += victim->spec.priority + 1;
    }
    ResourceList after = would + requests;
    if (!after.fits_within(info.allocatable)) continue;  // still no room
    if (!victims.empty() && cost < best_cost) {
      best_cost = cost;
      best_node = machine;
      best_victims = victims;
    }
  }
  if (best_node < 0) return false;
  for (const auto& victim : best_victims) evict_pod(victim, "Preempted");
  return true;
}

std::optional<cluster::MachineId> KubeCluster::pick_node(const Pod& pod) {
  const ResourceList requests = pod.requests();
  // Node-pinned pods (DaemonSets) name their machine in the selector; the
  // "machine" label is always the node's own id, so exactly one node can
  // match — resolve it directly instead of scanning.
  const auto pin = pod.spec.node_selector.find("machine");
  if (pin != pod.spec.node_selector.end()) {
    char* end = nullptr;
    const long long id = std::strtoll(pin->second.c_str(), &end, 10);
    if (end == pin->second.c_str() || *end != '\0') return std::nullopt;
    const auto it = nodes_.find(static_cast<cluster::MachineId>(id));
    if (it == nodes_.end()) return std::nullopt;
    const NodeInfo& info = it->second;
    if (!node_admits(info, pod)) return std::nullopt;
    if (!(info.allocated + requests).fits_within(info.allocatable)) return std::nullopt;
    return info.machine;
  }
  std::optional<cluster::MachineId> best;
  double best_score = -1.0;
  gather_candidates(requests, /*by_capacity=*/false);
  filter_candidates_by_selector(pod.spec.node_selector);
  // Sampled scoring (Kubernetes' percentageOfNodesToScore, determinized):
  // above the threshold, score at most score_sample_max FEASIBLE candidates
  // starting at a rotating offset so load still spreads across the fleet.
  // At or below the threshold start stays 0 and the budget can never run
  // out, so the walk is bit-identical to the old exhaustive ascending scan.
  const std::size_t n = sched_candidates_.size();
  std::size_t budget = n;
  std::size_t start = 0;
  if (options_.score_sample_max > 0 &&
      n > static_cast<std::size_t>(options_.score_sample_max)) {
    budget = static_cast<std::size_t>(options_.score_sample_max);
    start = static_cast<std::size_t>(sample_rotor_++ % n);
  }
  for (std::size_t k = 0; k < n && budget > 0; ++k) {
    std::size_t j = start + k;
    if (j >= n) j -= n;  // wrap
    const cluster::MachineId machine = sched_candidates_[j];
    const NodeInfo& info = nodes_.find(machine)->second;
    if (!node_admits(info, pod)) continue;
    ResourceList would = info.allocated + requests;
    if (!would.fits_within(info.allocatable)) continue;
    --budget;
    // Spread: prefer the node with the most free CPU/GPU fraction
    // (least-allocated). BinPack inverts the score to consolidate.
    const double cpu_free = 1.0 - would.cpu / std::max(1.0, info.allocatable.cpu);
    const double gpu_free =
        info.allocatable.gpus > 0
            ? 1.0 - static_cast<double>(would.gpus) / info.allocatable.gpus
            : 0.0;
    double score = cpu_free + gpu_free;
    if (options_.policy == SchedulingPolicy::BinPack) score = -score;
    if (score > best_score) {
      best_score = score;
      best = machine;
    }
  }
  return best;
}

void KubeCluster::bind(const PodPtr& pod, cluster::MachineId machine) {
  NodeInfo& info = nodes_.at(machine);
  pod->node = machine;
  info.allocated += pod->requests();
  reindex_node(info);  // headroom class may have dropped
  info.pods.push_back(pod);
  // Device plugin: grant specific GPU ids.
  const int want = pod->requests().gpus;
  pod->gpu_ids.reserve(static_cast<std::size_t>(want));
  for (std::size_t i = 0; i < info.gpu_in_use.size() &&
                          pod->gpu_ids.size() < static_cast<std::size_t>(want);
       ++i) {
    if (!info.gpu_in_use[i]) {
      info.gpu_in_use[i] = true;
      pod->gpu_ids.push_back(static_cast<int>(i));
    }
  }
  assert(pod->gpu_ids.size() == static_cast<std::size_t>(want));
  pod->scheduled->trigger(sim_);
  sim_.spawn(run_pod(this, pod));
}

// --- kubelet ------------------------------------------------------------------------

sim::Task KubeCluster::run_pod(KubeCluster* self, PodPtr pod) {
  // Image pull: first use of an image on a node fetches it from the
  // registry; later pods hit the node-local cache.
  if (self->options_.registry_node >= 0 && pod->node >= 0) {
    const net::NodeId here = self->inventory_.machine(pod->node).net_node;
    for (const auto& c : pod->spec.containers) {
      // Look nodes_ up fresh each iteration: the pull below suspends, and
      // holding a NodeInfo reference across it would dangle if the node
      // entry is ever erased meanwhile.
      const auto& cache = self->nodes_.at(pod->node).image_cache;
      const bool cached = std::find(cache.begin(), cache.end(), c.image) != cache.end();
      if (!cached) {
        co_await self->net_.send(self->options_.registry_node, here, c.image_size);
        self->nodes_.at(pod->node).image_cache.push_back(c.image);
      }
    }
  }
  co_await self->sim_.sleep(self->options_.container_start_latency);
  if (pod->terminal() || pod->cancelled) co_return;

  pod->phase = PodPhase::Running;
  pod->started_at = self->sim_.now();
  pod->usage = pod->requests();
  pod->usage.gpus = 0;  // GPU usage reported explicitly via gpu_compute
  pod->context.reset(new PodContext(self, pod.get()));
  self->register_pod_metrics(pod);
  self->notify_watchers(pod);

  if (!pod->spec.containers.empty()) {
    auto all_done = sim::make_event();
    auto latch = std::make_shared<sim::Latch>(
        static_cast<std::int64_t>(pod->spec.containers.size()), all_done);
    for (std::size_t i = 0; i < pod->spec.containers.size(); ++i) {
      self->sim_.spawn(run_container(self, pod, i, latch));
    }
    co_await all_done->wait(self->sim_);
  }

  if (pod->terminal()) co_return;  // failed via node loss / deletion meanwhile
  self->finalize_pod(pod, pod->exit_code == 0 ? PodPhase::Succeeded : PodPhase::Failed,
                     pod->reason);
}

sim::Task KubeCluster::run_container(KubeCluster* self, PodPtr pod, std::size_t index,
                                     std::shared_ptr<sim::Latch> latch) {
  const ContainerSpec& c = pod->spec.containers[index];
  if (c.program) {
    co_await c.program(*pod->context);
  }
  latch->count_down(self->sim_);
}

void KubeCluster::finalize_pod(const PodPtr& pod, PodPhase phase,
                               const std::string& reason) {
  if (pod->terminal()) return;
  pod->phase = phase;
  pod->reason = reason;
  pod->finished_at = sim_.now();
  pod->usage = ResourceList{};
  release_node_resources(pod);
  release_quota(pod->meta.ns, pod->requests());
  unregister_pod_metrics(pod);
  pod->terminated->trigger(sim_);
  on_pod_terminated(pod);
  notify_watchers(pod);
  kick_scheduler();
}

void KubeCluster::release_node_resources(const PodPtr& pod) {
  if (pod->node < 0) return;
  auto it = nodes_.find(pod->node);
  if (it == nodes_.end()) return;
  NodeInfo& info = it->second;
  info.allocated -= pod->requests();
  reindex_node(info);  // headroom class may have risen
  for (int gpu : pod->gpu_ids) {
    if (gpu >= 0 && gpu < static_cast<int>(info.gpu_in_use.size())) {
      info.gpu_in_use[static_cast<std::size_t>(gpu)] = false;
    }
  }
  info.pods.erase(std::remove(info.pods.begin(), info.pods.end(), pod), info.pods.end());
}

// --- monitoring -----------------------------------------------------------------------

mon::Labels KubeCluster::pod_metric_labels(const Pod& pod) const {
  mon::Labels labels(pod.meta.labels.begin(), pod.meta.labels.end());
  labels["ns"] = pod.meta.ns;
  labels["pod"] = pod.meta.name;
  return labels;
}

void KubeCluster::register_pod_metrics(const PodPtr& pod) {
  if (metrics_ == nullptr) return;
  const mon::Labels labels = pod_metric_labels(*pod);
  Pod* raw = pod.get();
  metrics_->register_probe("pod_cpu_cores", labels, [raw] { return raw->usage.cpu; });
  metrics_->register_probe("pod_memory_bytes", labels,
                           [raw] { return static_cast<double>(raw->usage.memory); });
  metrics_->register_probe("pod_gpus", labels,
                           [raw] { return static_cast<double>(raw->usage.gpus); });
}

void KubeCluster::unregister_pod_metrics(const PodPtr& pod) {
  if (metrics_ == nullptr) return;
  const mon::Labels labels = pod_metric_labels(*pod);
  const double t = sim_.now();
  for (const char* name : {"pod_cpu_cores", "pod_memory_bytes", "pod_gpus"}) {
    metrics_->unregister_probe(name, labels);
    metrics_->record(name, labels, t, 0.0);  // close the series at zero
  }
}

// --- controllers ------------------------------------------------------------------------

void KubeCluster::on_machine_state(cluster::MachineId machine, bool up) {
  auto it = nodes_.find(machine);
  if (it == nodes_.end()) return;
  NodeInfo& info = it->second;
  info.ready = up;
  reindex_node(info);
  if (!up) {
    // Node controller: evict every pod bound to the lost node; their owners
    // (Job/ReplicaSet controllers) recreate them elsewhere (paper §V: "If a
    // node is taken offline the pods on that node will be rescheduled").
    std::vector<PodPtr> doomed = info.pods;
    for (const auto& pod : doomed) {
      if (!pod->terminal()) {
        pod->cancelled = true;
        finalize_pod(pod, PodPhase::Failed, "NodeLost");
      }
    }
  } else {
    for (auto& [key, ds] : daemon_sets_) reconcile_daemon_set(ds);
    kick_scheduler();
  }
}

void KubeCluster::on_pod_terminated(const PodPtr& pod) {
  if (!pod->owner.valid()) return;
  const std::string key = key_of(pod->meta.ns, pod->owner.name);
  if (pod->owner.kind == "Job") {
    auto it = jobs_.find(key);
    if (it == jobs_.end()) return;
    JobPtr job = it->second;
    job->active -= 1;
    if (pod->phase == PodPhase::Succeeded) {
      job->succeeded += 1;
    } else if (pod->reason != "NodeLost" && pod->reason != "Drained" &&
               pod->reason != "Preempted" && pod->reason != "TaintNoExecute" &&
               pod->reason != "Disrupted") {
      // Evictions (node loss, drains, preemption, taints) are rescheduled
      // without counting against the backoff limit, matching Kubernetes'
      // distinction between pod failures and disruptions.
      job->failed += 1;
    }
    if (job->succeeded >= job->spec.completions) {
      if (!job->complete) {
        job->complete = true;
        job->finished_at = sim_.now();
        job->done->trigger(sim_);
      }
      return;
    }
    if (job->failed > job->spec.backoff_limit) {
      if (!job->failed_state) {
        job->failed_state = true;
        job->finished_at = sim_.now();
        job->done->trigger(sim_);
      }
      return;
    }
    reconcile_job(job);
  } else if (pod->owner.kind == "ReplicaSet") {
    auto it = replica_sets_.find(key);
    if (it == replica_sets_.end()) return;
    ReplicaSetPtr rs = it->second;
    rs->active -= 1;
    if (!rs->deleted) reconcile_replica_set(rs);
  } else if (pod->owner.kind == "DaemonSet") {
    auto it = daemon_sets_.find(key);
    if (it != daemon_sets_.end()) reconcile_daemon_set(it->second);
  }
}

void KubeCluster::reconcile_job(const JobPtr& job) {
  if (job->complete || job->failed_state) return;
  const int want_active =
      std::min(job->spec.parallelism, job->spec.completions - job->succeeded);
  while (job->active < want_active) {
    const std::string pod_name =
        job->spec.name + "-" + std::to_string(job->next_index++);
    Labels labels = job->spec.labels;
    labels["job"] = job->spec.name;
    auto result = create_pod_impl(job->spec.ns, pod_name, job->spec.pod_template,
                                  labels, OwnerRef{"Job", job->spec.name}, nullptr,
                                  /*system=*/true);
    if (!result.ok()) {
      job->failed_state = true;
      job->finished_at = sim_.now();
      job->done->trigger(sim_);
      return;
    }
    job->active += 1;
  }
}

void KubeCluster::reconcile_replica_set(const ReplicaSetPtr& rs) {
  if (rs->deleted) return;
  while (rs->active < rs->spec.replicas) {
    const std::string pod_name = rs->spec.name + "-" + std::to_string(rs->next_index++);
    Labels labels = rs->spec.labels;
    labels["replicaset"] = rs->spec.name;
    auto result = create_pod_impl(rs->spec.ns, pod_name, rs->spec.pod_template,
                                  labels, OwnerRef{"ReplicaSet", rs->spec.name},
                                  nullptr, /*system=*/true);
    if (!result.ok()) return;  // e.g. quota: retry on next termination
    rs->active += 1;
  }
}

}  // namespace chase::kube
