#include "thredds/catalog.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/units.hpp"

namespace chase::thredds {

std::int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2u) / 5u +
                       static_cast<unsigned>(d) - 1u;
  const unsigned doe = yoe * 365u + yoe / 4u - yoe / 100u + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

namespace {

/// Inverse of days_from_civil.
void civil_from_days(std::int64_t z, int& y, int& m, int& d) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t yy = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  y = static_cast<int>(yy + (m <= 2));
}

}  // namespace

std::string DateTime::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:00Z", year, month, day, hour);
  return buf;
}

Bytes Dataset::file_bytes() const {
  Bytes total = 0;
  for (const auto& v : variables) total += v.bytes_per_file;
  return total;
}

std::optional<Bytes> Dataset::subset_bytes(const std::string& variable) const {
  for (const auto& v : variables) {
    if (v.name == variable) return v.bytes_per_file;
  }
  return std::nullopt;
}

std::optional<Bytes> Dataset::total_subset_bytes(const std::string& variable) const {
  auto per_file = subset_bytes(variable);
  if (!per_file) return std::nullopt;
  return *per_file * file_count;
}

DateTime Dataset::file_time(std::size_t index) const {
  const double hours_total = start.hour + cadence_hours * static_cast<double>(index);
  const std::int64_t day_offset = static_cast<std::int64_t>(hours_total / 24.0);
  const int hour = static_cast<int>(hours_total - static_cast<double>(day_offset) * 24.0);
  const std::int64_t day = days_from_civil(start.year, start.month, start.day) + day_offset;
  DateTime t;
  civil_from_days(day, t.year, t.month, t.day);
  t.hour = hour;
  return t;
}

std::string Dataset::file_url(std::size_t index) const {
  return "/thredds/" + name + "/" + file_time(index).to_string() + ".nc4";
}

double hours_since_epoch(const DateTime& t) {
  return static_cast<double>(days_from_civil(t.year, t.month, t.day)) * 24.0 + t.hour;
}

std::size_t Dataset::index_at_or_after(const DateTime& t) const {
  const double start_h = hours_since_epoch(start);
  const double want_h = hours_since_epoch(t);
  if (want_h <= start_h) return 0;
  const double steps = (want_h - start_h) / cadence_hours;
  const auto index = static_cast<std::size_t>(std::ceil(steps - 1e-9));
  return std::min(index, file_count);
}

std::vector<std::size_t> Dataset::files_in_range(const DateTime& from,
                                                 const DateTime& to) const {
  std::vector<std::size_t> out;
  const double to_h = hours_since_epoch(to);
  for (std::size_t i = index_at_or_after(from); i < file_count; ++i) {
    if (hours_since_epoch(file_time(i)) > to_h + 1e-9) break;
    out.push_back(i);
  }
  return out;
}

std::string render_catalog(const std::vector<Dataset>& datasets) {
  std::string out = "THREDDS Catalog\n===============\n";
  for (const auto& ds : datasets) {
    out += "\nDataset: " + ds.name + "\n";
    out += "  time span : " + ds.start.to_string() + " .. " +
           ds.file_time(ds.file_count - 1).to_string() + " (every " +
           util::format_double(ds.cadence_hours, 0) + "h, " +
           std::to_string(ds.file_count) + " files)\n";
    out += "  grid      : " + std::to_string(ds.grid_x) + "x" +
           std::to_string(ds.grid_y) + ", " + std::to_string(ds.levels) +
           " levels\n";
    out += "  whole file: " + util::format_bytes(static_cast<double>(ds.file_bytes())) +
           "  (archive " + util::format_bytes(static_cast<double>(ds.total_bytes())) +
           ")\n  variables :";
    for (const auto& v : ds.variables) {
      out += " " + v.name + "(" +
             util::format_bytes(static_cast<double>(v.bytes_per_file)) + ")";
    }
    out += "\n";
  }
  return out;
}

Dataset make_merra2_m2i3npasm() {
  Dataset ds;
  ds.name = "M2I3NPASM";
  ds.start = DateTime{1980, 1, 1, 0};
  ds.cadence_hours = 3;
  // 1980-01-01 .. 2018-05-31 inclusive is 14,031 days of 8 files, plus the
  // 2018-06-01T00Z instantaneous file = the paper's 112,249 NetCDF files.
  const std::int64_t days =
      days_from_civil(2018, 5, 31) - days_from_civil(1980, 1, 1) + 1;
  ds.file_count = static_cast<std::size_t>(days) * 8 + 1;

  // Per-file variable slabs chosen so the archive totals match the paper:
  // whole archive 455 GB, IVT subset 246 GB.
  const Bytes ivt = 246'000'000'000ULL / ds.file_count;         // ~2.19 MB
  const Bytes rest = 209'000'000'000ULL / ds.file_count;        // ~1.86 MB
  ds.variables = {
      {"IVT", ivt},
      {"T", rest * 30 / 100},
      {"U", rest * 20 / 100},
      {"V", rest * 20 / 100},
      {"QV", rest * 18 / 100},
      {"H", rest * 12 / 100},
  };
  return ds;
}

}  // namespace chase::thredds
