#include "thredds/server.hpp"

#include <algorithm>

namespace chase::thredds {

ThreddsServer::ThreddsServer(sim::Simulation& sim, net::Network& net, net::NodeId node,
                             Options options)
    : sim_(sim), net_(net), node_(node), options_(options),
      slots_(std::make_unique<sim::Semaphore>(options.extraction_slots)) {}

ThreddsServer::ThreddsServer(sim::Simulation& sim, net::Network& net, net::NodeId node)
    : ThreddsServer(sim, net, node, Options{}) {}

void ThreddsServer::add_dataset(Dataset ds) { datasets_.push_back(std::move(ds)); }

const Dataset* ThreddsServer::dataset(const std::string& name) const {
  for (const auto& ds : datasets_) {
    if (ds.name == name) return &ds;
  }
  return nullptr;
}

sim::Task ThreddsServer::fetch(net::NodeId client, std::string dataset_name,
                               std::size_t file_index, std::string variable,
                               bool* ok, Bytes* bytes) {
  if (ok != nullptr) *ok = false;
  const Dataset* ds = dataset(dataset_name);
  if (ds == nullptr || file_index >= ds->file_count) co_return;
  Bytes payload = 0;
  if (variable.empty()) {
    payload = ds->file_bytes();
  } else {
    auto sub = ds->subset_bytes(variable);
    if (!sub) co_return;
    payload = *sub;
  }

  co_await sim_.sleep(options_.request_overhead);
  // Server-side service under the core/disk budget: subset requests pay the
  // CPU-bound variable extraction; whole-file requests pay raw streaming
  // time. Either way this is what bounds aggregate service rate as worker
  // counts grow.
  const double service_seconds =
      variable.empty()
          ? static_cast<double>(payload) / options_.raw_stream_rate_per_slot
          : options_.extraction_seconds;
  co_await slots_->acquire();
  co_await sim_.sleep(service_seconds);
  slots_->release(sim_);

  net::TransferOptions xfer;
  xfer.rate_cap = options_.per_connection_rate;
  auto handle = net_.transfer(node_, client, payload, xfer);
  co_await handle->done->wait(sim_);
  if (handle->failed) co_return;

  bytes_served_ += static_cast<double>(payload);
  requests_served_ += 1;
  if (bytes != nullptr) *bytes = payload;
  if (ok != nullptr) *ok = true;
}

sim::Task Aria2Client::download(std::string dataset, std::vector<std::size_t> files,
                                std::string variable, DownloadStats* stats) {
  stats->files = 0;
  stats->bytes = 0;
  stats->ok = true;
  stats->failed.clear();
  if (files.empty()) co_return;
  auto shared_files = std::make_shared<std::vector<std::size_t>>(std::move(files));
  auto next = std::make_shared<std::size_t>(0);
  auto done = sim::make_event();
  const int streams = std::max(1, std::min<int>(connections_,
                                                static_cast<int>(shared_files->size())));
  auto latch = std::make_shared<sim::Latch>(streams, done);
  for (int c = 0; c < streams; ++c) {
    sim_.spawn(connection_loop(this, dataset, variable, shared_files, next, stats, latch));
  }
  co_await done->wait(sim_);
}

sim::Task Aria2Client::connection_loop(Aria2Client* self, std::string dataset,
                                       std::string variable,
                                       std::shared_ptr<std::vector<std::size_t>> files,
                                       std::shared_ptr<std::size_t> next,
                                       DownloadStats* stats,
                                       std::shared_ptr<sim::Latch> latch) {
  while (*next < files->size()) {
    const std::size_t index = (*files)[(*next)++];
    bool ok = false;
    Bytes bytes = 0;
    co_await self->server_.fetch(self->client_, dataset, index, variable, &ok, &bytes);
    if (ok) {
      stats->files += 1;
      stats->bytes += bytes;
    } else {
      stats->ok = false;
      stats->failed.push_back(index);
    }
  }
  latch->count_down(self->sim_);
}

}  // namespace chase::thredds
