#pragma once
/// \file server.hpp
/// The THREDDS data server and the Aria2-style parallel downloader
/// (paper §III-A). The server hosts dataset catalogs and serves per-variable
/// subsets; each request pays a CPU-bound extraction cost (bounded by the
/// server's core count) before streaming the subset over the network, so
/// aggregate service throughput saturates realistically as workers scale.
///
/// Aria2Client mirrors "open source Aria2 file transfer software that allows
/// multiple parallel downloads (20 parallel downloads in our case)": N
/// connections pull file indices from a shared list until it drains.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "sim/event.hpp"
#include "sim/simulation.hpp"
#include "thredds/catalog.hpp"

namespace chase::thredds {

class ThreddsServer {
 public:
  struct Options {
    /// Concurrent subset-extraction slots (server CPU cores doing decode +
    /// variable slicing).
    int extraction_slots = 16;
    /// CPU time to open a NetCDF file and slice one variable out of it.
    /// Calibrated so 112,249 subset requests through 16 slots take ~35 min
    /// of pure service time — the paper's 37-minute Step 1 with pipeline
    /// fill/drain on top.
    double extraction_seconds = 0.31;
    /// Fixed HTTP/catalog overhead per request.
    double request_overhead = 0.01;
    /// Per-connection streaming cap (single HTTP response stream).
    double per_connection_rate = 40e6;
    /// Whole-file (no subsetting) service rate per slot: raw fileServer
    /// streaming is bound by archive-disk seeks + HTTP, not variable
    /// extraction. 16 slots x 8 MB/s ~ 128 MB/s aggregate raw serving.
    double raw_stream_rate_per_slot = 8e6;
  };

  ThreddsServer(sim::Simulation& sim, net::Network& net, net::NodeId node,
                Options options);
  ThreddsServer(sim::Simulation& sim, net::Network& net, net::NodeId node);

  void add_dataset(Dataset ds);
  const Dataset* dataset(const std::string& name) const;
  net::NodeId node() const { return node_; }

  /// Fetch one file (subset to `variable`, or the whole file if empty) to
  /// `client`. Sets *ok (if given); *bytes receives the payload size.
  /// (Coroutine: string parameters by value — the frame must own them
  /// across awaits; see chase_lint coro-ref-param.)
  sim::Task fetch(net::NodeId client, std::string dataset, std::size_t file_index,
                  std::string variable, bool* ok = nullptr, Bytes* bytes = nullptr);

  // Service-side statistics.
  double bytes_served() const { return bytes_served_; }
  std::uint64_t requests_served() const { return requests_served_; }
  std::size_t queue_length() const { return slots_->queue_length(); }

 private:
  sim::Simulation& sim_;
  net::Network& net_;
  net::NodeId node_;
  Options options_;
  std::vector<Dataset> datasets_;
  std::unique_ptr<sim::Semaphore> slots_;
  double bytes_served_ = 0.0;
  std::uint64_t requests_served_ = 0;
};

/// Result of a bulk download session.
struct DownloadStats {
  std::uint64_t files = 0;
  Bytes bytes = 0;
  bool ok = true;
  /// Indices whose fetch failed (server/link down mid-transfer); callers
  /// retry exactly these instead of the whole list.
  std::vector<std::size_t> failed;
};

/// Multi-connection downloader: `connections` concurrent streams share the
/// list of file indices and pull until it is empty.
class Aria2Client {
 public:
  Aria2Client(sim::Simulation& sim, ThreddsServer& server, net::NodeId client_node,
              int connections)
      : sim_(sim), server_(server), client_(client_node), connections_(connections) {}

  /// Download all `files` of `dataset` (variable subset); fills `stats`.
  sim::Task download(std::string dataset, std::vector<std::size_t> files,
                     std::string variable, DownloadStats* stats);

 private:
  static sim::Task connection_loop(Aria2Client* self, std::string dataset,
                                   std::string variable,
                                   std::shared_ptr<std::vector<std::size_t>> files,
                                   std::shared_ptr<std::size_t> next,
                                   DownloadStats* stats,
                                   std::shared_ptr<sim::Latch> latch);

  sim::Simulation& sim_;
  ThreddsServer& server_;
  net::NodeId client_;
  int connections_;
};

}  // namespace chase::thredds
