#pragma once
/// \file catalog.hpp
/// Dataset catalog for the THREDDS substitute (paper §III-A): scientific
/// datasets composed of many timestamped files, each holding several
/// variables. THREDDS' key capability used by the paper is *variable
/// subsetting* — "transfer only that specific variable instead of the entire
/// file", which reduced the MERRA-2 archive from 455 GB to 246 GB.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace chase::thredds {

using util::Bytes;

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm);
/// valid for all Gregorian dates of interest.
std::int64_t days_from_civil(int year, int month, int day);

struct DateTime {
  int year = 1970, month = 1, day = 1, hour = 0;
  std::string to_string() const;  // "1980-01-01T03:00Z"
};

struct Variable {
  std::string name;          // e.g. "IVT"
  Bytes bytes_per_file = 0;  // size of this variable's slab in one file
};

/// A time series of NetCDF-ish files on a regular cadence.
struct Dataset {
  std::string name;          // e.g. "M2I3NPASM"
  DateTime start;
  double cadence_hours = 3;  // file every N hours
  std::size_t file_count = 0;
  std::vector<Variable> variables;
  /// Grid metadata (global resolution of 576x361 pixels, 42 levels).
  int grid_x = 576, grid_y = 361, levels = 42;

  /// Bytes of one whole file (all variables).
  Bytes file_bytes() const;
  /// Bytes of one file when subset to `variable`; nullopt if unknown.
  std::optional<Bytes> subset_bytes(const std::string& variable) const;
  /// Whole-archive byte totals.
  Bytes total_bytes() const { return file_bytes() * file_count; }
  std::optional<Bytes> total_subset_bytes(const std::string& variable) const;

  DateTime file_time(std::size_t index) const;
  /// "/thredds/M2I3NPASM/1980-01-01T03:00Z.nc4"
  std::string file_url(std::size_t index) const;

  /// Index of the first file at or after the given instant; file_count if
  /// past the archive end.
  std::size_t index_at_or_after(const DateTime& t) const;
  /// Indices of all files in [from, to] inclusive — the subset-tool's
  /// time-range selection.
  std::vector<std::size_t> files_in_range(const DateTime& from, const DateTime& to) const;
};

/// Total hours since the epoch for ordering DateTimes.
double hours_since_epoch(const DateTime& t);

/// THREDDS catalog page: one entry per dataset with variables, time span,
/// file count and sizes (the paper links the live catalog in §III-A).
std::string render_catalog(const std::vector<Dataset>& datasets);

/// Build the paper's archive: MERRA-2 M2I3NPASM, 3-hourly from
/// 1980-01-01T00Z through 2018-05-31T21Z (the paper counts 112,249 NetCDF
/// files and 455 GB total; the IVT subset is 246 GB).
Dataset make_merra2_m2i3npasm();

}  // namespace chase::thredds
