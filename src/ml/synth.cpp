#include "ml/synth.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace chase::ml {

namespace {

/// Smooth spatial noise: a small sum of random plane waves (cheap, smooth,
/// deterministic — enough texture to make segmentation non-trivial).
class WaveNoise {
 public:
  WaveNoise(util::Rng& rng, int waves) {
    for (int i = 0; i < waves; ++i) {
      waves_.push_back(Wave{rng.uniform(0.02, 0.25), rng.uniform(0.02, 0.25),
                            rng.uniform(0.0, 0.15), rng.uniform(0.0, 2.0 * M_PI),
                            rng.uniform(0.5, 1.0)});
    }
  }
  double sample(double x, double y, double t) const {
    double v = 0.0;
    for (const auto& w : waves_) {
      v += w.amp * std::sin(w.kx * x + w.ky * y + w.kt * t + w.phase);
    }
    return v / std::sqrt(static_cast<double>(waves_.size()));
  }

 private:
  struct Wave {
    double kx, ky, kt, phase, amp;
  };
  std::vector<Wave> waves_;
};

}  // namespace

IvtField generate_ivt(const IvtFieldParams& params) {
  util::Rng rng(params.seed);
  IvtField out;
  out.ivt = Volume<float>(params.nx, params.ny, params.nt);
  out.truth = Volume<std::uint8_t>(params.nx, params.ny, params.nt, 0);

  // Event genesis: spread through time and space.
  for (int e = 0; e < params.events; ++e) {
    IvtEvent ev;
    ev.x0 = rng.uniform(0.1, 0.7) * params.nx;
    ev.y0 = rng.uniform(0.15, 0.85) * params.ny;
    ev.vx = rng.uniform(0.3, 1.2);   // eastward advection
    ev.vy = rng.uniform(-0.3, 0.3);
    ev.length = rng.uniform(0.12, 0.25) * params.nx;
    ev.width = rng.uniform(0.02, 0.05) * params.nx + 1.5;
    ev.angle = rng.uniform(-0.5, 0.5);
    ev.intensity = params.event_intensity * rng.uniform(0.75, 1.3);
    const int duration = static_cast<int>(rng.uniform(0.2, 0.5) * params.nt);
    ev.t_start = static_cast<int>(rng.uniform(0.0, 0.7) * params.nt);
    ev.t_end = std::min(params.nt - 1, ev.t_start + duration);
    out.events.push_back(ev);
  }

  WaveNoise noise(rng, 8);

  for (int t = 0; t < params.nt; ++t) {
    for (int y = 0; y < params.ny; ++y) {
      for (int x = 0; x < params.nx; ++x) {
        double v = params.background +
                   params.noise * noise.sample(x, y, t) * 3.0;
        double event_part = 0.0;
        for (const auto& ev : out.events) {
          if (t < ev.t_start || t > ev.t_end) continue;
          const double age = static_cast<double>(t - ev.t_start);
          const double life = static_cast<double>(ev.t_end - ev.t_start) + 1.0;
          // Intensity envelope over the life cycle (ramp up, decay).
          const double envelope = std::sin(M_PI * std::min(1.0, (age + 0.5) / life));
          const double cx = ev.x0 + ev.vx * age;
          const double cy = ev.y0 + ev.vy * age;
          // Rotated anisotropic Gaussian ridge.
          const double dx = x - cx;
          const double dy = y - cy;
          const double along = dx * std::cos(ev.angle) + dy * std::sin(ev.angle);
          const double across = -dx * std::sin(ev.angle) + dy * std::cos(ev.angle);
          const double g = std::exp(-0.5 * (along * along / (ev.length * ev.length) +
                                            across * across / (ev.width * ev.width)));
          event_part += ev.intensity * envelope * g;
        }
        v += event_part;
        out.ivt.at(x, y, t) = static_cast<float>(std::max(0.0, v));
        if (event_part > params.label_threshold) out.truth.at(x, y, t) = 1;
      }
    }
  }
  return out;
}

}  // namespace chase::ml
