#include "ml/disttrain.hpp"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "cluster/machine.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace chase::ml {

namespace {

std::uint64_t fold_float(std::uint64_t h, float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return util::hash_combine(h, bits);
}

/// Mean of the last quarter (at least one entry) of a loss trajectory.
float tail_mean(const std::vector<float>& losses) {
  if (losses.empty()) return 0.f;
  const std::size_t n = losses.size();
  const std::size_t q = std::max<std::size_t>(1, n / 4);
  double acc = 0.0;
  for (std::size_t i = n - q; i < n; ++i) acc += losses[i];
  return static_cast<float>(acc / static_cast<double>(q));
}

/// The batch-wide gradient normalizer: every worker's per-example gradient
/// is divided by (workers x fov^3) so the ascending-shard sum averages the
/// global batch exactly once — the invariant behind bit-identity with the
/// single-trainer reference.
double batch_normalizer(const DistTrainConfig& config) {
  const double fov = static_cast<double>(config.model.fov);
  return static_cast<double>(config.workers) * fov * fov * fov;
}

}  // namespace

std::uint64_t disttrain_hash(const std::vector<float>& losses,
                             const std::vector<float>& weights) {
  std::uint64_t h = 0x243f6a8885a308d3ull;
  for (float v : losses) h = fold_float(h, v);
  h = util::hash_combine(h, 0x9e3779b9ull);  // domain separator
  for (float v : weights) h = fold_float(h, v);
  return h;
}

// --- ShardedIvtDataset -------------------------------------------------------

ShardedIvtDataset::ShardedIvtDataset(const IvtFieldParams& params, int shards,
                                     const FfnConfig& model, std::uint64_t seed,
                                     float input_mean, float input_scale)
    : field_(generate_ivt(params)), model_(model), input_mean_(input_mean),
      input_scale_(input_scale) {
  CHASE_ASSERT(shards >= 1, "dataset needs at least one shard");
  const int nt = field_.truth.nz();
  const int half = model_.fov / 2;
  shard_seeds_.reserve(static_cast<std::size_t>(shards));
  slab_lo_.resize(static_cast<std::size_t>(shards));
  slab_hi_.resize(static_cast<std::size_t>(shards));
  sites_.resize(static_cast<std::size_t>(shards));
  for (int k = 0; k < shards; ++k) {
    shard_seeds_.push_back(util::hash_combine(seed, static_cast<std::uint64_t>(k)));
    slab_lo_[static_cast<std::size_t>(k)] =
        static_cast<int>(static_cast<std::int64_t>(nt) * k / shards);
    slab_hi_[static_cast<std::size_t>(k)] =
        static_cast<int>(static_cast<std::int64_t>(nt) * (k + 1) / shards);
    // Positive centers whose full FOV lies inside the volume and whose time
    // coordinate lies in this shard's slab.
    const int t_lo = std::max(slab_lo_[static_cast<std::size_t>(k)], half);
    const int t_hi = std::min(slab_hi_[static_cast<std::size_t>(k)], nt - half);
    for (int t = t_lo; t < t_hi; ++t) {
      for (int y = half; y < field_.truth.ny() - half; ++y) {
        for (int x = half; x < field_.truth.nx() - half; ++x) {
          if (field_.truth.at(x, y, t)) {
            sites_[static_cast<std::size_t>(k)].push_back(field_.truth.index(x, y, t));
          }
        }
      }
    }
  }
}

void ShardedIvtDataset::sample_center(int shard, int step, int& cx, int& cy,
                                      int& ct) const {
  // The stream is a pure function of (shard seed, step): replacement workers
  // resume a dead worker's stream without any handed-over rng state.
  util::Rng rng(
      util::hash_combine(shard_seeds_[static_cast<std::size_t>(shard)],
                         static_cast<std::uint64_t>(static_cast<std::uint32_t>(step))));
  const int half = model_.fov / 2;
  const auto& sites = sites_[static_cast<std::size_t>(shard)];
  if (!sites.empty() && rng.chance(0.9)) {
    const std::size_t flat = sites[rng.uniform_u64(sites.size())];
    const int nx = field_.truth.nx(), ny = field_.truth.ny();
    cx = static_cast<int>(flat % static_cast<std::size_t>(nx));
    cy = static_cast<int>((flat / static_cast<std::size_t>(nx)) %
                          static_cast<std::size_t>(ny));
    ct = static_cast<int>(flat / (static_cast<std::size_t>(nx) * ny));
  } else {
    int t_lo = std::max(slab_lo_[static_cast<std::size_t>(shard)], half);
    int t_hi = std::min(slab_hi_[static_cast<std::size_t>(shard)],
                        field_.truth.nz() - half);
    if (t_hi <= t_lo) {  // slab narrower than the FOV margin: sample the slab
      t_lo = slab_lo_[static_cast<std::size_t>(shard)];
      t_hi = slab_hi_[static_cast<std::size_t>(shard)];
    }
    cx = half + static_cast<int>(rng.uniform_u64(
                    static_cast<std::uint64_t>(std::max(1, field_.truth.nx() - 2 * half))));
    cy = half + static_cast<int>(rng.uniform_u64(
                    static_cast<std::uint64_t>(std::max(1, field_.truth.ny() - 2 * half))));
    ct = t_lo + static_cast<int>(
                    rng.uniform_u64(static_cast<std::uint64_t>(std::max(1, t_hi - t_lo))));
  }
}

void ShardedIvtDataset::example(int shard, int step, Tensor4& input,
                                Volume<std::uint8_t>& target) const {
  const int fov = model_.fov;
  const int half = fov / 2;
  int cx = 0, cy = 0, ct = 0;
  sample_center(shard, step, cx, cy, ct);
  if (input.channels() != 2 || input.nx() != fov || input.ny() != fov ||
      input.nz() != fov) {
    input = Tensor4(2, fov, fov, fov);
  }
  if (target.nx() != fov || target.ny() != fov || target.nz() != fov) {
    target = Volume<std::uint8_t>(fov, fov, fov, 0);
  }
  for (int z = 0; z < fov; ++z) {
    for (int y = 0; y < fov; ++y) {
      for (int x = 0; x < fov; ++x) {
        const int sx = cx + x - half, sy = cy + y - half, st = ct + z - half;
        const float img = field_.ivt.get_or(sx, sy, st, 0.f);
        input.at(0, x, y, z) = (img - input_mean_) / input_scale_;
        input.at(1, x, y, z) = model_.pom_init;
        target.at(x, y, z) = field_.truth.get_or(sx, sy, st, std::uint8_t{0});
      }
    }
  }
  input.at(1, half, half, half) = model_.pom_seed;  // active seed at the center
}

// --- SyncStrategy implementations --------------------------------------------

/// Bandwidth-optimal synchronous collective: the step's last registrant
/// drives 2(N-1) rounds of N concurrent neighbor transfers of ceil(B/N)
/// bytes (reduce-scatter then all-gather), then applies the ascending-shard
/// sum once. Gradient math happens on registration, so the wire carries
/// cost, not floats — determinism never depends on arrival order.
class RingAllReduceStrategy final : public SyncStrategy {
 public:
  explicit RingAllReduceStrategy(DistTrainer* core) : core_(core) {}
  const char* name() const override { return "ring_allreduce"; }

  sim::Task acquire(kube::PodContext* ctx, int slot, int step, FfnModel* replica,
                    int* replica_version) override {
    (void)slot;
    DistTrainer* core = core_;
    while (!core->finished_ && core->version_ < step) {
      if (ctx->cancelled()) co_return;
      // Copy the current epoch's event: notify_advance() re-arms the member.
      sim::EventPtr ev = core->advance_ev_;
      co_await ev->wait(core->sim_);
    }
    if (core->finished_ || ctx->cancelled()) co_return;
    if (*replica_version != core->version_) {
      // The all-gather half of the ring already delivered these weights;
      // its traffic is paid in the publish rounds below.
      replica->deserialize(core->blob_);
      *replica_version = core->version_;
    }
  }

  sim::Task publish(kube::PodContext* ctx, int slot, int step,
                    FfnModel::Gradients grads, float loss) override {
    DistTrainer* core = core_;
    const bool full =
        core->register_gradient(slot, step, std::move(grads), loss, ctx->net_node());
    if (!full) co_return;
    const int n = core->config_.workers;
    const util::Bytes chunk = (core->sync_bytes() + n - 1) / n;
    for (int round = 0; round < 2 * (n - 1); ++round) {
      std::vector<net::Network::GroupLeg> legs;
      legs.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        net::Network::GroupLeg leg;
        leg.src = core->slots_[static_cast<std::size_t>(i)].last_node;
        leg.dst = core->slots_[static_cast<std::size_t>((i + 1) % n)].last_node;
        leg.bytes = chunk;
        legs.push_back(leg);
      }
      core->report_.comm_bytes += static_cast<std::uint64_t>(chunk) * n;
      co_await core->kube_.network().send_group(std::move(legs));
    }
    core->apply_inbox();
  }

 private:
  DistTrainer* core_;
};

/// Central server pod: workers pull the weight blob and push gradients as
/// point-to-point transfers, all funneling through the server's NIC. With
/// staleness 0 the server reduces the step inbox exactly like the ring;
/// with bound s > 0 every push is applied on arrival and the admission gate
/// only holds a worker back once it runs s steps past the slowest shard.
class ParamServerStrategy final : public SyncStrategy {
 public:
  explicit ParamServerStrategy(DistTrainer* core) : core_(core) {}
  const char* name() const override { return "param_server"; }

  sim::Task acquire(kube::PodContext* ctx, int slot, int step, FfnModel* replica,
                    int* replica_version) override {
    (void)slot;
    DistTrainer* core = core_;
    while (!core->finished_ && core->server_node_ < 0) {
      if (ctx->cancelled()) co_return;
      co_await core->server_ready_->wait(core->sim_);
    }
    while (!core->finished_ && !admitted(core, step)) {
      if (ctx->cancelled()) co_return;
      sim::EventPtr ev = core->advance_ev_;
      co_await ev->wait(core->sim_);
    }
    if (core->finished_ || ctx->cancelled()) co_return;
    if (*replica_version != core->version_) {
      net::TransferPtr pull = core->kube_.network().transfer(
          core->server_node_, ctx->net_node(), core->sync_bytes());
      core->report_.comm_bytes += static_cast<std::uint64_t>(core->sync_bytes());
      co_await pull->done->wait(core->sim_);
      if (core->finished_ || ctx->cancelled() || pull->failed) co_return;
      // In stale-synchronous mode version_ may have advanced during the
      // pull; the blob always holds the latest weights, so the replica
      // lands on whatever is current now — exactly a stale read.
      replica->deserialize(core->blob_);
      *replica_version = core->version_;
    }
  }

  sim::Task publish(kube::PodContext* ctx, int slot, int step,
                    FfnModel::Gradients grads, float loss) override {
    DistTrainer* core = core_;
    const net::NodeId from = ctx->net_node();
    net::TransferPtr push =
        core->kube_.network().transfer(from, core->server_node_, core->sync_bytes());
    core->report_.comm_bytes += static_cast<std::uint64_t>(core->sync_bytes());
    co_await push->done->wait(core->sim_);
    if (core->finished_) co_return;
    if (push->failed) {
      // The gradient never reached the server; the worker (or its
      // replacement) recomputes this step from the shard lease.
      core->report_.dropped_gradients += 1;
      co_return;
    }
    if (core->register_gradient(slot, step, std::move(grads), loss, from)) {
      core->apply_inbox();
    }
  }

 private:
  static bool admitted(DistTrainer* core, int step) {
    if (core->config_.staleness == 0) return core->version_ >= step;
    return step <= core->min_next_step() + core->config_.staleness;
  }

  DistTrainer* core_;
};

// --- DistTrainer -------------------------------------------------------------

DistTrainer::DistTrainer(kube::KubeCluster& kube, DistTrainConfig config)
    : kube_(kube), sim_(kube.sim()), config_(std::move(config)),
      dataset_(config_.data, config_.workers, config_.model, config_.seed,
               config_.input_mean, config_.input_scale),
      master_(config_.model) {
  CHASE_ASSERT(config_.workers >= 1, "need at least one worker");
  CHASE_ASSERT(config_.steps >= 1, "need at least one step");
  CHASE_ASSERT(config_.staleness == 0 ||
                   config_.sync == DistTrainConfig::Sync::ParamServer,
               "a staleness bound needs the parameter server");
  CHASE_ASSERT(config_.backup_workers == 0 ||
                   (config_.sync == DistTrainConfig::Sync::ParamServer &&
                    config_.staleness == 0),
               "backup workers need the synchronous parameter server");
  strategy_ = config_.sync == DistTrainConfig::Sync::RingAllReduce
                  ? std::unique_ptr<SyncStrategy>(new RingAllReduceStrategy(this))
                  : std::unique_ptr<SyncStrategy>(new ParamServerStrategy(this));
  master_.serialize_into(blob_);
  slots_.resize(static_cast<std::size_t>(slot_count()));
  inbox_.resize(static_cast<std::size_t>(config_.workers));
  for (auto& g : inbox_) g = master_.make_gradients();
  inbox_loss_.assign(static_cast<std::size_t>(config_.workers), 0.f);
  inbox_full_.assign(static_cast<std::size_t>(config_.workers), 0);
  reduce_scratch_ = master_.make_gradients();
  report_.shard_contributions.assign(static_cast<std::size_t>(slot_count()), 0);
}

DistTrainer::~DistTrainer() = default;

util::Bytes DistTrainer::sync_bytes() const {
  if (config_.sync_bytes > 0) return config_.sync_bytes;
  return static_cast<util::Bytes>(master_.parameter_count() * sizeof(float));
}

double DistTrainer::flops_per_example() const {
  if (config_.flops_per_example > 0.0) return config_.flops_per_example;
  return 2.0 * master_.forward_macs() * config_.flops_multiplier;
}

int DistTrainer::min_next_step() const {
  int m = config_.steps;
  for (const Slot& s : slots_) m = std::min(m, s.next_step);
  return m;
}

void DistTrainer::notify_advance() {
  // Swap in a fresh epoch before triggering so a waiter that re-parks after
  // waking waits on the next advance, not the already-fired event.
  sim::EventPtr ev = std::move(advance_ev_);
  advance_ev_ = sim::make_event();
  ev->trigger(sim_);
}

bool DistTrainer::register_gradient(int slot, int step, FfnModel::Gradients&& grads,
                                    float loss, net::NodeId from) {
  Slot& owner = slots_[static_cast<std::size_t>(slot)];
  if (finished_ || owner.next_step != step) {
    // A stale incarnation's in-flight publish landed after its replacement
    // already covered this step, or the run is over.
    report_.dropped_gradients += 1;
    return false;
  }
  owner.next_step = step + 1;  // advance the shard lease
  owner.last_node = from;
  notify_advance();
  if (config_.staleness > 0) {
    owner.contributions += 1;
    apply_update(grads, loss);
    return false;
  }
  const int shard = slot % config_.workers;
  if (step < version_ || inbox_full_[static_cast<std::size_t>(shard)]) {
    // Backup worker lost the race for its shard: the microbatch is already
    // applied (or buffered) by the mirror slot.
    report_.dropped_gradients += 1;
    return false;
  }
  inbox_[static_cast<std::size_t>(shard)] = std::move(grads);
  inbox_loss_[static_cast<std::size_t>(shard)] = loss;
  inbox_full_[static_cast<std::size_t>(shard)] = 1;
  inbox_count_ += 1;
  owner.contributions += 1;
  return inbox_count_ == config_.workers;
}

void DistTrainer::apply_inbox() {
  if (finished_ || inbox_count_ < config_.workers) return;
  // Ascending shard order: the exact float-addition sequence of the
  // single-trainer reference's large-batch accumulation.
  reduce_scratch_.reset();
  double loss_acc = 0.0;
  for (int s = 0; s < config_.workers; ++s) {
    reduce_scratch_.add(inbox_[static_cast<std::size_t>(s)]);
    loss_acc += static_cast<double>(inbox_loss_[static_cast<std::size_t>(s)]);
    inbox_full_[static_cast<std::size_t>(s)] = 0;
  }
  inbox_count_ = 0;
  apply_update(reduce_scratch_,
               static_cast<float>(loss_acc / static_cast<double>(config_.workers)));
}

void DistTrainer::apply_update(const FfnModel::Gradients& grads, float mean_loss) {
  master_.apply_gradients(grads, config_.optimizer);
  version_ += 1;
  master_.serialize_into(blob_);
  report_.losses.push_back(mean_loss);
  report_.applied_updates += 1;
  notify_advance();
  const int target =
      config_.staleness > 0 ? config_.workers * config_.steps : config_.steps;
  if (version_ >= target) finish();
}

void DistTrainer::finish() {
  if (finished_) return;
  finished_ = true;
  report_.sim_seconds = sim_.now() - start_time_;
  for (int s = 0; s < slot_count(); ++s) {
    report_.shard_contributions[static_cast<std::size_t>(s)] =
        slots_[static_cast<std::size_t>(s)].contributions;
  }
  report_.final_loss = tail_mean(report_.losses);
  report_.hash = disttrain_hash(report_.losses, blob_);
  done_->trigger(sim_);
  notify_advance();  // release workers parked on the admission gate
}

sim::Task DistTrainer::supervise_slot(DistTrainer* self, int slot) {
  // One supervisor per shard slot: recreate the worker pod until the shard's
  // step stream is exhausted — the §V self-healing loop, with the shard
  // lease (next_step) surviving the pod.
  while (!self->finished_ &&
         self->slots_[static_cast<std::size_t>(slot)].next_step < self->config_.steps) {
    const int inc = self->slots_[static_cast<std::size_t>(slot)].incarnation++;
    kube::ContainerSpec container;
    container.name = "trainer";
    container.image = "chase/ffn-disttrain";
    container.image_size = util::mb(900);
    container.requests.cpu = 2.0;
    container.requests.memory = util::gb(8);
    container.requests.gpus = 1;
    DistTrainer* core = self;
    const int s = slot;
    // Non-coroutine lambda handing off to a static member coroutine: the
    // captures are consumed before any suspension.
    container.program = [core, s](kube::PodContext& ctx) -> sim::Task {
      return worker_body(core, s, &ctx);
    };
    kube::PodSpec spec;
    spec.containers.push_back(std::move(container));
    kube::Labels labels{{"app", "disttrain"},
                        {"role", "worker"},
                        {"shard", std::to_string(slot % self->config_.workers)},
                        {"slot", std::to_string(slot)}};
    auto created = self->kube_.create_pod(
        self->config_.ns,
        "ffn-worker-" + std::to_string(slot) + "-" + std::to_string(inc),
        std::move(spec), std::move(labels));
    if (!created.ok()) break;  // admission rejected (quota/auth): stop healing
    self->slots_[static_cast<std::size_t>(slot)].pod = created.value;
    co_await created.value->terminated->wait(self->sim_);
    self->slots_[static_cast<std::size_t>(slot)].pod.reset();
    if (self->finished_ ||
        self->slots_[static_cast<std::size_t>(slot)].next_step >= self->config_.steps ||
        created.value->phase == kube::PodPhase::Succeeded) {
      break;
    }
    self->report_.worker_restarts += 1;
  }
}

sim::Task DistTrainer::worker_body(DistTrainer* self, int slot, kube::PodContext* ctx) {
  FfnModel replica(self->config_.model);
  int replica_version = -1;
  Tensor4 input, logits, dlogits;
  Volume<std::uint8_t> target;
  FfnModel::Workspace ws;
  const int shard = slot % self->config_.workers;
  const double normalizer = batch_normalizer(self->config_);
  if (self->report_.gpu_model.empty()) {
    self->report_.gpu_model = cluster::gpu_model_name(ctx->machine_spec().gpu_model);
  }
  while (!self->finished_ && !ctx->cancelled()) {
    const int step = self->slots_[static_cast<std::size_t>(slot)].next_step;
    if (step >= self->config_.steps) break;
    co_await self->strategy_->acquire(ctx, slot, step, &replica, &replica_version);
    if (self->finished_ || ctx->cancelled()) break;
    if (self->slots_[static_cast<std::size_t>(slot)].next_step != step) {
      continue;  // a stale incarnation covered the step while we waited
    }
    self->dataset_.example(shard, step, input, target);
    replica.forward(input, logits, &ws);
    const float loss = FfnModel::logistic_loss(logits, target, dlogits, normalizer);
    FfnModel::Gradients grads = replica.make_gradients();
    replica.backward(input, dlogits, ws, grads);
    const double gpu_seconds =
        self->flops_per_example() /
        (ctx->gpu_tflops() * 1e12 * self->config_.gpu_efficiency);
    co_await ctx->gpu_compute(gpu_seconds);
    if (ctx->cancelled()) break;  // the compute never finished: no publish
    co_await self->strategy_->publish(ctx, slot, step, std::move(grads), loss);
  }
}

sim::Task DistTrainer::server_body(DistTrainer* self, kube::PodContext* ctx) {
  self->server_node_ = ctx->net_node();
  self->server_ready_->trigger(self->sim_);
  co_await self->done_->wait(self->sim_);
}

sim::EventPtr DistTrainer::start() {
  CHASE_ASSERT(!started_, "DistTrainer::start called twice");
  started_ = true;
  start_time_ = sim_.now();
  const int target =
      config_.staleness > 0 ? config_.workers * config_.steps : config_.steps;
  report_.losses.reserve(static_cast<std::size_t>(target));
  if (!kube_.has_namespace(config_.ns)) kube_.create_namespace(config_.ns);
  if (config_.sync == DistTrainConfig::Sync::ParamServer) {
    kube::ContainerSpec container;
    container.name = "server";
    container.image = "chase/ffn-paramserver";
    container.image_size = util::mb(600);
    container.requests.cpu = 4.0;
    container.requests.memory = util::gb(8);
    DistTrainer* core = this;
    container.program = [core](kube::PodContext& ctx) -> sim::Task {
      return server_body(core, &ctx);
    };
    kube::PodSpec spec;
    spec.containers.push_back(std::move(container));
    auto created = kube_.create_pod(config_.ns, "ffn-paramserver", std::move(spec),
                                    {{"app", "disttrain"}, {"role", "ps"}});
    CHASE_ASSERT(created.ok(), "parameter-server pod rejected");
    server_pod_ = created.value;
  }
  for (int s = 0; s < slot_count(); ++s) {
    sim_.spawn(supervise_slot(this, s));
  }
  return done_;
}

// --- reference ---------------------------------------------------------------

DistTrainReport reference_large_batch(const DistTrainConfig& config) {
  ShardedIvtDataset dataset(config.data, config.workers, config.model, config.seed,
                            config.input_mean, config.input_scale);
  FfnModel master(config.model);
  FfnModel::Gradients total = master.make_gradients();
  FfnModel::Gradients g = master.make_gradients();
  Tensor4 input, logits, dlogits;
  Volume<std::uint8_t> target;
  FfnModel::Workspace ws;
  const double normalizer = batch_normalizer(config);
  DistTrainReport report;
  report.shard_contributions.assign(static_cast<std::size_t>(config.workers), 0);
  report.losses.reserve(static_cast<std::size_t>(config.steps));
  for (int t = 0; t < config.steps; ++t) {
    total.reset();
    double loss_acc = 0.0;
    for (int s = 0; s < config.workers; ++s) {
      dataset.example(s, t, input, target);
      master.forward(input, logits, &ws);
      const float loss = FfnModel::logistic_loss(logits, target, dlogits, normalizer);
      g.reset();
      master.backward(input, dlogits, ws, g);
      total.add(g);
      loss_acc += static_cast<double>(loss);
      report.shard_contributions[static_cast<std::size_t>(s)] += 1;
    }
    master.apply_gradients(total, config.optimizer);
    report.losses.push_back(
        static_cast<float>(loss_acc / static_cast<double>(config.workers)));
  }
  report.applied_updates = config.steps;
  report.final_loss = tail_mean(report.losses);
  report.hash = disttrain_hash(report.losses, master.serialize());
  return report;
}

}  // namespace chase::ml
