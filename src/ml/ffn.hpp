#pragma once
/// \file ffn.hpp
/// A real (CPU) Flood-Filling Network, after Januszewski et al., "High-
/// precision automated reconstruction of neurons with flood-filling
/// networks" (Nature Methods 2018) [20] — the model the paper adapted "to do
/// segmentation of NASA data" (§III-B).
///
/// Architecture: a 3-D convolutional stack over a field-of-view (FOV) patch
/// with two input channels — the image and the current predicted object map
/// (POM) — and one output channel of POM logits:
///
///   conv_in(2→C) → [residual module: relu→conv(C→C)→relu→conv(C→C), +skip] × D
///           → conv_out(C→1)
///
/// Training runs R recursive steps per example, feeding the updated POM back
/// as input, with voxel-wise logistic loss against the object mask; SGD with
/// momentum. Inference (ffn_infer.hpp) grows objects from seeds by moving
/// the FOV where the POM crosses the move threshold.
///
/// The network is deliberately small (default C=8, D=2, FOV=9³) so tests and
/// examples run in seconds on CPU; paper-scale wall-clock comes from the
/// FLOP-based GPU cost model in cost.hpp.

#include <cstdint>
#include <vector>

#include "ml/volume.hpp"
#include "util/rng.hpp"

namespace chase::ml {

/// 3x3x3 same-padded convolution layer.
struct Conv3d {
  int in_c = 0, out_c = 0;
  std::vector<float> w;  // [out][in][3][3][3]
  std::vector<float> b;  // [out]

  void init(int in_channels, int out_channels, util::Rng& rng);
  std::size_t weight_index(int oc, int ic, int dz, int dy, int dx) const {
    return (((static_cast<std::size_t>(oc) * in_c + ic) * 3 + (dz + 1)) * 3 + (dy + 1)) *
               3 +
           (dx + 1);
  }
  void forward(const Tensor4& x, Tensor4& y) const;
  /// Accumulate dL/dw, dL/db from dL/dy into pre-sized `dw`/`db` (+=, so a
  /// caller can fold several examples into one buffer). `dx` is overwritten
  /// with dL/dx; it may be null (input layer).
  void backward(const Tensor4& x, const Tensor4& dy, Tensor4* dx, std::vector<float>& dw,
                std::vector<float>& db) const;
  /// Multiply-accumulate count for one forward pass over `voxels`.
  double macs(std::size_t voxels) const {
    return static_cast<double>(voxels) * in_c * out_c * 27.0;
  }
};

struct FfnConfig {
  int channels = 8;    // C
  int modules = 2;     // D residual modules
  int fov = 9;         // cubic field of view (odd)
  /// POM initial fill (probability) and the seed's initial probability.
  float pom_init = 0.05f;
  float pom_seed = 0.95f;
  std::uint64_t seed = 1234;
};

class FfnModel {
 public:
  explicit FfnModel(const FfnConfig& config);

  const FfnConfig& config() const { return config_; }

  /// Forward pass: input (2, fov³) -> POM logits (1, fov³). The workspace
  /// retains activations for backward(). Layout of `activations` (the input
  /// itself is NOT logged — backward() takes it as a parameter):
  ///   [h0, (r1, t1, r2, h_m) per module, rout]
  /// Intermediates are moved in, never copied; the vector is reserved up
  /// front so earlier entries stay put while later ones land.
  struct Workspace {
    std::vector<Tensor4> activations;
  };
  void forward(const Tensor4& input, Tensor4& logits, Workspace* ws = nullptr) const;

  /// Voxel-wise logistic loss; returns the mean loss over this call's
  /// voxels. `dlogits` is the loss gradient divided by `normalizer` — pass
  /// the total voxel count of the whole (possibly sharded) batch so that
  /// summing per-shard gradients averages exactly once. The returned loss
  /// is always the per-call mean, independent of `normalizer`.
  static float logistic_loss(const Tensor4& logits, const Volume<std::uint8_t>& target,
                             Tensor4& dlogits, double normalizer);
  /// Single-trainer convenience: normalizer = this call's voxel count.
  static float logistic_loss(const Tensor4& logits, const Volume<std::uint8_t>& target,
                             Tensor4& dlogits);

  /// Per-layer parameter gradients, shaped like the conv stack. A worker
  /// accumulates one (or more) examples into a zeroed instance; a reducer
  /// sums instances with add() and applies the total once.
  struct Gradients {
    std::vector<std::vector<float>> w;
    std::vector<std::vector<float>> b;
    /// Elementwise += (shapes must match). Alloc-free.
    void add(const Gradients& other);
    /// Zero all entries, keeping the shape. Alloc-free.
    void reset();
    bool empty() const { return w.empty(); }
  };
  /// A zeroed Gradients shaped for this model.
  Gradients make_gradients() const;

  /// Accumulate parameter gradients for one example into `grads` (which
  /// must be shaped by make_gradients()). Requires the workspace of the
  /// matching forward() call and the same `input` tensor.
  void backward(const Tensor4& input, const Tensor4& dlogits, const Workspace& ws,
                Gradients& grads) const;

  /// Optimizer configuration for train_step.
  struct OptimizerConfig {
    enum class Kind { Sgd, Adam };
    Kind kind = Kind::Sgd;
    float learning_rate = 0.02f;
    float momentum = 0.9f;   // SGD
    float beta1 = 0.9f;      // Adam
    float beta2 = 0.999f;
    float epsilon = 1e-8f;
  };

  /// Apply an already-reduced gradient with the configured optimizer.
  /// Switching OptimizerConfig::Kind mid-run resets the moment buffers and
  /// the Adam step counter — SGD momentum and Adam first-moment share
  /// storage, and mixing one kind's state into the other is silent garbage.
  void apply_gradients(const Gradients& grads, const OptimizerConfig& optimizer);

  /// Backprop + optimizer update (backward() into a scratch Gradients, then
  /// apply_gradients()). Requires the workspace of the matching forward call.
  void train_step(const Tensor4& input, const Tensor4& dlogits, const Workspace& ws,
                  const OptimizerConfig& optimizer);
  /// SGD-with-momentum convenience overload.
  void train_step(const Tensor4& input, const Tensor4& dlogits, const Workspace& ws,
                  float learning_rate, float momentum);

  /// MACs of one forward pass (basis of the GPU cost model).
  double forward_macs() const;
  std::size_t parameter_count() const;

  /// Flat access for (de)serialization into the object store.
  std::vector<float> serialize() const;
  /// Alloc-free variant: resizes `out` once, then overwrites in place.
  void serialize_into(std::vector<float>& out) const;
  bool deserialize(const std::vector<float>& blob);

 private:
  friend class FfnTrainer;
  FfnConfig config_;
  std::vector<Conv3d> convs_;  // conv_in, then 2 per module, then conv_out
  std::vector<std::vector<float>> vw_;  // first-moment buffers (weights)
  std::vector<std::vector<float>> vb_;  // first-moment buffers (biases)
  std::vector<std::vector<float>> sw_;  // Adam second moments (weights)
  std::vector<std::vector<float>> sb_;  // Adam second moments (biases)
  std::int64_t adam_steps_ = 0;
  /// Which optimizer the moment buffers currently belong to.
  OptimizerConfig::Kind moments_kind_ = OptimizerConfig::Kind::Sgd;
  /// Scratch for train_step (reused across calls; alloc-free steady state).
  Gradients grad_scratch_;
};

/// Training driver: samples FOV patches around object voxels from a labelled
/// volume and runs the recursive FFN update.
class FfnTrainer {
 public:
  struct Options {
    int steps = 400;            // optimizer steps
    int recursion = 2;          // POM refinement passes per example
    float learning_rate = 0.02f;
    float momentum = 0.9f;
    /// Optimizer: SGD-with-momentum, or Adam (the FFN paper's choice).
    FfnModel::OptimizerConfig::Kind optimizer = FfnModel::OptimizerConfig::Kind::Sgd;
    std::uint64_t seed = 99;
    /// Normalization: IVT value mapped to input as (v - mean)/scale.
    float input_mean = 200.f;
    float input_scale = 200.f;
  };

  FfnTrainer(FfnModel& model, const Volume<float>& image,
             const Volume<std::uint8_t>& labels, Options options);

  /// Run one SGD step (one sampled example); returns its loss.
  float step();
  /// Run all configured steps; returns mean loss of the final 10%.
  float train();

  const std::vector<float>& loss_history() const { return losses_; }

 private:
  void sample_center(int& x, int& y, int& z);
  void extract_input(int cx, int cy, int cz, const Volume<float>& pom, Tensor4& input) const;

  FfnModel& model_;
  const Volume<float>& image_;
  const Volume<std::uint8_t>& labels_;
  Options options_;
  util::Rng rng_;
  std::vector<std::size_t> positive_sites_;
  std::vector<float> losses_;
};

}  // namespace chase::ml
