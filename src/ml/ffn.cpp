#include "ml/ffn.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace chase::ml {

namespace {

inline float relu(float v) { return v > 0.f ? v : 0.f; }

void relu_forward(const Tensor4& x, Tensor4& y) {
  y = x;
  float* d = y.data();
  for (std::size_t i = 0; i < y.size(); ++i) d[i] = relu(d[i]);
}

/// dL/dx for y = relu(x): pass gradient where x > 0.
void relu_backward(const Tensor4& x, Tensor4& dy) {
  const float* xd = x.data();
  float* gd = dy.data();
  for (std::size_t i = 0; i < dy.size(); ++i) {
    if (xd[i] <= 0.f) gd[i] = 0.f;
  }
}

void add_into(Tensor4& dst, const Tensor4& src) {
  float* d = dst.data();
  const float* s = src.data();
  for (std::size_t i = 0; i < dst.size(); ++i) d[i] += s[i];
}

}  // namespace

// --- Conv3d ---------------------------------------------------------------------

void Conv3d::init(int in_channels, int out_channels, util::Rng& rng) {
  in_c = in_channels;
  out_c = out_channels;
  w.resize(static_cast<std::size_t>(in_c) * out_c * 27);
  b.assign(static_cast<std::size_t>(out_c), 0.f);
  // He initialization for relu stacks.
  const double stddev = std::sqrt(2.0 / (in_c * 27.0));
  for (auto& weight : w) weight = static_cast<float>(rng.normal(0.0, stddev));
}

void Conv3d::forward(const Tensor4& x, Tensor4& y) const {
  const int nx = x.nx(), ny = x.ny(), nz = x.nz();
  y = Tensor4(out_c, nx, ny, nz);
  for (int oc = 0; oc < out_c; ++oc) {
    for (int z = 0; z < nz; ++z) {
      for (int yy = 0; yy < ny; ++yy) {
        for (int xx = 0; xx < nx; ++xx) {
          float acc = b[static_cast<std::size_t>(oc)];
          for (int ic = 0; ic < in_c; ++ic) {
            for (int dz = -1; dz <= 1; ++dz) {
              const int sz = z + dz;
              if (sz < 0 || sz >= nz) continue;
              for (int dy = -1; dy <= 1; ++dy) {
                const int sy = yy + dy;
                if (sy < 0 || sy >= ny) continue;
                for (int dx = -1; dx <= 1; ++dx) {
                  const int sx = xx + dx;
                  if (sx < 0 || sx >= nx) continue;
                  acc += w[weight_index(oc, ic, dz, dy, dx)] * x.at(ic, sx, sy, sz);
                }
              }
            }
          }
          y.at(oc, xx, yy, z) = acc;
        }
      }
    }
  }
}

void Conv3d::backward(const Tensor4& x, const Tensor4& dy, Tensor4* dx,
                      std::vector<float>& dw, std::vector<float>& db) const {
  const int nx = x.nx(), ny = x.ny(), nz = x.nz();
  if (dx != nullptr) *dx = Tensor4(in_c, nx, ny, nz);
  assert(dw.size() == w.size() && db.size() == b.size());
  for (int oc = 0; oc < out_c; ++oc) {
    for (int z = 0; z < nz; ++z) {
      for (int yy = 0; yy < ny; ++yy) {
        for (int xx = 0; xx < nx; ++xx) {
          const float g = dy.at(oc, xx, yy, z);
          if (g == 0.f) continue;
          db[static_cast<std::size_t>(oc)] += g;
          for (int ic = 0; ic < in_c; ++ic) {
            for (int dz = -1; dz <= 1; ++dz) {
              const int sz = z + dz;
              if (sz < 0 || sz >= nz) continue;
              for (int dy2 = -1; dy2 <= 1; ++dy2) {
                const int sy = yy + dy2;
                if (sy < 0 || sy >= ny) continue;
                for (int dx2 = -1; dx2 <= 1; ++dx2) {
                  const int sx = xx + dx2;
                  if (sx < 0 || sx >= nx) continue;
                  dw[weight_index(oc, ic, dz, dy2, dx2)] += g * x.at(ic, sx, sy, sz);
                  if (dx != nullptr) {
                    dx->at(ic, sx, sy, sz) += g * w[weight_index(oc, ic, dz, dy2, dx2)];
                  }
                }
              }
            }
          }
        }
      }
    }
  }
}

// --- FfnModel -------------------------------------------------------------------

FfnModel::FfnModel(const FfnConfig& config) : config_(config) {
  assert(config_.fov % 2 == 1);
  util::Rng rng(config_.seed);
  const int C = config_.channels;
  convs_.resize(static_cast<std::size_t>(2 + 2 * config_.modules));
  convs_[0].init(2, C, rng);
  for (int m = 0; m < config_.modules; ++m) {
    convs_[static_cast<std::size_t>(1 + 2 * m)].init(C, C, rng);
    convs_[static_cast<std::size_t>(2 + 2 * m)].init(C, C, rng);
  }
  convs_.back().init(C, 1, rng);
  vw_.resize(convs_.size());
  vb_.resize(convs_.size());
  sw_.resize(convs_.size());
  sb_.resize(convs_.size());
  for (std::size_t i = 0; i < convs_.size(); ++i) {
    vw_[i].assign(convs_[i].w.size(), 0.f);
    vb_[i].assign(convs_[i].b.size(), 0.f);
    sw_[i].assign(convs_[i].w.size(), 0.f);
    sb_[i].assign(convs_[i].b.size(), 0.f);
  }
}

void FfnModel::forward(const Tensor4& input, Tensor4& logits, Workspace* ws) const {
  // Layout of computation:
  //   h = conv_in(input)
  //   for each module: h = h + conv2(relu(conv1(relu(h))))
  //   logits = conv_out(relu(h))
  //
  // When a workspace is supplied, intermediates are MOVED into the
  // activation log (layout in the Workspace doc) instead of deep-copied;
  // the log is reserved up front so moved-in entries never relocate and the
  // trunk state can be read back from the log by reference. backward() gets
  // the input tensor as a parameter, so it is not logged at all.
  if (ws == nullptr) {
    Tensor4 h;
    convs_[0].forward(input, h);
    for (int m = 0; m < config_.modules; ++m) {
      Tensor4 r1, t1, r2, t2;
      relu_forward(h, r1);
      convs_[static_cast<std::size_t>(1 + 2 * m)].forward(r1, t1);
      relu_forward(t1, r2);
      convs_[static_cast<std::size_t>(2 + 2 * m)].forward(r2, t2);
      add_into(t2, h);  // residual: h_{m+1} = h_m + conv2(relu(conv1(relu(h_m))))
      h = std::move(t2);
    }
    Tensor4 rout;
    relu_forward(h, rout);
    convs_.back().forward(rout, logits);
    return;
  }

  std::vector<Tensor4>& acts = ws->activations;
  acts.clear();
  acts.reserve(static_cast<std::size_t>(2 + 4 * config_.modules));
  {
    Tensor4 h0;
    convs_[0].forward(input, h0);
    acts.push_back(std::move(h0));  // pre-activation trunk state after conv_in
  }
  for (int m = 0; m < config_.modules; ++m) {
    const Tensor4& h = acts.back();  // trunk state h_m
    Tensor4 r1, t1, r2, t2;
    relu_forward(h, r1);
    convs_[static_cast<std::size_t>(1 + 2 * m)].forward(r1, t1);
    relu_forward(t1, r2);
    convs_[static_cast<std::size_t>(2 + 2 * m)].forward(r2, t2);
    add_into(t2, h);  // residual: h_{m+1} = h_m + conv2(relu(conv1(relu(h_m))))
    acts.push_back(std::move(r1));
    acts.push_back(std::move(t1));
    acts.push_back(std::move(r2));
    acts.push_back(std::move(t2));  // trunk state h_{m+1}
  }
  Tensor4 rout;
  relu_forward(acts.back(), rout);
  convs_.back().forward(rout, logits);
  acts.push_back(std::move(rout));
}

float FfnModel::logistic_loss(const Tensor4& logits, const Volume<std::uint8_t>& target,
                              Tensor4& dlogits, double normalizer) {
  dlogits = Tensor4(1, logits.nx(), logits.ny(), logits.nz());
  double total = 0.0;
  const std::size_t n = logits.voxels();
  const float divisor = static_cast<float>(normalizer);
  for (int z = 0; z < logits.nz(); ++z) {
    for (int y = 0; y < logits.ny(); ++y) {
      for (int x = 0; x < logits.nx(); ++x) {
        const float logit = logits.at(0, x, y, z);
        const float label = target.at(x, y, z) ? 1.f : 0.f;
        const float p = 1.f / (1.f + std::exp(-logit));
        // Numerically-stable BCE with logits.
        const float loss = std::max(logit, 0.f) - logit * label +
                           std::log1p(std::exp(-std::abs(logit)));
        total += loss;
        // Divided by the caller's batch-wide normalizer, NOT this call's
        // voxel count: shard gradients summed across workers then average
        // exactly once.
        dlogits.at(0, x, y, z) = (p - label) / divisor;
      }
    }
  }
  // The loss reported stays a per-call mean regardless of normalizer.
  return static_cast<float>(total / static_cast<double>(n));
}

float FfnModel::logistic_loss(const Tensor4& logits, const Volume<std::uint8_t>& target,
                              Tensor4& dlogits) {
  return logistic_loss(logits, target, dlogits,
                       static_cast<double>(logits.voxels()));
}

void FfnModel::Gradients::add(const Gradients& other) {
  assert(w.size() == other.w.size() && b.size() == other.b.size());
  for (std::size_t l = 0; l < w.size(); ++l) {
    std::vector<float>& wl = w[l];
    std::vector<float>& bl = b[l];
    const std::vector<float>& ow = other.w[l];
    const std::vector<float>& ob = other.b[l];
    assert(wl.size() == ow.size() && bl.size() == ob.size());
    for (std::size_t i = 0; i < wl.size(); ++i) wl[i] += ow[i];
    for (std::size_t i = 0; i < bl.size(); ++i) bl[i] += ob[i];
  }
}

void FfnModel::Gradients::reset() {
  for (auto& layer : w) std::fill(layer.begin(), layer.end(), 0.f);
  for (auto& layer : b) std::fill(layer.begin(), layer.end(), 0.f);
}

FfnModel::Gradients FfnModel::make_gradients() const {
  Gradients g;
  g.w.resize(convs_.size());
  g.b.resize(convs_.size());
  for (std::size_t l = 0; l < convs_.size(); ++l) {
    g.w[l].assign(convs_[l].w.size(), 0.f);
    g.b[l].assign(convs_[l].b.size(), 0.f);
  }
  return g;
}

void FfnModel::backward(const Tensor4& input, const Tensor4& dlogits, const Workspace& ws,
                        Gradients& grads) const {
  const auto& acts = ws.activations;
  // acts layout: [h0, (r1, t1, r2, h_m)*modules, rout]
  assert(acts.size() == static_cast<std::size_t>(2 + 4 * config_.modules));
  assert(grads.w.size() == convs_.size());

  // conv_out.
  const Tensor4& rout = acts.back();
  Tensor4 d_rout;
  convs_.back().backward(rout, dlogits, &d_rout, grads.w.back(), grads.b.back());
  // relu before conv_out; its input is the final trunk state h_M.
  const Tensor4& h_final = acts[acts.size() - 2];
  relu_backward(h_final, d_rout);
  Tensor4 dh = std::move(d_rout);

  for (int m = config_.modules - 1; m >= 0; --m) {
    const std::size_t base = 1 + static_cast<std::size_t>(m) * 4;
    const Tensor4& r1 = acts[base];      // relu(h_m)
    const Tensor4& t1 = acts[base + 1];  // conv1(r1)
    const Tensor4& r2 = acts[base + 2];  // relu(t1)
    // Trunk input to this module: h_m (h0 when m == 0, else previous h).
    const Tensor4& h_in = acts[base - 1];

    // Residual: dh flows both into the skip and the conv branch.
    Tensor4 d_r2;
    convs_[static_cast<std::size_t>(2 + 2 * m)].backward(
        r2, dh, &d_r2, grads.w[static_cast<std::size_t>(2 + 2 * m)],
        grads.b[static_cast<std::size_t>(2 + 2 * m)]);
    relu_backward(t1, d_r2);
    Tensor4 d_r1;
    convs_[static_cast<std::size_t>(1 + 2 * m)].backward(
        r1, d_r2, &d_r1, grads.w[static_cast<std::size_t>(1 + 2 * m)],
        grads.b[static_cast<std::size_t>(1 + 2 * m)]);
    relu_backward(h_in, d_r1);
    add_into(dh, d_r1);  // total gradient at h_m
  }

  // conv_in: gradient w.r.t. its input is not needed.
  convs_[0].backward(input, dh, nullptr, grads.w[0], grads.b[0]);
}

void FfnModel::apply_gradients(const Gradients& grads, const OptimizerConfig& optimizer) {
  assert(grads.w.size() == convs_.size());
  if (optimizer.kind != moments_kind_) {
    // The moment buffers carry the other optimizer's state (vw_/vb_ double
    // as SGD momentum and Adam first moment); a kind switch must start from
    // clean moments and a fresh bias-correction schedule.
    for (auto& layer : vw_) std::fill(layer.begin(), layer.end(), 0.f);
    for (auto& layer : vb_) std::fill(layer.begin(), layer.end(), 0.f);
    for (auto& layer : sw_) std::fill(layer.begin(), layer.end(), 0.f);
    for (auto& layer : sb_) std::fill(layer.begin(), layer.end(), 0.f);
    adam_steps_ = 0;
    moments_kind_ = optimizer.kind;
  }
  if (optimizer.kind == OptimizerConfig::Kind::Sgd) {
    for (std::size_t l = 0; l < convs_.size(); ++l) {
      Conv3d& conv = convs_[l];
      std::vector<float>& vw = vw_[l];
      std::vector<float>& vb = vb_[l];
      const std::vector<float>& dw = grads.w[l];
      const std::vector<float>& db = grads.b[l];
      for (std::size_t i = 0; i < conv.w.size(); ++i) {
        float& v = vw[i];
        v = optimizer.momentum * v - optimizer.learning_rate * dw[i];
        conv.w[i] += v;
      }
      for (std::size_t i = 0; i < conv.b.size(); ++i) {
        float& v = vb[i];
        v = optimizer.momentum * v - optimizer.learning_rate * db[i];
        conv.b[i] += v;
      }
    }
  } else {
    // Adam (Kingma & Ba) with bias correction.
    adam_steps_ += 1;
    const double t = static_cast<double>(adam_steps_);
    const double bias1 = 1.0 - std::pow(optimizer.beta1, t);
    const double bias2 = 1.0 - std::pow(optimizer.beta2, t);
    auto update = [&](std::vector<float>& param, std::vector<float>& m,
                      std::vector<float>& s, const std::vector<float>& grad) {
      for (std::size_t i = 0; i < param.size(); ++i) {
        const float g = grad[i];
        float& mi = m[i];
        float& si = s[i];
        mi = optimizer.beta1 * mi + (1.f - optimizer.beta1) * g;
        si = optimizer.beta2 * si + (1.f - optimizer.beta2) * g * g;
        const double mhat = mi / bias1;
        const double shat = si / bias2;
        param[i] -= static_cast<float>(optimizer.learning_rate * mhat /
                                       (std::sqrt(shat) + optimizer.epsilon));
      }
    };
    for (std::size_t l = 0; l < convs_.size(); ++l) {
      Conv3d& conv = convs_[l];
      update(conv.w, vw_[l], sw_[l], grads.w[l]);
      update(conv.b, vb_[l], sb_[l], grads.b[l]);
    }
  }
}

void FfnModel::train_step(const Tensor4& input, const Tensor4& dlogits,
                          const Workspace& ws, float learning_rate, float momentum) {
  OptimizerConfig config;
  config.kind = OptimizerConfig::Kind::Sgd;
  config.learning_rate = learning_rate;
  config.momentum = momentum;
  train_step(input, dlogits, ws, config);
}

void FfnModel::train_step(const Tensor4& input, const Tensor4& dlogits,
                          const Workspace& ws, const OptimizerConfig& optimizer) {
  if (grad_scratch_.empty()) {
    grad_scratch_ = make_gradients();
  } else {
    grad_scratch_.reset();
  }
  backward(input, dlogits, ws, grad_scratch_);
  apply_gradients(grad_scratch_, optimizer);
}

double FfnModel::forward_macs() const {
  const std::size_t fov3 = static_cast<std::size_t>(config_.fov) * config_.fov * config_.fov;
  double macs = 0.0;
  for (const auto& conv : convs_) macs += conv.macs(fov3);
  return macs;
}

std::size_t FfnModel::parameter_count() const {
  std::size_t n = 0;
  for (const auto& conv : convs_) n += conv.w.size() + conv.b.size();
  return n;
}

std::vector<float> FfnModel::serialize() const {
  std::vector<float> blob;
  serialize_into(blob);
  return blob;
}

void FfnModel::serialize_into(std::vector<float>& out) const {
  out.resize(parameter_count());
  std::size_t offset = 0;
  for (const auto& conv : convs_) {
    std::copy(conv.w.begin(), conv.w.end(), out.begin() + static_cast<std::ptrdiff_t>(offset));
    offset += conv.w.size();
    std::copy(conv.b.begin(), conv.b.end(), out.begin() + static_cast<std::ptrdiff_t>(offset));
    offset += conv.b.size();
  }
}

bool FfnModel::deserialize(const std::vector<float>& blob) {
  std::size_t offset = 0;
  for (auto& conv : convs_) {
    if (offset + conv.w.size() + conv.b.size() > blob.size()) return false;
    std::copy_n(blob.begin() + static_cast<std::ptrdiff_t>(offset), conv.w.size(),
                conv.w.begin());
    offset += conv.w.size();
    std::copy_n(blob.begin() + static_cast<std::ptrdiff_t>(offset), conv.b.size(),
                conv.b.begin());
    offset += conv.b.size();
  }
  return offset == blob.size();
}

// --- FfnTrainer ------------------------------------------------------------------

FfnTrainer::FfnTrainer(FfnModel& model, const Volume<float>& image,
                       const Volume<std::uint8_t>& labels, Options options)
    : model_(model), image_(image), labels_(labels), options_(options),
      rng_(options.seed) {
  const int half = model_.config().fov / 2;
  for (int z = half; z < labels_.nz() - half; ++z) {
    for (int y = half; y < labels_.ny() - half; ++y) {
      for (int x = half; x < labels_.nx() - half; ++x) {
        if (labels_.at(x, y, z)) positive_sites_.push_back(labels_.index(x, y, z));
      }
    }
  }
}

void FfnTrainer::sample_center(int& x, int& y, int& z) {
  const int half = model_.config().fov / 2;
  if (!positive_sites_.empty() && rng_.chance(0.9)) {
    const std::size_t flat =
        positive_sites_[rng_.uniform_u64(positive_sites_.size())];
    const int nx = labels_.nx(), ny = labels_.ny();
    x = static_cast<int>(flat % static_cast<std::size_t>(nx));
    y = static_cast<int>((flat / static_cast<std::size_t>(nx)) % static_cast<std::size_t>(ny));
    z = static_cast<int>(flat / (static_cast<std::size_t>(nx) * ny));
  } else {
    x = half + static_cast<int>(rng_.uniform_u64(
                   static_cast<std::uint64_t>(std::max(1, image_.nx() - 2 * half))));
    y = half + static_cast<int>(rng_.uniform_u64(
                   static_cast<std::uint64_t>(std::max(1, image_.ny() - 2 * half))));
    z = half + static_cast<int>(rng_.uniform_u64(
                   static_cast<std::uint64_t>(std::max(1, image_.nz() - 2 * half))));
  }
}

void FfnTrainer::extract_input(int cx, int cy, int cz, const Volume<float>& pom,
                               Tensor4& input) const {
  const int fov = model_.config().fov;
  const int half = fov / 2;
  input = Tensor4(2, fov, fov, fov);
  for (int z = 0; z < fov; ++z) {
    for (int y = 0; y < fov; ++y) {
      for (int x = 0; x < fov; ++x) {
        const int sx = cx + x - half, sy = cy + y - half, sz = cz + z - half;
        const float img = image_.get_or(sx, sy, sz, 0.f);
        input.at(0, x, y, z) = (img - options_.input_mean) / options_.input_scale;
        input.at(1, x, y, z) = pom.get_or(sx, sy, sz, model_.config().pom_init);
      }
    }
  }
}

float FfnTrainer::step() {
  const int fov = model_.config().fov;
  const int half = fov / 2;
  int cx, cy, cz;
  sample_center(cx, cy, cz);

  // Local POM initialized to background prior with an active seed center.
  Volume<float> pom(image_.nx(), image_.ny(), image_.nz(), model_.config().pom_init);
  pom.at(cx, cy, cz) = model_.config().pom_seed;

  // Label patch around the center.
  Volume<std::uint8_t> target(fov, fov, fov, 0);
  for (int z = 0; z < fov; ++z) {
    for (int y = 0; y < fov; ++y) {
      for (int x = 0; x < fov; ++x) {
        target.at(x, y, z) = labels_.get_or(cx + x - half, cy + y - half, cz + z - half,
                                            std::uint8_t{0});
      }
    }
  }

  float last_loss = 0.f;
  for (int r = 0; r < options_.recursion; ++r) {
    Tensor4 input;
    extract_input(cx, cy, cz, pom, input);
    Tensor4 logits;
    FfnModel::Workspace ws;
    model_.forward(input, logits, &ws);
    Tensor4 dlogits;
    last_loss = FfnModel::logistic_loss(logits, target, dlogits);
    FfnModel::OptimizerConfig opt;
    opt.kind = options_.optimizer;
    opt.learning_rate = options_.learning_rate;
    opt.momentum = options_.momentum;
    model_.train_step(input, dlogits, ws, opt);
    // Write back the refined POM for the next recursion step.
    for (int z = 0; z < fov; ++z) {
      for (int y = 0; y < fov; ++y) {
        for (int x = 0; x < fov; ++x) {
          const int sx = cx + x - half, sy = cy + y - half, sz = cz + z - half;
          if (pom.inside(sx, sy, sz)) {
            pom.at(sx, sy, sz) =
                1.f / (1.f + std::exp(-logits.at(0, x, y, z)));
          }
        }
      }
    }
  }
  losses_.push_back(last_loss);
  return last_loss;
}

float FfnTrainer::train() {
  for (int i = 0; i < options_.steps; ++i) step();
  const std::size_t tail = std::max<std::size_t>(1, losses_.size() / 10);
  double total = 0;
  for (std::size_t i = losses_.size() - tail; i < losses_.size(); ++i) total += losses_[i];
  return static_cast<float>(total / static_cast<double>(tail));
}

}  // namespace chase::ml
