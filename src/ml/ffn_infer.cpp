#include "ml/ffn_infer.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <deque>
#include <set>

namespace chase::ml {

std::vector<std::array<int, 3>> find_seeds(const Volume<float>& image, float threshold) {
  std::vector<std::array<int, 3>> seeds;
  for (int z = 0; z < image.nz(); ++z) {
    for (int y = 0; y < image.ny(); ++y) {
      for (int x = 0; x < image.nx(); ++x) {
        const float v = image.at(x, y, z);
        if (v <= threshold) continue;
        bool is_max = true;
        for (int dz = -1; dz <= 1 && is_max; ++dz) {
          for (int dy = -1; dy <= 1 && is_max; ++dy) {
            for (int dx = -1; dx <= 1 && is_max; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              if (image.get_or(x + dx, y + dy, z + dz, -1e30f) > v) is_max = false;
            }
          }
        }
        if (is_max) seeds.push_back({x, y, z});
      }
    }
  }
  std::sort(seeds.begin(), seeds.end(), [&](const auto& a, const auto& b) {
    const float va = image.at(a[0], a[1], a[2]);
    const float vb = image.at(b[0], b[1], b[2]);
    if (va != vb) return va > vb;
    return a < b;
  });
  return seeds;
}

InferenceResult ffn_inference(const FfnModel& model, const Volume<float>& image,
                              const InferenceOptions& options) {
  const int fov = model.config().fov;
  const int half = fov / 2;
  InferenceResult out;
  out.segments = Volume<std::int32_t>(image.nx(), image.ny(), image.nz(), 0);

  const auto seeds = find_seeds(image, options.seed_threshold);
  Volume<float> pom(image.nx(), image.ny(), image.nz(), 0.f);

  Tensor4 input(2, fov, fov, fov);
  Tensor4 logits;

  int next_id = 1;
  for (const auto& seed : seeds) {
    const int sx = seed[0], sy = seed[1], sz = seed[2];
    if (out.segments.at(sx, sy, sz) != 0) continue;  // already claimed

    // Fresh per-object POM canvas (background prior).
    pom.fill(model.config().pom_init);
    pom.at(sx, sy, sz) = model.config().pom_seed;

    std::deque<std::array<int, 3>> queue{{sx, sy, sz}};
    std::set<std::array<int, 3>> visited{{sx, sy, sz}};
    int moves = 0;
    while (!queue.empty() && moves < options.max_moves) {
      const auto [cx, cy, cz] = queue.front();
      queue.pop_front();
      ++moves;
      ++out.fov_moves;

      // Build input patch.
      for (int z = 0; z < fov; ++z) {
        for (int y = 0; y < fov; ++y) {
          for (int x = 0; x < fov; ++x) {
            const int ix = cx + x - half, iy = cy + y - half, iz = cz + z - half;
            input.at(0, x, y, z) =
                (image.get_or(ix, iy, iz, 0.f) - options.input_mean) / options.input_scale;
            input.at(1, x, y, z) = pom.get_or(ix, iy, iz, model.config().pom_init);
          }
        }
      }
      model.forward(input, logits);
      // Write refined POM back.
      for (int z = 0; z < fov; ++z) {
        for (int y = 0; y < fov; ++y) {
          for (int x = 0; x < fov; ++x) {
            const int ix = cx + x - half, iy = cy + y - half, iz = cz + z - half;
            if (pom.inside(ix, iy, iz)) {
              pom.at(ix, iy, iz) = 1.f / (1.f + std::exp(-logits.at(0, x, y, z)));
            }
          }
        }
      }
      // Move policy: step half a FOV along each axis where the POM at the
      // candidate position is confident.
      static constexpr std::array<std::array<int, 3>, 6> kDirections{
          {{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}}};
      for (const auto& d : kDirections) {
        const std::array<int, 3> next{cx + d[0] * half, cy + d[1] * half,
                                      cz + d[2] * half};
        if (!pom.inside(next[0], next[1], next[2])) continue;
        if (visited.count(next)) continue;
        if (pom.at(next[0], next[1], next[2]) < options.move_threshold) continue;
        visited.insert(next);
        queue.push_back(next);
      }
    }

    // Claim segmented voxels.
    std::size_t claimed = 0;
    for (int z = 0; z < image.nz(); ++z) {
      for (int y = 0; y < image.ny(); ++y) {
        for (int x = 0; x < image.nx(); ++x) {
          if (pom.at(x, y, z) >= options.segment_threshold &&
              out.segments.at(x, y, z) == 0) {
            out.segments.at(x, y, z) = next_id;
            ++claimed;
          }
        }
      }
    }
    if (claimed > 0) {
      ++next_id;
      ++out.objects;
    }
  }
  return out;
}

}  // namespace chase::ml
