#include "ml/meteo.hpp"

#include <cassert>
#include <cmath>

namespace chase::ml {

namespace {
constexpr double kGravity = 9.80665;  // m/s^2
}

void compute_ivt_components(const MeteoState& state, Volume<float>& ivt_u,
                            Volume<float>& ivt_v) {
  const int nx = state.qv.nx(), ny = state.qv.ny(), nl = state.qv.nz();
  assert(static_cast<int>(state.pressure_levels.size()) == nl);
  ivt_u = Volume<float>(nx, ny, 1);
  ivt_v = Volume<float>(nx, ny, 1);
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      double su = 0.0, sv = 0.0;
      // Trapezoidal integration over pressure (levels descend in pressure).
      for (int l = 0; l + 1 < nl; ++l) {
        const double dp = state.pressure_levels[l] - state.pressure_levels[l + 1];
        const double qu0 = state.qv.at(x, y, l) * state.u.at(x, y, l);
        const double qu1 = state.qv.at(x, y, l + 1) * state.u.at(x, y, l + 1);
        const double qv0 = state.qv.at(x, y, l) * state.v.at(x, y, l);
        const double qv1 = state.qv.at(x, y, l + 1) * state.v.at(x, y, l + 1);
        su += 0.5 * (qu0 + qu1) * dp;
        sv += 0.5 * (qv0 + qv1) * dp;
      }
      ivt_u.at(x, y, 0) = static_cast<float>(su / kGravity);
      ivt_v.at(x, y, 0) = static_cast<float>(sv / kGravity);
    }
  }
}

Volume<float> compute_ivt(const MeteoState& state) {
  Volume<float> iu, iv;
  compute_ivt_components(state, iu, iv);
  Volume<float> magnitude(state.qv.nx(), state.qv.ny(), 1);
  for (int y = 0; y < state.qv.ny(); ++y) {
    for (int x = 0; x < state.qv.nx(); ++x) {
      magnitude.at(x, y, 0) = std::hypot(iu.at(x, y, 0), iv.at(x, y, 0));
    }
  }
  return magnitude;
}

MeteoState generate_meteo_state(const MeteoParams& params) {
  util::Rng rng(params.seed);
  MeteoState state;
  state.u = Volume<float>(params.nx, params.ny, params.levels);
  state.v = Volume<float>(params.nx, params.ny, params.levels);
  state.qv = Volume<float>(params.nx, params.ny, params.levels);
  state.pressure_levels.resize(static_cast<std::size_t>(params.levels));
  for (int l = 0; l < params.levels; ++l) {
    // Levels spaced evenly in pressure from the surface to the model top.
    const double frac = static_cast<double>(l) / (params.levels - 1);
    state.pressure_levels[static_cast<std::size_t>(l)] =
        params.surface_pressure + frac * (params.top_pressure - params.surface_pressure);
  }

  const double cos_a = std::cos(params.plume_angle);
  const double sin_a = std::sin(params.plume_angle);
  for (int l = 0; l < params.levels; ++l) {
    // Moisture scale height: most vapour in the lowest ~quarter of levels.
    const double height_frac = static_cast<double>(l) / (params.levels - 1);
    const double humidity_profile = std::exp(-height_frac * 5.0);
    // Jet maximizes slightly above the surface (low-level jet).
    const double jet_profile = std::exp(-std::pow((height_frac - 0.12) / 0.15, 2.0));
    for (int y = 0; y < params.ny; ++y) {
      for (int x = 0; x < params.nx; ++x) {
        const double dx = x - params.plume_x;
        const double dy = y - params.plume_y;
        const double along = dx * cos_a + dy * sin_a;
        const double across = -dx * sin_a + dy * cos_a;
        const double plume =
            std::exp(-0.5 * (along * along / (params.plume_length * params.plume_length) +
                             across * across / (params.plume_width * params.plume_width)));
        const double noise = 1.0 + 0.05 * rng.normal();
        state.qv.at(x, y, l) = static_cast<float>(
            (params.surface_humidity + params.plume_humidity * plume) *
            humidity_profile * noise);
        const double wind = params.background_wind + params.jet_speed * plume * jet_profile;
        state.u.at(x, y, l) = static_cast<float>(wind * cos_a);
        state.v.at(x, y, l) = static_cast<float>(wind * sin_a);
      }
    }
  }
  return state;
}

}  // namespace chase::ml
