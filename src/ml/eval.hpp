#pragma once
/// \file eval.hpp
/// Segmentation quality metrics: voxel-level precision/recall/IoU/F1 and
/// object-level detection scores (an object counts as detected if a
/// predicted segment overlaps most of it). Used to validate the FFN against
/// the CONNECT ground truth ("the training volume is removed from the test
/// data volume for all validation metrics", §III-C).

#include <cstdint>

#include "ml/volume.hpp"

namespace chase::ml {

struct VoxelMetrics {
  std::uint64_t true_positive = 0;
  std::uint64_t false_positive = 0;
  std::uint64_t false_negative = 0;
  double precision() const;
  double recall() const;
  double iou() const;
  double f1() const;
};

/// Compare a predicted mask (nonzero = object) against truth (nonzero = object).
VoxelMetrics voxel_metrics(const Volume<std::int32_t>& predicted,
                           const Volume<std::uint8_t>& truth);
VoxelMetrics voxel_metrics(const Volume<std::uint8_t>& predicted,
                           const Volume<std::uint8_t>& truth);

struct ObjectMetrics {
  int truth_objects = 0;
  int detected = 0;       // truth objects with >= overlap_fraction covered
  int predicted_objects = 0;
  double detection_rate() const {
    return truth_objects == 0 ? 0.0 : static_cast<double>(detected) / truth_objects;
  }
};

/// Object-level detection: truth objects come from a labelled truth volume
/// (ids 1..N); a truth object is detected when at least `overlap_fraction`
/// of its voxels carry any predicted segment id.
ObjectMetrics object_metrics(const Volume<std::int32_t>& predicted,
                             const Volume<std::int32_t>& truth_labels,
                             double overlap_fraction = 0.5);

}  // namespace chase::ml
