#include "ml/cost.hpp"

namespace chase::ml {

double FfnCostModel::forward_flops() const {
  const double fov3 = static_cast<double>(fov) * fov * fov;
  // conv_in (2->C) + 2 convs per module (C->C) + conv_out (C->1); 27-tap
  // kernels; 2 FLOPs per MAC.
  const double macs_in = 2.0 * channels * 27.0 * fov3;
  const double macs_mod = 2.0 * modules * (static_cast<double>(channels) * channels * 27.0 * fov3);
  const double macs_out = static_cast<double>(channels) * 1.0 * 27.0 * fov3;
  return 2.0 * (macs_in + macs_mod + macs_out);
}

double FfnCostModel::training_flops() const {
  return train_steps * train_flops_multiplier * forward_flops();
}

double FfnCostModel::inference_flops(double voxels) const {
  const double moves = voxels / voxels_per_move * coverage_redundancy;
  return moves * forward_flops();
}

double FfnCostModel::effective_flops(cluster::GpuModel gpu) const {
  return cluster::gpu_fp32_tflops(gpu) * 1e12 * gpu_efficiency;
}

double FfnCostModel::training_seconds(cluster::GpuModel gpu, int gpus) const {
  return training_flops() / (effective_flops(gpu) * gpus);
}

double FfnCostModel::inference_seconds(double voxels, cluster::GpuModel gpu,
                                       int gpus) const {
  return inference_flops(voxels) / (effective_flops(gpu) * gpus);
}

}  // namespace chase::ml
