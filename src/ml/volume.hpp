#pragma once
/// \file volume.hpp
/// Dense 3-D volumes and 4-D (channelled) tensors for the ML algorithms.
/// The atmospheric data is a (x=lon, y=lat, t=time) volume — the paper's
/// 576×361×240 training volume and 576×361×112,249 inference volume; the FFN
/// operates on (channel, x, y, t) tensors.

#include <cassert>
#include <cstddef>
#include <vector>

namespace chase::ml {

/// Dense 3-D grid, x fastest.
template <typename T>
class Volume {
 public:
  Volume() : nx_(0), ny_(0), nz_(0) {}
  Volume(int nx, int ny, int nz, T fill = T{})
      : nx_(nx), ny_(ny), nz_(nz),
        data_(static_cast<std::size_t>(nx) * ny * nz, fill) {}

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  std::size_t size() const { return data_.size(); }

  bool inside(int x, int y, int z) const {
    return x >= 0 && x < nx_ && y >= 0 && y < ny_ && z >= 0 && z < nz_;
  }
  std::size_t index(int x, int y, int z) const {
    assert(inside(x, y, z));
    return (static_cast<std::size_t>(z) * ny_ + y) * nx_ + x;
  }
  T& at(int x, int y, int z) { return data_[index(x, y, z)]; }
  const T& at(int x, int y, int z) const { return data_[index(x, y, z)]; }
  /// Clamped read: out-of-bounds returns `fallback`.
  T get_or(int x, int y, int z, T fallback) const {
    return inside(x, y, z) ? data_[index(x, y, z)] : fallback;
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  void fill(T v) { data_.assign(data_.size(), v); }

 private:
  int nx_, ny_, nz_;
  std::vector<T> data_;
};

/// Dense 4-D tensor (channel, z, y, x), x fastest — the conv layout.
class Tensor4 {
 public:
  Tensor4() : c_(0), nx_(0), ny_(0), nz_(0) {}
  Tensor4(int c, int nx, int ny, int nz, float fill = 0.f)
      : c_(c), nx_(nx), ny_(ny), nz_(nz),
        data_(static_cast<std::size_t>(c) * nx * ny * nz, fill) {}

  int channels() const { return c_; }
  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  std::size_t size() const { return data_.size(); }
  std::size_t voxels() const { return static_cast<std::size_t>(nx_) * ny_ * nz_; }

  std::size_t index(int c, int x, int y, int z) const {
    return ((static_cast<std::size_t>(c) * nz_ + z) * ny_ + y) * nx_ + x;
  }
  float& at(int c, int x, int y, int z) { return data_[index(c, x, y, z)]; }
  float at(int c, int x, int y, int z) const { return data_[index(c, x, y, z)]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  /// Pointer to the start of one channel's (z,y,x) block.
  float* channel(int c) { return data_.data() + index(c, 0, 0, 0); }
  const float* channel(int c) const { return data_.data() + index(c, 0, 0, 0); }
  void fill(float v) { data_.assign(data_.size(), v); }

 private:
  int c_, nx_, ny_, nz_;
  std::vector<float> data_;
};

}  // namespace chase::ml
