#include "ml/connect.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <numeric>

namespace chase::ml {

namespace {

/// Union-find over flat voxel indices.
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t a) {
    while (parent_[a] != a) {
      parent_[a] = parent_[parent_[a]];  // path halving
      a = parent_[a];
    }
    return a;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

ConnectResult connect_label(const Volume<float>& ivt, const ConnectParams& params) {
  const int nx = ivt.nx(), ny = ivt.ny(), nt = ivt.nz();
  ConnectResult out;
  out.labels = Volume<std::int32_t>(nx, ny, nt, 0);

  const float thr = static_cast<float>(params.threshold);
  auto above = [&](int x, int y, int t) { return ivt.at(x, y, t) > thr; };

  DisjointSet ds(ivt.size());
  // Scan with backward-looking neighbour offsets only (each union seen once).
  std::vector<std::array<int, 3>> offsets;
  for (int dt = -1; dt <= 0; ++dt) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dt == 0 && (dy > 0 || (dy == 0 && dx >= 0))) continue;  // forward half
        const int diag = std::abs(dx) + std::abs(dy) + std::abs(dt);
        if (!params.diagonal_connectivity && diag > 1) continue;
        offsets.push_back({dx, dy, dt});
      }
    }
  }

  for (int t = 0; t < nt; ++t) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        if (!above(x, y, t)) continue;
        const std::size_t here = ivt.index(x, y, t);
        for (const auto& [dx, dy, dt] : offsets) {
          const int nx2 = x + dx, ny2 = y + dy, nt2 = t + dt;
          if (!ivt.inside(nx2, ny2, nt2) || !above(nx2, ny2, nt2)) continue;
          ds.unite(here, ivt.index(nx2, ny2, nt2));
        }
      }
    }
  }

  // Collect components and assign dense ids (ordered by root index, i.e.
  // first-seen scan order — deterministic).
  struct Accum {
    std::size_t voxels = 0;
    int t_start = 1 << 30, t_end = -1;
    float max_intensity = 0.f;
    std::map<int, std::array<double, 3>> per_t;  // t -> (sum x, sum y, count)
  };
  std::map<std::size_t, Accum> components;
  for (int t = 0; t < nt; ++t) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        if (!above(x, y, t)) continue;
        Accum& a = components[ds.find(ivt.index(x, y, t))];
        a.voxels += 1;
        a.t_start = std::min(a.t_start, t);
        a.t_end = std::max(a.t_end, t);
        a.max_intensity = std::max(a.max_intensity, ivt.at(x, y, t));
        auto& cell = a.per_t[t];
        cell[0] += x;
        cell[1] += y;
        cell[2] += 1;
      }
    }
  }

  std::map<std::size_t, int> root_to_id;
  int next_id = 1;
  for (const auto& [root, accum] : components) {
    if (accum.voxels < params.min_voxels) continue;
    root_to_id[root] = next_id;
    ConnectObject obj;
    obj.id = next_id;
    obj.voxels = accum.voxels;
    obj.t_start = accum.t_start;
    obj.t_end = accum.t_end;
    obj.max_intensity = accum.max_intensity;
    for (int t = accum.t_start; t <= accum.t_end; ++t) {
      auto it = accum.per_t.find(t);
      if (it == accum.per_t.end()) {
        // Diagonal-in-time connections may skip a step spatially; carry the
        // previous centroid forward.
        if (!obj.track.empty()) obj.track.push_back(obj.track.back());
        continue;
      }
      obj.track.emplace_back(it->second[0] / it->second[2], it->second[1] / it->second[2]);
    }
    out.objects.push_back(std::move(obj));
    ++next_id;
  }

  for (int t = 0; t < nt; ++t) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        if (!above(x, y, t)) continue;
        auto it = root_to_id.find(ds.find(ivt.index(x, y, t)));
        if (it != root_to_id.end()) out.labels.at(x, y, t) = it->second;
      }
    }
  }
  return out;
}

ConnectStats summarize(const ConnectResult& result) {
  ConnectStats s;
  s.object_count = result.objects.size();
  if (result.objects.empty()) return s;
  double durations = 0, voxels = 0, tracks = 0;
  for (const auto& obj : result.objects) {
    durations += obj.duration();
    voxels += static_cast<double>(obj.voxels);
    s.max_intensity = std::max(s.max_intensity, static_cast<double>(obj.max_intensity));
    double len = 0;
    for (std::size_t i = 1; i < obj.track.size(); ++i) {
      const double dx = obj.track[i].first - obj.track[i - 1].first;
      const double dy = obj.track[i].second - obj.track[i - 1].second;
      len += std::sqrt(dx * dx + dy * dy);
    }
    tracks += len;
  }
  const double n = static_cast<double>(result.objects.size());
  s.mean_duration = durations / n;
  s.mean_voxels = voxels / n;
  s.mean_track_length = tracks / n;
  return s;
}

}  // namespace chase::ml
