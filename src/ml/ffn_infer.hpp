#pragma once
/// \file ffn_infer.hpp
/// Flood-fill inference: grow one object at a time from seed points by
/// repeatedly applying the FFN over its field of view and moving the FOV to
/// positions where the predicted object map (POM) crossed the move
/// threshold — the canonical FFN inference policy [20], §III-C of the paper.

#include <array>
#include <cstdint>
#include <vector>

#include "ml/ffn.hpp"
#include "ml/volume.hpp"

namespace chase::ml {

struct InferenceOptions {
  /// POM value required to move the FOV to a new position.
  float move_threshold = 0.8f;
  /// POM value required to claim a voxel for the segment.
  float segment_threshold = 0.6f;
  /// Image value above which local maxima become seeds.
  float seed_threshold = 250.f;
  /// Maximum FOV moves per seed (safety bound).
  int max_moves = 4000;
  /// Input normalization (must match training).
  float input_mean = 200.f;
  float input_scale = 200.f;
};

struct InferenceResult {
  Volume<std::int32_t> segments;  // 0 background, 1..N object ids
  int objects = 0;
  std::uint64_t fov_moves = 0;    // total network evaluations (cost proxy)
};

/// Find seed points: strict local maxima of `image` above the threshold,
/// sorted by decreasing intensity.
std::vector<std::array<int, 3>> find_seeds(const Volume<float>& image, float threshold);

/// Segment the whole volume.
InferenceResult ffn_inference(const FfnModel& model, const Volume<float>& image,
                              const InferenceOptions& options);

}  // namespace chase::ml
