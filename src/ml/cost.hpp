#pragma once
/// \file cost.hpp
/// FLOP-based GPU wall-clock model bridging the real (small) FFN to the
/// paper's hardware scale. The paper trained/inferred a production-size FFN
/// (TensorFlow, 33³ FOV) on NVIDIA 1080ti GPUs; we count the FLOPs of that
/// configuration analytically and divide by a derated GPU throughput to
/// predict step durations:
///
///   * Step 2 (training): 306 min total on one GPU, of which the serial
///     data-preparation phase (NetCDF -> protobuf) is network/CPU bound.
///   * Step 3 (inference): 2.3e10 voxels across 50 GPUs in 1133 min.
///
/// All constants are in one place, documented, and exercised by tests that
/// check the predictions land near the paper's Table I.

#include <cstdint>

#include "cluster/machine.hpp"

namespace chase::ml {

struct FfnCostModel {
  // --- production network configuration (Januszewski et al. defaults) -----
  int fov = 33;
  int channels = 32;
  int modules = 12;

  // --- execution efficiency ------------------------------------------------
  /// Fraction of peak fp32 a real TF conv workload sustains on a 1080ti.
  double gpu_efficiency = 0.30;

  // --- training -------------------------------------------------------------
  /// SGD steps of the paper's training run (30 days of data, 381 MB volume).
  /// Chosen so one 1080ti trains in ~244 min; with the serial protobuf prep
  /// phase in front this reproduces the paper's 306-minute Step 2.
  double train_steps = 3.46e5;
  /// Backward+update costs ~2x forward.
  double train_flops_multiplier = 3.0;

  // --- inference --------------------------------------------------------------
  /// Voxels freshly covered per FOV move. Half-FOV steps re-evaluate ~97% of
  /// the patch, and most moves refine rather than extend the segment.
  double voxels_per_move = 800.0;
  /// Seeds / multi-pass redundancy: each voxel area is visited this many
  /// times on average across seeds. Together with voxels_per_move this puts
  /// 2.3e10 voxels on 50 derated 1080tis at ~1130 min (paper: 1133 min).
  double coverage_redundancy = 8.4;

  /// FLOPs of one forward FOV pass (2 FLOPs per MAC).
  double forward_flops() const;
  /// FLOPs to train for `train_steps`.
  double training_flops() const;
  /// FLOPs to run inference over `voxels`.
  double inference_flops(double voxels) const;

  /// Seconds on `gpus` GPUs of the given model.
  double training_seconds(cluster::GpuModel gpu, int gpus = 1) const;
  double inference_seconds(double voxels, cluster::GpuModel gpu, int gpus) const;
  /// Effective sustained FLOP/s of one GPU.
  double effective_flops(cluster::GpuModel gpu) const;
};

/// The paper's workload constants (Table I / §III).
struct PaperWorkload {
  double archive_bytes = 455e9;
  double subset_bytes = 246e9;
  std::uint64_t file_count = 112249;
  double training_volume_bytes = 381e6;
  std::uint64_t training_voxels = 576ULL * 361 * 240;
  double inference_voxels = 2.3e10;
  int inference_gpus = 50;
  double step1_minutes = 37;
  double step2_minutes = 306;
  double step3_minutes = 1133;
  double viz_bytes = 5.8e9;
};

}  // namespace chase::ml
