#pragma once
/// \file meteo.hpp
/// The meteorological side of the case study: M2I3NPASM carries assimilated
/// 3-D fields (winds U/V, specific humidity QV) on 42 pressure levels, and
/// the workflow's first processing step "calculat[es] Integrated Water Vapor
/// Transport (IVT) from the assimilated meteorological field data archive"
/// (paper §III). This module implements that derivation:
///
///   IVT = (1/g) * | ∫ qv * (u, v) dp |            [kg m^-1 s^-1]
///
/// discretized over the model's pressure levels, plus a physically-motivated
/// synthetic state generator: an atmospheric river is a moist low-level jet,
/// so the generator builds a moisture plume and a co-located wind jet whose
/// integral reproduces AR-like IVT ridges.

#include <vector>

#include "ml/volume.hpp"
#include "util/rng.hpp"

namespace chase::ml {

/// One assimilated model state: 3-D fields on (x, y, level). Level 0 is the
/// surface; pressures decrease with level index.
struct MeteoState {
  Volume<float> u;   // eastward wind, m/s
  Volume<float> v;   // northward wind, m/s
  Volume<float> qv;  // specific humidity, kg/kg
  std::vector<double> pressure_levels;  // Pa, descending (surface first)
};

/// Vertically integrate: returns the IVT magnitude field (x, y, 1).
Volume<float> compute_ivt(const MeteoState& state);
/// Component form (eastward, northward) for transport-direction analyses.
void compute_ivt_components(const MeteoState& state, Volume<float>& ivt_u,
                            Volume<float>& ivt_v);

struct MeteoParams {
  int nx = 96;
  int ny = 64;
  int levels = 42;
  double surface_pressure = 101325.0;  // Pa
  double top_pressure = 10000.0;       // Pa
  /// Background humidity at the surface (kg/kg), decaying with height.
  double surface_humidity = 0.008;
  /// Background zonal wind (m/s).
  double background_wind = 6.0;
  /// Atmospheric-river plume: moisture enhancement and jet speed.
  double plume_humidity = 0.014;
  double jet_speed = 35.0;
  /// Plume geometry (grid units).
  double plume_x = 40, plume_y = 32, plume_length = 22, plume_width = 4;
  double plume_angle = 0.3;  // radians
  std::uint64_t seed = 7;
};

/// Build a synthetic assimilated state with one embedded atmospheric river.
MeteoState generate_meteo_state(const MeteoParams& params);

}  // namespace chase::ml
