#include "ml/eval.hpp"

#include <map>
#include <set>

namespace chase::ml {

double VoxelMetrics::precision() const {
  const auto denom = true_positive + false_positive;
  return denom == 0 ? 0.0 : static_cast<double>(true_positive) / static_cast<double>(denom);
}

double VoxelMetrics::recall() const {
  const auto denom = true_positive + false_negative;
  return denom == 0 ? 0.0 : static_cast<double>(true_positive) / static_cast<double>(denom);
}

double VoxelMetrics::iou() const {
  const auto denom = true_positive + false_positive + false_negative;
  return denom == 0 ? 0.0 : static_cast<double>(true_positive) / static_cast<double>(denom);
}

double VoxelMetrics::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

namespace {

template <typename P>
VoxelMetrics compute(const P& predicted, const Volume<std::uint8_t>& truth) {
  VoxelMetrics m;
  for (int z = 0; z < truth.nz(); ++z) {
    for (int y = 0; y < truth.ny(); ++y) {
      for (int x = 0; x < truth.nx(); ++x) {
        const bool p = predicted.at(x, y, z) != 0;
        const bool t = truth.at(x, y, z) != 0;
        if (p && t) {
          ++m.true_positive;
        } else if (p) {
          ++m.false_positive;
        } else if (t) {
          ++m.false_negative;
        }
      }
    }
  }
  return m;
}

}  // namespace

VoxelMetrics voxel_metrics(const Volume<std::int32_t>& predicted,
                           const Volume<std::uint8_t>& truth) {
  return compute(predicted, truth);
}

VoxelMetrics voxel_metrics(const Volume<std::uint8_t>& predicted,
                           const Volume<std::uint8_t>& truth) {
  return compute(predicted, truth);
}

ObjectMetrics object_metrics(const Volume<std::int32_t>& predicted,
                             const Volume<std::int32_t>& truth_labels,
                             double overlap_fraction) {
  std::map<std::int32_t, std::uint64_t> truth_sizes;
  std::map<std::int32_t, std::uint64_t> covered;
  std::set<std::int32_t> predicted_ids;
  for (int z = 0; z < truth_labels.nz(); ++z) {
    for (int y = 0; y < truth_labels.ny(); ++y) {
      for (int x = 0; x < truth_labels.nx(); ++x) {
        const std::int32_t t = truth_labels.at(x, y, z);
        const std::int32_t p = predicted.at(x, y, z);
        if (p != 0) predicted_ids.insert(p);
        if (t != 0) {
          ++truth_sizes[t];
          if (p != 0) ++covered[t];
        }
      }
    }
  }
  ObjectMetrics m;
  m.truth_objects = static_cast<int>(truth_sizes.size());
  m.predicted_objects = static_cast<int>(predicted_ids.size());
  for (const auto& [id, size] : truth_sizes) {
    const auto it = covered.find(id);
    const double fraction =
        it == covered.end() ? 0.0
                            : static_cast<double>(it->second) / static_cast<double>(size);
    if (fraction >= overlap_fraction) ++m.detected;
  }
  return m;
}

}  // namespace chase::ml
