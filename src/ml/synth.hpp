#pragma once
/// \file synth.hpp
/// Synthetic MERRA-2 IVT generator — the stand-in for the NASA archive we
/// cannot redistribute. Integrated Water Vapor Transport fields are dominated
/// by "atmospheric rivers": long, narrow filaments of intense moisture
/// transport that appear (genesis), advect across the grid, and decay
/// (termination) — exactly the connected space-time objects CONNECT [21,22]
/// and the FFN segment. The generator reproduces that structure: a smooth
/// background field plus K advecting, rotated, anisotropic Gaussian ridges,
/// with the ground-truth event mask recorded for training and evaluation.

#include <cstdint>
#include <vector>

#include "ml/volume.hpp"

namespace chase::ml {

struct IvtEvent {
  double x0, y0;        // genesis centre (grid units)
  double vx, vy;        // advection velocity (grid units per time step)
  double length;        // ridge half-length
  double width;         // ridge half-width
  double angle;         // ridge orientation (radians)
  double intensity;     // peak IVT above background (kg/m/s)
  int t_start, t_end;   // life cycle in time steps
};

struct IvtFieldParams {
  int nx = 96;            // paper scale: 576
  int ny = 64;            // paper scale: 361
  int nt = 48;            // time steps (3-hourly)
  int events = 6;         // atmospheric-river count
  double background = 80.0;    // mean background IVT
  double noise = 12.0;         // background variability
  double event_intensity = 420.0;
  /// IVT threshold defining "intense transport" for the truth mask; the AR
  /// literature uses 250 kg/m/s.
  double label_threshold = 250.0;
  std::uint64_t seed = 42;
};

struct IvtField {
  Volume<float> ivt;       // (x, y, t)
  Volume<std::uint8_t> truth;  // 1 where an event exceeds the label threshold
  std::vector<IvtEvent> events;
};

/// Generate a synthetic IVT volume with ground truth.
IvtField generate_ivt(const IvtFieldParams& params);

}  // namespace chase::ml
