#pragma once
/// \file connect.hpp
/// The CONNected objECT (CONNECT) algorithm [Sellars et al. 2013, 2017]: the
/// paper's baseline segmentation, previously "MATLAB functions using a single
/// CPU". CONNECT thresholds the IVT field and labels connected components in
/// space *and time* (26-connectivity on the (x, y, t) volume), tracking "the
/// entire life-cycle of a detected earth science phenomena": genesis,
/// pathway, and termination.
///
/// Implemented with a union-find over the voxel grid; optionally
/// multithreaded (label rows in parallel, then merge), since our substitute
/// for "a single CPU, limited memory" baseline must also serve as a fair
/// small-scale comparator to the FFN.

#include <cstdint>
#include <vector>

#include "ml/volume.hpp"

namespace chase::ml {

/// One tracked space-time object.
struct ConnectObject {
  int id = 0;
  std::size_t voxels = 0;
  int t_start = 0;       // genesis time step
  int t_end = 0;         // termination time step
  float max_intensity = 0.f;
  /// Centroid (x, y) per life-cycle time step — the object's pathway.
  std::vector<std::pair<double, double>> track;
  int duration() const { return t_end - t_start + 1; }
};

struct ConnectResult {
  Volume<std::int32_t> labels;  // 0 = background, 1..N = object id
  std::vector<ConnectObject> objects;
};

struct ConnectParams {
  /// IVT threshold for "intense moisture transport" (kg/m/s).
  double threshold = 250.0;
  /// Drop objects smaller than this many voxels (noise speckle).
  std::size_t min_voxels = 8;
  /// Use 26-connectivity (true) or 6-connectivity (false).
  bool diagonal_connectivity = true;
};

/// Segment and track objects in an IVT volume (x, y, t).
ConnectResult connect_label(const Volume<float>& ivt, const ConnectParams& params);

/// Summary statistics over a CONNECT run (for the science analysis step).
struct ConnectStats {
  std::size_t object_count = 0;
  double mean_duration = 0.0;   // time steps
  double mean_voxels = 0.0;
  double max_intensity = 0.0;
  double mean_track_length = 0.0;  // grid-units travelled by the centroid
};

ConnectStats summarize(const ConnectResult& result);

}  // namespace chase::ml
