#pragma once
/// \file disttrain.hpp
/// Data-parallel FFN training across N simulated GPU workers — ROADMAP item
/// 4, the paper's §III-E2 distributed-training extension ("Tensorflow does
/// support distributed training", run here as kube pods over chase::net
/// instead of replaying a calibrated rate model).
///
/// Each worker pod leases one shard of the synthetic IVT volume (a
/// contiguous time slab), samples one FOV example per global step from a
/// stateless per-(shard, step) rng stream, runs the real FfnModel
/// forward/backward on its weight replica, pays the FLOP-derived GPU time on
/// its granted device, and hands the gradient to a SyncStrategy:
///
///  * RingAllReduce — synchronous. When all N shard gradients for step t
///    are registered, the reduce-scatter + all-gather schedule runs as
///    2(N-1) rounds of N concurrent chase::net transfers of ceil(B/N) bytes
///    each (the bandwidth-optimal ring: every worker moves 2(N-1)/N · B
///    bytes per step), so link contention and max-min fair sharing shape
///    step time. The summed gradient is applied once, in ascending shard
///    order — bit-identical to a single-trainer large-batch step.
///  * ParamServer — workers push gradients to a server pod and pull weights
///    back, all as real transfers. With staleness bound 0 the server
///    applies the mean of all N pushes per step (same ascending-shard sum:
///    bit-identical to the ring and to the reference); with bound s > 0 it
///    applies every push on arrival and a worker may run up to s steps
///    ahead of the slowest shard (stale-synchronous parallelism) — faster
///    wall-clock, stale gradients, the classic async accuracy cliff.
///    Optional backup workers (Google-style straggler mitigation) compute
///    redundant copies of extra shards; each synchronous step applies the
///    first N arrivals and drops the rest.
///
/// Healing: a per-shard supervisor recreates the worker pod whenever it
/// terminates without finishing its stream (chaos kill, node loss). The
/// shard lease — the next unregistered step — lives in the trainer, and the
/// example stream is a pure function of (shard seed, step), so a
/// replacement resumes exactly where the victim stopped: every (shard,
/// step) microbatch is applied exactly once and the loss trajectory plus
/// determinism hash stay bit-identical with and without the kill.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kube/cluster.hpp"
#include "ml/ffn.hpp"
#include "ml/synth.hpp"
#include "net/network.hpp"
#include "sim/event.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace chase::ml {

struct DistTrainConfig {
  enum class Sync { RingAllReduce, ParamServer };
  Sync sync = Sync::RingAllReduce;

  /// Data-parallel width: shards of the training set == worker pods
  /// contributing to every applied step.
  int workers = 4;
  /// Extra redundant workers (ParamServer, staleness 0 only): each mirrors
  /// one of the primary shards; a step applies the first `workers` arrivals.
  int backup_workers = 0;
  /// Global optimizer steps to run.
  int steps = 40;
  /// Stale-synchronous bound (ParamServer only). 0 = fully synchronous;
  /// s > 0 lets a shard run while the slowest shard is up to s steps behind,
  /// applying each gradient on arrival.
  int staleness = 0;

  FfnConfig model;
  FfnModel::OptimizerConfig optimizer;
  IvtFieldParams data;
  std::uint64_t seed = 7;

  /// Input normalization, as FfnTrainer::Options.
  float input_mean = 200.f;
  float input_scale = 200.f;

  /// GPU cost: seconds = flops_per_example / (tflops · 1e12 · efficiency).
  /// flops_per_example 0 derives 2 · forward_macs · flops_multiplier from
  /// the actual (test-scale) model; benches override it with paper-scale
  /// FLOPs so compute/comm ratios match the real FFN.
  double gpu_efficiency = 0.30;
  double flops_multiplier = 3.0;
  double flops_per_example = 0.0;
  /// Gradient/weight payload per exchange; 0 derives 4 · parameter_count()
  /// from the model. Benches override with the paper-scale ~3 MB.
  util::Bytes sync_bytes = 0;

  std::string ns = "disttrain";
};

/// One run's results. Everything here is derived from simulated execution:
/// losses are real FfnModel math, times are virtual seconds, and `hash`
/// folds every applied loss plus the final weights — the bit-stable
/// determinism fingerprint the replay tests compare.
struct DistTrainReport {
  /// Mean shard loss per applied synchronous step (or per applied push in
  /// stale-synchronous mode), in application order.
  std::vector<float> losses;
  double sim_seconds = 0.0;       // start() to completion, virtual time
  std::uint64_t comm_bytes = 0;   // payload bytes the strategy moved
  int applied_updates = 0;        // optimizer applications
  int dropped_gradients = 0;      // late backups / stale incarnations
  int worker_restarts = 0;        // supervisor pod recreations
  /// Applied microbatches per shard slot (shard conservation: each primary
  /// slot must equal `steps` in synchronous modes).
  std::vector<int> shard_contributions;
  float final_loss = 0.0f;        // mean of the last quarter of `losses`
  std::uint64_t hash = 0;         // determinism fingerprint
  std::string gpu_model;          // GPU model of the first worker's machine
};

/// Deterministic sharded view of one synthetic IVT volume. Shard k owns a
/// contiguous time slab; its example for global step t is a pure function
/// of (base seed, k, t), so replacement workers resume mid-stream exactly.
class ShardedIvtDataset {
 public:
  ShardedIvtDataset(const IvtFieldParams& params, int shards, const FfnConfig& model,
                    std::uint64_t seed, float input_mean, float input_scale);

  int shards() const { return static_cast<int>(shard_seeds_.size()); }
  const IvtField& field() const { return field_; }

  /// Fill `input` (2-channel FOV patch: normalized image + seeded POM
  /// prior) and `target` (truth patch) for shard `shard`'s microbatch of
  /// global step `step`. Buffers are reused when already shaped.
  void example(int shard, int step, Tensor4& input, Volume<std::uint8_t>& target) const;

 private:
  void sample_center(int shard, int step, int& cx, int& cy, int& ct) const;

  IvtField field_;
  FfnConfig model_;
  float input_mean_, input_scale_;
  std::vector<std::uint64_t> shard_seeds_;
  std::vector<int> slab_lo_, slab_hi_;           // per-shard [lo, hi) time slab
  std::vector<std::vector<std::size_t>> sites_;  // per-shard positive centers
};

class DistTrainer;

/// Gradient-synchronization policy: when a shard may compute a step, which
/// weights it computes on, and how its gradient travels and is applied.
/// Coroutine methods take pointers (never references) per the repo's
/// coroutine-lifetime rules; `grads` moves into the callee's frame.
class SyncStrategy {
 public:
  virtual ~SyncStrategy() = default;
  virtual const char* name() const = 0;
  /// Suspend until shard `slot` may compute global step `step`, then bring
  /// `replica` to the weights that step must use (paying any pull traffic).
  virtual sim::Task acquire(kube::PodContext* ctx, int slot, int step,
                            FfnModel* replica, int* replica_version) = 0;
  /// Deliver (slot, step)'s gradient and loss: pay the strategy's traffic,
  /// register the contribution, and advance the global model when due.
  virtual sim::Task publish(kube::PodContext* ctx, int slot, int step,
                            FfnModel::Gradients grads, float loss) = 0;
};

/// Runs one data-parallel training job on a kube cluster. Construction
/// generates the dataset and the master model; start() launches the pods;
/// the returned event fires when the configured steps have been applied.
class DistTrainer {
 public:
  DistTrainer(kube::KubeCluster& kube, DistTrainConfig config);
  ~DistTrainer();
  DistTrainer(const DistTrainer&) = delete;
  DistTrainer& operator=(const DistTrainer&) = delete;

  /// Create the namespace, the server pod (ParamServer) and one supervised
  /// worker pod per shard slot. Idempotent guard: call once.
  sim::EventPtr start();

  const DistTrainConfig& config() const { return config_; }
  const DistTrainReport& report() const { return report_; }
  const FfnModel& model() const { return master_; }
  const ShardedIvtDataset& dataset() const { return dataset_; }
  SyncStrategy& strategy() { return *strategy_; }
  bool finished() const { return finished_; }

  /// Payload bytes one gradient/weight exchange moves.
  util::Bytes sync_bytes() const;
  /// FLOPs one worker spends per example (config override or model-derived).
  double flops_per_example() const;

 private:
  friend class RingAllReduceStrategy;
  friend class ParamServerStrategy;

  struct Slot {
    int next_step = 0;       // shard lease: first unregistered step
    int contributions = 0;   // registered (applied or buffered) microbatches
    int incarnation = 0;     // pod recreations
    net::NodeId last_node = -1;  // endpoint of the registering worker
    kube::PodPtr pod;        // current lease holder
  };

  int slot_count() const { return config_.workers + config_.backup_workers; }
  int min_next_step() const;
  /// Wake every coroutine parked on progress (version/lease advance).
  void notify_advance();
  /// Register one computed microbatch. Synchronous modes buffer into the
  /// step inbox; returns true at the `workers`-th distinct-shard arrival
  /// (the caller then pays the reduce traffic and calls apply_inbox()).
  /// Stale-synchronous applies immediately and returns false. Duplicate
  /// (stale-incarnation) and late-backup registrations are counted and
  /// dropped.
  bool register_gradient(int slot, int step, FfnModel::Gradients&& grads, float loss,
                         net::NodeId from);
  /// Sum the inbox in ascending slot order, apply, publish new weights.
  void apply_inbox();
  void apply_update(const FfnModel::Gradients& grads, float mean_loss);
  void finish();

  static sim::Task supervise_slot(DistTrainer* self, int slot);
  static sim::Task worker_body(DistTrainer* self, int slot, kube::PodContext* ctx);
  static sim::Task server_body(DistTrainer* self, kube::PodContext* ctx);

  kube::KubeCluster& kube_;
  sim::Simulation& sim_;
  DistTrainConfig config_;
  ShardedIvtDataset dataset_;
  FfnModel master_;
  std::unique_ptr<SyncStrategy> strategy_;

  std::vector<float> blob_;   // serialized master weights, version version_
  int version_ = 0;           // applied optimizer updates
  std::vector<Slot> slots_;

  // Synchronous step inbox: one slot per shard, current step only (the
  // admission gate makes >1 in-flight synchronous step impossible).
  std::vector<FfnModel::Gradients> inbox_;
  std::vector<float> inbox_loss_;
  std::vector<std::uint8_t> inbox_full_;
  int inbox_count_ = 0;
  FfnModel::Gradients reduce_scratch_;

  sim::EventPtr done_ = sim::make_event();
  sim::EventPtr advance_ev_ = sim::make_event();
  sim::EventPtr server_ready_ = sim::make_event();
  net::NodeId server_node_ = -1;
  kube::PodPtr server_pod_;

  DistTrainReport report_;
  double start_time_ = 0.0;
  bool started_ = false;
  bool finished_ = false;
};

/// The single-trainer equivalence reference: the same dataset, the same
/// per-shard microbatches, summed in ascending shard order into one
/// large-batch step per global step — no cluster, no network. Ring
/// all-reduce and staleness-0 parameter server must match its loss
/// trajectory and final weights bit for bit.
DistTrainReport reference_large_batch(const DistTrainConfig& config);

/// Determinism fingerprint over a loss trajectory + final weights.
std::uint64_t disttrain_hash(const std::vector<float>& losses,
                             const std::vector<float>& weights);

}  // namespace chase::ml
