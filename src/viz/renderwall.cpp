#include "viz/renderwall.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace chase::viz {

void RenderWall::run(const std::vector<net::NodeId>& gpu_nodes, net::NodeId display,
                     net::NodeId input, std::uint64_t frames, sim::EventPtr done) {
  sim_.spawn(frame_loop(this, gpu_nodes, display, input, frames, std::move(done)));
}

sim::Task RenderWall::frame_loop(RenderWall* self, std::vector<net::NodeId> gpu_nodes,
                                 net::NodeId display, net::NodeId input,
                                 std::uint64_t frames, sim::EventPtr done) {
  util::Rng rng(self->options_.seed);
  const double frame_period = 1.0 / self->options_.frame_rate_hz;
  const double tile_bytes =
      self->options_.tile_pixels * self->options_.bytes_per_pixel;

  for (std::uint64_t f = 0; f < frames; ++f) {
    const double input_time = self->sim_.now();

    // Input event: wand state from the input site to every render node
    // (tiny payload; pays WAN latency).
    std::vector<net::TransferPtr> input_events;
    for (auto node : gpu_nodes) {
      input_events.push_back(self->net_.transfer(input, node, 64));
    }
    for (auto& ev : input_events) co_await ev->done->wait(self->sim_);

    // Each node renders its tile (jittered GPU time) then streams it to the
    // display; the frame completes when the last tile lands.
    auto frame_done = sim::make_event();
    auto latch = std::make_shared<sim::Latch>(
        static_cast<std::int64_t>(gpu_nodes.size()), frame_done);
    struct TileJob {
      RenderWall* wall;
      net::NodeId node, display;
      double render_s;
      double bytes;
      std::shared_ptr<sim::Latch> latch;
    };
    for (auto node : gpu_nodes) {
      const double render_s =
          self->options_.tile_pixels / self->options_.render_pixels_per_s *
          (1.0 + rng.uniform(0.0, self->options_.render_jitter));
      auto tile = [](TileJob job) -> sim::Task {
        co_await job.wall->sim_.sleep(job.render_s);
        co_await job.wall->net_.send(job.node, job.display,
                                     static_cast<util::Bytes>(job.bytes));
        job.latch->count_down(job.wall->sim_);
      };
      self->sim_.spawn(tile(TileJob{self, node, display, render_s, tile_bytes, latch}));
    }
    co_await frame_done->wait(self->sim_);
    self->latencies_.push_back(self->sim_.now() - input_time);

    // Pace to the frame rate.
    const double elapsed = self->sim_.now() - input_time;
    if (elapsed < frame_period) co_await self->sim_.sleep(frame_period - elapsed);
  }
  done->trigger(self->sim_);
}

RenderWallReport RenderWall::report() const {
  RenderWallReport r;
  r.frames = latencies_.size();
  if (latencies_.empty()) return r;
  std::vector<double> sorted = latencies_;
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  std::uint64_t on_time = 0;
  const double budget = 1.0 / options_.frame_rate_hz;
  for (double l : sorted) {
    total += l;
    on_time += l <= budget;
  }
  r.mean_latency = total / static_cast<double>(sorted.size());
  r.p50_latency = sorted[sorted.size() / 2];
  r.p99_latency = sorted[std::min(sorted.size() - 1, sorted.size() * 99 / 100)];
  r.max_latency = sorted.back();
  r.on_time_fraction = static_cast<double>(on_time) / static_cast<double>(sorted.size());
  return r;
}

}  // namespace chase::viz
