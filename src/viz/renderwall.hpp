#pragma once
/// \file renderwall.hpp
/// Distributed visualization (paper §VII related work): "Calit2 visualization
/// researchers ... scheduled and debugged a scalable OpenGL-based
/// visualization application across 11 remote GPU nodes", driving displays at
/// UC Merced from a motion-tracked wand in San Diego "with unnoticeable
/// latency". This module models that render wall: each frame, every GPU node
/// renders its tile (GPU time proportional to scene complexity) and streams
/// the compressed tile over the PRP to the display site; the frame is shown
/// when the last tile lands. Input events travel the reverse path.

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "sim/event.hpp"
#include "sim/simulation.hpp"
#include "util/histogram.hpp"

namespace chase::viz {

struct RenderWallOptions {
  int tiles = 11;                  // one per GPU node
  double tile_pixels = 1920.0 * 1080.0;
  double bytes_per_pixel = 0.6;    // after compression
  /// GPU render throughput (pixels/s) per node.
  double render_pixels_per_s = 4.0e9;
  /// Jitter factor applied per tile per frame (load imbalance), in [0, x].
  double render_jitter = 0.25;
  double frame_rate_hz = 30.0;
  std::uint64_t seed = 7;
};

struct RenderWallReport {
  std::uint64_t frames = 0;
  double mean_latency = 0.0;   // input -> last tile displayed (seconds)
  double p50_latency = 0.0;
  double p99_latency = 0.0;
  double max_latency = 0.0;
  /// Fraction of frames completed within the frame budget (1/fps).
  double on_time_fraction = 0.0;
};

/// Runs `frames` frames of the interactive loop and reports latency.
/// `gpu_nodes` are the render nodes; `display` is the remote display site;
/// `input` is where the tracked wand lives (the far site).
class RenderWall {
 public:
  RenderWall(sim::Simulation& sim, net::Network& net, RenderWallOptions options)
      : sim_(sim), net_(net), options_(options) {}

  /// Spawns the interactive loop; `done` fires when all frames are rendered.
  void run(const std::vector<net::NodeId>& gpu_nodes, net::NodeId display,
           net::NodeId input, std::uint64_t frames, sim::EventPtr done);

  RenderWallReport report() const;

 private:
  static sim::Task frame_loop(RenderWall* self, std::vector<net::NodeId> gpu_nodes,
                              net::NodeId display, net::NodeId input,
                              std::uint64_t frames, sim::EventPtr done);

  sim::Simulation& sim_;
  net::Network& net_;
  RenderWallOptions options_;
  std::vector<double> latencies_;
};

}  // namespace chase::viz
