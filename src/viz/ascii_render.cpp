#include "viz/ascii_render.hpp"

#include <algorithm>

namespace chase::viz {

namespace {
constexpr char kRamp[] = " .:-=+*#%@";
constexpr int kRampSize = sizeof(kRamp) - 1;
}  // namespace

std::string render_field_slice(const ml::Volume<float>& field, int t, int max_width) {
  if (t < 0 || t >= field.nz() || field.nx() == 0) return "(empty)\n";
  const int stride = std::max(1, field.nx() / max_width);
  float lo = field.at(0, 0, t), hi = lo;
  for (int y = 0; y < field.ny(); ++y) {
    for (int x = 0; x < field.nx(); ++x) {
      lo = std::min(lo, field.at(x, y, t));
      hi = std::max(hi, field.at(x, y, t));
    }
  }
  const float range = hi > lo ? hi - lo : 1.f;
  std::string out;
  for (int y = 0; y < field.ny(); y += stride) {
    for (int x = 0; x < field.nx(); x += stride) {
      const float v = (field.at(x, y, t) - lo) / range;
      const int idx = std::clamp(static_cast<int>(v * (kRampSize - 1) + 0.5f), 0,
                                 kRampSize - 1);
      out += kRamp[idx];
    }
    out += '\n';
  }
  return out;
}

std::string render_label_slice(const ml::Volume<std::int32_t>& labels, int t,
                               int max_width) {
  if (t < 0 || t >= labels.nz() || labels.nx() == 0) return "(empty)\n";
  const int stride = std::max(1, labels.nx() / max_width);
  std::string out;
  for (int y = 0; y < labels.ny(); y += stride) {
    for (int x = 0; x < labels.nx(); x += stride) {
      const std::int32_t id = labels.at(x, y, t);
      out += id == 0 ? '.' : static_cast<char>('A' + (id - 1) % 26);
    }
    out += '\n';
  }
  return out;
}

}  // namespace chase::viz
