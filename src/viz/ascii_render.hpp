#pragma once
/// \file ascii_render.hpp
/// Terminal rendering of IVT fields and segmentations — the stand-in for the
/// JupyterLab visualization notebook of workflow Step 4 ("load the most
/// recent results, plot out the segmented objects").

#include <cstdint>
#include <string>

#include "ml/volume.hpp"

namespace chase::viz {

/// Render one time slice of a scalar field as an intensity map
/// (characters " .:-=+*#%@" by value). `t` is the slice index.
std::string render_field_slice(const ml::Volume<float>& field, int t, int max_width = 78);

/// Render one time slice of a label volume; each object id gets a letter.
std::string render_label_slice(const ml::Volume<std::int32_t>& labels, int t,
                               int max_width = 78);

}  // namespace chase::viz
