#include "util/chart.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/units.hpp"

namespace chase::util {

std::string AsciiChart::render(const std::string& title,
                               const std::string& value_label) const {
  static const char kGlyphs[] = "*o+x#@%&=~";
  std::ostringstream out;
  if (!title.empty()) out << title << "\n";

  double tmin = std::numeric_limits<double>::max(), tmax = -tmin;
  double vmin = 0.0, vmax = -std::numeric_limits<double>::max();
  bool any = false;
  for (const auto& s : series_) {
    for (auto [t, v] : s.points) {
      tmin = std::min(tmin, t);
      tmax = std::max(tmax, t);
      vmax = std::max(vmax, v);
      vmin = std::min(vmin, v);
      any = true;
    }
  }
  if (!any) {
    out << "  (no data)\n";
    return out.str();
  }
  if (tmax <= tmin) tmax = tmin + 1.0;
  if (vmax <= vmin) vmax = vmin + 1.0;

  std::vector<std::string> grid(height_, std::string(width_, ' '));
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const char glyph = kGlyphs[si % (sizeof(kGlyphs) - 1)];
    for (auto [t, v] : series_[si].points) {
      int col = static_cast<int>(std::lround((t - tmin) / (tmax - tmin) * (width_ - 1)));
      int row = static_cast<int>(std::lround((v - vmin) / (vmax - vmin) * (height_ - 1)));
      col = std::clamp(col, 0, width_ - 1);
      row = std::clamp(row, 0, height_ - 1);
      grid[height_ - 1 - row][col] = glyph;
    }
  }

  const std::string top_label = format_double(vmax, vmax < 10 ? 2 : 0);
  const std::string bot_label = format_double(vmin, vmin < 10 && vmin != 0 ? 2 : 0);
  const std::size_t lw = std::max(top_label.size(), bot_label.size());
  for (int r = 0; r < height_; ++r) {
    std::string label(lw, ' ');
    if (r == 0) label = std::string(lw - top_label.size(), ' ') + top_label;
    if (r == height_ - 1) label = std::string(lw - bot_label.size(), ' ') + bot_label;
    out << label << " |" << grid[r] << "\n";
  }
  out << std::string(lw, ' ') << " +" << std::string(width_, '-') << "\n";
  out << std::string(lw, ' ') << "  " << format_duration(tmin)
      << std::string(std::max<int>(1, width_ - 16), ' ') << format_duration(tmax) << "\n";
  out << "  [" << value_label << "]  legend:";
  for (std::size_t si = 0; si < series_.size(); ++si) {
    out << "  " << kGlyphs[si % (sizeof(kGlyphs) - 1)] << "=" << series_[si].name;
  }
  out << "\n";
  return out.str();
}

}  // namespace chase::util
