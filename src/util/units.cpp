#include "util/units.hpp"

#include <cmath>
#include <cstdio>

namespace chase::util {

namespace {

std::string format_scaled(double v, const char* suffix) {
  char buf[64];
  if (v >= 100.0 || std::abs(v - std::round(v)) < 1e-9) {
    std::snprintf(buf, sizeof(buf), "%.0f%s", v, suffix);
  } else if (v >= 10.0) {
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, suffix);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f%s", v, suffix);
  }
  return buf;
}

}  // namespace

std::string format_bytes(double bytes) {
  if (bytes < 0) return "-" + format_bytes(-bytes);
  if (bytes >= kPB) return format_scaled(bytes / kPB, "PB");
  if (bytes >= kTB) return format_scaled(bytes / kTB, "TB");
  if (bytes >= kGB) return format_scaled(bytes / kGB, "GB");
  if (bytes >= kMB) return format_scaled(bytes / kMB, "MB");
  if (bytes >= kKB) return format_scaled(bytes / kKB, "KB");
  return format_scaled(bytes, "B");
}

std::string format_rate(double bytes_per_s) {
  return format_bytes(bytes_per_s) + "/s";
}

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 0) return "-" + format_duration(-seconds);
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0fms", seconds * 1e3);
    return buf;
  }
  if (seconds < kMinute) {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
    return buf;
  }
  if (seconds < kHour) {
    int m = static_cast<int>(seconds / kMinute);
    int s = static_cast<int>(seconds - m * kMinute);
    if (s == 0) {
      std::snprintf(buf, sizeof(buf), "%dm", m);
    } else {
      std::snprintf(buf, sizeof(buf), "%dm%02ds", m, s);
    }
    return buf;
  }
  int h = static_cast<int>(seconds / kHour);
  int m = static_cast<int>((seconds - h * kHour) / kMinute);
  if (m == 0) {
    std::snprintf(buf, sizeof(buf), "%dh", h);
  } else {
    std::snprintf(buf, sizeof(buf), "%dh%02dm", h, m);
  }
  return buf;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace chase::util
