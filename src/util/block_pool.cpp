#include "util/block_pool.hpp"

#include <new>

namespace chase::util {

BlockPool& BlockPool::instance() {
  static BlockPool pool;
  return pool;
}

int BlockPool::class_for(std::size_t n) noexcept {
  for (std::size_t c = 0; c < kClassSizes.size(); ++c) {
    if (n <= kClassSizes[c]) return static_cast<int>(c);
  }
  return -1;
}

void* BlockPool::allocate(std::size_t n) {
  const int c = class_for(n);
  if (c < 0) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.passthrough;
    ++stats_.outstanding;
    // Fall through outside the lock would be nicer, but passthrough is
    // setup-scale by contract; simplicity wins.
    return ::operator new(n);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& list = free_[static_cast<std::size_t>(c)];
    if (!list.empty()) {
      void* p = list.back();
      list.pop_back();
      ++stats_.hits;
      ++stats_.outstanding;
      return p;
    }
    ++stats_.misses;
    ++stats_.outstanding;
  }
  return ::operator new(kClassSizes[static_cast<std::size_t>(c)]);
}

void BlockPool::deallocate(void* p, std::size_t n) noexcept {
  if (p == nullptr) return;
  const int c = class_for(n);
  if (c >= 0) {
    std::lock_guard<std::mutex> lock(mu_);
    --stats_.outstanding;
    auto& list = free_[static_cast<std::size_t>(c)];
    if (list.size() < kFreeListCap) {
      list.push_back(p);
      return;
    }
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    --stats_.outstanding;
  }
  ::operator delete(p);
}

BlockPool::Stats BlockPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BlockPool::trim() noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& list : free_) {
    for (void* p : list) ::operator delete(p);
    list.clear();
    list.shrink_to_fit();
  }
}

}  // namespace chase::util
