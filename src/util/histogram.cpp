#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace chase::util {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(std::max<std::size_t>(1, buckets), 0) {}

void Histogram::add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  double rel = (v - lo_) / (hi_ - lo_);
  auto idx = static_cast<long>(std::floor(rel * static_cast<double>(counts_.size())));
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // The extremes are tracked exactly; only interior quantiles interpolate.
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const double target = q * static_cast<double>(count_);
  double cum = 0.0;
  const double bw = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      // Bucket-edge interpolation can step outside the observed range (the
      // edge buckets also absorb out-of-range samples); the true extremes
      // bound every quantile.
      return std::clamp(lo_ + (static_cast<double>(i) + frac) * bw, min_, max_);
    }
    cum = next;
  }
  return max_;
}

}  // namespace chase::util
