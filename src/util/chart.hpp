#pragma once
/// \file chart.hpp
/// ASCII time-series charts — the stand-in for the paper's Grafana panels
/// (Figures 3–6). Multiple series are overlaid with distinct glyphs.

#include <string>
#include <utility>
#include <vector>

namespace chase::util {

struct Series {
  std::string name;
  std::vector<std::pair<double, double>> points;  // (time seconds, value)
};

class AsciiChart {
 public:
  AsciiChart(int width = 78, int height = 16) : width_(width), height_(height) {}

  void add_series(Series s) { series_.push_back(std::move(s)); }

  /// Render all series on a shared time/value grid with axis labels and a
  /// legend. `value_label` names the Y axis (e.g. "MB/s").
  std::string render(const std::string& title, const std::string& value_label) const;

 private:
  int width_;
  int height_;
  std::vector<Series> series_;
};

}  // namespace chase::util
