#pragma once
/// \file csv.hpp
/// Minimal CSV writer for exporting figure data series alongside the ASCII
/// charts, so results can be re-plotted externally.

#include <fstream>
#include <string>
#include <vector>

namespace chase::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);
  void add_row(const std::vector<double>& values);

 private:
  std::ofstream out_;
  std::size_t columns_;
};

/// Quote a CSV field if needed.
std::string csv_escape(const std::string& s);

}  // namespace chase::util
