#include "util/csv.hpp"

#include <stdexcept>

#include "util/units.hpp"

namespace chase::util {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  add_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::add_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_double(v, 6));
  add_row(cells);
}

}  // namespace chase::util
