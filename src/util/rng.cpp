#include "util/rng.hpp"

#include <cmath>

namespace chase::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_mix(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return hash_mix(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : s_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

double Rng::normal() {
  // Box–Muller; discard the second variate for simple determinism.
  double u1 = uniform();
  double u2 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double mean) {
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -mean * std::log(u);
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace chase::util
