#pragma once
/// \file alloc_stats.hpp
/// Runtime witness for the static hot-alloc lint: process-wide allocation
/// counters fed by an *opt-in* global operator new/delete replacement.
///
/// The counters live in chase_util and always link; the operator
/// replacements live in the separate `chase_alloc_hook` object library and
/// only count when a binary chooses to link it (tests do; benches do NOT,
/// so throughput numbers never pay the counting overhead). hooked() reports
/// whether the replacement is present, so assertions can no-op instead of
/// vacuously passing as 0 == 0 when the hook is absent... it still would,
/// which is why callers must gate on hooked() explicitly.
///
/// The marquee consumer is Simulation::step's CHASE_AUDIT: at audit level
/// >= 2 with the hook linked, dispatching an event through the scheduler
/// machinery must perform zero allocations (see tests/alloc_stats_test.cpp
/// for the full steady-state-loop version of that claim).

#include <cstddef>
#include <cstdint>

namespace chase::util::alloc_stats {

/// True iff the counting operator new/delete replacement is linked into
/// this binary (set by chase_alloc_hook's initializer).
bool hooked() noexcept;

std::uint64_t news() noexcept;     // operator new calls
std::uint64_t deletes() noexcept;  // operator delete calls
std::uint64_t bytes() noexcept;    // cumulative bytes requested

/// Zero all counters (test setup; the hook keeps counting).
void reset() noexcept;

// --- hook-side interface (called by chase_alloc_hook only) ------------------
void count_new(std::size_t n) noexcept;
void count_delete() noexcept;
void set_hooked() noexcept;

}  // namespace chase::util::alloc_stats
