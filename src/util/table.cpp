#include "util/table.hpp"

#include <algorithm>
#include <sstream>

namespace chase::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto hline = [&] {
    std::string s = "+";
    for (auto w : width) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      s += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::ostringstream out;
  if (!title.empty()) out << title << "\n";
  out << hline() << line(header_) << hline();
  for (const auto& row : rows_) out << line(row);
  out << hline();
  return out.str();
}

}  // namespace chase::util
