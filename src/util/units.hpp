#pragma once
/// \file units.hpp
/// Units and human-readable formatting used across the CHASE-CI simulation:
/// byte counts, bandwidths (bytes/second) and simulated durations (seconds).
/// The paper reports decimal units (GB = 1e9 bytes, 10GbE = 1.25e9 B/s), so
/// all helpers here are decimal.

#include <cstdint>
#include <string>

namespace chase::util {

using Bytes = std::uint64_t;

inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;
inline constexpr double kTB = 1e12;
inline constexpr double kPB = 1e15;

/// Convenience literals for byte quantities, e.g. `gb(246)` == 246e9 bytes.
constexpr Bytes kb(double v) { return static_cast<Bytes>(v * kKB); }
constexpr Bytes mb(double v) { return static_cast<Bytes>(v * kMB); }
constexpr Bytes gb(double v) { return static_cast<Bytes>(v * kGB); }
constexpr Bytes tb(double v) { return static_cast<Bytes>(v * kTB); }

/// Link speeds. Ethernet rates are bits/second on the wire; all simulation
/// bandwidth values are bytes/second, so 10GbE == 1.25e9 B/s.
constexpr double gbit_per_s(double gbits) { return gbits * 1e9 / 8.0; }

inline constexpr double kMinute = 60.0;
inline constexpr double kHour = 3600.0;
inline constexpr double kDay = 86400.0;

/// "246.0GB", "381MB", "2.3KB", "17B".
std::string format_bytes(double bytes);
/// "593MB/s", "2.64GB/s".
std::string format_rate(double bytes_per_s);
/// "37m", "18h53m", "4.2s".
std::string format_duration(double seconds);
/// Fixed-precision helper, e.g. format_double(3.14159, 2) == "3.14".
std::string format_double(double v, int precision);

}  // namespace chase::util
