#pragma once
/// \file table.hpp
/// ASCII table rendering for benchmark reports (Table I style output).

#include <string>
#include <vector>

namespace chase::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Render with box-drawing separators; title is optional.
  std::string render(const std::string& title = "") const;
  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace chase::util
