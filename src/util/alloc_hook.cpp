/// \file alloc_hook.cpp
/// The opt-in counting operator new/delete replacement behind
/// alloc_stats.hpp. Built as the `chase_alloc_hook` OBJECT library: an
/// object file on the final link line always wins symbol resolution, so
/// linking the library is the whole opt-in — no macros, no init call.
/// Binaries that skip it keep the toolchain's allocator untouched.
///
/// Only the four core forms are replaced; the sized and aligned variants
/// forward here per the standard's default behavior on this toolchain.
/// Sanitizer note: ASan intercepts malloc/free *below* operator new, so
/// counting up here composes with the asan-ubsan preset.

#include <cstdlib>
#include <new>

#include "util/alloc_stats.hpp"

namespace {
/// Flips hooked() at static-init time so runtime code can tell the
/// replacement is present before any test logic runs.
const bool g_registered = [] {
  chase::util::alloc_stats::set_hooked();
  return true;
}();
}  // namespace

void* operator new(std::size_t n) {
  chase::util::alloc_stats::count_new(n);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  chase::util::alloc_stats::count_new(n);
  return std::malloc(n == 0 ? 1 : n);
}

void* operator new[](std::size_t n) {
  chase::util::alloc_stats::count_new(n);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  chase::util::alloc_stats::count_new(n);
  return std::malloc(n == 0 ? 1 : n);
}

void operator delete(void* p) noexcept {
  chase::util::alloc_stats::count_delete();
  std::free(p);
}

void operator delete(void* p, std::size_t) noexcept {
  chase::util::alloc_stats::count_delete();
  std::free(p);
}

void operator delete(void* p, const std::nothrow_t&) noexcept {
  chase::util::alloc_stats::count_delete();
  std::free(p);
}

void operator delete[](void* p) noexcept {
  chase::util::alloc_stats::count_delete();
  std::free(p);
}

void operator delete[](void* p, std::size_t) noexcept {
  chase::util::alloc_stats::count_delete();
  std::free(p);
}

void operator delete[](void* p, const std::nothrow_t&) noexcept {
  chase::util::alloc_stats::count_delete();
  std::free(p);
}
