#include "util/check.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace chase::util {

namespace {

int initial_audit_level() {
#ifndef CHASE_AUDIT_LEVEL_DEFAULT
#define CHASE_AUDIT_LEVEL_DEFAULT 1
#endif
  if (const char* env = std::getenv("CHASE_AUDIT_LEVEL"); env != nullptr && *env != '\0') {
    return std::atoi(env);
  }
  return CHASE_AUDIT_LEVEL_DEFAULT;
}

int g_audit_level = initial_audit_level();
CheckFailureHandler g_handler;  // empty = default abort handler
std::atomic<std::uint64_t> g_failures{0};

void default_handler(const CheckContext& ctx) {
  std::fprintf(stderr, "%s(%s) failed at %s:%d%s%s\n", ctx.kind, ctx.expr, ctx.file,
               ctx.line, ctx.message.empty() ? "" : ": ", ctx.message.c_str());
  std::abort();
}

}  // namespace

int audit_level() { return g_audit_level; }

int set_audit_level(int level) { return std::exchange(g_audit_level, level); }

CheckFailureHandler set_check_failure_handler(CheckFailureHandler handler) {
  return std::exchange(g_handler, std::move(handler));
}

std::uint64_t check_failure_count() { return g_failures.load(); }

void check_failed(const char* kind, const char* expr, const char* file, int line,
                  std::string message) {
  g_failures.fetch_add(1);
  const CheckContext ctx{kind, expr, file, line, std::move(message)};
  if (g_handler) {
    g_handler(ctx);
  } else {
    default_handler(ctx);
  }
}

}  // namespace chase::util
