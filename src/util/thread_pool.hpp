#pragma once
/// \file thread_pool.hpp
/// A small fixed-size thread pool with a blocking `parallel_for`, used by the
/// real (non-simulated) ML kernels in chase::ml — 3-D convolutions, connected
/// components, synthetic data generation. The discrete-event simulation itself
/// is single-threaded and deterministic; this pool only parallelizes numeric
/// work whose result does not depend on scheduling order.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace chase::util {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns immediately.
  void submit(std::function<void()> fn);

  /// Block until all submitted tasks have finished.
  void wait_idle();

  /// Run fn(i) for i in [begin, end), splitting the range into chunks across
  /// the pool, and block until done. Calls fn on the calling thread too.
  /// If fn throws, remaining chunks are abandoned and the first exception is
  /// rethrown on the calling thread after all participants drain.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace chase::util
