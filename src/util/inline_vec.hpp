#pragma once
/// \file inline_vec.hpp
/// util::InlineVec — small-buffer sequence for hot-path bookkeeping
/// (event/semaphore waiter lists, and anything else that is almost always
/// tiny but must not allocate per use). The first N elements live inline in
/// the owner; growth beyond N goes to the BlockPool, so even the spill path
/// recycles instead of reaching the global heap.
///
/// Restricted to trivially copyable T (coroutine handles, ids, pointers):
/// that keeps growth a memcpy and lets pop_front be an index bump with
/// occasional compaction. FIFO consumers (Semaphore) pop from the front;
/// broadcast consumers (Event) iterate and clear.

#include <cstddef>
#include <cstring>
#include <type_traits>

#include "util/block_pool.hpp"
#include "util/check.hpp"

namespace chase::util {

template <typename T, std::size_t N>
class InlineVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "InlineVec is for handle-like trivially copyable types");
  static_assert(N > 0, "InlineVec needs at least one inline slot");

 public:
  InlineVec() noexcept = default;
  ~InlineVec() { release_storage(); }

  InlineVec(const InlineVec&) = delete;
  InlineVec& operator=(const InlineVec&) = delete;

  std::size_t size() const noexcept { return size_ - head_; }
  bool empty() const noexcept { return head_ == size_; }

  void push_back(T v) {
    if (size_ == cap_) grow();
    data_[size_++] = v;
  }

  const T& front() const {
    CHASE_ASSERT(!empty(), "InlineVec::front on empty container");
    return data_[head_];
  }

  /// FIFO pop. Amortized O(1): consumed slots are reclaimed when the
  /// container drains or the dead prefix dominates the live range.
  void pop_front() {
    CHASE_ASSERT(!empty(), "InlineVec::pop_front on empty container");
    ++head_;
    if (head_ == size_) {
      head_ = size_ = 0;
    } else if (head_ >= kCompactThreshold && head_ * 2 >= size_) {
      std::memmove(data_, data_ + head_, (size_ - head_) * sizeof(T));
      size_ -= head_;
      head_ = 0;
    }
  }

  /// Drop all elements; spilled storage is kept for reuse.
  void clear() noexcept { head_ = size_ = 0; }

  const T* begin() const noexcept { return data_ + head_; }
  const T* end() const noexcept { return data_ + size_; }

  /// True while the elements still fit in the owner's inline slots (tests).
  bool is_inline() const noexcept { return data_ == inline_; }

 private:
  static constexpr std::size_t kCompactThreshold = 32;

  void grow() {
    const std::size_t live = size_ - head_;
    const std::size_t new_cap = cap_ * 2;
    T* fresh = static_cast<T*>(BlockPool::instance().allocate(new_cap * sizeof(T)));
    std::memcpy(fresh, data_ + head_, live * sizeof(T));
    release_storage();
    data_ = fresh;
    cap_ = new_cap;
    head_ = 0;
    size_ = live;
  }

  void release_storage() noexcept {
    if (data_ != inline_) {
      BlockPool::instance().deallocate(data_, cap_ * sizeof(T));
      data_ = inline_;
      cap_ = N;
    }
  }

  T inline_[N];
  T* data_ = inline_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace chase::util
