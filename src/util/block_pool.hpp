#pragma once
/// \file block_pool.hpp
/// Size-classed free-list allocator backing the simulator's hot-path
/// objects (SmallFn overflow storage, pooled callbacks). The steady-state
/// contract is the point: after warmup every allocate() is a free-list hit
/// and the global operator new is never reached, which is what lets the
/// event loop pass the zero-alloc-per-event audit (see alloc_stats.hpp and
/// Simulation::step).
///
/// Blocks are served in power-of-two classes from 64 to 512 bytes; larger
/// requests fall through to operator new (they are setup-scale by
/// definition — the lint hot-alloc check keeps them off the hot path).
/// Free lists are capped so a burst cannot pin unbounded memory; beyond the
/// cap, blocks return to the system.
///
/// Thread-safe via a mutex: the simulation itself is single-threaded, but
/// util::ThreadPool users may touch pooled objects, and an uncontended
/// lock is a few nanoseconds — noise next to the allocation it replaces.

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace chase::util {

class BlockPool {
 public:
  /// The process-wide pool. Function-local static: safe across
  /// static-initialization order, alive for the whole process.
  static BlockPool& instance();

  /// A block of at least `n` bytes, max_align-aligned. Never returns null
  /// (operator new throws on exhaustion, matching global semantics).
  void* allocate(std::size_t n);

  /// Return a block obtained from allocate() with the same `n`.
  void deallocate(void* p, std::size_t n) noexcept;

  struct Stats {
    std::uint64_t hits = 0;        // served from a free list
    std::uint64_t misses = 0;      // fell through to operator new
    std::uint64_t passthrough = 0; // larger than the biggest class
    std::uint64_t outstanding = 0; // allocated minus deallocated
  };
  Stats stats() const;

  /// Drop every cached block back to the system (tests; leak hygiene).
  void trim() noexcept;

  /// Max cached blocks per class before deallocate() frees to the system.
  static constexpr std::size_t kFreeListCap = 4096;

  BlockPool(const BlockPool&) = delete;
  BlockPool& operator=(const BlockPool&) = delete;

 private:
  BlockPool() = default;
  /// Frees the cached blocks at static teardown — without this the free-
  /// list vectors die holding them and LeakSanitizer reports every cached
  /// block as a direct leak.
  ~BlockPool() { trim(); }

  static constexpr std::array<std::size_t, 4> kClassSizes = {64, 128, 256, 512};
  static int class_for(std::size_t n) noexcept;  // -1 => passthrough

  mutable std::mutex mu_;
  std::array<std::vector<void*>, kClassSizes.size()> free_;
  Stats stats_;
};

/// Minimal std-compatible allocator over the global BlockPool, for
/// containers and shared_ptr control blocks that churn on the hot path
/// (e.g. `std::allocate_shared<Transfer>(PoolAllocator<Transfer>{})`, the
/// per-flow map nodes in net::Network). Stateless: all instances are
/// interchangeable, so container moves/swaps are unconstrained.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) {
    return static_cast<T*>(BlockPool::instance().allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    BlockPool::instance().deallocate(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace chase::util
