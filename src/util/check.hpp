#pragma once
/// \file check.hpp
/// The invariant-audit substrate: machine-checked correctness assertions with
/// cheap/expensive tiers, used by every stateful subsystem's
/// `check_invariants()` and by the simulation kernel's audit checkpoints.
///
/// Three macros, by cost and intent:
///
///   * CHASE_ASSERT(cond, ...)    — preconditions / local sanity. Always
///                                  compiled in, always checked.
///   * CHASE_INVARIANT(cond, ...) — cheap cross-field invariants (O(1) or
///                                  O(small)). Checked when the audit level
///                                  is >= 1 (the default).
///   * CHASE_AUDIT(cond, ...)     — expensive full-state audits (re-derive
///                                  accounting from first principles).
///                                  Checked when the audit level is >= 2.
///
/// The level is runtime-selected: the `CHASE_AUDIT_LEVEL` environment
/// variable wins, then the compile definition `CHASE_AUDIT_LEVEL_DEFAULT`
/// (set by the sanitizer CMake presets), then 1. Level 0 disables everything
/// except CHASE_ASSERT — use it to take audits out of hot-path benchmarks.
///
/// A failed check formats "kind(expr) at file:line: message" and calls the
/// process-wide failure handler, which aborts by default. Tests may install
/// a recording handler (see set_check_failure_handler) to assert that a
/// corrupted state is detected without dying.

#include <cstdint>
#include <functional>
#include <string>

namespace chase::util {

struct CheckContext {
  const char* kind;  // "CHASE_ASSERT" | "CHASE_INVARIANT" | "CHASE_AUDIT"
  const char* expr;
  const char* file;
  int line;
  std::string message;
};

/// Current audit level (0 = asserts only, 1 = +invariants, 2 = +audits).
int audit_level();
/// Override the audit level for this process (tests, tools). Returns the
/// previous level.
int set_audit_level(int level);

using CheckFailureHandler = std::function<void(const CheckContext&)>;
/// Replace the failure handler (empty restores the default abort handler).
/// Returns the previous handler. The default prints the context to stderr
/// and calls std::abort().
CheckFailureHandler set_check_failure_handler(CheckFailureHandler handler);

/// Count of check failures seen by the *default* handler never grows (it
/// aborts); custom handlers can use this process-wide counter to assert
/// "a violation was detected" without inspecting messages.
std::uint64_t check_failure_count();

/// Dispatch a failed check to the installed handler. Not [[noreturn]]:
/// custom handlers may continue (the violated state is read-only audited).
void check_failed(const char* kind, const char* expr, const char* file, int line,
                  std::string message);

namespace detail {
inline std::string format_check_message() { return {}; }
inline std::string format_check_message(std::string message) { return message; }
inline std::string format_check_message(const char* message) { return message; }
}  // namespace detail

#define CHASE_CHECK_IMPL_(kind, enabled, cond, ...)                               \
  do {                                                                            \
    if ((enabled) && !(cond)) {                                                   \
      ::chase::util::check_failed(                                                \
          kind, #cond, __FILE__, __LINE__,                                        \
          ::chase::util::detail::format_check_message(__VA_ARGS__));              \
    }                                                                             \
  } while (false)

/// Always-on precondition check.
#define CHASE_ASSERT(cond, ...) CHASE_CHECK_IMPL_("CHASE_ASSERT", true, cond, __VA_ARGS__)

/// Cheap invariant, checked at audit level >= 1.
#define CHASE_INVARIANT(cond, ...) \
  CHASE_CHECK_IMPL_("CHASE_INVARIANT", ::chase::util::audit_level() >= 1, cond, __VA_ARGS__)

/// Expensive audit, checked at audit level >= 2.
#define CHASE_AUDIT(cond, ...) \
  CHASE_CHECK_IMPL_("CHASE_AUDIT", ::chase::util::audit_level() >= 2, cond, __VA_ARGS__)

}  // namespace chase::util
