#include "util/alloc_stats.hpp"

#include <atomic>

namespace chase::util::alloc_stats {

namespace {
// Relaxed is enough: counters are read for deltas on one thread (the sim)
// or after joins; no ordering is implied between them.
std::atomic<std::uint64_t> g_news{0};
std::atomic<std::uint64_t> g_deletes{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<bool> g_hooked{false};
}  // namespace

bool hooked() noexcept { return g_hooked.load(std::memory_order_relaxed); }
std::uint64_t news() noexcept { return g_news.load(std::memory_order_relaxed); }
std::uint64_t deletes() noexcept {
  return g_deletes.load(std::memory_order_relaxed);
}
std::uint64_t bytes() noexcept { return g_bytes.load(std::memory_order_relaxed); }

void reset() noexcept {
  g_news.store(0, std::memory_order_relaxed);
  g_deletes.store(0, std::memory_order_relaxed);
  g_bytes.store(0, std::memory_order_relaxed);
}

void count_new(std::size_t n) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(n, std::memory_order_relaxed);
}

void count_delete() noexcept {
  g_deletes.fetch_add(1, std::memory_order_relaxed);
}

void set_hooked() noexcept { g_hooked.store(true, std::memory_order_relaxed); }

}  // namespace chase::util::alloc_stats
