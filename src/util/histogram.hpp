#pragma once
/// \file histogram.hpp
/// Streaming histogram with quantile estimation, used for latency and
/// object-statistics reporting.

#include <cstddef>
#include <vector>

namespace chase::util {

class Histogram {
 public:
  /// Fixed-width buckets over [lo, hi); values outside are clamped into the
  /// first/last bucket. `buckets` must be >= 1.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double v);
  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  /// Linear-interpolated quantile estimate, q in [0, 1].
  double quantile(double q) const;
  const std::vector<std::size_t>& buckets() const { return counts_; }

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace chase::util
