#pragma once
/// \file rng.hpp
/// Deterministic pseudo-random number generation for the simulation and the
/// synthetic data generators. A fixed, documented generator (xoshiro256**
/// seeded via splitmix64) keeps every experiment bit-reproducible across
/// platforms, unlike std::default_random_engine / std::normal_distribution
/// whose outputs are implementation-defined.

#include <cstdint>

namespace chase::util {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless 64-bit mix (one splitmix64 round). Good avalanche; used for
/// CRUSH-style placement draws where the "random" value must be a pure
/// function of its inputs.
std::uint64_t hash_mix(std::uint64_t x);

/// Combine two values into one hash (for (pg, osd) style draws).
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

/// xoshiro256** — fast, high-quality, reproducible PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next_u64();
  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_u64(std::uint64_t n);
  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal();
  double normal(double mean, double stddev);
  /// Exponential with given mean. Requires mean > 0.
  double exponential(double mean);
  /// Bernoulli trial.
  bool chance(double p);

  /// Derive an independent child generator (for per-entity streams).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace chase::util
