#pragma once
/// \file small_fn.hpp
/// util::SmallFn — the event loop's callable type. A move-only
/// std::function replacement with a 48-byte inline buffer (libstdc++'s
/// std::function inlines only 16, so every network-transfer lambda in this
/// tree heap-allocated per scheduled event) and BlockPool-backed overflow,
/// so callables that do spill land on a recycled free list instead of the
/// global heap. This is what makes Simulation::schedule allocation-free in
/// the steady state (see the zero-alloc audit in Simulation::step and
/// tests/alloc_stats_test.cpp).
///
/// Deliberate non-goals, so the dispatch stays two loads and an indirect
/// call: no copyability, no target() introspection, no allocator plumbing.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "util/block_pool.hpp"
#include "util/check.hpp"

namespace chase::util {

template <typename Sig>
class SmallFn;  // primary left undefined: use SmallFn<R(Args...)>

template <typename R, typename... Args>
class SmallFn<R(Args...)> {
 public:
  /// Inline capacity: three captured pointers plus a double-sized tail.
  /// Entry = (time, seq, SmallFn) stays one cache line pair in the heap.
  static constexpr std::size_t kInline = 48;
  static_assert(kInline >= sizeof(void*),
                "spilled callables store their pool pointer in the buffer");

  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = inline_ops<D>();
    } else {
      static_assert(sizeof(D*) <= kInline && alignof(D*) <= alignof(std::max_align_t),
                    "the spill pointer itself must fit the inline buffer");
      void* mem = BlockPool::instance().allocate(sizeof(D));
      // The pointer is an *object* living in buf_, created by placement-new
      // (not by writing through a reinterpret_cast, which never starts an
      // object's lifetime); reads go through std::launder in pooled_ops.
      ::new (static_cast<void*>(buf_)) (D*)(::new (mem) D(std::forward<F>(f)));
      ops_ = pooled_ops<D>();
    }
  }

  SmallFn(SmallFn&& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.ops_ != nullptr) {
        ops_ = other.ops_;
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) const {
    CHASE_ASSERT(ops_ != nullptr, "SmallFn invoked while empty");
    return ops_->invoke(const_cast<unsigned char*>(buf_),
                        std::forward<Args>(args)...);
  }

  /// True when the wrapped callable lives in the inline buffer (tests).
  bool is_inline() const noexcept { return ops_ != nullptr && !ops_->pooled; }

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInline && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  struct Ops {
    R (*invoke)(void* self, Args&&... args);
    void (*relocate)(void* dst, void* src) noexcept;  // move + destroy source
    void (*destroy)(void* self) noexcept;
    bool pooled;
  };

  /// The D (inline) or D* (pooled) living in the buffer was created there
  /// by placement-new; `self` is a pointer to the *storage*, so every read
  /// must go through std::launder to reach the object within it.
  template <typename D>
  static D* stored(void* self) noexcept {
    return std::launder(reinterpret_cast<D*>(self));
  }

  template <typename D>
  static const Ops* inline_ops() noexcept {
    static constexpr Ops ops = {
        [](void* self, Args&&... args) -> R {
          return (*stored<D>(self))(std::forward<Args>(args)...);
        },
        [](void* dst, void* src) noexcept {
          ::new (dst) D(std::move(*stored<D>(src)));
          stored<D>(src)->~D();
        },
        [](void* self) noexcept { stored<D>(self)->~D(); },
        /*pooled=*/false};
    return &ops;
  }

  template <typename D>
  static const Ops* pooled_ops() noexcept {
    static constexpr Ops ops = {
        [](void* self, Args&&... args) -> R {
          return (**stored<D*>(self))(std::forward<Args>(args)...);
        },
        [](void* dst, void* src) noexcept {
          ::new (dst) (D*)(*stored<D*>(src));
          // Trivially-destructible pointer: no pseudo-destructor call needed
          // before the source buffer is reused.
        },
        [](void* self) noexcept {
          D* p = *stored<D*>(self);
          p->~D();
          BlockPool::instance().deallocate(p, sizeof(D));
        },
        /*pooled=*/true};
    return &ops;
  }

  alignas(std::max_align_t) unsigned char buf_[kInline];
  const Ops* ops_ = nullptr;
};

}  // namespace chase::util
