#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace chase::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> fn) {
  {
    std::lock_guard lk(mu_);
    queue_.push(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t nthreads = workers_.size() + 1;  // workers + caller
  const std::size_t chunk = std::max<std::size_t>(1, (n + nthreads - 1) / nthreads);

  std::atomic<std::size_t> next{begin};
  std::atomic<std::size_t> pending{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::exception_ptr error;  // first exception wins; guarded by done_mu

  auto run_chunks = [&] {
    try {
      for (;;) {
        const std::size_t lo = next.fetch_add(chunk);
        if (lo >= end) break;
        const std::size_t hi = std::min(end, lo + chunk);
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      }
    } catch (...) {
      {
        std::lock_guard lk(done_mu);
        if (!error) error = std::current_exception();
      }
      // Starve remaining chunks so every participant drains quickly.
      next.store(end);
    }
  };

  const std::size_t helpers = std::min<std::size_t>(workers_.size(), (n + chunk - 1) / chunk);
  pending.store(helpers);
  for (std::size_t t = 0; t < helpers; ++t) {
    submit([&] {
      run_chunks();
      if (pending.fetch_sub(1) == 1) {
        std::lock_guard lk(done_mu);
        done_cv.notify_all();
      }
    });
  }
  run_chunks();
  std::unique_lock lk(done_mu);
  done_cv.wait(lk, [&] { return pending.load() == 0; });
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard lk(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace chase::util
