#pragma once
/// \file redis.hpp
/// The Redis work-queue substitute (paper §III-A): an in-memory data-
/// structure store with lists (the job queue), sets, hashes and counters.
/// "The Redis queue holds a list of files that contain urls to download...
/// each pod pops a message off the queue"; workers keep popping until the
/// queue drains.
///
/// The store itself is deterministic, synchronous state; RedisClient wraps
/// every command in request/response network round-trips against the node
/// hosting the server, including FIFO blocking pops (BLPOP) with handoff.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "sim/event.hpp"
#include "sim/simulation.hpp"

namespace chase::redis {

/// Server-side state. Commands here are instantaneous (no I/O); use
/// RedisClient for access from workload programs.
class RedisServer {
 public:
  explicit RedisServer(sim::Simulation& sim) : sim_(sim) {
    audit_hook_ = sim_.add_audit_hook([this] { check_invariants(); });
  }
  ~RedisServer() { sim_.remove_audit_hook(audit_hook_); }
  RedisServer(const RedisServer&) = delete;
  RedisServer& operator=(const RedisServer&) = delete;

  /// Where the server currently runs; -1 means not hosted (clients fail).
  void host_on(net::NodeId node) { node_ = node; }
  net::NodeId node() const { return node_; }

  // lists
  void lpush(const std::string& key, std::string value);
  void rpush(const std::string& key, std::string value);
  std::optional<std::string> lpop(const std::string& key);
  std::optional<std::string> rpop(const std::string& key);
  std::size_t llen(const std::string& key) const;

  // leases (at-least-once work-queue delivery)
  /// Pop with a redelivery lease: the element is handed out but kept in a
  /// pending table for `ttl` simulated seconds. If the consumer does not
  /// ack() within the ttl (its pod died mid-work), the element is pushed
  /// back to the FRONT of the list and counts as a redelivery. *lease_id
  /// receives the lease handle on success.
  std::optional<std::string> lpop_lease(const std::string& key, double ttl,
                                        std::uint64_t* lease_id);
  /// Acknowledge a leased element (work durably finished); idempotent.
  /// Returns false if the lease already expired or was acked.
  bool ack(std::uint64_t lease_id);
  /// Expire a lease immediately: the element returns to the front of its
  /// list now instead of at the ttl (used when the consumer knows the
  /// response leg failed). Returns false if already acked/expired.
  bool release_lease(std::uint64_t lease_id);
  std::size_t pending_leases(const std::string& key) const;
  /// Lease expiries that re-queued an element (consumer died mid-lease).
  std::uint64_t redeliveries() const { return redeliveries_; }
  /// Elements pushed back by clients after a failed response leg.
  std::uint64_t requeues() const { return requeues_; }
  /// Client-side response-leg failure path: put the element back at the
  /// front of the list (it was popped but never reached the consumer).
  void requeue(const std::string& key, std::string value);

  // sets
  bool sadd(const std::string& key, const std::string& member);
  bool srem(const std::string& key, const std::string& member);
  bool sismember(const std::string& key, const std::string& member) const;
  std::size_t scard(const std::string& key) const;
  std::vector<std::string> smembers(const std::string& key) const;

  // hashes
  void hset(const std::string& key, const std::string& field, std::string value);
  std::optional<std::string> hget(const std::string& key, const std::string& field) const;
  std::size_t hlen(const std::string& key) const;

  // strings / counters
  void set(const std::string& key, std::string value);
  std::optional<std::string> get(const std::string& key) const;
  bool del(const std::string& key);
  std::int64_t incrby(const std::string& key, std::int64_t delta);

  // expiry
  /// Expire the key `seconds` of simulated time from now (any type).
  /// Re-arming replaces the previous deadline; writes do not clear it.
  void expire(const std::string& key, double seconds);
  /// Remaining lifetime, or nullopt if no expiry is set.
  std::optional<double> ttl(const std::string& key) const;
  /// Remove the pending expiry; returns true if one existed.
  bool persist(const std::string& key);

  // pub/sub
  struct Subscription {
    std::deque<std::string> messages;
    sim::EventPtr ready = sim::make_event();  // re-armed after each drain
  };
  using SubscriptionPtr = std::shared_ptr<Subscription>;
  SubscriptionPtr subscribe(const std::string& channel);
  void unsubscribe(const std::string& channel, const SubscriptionPtr& sub);
  /// Deliver to all current subscribers; returns the receiver count.
  std::size_t publish(const std::string& channel, const std::string& message);
  std::size_t subscriber_count(const std::string& channel) const;

  std::size_t total_keys() const;

  /// Invariant audit (see util/check.hpp): queue length vs. blocked-client
  /// accounting (a value never sits in a list while a BLPOP waiter is
  /// parked), expiry deadlines, and waiter/subscription well-formedness.
  /// Called automatically at simulation checkpoints in audit builds.
  void check_invariants() const;

 private:
  friend class RedisClient;
  struct Waiter {
    sim::EventPtr ready;
    std::string* slot;
    bool* ok;
    /// Liveness flag shared with the blocked coroutine's frame: flipped to
    /// false when that frame is destroyed (pod evicted / node lost), so a
    /// later push never writes through the dangling slot/ok pointers.
    std::shared_ptr<bool> live;
    /// > 0: delivery grants a redelivery lease of this many seconds.
    double lease_ttl = 0.0;
    std::uint64_t* lease_slot = nullptr;
  };
  struct Lease {
    std::string key;
    std::string value;
    double deadline;
  };
  /// Deliver to a blocked BLPOP waiter if any; returns true if handed off.
  /// Waiters whose coroutine frame has been destroyed are discarded.
  bool handoff(const std::string& key, const std::string& value);
  std::uint64_t grant_lease(const std::string& key, const std::string& value, double ttl);
  void expire_lease(std::uint64_t id);

  sim::Simulation& sim_;
  net::NodeId node_ = -1;
  std::map<std::string, std::deque<std::string>> lists_;
  std::map<std::string, std::set<std::string>> sets_;
  std::map<std::string, std::map<std::string, std::string>> hashes_;
  std::map<std::string, std::string> strings_;
  std::map<std::string, std::deque<Waiter>> blocked_;
  struct Expiry {
    double deadline;
    std::uint64_t generation;
  };
  std::map<std::string, Expiry> expiries_;
  std::uint64_t expiry_generation_ = 0;
  std::map<std::string, std::vector<SubscriptionPtr>> channels_;
  std::map<std::uint64_t, Lease> leases_;
  std::uint64_t next_lease_id_ = 1;
  std::uint64_t redeliveries_ = 0;
  std::uint64_t requeues_ = 0;
  std::uint64_t audit_hook_ = 0;
};

/// Client used from pod programs; every call is a network round-trip.
class RedisClient {
 public:
  RedisClient(sim::Simulation& sim, net::Network& net, RedisServer& server,
              net::NodeId client_node)
      : sim_(sim), net_(net), server_(server), client_(client_node) {}

  /// All commands set *ok=false (if provided) when the server is
  /// unreachable; value out-params are only written on success.
  /// Commands are coroutines: string parameters are taken by value so the
  /// frame owns them across suspension points (see blpop_impl below).

  sim::Task rpush(std::string key, std::string value, bool* ok = nullptr);
  sim::Task lpush(std::string key, std::string value, bool* ok = nullptr);
  sim::Task lpop(std::string key, std::optional<std::string>* out,
                 bool* ok = nullptr);
  /// Blocking left pop: waits until an element is available (FIFO among
  /// waiters). Sets *got=false only on network failure; a popped element
  /// that cannot reach the client is pushed back, never dropped.
  sim::Task blpop(std::string key, std::string* out, bool* got);
  /// Blocking left pop with an at-least-once redelivery lease: on success
  /// *lease_id names a pending lease the consumer must ack() once its work
  /// is durable, or the element is re-queued after `lease_ttl` seconds.
  sim::Task blpop_lease(std::string key, double lease_ttl, std::string* out,
                        std::uint64_t* lease_id, bool* got);
  /// Acknowledge a lease (see blpop_lease). *acked reports whether the
  /// lease was still pending server-side; *ok the round-trip outcome.
  sim::Task ack(std::uint64_t lease_id, bool* acked = nullptr, bool* ok = nullptr);
  sim::Task llen(std::string key, std::size_t* out, bool* ok = nullptr);
  sim::Task sadd(std::string key, std::string member, bool* added = nullptr,
                 bool* ok = nullptr);
  sim::Task scard(std::string key, std::size_t* out, bool* ok = nullptr);
  sim::Task srem(std::string key, std::string member,
                 bool* removed = nullptr, bool* ok = nullptr);
  sim::Task incrby(std::string key, std::int64_t delta, std::int64_t* out = nullptr,
                   bool* ok = nullptr);
  sim::Task get(std::string key, std::optional<std::string>* out,
                bool* ok = nullptr);
  sim::Task set(std::string key, std::string value, bool* ok = nullptr);
  sim::Task publish(std::string channel, std::string message,
                    std::size_t* receivers = nullptr, bool* ok = nullptr);
  /// Await the next message on a subscription (round-trip paid once per
  /// delivered message).
  sim::Task next_message(RedisServer::SubscriptionPtr sub, std::string* out, bool* ok);

 private:
  /// One request/response round-trip; returns success via *ok.
  sim::Task round_trip(bool* ok);
  /// Shared body of blpop / blpop_lease (lease_ttl <= 0 = plain pop). Takes
  /// `key` by value: the frame is lazy and may outlive the caller's full
  /// expression, so a reference parameter would dangle (coroutines copy the
  /// reference into the frame, not the referent).
  sim::Task blpop_impl(std::string key, double lease_ttl, std::string* out,
                       std::uint64_t* lease_id, bool* got);

  sim::Simulation& sim_;
  net::Network& net_;
  RedisServer& server_;
  net::NodeId client_;
};

}  // namespace chase::redis
