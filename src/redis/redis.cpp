#include "redis/redis.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace chase::redis {

namespace {
constexpr chase::util::Bytes kRequestBytes = 128;
constexpr double kServiceTime = 50e-6;

/// Lives in a parked BLPOP coroutine's frame; flips the waiter's shared
/// liveness flag when that frame is destroyed, unregistering it from the
/// server's handoff path (see RedisServer::Waiter::live).
struct LiveGuard {
  std::shared_ptr<bool> flag;
  LiveGuard(const LiveGuard&) = delete;
  LiveGuard& operator=(const LiveGuard&) = delete;
  explicit LiveGuard(std::shared_ptr<bool> f) : flag(std::move(f)) {}
  ~LiveGuard() {
    if (flag) *flag = false;
  }
};
}  // namespace

// --- server ----------------------------------------------------------------------

bool RedisServer::handoff(const std::string& key, const std::string& value) {
  auto it = blocked_.find(key);
  if (it == blocked_.end()) return false;
  while (!it->second.empty()) {
    Waiter w = it->second.front();
    it->second.pop_front();
    // A waiter whose coroutine frame was destroyed (pod evicted, node lost)
    // must never be written through; skip to the next parked consumer.
    if (w.live != nullptr && !*w.live) continue;
    CHASE_INVARIANT(w.live == nullptr || *w.live,
                    "BLPOP handoff to a dead waiter on key '" + key + "'");
    if (w.lease_ttl > 0.0) {
      const std::uint64_t id = grant_lease(key, value, w.lease_ttl);
      if (w.lease_slot != nullptr) *w.lease_slot = id;
    }
    *w.slot = value;
    *w.ok = true;
    w.ready->trigger(sim_);
    return true;
  }
  return false;
}

std::uint64_t RedisServer::grant_lease(const std::string& key, const std::string& value,
                                       double ttl) {
  const std::uint64_t id = next_lease_id_++;
  leases_.emplace(id, Lease{key, value, sim_.now() + ttl});
  sim_.schedule(ttl, [this, id] { expire_lease(id); });
  return id;
}

void RedisServer::expire_lease(std::uint64_t id) {
  auto it = leases_.find(id);
  if (it == leases_.end()) return;  // acked (or released) in time
  ++redeliveries_;
  // The lease is erased below, so its key/value are dead: move, don't copy.
  const std::string key = std::move(it->second.key);
  std::string value = std::move(it->second.value);
  leases_.erase(it);
  // Back to the front: redelivered work should not queue behind fresh work.
  lpush(key, std::move(value));
}

bool RedisServer::ack(std::uint64_t lease_id) { return leases_.erase(lease_id) > 0; }

bool RedisServer::release_lease(std::uint64_t lease_id) {
  auto it = leases_.find(lease_id);
  if (it == leases_.end()) return false;
  // Count as a client re-queue, not a ttl redelivery.
  ++requeues_;
  const std::string key = it->second.key;
  std::string value = std::move(it->second.value);
  leases_.erase(it);
  lpush(key, std::move(value));
  return true;
}

std::size_t RedisServer::pending_leases(const std::string& key) const {
  std::size_t n = 0;
  for (const auto& [id, lease] : leases_) n += lease.key == key;
  return n;
}

// chase-lint: allow(hot-arg-copy) sink parameter: callers hand over rvalues, so by-value + move is one move; const& would force a copy at the insert
void RedisServer::requeue(const std::string& key, std::string value) {
  ++requeues_;
  lpush(key, std::move(value));
}

// chase-lint: allow(hot-arg-copy) sink parameter: callers hand over rvalues, so by-value + move is one move; const& would force a copy at the insert
void RedisServer::lpush(const std::string& key, std::string value) {
  if (handoff(key, value)) return;
  lists_[key].push_front(std::move(value));
}

// chase-lint: allow(hot-arg-copy) sink parameter: callers hand over rvalues, so by-value + move is one move; const& would force a copy at the insert
void RedisServer::rpush(const std::string& key, std::string value) {
  if (handoff(key, value)) return;
  lists_[key].push_back(std::move(value));
}

std::optional<std::string> RedisServer::lpop(const std::string& key) {
  auto it = lists_.find(key);
  if (it == lists_.end() || it->second.empty()) return std::nullopt;
  std::string v = std::move(it->second.front());
  it->second.pop_front();
  return v;
}

std::optional<std::string> RedisServer::lpop_lease(const std::string& key, double ttl,
                                                   std::uint64_t* lease_id) {
  auto v = lpop(key);
  if (!v) return std::nullopt;
  const std::uint64_t id = grant_lease(key, *v, ttl);
  if (lease_id != nullptr) *lease_id = id;
  return v;
}

std::optional<std::string> RedisServer::rpop(const std::string& key) {
  auto it = lists_.find(key);
  if (it == lists_.end() || it->second.empty()) return std::nullopt;
  std::string v = std::move(it->second.back());
  it->second.pop_back();
  return v;
}

std::size_t RedisServer::llen(const std::string& key) const {
  auto it = lists_.find(key);
  return it == lists_.end() ? 0 : it->second.size();
}

bool RedisServer::sadd(const std::string& key, const std::string& member) {
  return sets_[key].insert(member).second;
}

bool RedisServer::srem(const std::string& key, const std::string& member) {
  auto it = sets_.find(key);
  return it != sets_.end() && it->second.erase(member) > 0;
}

bool RedisServer::sismember(const std::string& key, const std::string& member) const {
  auto it = sets_.find(key);
  return it != sets_.end() && it->second.count(member) > 0;
}

std::size_t RedisServer::scard(const std::string& key) const {
  auto it = sets_.find(key);
  return it == sets_.end() ? 0 : it->second.size();
}

std::vector<std::string> RedisServer::smembers(const std::string& key) const {
  auto it = sets_.find(key);
  if (it == sets_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

void RedisServer::hset(const std::string& key, const std::string& field,
                       std::string value) {
  hashes_[key][field] = std::move(value);
}

std::optional<std::string> RedisServer::hget(const std::string& key,
                                             const std::string& field) const {
  auto it = hashes_.find(key);
  if (it == hashes_.end()) return std::nullopt;
  auto fit = it->second.find(field);
  if (fit == it->second.end()) return std::nullopt;
  return fit->second;
}

std::size_t RedisServer::hlen(const std::string& key) const {
  auto it = hashes_.find(key);
  return it == hashes_.end() ? 0 : it->second.size();
}

void RedisServer::set(const std::string& key, std::string value) {
  strings_[key] = std::move(value);
}

std::optional<std::string> RedisServer::get(const std::string& key) const {
  auto it = strings_.find(key);
  if (it == strings_.end()) return std::nullopt;
  return it->second;
}

bool RedisServer::del(const std::string& key) {
  return strings_.erase(key) + lists_.erase(key) + sets_.erase(key) +
             hashes_.erase(key) >
         0;
}

std::int64_t RedisServer::incrby(const std::string& key, std::int64_t delta) {
  std::int64_t v = 0;
  if (auto it = strings_.find(key); it != strings_.end()) {
    v = std::stoll(it->second);
  }
  v += delta;
  strings_[key] = std::to_string(v);
  return v;
}

void RedisServer::expire(const std::string& key, double seconds) {
  const std::uint64_t generation = ++expiry_generation_;
  expiries_[key] = Expiry{sim_.now() + seconds, generation};
  sim_.schedule(seconds, [this, key, generation] {
    auto it = expiries_.find(key);
    if (it == expiries_.end() || it->second.generation != generation) return;
    expiries_.erase(it);
    del(key);
  });
}

std::optional<double> RedisServer::ttl(const std::string& key) const {
  auto it = expiries_.find(key);
  if (it == expiries_.end()) return std::nullopt;
  return it->second.deadline - sim_.now();
}

bool RedisServer::persist(const std::string& key) {
  return expiries_.erase(key) > 0;
}

RedisServer::SubscriptionPtr RedisServer::subscribe(const std::string& channel) {
  auto sub = std::make_shared<Subscription>();
  channels_[channel].push_back(sub);
  return sub;
}

void RedisServer::unsubscribe(const std::string& channel, const SubscriptionPtr& sub) {
  auto it = channels_.find(channel);
  if (it == channels_.end()) return;
  auto& subs = it->second;
  subs.erase(std::remove(subs.begin(), subs.end(), sub), subs.end());
}

std::size_t RedisServer::publish(const std::string& channel, const std::string& message) {
  auto it = channels_.find(channel);
  if (it == channels_.end()) return 0;
  for (auto& sub : it->second) {
    sub->messages.push_back(message);
    sub->ready->trigger(sim_);
  }
  return it->second.size();
}

std::size_t RedisServer::subscriber_count(const std::string& channel) const {
  auto it = channels_.find(channel);
  return it == channels_.end() ? 0 : it->second.size();
}

std::size_t RedisServer::total_keys() const {
  return lists_.size() + sets_.size() + hashes_.size() + strings_.size();
}

void RedisServer::check_invariants() const {
  // Queue length vs. in-flight accounting: every push hands off to a parked
  // BLPOP waiter before touching the list, so a key never simultaneously
  // holds queued values and live blocked consumers (dead waiters are merely
  // awaiting garbage collection by the next push).
  for (const auto& [key, waiters] : blocked_) {
    bool any_live = false;
    for (const Waiter& w : waiters) any_live = any_live || w.live == nullptr || *w.live;
    if (any_live) {
      CHASE_INVARIANT(llen(key) == 0,
                      "key '" + key + "' has queued values while BLPOP waiters are parked");
    }
    for (const Waiter& w : waiters) {
      CHASE_INVARIANT(w.ready != nullptr && w.slot != nullptr && w.ok != nullptr,
                      "malformed BLPOP waiter for key '" + key + "'");
      CHASE_INVARIANT(w.ready == nullptr || !w.ready->fired(),
                      "parked BLPOP waiter whose wakeup already fired");
      CHASE_INVARIANT(w.lease_ttl >= 0.0, "BLPOP waiter with a negative lease ttl");
    }
  }
  // Pending leases expire exactly at their deadline and never outlive it.
  for (const auto& [id, lease] : leases_) {
    CHASE_INVARIANT(lease.deadline >= sim_.now() - 1e-9,
                    "lease on key '" + lease.key + "' outlived its deadline");
    CHASE_INVARIANT(id < next_lease_id_, "lease id from the future");
  }
  // Expiries fire exactly at their deadline, so no key outlives it.
  for (const auto& [key, expiry] : expiries_) {
    CHASE_INVARIANT(expiry.deadline >= sim_.now() - 1e-9,
                    "key '" + key + "' outlived its expiry deadline");
    CHASE_INVARIANT(expiry.generation <= expiry_generation_,
                    "expiry generation from the future");
  }
  for (const auto& [channel, subs] : channels_) {
    for (const auto& sub : subs) {
      CHASE_INVARIANT(sub != nullptr, "null subscription on channel '" + channel + "'");
    }
    // Expensive: a subscription registered twice would double-deliver every
    // publish.
    for (std::size_t i = 0; i < subs.size(); ++i) {
      for (std::size_t j = i + 1; j < subs.size(); ++j) {
        CHASE_AUDIT(subs[i] != subs[j],
                    "duplicate subscription on channel '" + channel + "'");
      }
    }
  }
}

// --- client ----------------------------------------------------------------------

sim::Task RedisClient::round_trip(bool* ok) {
  *ok = false;
  const net::NodeId server = server_.node();
  if (server < 0) co_return;
  auto request = net_.transfer(client_, server, kRequestBytes);
  co_await request->done->wait(sim_);
  if (request->failed) co_return;
  co_await sim_.sleep(kServiceTime);
  auto response = net_.transfer(server, client_, kRequestBytes);
  co_await response->done->wait(sim_);
  if (response->failed) co_return;
  *ok = true;
}

sim::Task RedisClient::rpush(std::string key, std::string value, bool* ok) {
  bool fine = false;
  co_await round_trip(&fine);
  if (fine) server_.rpush(key, std::move(value));
  if (ok != nullptr) *ok = fine;
}

sim::Task RedisClient::lpush(std::string key, std::string value, bool* ok) {
  bool fine = false;
  co_await round_trip(&fine);
  if (fine) server_.lpush(key, std::move(value));
  if (ok != nullptr) *ok = fine;
}

sim::Task RedisClient::lpop(std::string key, std::optional<std::string>* out,
                            bool* ok) {
  bool fine = false;
  co_await round_trip(&fine);
  if (fine) *out = server_.lpop(key);
  if (ok != nullptr) *ok = fine;
}

sim::Task RedisClient::blpop(std::string key, std::string* out, bool* got) {
  return blpop_impl(std::move(key), 0.0, out, nullptr, got);
}

sim::Task RedisClient::blpop_lease(std::string key, double lease_ttl,
                                   std::string* out, std::uint64_t* lease_id,
                                   bool* got) {
  return blpop_impl(std::move(key), lease_ttl, out, lease_id, got);
}

sim::Task RedisClient::blpop_impl(std::string key, double lease_ttl,
                                  std::string* out, std::uint64_t* lease_id,
                                  bool* got) {
  *got = false;
  bool fine = false;
  std::uint64_t lease = 0;
  // Request leg.
  const net::NodeId server = server_.node();
  if (server < 0) co_return;
  auto request = net_.transfer(client_, server, kRequestBytes);
  co_await request->done->wait(sim_);
  if (request->failed) co_return;
  co_await sim_.sleep(kServiceTime);

  // Immediate element, or block until one is pushed.
  if (lease_ttl > 0.0) {
    if (auto v = server_.lpop_lease(key, lease_ttl, &lease)) {
      *out = std::move(*v);
      fine = true;
    }
  } else if (auto v = server_.lpop(key)) {
    *out = std::move(*v);
    fine = true;
  }
  if (!fine) {
    // Park a waiter. The guard flips the shared liveness flag when this
    // frame is destroyed (pod evicted, simulation torn down) so the server
    // never writes through the then-dangling out/delivered pointers.
    auto live = std::make_shared<bool>(true);
    LiveGuard guard(live);
    auto ready = sim::make_event();
    bool delivered = false;
    server_.blocked_[key].push_back(
        RedisServer::Waiter{ready, out, &delivered, live, lease_ttl, &lease});
    co_await ready->wait(sim_);
    fine = delivered;
    if (!fine) co_return;
  }

  // Response leg: the popped element must actually reach the consumer. If
  // the server is gone or the transfer fails, put the element back instead
  // of dropping it (under a lease, expire the lease now — the value lives
  // in the pending table, not in *out's final state).
  const net::NodeId at_response = server_.node();
  if (at_response < 0) {
    if (lease_ttl > 0.0) {
      server_.release_lease(lease);
    } else {
      server_.requeue(key, *out);
    }
    co_return;
  }
  auto response = net_.transfer(at_response, client_, kRequestBytes);
  co_await response->done->wait(sim_);
  if (response->failed) {
    if (lease_ttl > 0.0) {
      server_.release_lease(lease);
    } else {
      server_.requeue(key, *out);
    }
    co_return;
  }
  if (lease_id != nullptr) *lease_id = lease;
  *got = true;
}

sim::Task RedisClient::ack(std::uint64_t lease_id, bool* acked, bool* ok) {
  bool fine = false;
  co_await round_trip(&fine);
  if (fine) {
    const bool was_pending = server_.ack(lease_id);
    if (acked != nullptr) *acked = was_pending;
  }
  if (ok != nullptr) *ok = fine;
}

sim::Task RedisClient::llen(std::string key, std::size_t* out, bool* ok) {
  bool fine = false;
  co_await round_trip(&fine);
  if (fine) *out = server_.llen(key);
  if (ok != nullptr) *ok = fine;
}

sim::Task RedisClient::sadd(std::string key, std::string member,
                            bool* added, bool* ok) {
  bool fine = false;
  co_await round_trip(&fine);
  if (fine) {
    const bool was_added = server_.sadd(key, member);
    if (added != nullptr) *added = was_added;
  }
  if (ok != nullptr) *ok = fine;
}

sim::Task RedisClient::scard(std::string key, std::size_t* out, bool* ok) {
  bool fine = false;
  co_await round_trip(&fine);
  if (fine) *out = server_.scard(key);
  if (ok != nullptr) *ok = fine;
}

sim::Task RedisClient::srem(std::string key, std::string member,
                            bool* removed, bool* ok) {
  bool fine = false;
  co_await round_trip(&fine);
  if (fine) {
    const bool was_removed = server_.srem(key, member);
    if (removed != nullptr) *removed = was_removed;
  }
  if (ok != nullptr) *ok = fine;
}

sim::Task RedisClient::incrby(std::string key, std::int64_t delta,
                              std::int64_t* out, bool* ok) {
  bool fine = false;
  co_await round_trip(&fine);
  if (fine) {
    const std::int64_t v = server_.incrby(key, delta);
    if (out != nullptr) *out = v;
  }
  if (ok != nullptr) *ok = fine;
}

sim::Task RedisClient::get(std::string key, std::optional<std::string>* out,
                           bool* ok) {
  bool fine = false;
  co_await round_trip(&fine);
  if (fine) *out = server_.get(key);
  if (ok != nullptr) *ok = fine;
}

sim::Task RedisClient::set(std::string key, std::string value, bool* ok) {
  bool fine = false;
  co_await round_trip(&fine);
  if (fine) server_.set(key, std::move(value));
  if (ok != nullptr) *ok = fine;
}

sim::Task RedisClient::publish(std::string channel, std::string message,
                               std::size_t* receivers, bool* ok) {
  bool fine = false;
  co_await round_trip(&fine);
  if (fine) {
    const std::size_t n = server_.publish(channel, std::move(message));
    if (receivers != nullptr) *receivers = n;
  }
  if (ok != nullptr) *ok = fine;
}

sim::Task RedisClient::next_message(RedisServer::SubscriptionPtr sub, std::string* out,
                                    bool* ok) {
  *ok = false;
  while (sub->messages.empty()) {
    // Re-arm and wait for the next publish.
    if (sub->ready->fired()) sub->ready = sim::make_event();
    co_await sub->ready->wait(sim_);
  }
  *out = std::move(sub->messages.front());
  sub->messages.pop_front();
  // The push delivery leg (server -> client).
  const net::NodeId server = server_.node();
  if (server < 0) co_return;
  auto push = net_.transfer(server, client_, 128);
  co_await push->done->wait(sim_);
  if (push->failed) co_return;
  *ok = true;
}

}  // namespace chase::redis
