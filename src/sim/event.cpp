#include "sim/event.hpp"

namespace chase::sim {

void Event::trigger(Simulation& sim) {
  if (fired_) return;
  fired_ = true;
  // Resume via the event queue, not inline: keeps trigger() safe to call
  // from any context and preserves deterministic ordering.
  for (auto h : waiters_) {
    sim.schedule(0.0, [h] { h.resume(); });
  }
  waiters_.clear();
}

Task wait_all(Simulation& sim, std::vector<EventPtr> events) {
  for (auto& ev : events) {
    co_await ev->wait(sim);
  }
}

bool run_until(Simulation& sim, const EventPtr& ev) {
  while (!ev->fired() && sim.step()) {
  }
  return ev->fired();
}

void Semaphore::release(Simulation& sim) {
  if (!waiters_.empty()) {
    auto h = waiters_.front();
    waiters_.pop_front();
    // Hand the permit directly to the waiter (permits_ stays unchanged).
    sim.schedule(0.0, [h] { h.resume(); });
  } else {
    ++permits_;
  }
}

}  // namespace chase::sim
