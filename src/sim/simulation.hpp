#pragma once
/// \file simulation.hpp
/// Deterministic single-threaded discrete-event simulation kernel.
///
/// The kernel executes callbacks ordered by (virtual time, insertion
/// sequence). On top of the raw callback queue, `task.hpp` provides C++20
/// coroutine "processes" that `co_await` virtual delays and events — the
/// style in which all CHASE-CI workloads (download workers, trainers,
/// controllers, OSD recovery, ...) are written.
///
/// The event loop is allocation-free in the steady state: callbacks are
/// util::SmallFn (48-byte inline buffer, BlockPool overflow — see
/// util/small_fn.hpp) and the priority queue is an explicit binary heap
/// over a reserved vector, so after warmup neither scheduling nor
/// dispatching an event touches the global heap. At audit level >= 2 with
/// the alloc_stats hook linked, step() asserts this per event.

#include <coroutine>
#include <cstdint>
#include <limits>
#include <map>
#include <unordered_set>
#include <vector>

#include "util/small_fn.hpp"

namespace chase::sim {

class Simulation;

/// An awaitable virtual-time delay; produced by Simulation::sleep().
struct SleepAwaiter {
  Simulation* sim;
  double delay;
  bool await_ready() const noexcept { return delay <= 0.0; }
  void await_suspend(std::coroutine_handle<> h) const;
  void await_resume() const noexcept {}
};

/// Fire-and-forget coroutine process. A Task is either:
///  * awaited by a parent coroutine (`co_await child()`), in which case the
///    parent owns the frame and resumes when the child finishes, or
///  * spawned detached via Simulation::spawn(), in which case the frame
///    destroys itself on completion (or at Simulation teardown).
class [[nodiscard]] Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    std::coroutine_handle<> continuation{};
    Simulation* owner = nullptr;  // set when spawned detached
    Task get_return_object() { return Task{Handle::from_promise(*this)}; }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle h) noexcept;
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception();
  };

  Task(Task&& other) noexcept : handle_(other.handle_) { other.handle_ = {}; }
  Task& operator=(Task&& other) noexcept;
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task();

  bool valid() const { return static_cast<bool>(handle_); }

  /// Awaiting a Task starts it and suspends the awaiter until it returns.
  /// Awaiting a temporary is safe: temporaries alive across a suspension
  /// point are stored in the awaiting coroutine's frame.
  struct Awaiter {
    Handle child;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
      child.promise().continuation = parent;
      return child;  // symmetric transfer into the child
    }
    void await_resume() const noexcept {}
  };
  Awaiter operator co_await() { return Awaiter{handle_}; }

 private:
  friend class Simulation;
  explicit Task(Handle h) : handle_(h) {}
  Handle handle_{};
};

/// The event queue + virtual clock.
class Simulation {
 public:
  Simulation();
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  double now() const { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  /// SmallFn converts from any callable; captures beyond 48 bytes land in
  /// the BlockPool rather than the global heap.
  void schedule(double delay, util::SmallFn<void()> fn);

  /// Awaitable delay for coroutine processes.
  SleepAwaiter sleep(double delay) { return SleepAwaiter{this, delay}; }

  /// Start a detached coroutine process. The frame self-destroys when the
  /// coroutine returns; any frames still suspended when the Simulation is
  /// destroyed are destroyed with it.
  void spawn(Task task);

  /// Run until the queue drains or `until` is reached (whichever first).
  /// Returns the number of events processed in this call.
  std::uint64_t run(double until = std::numeric_limits<double>::infinity());

  /// Process a single event; returns false if the queue is empty.
  bool step();

  std::uint64_t events_processed() const { return events_processed_; }
  bool empty() const { return queue_.empty(); }

  // --- invariant-audit checkpoints ------------------------------------------
  //
  // Stateful subsystems (kube, ceph, redis, net, ...) register their
  // check_invariants() here at construction; run() calls every hook after
  // each `audit_interval()` processed events while the audit level is >= 1
  // (see util/check.hpp). Hooks must be read-only over simulation state.

  /// Register an audit hook; returns an id for remove_audit_hook().
  std::uint64_t add_audit_hook(util::SmallFn<void()> hook);
  void remove_audit_hook(std::uint64_t id);
  std::size_t audit_hook_count() const { return audit_hooks_.size(); }

  /// Events between checkpoints (default 1024). Level 2 runs hooks every
  /// `interval / 8` events so expensive audits see more boundaries.
  void set_audit_interval(std::uint64_t interval) { audit_interval_ = interval; }
  std::uint64_t audit_interval() const { return audit_interval_; }
  /// Run every registered audit hook immediately (also called by run()).
  void audit_now() const;

  /// Kernel self-check: virtual time is non-negative and the event heap
  /// never holds work scheduled before `now()`.
  void check_invariants() const;

  /// Observe every processed event as (virtual time, sequence number) —
  /// the event trace hashed by tools/determinism_check. Pass {} to clear.
  void set_trace_hook(util::SmallFn<void(double time, std::uint64_t seq)> hook) {
    trace_hook_ = std::move(hook);
  }

 private:
  friend struct Task::promise_type;
  void unregister_detached(void* frame) { detached_.erase(frame); }

  struct Entry {
    double time;
    std::uint64_t seq;
    util::SmallFn<void()> fn;
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_processed_ = 0;
  // Explicit min-heap (std::push_heap/pop_heap over a reserved vector).
  // Identical pop order to std::priority_queue for the unique (time, seq)
  // keys — determinism hashes are bit-for-bit unchanged — but the storage
  // is inspectable, reservable, and move-only-friendly.
  std::vector<Entry> queue_;
  std::unordered_set<void*> detached_;

  std::map<std::uint64_t, util::SmallFn<void()>> audit_hooks_;  // ordered: determinism
  std::uint64_t next_audit_hook_id_ = 0;
  std::uint64_t audit_interval_ = 1024;
  std::uint64_t events_since_audit_ = 0;
  util::SmallFn<void(double, std::uint64_t)> trace_hook_;
};

}  // namespace chase::sim
