#include "sim/simulation.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <exception>

#include "util/alloc_stats.hpp"
#include "util/check.hpp"

namespace chase::sim {

namespace {
/// Initial event-heap capacity. The vector grows amortized past this; the
/// point is that steady-state churn never reallocates (the capacity sticks
/// at the high-water mark), which the zero-alloc audit in step() relies on.
constexpr std::size_t kInitialQueueCapacity = 1024;
}  // namespace

void SleepAwaiter::await_suspend(std::coroutine_handle<> h) const {
  sim->schedule(delay, [h] { h.resume(); });
}

std::coroutine_handle<> Task::promise_type::FinalAwaiter::await_suspend(
    Task::Handle h) noexcept {
  auto& p = h.promise();
  std::coroutine_handle<> cont =
      p.continuation ? p.continuation : std::coroutine_handle<>(std::noop_coroutine());
  if (p.owner != nullptr) {
    // Detached task: deregister and self-destroy. Destroying a coroutine that
    // is suspended at its final suspend point is well-defined.
    p.owner->unregister_detached(h.address());
    h.destroy();
  }
  return cont;
}

void Task::promise_type::unhandled_exception() {
  // Simulation processes must not leak exceptions: there is no caller stack
  // to propagate into. Treat as a programming error.
  std::fprintf(stderr, "chase::sim::Task: unhandled exception in process\n");
  std::terminate();
}

Task& Task::operator=(Task&& other) noexcept {
  if (this != &other) {
    if (handle_) handle_.destroy();
    handle_ = other.handle_;
    other.handle_ = {};
  }
  return *this;
}

Task::~Task() {
  if (handle_) handle_.destroy();
}

Simulation::Simulation() { queue_.reserve(kInitialQueueCapacity); }

Simulation::~Simulation() {
  // Drop pending callbacks first (they may reference coroutine frames), then
  // destroy frames that never completed.
  queue_.clear();
  for (void* frame : detached_) {
    std::coroutine_handle<>::from_address(frame).destroy();
  }
}

void Simulation::schedule(double delay, util::SmallFn<void()> fn) {
  assert(delay >= 0.0 && "cannot schedule into the past");
  if (delay < 0.0) delay = 0.0;
  queue_.push_back(Entry{now_ + delay, seq_++, std::move(fn)});
  std::push_heap(queue_.begin(), queue_.end(), std::greater<>{});
}

void Simulation::spawn(Task task) {
  Task::Handle h = task.handle_;
  task.handle_ = {};  // release ownership to the simulation
  h.promise().owner = this;
  detached_.insert(h.address());
  // Start at the next event boundary so spawn() is safe to call from
  // anywhere, including inside another process.
  schedule(0.0, [h] { h.resume(); });
}

std::uint64_t Simulation::run(double until) {
  // Checkpoint cadence: level 1 audits every `audit_interval_` events,
  // level 2 (expensive audits enabled) 8x as often.
  const int level = util::audit_level();
  const std::uint64_t interval =
      level >= 2 ? std::max<std::uint64_t>(1, audit_interval_ / 8) : audit_interval_;
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.front().time <= until) {
    step();
    ++n;
    if (level >= 1 && !audit_hooks_.empty() && ++events_since_audit_ >= interval) {
      events_since_audit_ = 0;
      audit_now();
    }
  }
  if (level >= 1 && !audit_hooks_.empty() && n > 0) {
    events_since_audit_ = 0;
    audit_now();  // final checkpoint: quiescent state is always audited
  }
  if (now_ < until && until < std::numeric_limits<double>::infinity()) {
    now_ = until;
  }
  return n;
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  // Zero-alloc witness: with the counting hook linked (tests) and expensive
  // audits on, the dequeue machinery below — heap sift, SmallFn relocation,
  // pop_back — must not reach the global heap. The callback body itself is
  // covered by the steady-state loop test in tests/alloc_stats_test.cpp.
  std::uint64_t news_before = 0;
  const bool audit_allocs =
      util::audit_level() >= 2 && util::alloc_stats::hooked();
  if (audit_allocs) news_before = util::alloc_stats::news();
  std::pop_heap(queue_.begin(), queue_.end(), std::greater<>{});
  Entry e = std::move(queue_.back());
  queue_.pop_back();
  if (audit_allocs) {
    CHASE_AUDIT(util::alloc_stats::news() == news_before,
                "event dispatch machinery allocated on the global heap");
  }
  CHASE_ASSERT(e.time + 1e-12 >= now_, "event time went backwards");
  now_ = e.time;
  ++events_processed_;
  if (trace_hook_) trace_hook_(e.time, e.seq);
  e.fn();
  return true;
}

std::uint64_t Simulation::add_audit_hook(util::SmallFn<void()> hook) {
  const std::uint64_t id = next_audit_hook_id_++;
  audit_hooks_.emplace(id, std::move(hook));
  return id;
}

void Simulation::remove_audit_hook(std::uint64_t id) { audit_hooks_.erase(id); }

void Simulation::audit_now() const {
  check_invariants();
  for (const auto& [id, hook] : audit_hooks_) hook();
}

void Simulation::check_invariants() const {
  CHASE_INVARIANT(now_ >= 0.0, "virtual clock is negative");
  // The heap root is the minimum, so one comparison covers every queued entry.
  CHASE_INVARIANT(queue_.empty() || queue_.front().time >= now_ - 1e-12,
                  "event heap holds work scheduled before now()");
}

}  // namespace chase::sim
