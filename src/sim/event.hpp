#pragma once
/// \file event.hpp
/// Synchronization primitives for coroutine processes: one-shot completion
/// events, counting semaphores, and helpers for waiting on groups of events.

#include <coroutine>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/simulation.hpp"
#include "util/block_pool.hpp"
#include "util/inline_vec.hpp"

namespace chase::sim {

/// One-shot completion signal. Processes `co_await ev->wait(sim)`; a trigger
/// resumes all waiters (at the current virtual time, as fresh events).
/// Events are shared between producer and consumers via shared_ptr.
class Event {
 public:
  bool fired() const { return fired_; }

  void trigger(Simulation& sim);

  struct Awaiter {
    Event* ev;
    Simulation* sim;
    bool await_ready() const noexcept { return ev->fired_; }
    void await_suspend(std::coroutine_handle<> h) {
      // chase-lint: allow(hot-alloc) InlineVec: 4 inline slots, BlockPool spill; no global heap in steady state
      ev->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  Awaiter wait(Simulation& sim) { return Awaiter{this, &sim}; }

 private:
  bool fired_ = false;
  util::InlineVec<std::coroutine_handle<>, 4> waiters_;
};

using EventPtr = std::shared_ptr<Event>;

/// Events churn once per transfer/lease/barrier, so the object and its
/// shared_ptr control block come from the BlockPool (one combined
/// allocation, recycled on release) instead of the global heap.
inline EventPtr make_event() {
  return std::allocate_shared<Event>(util::PoolAllocator<Event>{});
}

/// Wait until all events in the group have fired.
Task wait_all(Simulation& sim, std::vector<EventPtr> events);

/// Drive the simulation until `ev` fires (or the queue drains). Returns true
/// if the event fired. Useful when long-lived services (e.g. a Redis
/// ReplicaSet) keep the event queue non-empty forever.
bool run_until(Simulation& sim, const EventPtr& ev);

/// Counting semaphore for limiting concurrency (e.g. parallel download
/// connections, per-OSD recovery streams). FIFO handoff.
class Semaphore {
 public:
  explicit Semaphore(std::int64_t permits) : permits_(permits) {}

  std::int64_t available() const { return permits_; }
  std::size_t queue_length() const { return waiters_.size(); }

  struct Awaiter {
    Semaphore* sem;
    bool await_ready() const noexcept {
      if (sem->permits_ > 0 && sem->waiters_.empty()) {
        --sem->permits_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      // chase-lint: allow(hot-alloc) InlineVec: 4 inline slots, BlockPool spill; no global heap in steady state
      sem->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  /// Acquire one permit (may suspend).
  Awaiter acquire() { return Awaiter{this}; }

  /// Release one permit; wakes the longest-waiting acquirer at now+0.
  void release(Simulation& sim);

 private:
  std::int64_t permits_;
  util::InlineVec<std::coroutine_handle<>, 4> waiters_;
};

/// RAII-style completion latch: counts down, fires an event at zero.
class Latch {
 public:
  Latch(std::int64_t count, EventPtr done) : count_(count), done_(std::move(done)) {}
  void count_down(Simulation& sim) {
    if (--count_ == 0) done_->trigger(sim);
  }
  std::int64_t remaining() const { return count_; }

 private:
  std::int64_t count_;
  EventPtr done_;
};

}  // namespace chase::sim
