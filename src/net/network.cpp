#include <cstdio>
#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/check.hpp"

namespace chase::net {

#ifdef CHASE_NET_STATS
#include <x86intrin.h>
namespace {
struct NetStats {
  unsigned long long rc = 0, fills = 0, flows = 0, links = 0, twins = 0,
      rounds = 0, scans = 0, collect_cy = 0, build_cy = 0, round_cy = 0,
      apply_cy = 0, total_cy = 0;
  ~NetStats() {
    if (!rc) return;
    auto f = [&](const char* n, unsigned long long cy) {
      std::fprintf(stderr, "  %-10s %8.2f Mcy  %6.0f cy/rc\n", n, cy / 1e6,
                   (double)cy / rc);
    };
    std::fprintf(stderr,
                 "net-stats: rc=%llu fills=%llu (%.2f/rc) flows/fill=%.1f "
                 "links/fill=%.1f twins/fill=%.1f rounds/fill=%.1f scans/fill=%.1f\n",
                 rc, fills, (double)fills / rc, (double)flows / fills,
                 (double)links / fills, (double)twins / fills,
                 (double)rounds / fills, (double)scans / fills);
    f("collect", collect_cy); f("build", build_cy); f("rounds", round_cy);
    f("apply", apply_cy); f("total", total_cy);
  }
};
NetStats g_netstats;
}  // namespace
#define NETSTAT(field, amt) (g_netstats.field += (amt))
#define NETSTAT_TSC() __rdtsc()
#else
#define NETSTAT(field, amt) ((void)0)
#define NETSTAT_TSC() 0ULL
#endif

namespace {
constexpr double kByteEpsilon = 0.5;  // flows within half a byte are done
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Network::Network(sim::Simulation& sim) : sim_(sim) {
  audit_hook_ = sim_.add_audit_hook([this] {
    check_invariants();
    CHASE_AUDIT(rates_match_full_recompute(),
                "scoped max-min recompute diverged from the full recompute");
  });
  // High-water marks for steady-state flow churn; grown on demand.
  comp_links_.reserve(64);
  levels_.reserve(64);
  route_path_.reserve(16);
  slot_epoch_.reserve(64);
  free_slots_.reserve(64);
  fl_ptr_.reserve(64);
  fl_cap_.reserve(64);
  fl_old_.reserve(64);
  fl_new_.reserve(64);
  fl_id_.reserve(64);
  fl_edge_end_.reserve(64);
  fl_frozen_.reserve(64);
  edges_.reserve(128);
  cap_list_.reserve(64);
  cap_runs_.reserve(64);
  squeezed_.reserve(64);
  link_members_.reserve(128);
  dirty_.reserve(64);
  seed_links_.reserve(64);
  scope_links_.reserve(64);
  eta_heap_.reserve(64);
  doomed_.reserve(64);
}

NodeId Network::add_node(std::string name) { return add_node(std::move(name), 0); }

NodeId Network::add_node(std::string name, SiteId site) {
  assert(site >= 0);
  nodes_.push_back(Node{std::move(name), true, site, {}});
  if (static_cast<std::size_t>(site) >= site_epochs_.size()) {
    site_epochs_.resize(static_cast<std::size_t>(site) + 1, 1);
  }
  invalidate_routes();
  // The site's membership changed: stale intra-site trees are sized for the
  // old node count and must not be walked for the new node.
  invalidate_site_routes(site);
  return static_cast<NodeId>(nodes_.size() - 1);
}

LinkId Network::add_link(NodeId a, NodeId b, double bandwidth_bps, double latency_s) {
  assert(a >= 0 && a < static_cast<NodeId>(nodes_.size()));
  assert(b >= 0 && b < static_cast<NodeId>(nodes_.size()));
  assert(bandwidth_bps > 0.0);
  const LinkId forward = static_cast<LinkId>(links_.size());
  const bool wan = nodes_[a].site != nodes_[b].site;
  links_.push_back(
      DirectedLink{a, b, bandwidth_bps, latency_s, bandwidth_bps, true, wan, {}});
  links_.push_back(
      DirectedLink{b, a, bandwidth_bps, latency_s, bandwidth_bps, true, wan, {}});
  // Pre-size the per-link flow registries at build time so steady-state
  // flow churn stays within the high-water capacity.
  links_[forward].flows.reserve(8);
  links_[forward + 1].flows.reserve(8);
  // Per-link recompute scratch, kept sized with links_.
  link_epoch_.resize(links_.size(), 0);
  link_scope_.resize(links_.size(), 0);
  link_fill_.resize(links_.size());
  nodes_[a].out.push_back(forward);
  nodes_[b].out.push_back(forward + 1);
  invalidate_routes();
  if (!wan) invalidate_site_routes(nodes_[a].site);
  return forward;
}

std::vector<LinkId> Network::site_boundary_links(SiteId site) const {
  std::vector<LinkId> out;
  for (LinkId l = 0; l < static_cast<LinkId>(links_.size()); l += 2) {
    const DirectedLink& link = links_[static_cast<std::size_t>(l)];
    if (!link.wan) continue;
    if (nodes_[link.from].site == site || nodes_[link.to].site == site) {
      out.push_back(l);
    }
  }
  return out;
}

void Network::set_node_up(NodeId id, bool up) {
  if (nodes_.at(id).up == up) return;
  nodes_[id].up = up;
  invalidate_routes();
  invalidate_site_routes(nodes_[id].site);
  if (!up) {
    // Fail every flow whose path touches the node, in one batch: a single
    // scoped recompute covers all affected components.
    doomed_.clear();
    for (const auto& [fid, flow] : flows_) {
      if (flow.handle->src == id || flow.handle->dst == id) {
        doomed_.push_back(fid);
        continue;
      }
      for (LinkId l : flow.path) {
        if (links_[l].from == id || links_[l].to == id) {
          doomed_.push_back(fid);
          break;
        }
      }
    }
    fail_flows();
  }
}

void Network::set_link_up(LinkId id, bool up) {
  const LinkId partner = partner_of(id);
  if (links_.at(id).up == up) return;
  links_[id].up = up;
  links_[partner].up = up;
  invalidate_routes();
  // A WAN link change never alters any intra-site fabric; an intra-site
  // change invalidates only its own site's trees.
  if (!links_[id].wan) invalidate_site_routes(nodes_[links_[id].from].site);
  if (!up) {
    // Fail every flow routed over either direction of the pair.
    doomed_.clear();
    for (const auto& [fid, flow] : flows_) {
      for (LinkId l : flow.path) {
        if (l == id || l == partner) {
          doomed_.push_back(fid);
          break;
        }
      }
    }
    fail_flows();
  }
}

void Network::fail_flows() {
  for (auto fid : doomed_) finish_flow(fid, /*failed=*/true);
  doomed_.clear();
  recompute_scope();
  rearm_completion();
}

void Network::set_link_bandwidth_factor(LinkId id, double factor) {
  assert(factor > 0.0);
  const LinkId partner = partner_of(id);
  links_.at(id).capacity = links_[id].base_capacity * factor;
  links_[partner].capacity = links_[partner].base_capacity * factor;
  seed_links_.push_back(id);
  seed_links_.push_back(partner);
  recompute_scope();
  rearm_completion();
}

double Network::link_bandwidth_factor(LinkId id) const {
  const auto& link = links_.at(id);
  return link.capacity / link.base_capacity;
}

LinkId Network::find_link(NodeId a, NodeId b) const {
  for (LinkId l : nodes_.at(a).out) {
    if (links_[l].to == b) return l;
  }
  return -1;
}

const std::vector<LinkId>& Network::route(NodeId src, NodeId dst) {
  if (static_cast<std::size_t>(src) >= route_trees_.size()) {
    route_trees_.resize(nodes_.size());
  }
  RouteTree& tree = route_trees_[src];
  // Same-site destinations route hierarchically over the intra-site fabric
  // only (a model rule, not an approximation: sites must be internally
  // connected, and intra-site traffic never detours over the WAN). That
  // tree is keyed on the site's own epoch, so faults in other sites never
  // invalidate it. Cross-site destinations use the global tree. With a
  // single site no WAN links exist and the two BFS traversals are
  // identical, so single-site behavior is unchanged bit for bit.
  const SiteId site = nodes_[src].site;
  const bool local = nodes_[dst].site == site;
  std::vector<LinkId>& via = local ? tree.local_via : tree.via;
  const std::uint64_t want =
      local ? site_epochs_[static_cast<std::size_t>(site)] : route_epoch_;
  std::uint64_t& stamp = local ? tree.local_stamp : tree.stamp;
  if (stamp != want) {
    // Rebuild this source's whole shortest-path tree: BFS by hop count,
    // deterministic tie-break by link id order (adjacency lists hold links
    // in creation order). One rebuild serves every destination until the
    // next relevant topology change.
    stamp = want;
    via.assign(nodes_.size(), -1);
    route_seen_.assign(nodes_.size(), 0);
    route_q_.clear();
    route_q_.reserve(nodes_.size());
    route_seen_[src] = 1;
    route_q_.push_back(src);
    for (std::size_t head = 0; head < route_q_.size(); ++head) {
      const NodeId n = route_q_[head];
      for (LinkId l : nodes_[n].out) {
        const DirectedLink& link = links_[l];
        if (!link.up || (local && link.wan)) continue;
        const NodeId next = link.to;
        char& seen_next = route_seen_[next];
        if (seen_next || !nodes_[next].up) continue;
        seen_next = 1;
        via[next] = l;
        route_q_.push_back(next);
      }
    }
  }
  route_path_.clear();
  if (src != dst) {
    for (NodeId n = dst; n != src;) {
      const LinkId l = via[n];
      if (l < 0) {  // unreachable under the current topology
        route_path_.clear();
        return route_path_;
      }
      route_path_.push_back(l);
      n = links_[l].from;
    }
    std::reverse(route_path_.begin(), route_path_.end());
  }
  return route_path_;
}

bool Network::reachable(NodeId src, NodeId dst) {
  if (!nodes_.at(src).up || !nodes_.at(dst).up) return false;
  return src == dst || !route(src, dst).empty();
}

TransferPtr Network::transfer(NodeId src, NodeId dst, Bytes bytes, TransferOptions opts) {
  // Handles churn once per transfer: object + control block come from the
  // BlockPool in one combined allocation and are recycled on release.
  auto handle = std::allocate_shared<Transfer>(util::PoolAllocator<Transfer>{});
  handle->src = src;
  handle->dst = dst;
  handle->bytes = bytes;
  handle->start_time = sim_.now();

  if (!nodes_.at(src).up || !nodes_.at(dst).up) {
    handle->failed = true;
    handle->finish_time = sim_.now();
    handle->done->trigger(sim_);
    return handle;
  }

  double latency = opts.extra_latency;
  std::vector<LinkId> path;
  if (src != dst) {
    path = route(src, dst);
    if (path.empty()) {
      handle->failed = true;
      handle->finish_time = sim_.now();
      handle->done->trigger(sim_);
      return handle;
    }
    for (LinkId l : path) latency += links_[l].latency;
  }

  if (bytes == 0 || src == dst) {
    // Local copies and pure control messages pay latency only.
    sim_.schedule(latency, [this, handle] {
      handle->finish_time = sim_.now();
      bytes_started_ += static_cast<double>(handle->bytes);
      bytes_delivered_ += static_cast<double>(handle->bytes);
      handle->done->trigger(sim_);
    });
    return handle;
  }

  // The flow starts after the path latency (slow-start abstracted away).
  sim_.schedule(latency, [this, handle, path = std::move(path), opts]() mutable {
    if (handle->failed) return;
    // Re-check liveness at flow start.
    for (LinkId l : path) {
      const DirectedLink& link = links_[l];
      if (!link.up || !nodes_[link.from].up || !nodes_[link.to].up) {
        handle->failed = true;
        handle->finish_time = sim_.now();
        handle->done->trigger(sim_);
        return;
      }
    }
    const std::uint64_t id = next_flow_id_++;
    Flow& flow = flows_.try_emplace(id).first->second;  // ids are monotone: fresh
    flow.id = id;
    if (free_slots_.empty()) {
      flow.slot = static_cast<std::uint32_t>(slot_epoch_.size());
      slot_epoch_.push_back(0);  // epochs start at 1: 0 is never current
    } else {
      flow.slot = free_slots_.back();
      free_slots_.pop_back();
      slot_epoch_[flow.slot] = 0;
    }
    flow.handle = handle;
    flow.remaining = static_cast<double>(handle->bytes);
    flow.rate_cap = opts.rate_cap;
    flow.last_update = sim_.now();
    // Register on the incidence index (ids are monotone, so appending keeps
    // each registry sorted) and seed the owning component for recompute.
    for (LinkId l : path) {
      links_[l].flows.push_back({&flow, flow.rate, id, flow.slot});
      seed_links_.push_back(l);
    }
    flow.path = std::move(path);
    bytes_started_ += flow.remaining;
    eta_insert(&flow);
    recompute_scope();
    rearm_completion();
  });
  return handle;
}

sim::Task Network::send(NodeId src, NodeId dst, Bytes bytes, TransferOptions opts) {
  auto handle = transfer(src, dst, bytes, opts);
  co_await handle->done->wait(sim_);
}

sim::Task Network::send_group(std::vector<GroupLeg> legs, TransferOptions opts) {
  std::vector<sim::EventPtr> done;
  done.reserve(legs.size());
  for (const GroupLeg& leg : legs) {
    done.push_back(transfer(leg.src, leg.dst, leg.bytes, opts)->done);
  }
  co_await sim::wait_all(sim_, std::move(done));
}

void Network::settle_flow(Flow& flow, double now) {
  const double dt = now - flow.last_update;
  if (dt > 0.0 && flow.rate > 0.0) {
    const double moved = std::min(flow.remaining, flow.rate * dt);
    flow.remaining -= moved;
    bytes_delivered_ += moved;
  }
  flow.last_update = now;
}

void Network::soa_clear() {
  fl_ptr_.clear();
  fl_cap_.clear();
  fl_old_.clear();
  fl_id_.clear();
  fl_edge_end_.clear();
  edges_.clear();
  cap_list_.clear();
  cap_runs_.clear();
  cap_min_ = kInf;
  n_real_caps_ = 0;
  twin_count_ = 0;
  squeezed_.clear();
}

void Network::soa_add_full(Flow* f) {
  if (std::isfinite(f->rate_cap)) {
    CapEnt ce;
    ce.cap = f->rate_cap;
    ce.fid = f->id;
    ce.idx = static_cast<std::uint32_t>(fl_ptr_.size());
    cap_list_.push_back(ce);
    cap_min_ = std::min(cap_min_, f->rate_cap);
  }
  fl_ptr_.push_back(f);
  fl_cap_.push_back(f->rate_cap);
  fl_old_.push_back(f->rate);
  fl_id_.push_back(f->id);
  for (LinkId l : f->path) {
    edges_.push_back(l);
    std::uint64_t& epoch = link_epoch_[l];
    if (epoch != scope_epoch_) {
      epoch = scope_epoch_;
      comp_links_.push_back(l);
    }
  }
  fl_edge_end_.push_back(static_cast<std::uint32_t>(edges_.size()));
}

void Network::collect_component(LinkId seed) {
  soa_clear();
  comp_links_.clear();
  link_epoch_[seed] = scope_epoch_;
  comp_links_.push_back(seed);
  // comp_links_ doubles as the BFS queue; every discovered link stays in it,
  // so afterwards it is exactly the component's link set.
  for (std::size_t head = 0; head < comp_links_.size(); ++head) {
    const LinkId at = comp_links_[head];
    for (const DirectedLink::RegEntry& e : links_[at].flows) {
      std::uint64_t& stamp = slot_epoch_[e.slot];
      if (stamp == scope_epoch_) continue;
      stamp = scope_epoch_;
      soa_add_full(e.flow);
    }
  }
  n_real_caps_ = static_cast<std::uint32_t>(cap_list_.size());
}

void Network::fill_component() {
  // Progressive filling over the collected links and flows. The result is a
  // pure function of the collected SET: each round freezes at the unique
  // minimum water level under the (level, link id) total order, cap
  // batches freeze in ascending (cap, flow id), and same-share freezes commute
  // bitwise, so discovery order — incremental seed vs. full sweep — cannot
  // affect a single bit of the computed rates (DESIGN.md "Incremental
  // max-min rate updates").
  NETSTAT(fills, 1);
  NETSTAT(flows, fl_ptr_.size());
  NETSTAT(links, comp_links_.size());
  NETSTAT(twins, twin_count_);
  [[maybe_unused]] const unsigned long long t0_ = NETSTAT_TSC();
  const std::uint32_t n = static_cast<std::uint32_t>(fl_ptr_.size());
  {
    std::uint32_t off = 0;
    for (LinkId l : comp_links_) {
      LinkFill& lf = link_fill_[l];
      const DirectedLink& link = links_[l];
      const std::uint32_t reg = static_cast<std::uint32_t>(link.flows.size());
      lf.residual = link.capacity;
      // The fill count is the registry size: implicit twins count toward
      // the water level even though they hold no fl_* slot.
      lf.count = static_cast<std::int32_t>(reg);
      // Stage the per-link member slices; registry size is an upper bound
      // (boundary links' implicit twins contribute no edges), the real
      // length is recomputed after the build.
      lf.moff = off;
      lf.mcur = off;
      lf.run = kNoRun;
      off += reg;
    }
    link_members_.resize(off);
    for (std::uint32_t ri = 0; ri < cap_runs_.size(); ++ri) {
      link_fill_[cap_runs_[ri].link].run = ri;
    }
  }
  {
    std::uint32_t e = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      for (; e < fl_edge_end_[i]; ++e) link_members_[link_fill_[edges_[e]].mcur++] = i;
    }
    // The build cursors are spent; record the filled slice lengths, then
    // repurpose the cursors as dense slot indices and seed the per-slot
    // water levels.
    levels_.resize(comp_links_.size());
    for (std::uint32_t j = 0; j < comp_links_.size(); ++j) {
      LinkFill& lf = link_fill_[comp_links_[j]];
      lf.reg = lf.mcur - lf.moff;
      lf.mcur = j;
      levels_[j] = lf.residual / lf.count;
    }
  }
  // Caps were gathered at collection time with a running minimum; ascending
  // (cap, flow id) order is materialized lazily below. A pass with no real
  // (finite rate_cap) entries carries only per-boundary-link twin runs,
  // which touch pairwise-disjoint links — firing them run by run subtracts
  // in the same per-link ascending order as the globally sorted list, bit
  // for bit, without ever sorting the whole list (DESIGN.md "Incremental
  // max-min rate updates"). A real cap can interleave with twins on a
  // shared link, so such passes use the monolithic global sort; the
  // full-recompute reference is always monolithic.
  double cap_min = cap_min_;
  const bool monolithic = n_real_caps_ > 0;
  bool caps_sorted = false;
  std::size_t cap_at = 0;
  const auto cap_less = [](const CapEnt& a, const CapEnt& b) {
    if (a.cap != b.cap) return a.cap < b.cap;
    return a.fid < b.fid;
  };

  fl_new_.resize(n);
  fl_frozen_.assign(n, 0);
  dirty_.clear();
  NETSTAT(build_cy, NETSTAT_TSC() - t0_);
  [[maybe_unused]] const unsigned long long t1_ = NETSTAT_TSC();
  std::uint32_t unfrozen = n + twin_count_;
  // Deferred level refresh with dedup: a dirtied slot's level is parked at
  // the -1.0 sentinel (real levels are >= 0) so each link is divided at
  // most once per round no matter how many freezes touch it.
  const auto mark_dirty = [&](LinkFill& lf, LinkId l) {
    double& lv = levels_[lf.mcur];
    if (lv != -1.0) {
      lv = -1.0;
      dirty_.push_back(l);
    }
  };
  // An implicit twin's freeze is one residual subtraction on its run's
  // link; the run cursor doubles as its frozen flag.
  const auto freeze_twin = [&](LinkId b, double rate) {
    LinkFill& lf = link_fill_[b];
    lf.residual = std::max(0.0, lf.residual - rate);
    --lf.count;
    mark_dirty(lf, b);
    --unfrozen;
  };
  const auto freeze = [&](std::uint32_t i, double rate) {
    fl_new_[i] = rate;
    fl_frozen_[i] = 1;
    --unfrozen;
    const std::uint32_t e0 = i == 0 ? 0 : fl_edge_end_[i - 1];
    for (std::uint32_t e = e0; e < fl_edge_end_[i]; ++e) {
      const LinkId l = edges_[e];
      LinkFill& lf = link_fill_[l];
      lf.residual = std::max(0.0, lf.residual - rate);
      --lf.count;
      mark_dirty(lf, l);
    }
  };

  // Slots past `live` hold spent links (no unfrozen members left); they can
  // never constrain again, so the per-round min-scan covers only the live
  // prefix, which shrinks as the fill progresses.
  std::uint32_t live = static_cast<std::uint32_t>(comp_links_.size());
  double share = kInf;
  LinkId bottleneck = -1;
  bool need_scan = true;
  while (unfrozen > 0) {
    if (need_scan) {
      NETSTAT(rounds, 1);
      for (LinkId l : dirty_) {
        LinkFill& lf = link_fill_[l];
        levels_[lf.mcur] = lf.count > 0 ? lf.residual / lf.count : kInf;
      }
      for (LinkId l : dirty_) {
        LinkFill& lf = link_fill_[l];
        if (lf.count <= 0 && lf.mcur < live) {
          --live;
          const std::uint32_t j = lf.mcur;
          LinkId& tail_link = comp_links_[live];
          double& tail_level = levels_[live];
          const LinkId moved = tail_link;
          comp_links_[j] = moved;
          levels_[j] = tail_level;
          tail_link = l;
          tail_level = kInf;
          link_fill_[moved].mcur = j;
          lf.mcur = live;
        }
      }
      dirty_.clear();
      // Lowest current water level = the bottleneck share; a round touches
      // a handful of links, so a linear min-scan beats any heap. Ties break
      // by smallest link id, giving the same (level, link id) total order
      // as a lazy heap of superseded levels would.
      share = kInf;
      bottleneck = -1;
      NETSTAT(scans, live);
      for (std::uint32_t j = 0; j < live; ++j) {
        const double lv = levels_[j];
        if (lv > share) continue;
        const LinkId l = comp_links_[j];
        if (lv < share || l < bottleneck) {
          share = lv;
          bottleneck = l;
        }
      }
    }
    need_scan = true;
    if (bottleneck < 0) {
      // No constraining link left: every remaining flow must be capped
      // (defensive — an unfrozen flow keeps a valid entry on each of its
      // links, so this is unreachable unless all remaining caps bind).
      if (monolithic) {
        if (!caps_sorted) {
          std::sort(cap_list_.begin(), cap_list_.end(), cap_less);
          caps_sorted = true;
        }
        for (; cap_at < cap_list_.size(); ++cap_at) {
          const std::uint32_t i = cap_list_[cap_at].idx;
          if (!fl_frozen_[i]) freeze(i, fl_cap_[i]);
        }
      } else {
        for (CapRun& r : cap_runs_) {
          if (!r.sorted) {
            std::sort(cap_list_.begin() + r.begin, cap_list_.begin() + r.end,
                      cap_less);
            r.sorted = true;
          }
          for (; r.at < r.end; ++r.at) freeze_twin(r.link, cap_list_[r.at].cap);
        }
      }
      break;
    }
    // Caps strictly below the bottleneck share freeze first — ascending
    // (cap, flow id) within each link — raising the water levels; then
    // re-derive the share.
    bool fired = false;
    if (cap_min < share) {
      if (monolithic) {
        if (!caps_sorted) {
          std::sort(cap_list_.begin(), cap_list_.end(), cap_less);
          caps_sorted = true;
        }
        while (cap_at < cap_list_.size()) {
          const CapEnt& ce = cap_list_[cap_at];
          if (ce.cap >= share) break;
          const std::uint32_t i = ce.idx;
          ++cap_at;
          if (!fl_frozen_[i]) {
            freeze(i, fl_cap_[i]);
            fired = true;
          }
        }
        cap_min = cap_at < cap_list_.size() ? cap_list_[cap_at].cap : kInf;
      } else {
        double new_min = kInf;
        for (CapRun& r : cap_runs_) {
          if (r.min < share) {
            // Sort each run only when it first fires; runs whose twins all
            // sit above the final water level are never sorted at all.
            if (!r.sorted) {
              std::sort(cap_list_.begin() + r.begin,
                        cap_list_.begin() + r.end, cap_less);
              r.sorted = true;
            }
            while (r.at < r.end && cap_list_[r.at].cap < share) {
              freeze_twin(r.link, cap_list_[r.at].cap);
              ++r.at;
              fired = true;
            }
            r.min = r.at < r.end ? cap_list_[r.at].cap : kInf;
          }
          new_min = std::min(new_min, r.min);
        }
        cap_min = new_min;
      }
    }
    if (fired) {
      // Cap freezes only raise the fired links' levels (a cap below the
      // share is below its link's level, so removing it lifts the level);
      // every other level is untouched. If the bottleneck itself was not
      // fired on, (share, bottleneck) is still the exact argmin of the
      // (level, link id) order and the refresh + rescan would reproduce it
      // bit for bit — skip both. Otherwise re-derive the share.
      if (levels_[link_fill_[bottleneck].mcur] == -1.0) {
        continue;
      }
      need_scan = false;
      continue;
    }
    // Freeze every unfrozen flow crossing the bottleneck at the share.
    // Same-share freezes commute bitwise (equal subtrahends, total-order
    // heap), so the member slice's build order is immaterial — and so is
    // the reals-then-twins split below.
    LinkFill& lfb = link_fill_[bottleneck];
    const std::uint32_t m0 = lfb.moff;
    const std::uint32_t m1 = m0 + lfb.reg;
    for (std::uint32_t m = m0; m < m1; ++m) {
      const std::uint32_t i = link_members_[m];
      if (!fl_frozen_[i]) freeze(i, share);
    }
    if (lfb.run != kNoRun) {
      CapRun& r = cap_runs_[lfb.run];
      if (r.at < r.end) {
        // The link's unfired twins freeze at the share like any member.
        // All remaining caps are >= share here (a lower cap would have
        // fired above); one strictly above it is a squeezed twin — its
        // true share changed, so its path must join S (rare: forces
        // another expansion iteration).
        for (std::uint32_t q = r.at; q < r.end; ++q) {
          const CapEnt& ce = cap_list_[q];
          if (ce.cap > share) squeezed_.push_back(ce.flow);
          lfb.residual = std::max(0.0, lfb.residual - share);
        }
        lfb.count -= static_cast<std::int32_t>(r.end - r.at);
        unfrozen -= r.end - r.at;
        mark_dirty(lfb, bottleneck);
        r.at = r.end;
        r.min = kInf;
      }
    }
  }
  NETSTAT(round_cy, NETSTAT_TSC() - t1_);
}

void Network::apply_component() {
  [[maybe_unused]] const unsigned long long t0_ = NETSTAT_TSC();
  const double now = sim_.now();
  const std::uint32_t n = static_cast<std::uint32_t>(fl_ptr_.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    const double rate = fl_new_[i];
    if (rate == fl_old_[i]) continue;  // bit-identical: keep settle state + deadline
    Flow* f = fl_ptr_[i];
    settle_flow(*f, now);
    f->rate = rate;
    // Keep the registry rate mirrors current (registries are id-sorted).
    for (LinkId l : f->path) {
      auto& reg = links_[l].flows;
      auto it = std::lower_bound(
          reg.begin(), reg.end(), f->id,
          [](const DirectedLink::RegEntry& e, std::uint64_t id) { return e.id < id; });
      it->rate = rate;
    }
    f->deadline = f->remaining <= kByteEpsilon
                      ? now
                      : (rate > 0.0 ? now + f->remaining / rate : kInf);
    eta_update(f);
  }
  NETSTAT(apply_cy, NETSTAT_TSC() - t0_);
}

void Network::recompute_scope() {
  // Dedupe the accumulated seeds into the in-scope link set S, dropping
  // links with empty registries (nothing to re-rate there).
  ++scope_id_;
  scope_links_.clear();
  for (LinkId l : seed_links_) {
    std::uint64_t& mark = link_scope_[l];
    if (mark == scope_id_) continue;
    mark = scope_id_;
    if (!links_[l].flows.empty()) scope_links_.push_back(l);
  }
  seed_links_.clear();
  if (scope_links_.empty()) return;
  NETSTAT(rc, 1);
  [[maybe_unused]] const unsigned long long trc_ = NETSTAT_TSC();
  // Fixpoint expansion: fill over S plus its boundary ring, then grow S
  // along the paths of flows whose computed rate changed bitwise, and
  // refill. Every flow on an S link participates fully; each out-of-scope
  // link crossed by such a flow joins with its remaining flows as virtual
  // participants capped at their current rate, which reproduces the
  // boundary link's exact water-level trajectory as long as those rates
  // hold. Rate changes can only reach a flow through a link some crossing
  // flow changed on, so once no changed flow crosses an out-of-S link the
  // in-scope rates equal the full per-component fill bit for bit and every
  // out-of-scope rate is untouched (DESIGN.md "Incremental max-min rate
  // updates"). Worst case S grows to the whole component and this
  // degenerates to the full fill.
  while (true) {
    ++scope_epoch_;
    [[maybe_unused]] const unsigned long long tc_ = NETSTAT_TSC();
    soa_clear();
    comp_links_.clear();
    {
      for (LinkId l : scope_links_) {
        link_epoch_[l] = scope_epoch_;
        comp_links_.push_back(l);
      }
      // Full participants: every flow crossing an S link. soa_add_full
      // appends their out-of-S path links to comp_links_ — that tail is
      // exactly the boundary ring.
      for (LinkId l : scope_links_) {
        const auto& reg = links_[l].flows;
        const std::size_t rn = reg.size();
        for (std::size_t k = 0; k < rn; ++k) {
          const DirectedLink::RegEntry& e = reg[k];
          std::uint64_t& stamp = slot_epoch_[e.slot];
          if (stamp == scope_epoch_) continue;
          stamp = scope_epoch_;
          __builtin_prefetch(&e.flow->path);
          soa_add_full(e.flow);
        }
      }
      // Boundary (virtual) participants, straight off the registry mirrors:
      // capped at their current rate, one entry per boundary link crossed.
      // A flow crossing two boundary links gets two single-edge twins; both
      // freeze at the same cap on disjoint links, so the subtractions
      // commute bitwise with the single two-edge formulation (a twin only
      // freezes below its cap when its link would squeeze it, and that
      // marks the flow changed, which forces another expansion iteration —
      // so twins never disagree in the iteration whose rates are applied).
      // In-scope members of a boundary registry already joined as full
      // participants above and carry this iteration's visit stamp, which
      // skips them here.
      n_real_caps_ = static_cast<std::uint32_t>(cap_list_.size());
      if (n_real_caps_ > 0) {
        // Real caps present: this pass sorts one monolithic cap list, so
        // twins need fl_* slots like everyone else.
        for (std::size_t bi = scope_links_.size(); bi < comp_links_.size();
             ++bi) {
          const LinkId b = comp_links_[bi];
          const auto& breg = links_[b].flows;
          const std::size_t bn = breg.size();
          for (std::size_t k = 0; k < bn; ++k) {
            const DirectedLink::RegEntry& e = breg[k];
            if (slot_epoch_[e.slot] == scope_epoch_) continue;
            CapEnt ce;
            ce.cap = e.rate;
            ce.fid = e.id;
            ce.idx = static_cast<std::uint32_t>(fl_ptr_.size());
            cap_list_.push_back(ce);
            if (e.rate < cap_min_) cap_min_ = e.rate;
            fl_ptr_.push_back(e.flow);
            fl_cap_.push_back(e.rate);  // its bottleneck lies outside S
            fl_old_.push_back(e.rate);
            fl_id_.push_back(e.id);
            edges_.push_back(b);
            fl_edge_end_.push_back(static_cast<std::uint32_t>(edges_.size()));
          }
        }
      } else {
        // No real caps: twins stay implicit — one cap-run entry each,
        // no fl_* slot, no edge. Their link's fill count still includes
        // them (it is the registry size), and a freeze is a single
        // residual subtraction handled through the run.
        for (std::size_t bi = scope_links_.size(); bi < comp_links_.size();
             ++bi) {
          const LinkId b = comp_links_[bi];
          const auto& breg = links_[b].flows;
          const std::size_t bn = breg.size();
          const std::uint32_t run_begin =
              static_cast<std::uint32_t>(cap_list_.size());
          double run_min = kInf;
          for (std::size_t k = 0; k < bn; ++k) {
            const DirectedLink::RegEntry& e = breg[k];
            if (slot_epoch_[e.slot] == scope_epoch_) continue;
            CapEnt ce;
            ce.cap = e.rate;
            ce.fid = e.id;
            ce.flow = e.flow;
            cap_list_.push_back(ce);
            if (e.rate < run_min) run_min = e.rate;
          }
          const std::uint32_t run_end =
              static_cast<std::uint32_t>(cap_list_.size());
          if (run_end > run_begin) {
            CapRun r;
            r.begin = r.at = run_begin;
            r.end = run_end;
            r.link = b;
            r.min = run_min;
            cap_runs_.push_back(r);
            twin_count_ += run_end - run_begin;
            if (run_min < cap_min_) cap_min_ = run_min;
          }
        }
      }
    }
    NETSTAT(collect_cy, NETSTAT_TSC() - tc_);
    fill_component();
    bool grew = false;
    const std::uint32_t n = static_cast<std::uint32_t>(fl_ptr_.size());
    for (std::uint32_t i = 0; i < n; ++i) {
      if (fl_new_[i] == fl_old_[i]) continue;
      for (LinkId l : fl_ptr_[i]->path) {
        std::uint64_t& mark = link_scope_[l];
        if (mark == scope_id_) continue;
        mark = scope_id_;
        scope_links_.push_back(l);  // registry holds this flow: never empty
        grew = true;
      }
    }
    // Squeezed implicit twins froze below their held rate: changed flows,
    // so their paths join S the same way.
    for (Flow* f : squeezed_) {
      for (LinkId l : f->path) {
        std::uint64_t& mark = link_scope_[l];
        if (mark == scope_id_) continue;
        mark = scope_id_;
        scope_links_.push_back(l);
        grew = true;
      }
    }
    if (!grew) break;
  }
  apply_component();
  NETSTAT(total_cy, NETSTAT_TSC() - trc_);
}

bool Network::rates_match_full_recompute() {
  ++scope_epoch_;
  bool match = true;
  for (auto& [id, flow] : flows_) {
    if (slot_epoch_[flow.slot] == scope_epoch_) continue;
    collect_component(flow.path.front());
    fill_component();
    const std::uint32_t n = static_cast<std::uint32_t>(fl_ptr_.size());
    for (std::uint32_t i = 0; i < n; ++i) {
      match = match && fl_new_[i] == fl_ptr_[i]->rate;
    }
  }
  return match;
}

void Network::rearm_completion() {
  const double eta = eta_heap_.empty() ? kInf : eta_heap_.front()->deadline;
  if (eta == armed_eta_) return;  // the pending event is still the right one
  armed_eta_ = eta;
  const std::uint64_t gen = ++completion_gen_;  // supersede any stale event
  if (!std::isfinite(eta)) return;  // all flows starved; rearmed on change
  sim_.schedule(std::max(0.0, eta - sim_.now()),
                [this, gen] { on_completion(gen); });
}

void Network::on_completion(std::uint64_t gen) {
  if (gen != completion_gen_) return;  // superseded by a newer rate change
  armed_eta_ = kInf;
  const double now = sim_.now();
  // Pop every due flow off the completion index. A flow is due at its
  // deadline, or when its projected remaining dips under the byte epsilon
  // (guards against a zero-progress re-arm at the same timestamp).
  while (!eta_heap_.empty()) {
    Flow* f = eta_heap_.front();
    const bool due = f->deadline <= now ||
                     f->remaining - f->rate * (now - f->last_update) <= kByteEpsilon;
    if (!due) break;
    // finish_flow fires handles via deferred events, so no callback can
    // re-enter while we drain the heap.
    finish_flow(f->id, /*failed=*/false);
  }
  recompute_scope();  // seeds accumulated by finish_flow
  rearm_completion();
}

void Network::finish_flow(std::uint64_t id, bool failed) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow& flow = it->second;
  auto handle = flow.handle;
  settle_flow(flow, sim_.now());
  if (failed) {
    bytes_dropped_ += std::max(0.0, flow.remaining);
  } else {
    // Account any residual rounding as delivered.
    bytes_delivered_ += std::max(0.0, flow.remaining);
  }
  for (LinkId l : flow.path) {
    auto& v = links_[l].flows;
    v.erase(std::remove_if(v.begin(), v.end(),
                           [&flow](const DirectedLink::RegEntry& e) {
                             return e.flow == &flow;
                           }),
            v.end());
    seed_links_.push_back(l);
  }
  eta_erase(&flow);
  free_slots_.push_back(flow.slot);
  flows_.erase(it);
  handle->failed = failed;
  handle->finish_time = sim_.now();
  handle->done->trigger(sim_);
}

// --- completion index (indexed binary min-heap) ------------------------------

void Network::eta_sift_up(std::size_t i) {
  Flow** h = eta_heap_.data();
  Flow* f = h[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    Flow* p = h[parent];
    if (!eta_less(f, p)) break;
    // chase-lint: allow(hot-relookup) hole sift: i moves every iteration, so h[i] names a fresh slot each time
    h[i] = p;
    p->heap_pos = i;
    i = parent;
  }
  h[i] = f;
  f->heap_pos = i;
}

void Network::eta_sift_down(std::size_t i) {
  Flow** h = eta_heap_.data();
  Flow* f = h[i];
  const std::size_t n = eta_heap_.size();
  while (true) {
    std::size_t best = 2 * i + 1;
    if (best >= n) break;
    if (best + 1 < n && eta_less(h[best + 1], h[best])) ++best;
    Flow* b = h[best];
    if (!eta_less(b, f)) break;
    // chase-lint: allow(hot-relookup) hole sift: i moves every iteration, so h[i] names a fresh slot each time
    h[i] = b;
    b->heap_pos = i;
    i = best;
  }
  h[i] = f;
  f->heap_pos = i;
}

void Network::eta_insert(Flow* f) {
  f->heap_pos = eta_heap_.size();
  eta_heap_.push_back(f);
  eta_sift_up(f->heap_pos);
}

void Network::eta_erase(Flow* f) {
  const std::size_t i = f->heap_pos;
  const std::size_t last = eta_heap_.size() - 1;
  if (i != last) {
    Flow* moved = eta_heap_[last];
    eta_heap_[i] = moved;
    moved->heap_pos = i;
  }
  eta_heap_.pop_back();
  if (i < eta_heap_.size()) {
    eta_sift_down(i);
    eta_sift_up(i);
  }
  f->heap_pos = kNoHeapPos;
}

void Network::eta_update(Flow* f) {
  eta_sift_up(f->heap_pos);
  eta_sift_down(f->heap_pos);
}

// --- introspection -----------------------------------------------------------

double Network::node_tx_rate(NodeId id) const {
  double r = 0.0;
  for (const auto& [fid, flow] : flows_) {
    if (flow.handle->src == id) r += flow.rate;
  }
  return r;
}

double Network::node_rx_rate(NodeId id) const {
  double r = 0.0;
  for (const auto& [fid, flow] : flows_) {
    if (flow.handle->dst == id) r += flow.rate;
  }
  return r;
}

double Network::total_flow_rate() const {
  double r = 0.0;
  for (const auto& [fid, flow] : flows_) r += flow.rate;
  return r;
}

double Network::total_bytes_delivered() const {
  // Lazy settlement: add each active flow's accrued-but-unsettled progress
  // on top of the settled ledger. Pure observation; flow state untouched.
  double total = bytes_delivered_;
  const double now = sim_.now();
  for (const auto& [id, flow] : flows_) {
    const double dt = now - flow.last_update;
    if (dt > 0.0 && flow.rate > 0.0) {
      total += std::min(flow.remaining, flow.rate * dt);
    }
  }
  return total;
}

double Network::link_utilization(LinkId id) const {
  const auto& link = links_.at(id);
  double used = 0.0;
  for (const auto& e : link.flows) used += e.rate;
  return used / link.capacity;
}

void Network::check_invariants() const {
  const double now = sim_.now();
  double in_flight = 0.0;
  for (const auto& [id, flow] : flows_) {
    const double total = static_cast<double>(flow.handle->bytes);
    in_flight += flow.remaining;
    CHASE_INVARIANT(flow.remaining >= -kByteEpsilon && flow.remaining <= total + kByteEpsilon,
                    "flow remaining outside [0, bytes]: " + node_name(flow.handle->src) +
                        " -> " + node_name(flow.handle->dst));
    CHASE_INVARIANT(flow.rate >= 0.0 && flow.rate <= flow.rate_cap * (1.0 + 1e-9),
                    "flow rate negative or above its cap");
    CHASE_INVARIANT(!flow.path.empty(), "active flow with empty path");
    CHASE_INVARIANT(flow.last_update <= now + 1e-12, "flow settled in the future");
    CHASE_INVARIANT(flow.id == id, "flow id diverged from its map key");
    // Conservation: a flow never runs past its byte count before its
    // completion event fires — remaining covers rate * elapsed.
    CHASE_INVARIANT(
        flow.remaining - flow.rate * (now - flow.last_update) >=
            -kByteEpsilon - 1e-9 * total,
        "in-flight bytes not conserved (flow overran its remaining byte count)");
    // The completion index holds exactly this flow at its recorded slot,
    // keyed by a deadline that matches the flow's settle state bit-for-bit.
    CHASE_INVARIANT(flow.heap_pos < eta_heap_.size() &&
                        eta_heap_[flow.heap_pos] == &flow,
                    "flow absent from the completion index (or slot stale)");
    const double expected_deadline =
        flow.remaining <= kByteEpsilon
            ? flow.last_update
            : (flow.rate > 0.0 ? flow.last_update + flow.remaining / flow.rate
                               : kInf);
    CHASE_INVARIANT(flow.deadline == expected_deadline,
                    "completion deadline inconsistent with remaining/rate");
    // Path structure: contiguous src -> dst chain over live nodes, and the
    // flow is registered on each link it occupies.
    NodeId at = flow.handle->src;
    for (LinkId l : flow.path) {
      CHASE_INVARIANT(l >= 0 && l < static_cast<LinkId>(links_.size()),
                      "flow path references an unknown link");
      const DirectedLink& link = links_[static_cast<std::size_t>(l)];
      CHASE_INVARIANT(link.from == at, "flow path is not a contiguous route");
      CHASE_INVARIANT(nodes_[static_cast<std::size_t>(link.from)].up &&
                          nodes_[static_cast<std::size_t>(link.to)].up,
                      "flow routed through a down node (should have failed)");
      CHASE_INVARIANT(link.up, "flow routed over a partitioned link (should have failed)");
      CHASE_AUDIT(std::find_if(link.flows.begin(), link.flows.end(),
                               [&flow](const DirectedLink::RegEntry& e) {
                                 return e.flow == &flow;
                               }) != link.flows.end(),
                  "flow missing from its link's incidence registry");
      at = link.to;
    }
    CHASE_INVARIANT(at == flow.handle->dst, "flow path does not end at its destination");
  }
  // Incidence registries only reference live flows in ascending id order,
  // and max-min fair rates never oversubscribe a link's capacity.
  std::size_t registered = 0;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const DirectedLink& link = links_[i];
    double used = 0.0;
    std::uint64_t prev_id = 0;
    bool first = true;
    for (const auto& e : link.flows) {
      CHASE_INVARIANT(first || e.id > prev_id,
                      "link incidence registry out of ascending id order");
      first = false;
      prev_id = e.id;
      // The lean boundary scan trusts these mirrors instead of chasing the
      // Flow pointer; a stale mirror would silently skew boundary caps.
      CHASE_INVARIANT(e.id == e.flow->id && e.rate == e.flow->rate,
                      "registry mirror diverged from its flow (id or rate)");
      used += e.rate;
    }
    registered += link.flows.size();
    CHASE_INVARIANT(used <= link.capacity * (1.0 + 1e-6),
                    "link oversubscribed: " + node_name(link.from) + " -> " +
                        node_name(link.to));
    CHASE_INVARIANT(link.base_capacity > 0.0 && link.capacity > 0.0,
                    "link with non-positive capacity");
    CHASE_INVARIANT(links_[partner_of(static_cast<LinkId>(i))].up == link.up,
                    "full-duplex pair with divergent up/down state");
  }
  // Every registry slot was matched by some flow's path above iff the
  // per-flow membership audit passed; the totals must agree regardless.
  std::size_t path_slots = 0;
  for (const auto& [id, flow] : flows_) path_slots += flow.path.size();
  CHASE_INVARIANT(registered == path_slots,
                  "incidence registry size diverged from the flow paths");
  // Completion index: one slot per active flow, min-heap ordered.
  CHASE_INVARIANT(eta_heap_.size() == flows_.size(),
                  "completion index size diverged from the active flow set");
  for (std::size_t i = 1; i < eta_heap_.size(); ++i) {
    CHASE_INVARIANT(!eta_less(eta_heap_[i], eta_heap_[(i - 1) / 2]),
                    "completion index violates the heap property");
  }
  // Lazy-settlement conservation: everything admitted is settled, dropped,
  // or still in flight (tolerance covers fp accumulation over many settles).
  CHASE_INVARIANT(bytes_delivered_ >= 0.0 && bytes_dropped_ >= 0.0,
                  "byte ledger went negative");
  CHASE_INVARIANT(
      std::abs(bytes_started_ - bytes_delivered_ - bytes_dropped_ - in_flight) <=
          1e-6 * std::max(1.0, bytes_started_) + kByteEpsilon,
      "byte conservation violated: started != delivered + dropped + in-flight");
}

}  // namespace chase::net
