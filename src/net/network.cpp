#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <stdexcept>

#include "util/check.hpp"

namespace chase::net {

namespace {
constexpr double kByteEpsilon = 0.5;  // flows within half a byte are done
}

NodeId Network::add_node(std::string name) {
  nodes_.push_back(Node{std::move(name), true, {}});
  invalidate_routes();
  return static_cast<NodeId>(nodes_.size() - 1);
}

LinkId Network::add_link(NodeId a, NodeId b, double bandwidth_bps, double latency_s) {
  assert(a >= 0 && a < static_cast<NodeId>(nodes_.size()));
  assert(b >= 0 && b < static_cast<NodeId>(nodes_.size()));
  assert(bandwidth_bps > 0.0);
  const LinkId forward = static_cast<LinkId>(links_.size());
  links_.push_back(DirectedLink{a, b, bandwidth_bps, latency_s, bandwidth_bps, true, {}});
  links_.push_back(DirectedLink{b, a, bandwidth_bps, latency_s, bandwidth_bps, true, {}});
  nodes_[a].out.push_back(forward);
  nodes_[b].out.push_back(forward + 1);
  invalidate_routes();
  return forward;
}

void Network::set_node_up(NodeId id, bool up) {
  if (nodes_.at(id).up == up) return;
  nodes_[id].up = up;
  invalidate_routes();
  if (!up) {
    // Fail every flow whose path touches the node.
    std::vector<std::uint64_t> doomed;
    for (const auto& [fid, flow] : flows_) {
      if (flow.handle->src == id || flow.handle->dst == id) {
        doomed.push_back(fid);
        continue;
      }
      for (LinkId l : flow.path) {
        if (links_[l].from == id || links_[l].to == id) {
          doomed.push_back(fid);
          break;
        }
      }
    }
    for (auto fid : doomed) fail_flow(fid);
  }
}

void Network::set_link_up(LinkId id, bool up) {
  const LinkId partner = partner_of(id);
  if (links_.at(id).up == up) return;
  links_[id].up = up;
  links_[partner].up = up;
  invalidate_routes();
  if (!up) {
    // Fail every flow routed over either direction of the pair.
    std::vector<std::uint64_t> doomed;
    for (const auto& [fid, flow] : flows_) {
      for (LinkId l : flow.path) {
        if (l == id || l == partner) {
          doomed.push_back(fid);
          break;
        }
      }
    }
    for (auto fid : doomed) fail_flow(fid);
  }
}

void Network::set_link_bandwidth_factor(LinkId id, double factor) {
  assert(factor > 0.0);
  const LinkId partner = partner_of(id);
  settle_progress();
  links_.at(id).capacity = links_[id].base_capacity * factor;
  links_[partner].capacity = links_[partner].base_capacity * factor;
  recompute_rates();
  schedule_next_completion();
}

double Network::link_bandwidth_factor(LinkId id) const {
  const auto& link = links_.at(id);
  return link.capacity / link.base_capacity;
}

LinkId Network::find_link(NodeId a, NodeId b) const {
  for (LinkId l : nodes_.at(a).out) {
    if (links_[l].to == b) return l;
  }
  return -1;
}

std::vector<LinkId> Network::route(NodeId src, NodeId dst) {
  const auto key = std::make_pair(src, dst);
  if (auto it = route_cache_.find(key); it != route_cache_.end()) return it->second;

  // BFS by hop count; deterministic tie-break by link id order.
  std::vector<LinkId> via(nodes_.size(), -1);
  std::vector<bool> seen(nodes_.size(), false);
  std::deque<NodeId> q;
  seen[src] = true;
  q.push_back(src);
  while (!q.empty() && !seen[dst]) {
    NodeId n = q.front();
    q.pop_front();
    for (LinkId l : nodes_[n].out) {
      if (!links_[l].up) continue;
      NodeId next = links_[l].to;
      if (seen[next] || !nodes_[next].up) continue;
      seen[next] = true;
      via[next] = l;
      q.push_back(next);
    }
  }
  std::vector<LinkId> path;
  if (seen[dst]) {
    for (NodeId n = dst; n != src; n = links_[via[n]].from) path.push_back(via[n]);
    std::reverse(path.begin(), path.end());
  }
  route_cache_[key] = path;
  return path;
}

bool Network::reachable(NodeId src, NodeId dst) {
  if (!nodes_.at(src).up || !nodes_.at(dst).up) return false;
  return src == dst || !route(src, dst).empty();
}

TransferPtr Network::transfer(NodeId src, NodeId dst, Bytes bytes, TransferOptions opts) {
  auto handle = std::make_shared<Transfer>();
  handle->src = src;
  handle->dst = dst;
  handle->bytes = bytes;
  handle->start_time = sim_.now();

  if (!nodes_.at(src).up || !nodes_.at(dst).up) {
    handle->failed = true;
    handle->finish_time = sim_.now();
    handle->done->trigger(sim_);
    return handle;
  }

  double latency = opts.extra_latency;
  std::vector<LinkId> path;
  if (src != dst) {
    path = route(src, dst);
    if (path.empty()) {
      handle->failed = true;
      handle->finish_time = sim_.now();
      handle->done->trigger(sim_);
      return handle;
    }
    for (LinkId l : path) latency += links_[l].latency;
  }

  if (bytes == 0 || src == dst) {
    // Local copies and pure control messages pay latency only.
    sim_.schedule(latency, [this, handle] {
      handle->finish_time = sim_.now();
      bytes_delivered_ += static_cast<double>(handle->bytes);
      handle->done->trigger(sim_);
    });
    return handle;
  }

  // The flow starts after the path latency (slow-start abstracted away).
  sim_.schedule(latency, [this, handle, path = std::move(path), opts] {
    if (handle->failed) return;
    // Re-check liveness at flow start.
    for (LinkId l : path) {
      if (!links_[l].up || !nodes_[links_[l].from].up || !nodes_[links_[l].to].up) {
        handle->failed = true;
        handle->finish_time = sim_.now();
        handle->done->trigger(sim_);
        return;
      }
    }
    settle_progress();
    const std::uint64_t id = next_flow_id_++;
    Flow flow;
    flow.handle = handle;
    flow.path = path;
    flow.remaining = static_cast<double>(handle->bytes);
    flow.rate_cap = opts.rate_cap;
    flow.last_update = sim_.now();
    for (LinkId l : path) links_[l].flow_ids.push_back(id);
    flows_.emplace(id, std::move(flow));
    recompute_rates();
    schedule_next_completion();
  });
  return handle;
}

sim::Task Network::send(NodeId src, NodeId dst, Bytes bytes, TransferOptions opts) {
  auto handle = transfer(src, dst, bytes, opts);
  co_await handle->done->wait(sim_);
}

void Network::settle_progress() {
  const double now = sim_.now();
  for (auto& [id, flow] : flows_) {
    const double dt = now - flow.last_update;
    if (dt > 0.0 && flow.rate > 0.0) {
      const double moved = std::min(flow.remaining, flow.rate * dt);
      flow.remaining -= moved;
      bytes_delivered_ += moved;
    }
    flow.last_update = now;
  }
}

void Network::recompute_rates() {
  // Progressive filling (max-min fairness) with per-flow rate caps.
  struct LinkState {
    double residual;
    int count;
  };
  std::vector<LinkState> ls(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    ls[i] = {links_[i].capacity, 0};
  }
  std::map<std::uint64_t, double> pending;  // unassigned flows -> cap
  for (auto& [id, flow] : flows_) {
    pending[id] = flow.rate_cap;
    for (LinkId l : flow.path) ++ls[l].count;
  }

  auto freeze_flow = [&](std::uint64_t id, double rate) {
    flows_[id].rate = rate;
    for (LinkId l : flows_[id].path) {
      ls[l].residual = std::max(0.0, ls[l].residual - rate);
      --ls[l].count;
    }
    pending.erase(id);
  };

  while (!pending.empty()) {
    // Bottleneck share among links that still carry unassigned flows.
    double share = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < links_.size(); ++i) {
      if (ls[i].count > 0) share = std::min(share, ls[i].residual / ls[i].count);
    }
    // Any flow whose cap is below the bottleneck share freezes at its cap.
    bool froze_capped = false;
    for (auto it = pending.begin(); it != pending.end();) {
      const auto id = it->first;
      const double cap = it->second;
      ++it;
      if (cap < share) {
        freeze_flow(id, cap);
        froze_capped = true;
      }
    }
    if (froze_capped) continue;  // shares changed; recompute
    if (!std::isfinite(share)) {
      // No constraining link (e.g. all flows capped and handled above).
      for (auto it = pending.begin(); it != pending.end();) {
        const auto id = it->first;
        ++it;
        freeze_flow(id, flows_[id].rate_cap);
      }
      break;
    }
    // Freeze all unassigned flows crossing the bottleneck link at `share`.
    LinkId bottleneck = -1;
    for (std::size_t i = 0; i < links_.size(); ++i) {
      if (ls[i].count > 0 && ls[i].residual / ls[i].count <= share * (1.0 + 1e-9) + 1e-9) {
        bottleneck = static_cast<LinkId>(i);
        break;
      }
    }
    assert(bottleneck >= 0);
    std::vector<std::uint64_t> on_link;
    for (std::uint64_t fid : links_[bottleneck].flow_ids) {
      if (pending.count(fid)) on_link.push_back(fid);
    }
    for (std::uint64_t fid : on_link) freeze_flow(fid, share);
  }
}

void Network::schedule_next_completion() {
  const std::uint64_t gen = ++completion_gen_;
  double eta = std::numeric_limits<double>::infinity();
  for (const auto& [id, flow] : flows_) {
    if (flow.remaining <= kByteEpsilon) {
      eta = 0.0;
      break;
    }
    if (flow.rate > 0.0) eta = std::min(eta, flow.remaining / flow.rate);
  }
  if (!std::isfinite(eta)) return;  // all flows starved; rearmed on change
  sim_.schedule(eta, [this, gen] {
    if (gen != completion_gen_) return;  // superseded by a newer rate change
    settle_progress();
    std::vector<std::uint64_t> finished;
    for (const auto& [id, flow] : flows_) {
      if (flow.remaining <= kByteEpsilon) finished.push_back(id);
    }
    for (auto id : finished) finish_flow(id, /*failed=*/false);
    recompute_rates();
    schedule_next_completion();
  });
}

void Network::finish_flow(std::uint64_t id, bool failed) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  auto handle = it->second.handle;
  if (!failed) {
    // Account any residual rounding as delivered.
    bytes_delivered_ += std::max(0.0, it->second.remaining);
  }
  for (LinkId l : it->second.path) {
    auto& v = links_[l].flow_ids;
    v.erase(std::remove(v.begin(), v.end(), id), v.end());
  }
  flows_.erase(it);
  handle->failed = failed;
  handle->finish_time = sim_.now();
  handle->done->trigger(sim_);
}

void Network::fail_flow(std::uint64_t id) {
  settle_progress();
  finish_flow(id, /*failed=*/true);
  recompute_rates();
  schedule_next_completion();
}

double Network::node_tx_rate(NodeId id) const {
  double r = 0.0;
  for (const auto& [fid, flow] : flows_) {
    if (flow.handle->src == id) r += flow.rate;
  }
  return r;
}

double Network::node_rx_rate(NodeId id) const {
  double r = 0.0;
  for (const auto& [fid, flow] : flows_) {
    if (flow.handle->dst == id) r += flow.rate;
  }
  return r;
}

double Network::total_flow_rate() const {
  double r = 0.0;
  for (const auto& [fid, flow] : flows_) r += flow.rate;
  return r;
}

void Network::check_invariants() const {
  const double now = sim_.now();
  for (const auto& [id, flow] : flows_) {
    const double total = static_cast<double>(flow.handle->bytes);
    CHASE_INVARIANT(flow.remaining >= -kByteEpsilon && flow.remaining <= total + kByteEpsilon,
                    "flow remaining outside [0, bytes]: " + node_name(flow.handle->src) +
                        " -> " + node_name(flow.handle->dst));
    CHASE_INVARIANT(flow.rate >= 0.0 && flow.rate <= flow.rate_cap * (1.0 + 1e-9),
                    "flow rate negative or above its cap");
    CHASE_INVARIANT(!flow.path.empty(), "active flow with empty path");
    CHASE_INVARIANT(flow.last_update <= now + 1e-12, "flow settled in the future");
    // Conservation: a flow never runs past its byte count before its
    // completion event fires — remaining covers rate * elapsed.
    CHASE_INVARIANT(
        flow.remaining - flow.rate * (now - flow.last_update) >=
            -kByteEpsilon - 1e-9 * total,
        "in-flight bytes not conserved (flow overran its remaining byte count)");
    // Path structure: contiguous src -> dst chain over live nodes, and the
    // flow is registered on each link it occupies.
    NodeId at = flow.handle->src;
    for (LinkId l : flow.path) {
      CHASE_INVARIANT(l >= 0 && l < static_cast<LinkId>(links_.size()),
                      "flow path references an unknown link");
      const DirectedLink& link = links_[static_cast<std::size_t>(l)];
      CHASE_INVARIANT(link.from == at, "flow path is not a contiguous route");
      CHASE_INVARIANT(nodes_[static_cast<std::size_t>(link.from)].up &&
                          nodes_[static_cast<std::size_t>(link.to)].up,
                      "flow routed through a down node (should have failed)");
      CHASE_INVARIANT(link.up, "flow routed over a partitioned link (should have failed)");
      CHASE_AUDIT(std::find(link.flow_ids.begin(), link.flow_ids.end(), id) !=
                      link.flow_ids.end(),
                  "flow missing from its link's flow registry");
      at = link.to;
    }
    CHASE_INVARIANT(at == flow.handle->dst, "flow path does not end at its destination");
  }
  // Link registries only reference live flows, and max-min fair rates never
  // oversubscribe a link's capacity.
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const DirectedLink& link = links_[i];
    double used = 0.0;
    for (std::uint64_t fid : link.flow_ids) {
      auto it = flows_.find(fid);
      CHASE_INVARIANT(it != flows_.end(), "link registry references a finished flow");
      if (it != flows_.end()) used += it->second.rate;
    }
    CHASE_INVARIANT(used <= link.capacity * (1.0 + 1e-6),
                    "link oversubscribed: " + node_name(link.from) + " -> " +
                        node_name(link.to));
    CHASE_INVARIANT(link.base_capacity > 0.0 && link.capacity > 0.0,
                    "link with non-positive capacity");
    CHASE_INVARIANT(links_[partner_of(static_cast<LinkId>(i))].up == link.up,
                    "full-duplex pair with divergent up/down state");
  }
  CHASE_INVARIANT(bytes_delivered_ >= 0.0, "delivered byte counter went negative");
}

double Network::link_utilization(LinkId id) const {
  const auto& link = links_.at(id);
  double used = 0.0;
  for (std::uint64_t fid : link.flow_ids) {
    auto it = flows_.find(fid);
    if (it != flows_.end()) used += it->second.rate;
  }
  return used / link.capacity;
}

}  // namespace chase::net
