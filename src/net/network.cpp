#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace chase::net {

namespace {
constexpr double kByteEpsilon = 0.5;  // flows within half a byte are done
}

NodeId Network::add_node(std::string name) {
  nodes_.push_back(Node{std::move(name), true, {}});
  invalidate_routes();
  return static_cast<NodeId>(nodes_.size() - 1);
}

LinkId Network::add_link(NodeId a, NodeId b, double bandwidth_bps, double latency_s) {
  assert(a >= 0 && a < static_cast<NodeId>(nodes_.size()));
  assert(b >= 0 && b < static_cast<NodeId>(nodes_.size()));
  assert(bandwidth_bps > 0.0);
  const LinkId forward = static_cast<LinkId>(links_.size());
  links_.push_back(DirectedLink{a, b, bandwidth_bps, latency_s, bandwidth_bps, true, {}});
  links_.push_back(DirectedLink{b, a, bandwidth_bps, latency_s, bandwidth_bps, true, {}});
  // Pre-size the per-link flow registries at build time so steady-state
  // flow churn stays within the high-water capacity.
  links_[forward].flow_ids.reserve(8);
  links_[forward + 1].flow_ids.reserve(8);
  nodes_[a].out.push_back(forward);
  nodes_[b].out.push_back(forward + 1);
  invalidate_routes();
  return forward;
}

void Network::set_node_up(NodeId id, bool up) {
  if (nodes_.at(id).up == up) return;
  nodes_[id].up = up;
  invalidate_routes();
  if (!up) {
    // Fail every flow whose path touches the node.
    std::vector<std::uint64_t> doomed;
    for (const auto& [fid, flow] : flows_) {
      if (flow.handle->src == id || flow.handle->dst == id) {
        doomed.push_back(fid);
        continue;
      }
      for (LinkId l : flow.path) {
        if (links_[l].from == id || links_[l].to == id) {
          doomed.push_back(fid);
          break;
        }
      }
    }
    for (auto fid : doomed) fail_flow(fid);
  }
}

void Network::set_link_up(LinkId id, bool up) {
  const LinkId partner = partner_of(id);
  if (links_.at(id).up == up) return;
  links_[id].up = up;
  links_[partner].up = up;
  invalidate_routes();
  if (!up) {
    // Fail every flow routed over either direction of the pair.
    std::vector<std::uint64_t> doomed;
    for (const auto& [fid, flow] : flows_) {
      for (LinkId l : flow.path) {
        if (l == id || l == partner) {
          doomed.push_back(fid);
          break;
        }
      }
    }
    for (auto fid : doomed) fail_flow(fid);
  }
}

void Network::set_link_bandwidth_factor(LinkId id, double factor) {
  assert(factor > 0.0);
  const LinkId partner = partner_of(id);
  settle_progress();
  links_.at(id).capacity = links_[id].base_capacity * factor;
  links_[partner].capacity = links_[partner].base_capacity * factor;
  recompute_rates();
  schedule_next_completion();
}

double Network::link_bandwidth_factor(LinkId id) const {
  const auto& link = links_.at(id);
  return link.capacity / link.base_capacity;
}

LinkId Network::find_link(NodeId a, NodeId b) const {
  for (LinkId l : nodes_.at(a).out) {
    if (links_[l].to == b) return l;
  }
  return -1;
}

const std::vector<LinkId>& Network::route(NodeId src, NodeId dst) {
  const auto key = std::make_pair(src, dst);
  const auto [cache_it, inserted] = route_cache_.try_emplace(key);
  if (!inserted) return cache_it->second;

  // BFS by hop count; deterministic tie-break by link id order. The
  // frontier/visited buffers are members reused across cache misses.
  route_via_.assign(nodes_.size(), -1);
  route_seen_.assign(nodes_.size(), 0);
  route_q_.clear();
  route_q_.reserve(nodes_.size());
  route_seen_[src] = 1;
  route_q_.push_back(src);
  bool found = (src == dst);
  for (std::size_t head = 0; head < route_q_.size() && !found; ++head) {
    const NodeId n = route_q_[head];
    for (LinkId l : nodes_[n].out) {
      const DirectedLink& link = links_[l];
      if (!link.up) continue;
      const NodeId next = link.to;
      char& seen_next = route_seen_[next];
      if (seen_next || !nodes_[next].up) continue;
      seen_next = 1;
      route_via_[next] = l;
      if (next == dst) found = true;
      route_q_.push_back(next);
    }
  }
  std::vector<LinkId>& path = cache_it->second;
  if (found && src != dst) {
    std::size_t hops = 0;
    for (NodeId n = dst; n != src;) {
      const LinkId l = route_via_[n];
      ++hops;
      n = links_[l].from;
    }
    path.reserve(hops);
    for (NodeId n = dst; n != src;) {
      const LinkId l = route_via_[n];
      path.push_back(l);
      n = links_[l].from;
    }
    std::reverse(path.begin(), path.end());
  }
  return path;
}

bool Network::reachable(NodeId src, NodeId dst) {
  if (!nodes_.at(src).up || !nodes_.at(dst).up) return false;
  return src == dst || !route(src, dst).empty();
}

TransferPtr Network::transfer(NodeId src, NodeId dst, Bytes bytes, TransferOptions opts) {
  // Handles churn once per transfer: object + control block come from the
  // BlockPool in one combined allocation and are recycled on release.
  auto handle = std::allocate_shared<Transfer>(util::PoolAllocator<Transfer>{});
  handle->src = src;
  handle->dst = dst;
  handle->bytes = bytes;
  handle->start_time = sim_.now();

  if (!nodes_.at(src).up || !nodes_.at(dst).up) {
    handle->failed = true;
    handle->finish_time = sim_.now();
    handle->done->trigger(sim_);
    return handle;
  }

  double latency = opts.extra_latency;
  std::vector<LinkId> path;
  if (src != dst) {
    path = route(src, dst);
    if (path.empty()) {
      handle->failed = true;
      handle->finish_time = sim_.now();
      handle->done->trigger(sim_);
      return handle;
    }
    for (LinkId l : path) latency += links_[l].latency;
  }

  if (bytes == 0 || src == dst) {
    // Local copies and pure control messages pay latency only.
    sim_.schedule(latency, [this, handle] {
      handle->finish_time = sim_.now();
      bytes_delivered_ += static_cast<double>(handle->bytes);
      handle->done->trigger(sim_);
    });
    return handle;
  }

  // The flow starts after the path latency (slow-start abstracted away).
  sim_.schedule(latency, [this, handle, path = std::move(path), opts]() mutable {
    if (handle->failed) return;
    // Re-check liveness at flow start.
    for (LinkId l : path) {
      const DirectedLink& link = links_[l];
      if (!link.up || !nodes_[link.from].up || !nodes_[link.to].up) {
        handle->failed = true;
        handle->finish_time = sim_.now();
        handle->done->trigger(sim_);
        return;
      }
    }
    settle_progress();
    const std::uint64_t id = next_flow_id_++;
    Flow flow;
    flow.handle = handle;
    flow.remaining = static_cast<double>(handle->bytes);
    flow.rate_cap = opts.rate_cap;
    flow.last_update = sim_.now();
    for (LinkId l : path) links_[l].flow_ids.push_back(id);
    flow.path = std::move(path);
    flows_.emplace(id, std::move(flow));
    recompute_rates();
    schedule_next_completion();
  });
  return handle;
}

sim::Task Network::send(NodeId src, NodeId dst, Bytes bytes, TransferOptions opts) {
  auto handle = transfer(src, dst, bytes, opts);
  co_await handle->done->wait(sim_);
}

void Network::settle_progress() {
  const double now = sim_.now();
  for (auto& [id, flow] : flows_) {
    const double dt = now - flow.last_update;
    if (dt > 0.0 && flow.rate > 0.0) {
      const double moved = std::min(flow.remaining, flow.rate * dt);
      flow.remaining -= moved;
      bytes_delivered_ += moved;
    }
    flow.last_update = now;
  }
}

void Network::recompute_rates() {
  // Progressive filling (max-min fairness) with per-flow rate caps.
  // Scratch lives in members (rate_*_) so the steady state re-rates the
  // whole network allocation-free; the arithmetic and freeze order are
  // bit-identical to the original map-based formulation (determinism).
  rate_ls_.resize(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    rate_ls_[i] = LinkState{links_[i].capacity, 0};
  }
  rate_pending_.clear();
  rate_pending_.reserve(flows_.size());
  for (auto& [id, flow] : flows_) {  // ascending id: deterministic freeze order
    rate_pending_.push_back(PendingFlow{id, flow.rate_cap, &flow, false});
    for (LinkId l : flow.path) ++rate_ls_[l].count;
  }
  // Links still carrying unassigned flows, ascending. Counts only decrease
  // within one recompute, so exhausted links are dropped for good; dropping
  // them skips exactly the iterations the full scan would have skipped via
  // `count > 0`, leaving the division/min sequence — and thus the computed
  // rates — bit-identical to the naive formulation.
  rate_active_links_.clear();
  rate_active_links_.reserve(links_.size());
  for (std::size_t i = 0; i < rate_ls_.size(); ++i) {
    if (rate_ls_[i].count > 0) rate_active_links_.push_back(i);
  }

  auto freeze_flow = [&](PendingFlow& p, double rate) {
    p.flow->rate = rate;
    for (LinkId l : p.flow->path) {
      LinkState& s = rate_ls_[l];
      s.residual = std::max(0.0, s.residual - rate);
      --s.count;
    }
    p.frozen = true;
  };
  // Flows frozen this round are compacted out (order-preserving), keeping
  // later rounds' scans proportional to what is still unassigned.
  auto compact_pending = [&] {
    rate_pending_.erase(
        std::remove_if(rate_pending_.begin(), rate_pending_.end(),
                       [](const PendingFlow& p) { return p.frozen; }),
        rate_pending_.end());
  };
  // rate_pending_ is sorted by flow id (flows_ iteration order; compaction
  // preserves it).
  auto find_pending = [&](std::uint64_t fid) -> PendingFlow* {
    auto it = std::lower_bound(
        rate_pending_.begin(), rate_pending_.end(), fid,
        [](const PendingFlow& p, std::uint64_t v) { return p.id < v; });
    return (it != rate_pending_.end() && it->id == fid) ? &*it : nullptr;
  };

  while (!rate_pending_.empty()) {
    // Bottleneck share among links that still carry unassigned flows,
    // compacting exhausted links out of the active list as we go.
    double share = std::numeric_limits<double>::infinity();
    std::size_t kept = 0;
    for (std::size_t idx : rate_active_links_) {
      const LinkState& s = rate_ls_[idx];
      if (s.count <= 0) continue;  // exhausted this recompute: drop
      rate_active_links_[kept++] = idx;
      share = std::min(share, s.residual / s.count);
    }
    rate_active_links_.resize(kept);
    // Any flow whose cap is below the bottleneck share freezes at its cap.
    bool froze_capped = false;
    for (PendingFlow& p : rate_pending_) {
      if (p.cap < share) {
        freeze_flow(p, p.cap);
        froze_capped = true;
      }
    }
    if (froze_capped) {
      compact_pending();
      continue;  // shares changed; recompute
    }
    if (!std::isfinite(share)) {
      // No constraining link (e.g. all flows capped and handled above).
      for (PendingFlow& p : rate_pending_) freeze_flow(p, p.cap);
      rate_pending_.clear();
      break;
    }
    // Freeze all unassigned flows crossing the bottleneck link at `share`.
    LinkId bottleneck = -1;
    for (std::size_t idx : rate_active_links_) {
      const LinkState& s = rate_ls_[idx];
      if (s.count > 0 && s.residual / s.count <= share * (1.0 + 1e-9) + 1e-9) {
        bottleneck = static_cast<LinkId>(idx);
        break;
      }
    }
    assert(bottleneck >= 0);
    rate_on_link_.clear();
    rate_on_link_.reserve(rate_pending_.size());
    for (std::uint64_t fid : links_[bottleneck].flow_ids) {
      const PendingFlow* p = find_pending(fid);
      if (p != nullptr && !p->frozen) rate_on_link_.push_back(fid);
    }
    for (std::uint64_t fid : rate_on_link_) freeze_flow(*find_pending(fid), share);
    compact_pending();
  }
}

void Network::schedule_next_completion() {
  const std::uint64_t gen = ++completion_gen_;
  double eta = std::numeric_limits<double>::infinity();
  for (const auto& [id, flow] : flows_) {
    if (flow.remaining <= kByteEpsilon) {
      eta = 0.0;
      break;
    }
    if (flow.rate > 0.0) eta = std::min(eta, flow.remaining / flow.rate);
  }
  if (!std::isfinite(eta)) return;  // all flows starved; rearmed on change
  sim_.schedule(eta, [this, gen] {
    if (gen != completion_gen_) return;  // superseded by a newer rate change
    settle_progress();
    // finish_flow fires handles via deferred events, so no callback can
    // re-enter and clobber the scratch buffer while we iterate it.
    finished_scratch_.clear();
    finished_scratch_.reserve(flows_.size());
    for (const auto& [id, flow] : flows_) {
      if (flow.remaining <= kByteEpsilon) finished_scratch_.push_back(id);
    }
    for (auto id : finished_scratch_) finish_flow(id, /*failed=*/false);
    recompute_rates();
    schedule_next_completion();
  });
}

void Network::finish_flow(std::uint64_t id, bool failed) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  auto handle = it->second.handle;
  if (!failed) {
    // Account any residual rounding as delivered.
    bytes_delivered_ += std::max(0.0, it->second.remaining);
  }
  for (LinkId l : it->second.path) {
    auto& v = links_[l].flow_ids;
    v.erase(std::remove(v.begin(), v.end(), id), v.end());
  }
  flows_.erase(it);
  handle->failed = failed;
  handle->finish_time = sim_.now();
  handle->done->trigger(sim_);
}

void Network::fail_flow(std::uint64_t id) {
  settle_progress();
  finish_flow(id, /*failed=*/true);
  recompute_rates();
  schedule_next_completion();
}

double Network::node_tx_rate(NodeId id) const {
  double r = 0.0;
  for (const auto& [fid, flow] : flows_) {
    if (flow.handle->src == id) r += flow.rate;
  }
  return r;
}

double Network::node_rx_rate(NodeId id) const {
  double r = 0.0;
  for (const auto& [fid, flow] : flows_) {
    if (flow.handle->dst == id) r += flow.rate;
  }
  return r;
}

double Network::total_flow_rate() const {
  double r = 0.0;
  for (const auto& [fid, flow] : flows_) r += flow.rate;
  return r;
}

void Network::check_invariants() const {
  const double now = sim_.now();
  for (const auto& [id, flow] : flows_) {
    const double total = static_cast<double>(flow.handle->bytes);
    CHASE_INVARIANT(flow.remaining >= -kByteEpsilon && flow.remaining <= total + kByteEpsilon,
                    "flow remaining outside [0, bytes]: " + node_name(flow.handle->src) +
                        " -> " + node_name(flow.handle->dst));
    CHASE_INVARIANT(flow.rate >= 0.0 && flow.rate <= flow.rate_cap * (1.0 + 1e-9),
                    "flow rate negative or above its cap");
    CHASE_INVARIANT(!flow.path.empty(), "active flow with empty path");
    CHASE_INVARIANT(flow.last_update <= now + 1e-12, "flow settled in the future");
    // Conservation: a flow never runs past its byte count before its
    // completion event fires — remaining covers rate * elapsed.
    CHASE_INVARIANT(
        flow.remaining - flow.rate * (now - flow.last_update) >=
            -kByteEpsilon - 1e-9 * total,
        "in-flight bytes not conserved (flow overran its remaining byte count)");
    // Path structure: contiguous src -> dst chain over live nodes, and the
    // flow is registered on each link it occupies.
    NodeId at = flow.handle->src;
    for (LinkId l : flow.path) {
      CHASE_INVARIANT(l >= 0 && l < static_cast<LinkId>(links_.size()),
                      "flow path references an unknown link");
      const DirectedLink& link = links_[static_cast<std::size_t>(l)];
      CHASE_INVARIANT(link.from == at, "flow path is not a contiguous route");
      CHASE_INVARIANT(nodes_[static_cast<std::size_t>(link.from)].up &&
                          nodes_[static_cast<std::size_t>(link.to)].up,
                      "flow routed through a down node (should have failed)");
      CHASE_INVARIANT(link.up, "flow routed over a partitioned link (should have failed)");
      CHASE_AUDIT(std::find(link.flow_ids.begin(), link.flow_ids.end(), id) !=
                      link.flow_ids.end(),
                  "flow missing from its link's flow registry");
      at = link.to;
    }
    CHASE_INVARIANT(at == flow.handle->dst, "flow path does not end at its destination");
  }
  // Link registries only reference live flows, and max-min fair rates never
  // oversubscribe a link's capacity.
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const DirectedLink& link = links_[i];
    double used = 0.0;
    for (std::uint64_t fid : link.flow_ids) {
      auto it = flows_.find(fid);
      CHASE_INVARIANT(it != flows_.end(), "link registry references a finished flow");
      if (it != flows_.end()) used += it->second.rate;
    }
    CHASE_INVARIANT(used <= link.capacity * (1.0 + 1e-6),
                    "link oversubscribed: " + node_name(link.from) + " -> " +
                        node_name(link.to));
    CHASE_INVARIANT(link.base_capacity > 0.0 && link.capacity > 0.0,
                    "link with non-positive capacity");
    CHASE_INVARIANT(links_[partner_of(static_cast<LinkId>(i))].up == link.up,
                    "full-duplex pair with divergent up/down state");
  }
  CHASE_INVARIANT(bytes_delivered_ >= 0.0, "delivered byte counter went negative");
}

double Network::link_utilization(LinkId id) const {
  const auto& link = links_.at(id);
  double used = 0.0;
  for (std::uint64_t fid : link.flow_ids) {
    auto it = flows_.find(fid);
    if (it != flows_.end()) used += it->second.rate;
  }
  return used / link.capacity;
}

}  // namespace chase::net
