#pragma once
/// \file network.hpp
/// Flow-level simulation of the Pacific Research Platform: nodes (FIONAs,
/// DTNs, switches), full-duplex links (10/40/100 GbE), shortest-path routing
/// and max-min fair bandwidth sharing among concurrent flows — the standard
/// fluid abstraction for bulk science data movement.
///
/// A transfer occupies one flow along its route. Whenever the flow set
/// changes, rates are recomputed by progressive filling (with optional
/// per-flow rate caps, used to model single-TCP-connection limits), and every
/// flow's completion event is rescheduled from its remaining byte count.

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/event.hpp"
#include "sim/simulation.hpp"
#include "util/block_pool.hpp"
#include "util/units.hpp"

namespace chase::net {

using NodeId = int;
using LinkId = int;
using util::Bytes;

struct TransferOptions {
  /// Cap on this flow's rate (bytes/s), e.g. a single TCP stream's ceiling.
  double rate_cap = std::numeric_limits<double>::infinity();
  /// Extra fixed startup delay beyond path latency (request handling etc.).
  double extra_latency = 0.0;
};

/// Live handle for an in-flight (or finished) transfer.
struct Transfer {
  sim::EventPtr done = sim::make_event();
  NodeId src = -1;
  NodeId dst = -1;
  Bytes bytes = 0;
  double start_time = 0.0;
  double finish_time = -1.0;  // set when done fires
  bool failed = false;        // node/link went down mid-flight
};

using TransferPtr = std::shared_ptr<Transfer>;

class Network {
 public:
  explicit Network(sim::Simulation& sim) : sim_(sim) {
    audit_hook_ = sim_.add_audit_hook([this] { check_invariants(); });
  }
  ~Network() { sim_.remove_audit_hook(audit_hook_); }
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- topology -----------------------------------------------------------

  NodeId add_node(std::string name);
  /// Adds a full-duplex link (two directed links of `bandwidth` each).
  LinkId add_link(NodeId a, NodeId b, double bandwidth_bps, double latency_s);

  std::size_t node_count() const { return nodes_.size(); }
  const std::string& node_name(NodeId id) const { return nodes_.at(id).name; }
  /// Mark a node up/down. Taking a node down fails all flows routed through
  /// it and removes it from routing until it comes back.
  void set_node_up(NodeId id, bool up);
  bool node_up(NodeId id) const { return nodes_.at(id).up; }

  /// Partition / heal a full-duplex link (both directions). Taking a link
  /// down fails every flow routed over either direction and removes it from
  /// routing until it is healed.
  void set_link_up(LinkId id, bool up);
  bool link_up(LinkId id) const { return links_.at(id).up; }
  /// Degrade (or restore) a full-duplex link to `factor` times its built
  /// bandwidth, both directions; in-flight flows are re-rated. factor > 0.
  void set_link_bandwidth_factor(LinkId id, double factor);
  double link_bandwidth_factor(LinkId id) const;
  /// First directed link from `a` to `b`, or -1 if the nodes are not
  /// adjacent. Chaos plans use this to target specific WAN uplinks.
  LinkId find_link(NodeId a, NodeId b) const;
  std::size_t link_count() const { return links_.size(); }

  // --- transfers ----------------------------------------------------------

  /// Start a transfer; the returned handle's `done` event fires at
  /// completion (or failure). Zero-byte transfers still pay latency.
  TransferPtr transfer(NodeId src, NodeId dst, Bytes bytes, TransferOptions opts = {});

  /// Coroutine sugar: start a transfer and await it. Returns (via the
  /// handle) after the last byte arrives.
  sim::Task send(NodeId src, NodeId dst, Bytes bytes, TransferOptions opts = {});

  // --- introspection (sampled by the monitoring layer) ---------------------

  /// Instantaneous egress/ingress rate of a node over all active flows.
  double node_tx_rate(NodeId id) const;
  double node_rx_rate(NodeId id) const;
  /// Sum of all active flow rates (cluster-wide instantaneous throughput).
  double total_flow_rate() const;
  std::size_t active_flows() const { return flows_.size(); }
  /// Cumulative bytes delivered over the network since construction.
  double total_bytes_delivered() const { return bytes_delivered_; }
  /// Instantaneous utilization of a link's a->b direction, in [0, 1].
  double link_utilization(LinkId id) const;

  /// True if a route currently exists.
  bool reachable(NodeId src, NodeId dst);

  /// Invariant audit (see util/check.hpp): flow/link bookkeeping is
  /// consistent and in-flight bytes are conserved. Called automatically at
  /// simulation checkpoints in audit builds.
  void check_invariants() const;

 private:
  struct Node {
    std::string name;
    bool up = true;
    std::vector<LinkId> out;  // directed links leaving this node
  };
  struct DirectedLink {
    NodeId from, to;
    double capacity;       // current effective bytes/s (base * factor)
    double latency;        // s
    double base_capacity;  // as built
    bool up = true;
    std::vector<std::uint64_t> flow_ids;
  };
  /// The opposite direction of a full-duplex pair (links are always added
  /// in forward/reverse pairs, so the partner of 2k is 2k+1).
  static LinkId partner_of(LinkId id) { return id % 2 == 0 ? id + 1 : id - 1; }
  struct Flow {
    TransferPtr handle;
    std::vector<LinkId> path;
    double remaining;    // bytes
    double rate = 0.0;   // bytes/s
    double rate_cap;
    double last_update;  // sim time of last settle
  };

  void settle_progress();
  void recompute_rates();
  /// (Re)arm the single pending completion event at the earliest flow ETA.
  /// One event per rate change keeps the queue O(#changes), not O(#flows).
  void schedule_next_completion();
  /// Remove a flow and fire its handle.
  void finish_flow(std::uint64_t id, bool failed);
  void fail_flow(std::uint64_t id);
  /// Cached shortest path; the reference is valid until the next topology
  /// change (invalidate_routes). Callers that outlive that must copy.
  const std::vector<LinkId>& route(NodeId src, NodeId dst);
  void invalidate_routes() { route_cache_.clear(); }

  sim::Simulation& sim_;
  std::vector<Node> nodes_;
  std::vector<DirectedLink> links_;
  /// Ordered for determinism; map nodes churn once per flow, so they are
  /// recycled through the BlockPool rather than the global heap.
  std::map<std::uint64_t, Flow, std::less<>,
           util::PoolAllocator<std::pair<const std::uint64_t, Flow>>>
      flows_;
  std::uint64_t next_flow_id_ = 0;
  std::uint64_t completion_gen_ = 0;  // invalidates stale completion events
  double bytes_delivered_ = 0.0;
  std::map<std::pair<NodeId, NodeId>, std::vector<LinkId>> route_cache_;
  std::uint64_t audit_hook_ = 0;

  // --- hot-path scratch ----------------------------------------------------
  // recompute_rates() and its completion/startup callbacks run once per
  // flow-set change; these buffers are reused across calls so the steady
  // state re-rates the whole network without a single allocation.
  struct LinkState {
    double residual;
    int count;
  };
  struct PendingFlow {
    std::uint64_t id;
    double cap;
    Flow* flow;
    bool frozen;
  };
  std::vector<LinkState> rate_ls_;
  std::vector<PendingFlow> rate_pending_;
  std::vector<std::size_t> rate_active_links_;
  std::vector<std::uint64_t> rate_on_link_;
  std::vector<std::uint64_t> finished_scratch_;
  // BFS scratch for route() cache misses.
  std::vector<LinkId> route_via_;
  std::vector<char> route_seen_;
  std::vector<NodeId> route_q_;
};

}  // namespace chase::net
