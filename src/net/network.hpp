#pragma once
/// \file network.hpp
/// Flow-level simulation of the Pacific Research Platform: nodes (FIONAs,
/// DTNs, switches), full-duplex links (10/40/100 GbE), shortest-path routing
/// and max-min fair bandwidth sharing among concurrent flows — the standard
/// fluid abstraction for bulk science data movement.
///
/// A transfer occupies one flow along its route. Whenever the flow set
/// changes, rates are recomputed by progressive filling (with optional
/// per-flow rate caps, used to model single-TCP-connection limits) — but
/// only over the connected component of the link↔flow incidence graph the
/// change touches. Flows in untouched components keep their rates, their
/// settle state, and their pending completion deadlines; per-event cost is
/// proportional to what changed, not to the whole network (DESIGN.md
/// "Incremental max-min rate updates").

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/event.hpp"
#include "sim/simulation.hpp"
#include "util/block_pool.hpp"
#include "util/units.hpp"

namespace chase::net {

using NodeId = int;
using LinkId = int;
/// Hierarchical multi-site topology (paper: ~20 PRP sites on a WAN). Every
/// node belongs to a site; links whose endpoints sit in different sites are
/// WAN links. Site 0 is the default, so single-site callers never see the
/// hierarchy. Site ids are small dense integers assigned by the caller.
using SiteId = int;
using util::Bytes;

struct TransferOptions {
  /// Cap on this flow's rate (bytes/s), e.g. a single TCP stream's ceiling.
  double rate_cap = std::numeric_limits<double>::infinity();
  /// Extra fixed startup delay beyond path latency (request handling etc.).
  double extra_latency = 0.0;
};

/// Live handle for an in-flight (or finished) transfer.
struct Transfer {
  sim::EventPtr done = sim::make_event();
  NodeId src = -1;
  NodeId dst = -1;
  Bytes bytes = 0;
  double start_time = 0.0;
  double finish_time = -1.0;  // set when done fires
  bool failed = false;        // node/link went down mid-flight
};

using TransferPtr = std::shared_ptr<Transfer>;

class Network {
 public:
  explicit Network(sim::Simulation& sim);
  ~Network() { sim_.remove_audit_hook(audit_hook_); }
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- topology -----------------------------------------------------------

  NodeId add_node(std::string name);
  /// Adds a node inside `site` (hierarchical topologies). Site ids must be
  /// dense small integers; the site count grows to cover the largest id.
  NodeId add_node(std::string name, SiteId site);
  /// Adds a full-duplex link (two directed links of `bandwidth` each). The
  /// link is classified as WAN iff its endpoints sit in different sites.
  LinkId add_link(NodeId a, NodeId b, double bandwidth_bps, double latency_s);

  std::size_t node_count() const { return nodes_.size(); }
  const std::string& node_name(NodeId id) const { return nodes_.at(id).name; }
  SiteId site_of(NodeId id) const { return nodes_.at(id).site; }
  /// Number of distinct sites (>= 1; single-site networks report 1).
  std::size_t site_count() const { return site_epochs_.size(); }
  /// True iff the link crosses a site boundary (an inter-site WAN link).
  bool link_is_wan(LinkId id) const { return links_.at(id).wan; }
  /// Forward link ids of every full-duplex pair with exactly one endpoint in
  /// `site` — the site's WAN attachment. Chaos site partitions cut these.
  std::vector<LinkId> site_boundary_links(SiteId site) const;
  /// Mark a node up/down. Taking a node down fails all flows routed through
  /// it and removes it from routing until it comes back.
  void set_node_up(NodeId id, bool up);
  bool node_up(NodeId id) const { return nodes_.at(id).up; }

  /// Partition / heal a full-duplex link (both directions). Taking a link
  /// down fails every flow routed over either direction and removes it from
  /// routing until it is healed.
  void set_link_up(LinkId id, bool up);
  bool link_up(LinkId id) const { return links_.at(id).up; }
  /// Degrade (or restore) a full-duplex link to `factor` times its built
  /// bandwidth, both directions; in-flight flows are re-rated. factor > 0.
  void set_link_bandwidth_factor(LinkId id, double factor);
  double link_bandwidth_factor(LinkId id) const;
  /// First directed link from `a` to `b`, or -1 if the nodes are not
  /// adjacent. Chaos plans use this to target specific WAN uplinks.
  LinkId find_link(NodeId a, NodeId b) const;
  /// Directed links leaving `id` — the node's full adjacency. Chaos uses
  /// this to degrade every NIC of a straggling machine at once.
  const std::vector<LinkId>& links_at(NodeId id) const { return nodes_.at(id).out; }
  std::size_t link_count() const { return links_.size(); }

  // --- transfers ----------------------------------------------------------

  /// Start a transfer; the returned handle's `done` event fires at
  /// completion (or failure). Zero-byte transfers still pay latency.
  TransferPtr transfer(NodeId src, NodeId dst, Bytes bytes, TransferOptions opts = {});

  /// Coroutine sugar: start a transfer and await it. Returns (via the
  /// handle) after the last byte arrives.
  sim::Task send(NodeId src, NodeId dst, Bytes bytes, TransferOptions opts = {});

  /// One leg of a collective round (ring all-reduce chunk, broadcast, ...).
  struct GroupLeg {
    NodeId src = -1;
    NodeId dst = -1;
    Bytes bytes = 0;
  };
  /// Start every leg at once and await all completions — the barrier-round
  /// primitive for collective schedules (ml::DistTrainer's ring). All legs
  /// contend simultaneously, so max-min fair sharing shapes the round time;
  /// failed legs (node/link loss mid-flight) complete the barrier rather
  /// than hang it.
  sim::Task send_group(std::vector<GroupLeg> legs, TransferOptions opts = {});

  // --- introspection (sampled by the monitoring layer) ---------------------

  /// Instantaneous egress/ingress rate of a node over all active flows.
  double node_tx_rate(NodeId id) const;
  double node_rx_rate(NodeId id) const;
  /// Sum of all active flow rates (cluster-wide instantaneous throughput).
  double total_flow_rate() const;
  std::size_t active_flows() const { return flows_.size(); }
  /// Cumulative bytes delivered over the network since construction.
  /// Settlement is lazy (a flow settles only when its rate changes), so this
  /// adds each active flow's accrued-but-unsettled progress on the fly.
  double total_bytes_delivered() const;
  /// Instantaneous utilization of a link's a->b direction, in [0, 1].
  double link_utilization(LinkId id) const;

  /// True if a route currently exists.
  bool reachable(NodeId src, NodeId dst);

  /// Invariant audit (see util/check.hpp): flow/link bookkeeping is
  /// consistent, in-flight bytes are conserved (started = delivered +
  /// dropped + still-remaining), and the completion-deadline index matches
  /// the flow set. Called automatically at simulation checkpoints in audit
  /// builds.
  void check_invariants() const;

  /// Reference cross-check for the scoped recompute: re-runs progressive
  /// filling over EVERY component into scratch and compares against the
  /// live rates. True iff bit-identical. Wired into the audit hook at
  /// audit level >= 2; the randomized property tests call it directly.
  bool rates_match_full_recompute();

 private:
  struct Flow;

  struct Node {
    std::string name;
    bool up = true;
    SiteId site = 0;
    std::vector<LinkId> out;  // directed links leaving this node
  };
  struct DirectedLink {
    NodeId from, to;
    double capacity;       // current effective bytes/s (base * factor)
    double latency;        // s
    double base_capacity;  // as built
    bool up = true;
    bool wan = false;      // endpoints in different sites
    /// Incidence index: active flows routed over this link, ascending flow
    /// id (ids are assigned monotonically at flow start; removal preserves
    /// order). This is one half of the link↔flow incidence the scoped
    /// recompute walks; Flow::path is the other half. The entry mirrors the
    /// flow's id and current rate so boundary collection is a sequential
    /// scan of this vector — no scattered Flow dereference per member.
    struct RegEntry {
      Flow* flow = nullptr;
      double rate = 0.0;      // mirror of flow->rate (audited)
      std::uint64_t id = 0;   // mirror of flow->id
      std::uint32_t slot = 0; // mirror of flow->slot (dense epoch index)
    };
    std::vector<RegEntry> flows;
  };
  /// The opposite direction of a full-duplex pair (links are always added
  /// in forward/reverse pairs, so the partner of 2k is 2k+1).
  static LinkId partner_of(LinkId id) { return id % 2 == 0 ? id + 1 : id - 1; }

  static constexpr std::size_t kNoHeapPos = static_cast<std::size_t>(-1);

  struct Flow {
    TransferPtr handle;
    std::vector<LinkId> path;
    double remaining = 0.0;  // bytes, as of last_update
    double rate = 0.0;       // bytes/s
    double rate_cap = std::numeric_limits<double>::infinity();
    double last_update = 0.0;  // sim time of last settle
    /// Absolute completion ETA (last_update + remaining / rate); +inf while
    /// starved. Key of the completion index below.
    double deadline = std::numeric_limits<double>::infinity();
    std::uint64_t id = 0;
    std::size_t heap_pos = kNoHeapPos;  // slot in eta_heap_
    /// Dense index into slot_epoch_ (recycled through free_slots_). The
    /// scoped-recompute membership stamp lives there rather than in the
    /// Flow so collection walks never dereference a scattered Flow object
    /// just to test membership; all other fill scratch is in the fl_*
    /// struct-of-arrays below.
    std::uint32_t slot = 0;
  };

  // --- incremental max-min machinery ---------------------------------------

  /// Advance one flow's progress to `now` at its current rate (called only
  /// when the rate is about to change, at completion, or at failure — the
  /// lazy-settlement replacement for the old all-flows sweep).
  void settle_flow(Flow& flow, double now);
  /// Append one full participant to the fl_* scratch arrays: real rate_cap,
  /// every path link as an edge, stamping + enqueuing newly seen links onto
  /// comp_links_. Boundary (virtual) participants are not added through
  /// here — recompute_scope() reads them straight off the registry mirrors,
  /// skipping flows whose visit stamp marks them as full participants.
  void soa_add_full(Flow* f);
  void soa_clear();
  /// BFS the full link↔flow incidence from `seed` into comp_links_ and the
  /// fl_* arrays, stamping visit epochs; collects exactly one connected
  /// component (the audit reference path).
  void collect_component(LinkId seed);
  /// Progressive filling (max-min with per-flow caps) over the collected
  /// links and fl_* arrays; writes fl_new_, does not touch live state.
  /// Links outside the collected set impose no constraint —
  /// recompute_scope()'s expansion loop is what makes ignoring them exact.
  void fill_component();
  /// Commit fill results: settle + re-rate + re-index flows whose rate
  /// changed; bit-identical rates are left entirely alone.
  void apply_component();
  /// Incremental max-min: starting from the accumulated seed_links_, fill
  /// over the in-scope link set and expand it along the paths of flows
  /// whose computed rate changed (bitwise), refilling until no changed
  /// flow crosses an out-of-scope link. At that fixpoint the result is
  /// bit-identical to the full per-component fill (DESIGN.md "Incremental
  /// max-min rate updates"); flows outside the final scope are never
  /// settled, re-rated, or re-indexed.
  void recompute_scope();

  /// (Re)arm the single pending completion event at the earliest deadline
  /// in the completion index. No-op when the earliest deadline is
  /// unchanged, so untouched components never churn the event queue.
  void rearm_completion();
  void on_completion(std::uint64_t gen);

  /// Remove a flow and fire its handle; seeds its path links for the
  /// caller's recompute_scope().
  void finish_flow(std::uint64_t id, bool failed);
  /// Fail a batch of flows, then recompute the affected components once.
  void fail_flows();

  // Completion index: indexed binary min-heap over active flows, keyed by
  // (deadline, flow id). Exactly one slot per active flow — no stale
  // entries, O(log flows) per rate change.
  static bool eta_less(const Flow* a, const Flow* b) {
    if (a->deadline != b->deadline) return a->deadline < b->deadline;
    return a->id < b->id;
  }
  void eta_insert(Flow* f);
  void eta_erase(Flow* f);
  void eta_update(Flow* f);
  void eta_sift_up(std::size_t i);
  void eta_sift_down(std::size_t i);

  /// Cached shortest path; the reference is valid until the next route()
  /// call or topology change. Callers that outlive that must copy.
  const std::vector<LinkId>& route(NodeId src, NodeId dst);
  /// O(1): bumps the global topology epoch; per-source route trees
  /// re-derive lazily on their next use instead of being torn down eagerly.
  void invalidate_routes() { ++route_epoch_; }
  /// O(1): bumps one site's intra-site epoch. A topology change confined to
  /// `site` must call both this and invalidate_routes(): cross-site trees
  /// everywhere may route through the site, but other sites' *intra-site*
  /// trees provably cannot (hierarchical routing never leaves the site), so
  /// they stay valid and their steady-state transfers skip BFS entirely.
  void invalidate_site_routes(SiteId site) {
    ++site_epochs_[static_cast<std::size_t>(site)];
  }

  sim::Simulation& sim_;
  std::vector<Node> nodes_;
  std::vector<DirectedLink> links_;
  /// Ordered for determinism; map nodes churn once per flow, so they are
  /// recycled through the BlockPool rather than the global heap. Node
  /// addresses are stable — the incidence index stores Flow*.
  std::map<std::uint64_t, Flow, std::less<>,
           util::PoolAllocator<std::pair<const std::uint64_t, Flow>>>
      flows_;
  std::uint64_t next_flow_id_ = 0;
  std::uint64_t completion_gen_ = 0;  // invalidates stale completion events
  double armed_eta_ = std::numeric_limits<double>::infinity();
  double bytes_delivered_ = 0.0;
  /// Conservation ledger (audited): bytes admitted into flows (plus local /
  /// zero-byte deliveries) and bytes abandoned by failed flows.
  double bytes_started_ = 0.0;
  double bytes_dropped_ = 0.0;
  std::uint64_t audit_hook_ = 0;

  // --- hot-path scratch ----------------------------------------------------
  // The scoped recompute runs once per flow-set change; these buffers are
  // reused across calls so the steady state re-rates a component without a
  // single allocation.
  std::uint64_t scope_epoch_ = 0;  // one per fill pass (collect stamps)
  std::uint64_t scope_id_ = 0;     // one per recompute_scope call (S stamps)
  /// Per-flow fill-pass membership stamps, indexed by Flow::slot — dense,
  /// so the hottest collection test (is this registry member already a full
  /// participant?) stays inside a few cache lines instead of chasing the
  /// Flow pointer. Slots are recycled via free_slots_.
  std::vector<std::uint64_t> slot_epoch_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint64_t> link_epoch_;  // per-link fill-pass stamp
  std::vector<std::uint64_t> link_scope_;  // per-link S-membership stamp
  /// Per-link fill scratch, one cache line hit per link instead of four
  /// parallel-array hits on the hot freeze path.
  static constexpr std::uint32_t kNoRun = 0xFFFFFFFFu;
  struct LinkFill {
    double residual = 0.0;     // unassigned capacity
    std::int32_t count = 0;    // unfrozen flow count
    std::uint32_t reg = 0;     // member-slice length (set after the build)
    std::uint32_t moff = 0;    // member-slice start in link_members_
    /// Member-slice build cursor during collection; after the member build
    /// it is repurposed as this link's index into comp_links_/levels_.
    std::uint32_t mcur = 0;
    std::uint32_t run = kNoRun;  // index into cap_runs_, if a boundary link
  };
  std::vector<LinkFill> link_fill_;
  std::vector<LinkId> comp_links_;         // links of the current fill pass
  std::vector<double> levels_;  // current water level per comp_links_ slot
                                // (+inf once fully frozen); dense so the
                                // per-round min-scan stays in one cache line
  std::vector<LinkId> dirty_;  // links whose level needs a refresh before
                               // the next min-scan (levels are recomputed
                               // once per round, not once per freeze; the
                               // -1.0 level sentinel dedupes entries)
  std::vector<LinkId> scope_links_;        // S: links filled this recompute
  // Per-pass flow scratch, struct-of-arrays: collection reads each scattered
  // Flow object once, then the fill runs entirely over these dense arrays.
  std::vector<Flow*> fl_ptr_;
  std::vector<double> fl_cap_;  // effective cap (rate_cap, or rate if virtual)
  std::vector<double> fl_old_;  // live rate at collection time
  std::vector<double> fl_new_;  // fill result
  std::vector<std::uint64_t> fl_id_;
  std::vector<std::uint32_t> fl_edge_end_;  // exclusive end into edges_
  std::vector<LinkId> edges_;               // flattened in-fill path links
  std::vector<std::uint8_t> fl_frozen_;
  /// Finite rate caps, gathered at collection time with a running minimum;
  /// fill_component() materializes the ascending (cap, flow id) order only
  /// on the first round whose share clears the minimum — most passes never
  /// fire a cap batch and skip the sort entirely. Real (finite rate_cap)
  /// entries carry their fl_* slot; implicit twin entries carry the Flow
  /// pointer instead, touched only on the rare squeeze path.
  struct CapEnt {
    double cap = 0.0;
    std::uint64_t fid = 0;
    union {
      std::uint32_t idx = 0;
      Flow* flow;
    };
  };
  std::vector<CapEnt> cap_list_;
  double cap_min_ = std::numeric_limits<double>::infinity();
  /// One run of cap_list_ per boundary link: that link's lean twins, sorted
  /// lazily on first firing. Runs touch pairwise-disjoint links, so firing
  /// them run-by-run subtracts in the same per-link ascending order as the
  /// globally sorted list — bit for bit — without the global sort. Twins
  /// live only here (no fl_* slots): a freeze is one residual subtraction
  /// on the run's link, and entries past `at` are exactly the unfrozen
  /// ones. Passes that carry real (finite rate_cap) entries fall back to
  /// the monolithic sorted list with twins as full participants, because a
  /// real cap can interleave with twin caps on a shared link (the
  /// full-recompute reference is always monolithic).
  struct CapRun {
    std::uint32_t begin = 0, end = 0, at = 0;
    LinkId link = -1;
    double min = std::numeric_limits<double>::infinity();
    bool sorted = false;
  };
  std::vector<CapRun> cap_runs_;
  std::uint32_t n_real_caps_ = 0;  // cap_list_ prefix from full participants
  std::uint32_t twin_count_ = 0;   // implicit twins in the current pass
  std::vector<Flow*> squeezed_;    // twins frozen below their held rate
  std::vector<std::uint32_t> link_members_;    // flattened per-link flow idx
  std::vector<LinkId> seed_links_;     // pending recompute seeds
  std::vector<Flow*> eta_heap_;        // completion index
  std::vector<std::uint64_t> doomed_;  // fail-path scratch
  // Route cache: shortest-path trees per source node, stamped with epochs.
  // One BFS serves every destination from that source, so steady-state
  // transfers assemble their path by walking predecessor links — no
  // per-pair BFS, no ordered-map lookup. Invalidation is an epoch bump.
  //
  // Multi-site refinement: each source keeps a *global* tree (full BFS,
  // keyed on route_epoch_) for cross-site destinations and an *intra-site*
  // tree (BFS over non-WAN links only, keyed on the source site's epoch in
  // site_epochs_) for same-site destinations. Intra-site traffic routes
  // hierarchically — it never exits the site — so a fault in site A leaves
  // every other site's intra-site trees valid (DESIGN.md "Hierarchical
  // multi-site topology"). Single-site networks have no WAN links, making
  // the intra-site tree identical to the global one bit for bit.
  struct RouteTree {
    std::uint64_t stamp = 0;        // global tree: valid iff == route_epoch_
    std::vector<LinkId> via;        // predecessor link per node, -1 unreachable
    std::uint64_t local_stamp = 0;  // intra-site tree: valid iff == site epoch
    std::vector<LinkId> local_via;
  };
  std::vector<RouteTree> route_trees_;
  std::uint64_t route_epoch_ = 1;
  std::vector<std::uint64_t> site_epochs_ = {1};  // per-site intra-site epochs
  std::vector<LinkId> route_path_;  // scratch: the last assembled path
  // BFS scratch for route-tree rebuilds.
  std::vector<char> route_seen_;
  std::vector<NodeId> route_q_;
};

}  // namespace chase::net
