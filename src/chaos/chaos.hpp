#pragma once
/// \file chaos.hpp
/// Seeded fault injection for the simulated testbed (paper §V: "If a node is
/// taken offline the pods on that node will be rescheduled on another
/// node."). A ChaosPlan declares faults — node crashes/recoveries, link
/// degradation and partitions, OSD failures, pod preemptions — and a
/// ChaosInjector schedules them into a running simulation.
///
/// Everything is deterministic: random victim selection draws from a
/// util::Rng seeded by the plan, and fault times are plain virtual-time
/// delays, so a chaos run composes with tools/determinism_check (same plan +
/// same seed => identical event trace).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ceph/ceph.hpp"
#include "cluster/machine.hpp"
#include "kube/cluster.hpp"
#include "mon/metrics.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace chase::chaos {

enum class FaultKind {
  NodeCrash,      // machine down (network node, kubelet, OSDs on it)
  NodeRecover,    // machine back up
  NodeDegrade,    // every link at the machine's endpoint scaled to `factor`
  NodeRestore,    // those links back to built capacity
  LinkPartition,  // full-duplex link down
  LinkHeal,       // link back up
  LinkDegrade,    // link bandwidth scaled to `factor` of built capacity
  LinkRestore,    // link bandwidth back to built capacity
  OsdFail,        // single OSD down, machine stays up
  OsdRecover,     // single OSD back up
  PodKill,        // disruption-evict pods matching ns + selector
  SitePartition,  // every WAN link touching a site goes down (site islanded)
  SiteHeal,       // the site's WAN attachment comes back
};

const char* fault_kind_name(FaultKind kind);

/// One scheduled fault. Which fields matter depends on `kind`; the ChaosPlan
/// builder methods fill them consistently.
struct FaultEvent {
  double at = 0.0;  // delay from ChaosInjector::arm(), simulated seconds
  FaultKind kind = FaultKind::NodeCrash;
  /// < 0: permanent. Otherwise the inverse fault (recover / heal / restore)
  /// is scheduled this many seconds after the fault fires.
  double duration = -1.0;

  cluster::MachineId machine = -1;             // node faults (explicit victim)
  std::vector<cluster::MachineId> pool;        // NodeCrash: random victims from here
  double fraction = 0.0;                       // of pool / of matching pods, in (0, 1]
  net::LinkId link = -1;                       // link faults
  net::SiteId site = -1;                       // site faults
  double factor = 1.0;                         // Link/NodeDegrade bandwidth multiplier
  int osd = -1;                                // OSD faults
  std::string ns;                              // PodKill namespace
  kube::Labels selector;                       // PodKill label selector
};

/// Declarative fault schedule with a fluent builder API. Times are delays
/// relative to ChaosInjector::arm().
class ChaosPlan {
 public:
  explicit ChaosPlan(std::uint64_t seed = 2029) : seed_(seed) {}

  /// Crash one machine; recovers after `down_for` seconds (< 0: stays down).
  ChaosPlan& crash_node(double at, cluster::MachineId machine, double down_for = -1.0);
  /// Crash ceil(fraction * pool.size()) distinct machines drawn from `pool`
  /// by the plan's Rng (still-up machines preferred at execution time).
  ChaosPlan& crash_fraction(double at, std::vector<cluster::MachineId> pool,
                            double fraction, double down_for = -1.0);
  /// Scale every link touching `machine`'s network endpoint to `factor` of
  /// built bandwidth — a straggler node, not a dead one (slow NIC, congested
  /// uplink). Restores after `degraded_for` (< 0: stays degraded).
  ChaosPlan& degrade_node(double at, cluster::MachineId machine, double factor,
                          double degraded_for = -1.0);
  /// Take a full-duplex link down; heals after `down_for` (< 0: stays down).
  ChaosPlan& partition_link(double at, net::LinkId link, double down_for = -1.0);
  /// Island a whole site: every WAN link with an endpoint in `site` goes
  /// down (intra-site fabric stays up — the federation-scale fault the
  /// paper's multi-campus deployment must survive). Heals after `down_for`
  /// (< 0: stays islanded). Healing re-ups every boundary link of the site.
  ChaosPlan& partition_site(double at, net::SiteId site, double down_for = -1.0);
  /// Scale a link to `factor` of its built bandwidth; restores after
  /// `degraded_for` (< 0: stays degraded).
  ChaosPlan& degrade_link(double at, net::LinkId link, double factor,
                          double degraded_for = -1.0);
  /// Fail one OSD; recovers after `down_for` (< 0: stays down).
  ChaosPlan& fail_osd(double at, int osd, double down_for = -1.0);
  /// Disruption-evict ceil(fraction * matching) pods in `ns` matching
  /// `selector`, drawn by the plan's Rng at execution time.
  ChaosPlan& kill_pods(double at, std::string ns, kube::Labels selector,
                       double fraction = 1.0);

  std::uint64_t seed() const { return seed_; }
  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

 private:
  std::uint64_t seed_;
  std::vector<FaultEvent> events_;
};

/// Counters of what actually fired (mirrored to mon::Registry when given).
struct ChaosReport {
  int node_crashes = 0;
  int node_recoveries = 0;
  int node_degradations = 0;
  int node_restores = 0;
  int link_partitions = 0;
  int link_heals = 0;
  int link_degradations = 0;
  int link_restores = 0;
  int osd_failures = 0;
  int osd_recoveries = 0;
  int pods_killed = 0;
  int site_partitions = 0;
  int site_heals = 0;
  int events_executed = 0;
};

/// Schedules a ChaosPlan's faults into the simulation. kube / ceph /
/// metrics are optional: plans that only shake nodes and links work against
/// a bare network + inventory.
class ChaosInjector {
 public:
  ChaosInjector(sim::Simulation& sim, net::Network& net, cluster::Inventory& inventory,
                ChaosPlan plan, kube::KubeCluster* kube = nullptr,
                ceph::CephCluster* ceph = nullptr, mon::Registry* metrics = nullptr);

  /// Schedule every fault in the plan (delays relative to now). Call once,
  /// before or while the workload runs.
  void arm();

  const ChaosReport& report() const { return report_; }
  const ChaosPlan& plan() const { return plan_; }

  /// Observe every executed fault: (kind, virtual time, victim count).
  /// Used by tools/determinism_check --chaos to fingerprint the fault trace;
  /// also handy for scenario debugging. One hook; set empty to clear.
  void set_fault_hook(std::function<void(FaultKind, double, int)> hook) {
    fault_hook_ = std::move(hook);
  }

 private:
  void execute(const FaultEvent& ev);
  void schedule_inverse(const FaultEvent& ev);
  void count(FaultKind kind, int victims);

  sim::Simulation& sim_;
  net::Network& net_;
  cluster::Inventory& inventory_;
  kube::KubeCluster* kube_;
  ceph::CephCluster* ceph_;
  mon::Registry* metrics_;
  ChaosPlan plan_;
  util::Rng rng_;
  ChaosReport report_;
  std::function<void(FaultKind, double, int)> fault_hook_;
  bool armed_ = false;
};

}  // namespace chase::chaos
