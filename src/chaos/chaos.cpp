#include "chaos/chaos.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.hpp"

namespace chase::chaos {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::NodeCrash: return "node_crash";
    case FaultKind::NodeRecover: return "node_recover";
    case FaultKind::NodeDegrade: return "node_degrade";
    case FaultKind::NodeRestore: return "node_restore";
    case FaultKind::LinkPartition: return "link_partition";
    case FaultKind::LinkHeal: return "link_heal";
    case FaultKind::LinkDegrade: return "link_degrade";
    case FaultKind::LinkRestore: return "link_restore";
    case FaultKind::OsdFail: return "osd_fail";
    case FaultKind::OsdRecover: return "osd_recover";
    case FaultKind::PodKill: return "pod_kill";
    case FaultKind::SitePartition: return "site_partition";
    case FaultKind::SiteHeal: return "site_heal";
  }
  return "unknown";
}

namespace {

FaultKind inverse_of(FaultKind kind) {
  switch (kind) {
    case FaultKind::NodeCrash: return FaultKind::NodeRecover;
    case FaultKind::NodeDegrade: return FaultKind::NodeRestore;
    case FaultKind::LinkPartition: return FaultKind::LinkHeal;
    case FaultKind::LinkDegrade: return FaultKind::LinkRestore;
    case FaultKind::OsdFail: return FaultKind::OsdRecover;
    case FaultKind::SitePartition: return FaultKind::SiteHeal;
    default: break;
  }
  CHASE_ASSERT(false, "fault kind has no inverse");
  return kind;
}

bool has_inverse(FaultKind kind) {
  return kind == FaultKind::NodeCrash || kind == FaultKind::NodeDegrade ||
         kind == FaultKind::LinkPartition || kind == FaultKind::LinkDegrade ||
         kind == FaultKind::OsdFail || kind == FaultKind::SitePartition;
}

/// Draw k distinct indices out of [0, n) with a partial Fisher-Yates shuffle.
std::vector<std::size_t> draw_distinct(util::Rng& rng, std::size_t n, std::size_t k) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  k = std::min(k, n);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.uniform_u64(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::size_t victim_count(double fraction, std::size_t n) {
  if (n == 0 || fraction <= 0.0) return 0;
  const auto k = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(n) - 1e-9));
  return std::clamp<std::size_t>(k, 1, n);
}

}  // namespace

ChaosPlan& ChaosPlan::crash_node(double at, cluster::MachineId machine, double down_for) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::NodeCrash;
  ev.machine = machine;
  ev.duration = down_for;
  events_.push_back(std::move(ev));
  return *this;
}

ChaosPlan& ChaosPlan::crash_fraction(double at, std::vector<cluster::MachineId> pool,
                                     double fraction, double down_for) {
  CHASE_ASSERT(fraction > 0.0 && fraction <= 1.0, "crash fraction out of (0, 1]");
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::NodeCrash;
  ev.pool = std::move(pool);
  ev.fraction = fraction;
  ev.duration = down_for;
  events_.push_back(std::move(ev));
  return *this;
}

ChaosPlan& ChaosPlan::degrade_node(double at, cluster::MachineId machine, double factor,
                                   double degraded_for) {
  CHASE_ASSERT(machine >= 0, "degrade_node needs an explicit machine");
  CHASE_ASSERT(factor > 0.0, "degrade factor must be positive (use crash_node)");
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::NodeDegrade;
  ev.machine = machine;
  ev.factor = factor;
  ev.duration = degraded_for;
  events_.push_back(std::move(ev));
  return *this;
}

ChaosPlan& ChaosPlan::partition_link(double at, net::LinkId link, double down_for) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::LinkPartition;
  ev.link = link;
  ev.duration = down_for;
  events_.push_back(std::move(ev));
  return *this;
}

ChaosPlan& ChaosPlan::partition_site(double at, net::SiteId site, double down_for) {
  CHASE_ASSERT(site >= 0, "partition_site needs a valid site id");
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::SitePartition;
  ev.site = site;
  ev.duration = down_for;
  events_.push_back(std::move(ev));
  return *this;
}

ChaosPlan& ChaosPlan::degrade_link(double at, net::LinkId link, double factor,
                                   double degraded_for) {
  CHASE_ASSERT(factor > 0.0, "degrade factor must be positive (use partition_link)");
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::LinkDegrade;
  ev.link = link;
  ev.factor = factor;
  ev.duration = degraded_for;
  events_.push_back(std::move(ev));
  return *this;
}

ChaosPlan& ChaosPlan::fail_osd(double at, int osd, double down_for) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::OsdFail;
  ev.osd = osd;
  ev.duration = down_for;
  events_.push_back(std::move(ev));
  return *this;
}

ChaosPlan& ChaosPlan::kill_pods(double at, std::string ns, kube::Labels selector,
                                double fraction) {
  CHASE_ASSERT(fraction > 0.0 && fraction <= 1.0, "kill fraction out of (0, 1]");
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::PodKill;
  ev.ns = std::move(ns);
  ev.selector = std::move(selector);
  ev.fraction = fraction;
  events_.push_back(std::move(ev));
  return *this;
}

ChaosInjector::ChaosInjector(sim::Simulation& sim, net::Network& net,
                             cluster::Inventory& inventory, ChaosPlan plan,
                             kube::KubeCluster* kube, ceph::CephCluster* ceph,
                             mon::Registry* metrics)
    : sim_(sim), net_(net), inventory_(inventory), kube_(kube), ceph_(ceph),
      metrics_(metrics), plan_(std::move(plan)), rng_(plan_.seed()) {}

void ChaosInjector::arm() {
  CHASE_ASSERT(!armed_, "ChaosInjector::arm called twice");
  armed_ = true;
  // Copy events out so the injector's plan stays inspectable; delays are
  // relative to now. Random draws happen at fire time, in event order, so the
  // victim sequence is a pure function of (plan, seed).
  for (const FaultEvent& ev : plan_.events()) {
    CHASE_ASSERT(ev.at >= 0.0, "fault delay must be non-negative");
    sim_.schedule(ev.at, [this, ev] { execute(ev); });
  }
}

void ChaosInjector::count(FaultKind kind, int victims) {
  report_.events_executed += 1;
  switch (kind) {
    case FaultKind::NodeCrash: report_.node_crashes += victims; break;
    case FaultKind::NodeRecover: report_.node_recoveries += victims; break;
    case FaultKind::NodeDegrade: report_.node_degradations += victims; break;
    case FaultKind::NodeRestore: report_.node_restores += victims; break;
    case FaultKind::LinkPartition: report_.link_partitions += victims; break;
    case FaultKind::LinkHeal: report_.link_heals += victims; break;
    case FaultKind::LinkDegrade: report_.link_degradations += victims; break;
    case FaultKind::LinkRestore: report_.link_restores += victims; break;
    case FaultKind::OsdFail: report_.osd_failures += victims; break;
    case FaultKind::OsdRecover: report_.osd_recoveries += victims; break;
    case FaultKind::PodKill: report_.pods_killed += victims; break;
    case FaultKind::SitePartition: report_.site_partitions += victims; break;
    case FaultKind::SiteHeal: report_.site_heals += victims; break;
  }
  if (metrics_ != nullptr) {
    metrics_->record("chaos_fault", {{"kind", fault_kind_name(kind)}}, sim_.now(),
                     static_cast<double>(victims));
  }
  if (fault_hook_) fault_hook_(kind, sim_.now(), victims);
}

void ChaosInjector::schedule_inverse(const FaultEvent& ev) {
  if (ev.duration < 0.0 || !has_inverse(ev.kind)) return;
  FaultEvent inv = ev;
  inv.kind = inverse_of(ev.kind);
  inv.duration = -1.0;
  inv.pool.clear();
  sim_.schedule(ev.duration, [this, inv] { execute(inv); });
}

void ChaosInjector::execute(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::NodeCrash: {
      // Resolve victims now: explicit machine, or a random still-up subset of
      // the pool. Already-down machines are skipped rather than double-failed.
      std::vector<cluster::MachineId> victims;
      if (ev.machine >= 0) {
        if (inventory_.up(ev.machine)) victims.push_back(ev.machine);
      } else {
        std::vector<cluster::MachineId> alive;
        for (cluster::MachineId m : ev.pool) {
          if (inventory_.up(m)) alive.push_back(m);
        }
        for (std::size_t i : draw_distinct(rng_, alive.size(),
                                           victim_count(ev.fraction, alive.size()))) {
          victims.push_back(alive[i]);
        }
      }
      for (cluster::MachineId m : victims) {
        inventory_.set_up(m, false);
        if (ev.duration >= 0.0) {
          FaultEvent inv;
          inv.kind = FaultKind::NodeRecover;
          inv.machine = m;
          sim_.schedule(ev.duration, [this, inv] { execute(inv); });
        }
      }
      count(ev.kind, static_cast<int>(victims.size()));
      break;
    }
    case FaultKind::NodeRecover: {
      const bool was_down = !inventory_.up(ev.machine);
      if (was_down) inventory_.set_up(ev.machine, true);
      count(ev.kind, was_down ? 1 : 0);
      break;
    }
    case FaultKind::NodeDegrade:
    case FaultKind::NodeRestore: {
      // Scale (or restore) every link whose source endpoint is the machine's
      // network node. Links are built as full-duplex pairs and
      // set_link_bandwidth_factor applies to both directions of the pair, so
      // scaling the node's outgoing links covers its incoming ones too.
      const net::NodeId node = inventory_.machine(ev.machine).net_node;
      const double factor = ev.kind == FaultKind::NodeDegrade ? ev.factor : 1.0;
      int touched = 0;
      for (net::LinkId l : net_.links_at(node)) {
        net_.set_link_bandwidth_factor(l, factor);
        ++touched;
      }
      count(ev.kind, touched);
      if (ev.kind == FaultKind::NodeDegrade) schedule_inverse(ev);
      break;
    }
    case FaultKind::LinkPartition: {
      const bool was_up = net_.link_up(ev.link);
      if (was_up) net_.set_link_up(ev.link, false);
      count(ev.kind, was_up ? 1 : 0);
      if (was_up) schedule_inverse(ev);
      break;
    }
    case FaultKind::LinkHeal: {
      const bool was_down = !net_.link_up(ev.link);
      if (was_down) net_.set_link_up(ev.link, true);
      count(ev.kind, was_down ? 1 : 0);
      break;
    }
    case FaultKind::LinkDegrade: {
      net_.set_link_bandwidth_factor(ev.link, ev.factor);
      count(ev.kind, 1);
      schedule_inverse(ev);
      break;
    }
    case FaultKind::LinkRestore: {
      net_.set_link_bandwidth_factor(ev.link, 1.0);
      count(ev.kind, 1);
      break;
    }
    case FaultKind::OsdFail: {
      CHASE_ASSERT(ceph_ != nullptr, "OSD fault in a plan without a Ceph cluster");
      ceph_->set_osd_up(ev.osd, false);
      count(ev.kind, 1);
      schedule_inverse(ev);
      break;
    }
    case FaultKind::OsdRecover: {
      CHASE_ASSERT(ceph_ != nullptr, "OSD fault in a plan without a Ceph cluster");
      ceph_->set_osd_up(ev.osd, true);
      count(ev.kind, 1);
      break;
    }
    case FaultKind::SitePartition: {
      // Cut the site's entire WAN attachment; links already down (e.g. an
      // overlapping link fault) are skipped rather than double-partitioned.
      int cut = 0;
      for (net::LinkId l : net_.site_boundary_links(ev.site)) {
        if (!net_.link_up(l)) continue;
        net_.set_link_up(l, false);
        ++cut;
      }
      count(ev.kind, cut);
      if (cut > 0) schedule_inverse(ev);
      break;
    }
    case FaultKind::SiteHeal: {
      // Heal re-ups *every* boundary link of the site, including any an
      // overlapping link fault took down — islanding is a site-granular
      // fault, so its recovery is too (documented on partition_site).
      int healed = 0;
      for (net::LinkId l : net_.site_boundary_links(ev.site)) {
        if (net_.link_up(l)) continue;
        net_.set_link_up(l, true);
        ++healed;
      }
      count(ev.kind, healed);
      break;
    }
    case FaultKind::PodKill: {
      CHASE_ASSERT(kube_ != nullptr, "pod-kill fault in a plan without Kubernetes");
      std::vector<kube::PodPtr> alive;
      for (const auto& pod : kube_->list_pods(ev.ns, ev.selector)) {
        if (!pod->terminal()) alive.push_back(pod);
      }
      int killed = 0;
      for (std::size_t i : draw_distinct(rng_, alive.size(),
                                         victim_count(ev.fraction, alive.size()))) {
        kube_->disrupt_pod(alive[i]->meta.ns, alive[i]->meta.name);
        ++killed;
      }
      count(ev.kind, killed);
      break;
    }
  }
}

}  // namespace chase::chaos
