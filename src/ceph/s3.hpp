#pragma once
/// \file s3.hpp
/// S3-compatible object gateway over the Ceph cluster (paper §II-A: data in
/// the Ceph Object Store is "compatible with other cloud storage solutions
/// such as Amazon S3, OpenStack Swift, and various supercomputer storage
/// architectures... e.g., at the San Diego Supercomputer Center"). Buckets,
/// keyed objects, prefix listing, and multipart uploads whose completion is
/// a server-side compose between OSDs.

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ceph/ceph.hpp"

namespace chase::ceph {

class S3Gateway {
 public:
  /// Backs all buckets with one Ceph pool (created if absent).
  explicit S3Gateway(CephCluster& cluster, std::string pool_name = "s3-objects");

  // --- buckets ---------------------------------------------------------------
  bool create_bucket(const std::string& bucket);
  /// Fails (returns false) unless the bucket is empty.
  bool delete_bucket(const std::string& bucket);
  bool bucket_exists(const std::string& bucket) const;
  std::vector<std::string> list_buckets() const;

  // --- objects ----------------------------------------------------------------
  /// PUT: stores the object; fails if the bucket does not exist.
  IoPtr put_object(net::NodeId client, const std::string& bucket,
                   const std::string& key, Bytes size);
  IoPtr get_object(net::NodeId client, const std::string& bucket,
                   const std::string& key);
  bool delete_object(const std::string& bucket, const std::string& key);
  std::optional<Bytes> head_object(const std::string& bucket,
                                   const std::string& key) const;
  /// Keys under a prefix, sorted.
  std::vector<std::string> list_objects(const std::string& bucket,
                                        const std::string& prefix = "") const;

  // --- multipart uploads ---------------------------------------------------------
  /// Returns an upload id, or empty string if the bucket does not exist.
  std::string initiate_multipart(const std::string& bucket, const std::string& key);
  /// Upload one part (part numbers may arrive in any order).
  IoPtr upload_part(net::NodeId client, const std::string& upload_id, int part_number,
                    Bytes size);
  /// Compose the parts into the final object (server-side data movement
  /// between OSDs); the handle completes when the object is durable.
  IoPtr complete_multipart(const std::string& upload_id);
  /// Drop an in-progress upload and free its parts.
  void abort_multipart(const std::string& upload_id);

 private:
  struct Multipart {
    std::string bucket;
    std::string key;
    std::map<int, Bytes> parts;  // part number -> size (after durability)
  };
  static sim::Task do_complete(S3Gateway* self, std::string upload_id, IoPtr io);
  std::string object_name(const std::string& bucket, const std::string& key) const {
    return bucket + "/" + key;
  }
  std::string part_name(const std::string& upload_id, int part) const {
    return "_mpu/" + upload_id + "/" + std::to_string(part);
  }

  CephCluster& cluster_;
  std::string pool_;
  std::map<std::string, std::set<std::string>> buckets_;  // bucket -> keys
  std::map<std::string, Multipart> uploads_;
  std::uint64_t next_upload_ = 1;
};

}  // namespace chase::ceph
