#pragma once
/// \file cephfs.hpp
/// A POSIX-ish file namespace over the object store — the "CephFS accessible
/// by all nodes" the workflow mounts into every pod (paper §III-B). Files map
/// 1:1 to objects in a dedicated pool; directories are implicit prefixes.

#include <optional>
#include <string>
#include <vector>

#include "ceph/ceph.hpp"

namespace chase::ceph {

class CephFs {
 public:
  /// Creates (if needed) the backing pool.
  CephFs(CephCluster& cluster, std::string pool_name = "cephfs-data",
         int replication = 0);

  /// Write a whole file from `client`; awaits durability of all replicas.
  /// (Coroutine: `path` by value so it lives in the frame across awaits.)
  sim::Task write_file(net::NodeId client, std::string path, Bytes size);
  IoPtr write_file_async(net::NodeId client, const std::string& path, Bytes size);
  /// Read a whole file to `client`.
  sim::Task read_file(net::NodeId client, std::string path);
  IoPtr read_file_async(net::NodeId client, const std::string& path);

  void remove_file(const std::string& path);
  bool exists(const std::string& path) const;
  std::optional<Bytes> file_size(const std::string& path) const;
  /// All paths under a directory prefix (e.g. "/merra2/").
  std::vector<std::string> list(const std::string& prefix) const;
  /// Total logical bytes under a prefix.
  Bytes bytes_under(const std::string& prefix) const;

  const std::string& pool() const { return pool_; }

 private:
  std::string object_name(const std::string& path) const { return "fs:" + path; }

  CephCluster& cluster_;
  std::string pool_;
  std::vector<std::string> paths_;  // sorted registry of live paths
};

}  // namespace chase::ceph
