#include "ceph/cephfs.hpp"

#include <algorithm>

namespace chase::ceph {

CephFs::CephFs(CephCluster& cluster, std::string pool_name, int replication)
    : cluster_(cluster), pool_(std::move(pool_name)) {
  if (!cluster_.has_pool(pool_)) cluster_.create_pool(pool_, replication);
}

IoPtr CephFs::write_file_async(net::NodeId client, const std::string& path, Bytes size) {
  auto it = std::lower_bound(paths_.begin(), paths_.end(), path);
  if (it == paths_.end() || *it != path) paths_.insert(it, path);
  return cluster_.put_async(client, pool_, object_name(path), size);
}

sim::Task CephFs::write_file(net::NodeId client, std::string path, Bytes size) {
  auto io = write_file_async(client, path, size);
  co_await io->done->wait(cluster_.sim());
}

IoPtr CephFs::read_file_async(net::NodeId client, const std::string& path) {
  return cluster_.get_async(client, pool_, object_name(path));
}

sim::Task CephFs::read_file(net::NodeId client, std::string path) {
  auto io = read_file_async(client, path);
  co_await io->done->wait(cluster_.sim());
}

void CephFs::remove_file(const std::string& path) {
  auto it = std::lower_bound(paths_.begin(), paths_.end(), path);
  if (it != paths_.end() && *it == path) paths_.erase(it);
  cluster_.remove(pool_, object_name(path));
}

bool CephFs::exists(const std::string& path) const {
  return cluster_.exists(pool_, object_name(path));
}

std::optional<Bytes> CephFs::file_size(const std::string& path) const {
  return cluster_.object_size(pool_, object_name(path));
}

std::vector<std::string> CephFs::list(const std::string& prefix) const {
  std::vector<std::string> out;
  auto it = std::lower_bound(paths_.begin(), paths_.end(), prefix);
  for (; it != paths_.end() && it->compare(0, prefix.size(), prefix) == 0; ++it) {
    out.push_back(*it);
  }
  return out;
}

Bytes CephFs::bytes_under(const std::string& prefix) const {
  Bytes total = 0;
  for (const auto& path : list(prefix)) {
    if (auto size = file_size(path)) total += *size;
  }
  return total;
}

}  // namespace chase::ceph
