#include "ceph/ceph.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace chase::ceph {

namespace {

std::uint64_t str_hash(const std::string& s) {
  // FNV-1a, then mixed.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return util::hash_mix(h);
}

}  // namespace

CephCluster::CephCluster(sim::Simulation& sim, net::Network& net,
                         cluster::Inventory& inventory, mon::Registry* metrics,
                         Options options)
    : sim_(sim), net_(net), inventory_(inventory), metrics_(metrics),
      options_(options) {
  inventory_.subscribe([this](cluster::MachineId m, bool up) { on_machine_state(m, up); });
  if (metrics_ != nullptr) {
    metrics_->register_probe("ceph_bytes_stored", {},
                             [this] { return static_cast<double>(health().bytes_stored); });
    metrics_->register_probe("ceph_degraded_pgs", {},
                             [this] { return static_cast<double>(health().pgs_degraded); });
    metrics_->register_probe("ceph_bytes_written_total", {},
                             [this] { return bytes_written_; });
    metrics_->register_probe("ceph_bytes_read_total", {}, [this] { return bytes_read_; });
  }
  audit_hook_ = sim_.add_audit_hook([this] { check_invariants(); });
}

CephCluster::CephCluster(sim::Simulation& sim, net::Network& net,
                         cluster::Inventory& inventory, mon::Registry* metrics)
    : CephCluster(sim, net, inventory, metrics, Options{}) {}

CephCluster::~CephCluster() { sim_.remove_audit_hook(audit_hook_); }

// --- OSDs -------------------------------------------------------------------------

int CephCluster::add_osd(cluster::MachineId machine) {
  const auto& spec = inventory_.machine(machine).spec;
  Osd osd;
  osd.machine = machine;
  osd.capacity = spec.disk_capacity;
  osd.write_bw = spec.disk_write_bw;
  osd.read_bw = spec.disk_read_bw;
  osd.up = inventory_.machine(machine).up;
  osd.disk = std::make_unique<sim::Semaphore>(1);
  osds_.push_back(std::move(osd));
  ++epoch_;
  remap_all_pools("osd added");
  return static_cast<int>(osds_.size() - 1);
}

Bytes CephCluster::total_capacity() const {
  Bytes total = 0;
  for (const auto& osd : osds_) total += osd.capacity;
  return total;
}

// --- pools ------------------------------------------------------------------------

void CephCluster::create_pool(const std::string& name, int replication) {
  Pool pool;
  pool.name = name;
  pool.replication = replication > 0 ? replication : options_.replication;
  pool.pgs.resize(static_cast<std::size_t>(options_.pg_count));
  pools_[name] = std::move(pool);
  remap_pool(pools_[name]);
}

// --- CRUSH -------------------------------------------------------------------------

std::vector<int> CephCluster::crush(const std::string& pool, int pg, int count) const {
  // straw2: each candidate OSD draws straw = ln(u) / weight with u a pure
  // function of (pool, pg, osd); the largest straws win. Replicas must land
  // on distinct machines (failure domain = host).
  struct Straw {
    double value;
    int osd;
  };
  const std::uint64_t seed = util::hash_combine(str_hash(pool), static_cast<std::uint64_t>(pg));
  std::vector<Straw> straws;
  straws.reserve(osds_.size());
  for (std::size_t i = 0; i < osds_.size(); ++i) {
    if (!osds_[i].up) continue;
    const double weight =
        static_cast<double>(osds_[i].capacity) / static_cast<double>(util::tb(1));
    if (weight <= 0) continue;
    const std::uint64_t h = util::hash_combine(seed, static_cast<std::uint64_t>(i));
    // u in (0, 1]; ln(u) <= 0, divided by weight: bigger weight -> straw
    // closer to zero -> more likely to be among the max straws.
    const double u = (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;
    straws.push_back(Straw{std::log(u) / weight, static_cast<int>(i)});
  }
  std::sort(straws.begin(), straws.end(), [](const Straw& a, const Straw& b) {
    if (a.value != b.value) return a.value > b.value;
    return a.osd < b.osd;
  });
  std::vector<int> chosen;
  std::set<cluster::MachineId> machines_used;
  for (const Straw& s : straws) {
    if (static_cast<int>(chosen.size()) >= count) break;
    const auto machine = osds_[static_cast<std::size_t>(s.osd)].machine;
    if (machines_used.count(machine)) continue;
    machines_used.insert(machine);
    chosen.push_back(s.osd);
  }
  return chosen;
}

int CephCluster::pg_of(const std::string& /*pool*/, const std::string& object) const {
  return static_cast<int>(str_hash(object) % static_cast<std::uint64_t>(options_.pg_count));
}

std::vector<int> CephCluster::acting_set(const std::string& pool, int pg) const {
  return pools_.at(pool).pgs.at(static_cast<std::size_t>(pg)).acting;
}

void CephCluster::remap_all_pools(const char* /*why*/) {
  for (auto& [name, pool] : pools_) remap_pool(pool);
}

void CephCluster::remap_pool(Pool& pool) {
  for (std::size_t pg = 0; pg < pool.pgs.size(); ++pg) {
    PlacementGroup& group = pool.pgs[pg];
    std::vector<int> target = crush(pool.name, static_cast<int>(pg), pool.replication);
    if (target == group.acting) continue;
    const std::vector<int> previous = group.acting;
    group.acting = target;
    if (group.objects.empty() || previous.empty()) {
      group.state = static_cast<int>(target.size()) >= pool.replication
                        ? PgState::ActiveClean
                        : PgState::Degraded;
      continue;
    }
    // Data must move: recover asynchronously from surviving replicas.
    group.state = PgState::Recovering;
    sim_.spawn(recover_pg(this, pool.name, static_cast<int>(pg), previous, target));
  }
}

sim::Task CephCluster::recover_pg(CephCluster* self, std::string pool_name, int pg_index,
                                  std::vector<int> from_set, std::vector<int> to_set) {
  const std::uint64_t epoch = self->epoch_;
  auto& pool = self->pools_.at(pool_name);
  auto& group = pool.pgs.at(static_cast<std::size_t>(pg_index));
  const Bytes pg_bytes = group.bytes();

  // Source: first surviving previous replica; destinations: new members.
  int source = -1;
  for (int osd : from_set) {
    if (osd < static_cast<int>(self->osds_.size()) &&
        self->osds_[static_cast<std::size_t>(osd)].up) {
      source = osd;
      break;
    }
  }
  std::vector<int> newcomers;
  for (int osd : to_set) {
    if (std::find(from_set.begin(), from_set.end(), osd) == from_set.end()) {
      newcomers.push_back(osd);
    }
  }
  if (source >= 0 && pg_bytes > 0) {
    for (int osd : newcomers) {
      if (self->epoch_ != epoch) co_return;  // superseded by a newer map
      net::TransferOptions opts;
      opts.rate_cap = self->options_.recovery_rate;
      auto xfer = self->net_.transfer(self->osd_net_node(source),
                                      self->osd_net_node(osd), pg_bytes, opts);
      co_await xfer->done->wait(self->sim_);
      // The map may have changed mid-transfer (e.g. the newcomer itself went
      // down, zeroing its accounting); a fresh recovery owns cleanup then.
      if (self->epoch_ != epoch || xfer->failed) co_return;
      self->osds_[static_cast<std::size_t>(osd)].used += pg_bytes;
    }
    // Free space held on previous replicas that left the set.
    for (int osd : from_set) {
      if (std::find(to_set.begin(), to_set.end(), osd) == to_set.end() &&
          osd < static_cast<int>(self->osds_.size()) &&
          self->osds_[static_cast<std::size_t>(osd)].up) {
        auto& o = self->osds_[static_cast<std::size_t>(osd)];
        o.used = o.used >= pg_bytes ? o.used - pg_bytes : 0;
      }
    }
  }
  if (self->epoch_ != epoch) co_return;
  // Re-acquire before the final write: `pool` and `group` were bound before
  // the recovery transfers, and pools_/pgs may have moved while this frame
  // was suspended.
  auto& pool_now = self->pools_.at(pool_name);
  auto& group_now = pool_now.pgs.at(static_cast<std::size_t>(pg_index));
  group_now.state = static_cast<int>(group_now.acting.size()) >= pool_now.replication
                        ? PgState::ActiveClean
                        : PgState::Degraded;
}

// --- object I/O -----------------------------------------------------------------------

Bytes CephCluster::PlacementGroup::bytes() const {
  Bytes total = 0;
  for (const auto& [name, size] : objects) total += size;
  return total;
}

net::NodeId CephCluster::osd_net_node(int osd) const {
  return inventory_.machine(osds_.at(static_cast<std::size_t>(osd)).machine).net_node;
}

sim::Task CephCluster::disk_io(int osd, Bytes size, bool write) {
  // The semaphore lives on the heap, so this pointer stays valid even if
  // osds_ reallocates while the frame is parked in the acquire queue; the
  // Osd reference itself is re-acquired after every suspension.
  sim::Semaphore* disk = osds_.at(static_cast<std::size_t>(osd)).disk.get();
  co_await disk->acquire();
  const Osd& o = osds_.at(static_cast<std::size_t>(osd));
  const double bw = write ? o.write_bw : o.read_bw;
  co_await sim_.sleep(static_cast<double>(size) / bw);
  // chase-lint: allow(coro-stale-ref) Semaphore is heap-owned by its Osd (unique_ptr); the pointer survives osds_ growth across the sleeps
  disk->release(sim_);
}

IoPtr CephCluster::put_async(net::NodeId client, const std::string& pool,
                             const std::string& object, Bytes size) {
  auto io = std::make_shared<IoResult>();
  io->bytes = size;
  io->start_time = sim_.now();
  sim_.spawn(do_put(this, client, pool, object, size, io));
  return io;
}

sim::Task CephCluster::do_put(CephCluster* self, net::NodeId client, std::string pool_name,
                              std::string object, Bytes size, IoPtr io) {
  auto finish = [&](bool ok) {
    io->ok = ok;
    io->finish_time = self->sim_.now();
    io->done->trigger(self->sim_);
  };
  auto pit = self->pools_.find(pool_name);
  if (pit == self->pools_.end()) {
    finish(false);
    co_return;
  }
  Pool& pool = pit->second;
  const int pg = self->pg_of(pool_name, object);
  PlacementGroup& group = pool.pgs.at(static_cast<std::size_t>(pg));
  if (group.acting.empty()) {
    finish(false);
    co_return;
  }
  const std::vector<int> acting = group.acting;
  const int primary = acting[0];

  co_await self->sim_.sleep(self->options_.op_latency);
  // Client -> primary.
  auto main_xfer = self->net_.transfer(client, self->osd_net_node(primary), size);
  co_await main_xfer->done->wait(self->sim_);
  if (main_xfer->failed) {
    finish(false);
    co_return;
  }
  co_await self->disk_io(primary, size, /*write=*/true);

  // Primary -> replicas, in parallel.
  std::vector<net::TransferPtr> xfers;
  for (std::size_t r = 1; r < acting.size(); ++r) {
    xfers.push_back(self->net_.transfer(self->osd_net_node(primary),
                                        self->osd_net_node(acting[r]), size));
  }
  bool ok = true;
  for (auto& x : xfers) {
    co_await x->done->wait(self->sim_);
    ok = ok && !x->failed;
  }
  for (std::size_t r = 1; r < acting.size() && ok; ++r) {
    co_await self->disk_io(acting[r], size, /*write=*/true);
  }
  if (!ok) {
    finish(false);
    co_return;
  }

  // Commit: update capacity accounting (overwrite frees the old size).
  // Re-acquire the PG first: `group` was bound before the replication
  // awaits, and the pool may have been dropped while this frame slept.
  auto commit_pit = self->pools_.find(pool_name);
  if (commit_pit == self->pools_.end()) {
    finish(false);
    co_return;
  }
  PlacementGroup& commit_group =
      commit_pit->second.pgs.at(static_cast<std::size_t>(pg));
  auto existing = commit_group.objects.find(object);
  const Bytes old_size = existing == commit_group.objects.end() ? 0 : existing->second;
  commit_group.objects[object] = size;
  for (int osd : acting) {
    auto& o = self->osds_.at(static_cast<std::size_t>(osd));
    if (!o.up) continue;  // replica died mid-put; its copy is gone
    o.used += size;
    o.used = o.used >= old_size ? o.used - old_size : 0;
  }
  self->bytes_written_ += static_cast<double>(size) * static_cast<double>(acting.size());
  finish(true);
}

IoPtr CephCluster::get_async(net::NodeId client, const std::string& pool,
                             const std::string& object) {
  auto io = std::make_shared<IoResult>();
  io->start_time = sim_.now();
  sim_.spawn(do_get(this, client, pool, object, io));
  return io;
}

sim::Task CephCluster::do_get(CephCluster* self, net::NodeId client, std::string pool_name,
                              std::string object, IoPtr io) {
  auto finish = [&](bool ok) {
    io->ok = ok;
    io->finish_time = self->sim_.now();
    io->done->trigger(self->sim_);
  };
  auto pit = self->pools_.find(pool_name);
  if (pit == self->pools_.end()) {
    finish(false);
    co_return;
  }
  Pool& pool = pit->second;
  const int pg = self->pg_of(pool_name, object);
  PlacementGroup& group = pool.pgs.at(static_cast<std::size_t>(pg));
  auto oit = group.objects.find(object);
  if (oit == group.objects.end() || group.acting.empty()) {
    finish(false);
    co_return;
  }
  const Bytes size = oit->second;
  io->bytes = size;
  const int primary = group.acting[0];

  co_await self->sim_.sleep(self->options_.op_latency);
  co_await self->disk_io(primary, size, /*write=*/false);
  auto xfer = self->net_.transfer(self->osd_net_node(primary), client, size);
  co_await xfer->done->wait(self->sim_);
  if (xfer->failed) {
    finish(false);
    co_return;
  }
  self->bytes_read_ += static_cast<double>(size);
  finish(true);
}

void CephCluster::remove(const std::string& pool_name, const std::string& object) {
  auto pit = pools_.find(pool_name);
  if (pit == pools_.end()) return;
  const int pg = pg_of(pool_name, object);
  PlacementGroup& group = pit->second.pgs.at(static_cast<std::size_t>(pg));
  auto oit = group.objects.find(object);
  if (oit == group.objects.end()) return;
  const Bytes size = oit->second;
  for (int osd : group.acting) {
    auto& o = osds_.at(static_cast<std::size_t>(osd));
    o.used = o.used >= size ? o.used - size : 0;
  }
  group.objects.erase(oit);
}

sim::Task CephCluster::compose(std::string pool_name, std::string dst,
                               std::vector<std::string> sources, bool* ok) {
  *ok = false;
  auto pit = pools_.find(pool_name);
  if (pit == pools_.end()) co_return;
  Pool& pool = pit->second;

  // All sources must exist; total size is their sum.
  Bytes total = 0;
  for (const auto& src : sources) {
    auto size = object_size(pool_name, src);
    if (!size) co_return;
    total += *size;
  }
  const int dst_pg = pg_of(pool_name, dst);
  PlacementGroup& dst_group = pool.pgs.at(static_cast<std::size_t>(dst_pg));
  if (dst_group.acting.empty()) co_return;
  const std::vector<int> dst_acting = dst_group.acting;
  const int dst_primary = dst_acting[0];

  co_await sim_.sleep(options_.op_latency);
  // Gather: each source's primary streams to the destination primary.
  for (const auto& src : sources) {
    const int src_pg = pg_of(pool_name, src);
    const auto& src_group = pool.pgs.at(static_cast<std::size_t>(src_pg));
    auto oit = src_group.objects.find(src);
    if (oit == src_group.objects.end() || src_group.acting.empty()) co_return;
    const Bytes size = oit->second;
    const int src_primary = src_group.acting[0];
    if (src_primary != dst_primary) {
      auto xfer = net_.transfer(osd_net_node(src_primary), osd_net_node(dst_primary),
                                size);
      co_await xfer->done->wait(sim_);
      if (xfer->failed) co_return;
    }
    co_await disk_io(dst_primary, size, /*write=*/true);
  }
  // Replicate the composed object.
  for (std::size_t r = 1; r < dst_acting.size(); ++r) {
    auto xfer = net_.transfer(osd_net_node(dst_primary), osd_net_node(dst_acting[r]),
                              total);
    co_await xfer->done->wait(sim_);
    if (xfer->failed) co_return;
    co_await disk_io(dst_acting[r], total, /*write=*/true);
  }
  // Commit: account the destination, free the sources. Re-acquire the PG:
  // `dst_group` was bound before the gather/replicate awaits, and the pool
  // may have been dropped while this frame was suspended.
  auto commit_pit = pools_.find(pool_name);
  if (commit_pit == pools_.end()) co_return;
  PlacementGroup& commit_group =
      commit_pit->second.pgs.at(static_cast<std::size_t>(dst_pg));
  auto existing = commit_group.objects.find(dst);
  const Bytes old_size = existing == commit_group.objects.end() ? 0 : existing->second;
  commit_group.objects[dst] = total;
  for (int osd : dst_acting) {
    auto& o = osds_.at(static_cast<std::size_t>(osd));
    if (!o.up) continue;  // replica died mid-compose; its copy is gone
    o.used += total;
    o.used = o.used >= old_size ? o.used - old_size : 0;
  }
  bytes_written_ += static_cast<double>(total) * static_cast<double>(dst_acting.size());
  for (const auto& src : sources) {
    if (src != dst) remove(pool_name, src);
  }
  *ok = true;
}

sim::Task CephCluster::put(net::NodeId client, std::string pool, std::string object,
                           Bytes size) {
  auto io = put_async(client, pool, object, size);
  co_await io->done->wait(sim_);
}

sim::Task CephCluster::get(net::NodeId client, std::string pool, std::string object) {
  auto io = get_async(client, pool, object);
  co_await io->done->wait(sim_);
}

bool CephCluster::exists(const std::string& pool, const std::string& object) const {
  return object_size(pool, object).has_value();
}

std::optional<Bytes> CephCluster::object_size(const std::string& pool,
                                              const std::string& object) const {
  auto pit = pools_.find(pool);
  if (pit == pools_.end()) return std::nullopt;
  const int pg = pg_of(pool, object);
  const auto& group = pit->second.pgs.at(static_cast<std::size_t>(pg));
  auto oit = group.objects.find(object);
  if (oit == group.objects.end()) return std::nullopt;
  return oit->second;
}

std::size_t CephCluster::object_count(const std::string& pool) const {
  auto pit = pools_.find(pool);
  if (pit == pools_.end()) return 0;
  std::size_t n = 0;
  for (const auto& pg : pit->second.pgs) n += pg.objects.size();
  return n;
}

// --- health ------------------------------------------------------------------------------

Health CephCluster::health() const {
  Health h;
  for (const auto& [name, pool] : pools_) {
    for (const auto& pg : pool.pgs) {
      ++h.pgs_total;
      switch (pg.state) {
        case PgState::ActiveClean:
          ++h.pgs_clean;
          break;
        case PgState::Degraded:
          ++h.pgs_degraded;
          break;
        case PgState::Recovering:
          ++h.pgs_recovering;
          break;
      }
      h.bytes_stored += pg.bytes();
    }
  }
  return h;
}

void CephCluster::check_invariants() const {
  for (const auto& osd : osds_) {
    CHASE_INVARIANT(osd.used <= osd.capacity, "OSD filled beyond its disk capacity");
    CHASE_INVARIANT(osd.up || osd.used == 0, "down OSD still accounts stored bytes");
  }
  for (const auto& [pool_name, pool] : pools_) {
    CHASE_INVARIANT(pool.pgs.size() == static_cast<std::size_t>(options_.pg_count),
                    "pool '" + pool_name + "' has the wrong PG count");
    CHASE_INVARIANT(pool.replication >= 1, "pool replication below 1");
    for (std::size_t pg = 0; pg < pool.pgs.size(); ++pg) {
      const PlacementGroup& group = pool.pgs[pg];
      CHASE_INVARIANT(group.acting.size() <=
                          static_cast<std::size_t>(pool.replication),
                      "acting set larger than the pool's replication factor");
      // CRUSH places replicas on distinct machines (failure domain = host)
      // and only on live OSDs; machine events remap synchronously, so this
      // holds at every event boundary.
      std::set<cluster::MachineId> machines;
      for (int osd : group.acting) {
        CHASE_INVARIANT(osd >= 0 && osd < static_cast<int>(osds_.size()),
                        "acting set references an unknown OSD");
        const Osd& o = osds_[static_cast<std::size_t>(osd)];
        CHASE_INVARIANT(o.up, "acting set includes a down OSD");
        CHASE_INVARIANT(machines.insert(o.machine).second,
                        "two replicas of a PG placed on the same machine");
      }
      // A clean PG holding data has its full replica complement; short sets
      // are Degraded (or Recovering while data moves).
      CHASE_INVARIANT(group.state != PgState::ActiveClean || group.objects.empty() ||
                          group.acting.size() >=
                              static_cast<std::size_t>(pool.replication),
                      "active+clean PG with fewer replicas than the pool requires");
      // Expensive: placement consistency — every object lives in the PG its
      // name hashes to; anything else is unreachable through get/remove
      // (an orphan).
      if (util::audit_level() >= 2) {
        for (const auto& [object, size] : group.objects) {
          (void)size;
          CHASE_AUDIT(pg_of(pool_name, object) == static_cast<int>(pg),
                      "orphaned object '" + object + "' stored in a PG it does not hash to");
        }
      }
    }
  }
  CHASE_INVARIANT(bytes_written_ >= 0.0 && bytes_read_ >= 0.0,
                  "I/O byte counters went negative");
}

void CephCluster::set_osd_up(int osd, bool up) {
  Osd& o = osds_.at(static_cast<std::size_t>(osd));
  if (o.up == up) return;
  o.up = up;
  if (!up) o.used = 0;  // data on the failed disk is gone
  ++epoch_;
  remap_all_pools(up ? "osd up" : "osd down");
}

void CephCluster::on_machine_state(cluster::MachineId machine, bool up) {
  bool changed = false;
  for (auto& osd : osds_) {
    if (osd.machine == machine && osd.up != up) {
      osd.up = up;
      changed = true;
      if (!up) osd.used = 0;  // data on the lost disk is gone
    }
  }
  if (changed) {
    ++epoch_;
    remap_all_pools(up ? "osd up" : "osd down");
  }
}

}  // namespace chase::ceph
