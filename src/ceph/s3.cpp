#include "ceph/s3.hpp"

#include <algorithm>

namespace chase::ceph {

S3Gateway::S3Gateway(CephCluster& cluster, std::string pool_name)
    : cluster_(cluster), pool_(std::move(pool_name)) {
  if (!cluster_.has_pool(pool_)) cluster_.create_pool(pool_);
}

bool S3Gateway::create_bucket(const std::string& bucket) {
  if (bucket.empty() || buckets_.count(bucket)) return false;
  buckets_[bucket];
  return true;
}

bool S3Gateway::delete_bucket(const std::string& bucket) {
  auto it = buckets_.find(bucket);
  if (it == buckets_.end() || !it->second.empty()) return false;
  buckets_.erase(it);
  return true;
}

bool S3Gateway::bucket_exists(const std::string& bucket) const {
  return buckets_.count(bucket) > 0;
}

std::vector<std::string> S3Gateway::list_buckets() const {
  std::vector<std::string> out;
  out.reserve(buckets_.size());
  for (const auto& [name, keys] : buckets_) out.push_back(name);
  return out;
}

IoPtr S3Gateway::put_object(net::NodeId client, const std::string& bucket,
                            const std::string& key, Bytes size) {
  if (!bucket_exists(bucket)) {
    auto io = std::make_shared<IoResult>();
    io->ok = false;
    io->finish_time = cluster_.sim().now();
    io->done->trigger(cluster_.sim());
    return io;
  }
  buckets_[bucket].insert(key);
  return cluster_.put_async(client, pool_, object_name(bucket, key), size);
}

IoPtr S3Gateway::get_object(net::NodeId client, const std::string& bucket,
                            const std::string& key) {
  return cluster_.get_async(client, pool_, object_name(bucket, key));
}

bool S3Gateway::delete_object(const std::string& bucket, const std::string& key) {
  auto it = buckets_.find(bucket);
  if (it == buckets_.end() || it->second.erase(key) == 0) return false;
  cluster_.remove(pool_, object_name(bucket, key));
  return true;
}

std::optional<Bytes> S3Gateway::head_object(const std::string& bucket,
                                            const std::string& key) const {
  return cluster_.object_size(pool_, object_name(bucket, key));
}

std::vector<std::string> S3Gateway::list_objects(const std::string& bucket,
                                                 const std::string& prefix) const {
  std::vector<std::string> out;
  auto it = buckets_.find(bucket);
  if (it == buckets_.end()) return out;
  for (const auto& key : it->second) {
    if (key.compare(0, prefix.size(), prefix) == 0) out.push_back(key);
  }
  return out;
}

std::string S3Gateway::initiate_multipart(const std::string& bucket,
                                          const std::string& key) {
  if (!bucket_exists(bucket)) return "";
  const std::string id = "upload-" + std::to_string(next_upload_++);
  uploads_[id] = Multipart{bucket, key, {}};
  return id;
}

IoPtr S3Gateway::upload_part(net::NodeId client, const std::string& upload_id,
                             int part_number, Bytes size) {
  auto io = std::make_shared<IoResult>();
  auto it = uploads_.find(upload_id);
  if (it == uploads_.end() || part_number < 1) {
    io->ok = false;
    io->finish_time = cluster_.sim().now();
    io->done->trigger(cluster_.sim());
    return io;
  }
  auto inner = cluster_.put_async(client, pool_, part_name(upload_id, part_number), size);
  // Record the part only once durable.
  auto record = [](S3Gateway* self, std::string id, int part, Bytes bytes, IoPtr in,
                   IoPtr out) -> sim::Task {
    co_await in->done->wait(self->cluster_.sim());
    if (in->ok) {
      if (auto uit = self->uploads_.find(id); uit != self->uploads_.end()) {
        uit->second.parts[part] = bytes;
      }
    }
    out->ok = in->ok;
    out->bytes = in->bytes;
    out->finish_time = self->cluster_.sim().now();
    out->done->trigger(self->cluster_.sim());
  };
  cluster_.sim().spawn(record(this, upload_id, part_number, size, inner, io));
  return io;
}

IoPtr S3Gateway::complete_multipart(const std::string& upload_id) {
  auto io = std::make_shared<IoResult>();
  io->start_time = cluster_.sim().now();
  cluster_.sim().spawn(do_complete(this, upload_id, io));
  return io;
}

sim::Task S3Gateway::do_complete(S3Gateway* self, std::string upload_id, IoPtr io) {
  auto finish = [&](bool ok) {
    io->ok = ok;
    io->finish_time = self->cluster_.sim().now();
    io->done->trigger(self->cluster_.sim());
  };
  auto it = self->uploads_.find(upload_id);
  if (it == self->uploads_.end() || it->second.parts.empty()) {
    finish(false);
    co_return;
  }
  const Multipart upload = it->second;
  std::vector<std::string> part_objects;
  Bytes total = 0;
  for (const auto& [number, size] : upload.parts) {
    part_objects.push_back(self->part_name(upload_id, number));
    total += size;
  }
  // Server-side compose: the cluster moves part data to the final object's
  // placement (paying OSD-to-OSD transfers) and frees the parts.
  bool ok = false;
  co_await self->cluster_.compose(self->pool_,
                                  self->object_name(upload.bucket, upload.key),
                                  part_objects, &ok);
  if (ok) {
    self->buckets_[upload.bucket].insert(upload.key);
    self->uploads_.erase(upload_id);
    io->bytes = total;
  }
  finish(ok);
}

void S3Gateway::abort_multipart(const std::string& upload_id) {
  auto it = uploads_.find(upload_id);
  if (it == uploads_.end()) return;
  for (const auto& [number, size] : it->second.parts) {
    cluster_.remove(pool_, part_name(upload_id, number));
  }
  uploads_.erase(it);
}

}  // namespace chase::ceph
