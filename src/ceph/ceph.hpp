#pragma once
/// \file ceph.hpp
/// The Rook/Ceph substitute (paper §II-A): a distributed object store with
/// pools, placement groups, CRUSH-style (straw2) pseudo-random replica
/// placement across failure domains, primary-copy replication, and
/// autonomous recovery ("Ceph replicates and dynamically distributes data
/// between storage nodes while monitoring their health").
///
/// Object payloads are virtual (byte counts); placement, replication,
/// contention (per-OSD serialized disks, network transfers) and recovery
/// traffic are simulated faithfully. Capacity accounting is real.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cluster/machine.hpp"
#include "mon/metrics.hpp"
#include "net/network.hpp"
#include "sim/event.hpp"
#include "sim/simulation.hpp"
#include "util/units.hpp"

namespace chase::ceph {

using util::Bytes;

/// Completion handle for asynchronous I/O.
struct IoResult {
  sim::EventPtr done = sim::make_event();
  bool ok = false;
  Bytes bytes = 0;
  double start_time = 0.0;
  double finish_time = -1.0;
};
using IoPtr = std::shared_ptr<IoResult>;

enum class PgState { ActiveClean, Degraded, Recovering };

struct Health {
  int pgs_total = 0;
  int pgs_clean = 0;
  int pgs_degraded = 0;   // fewer live replicas than desired
  int pgs_recovering = 0;
  Bytes bytes_stored = 0;  // logical bytes (before replication)
  bool healthy() const { return pgs_clean == pgs_total; }
};

class CephCluster {
 public:
  struct Options {
    int replication = 3;
    int pg_count = 128;
    /// Throttle for recovery traffic per PG being recovered (bytes/s).
    double recovery_rate = 200e6;
    /// Fixed metadata/commit overhead per object operation (seconds).
    double op_latency = 2e-3;
  };

  CephCluster(sim::Simulation& sim, net::Network& net, cluster::Inventory& inventory,
              mon::Registry* metrics, Options options);
  CephCluster(sim::Simulation& sim, net::Network& net, cluster::Inventory& inventory,
              mon::Registry* metrics = nullptr);
  ~CephCluster();
  CephCluster(const CephCluster&) = delete;
  CephCluster& operator=(const CephCluster&) = delete;

  // --- OSDs ------------------------------------------------------------------

  /// Register a machine's disk as an OSD. Capacity/bandwidth come from the
  /// machine spec. Returns the OSD id. Triggers rebalancing of existing PGs.
  int add_osd(cluster::MachineId machine);
  std::size_t osd_count() const { return osds_.size(); }
  Bytes osd_used(int osd) const { return osds_.at(osd).used; }
  Bytes total_capacity() const;
  bool osd_up(int osd) const { return osds_.at(osd).up; }
  /// Fail or recover a single OSD without touching its machine (a dead
  /// disk / OSD daemon crash). Failure drops the disk's replicas and
  /// triggers remapping + recovery, like a machine loss but disk-scoped.
  void set_osd_up(int osd, bool up);

  // --- pools -----------------------------------------------------------------

  /// Create a pool; `replication` <= 0 uses the cluster default.
  void create_pool(const std::string& name, int replication = 0);
  bool has_pool(const std::string& name) const { return pools_.count(name) > 0; }

  // --- object I/O --------------------------------------------------------------

  /// Write an object from `client` (a network node). Existing objects are
  /// overwritten. The returned handle completes when all replicas are
  /// durable.
  IoPtr put_async(net::NodeId client, const std::string& pool,
                  const std::string& object, Bytes size);
  /// Read an object to `client` from the primary replica.
  IoPtr get_async(net::NodeId client, const std::string& pool, const std::string& object);
  /// Delete an object (frees capacity).
  void remove(const std::string& pool, const std::string& object);

  /// Server-side compose: concatenate `sources` into `dst` without client
  /// traffic — data moves between OSD primaries over the cluster network,
  /// is re-replicated at the destination placement, and the sources are
  /// freed. Used by the S3 gateway's multipart completion.
  /// (Coroutine: string parameters are taken by value so they live in the
  /// frame across suspension points — see chase_lint coro-ref-param.)
  sim::Task compose(std::string pool, std::string dst,
                    std::vector<std::string> sources, bool* ok);

  /// Coroutine sugar: await completion (success or failure).
  sim::Task put(net::NodeId client, std::string pool, std::string object, Bytes size);
  sim::Task get(net::NodeId client, std::string pool, std::string object);

  bool exists(const std::string& pool, const std::string& object) const;
  std::optional<Bytes> object_size(const std::string& pool, const std::string& object) const;
  std::size_t object_count(const std::string& pool) const;

  // --- placement (exposed for tests and placement studies) ---------------------

  /// PG of an object within its pool.
  int pg_of(const std::string& pool, const std::string& object) const;
  /// Current acting set (OSD ids, primary first) of a pool's PG.
  std::vector<int> acting_set(const std::string& pool, int pg) const;

  // --- health -------------------------------------------------------------------

  Health health() const;
  double total_bytes_written() const { return bytes_written_; }
  double total_bytes_read() const { return bytes_read_; }

  /// Invariant audit (see util/check.hpp): replica placement lands on
  /// distinct machines and only live OSDs, capacity accounting stays within
  /// bounds, and no object is orphaned in a PG it does not hash to. Called
  /// automatically at simulation checkpoints in audit builds.
  void check_invariants() const;

  sim::Simulation& sim() { return sim_; }

 private:
  struct Osd {
    cluster::MachineId machine;
    Bytes capacity;
    Bytes used = 0;
    double write_bw;
    double read_bw;
    bool up = true;
    std::unique_ptr<sim::Semaphore> disk;  // serializes disk ops
  };
  struct PlacementGroup {
    std::vector<int> acting;           // OSD ids, primary first
    PgState state = PgState::ActiveClean;
    std::map<std::string, Bytes> objects;
    Bytes bytes() const;
  };
  struct Pool {
    std::string name;
    int replication;
    std::vector<PlacementGroup> pgs;
  };
  struct Object {
    Bytes size;
  };

  /// straw2 selection of `count` OSDs for (pool, pg), distinct machines,
  /// only up OSDs. Deterministic in the OSD map.
  std::vector<int> crush(const std::string& pool, int pg, int count) const;
  void remap_all_pools(const char* why);
  void remap_pool(Pool& pool);
  static sim::Task recover_pg(CephCluster* self, std::string pool_name, int pg_index,
                              std::vector<int> from_set, std::vector<int> to_set);
  static sim::Task do_put(CephCluster* self, net::NodeId client, std::string pool,
                          std::string object, Bytes size, IoPtr io);
  static sim::Task do_get(CephCluster* self, net::NodeId client, std::string pool,
                          std::string object, IoPtr io);
  sim::Task disk_io(int osd, Bytes size, bool write);
  net::NodeId osd_net_node(int osd) const;
  void on_machine_state(cluster::MachineId machine, bool up);

  sim::Simulation& sim_;
  net::Network& net_;
  cluster::Inventory& inventory_;
  mon::Registry* metrics_;
  Options options_;
  // deque: stable references across add_osd() while coroutines hold them
  std::deque<Osd> osds_;
  std::map<std::string, Pool> pools_;
  double bytes_written_ = 0.0;
  double bytes_read_ = 0.0;
  std::uint64_t epoch_ = 0;  // bumped on OSD map changes
  std::uint64_t audit_hook_ = 0;
};

}  // namespace chase::ceph
