#pragma once
/// \file ppods.hpp
/// PPoDS — "Process for the Practice of Data Science" (paper §VI): the
/// collaborative exploratory-development layer over the workflow engine.
/// The paper's requirements, mapped to this API:
///
///  * "keep everyone on the same track but allow for diversified execution
///    plans and experimentation" — a session registers the workflow's steps
///    with per-step *ownership*; members run independent trials of their
///    step without touching the others.
///  * "capturing, measuring, collecting and analyzing performance metrics
///    during exploratory workflow development" — every trial records the
///    full StepReport measurement; the session tracks improvement across
///    trials.
///  * "Creating tests for each piece of the workflow steps... the ability
///    to test for specific outputs when specific inputs are put into place"
///    — per-step expectations validated against each trial's measurements.
///  * "workflow steps... centralized in one location where every one
///    working on the project could see them" — the session renders a
///    status board.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/workflow.hpp"

namespace chase::wf {

/// One measured execution of one step during exploratory development.
struct StepTrial {
  std::string step;
  std::string owner;
  int number = 0;  // per-step trial counter
  StepReport report;
  std::string notes;
  std::vector<std::string> failed_expectations;
  bool passed() const { return failed_expectations.empty(); }
};

/// A per-step acceptance check over the measured report.
struct StepExpectation {
  std::string description;
  std::function<bool(const StepReport&)> check;
};

class PpodsSession {
 public:
  PpodsSession(kube::KubeCluster& kube, mon::Registry& metrics, std::string ns,
               std::string name);

  // --- membership & ownership ------------------------------------------------
  void add_member(const std::string& user);
  const std::vector<std::string>& members() const { return members_; }
  /// Register a workflow step and its owning developer.
  void register_step(const std::string& step, const std::string& owner);
  std::string owner_of(const std::string& step) const;
  std::vector<std::string> steps() const;

  // --- expectations ------------------------------------------------------------
  void add_expectation(const std::string& step, std::string description,
                       std::function<bool(const StepReport&)> check);

  // --- trials ---------------------------------------------------------------------
  /// Run one step implementation in isolation (its own single-step
  /// workflow), measure it, validate expectations, and record the trial.
  /// Returns an event that fires when the trial is recorded.
  sim::EventPtr run_trial(StepSpec spec, const std::string& notes = "");

  const std::vector<StepTrial>& trials() const { return trials_; }
  /// Trials of one step, in execution order.
  std::vector<const StepTrial*> trials_of(const std::string& step) const;
  /// Duration improvement of a step: first trial time / best trial time
  /// (1.0 when fewer than two trials exist).
  double improvement(const std::string& step) const;
  /// The latest trial of each step, failed expectations included.
  std::string render_board() const;

 private:
  kube::KubeCluster& kube_;
  mon::Registry& metrics_;
  std::string ns_;
  std::string name_;
  std::vector<std::string> members_;
  std::vector<std::pair<std::string, std::string>> step_owners_;
  std::vector<std::pair<std::string, StepExpectation>> expectations_;
  std::vector<StepTrial> trials_;
  std::vector<std::unique_ptr<Workflow>> trial_runs_;  // keep coroutines alive
};

}  // namespace chase::wf
