#pragma once
/// \file nautilus.hpp
/// The assembled CHASE-CI testbed: the "Nautilus" hyperconverged cluster on
/// the Pacific Research Platform (paper §II, Figure 1). One object wires the
/// whole stack together:
///
///   * a PRP-like WAN topology (per-site switches on a CENIC-like core,
///     10/40/100 GbE),
///   * FIONA8 GPU appliances and storage FIONAs at each site,
///   * the Kubernetes orchestrator over all machines,
///   * the Rook/Ceph object store over the storage nodes' disks,
///   * a THREDDS DTN hosting the MERRA-2 catalog,
///   * a Redis server (hosted on whatever pod the workflow schedules),
///   * CILogon/RBAC and the Prometheus/Grafana-style metric registry.
///
/// This is the facade examples and benchmarks build on.

#include <memory>
#include <string>
#include <vector>

#include "auth/cilogon.hpp"
#include "ceph/ceph.hpp"
#include "ceph/cephfs.hpp"
#include "cluster/machine.hpp"
#include "kube/cluster.hpp"
#include "mon/metrics.hpp"
#include "net/network.hpp"
#include "redis/redis.hpp"
#include "sim/simulation.hpp"
#include "thredds/catalog.hpp"
#include "thredds/server.hpp"

namespace chase::core {

struct NautilusOptions {
  /// PRP partner sites hosting compute (the project spans ~20 institutions;
  /// 8 is enough to hold the paper's workload with room to spare).
  std::vector<std::string> sites = {"UCSD",     "UCI",  "UCB", "Stanford",
                                    "Caltech",  "USC",  "UCM", "UW"};
  int fiona8_per_site = 2;        // 8 GPUs each -> 128 GPUs total
  int storage_per_site = 1;
  util::Bytes storage_capacity = util::tb(160);  // > 1.2 PB across 8 sites
  /// WAN uplink per site, cycling 100/40/10 GbE like the real PRP mix.
  std::vector<double> wan_gbps = {100, 40, 100, 40, 10, 40, 10, 100};
  int ceph_replication = 2;
  int ceph_pg_count = 128;
  kube::KubeCluster::Options kube_options;
  thredds::ThreddsServer::Options thredds_options;
};

class Nautilus {
 public:
  explicit Nautilus(NautilusOptions options);
  Nautilus() : Nautilus(NautilusOptions{}) {}

  // Core services (construction order matters; declared in init order).
  sim::Simulation sim;
  net::Network net{sim};
  cluster::Inventory inventory{net};
  mon::Registry metrics;
  auth::CILogon sso;
  auth::Rbac rbac;

  std::unique_ptr<kube::KubeCluster> kube;
  std::unique_ptr<ceph::CephCluster> ceph;
  std::unique_ptr<ceph::CephFs> fs;
  std::unique_ptr<redis::RedisServer> redis;
  std::unique_ptr<thredds::ThreddsServer> thredds;

  const NautilusOptions& options() const { return options_; }
  net::NodeId core_switch() const { return core_; }
  net::NodeId site_switch(std::size_t site) const { return site_switches_.at(site); }
  const std::vector<cluster::MachineId>& gpu_machines() const { return gpu_machines_; }
  const std::vector<cluster::MachineId>& storage_machines() const {
    return storage_machines_;
  }
  cluster::MachineId thredds_machine() const { return thredds_machine_; }

  /// Human-readable inventory (Figure 1 / bench_fig1).
  std::string describe() const;

 private:
  NautilusOptions options_;
  net::NodeId core_ = -1;
  std::vector<net::NodeId> site_switches_;
  std::vector<cluster::MachineId> gpu_machines_;
  std::vector<cluster::MachineId> storage_machines_;
  cluster::MachineId thredds_machine_ = -1;
};

}  // namespace chase::core
