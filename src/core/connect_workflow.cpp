#include "core/connect_workflow.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "redis/redis.hpp"
#include "thredds/server.hpp"
#include "util/rng.hpp"

namespace chase::core {

using kube::PodContext;
using util::Bytes;

namespace {

/// Parse "a:b" into two integers.
std::pair<std::uint64_t, std::uint64_t> parse_pair(const std::string& msg) {
  const auto colon = msg.find(':');
  return {std::stoull(msg.substr(0, colon)), std::stoull(msg.substr(colon + 1))};
}

}  // namespace

struct ConnectWorkflow::State {
  Nautilus* bed = nullptr;
  ConnectWorkflowParams params;

  // Scaled workload.
  std::uint64_t files = 0;
  double bytes_per_file = 0;     // payload per fetched file (subset or whole)
  double total_bytes = 0;        // files * bytes_per_file
  double inference_voxels = 0;
  int url_lists = 0;

  // Step-1 coordination.
  sim::EventPtr download_complete = sim::make_event();
  std::vector<std::string> bundle_paths;
  int next_bundle = 0;

  // Step-3 shard dispenser.
  int next_shard = 0;
  util::Rng straggler_rng{2027};  // re-seeded from params in the constructor

  double time_scale() const { return params.data_fraction; }
};

ConnectWorkflow::ConnectWorkflow(Nautilus& bed, ConnectWorkflowParams params)
    : bed_(bed), params_(std::move(params)), state_(std::make_shared<State>()) {
  state_->bed = &bed_;
  state_->params = params_;
  state_->straggler_rng = util::Rng(params_.straggler_seed);
  const auto* ds = bed_.thredds->dataset(params_.dataset);
  const std::uint64_t all_files = ds != nullptr ? ds->file_count : 0;
  state_->files = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(all_files) * params_.data_fraction));
  if (ds != nullptr) {
    if (params_.variable.empty()) {
      state_->bytes_per_file = static_cast<double>(ds->file_bytes());
    } else {
      state_->bytes_per_file =
          static_cast<double>(ds->subset_bytes(params_.variable).value_or(0));
    }
  }
  state_->total_bytes = state_->bytes_per_file * static_cast<double>(state_->files);
  state_->inference_voxels = params_.paper.inference_voxels * params_.data_fraction;
  state_->url_lists = static_cast<int>(std::min<std::uint64_t>(
      static_cast<std::uint64_t>(std::max(1, params_.url_lists)), state_->files));
  build();
}

std::uint64_t ConnectWorkflow::scaled_file_count() const { return state_->files; }
double ConnectWorkflow::scaled_subset_bytes() const { return state_->total_bytes; }
double ConnectWorkflow::scaled_archive_bytes() const {
  const auto* ds = bed_.thredds->dataset(params_.dataset);
  return ds == nullptr ? 0.0
                       : static_cast<double>(ds->file_bytes()) *
                             static_cast<double>(state_->files);
}
double ConnectWorkflow::scaled_inference_voxels() const { return state_->inference_voxels; }

// ---------------------------------------------------------------------------------
// Pod programs (all capture the shared workflow state; closures live in the
// pod specs, which outlive the coroutines).
// ---------------------------------------------------------------------------------

namespace {

kube::Program redis_program(std::shared_ptr<ConnectWorkflow::State> state);
kube::Program coordinator_program(std::shared_ptr<ConnectWorkflow::State> state);
kube::Program download_worker_program(std::shared_ptr<ConnectWorkflow::State> state);
kube::Program merger_program(std::shared_ptr<ConnectWorkflow::State> state);

}  // namespace

void ConnectWorkflow::build() {
  workflow_ = std::make_unique<wf::Workflow>(*bed_.kube, bed_.metrics, params_.ns,
                                             "CONNECT workflow");
  bed_.kube->create_namespace(params_.ns);
  auto state = state_;
  Nautilus* bed = &bed_;
  auto step_enabled = [this](int n) {
    return std::find(params_.steps.begin(), params_.steps.end(), n) !=
           params_.steps.end();
  };

  // ------------------------------------------------------------------ step 1
  if (step_enabled(1)) workflow_->add_step(wf::StepSpec{
      "Step 1: THREDDS download", "1",
      [state, bed](wf::StepContext& ctx) -> sim::Task {
        auto& kube = ctx.kube();
        const auto& p = state->params;

        // Redis service pod (ReplicaSet so it self-heals).
        kube::ReplicaSetSpec redis_rs;
        redis_rs.ns = ctx.ns();
        redis_rs.name = "redis";
        redis_rs.replicas = 1;
        redis_rs.labels = ctx.step_labels();
        redis_rs.labels["app"] = "redis";
        {
          kube::ContainerSpec c;
          c.name = "redis";
          c.image = "library/redis";
          c.requests = {1, util::gb(8), 0};
          c.program = redis_program(state);
          redis_rs.pod_template.containers.push_back(std::move(c));
        }
        kube.create_replica_set(redis_rs);
        kube.create_service({ctx.ns(), "redis", {{"app", "redis"}}});

        // Wait for Redis to come up.
        while (!kube.resolve_service(ctx.ns(), "redis").has_value()) {
          co_await ctx.sim().sleep(1.0);
        }

        // Coordinator: fills the URL-list queue, later pushes sentinels.
        kube::JobSpec coord;
        coord.ns = ctx.ns();
        coord.name = "coordinator";
        coord.labels = ctx.step_labels();
        {
          kube::ContainerSpec c;
          c.name = "coordinator";
          c.image = "chase/connect-coordinator";
          c.requests = {1, util::gb(9), 0};
          c.program = coordinator_program(state);
          coord.pod_template.containers.push_back(std::move(c));
        }
        auto coord_job = kube.create_job(coord).value;

        // Merge pods: combine small NetCDF files into HDF bundles in Ceph.
        kube::JobSpec merge;
        merge.ns = ctx.ns();
        merge.name = "merge";
        merge.labels = ctx.step_labels();
        merge.completions = p.merge_pods;
        merge.parallelism = p.merge_pods;
        {
          kube::ContainerSpec c;
          c.name = "merger";
          c.image = "chase/connect-merge";
          c.requests = {5, util::gb(24), 0};
          c.program = merger_program(state);
          merge.pod_template.containers.push_back(std::move(c));
        }
        auto merge_job = kube.create_job(merge).value;

        // Download workers.
        kube::JobSpec download;
        download.ns = ctx.ns();
        download.name = "download";
        download.labels = ctx.step_labels();
        download.completions = p.download_workers;
        download.parallelism = p.download_workers;
        {
          kube::ContainerSpec c;
          c.name = "worker";
          c.image = "chase/connect-download";
          c.requests = {3, util::gb(16), 0};
          c.program = download_worker_program(state);
          download.pod_template.containers.push_back(std::move(c));
        }
        auto download_job = kube.create_job(download).value;

        co_await download_job->done->wait(ctx.sim());
        state->download_complete->trigger(ctx.sim());
        co_await merge_job->done->wait(ctx.sim());
        co_await coord_job->done->wait(ctx.sim());
        kube.delete_replica_set(ctx.ns(), "redis");

        ctx.add_data(state->total_bytes);
      }});

  // ------------------------------------------------------------------ step 2
  if (step_enabled(2)) workflow_->add_step(wf::StepSpec{
      "Step 2: model training", "2",
      [state, bed](wf::StepContext& ctx) -> sim::Task {
        auto& kube = ctx.kube();
        const auto& p = state->params;

        // Optional distributed pre-processing (paper §III-E1): K workers
        // convert NetCDF to protobuf in parallel before training starts.
        if (p.prep_workers > 1) {
          kube::JobSpec prep;
          prep.ns = ctx.ns();
          prep.name = "prep";
          prep.labels = ctx.step_labels();
          prep.completions = p.prep_workers;
          prep.parallelism = p.prep_workers;
          kube::ContainerSpec c;
          c.name = "prep";
          c.image = "chase/connect-prep";
          c.requests = {2, util::gb(8), 0};
          auto st = state;
          c.program = [st](PodContext& pctx) -> sim::Task {
            const auto& pp = st->params;
            const double share = st->total_bytes / pp.prep_workers;
            // Read a shard of the archive from Ceph, convert to protobuf,
            // write the serialized shard back for the trainer.
            if (!st->bundle_paths.empty()) {
              co_await st->bed->fs->read_file(pctx.net_node(), st->bundle_paths[0]);
            }
            // Same single-core conversion rate as the serial phase; the
            // speedup comes purely from sharding across Job workers.
            co_await pctx.compute(share / pp.prep_bytes_per_second, 1.0);
            co_await st->bed->fs->write_file(pctx.net_node(),
                                             "/protobuf/shard-" + pctx.pod().meta.name,
                                             static_cast<Bytes>(share * 0.8));
          };
          prep.pod_template.containers.push_back(std::move(c));
          auto prep_job = kube.create_job(prep).value;
          co_await prep_job->done->wait(ctx.sim());
        }

        // Trainer pod(s).
        const int gpus_per_pod = 1;
        kube::JobSpec train;
        train.ns = ctx.ns();
        train.name = "train";
        train.labels = ctx.step_labels();
        train.completions = p.train_gpus;
        train.parallelism = p.train_gpus;
        kube::ContainerSpec c;
        c.name = "trainer";
        c.image = "tensorflow/ffn";
        c.image_size = util::gb(2);
        c.requests = {1, static_cast<Bytes>(14.8e9), gpus_per_pod};
        auto st = state;
        c.program = [st](PodContext& pctx) -> sim::Task {
          const auto& pp = st->params;
          pctx.set_memory_usage(static_cast<Bytes>(14.8e9));
          // Load the training window (30 days, 381 MB) from Ceph.
          if (!st->bundle_paths.empty()) {
            co_await st->bed->fs->read_file(pctx.net_node(), st->bundle_paths[0]);
          }
          // Serial protobuf preparation phase (Fig. 5, purple) — skipped when
          // the distributed prep job already ran.
          if (pp.prep_workers <= 1) {
            const double prep_seconds =
                st->total_bytes / pp.prep_bytes_per_second * 1.0;
            co_await pctx.compute(prep_seconds, 1.0);
          }
          // FFN training (Fig. 5, green).
          const double single_gpu_s =
              pp.cost.training_seconds(cluster::GpuModel::GTX1080Ti, 1) *
              st->time_scale();
          // Sync-SGD scaling: K workers split the steps but pay all-reduce
          // overhead per extra worker. Each pod runs the whole wall-clock.
          const double speedup =
              pp.train_gpus /
              (1.0 + (pp.train_gpus - 1) * (1.0 - pp.dist_train_efficiency));
          co_await pctx.gpu_compute(single_gpu_s / speedup);
          // Persist the trained model + parameters to the Ceph Object Store.
          if (!pctx.cancelled() && pctx.pod().meta.name == "train-0") {
            co_await st->bed->fs->write_file(pctx.net_node(), "/models/ffn-ckpt",
                                             util::mb(100));
          }
        };
        train.pod_template.containers.push_back(std::move(c));
        auto train_job = kube.create_job(train).value;
        co_await train_job->done->wait(ctx.sim());
        ctx.add_data(state->params.paper.training_volume_bytes);
      }});

  // ------------------------------------------------------------------ step 3
  if (step_enabled(3)) workflow_->add_step(wf::StepSpec{
      "Step 3: model inference", "3",
      [state, bed](wf::StepContext& ctx) -> sim::Task {
        auto& kube = ctx.kube();
        const auto& p = state->params;
        state->next_shard = 0;

        kube::JobSpec infer;
        infer.ns = ctx.ns();
        infer.name = "inference";
        infer.labels = ctx.step_labels();
        infer.completions = p.inference_gpus;
        infer.parallelism = p.inference_gpus;
        kube::ContainerSpec c;
        c.name = "inference";
        c.image = "tensorflow/ffn";
        c.image_size = util::gb(2);
        c.requests = {1, util::gb(12), 1};
        auto st = state;
        c.program = [st](PodContext& pctx) -> sim::Task {
          const auto& pp = st->params;
          pctx.set_memory_usage(util::gb(12));
          const int shard = st->next_shard++;
          // Load the trained model from the Ceph Object Store.
          if (st->bed->fs->exists("/models/ffn-ckpt")) {
            co_await st->bed->fs->read_file(pctx.net_node(), "/models/ffn-ckpt");
          }
          // Read this shard's slice of the archive (the 246 GB is evenly
          // distributed across the GPUs).
          const int total = std::max(1, pp.inference_gpus);
          for (std::size_t b = static_cast<std::size_t>(shard);
               b < st->bundle_paths.size(); b += static_cast<std::size_t>(total)) {
            co_await st->bed->fs->read_file(pctx.net_node(), st->bundle_paths[b]);
          }
          // FFN flood-fill inference over the shard's voxels.
          const double voxels = st->inference_voxels / total;
          const double jitter = 1.0 + st->straggler_rng.uniform(0.0, pp.straggler_jitter);
          co_await pctx.gpu_compute(
              pp.cost.inference_seconds(voxels, cluster::GpuModel::GTX1080Ti, 1) *
              jitter);
          if (pctx.cancelled()) co_return;  // evicted: no side effects
          // Store segmentation results.
          const double result_bytes = pp.paper.viz_bytes / total;
          co_await st->bed->fs->write_file(pctx.net_node(),
                                           "/results/shard-" + std::to_string(shard),
                                           static_cast<Bytes>(result_bytes));
        };
        infer.pod_template.containers.push_back(std::move(c));
        auto infer_job = kube.create_job(infer).value;
        co_await infer_job->done->wait(ctx.sim());
        ctx.add_data(state->total_bytes);
      }});

  // ------------------------------------------------------------------ step 4
  if (step_enabled(4)) workflow_->add_step(wf::StepSpec{
      "Step 4: JupyterLab visualization", "4",
      [state, bed](wf::StepContext& ctx) -> sim::Task {
        auto& kube = ctx.kube();
        kube::JobSpec viz;
        viz.ns = ctx.ns();
        viz.name = "jupyterlab";
        viz.labels = ctx.step_labels();
        kube::ContainerSpec c;
        c.name = "jupyterlab";
        c.image = "jupyter/datascience";
        c.image_size = util::gb(3);
        c.requests = {1, util::gb(12), 1};
        auto st = state;
        c.program = [st](PodContext& pctx) -> sim::Task {
          const auto& pp = st->params;
          pctx.set_memory_usage(util::gb(12));
          // Mount the Ceph Object Store and load the most recent results.
          for (const auto& path : st->bed->fs->list("/results/")) {
            co_await st->bed->fs->read_file(pctx.net_node(), path);
          }
          // Plot segmented objects and compute object statistics.
          co_await pctx.compute(pp.viz_render_seconds, 1.0);
          pctx.set_gpu_usage(1);
          co_await pctx.gpu_compute(30.0);
        };
        viz.pod_template.containers.push_back(std::move(c));
        auto viz_job = kube.create_job(viz).value;
        co_await viz_job->done->wait(ctx.sim());
        ctx.add_data(state->params.paper.viz_bytes);
      }});
}

// ---------------------------------------------------------------------------------

namespace {

kube::Program redis_program(std::shared_ptr<ConnectWorkflow::State> state) {
  return [state](PodContext& ctx) -> sim::Task {
    state->bed->redis->host_on(ctx.net_node());
    ctx.set_memory_usage(util::gb(8));
    while (!ctx.cancelled()) {
      co_await ctx.sim().sleep(10.0);
    }
    state->bed->redis->host_on(-1);
  };
}

kube::Program coordinator_program(std::shared_ptr<ConnectWorkflow::State> state) {
  return [state](PodContext& ctx) -> sim::Task {
    const auto& p = state->params;
    ctx.set_memory_usage(util::gb(9));
    redis::RedisClient client(ctx.sim(), ctx.network(), *state->bed->redis,
                              ctx.net_node());
    // Split the archive into URL lists (the queue "holds a list of files
    // that contain urls to download").
    const std::uint64_t lists = static_cast<std::uint64_t>(state->url_lists);
    const std::uint64_t per = state->files / lists;
    std::uint64_t assigned = 0;
    for (std::uint64_t i = 0; i < lists; ++i) {
      const std::uint64_t count = i + 1 == lists ? state->files - assigned : per;
      co_await client.rpush("urls", std::to_string(assigned) + ":" + std::to_string(count));
      assigned += count;
    }
    // Worker sentinels queue behind the lists (FIFO).
    for (int w = 0; w < p.download_workers; ++w) {
      co_await client.rpush("urls", "STOP");
    }
    // Once every download worker is done, stop the mergers (their sentinels
    // queue behind any remaining merge backlog).
    co_await state->download_complete->wait(ctx.sim());
    for (int m = 0; m < p.merge_pods; ++m) {
      co_await client.rpush("merge", "STOP");
    }
  };
}

kube::Program download_worker_program(std::shared_ptr<ConnectWorkflow::State> state) {
  return [state](PodContext& ctx) -> sim::Task {
    const auto& p = state->params;
    ctx.set_memory_usage(util::gb(16));
    ctx.set_cpu_usage(0.4);
    redis::RedisClient client(ctx.sim(), ctx.network(), *state->bed->redis,
                              ctx.net_node());
    thredds::Aria2Client aria(ctx.sim(), *state->bed->thredds, ctx.net_node(),
                              p.aria2_connections);
    while (!ctx.cancelled()) {
      std::string msg;
      bool got = false;
      co_await client.blpop("urls", &msg, &got);
      if (!got || msg == "STOP") co_return;
      const auto [first, count] = parse_pair(msg);
      std::vector<std::size_t> files(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        files[i] = static_cast<std::size_t>(first + i);
      }
      ctx.set_cpu_usage(2.5);  // decode + checksum while streaming
      thredds::DownloadStats stats;
      co_await aria.download(p.dataset, std::move(files), p.variable, &stats);
      ctx.set_cpu_usage(0.4);
      // Hand the downloaded slab to a merge pod.
      co_await client.rpush("merge", std::to_string(stats.bytes) + ":" +
                                         std::to_string(ctx.net_node()));
    }
  };
}

kube::Program merger_program(std::shared_ptr<ConnectWorkflow::State> state) {
  return [state](PodContext& ctx) -> sim::Task {
    const auto& p = state->params;
    ctx.set_memory_usage(util::gb(24));
    ctx.set_cpu_usage(0.3);
    redis::RedisClient client(ctx.sim(), ctx.network(), *state->bed->redis,
                              ctx.net_node());
    while (!ctx.cancelled()) {
      std::string msg;
      bool got = false;
      co_await client.blpop("merge", &msg, &got);
      if (!got || msg == "STOP") co_return;
      if (ctx.cancelled()) co_return;
      const auto [bytes, source_node] = parse_pair(msg);
      // Pull the slab from the worker that downloaded it.
      co_await ctx.network().send(static_cast<net::NodeId>(source_node), ctx.net_node(),
                                  bytes);
      // Merge the small NetCDF files into one HDF bundle (CPU bound).
      co_await ctx.compute(static_cast<double>(bytes) / p.merge_bytes_per_cpu_second,
                           5.0);
      // Transfer the bundle to the Ceph Object Store.
      const std::string path = "/merra2/bundle-" + std::to_string(state->next_bundle++);
      co_await state->bed->fs->write_file(ctx.net_node(), path, bytes);
      state->bundle_paths.push_back(path);
    }
  };
}

}  // namespace

}  // namespace chase::core
