#include "core/connect_workflow.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <string>
#include <vector>

#include "redis/redis.hpp"
#include "thredds/server.hpp"
#include "util/rng.hpp"

namespace chase::core {

using kube::PodContext;
using util::Bytes;

namespace {

/// Parse "a:b" into two integers.
std::pair<std::uint64_t, std::uint64_t> parse_pair(const std::string& msg) {
  const auto colon = msg.find(':');
  return {std::stoull(msg.substr(0, colon)), std::stoull(msg.substr(colon + 1))};
}

/// Slab handoff message "bytes:node:first:count"; the trailing "first:count"
/// is the originating URL-list message, kept verbatim for dedup keys.
struct SlabMsg {
  std::uint64_t bytes = 0;
  std::uint64_t node = 0;
  std::string urlmsg;
};

SlabMsg parse_slab(const std::string& msg) {
  const auto c1 = msg.find(':');
  const auto c2 = msg.find(':', c1 + 1);
  return {std::stoull(msg.substr(0, c1)),
          std::stoull(msg.substr(c1 + 1, c2 - c1 - 1)), msg.substr(c2 + 1)};
}

/// Exponential fault-retry backoff, capped.
double backoff_delay(const ConnectWorkflowParams& p, int failures) {
  return std::min(p.retry_backoff_max,
                  p.retry_backoff_base * std::pow(2.0, static_cast<double>(failures)));
}

}  // namespace

struct ConnectWorkflow::State {
  Nautilus* bed = nullptr;
  ConnectWorkflowParams params;

  // Scaled workload.
  std::uint64_t files = 0;
  double bytes_per_file = 0;     // payload per fetched file (subset or whole)
  double total_bytes = 0;        // files * bytes_per_file
  double inference_voxels = 0;
  int url_lists = 0;

  // Step-1 coordination.
  sim::EventPtr download_complete = sim::make_event();
  std::vector<std::string> bundle_paths;
  int next_bundle = 0;
  std::uint64_t files_fetched = 0;  // summed from "urls:done" at step end
  int download_retries = 0;         // step-1 fault-path retries (all pods)
  std::uint64_t redis_incarnation = 0;

  // Step-2 checkpoint guard: exactly one trainer persists the model, even
  // when the original writer pod was evicted and replaced.
  bool ckpt_written = false;

  // Step-3 shard dispenser: evicted pods push their shard back so the
  // replacement redoes exactly the lost work.
  std::deque<int> shard_queue;
  int shards_done = 0;
  int shard_retries = 0;
  util::Rng straggler_rng{2027};  // re-seeded from params in the constructor

  double time_scale() const { return params.data_fraction; }
};

ConnectWorkflow::ConnectWorkflow(Nautilus& bed, ConnectWorkflowParams params)
    : bed_(bed), params_(std::move(params)), state_(std::make_shared<State>()) {
  state_->bed = &bed_;
  state_->params = params_;
  state_->straggler_rng = util::Rng(params_.straggler_seed);
  const auto* ds = bed_.thredds->dataset(params_.dataset);
  const std::uint64_t all_files = ds != nullptr ? ds->file_count : 0;
  state_->files = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(all_files) * params_.data_fraction));
  if (ds != nullptr) {
    if (params_.variable.empty()) {
      state_->bytes_per_file = static_cast<double>(ds->file_bytes());
    } else {
      state_->bytes_per_file =
          static_cast<double>(ds->subset_bytes(params_.variable).value_or(0));
    }
  }
  state_->total_bytes = state_->bytes_per_file * static_cast<double>(state_->files);
  state_->inference_voxels = params_.paper.inference_voxels * params_.data_fraction;
  state_->url_lists = static_cast<int>(std::min<std::uint64_t>(
      static_cast<std::uint64_t>(std::max(1, params_.url_lists)), state_->files));
  build();
}

std::uint64_t ConnectWorkflow::scaled_file_count() const { return state_->files; }
double ConnectWorkflow::scaled_subset_bytes() const { return state_->total_bytes; }
double ConnectWorkflow::scaled_archive_bytes() const {
  const auto* ds = bed_.thredds->dataset(params_.dataset);
  return ds == nullptr ? 0.0
                       : static_cast<double>(ds->file_bytes()) *
                             static_cast<double>(state_->files);
}
double ConnectWorkflow::scaled_inference_voxels() const { return state_->inference_voxels; }

std::uint64_t ConnectWorkflow::files_fetched() const { return state_->files_fetched; }
int ConnectWorkflow::download_retries() const { return state_->download_retries; }

// ---------------------------------------------------------------------------------
// Pod programs (all capture the shared workflow state; closures live in the
// pod specs, which outlive the coroutines).
// ---------------------------------------------------------------------------------

namespace {

kube::Program redis_program(std::shared_ptr<ConnectWorkflow::State> state);
kube::Program coordinator_program(std::shared_ptr<ConnectWorkflow::State> state);
kube::Program download_worker_program(std::shared_ptr<ConnectWorkflow::State> state);
kube::Program merger_program(std::shared_ptr<ConnectWorkflow::State> state);

}  // namespace

void ConnectWorkflow::build() {
  workflow_ = std::make_unique<wf::Workflow>(*bed_.kube, bed_.metrics, params_.ns,
                                             "CONNECT workflow");
  bed_.kube->create_namespace(params_.ns);
  auto state = state_;
  Nautilus* bed = &bed_;
  auto step_enabled = [this](int n) {
    return std::find(params_.steps.begin(), params_.steps.end(), n) !=
           params_.steps.end();
  };

  // ------------------------------------------------------------------ step 1
  if (step_enabled(1)) workflow_->add_step(wf::StepSpec{
      "Step 1: THREDDS download", "1",
      [state, bed](wf::StepContext* ctx) -> sim::Task {
        auto& kube = ctx->kube();
        const auto& p = state->params;

        // Redis service pod (ReplicaSet so it self-heals).
        kube::ReplicaSetSpec redis_rs;
        redis_rs.ns = ctx->ns();
        redis_rs.name = "redis";
        redis_rs.replicas = 1;
        redis_rs.labels = ctx->step_labels();
        redis_rs.labels["app"] = "redis";
        {
          kube::ContainerSpec c;
          c.name = "redis";
          c.image = "library/redis";
          c.requests = {1, util::gb(8), 0};
          c.program = redis_program(state);
          redis_rs.pod_template.containers.push_back(std::move(c));
        }
        kube.create_replica_set(redis_rs);
        kube.create_service({ctx->ns(), "redis", {{"app", "redis"}}});

        // Wait for Redis to come up.
        while (!kube.resolve_service(ctx->ns(), "redis").has_value()) {
          co_await ctx->sim().sleep(1.0);
        }

        // Coordinator: fills the URL-list queue, later pushes sentinels.
        kube::JobSpec coord;
        coord.ns = ctx->ns();
        coord.name = "coordinator";
        coord.labels = ctx->step_labels();
        {
          kube::ContainerSpec c;
          c.name = "coordinator";
          c.image = "chase/connect-coordinator";
          c.requests = {1, util::gb(9), 0};
          c.program = coordinator_program(state);
          coord.pod_template.containers.push_back(std::move(c));
        }
        auto coord_job = kube.create_job(coord).value;

        // Merge pods: combine small NetCDF files into HDF bundles in Ceph.
        kube::JobSpec merge;
        merge.ns = ctx->ns();
        merge.name = "merge";
        merge.labels = ctx->step_labels();
        merge.completions = p.merge_pods;
        merge.parallelism = p.merge_pods;
        {
          kube::ContainerSpec c;
          c.name = "merger";
          c.image = "chase/connect-merge";
          c.requests = {5, util::gb(24), 0};
          c.program = merger_program(state);
          merge.pod_template.containers.push_back(std::move(c));
        }
        auto merge_job = kube.create_job(merge).value;

        // Download workers.
        kube::JobSpec download;
        download.ns = ctx->ns();
        download.name = "download";
        download.labels = ctx->step_labels();
        download.completions = p.download_workers;
        download.parallelism = p.download_workers;
        {
          kube::ContainerSpec c;
          c.name = "worker";
          c.image = "chase/connect-download";
          c.requests = {3, util::gb(16), 0};
          c.program = download_worker_program(state);
          download.pod_template.containers.push_back(std::move(c));
        }
        auto download_job = kube.create_job(download).value;

        co_await download_job->done->wait(ctx->sim());
        state->download_complete->trigger(ctx->sim());
        co_await merge_job->done->wait(ctx->sim());
        co_await coord_job->done->wait(ctx->sim());

        // Byte conservation: sum the durably-downloaded URL lists ("urls:done"
        // is marked exactly once per list, faults or not).
        std::uint64_t fetched = 0;
        for (const auto& member : bed->redis->smembers("urls:done")) {
          fetched += parse_pair(member).second;
        }
        state->files_fetched = fetched;
        kube.delete_replica_set(ctx->ns(), "redis");

        ctx->add_retries(state->download_retries);
        ctx->add_data(state->total_bytes);
      }});

  // ------------------------------------------------------------------ step 2
  if (step_enabled(2)) workflow_->add_step(wf::StepSpec{
      "Step 2: model training", "2",
      [state, bed](wf::StepContext* ctx) -> sim::Task {
        auto& kube = ctx->kube();
        const auto& p = state->params;

        // Optional distributed pre-processing (paper §III-E1): K workers
        // convert NetCDF to protobuf in parallel before training starts.
        if (p.prep_workers > 1) {
          kube::JobSpec prep;
          prep.ns = ctx->ns();
          prep.name = "prep";
          prep.labels = ctx->step_labels();
          prep.completions = p.prep_workers;
          prep.parallelism = p.prep_workers;
          kube::ContainerSpec c;
          c.name = "prep";
          c.image = "chase/connect-prep";
          c.requests = {2, util::gb(8), 0};
          auto st = state;
          c.program = [st](PodContext& pctx) -> sim::Task {
            const auto& pp = st->params;
            const double share = st->total_bytes / pp.prep_workers;
            // Read a shard of the archive from Ceph, convert to protobuf,
            // write the serialized shard back for the trainer.
            if (!st->bundle_paths.empty()) {
              co_await st->bed->fs->read_file(pctx.net_node(), st->bundle_paths[0]);
            }
            // Same single-core conversion rate as the serial phase; the
            // speedup comes purely from sharding across Job workers.
            co_await pctx.compute(share / pp.prep_bytes_per_second, 1.0);
            co_await st->bed->fs->write_file(pctx.net_node(),
                                             "/protobuf/shard-" + pctx.pod().meta.name,
                                             static_cast<Bytes>(share * 0.8));
          };
          prep.pod_template.containers.push_back(std::move(c));
          auto prep_job = kube.create_job(prep).value;
          co_await prep_job->done->wait(ctx->sim());
        }

        // Trainer pod(s).
        const int gpus_per_pod = 1;
        kube::JobSpec train;
        train.ns = ctx->ns();
        train.name = "train";
        train.labels = ctx->step_labels();
        train.completions = p.train_gpus;
        train.parallelism = p.train_gpus;
        kube::ContainerSpec c;
        c.name = "trainer";
        c.image = "tensorflow/ffn";
        c.image_size = util::gb(2);
        c.requests = {1, static_cast<Bytes>(14.8e9), gpus_per_pod};
        auto st = state;
        c.program = [st](PodContext& pctx) -> sim::Task {
          const auto& pp = st->params;
          pctx.set_memory_usage(static_cast<Bytes>(14.8e9));
          // Load the training window (30 days, 381 MB) from Ceph.
          if (!st->bundle_paths.empty()) {
            co_await st->bed->fs->read_file(pctx.net_node(), st->bundle_paths[0]);
          }
          // Serial protobuf preparation phase (Fig. 5, purple) — skipped when
          // the distributed prep job already ran.
          if (pp.prep_workers <= 1) {
            const double prep_seconds =
                st->total_bytes / pp.prep_bytes_per_second * 1.0;
            co_await pctx.compute(prep_seconds, 1.0);
          }
          // FFN training (Fig. 5, green).
          const double single_gpu_s =
              pp.cost.training_seconds(cluster::GpuModel::GTX1080Ti, 1) *
              st->time_scale();
          // Sync-SGD scaling: K workers split the steps but pay all-reduce
          // overhead per extra worker. Each pod runs the whole wall-clock.
          const double speedup =
              pp.train_gpus /
              (1.0 + (pp.train_gpus - 1) * (1.0 - pp.dist_train_efficiency));
          co_await pctx.gpu_compute(single_gpu_s / speedup);
          // Persist the trained model + parameters to the Ceph Object Store.
          // First finisher writes; a name-based gate would lose the
          // checkpoint whenever the designated pod is evicted and replaced.
          if (!pctx.cancelled() && !st->ckpt_written) {
            st->ckpt_written = true;
            co_await st->bed->fs->write_file(pctx.net_node(), "/models/ffn-ckpt",
                                             util::mb(100));
          }
        };
        train.pod_template.containers.push_back(std::move(c));
        auto train_job = kube.create_job(train).value;
        co_await train_job->done->wait(ctx->sim());
        ctx->add_data(state->params.paper.training_volume_bytes);
      }});

  // ------------------------------------------------------------------ step 3
  if (step_enabled(3)) workflow_->add_step(wf::StepSpec{
      "Step 3: model inference", "3",
      [state, bed](wf::StepContext* ctx) -> sim::Task {
        auto& kube = ctx->kube();
        const auto& p = state->params;
        state->shard_queue.clear();
        for (int s = 0; s < std::max(1, p.inference_gpus); ++s) {
          state->shard_queue.push_back(s);
        }
        state->shards_done = 0;
        state->shard_retries = 0;

        kube::JobSpec infer;
        infer.ns = ctx->ns();
        infer.name = "inference";
        infer.labels = ctx->step_labels();
        infer.completions = p.inference_gpus;
        infer.parallelism = p.inference_gpus;
        kube::ContainerSpec c;
        c.name = "inference";
        c.image = "tensorflow/ffn";
        c.image_size = util::gb(2);
        c.requests = {1, util::gb(12), 1};
        auto st = state;
        c.program = [st](PodContext& pctx) -> sim::Task {
          const auto& pp = st->params;
          pctx.set_memory_usage(util::gb(12));
          const int total = std::max(1, pp.inference_gpus);
          while (!pctx.cancelled()) {
            if (st->shard_queue.empty()) {
              // Every shard is claimed. Either all are done (this replacement
              // pod has nothing to redo) or a claimant may still be evicted
              // and return its shard; park and re-check.
              if (st->shards_done >= total) co_return;
              co_await pctx.sim().sleep(5.0);
              continue;
            }
            const int shard = st->shard_queue.front();
            st->shard_queue.pop_front();
            // An eviction mid-shard returns the shard so the replacement pod
            // redoes exactly the lost work; the result write is idempotent
            // (fixed path per shard), so a partial redo never double-counts.
            auto requeue = [st, shard] {
              st->shard_queue.push_front(shard);
              st->shard_retries += 1;
            };
            // Load the trained model from the Ceph Object Store.
            if (st->bed->fs->exists("/models/ffn-ckpt")) {
              co_await st->bed->fs->read_file(pctx.net_node(), "/models/ffn-ckpt");
              if (pctx.cancelled()) { requeue(); co_return; }
            }
            // Read this shard's slice of the archive (the 246 GB is evenly
            // distributed across the GPUs).
            for (std::size_t b = static_cast<std::size_t>(shard);
                 b < st->bundle_paths.size(); b += static_cast<std::size_t>(total)) {
              co_await st->bed->fs->read_file(pctx.net_node(), st->bundle_paths[b]);
              if (pctx.cancelled()) { requeue(); co_return; }
            }
            // FFN flood-fill inference over the shard's voxels.
            const double voxels = st->inference_voxels / total;
            const double jitter =
                1.0 + st->straggler_rng.uniform(0.0, pp.straggler_jitter);
            co_await pctx.gpu_compute(
                pp.cost.inference_seconds(voxels, cluster::GpuModel::GTX1080Ti, 1) *
                jitter);
            if (pctx.cancelled()) { requeue(); co_return; }
            // Store segmentation results.
            const double result_bytes = pp.paper.viz_bytes / total;
            co_await st->bed->fs->write_file(pctx.net_node(),
                                             "/results/shard-" + std::to_string(shard),
                                             static_cast<Bytes>(result_bytes));
            if (pctx.cancelled()) { requeue(); co_return; }
            st->shards_done += 1;
            co_return;  // one shard per pod: completions == inference_gpus
          }
        };
        infer.pod_template.containers.push_back(std::move(c));
        auto infer_job = kube.create_job(infer).value;
        co_await infer_job->done->wait(ctx->sim());
        ctx->add_retries(state->shard_retries);
        ctx->add_data(state->total_bytes);
      }});

  // ------------------------------------------------------------------ step 4
  if (step_enabled(4)) workflow_->add_step(wf::StepSpec{
      "Step 4: JupyterLab visualization", "4",
      [state, bed](wf::StepContext* ctx) -> sim::Task {
        auto& kube = ctx->kube();
        kube::JobSpec viz;
        viz.ns = ctx->ns();
        viz.name = "jupyterlab";
        viz.labels = ctx->step_labels();
        kube::ContainerSpec c;
        c.name = "jupyterlab";
        c.image = "jupyter/datascience";
        c.image_size = util::gb(3);
        c.requests = {1, util::gb(12), 1};
        auto st = state;
        c.program = [st](PodContext& pctx) -> sim::Task {
          const auto& pp = st->params;
          pctx.set_memory_usage(util::gb(12));
          // Mount the Ceph Object Store and load the most recent results.
          for (const auto& path : st->bed->fs->list("/results/")) {
            co_await st->bed->fs->read_file(pctx.net_node(), path);
          }
          // Plot segmented objects and compute object statistics.
          co_await pctx.compute(pp.viz_render_seconds, 1.0);
          pctx.set_gpu_usage(1);
          co_await pctx.gpu_compute(30.0);
        };
        viz.pod_template.containers.push_back(std::move(c));
        auto viz_job = kube.create_job(viz).value;
        co_await viz_job->done->wait(ctx->sim());
        ctx->add_data(state->params.paper.viz_bytes);
      }});
}

// ---------------------------------------------------------------------------------

namespace {

kube::Program redis_program(std::shared_ptr<ConnectWorkflow::State> state) {
  return [state](PodContext& ctx) -> sim::Task {
    // Each incarnation tags its hosting: an evicted replica notices its
    // cancellation up to one poll period after a replacement already
    // re-hosted the server, and must not clobber the new hosting then.
    const std::uint64_t token = ++state->redis_incarnation;
    state->bed->redis->host_on(ctx.net_node());
    ctx.set_memory_usage(util::gb(8));
    while (!ctx.cancelled()) {
      co_await ctx.sim().sleep(10.0);
    }
    if (state->redis_incarnation == token) state->bed->redis->host_on(-1);
  };
}

kube::Program coordinator_program(std::shared_ptr<ConnectWorkflow::State> state) {
  return [state](PodContext& ctx) -> sim::Task {
    const auto& p = state->params;
    ctx.set_memory_usage(util::gb(9));
    redis::RedisClient client(ctx.sim(), ctx.network(), *state->bed->redis,
                              ctx.net_node());
    // Every phase is guarded by a flag key set after it completes, so a
    // restarted coordinator (node lost mid-seed) skips finished phases.
    // Re-seeding a *partially* completed phase can duplicate messages; the
    // workers' "urls:done" set and the mergers' "merge:done" set make those
    // duplicates no-ops.
    int failures = 0;
    std::optional<std::string> flag;
    bool ok = false;

    // Phase 1: split the archive into URL lists (the queue "holds a list of
    // files that contain urls to download").
    while (!ctx.cancelled()) {
      co_await client.get("urls:seeded", &flag, &ok);
      if (!ok) {
        state->download_retries += 1;
        co_await ctx.sim().sleep(backoff_delay(p, failures++));
        continue;
      }
      failures = 0;
      if (flag.has_value()) break;
      const std::uint64_t lists = static_cast<std::uint64_t>(state->url_lists);
      const std::uint64_t per = state->files / lists;
      std::uint64_t assigned = 0;
      for (std::uint64_t i = 0; i < lists && !ctx.cancelled(); ++i) {
        const std::uint64_t count = i + 1 == lists ? state->files - assigned : per;
        const std::string msg =
            std::to_string(assigned) + ":" + std::to_string(count);
        ok = false;
        while (!ok && !ctx.cancelled()) {
          co_await client.rpush("urls", msg, &ok);
          if (!ok) {
            state->download_retries += 1;
            co_await ctx.sim().sleep(backoff_delay(p, failures++));
          }
        }
        failures = 0;
        assigned += count;
      }
      ok = false;
      while (!ok && !ctx.cancelled()) {
        co_await client.set("urls:seeded", "1", &ok);
        if (!ok) co_await ctx.sim().sleep(backoff_delay(p, failures++));
      }
      break;
    }
    if (ctx.cancelled()) co_return;

    // Phase 2: worker sentinels. They must not become consumable until every
    // list is durably in "urls:done": a worker that dies holding a lease gets
    // its list redelivered only after the ttl, and if the survivors have
    // drained the queue — sentinels included — and exited by then, the
    // redelivery lands where no worker will ever look and the files are
    // silently lost. Workers keep popping until they see a sentinel, so
    // holding the sentinels back costs nothing but the wait.
    failures = 0;
    const std::uint64_t expected_lists = static_cast<std::uint64_t>(state->url_lists);
    const double done_poll = std::clamp(p.queue_lease_ttl / 8.0, 1.0, 30.0);
    while (!ctx.cancelled()) {
      std::size_t done_lists = 0;
      co_await client.scard("urls:done", &done_lists, &ok);
      if (!ok) {
        state->download_retries += 1;
        co_await ctx.sim().sleep(backoff_delay(p, failures++));
        continue;
      }
      failures = 0;
      if (done_lists >= expected_lists) break;
      co_await ctx.sim().sleep(done_poll);
    }
    while (!ctx.cancelled()) {
      co_await client.get("urls:stopped", &flag, &ok);
      if (!ok) {
        state->download_retries += 1;
        co_await ctx.sim().sleep(backoff_delay(p, failures++));
        continue;
      }
      failures = 0;
      if (flag.has_value()) break;
      for (int w = 0; w < p.download_workers && !ctx.cancelled(); ++w) {
        ok = false;
        while (!ok && !ctx.cancelled()) {
          co_await client.rpush("urls", "STOP", &ok);
          if (!ok) {
            state->download_retries += 1;
            co_await ctx.sim().sleep(backoff_delay(p, failures++));
          }
        }
        failures = 0;
      }
      ok = false;
      while (!ok && !ctx.cancelled()) {
        co_await client.set("urls:stopped", "1", &ok);
        if (!ok) co_await ctx.sim().sleep(backoff_delay(p, failures++));
      }
      break;
    }
    if (ctx.cancelled()) co_return;

    // Phase 3: once every download worker is done AND every slab is claimed
    // in "merge:done", stop the mergers. The same lost-redelivery hazard as
    // phase 2 applies: a merger dying with a leased slab must find a live
    // consumer when the ttl re-queues it.
    co_await state->download_complete->wait(ctx.sim());
    failures = 0;
    while (!ctx.cancelled()) {
      std::size_t merged = 0;
      co_await client.scard("merge:done", &merged, &ok);
      if (!ok) {
        state->download_retries += 1;
        co_await ctx.sim().sleep(backoff_delay(p, failures++));
        continue;
      }
      failures = 0;
      if (merged >= expected_lists) break;
      co_await ctx.sim().sleep(done_poll);
    }
    while (!ctx.cancelled()) {
      co_await client.get("merge:stopped", &flag, &ok);
      if (!ok) {
        state->download_retries += 1;
        co_await ctx.sim().sleep(backoff_delay(p, failures++));
        continue;
      }
      failures = 0;
      if (flag.has_value()) break;
      for (int m = 0; m < p.merge_pods && !ctx.cancelled(); ++m) {
        ok = false;
        while (!ok && !ctx.cancelled()) {
          co_await client.rpush("merge", "STOP", &ok);
          if (!ok) {
            state->download_retries += 1;
            co_await ctx.sim().sleep(backoff_delay(p, failures++));
          }
        }
        failures = 0;
      }
      ok = false;
      while (!ok && !ctx.cancelled()) {
        co_await client.set("merge:stopped", "1", &ok);
        if (!ok) co_await ctx.sim().sleep(backoff_delay(p, failures++));
      }
      break;
    }
  };
}

kube::Program download_worker_program(std::shared_ptr<ConnectWorkflow::State> state) {
  return [state](PodContext& ctx) -> sim::Task {
    const auto& p = state->params;
    ctx.set_memory_usage(util::gb(16));
    ctx.set_cpu_usage(0.4);
    redis::RedisClient client(ctx.sim(), ctx.network(), *state->bed->redis,
                              ctx.net_node());
    thredds::Aria2Client aria(ctx.sim(), *state->bed->thredds, ctx.net_node(),
                              p.aria2_connections);
    int failures = 0;
    while (!ctx.cancelled()) {
      // Pop under a redelivery lease: if this pod dies anywhere before the
      // final ack, the list returns to the queue after queue_lease_ttl and
      // another worker redoes it (at-least-once; "urls:done" dedups).
      std::string msg;
      std::uint64_t lease = 0;
      bool got = false;
      co_await client.blpop_lease("urls", p.queue_lease_ttl, &msg, &lease, &got);
      if (ctx.cancelled()) co_return;
      if (!got) {  // server unreachable (Redis pod rescheduling): back off
        state->download_retries += 1;
        co_await ctx.sim().sleep(backoff_delay(p, failures++));
        continue;
      }
      failures = 0;
      if (msg == "STOP") {
        bool ok = false;
        while (!ok && !ctx.cancelled()) {
          co_await client.ack(lease, nullptr, &ok);
          if (!ok) co_await ctx.sim().sleep(backoff_delay(p, failures++));
        }
        co_return;
      }
      const auto [first, count] = parse_pair(msg);
      std::vector<std::size_t> files(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        files[i] = static_cast<std::size_t>(first + i);
      }
      ctx.set_cpu_usage(2.5);  // decode + checksum while streaming
      thredds::DownloadStats stats;
      co_await aria.download(p.dataset, std::move(files), p.variable, &stats);
      std::uint64_t slab_bytes = stats.bytes;
      // Refetch only the files that failed (THREDDS link partition, server
      // site down), with exponential backoff between rounds.
      int attempts = 1;
      while (!stats.failed.empty() && attempts < p.download_max_attempts &&
             !ctx.cancelled()) {
        state->download_retries += 1;
        co_await ctx.sim().sleep(backoff_delay(p, attempts - 1));
        std::vector<std::size_t> again = std::move(stats.failed);
        stats = thredds::DownloadStats{};
        co_await aria.download(p.dataset, std::move(again), p.variable, &stats);
        slab_bytes += stats.bytes;
        ++attempts;
      }
      ctx.set_cpu_usage(0.4);
      if (ctx.cancelled()) co_return;
      if (!stats.failed.empty()) {
        // Out of attempts: leave the lease unacked so the ttl redelivers the
        // list later (possibly to a worker with a healthier path).
        state->download_retries += 1;
        continue;
      }
      // Durably mark the list fetched, hand the slab to a merge pod, then
      // ack. Dying between these steps replays the list; "urls:done" and the
      // mergers' "merge:done" dedup make the replay harmless.
      bool ok = false;
      while (!ok && !ctx.cancelled()) {
        co_await client.sadd("urls:done", msg, nullptr, &ok);
        if (!ok) {
          state->download_retries += 1;
          co_await ctx.sim().sleep(backoff_delay(p, failures++));
        }
      }
      const std::string slab = std::to_string(slab_bytes) + ":" +
                               std::to_string(ctx.net_node()) + ":" + msg;
      ok = false;
      while (!ok && !ctx.cancelled()) {
        co_await client.rpush("merge", slab, &ok);
        if (!ok) {
          state->download_retries += 1;
          co_await ctx.sim().sleep(backoff_delay(p, failures++));
        }
      }
      ok = false;
      while (!ok && !ctx.cancelled()) {
        co_await client.ack(lease, nullptr, &ok);
        if (!ok) {
          state->download_retries += 1;
          co_await ctx.sim().sleep(backoff_delay(p, failures++));
        }
      }
      failures = 0;
    }
  };
}

kube::Program merger_program(std::shared_ptr<ConnectWorkflow::State> state) {
  return [state](PodContext& ctx) -> sim::Task {
    const auto& p = state->params;
    ctx.set_memory_usage(util::gb(24));
    ctx.set_cpu_usage(0.3);
    redis::RedisClient client(ctx.sim(), ctx.network(), *state->bed->redis,
                              ctx.net_node());
    int failures = 0;
    while (!ctx.cancelled()) {
      std::string msg;
      std::uint64_t lease = 0;
      bool got = false;
      co_await client.blpop_lease("merge", p.queue_lease_ttl, &msg, &lease, &got);
      if (ctx.cancelled()) co_return;
      if (!got) {
        state->download_retries += 1;
        co_await ctx.sim().sleep(backoff_delay(p, failures++));
        continue;
      }
      failures = 0;
      if (msg == "STOP") {
        bool ok = false;
        while (!ok && !ctx.cancelled()) {
          co_await client.ack(lease, nullptr, &ok);
          if (!ok) co_await ctx.sim().sleep(backoff_delay(p, failures++));
        }
        co_return;
      }
      const SlabMsg slab = parse_slab(msg);
      // Pull the slab from the worker that downloaded it. The worker's
      // machine may be gone (it died after handing off the slab message);
      // after bounded pull retries, refetch the list from THREDDS directly —
      // the data must come from somewhere, and the download workers may have
      // already exited.
      bool have_slab = false;
      for (int attempt = 0; attempt < p.download_max_attempts && !ctx.cancelled();
           ++attempt) {
        auto handle = ctx.network().transfer(static_cast<net::NodeId>(slab.node),
                                             ctx.net_node(), slab.bytes);
        co_await handle->done->wait(ctx.sim());
        if (!handle->failed) {
          have_slab = true;
          break;
        }
        state->download_retries += 1;
        co_await ctx.sim().sleep(backoff_delay(p, attempt));
      }
      if (!have_slab && !ctx.cancelled()) {
        const auto [first, count] = parse_pair(slab.urlmsg);
        thredds::Aria2Client aria(ctx.sim(), *state->bed->thredds, ctx.net_node(),
                                  p.aria2_connections);
        std::vector<std::size_t> want(count);
        for (std::uint64_t i = 0; i < count; ++i) {
          want[i] = static_cast<std::size_t>(first + i);
        }
        int rounds = 0;
        while (!want.empty() && !ctx.cancelled()) {
          thredds::DownloadStats stats;
          co_await aria.download(p.dataset, std::move(want), p.variable, &stats);
          want = std::move(stats.failed);
          if (!want.empty()) {
            state->download_retries += 1;
            co_await ctx.sim().sleep(backoff_delay(p, rounds++));
          }
        }
        have_slab = !ctx.cancelled();
      }
      if (ctx.cancelled()) co_return;  // lease ttl redelivers the slab
      // Claim the slab (atomic test-and-set): a slab can be queued twice
      // when its worker died between marking "urls:done" and acking.
      bool added = false;
      bool ok = false;
      while (!ok && !ctx.cancelled()) {
        co_await client.sadd("merge:done", slab.urlmsg, &added, &ok);
        if (!ok) {
          state->download_retries += 1;
          co_await ctx.sim().sleep(backoff_delay(p, failures++));
        }
      }
      if (ctx.cancelled()) co_return;
      if (!added) {  // duplicate: already merged (or being merged) elsewhere
        ok = false;
        while (!ok && !ctx.cancelled()) {
          co_await client.ack(lease, nullptr, &ok);
          if (!ok) co_await ctx.sim().sleep(backoff_delay(p, failures++));
        }
        continue;
      }
      // Merge the small NetCDF files into one HDF bundle (CPU bound).
      co_await ctx.compute(
          static_cast<double>(slab.bytes) / p.merge_bytes_per_cpu_second, 5.0);
      if (ctx.cancelled()) co_return;
      // Transfer the bundle to the Ceph Object Store.
      const std::string path = "/merra2/bundle-" + std::to_string(state->next_bundle++);
      co_await state->bed->fs->write_file(ctx.net_node(), path, slab.bytes);
      state->bundle_paths.push_back(path);
      ok = false;
      while (!ok && !ctx.cancelled()) {
        co_await client.ack(lease, nullptr, &ok);
        if (!ok) {
          state->download_retries += 1;
          co_await ctx.sim().sleep(backoff_delay(p, failures++));
        }
      }
    }
  };
}

}  // namespace

}  // namespace chase::core
