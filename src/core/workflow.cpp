#include "core/workflow.hpp"

#include "util/units.hpp"

namespace chase::wf {

kube::KubeCluster& StepContext::kube() const { return workflow_.kube_; }
sim::Simulation& StepContext::sim() const { return workflow_.kube_.sim(); }
mon::Registry& StepContext::metrics() const { return workflow_.metrics_; }
const std::string& StepContext::ns() const { return workflow_.ns_; }

void StepContext::add_data(double bytes) { data_bytes_ += bytes; }

void StepContext::add_retries(int n) { retries_ += n; }

Workflow::Workflow(kube::KubeCluster& kube, mon::Registry& metrics, std::string ns,
                   std::string name)
    : kube_(kube), metrics_(metrics), ns_(std::move(ns)), name_(std::move(name)) {}

void Workflow::add_step(StepSpec spec) { steps_.push_back(std::move(spec)); }

sim::Task Workflow::execute() {
  for (const auto& spec : steps_) {
    StepContext ctx(*this, spec.label);
    const double start = kube_.sim().now();
    co_await spec.run(&ctx);
    const double end = kube_.sim().now();
    reports_.push_back(measure_step(spec, ctx, start, end));
    metrics_.record("workflow_step_retries",
                    {{"workflow", name_}, {"step", spec.label}}, end,
                    static_cast<double>(ctx.retries_));
  }
  finished_ = true;
}

sim::EventPtr Workflow::start(sim::Simulation& sim) {
  auto done = sim::make_event();
  auto runner = [](Workflow* self, sim::EventPtr ev) -> sim::Task {
    co_await self->execute();
    ev->trigger(self->kube_.sim());
  };
  sim.spawn(runner(this, done));
  return done;
}

StepReport Workflow::measure_step(const StepSpec& spec, const StepContext& ctx,
                                  double start, double end) const {
  StepReport report;
  report.name = spec.name;
  report.start_time = start;
  report.end_time = end;
  report.data_bytes = ctx.data_bytes_;
  report.retries = ctx.retries_;

  // Resource attribution: every pod the step created carries step=<label>.
  for (const auto& pod : kube_.list_pods(ns_, {{"step", spec.label}})) {
    if (pod->created_at > end || pod->created_at < start) continue;
    // Controllers may retry pods (NodeLost); count distinct concurrent
    // resources via requests of pods that actually ran.
    if (pod->started_at < 0) continue;
    report.pods += 1;
    const auto requests = pod->requests();
    report.cpus += requests.cpu;
    report.gpus += requests.gpus;
  }
  report.peak_memory_bytes =
      metrics_.max_sum("pod_memory_bytes", {{"step", spec.label}});
  return report;
}

std::string Workflow::summary_table() const {
  util::Table table({"", "Step 1", "Step 2", "Step 3", "Step 4"});
  // Render in the paper's transposed layout when there are exactly 4 steps;
  // otherwise fall back to one row per step.
  if (reports_.size() == 4) {
    auto row = [&](const std::string& title,
                   const std::function<std::string(const StepReport&)>& cell) {
      std::vector<std::string> cells{title};
      for (const auto& r : reports_) cells.push_back(cell(r));
      table.add_row(std::move(cells));
    };
    row("# of Pods", [](const StepReport& r) { return std::to_string(r.pods); });
    row("# of CPUs", [](const StepReport& r) {
      return std::to_string(static_cast<int>(r.cpus));
    });
    row("# of GPUs", [](const StepReport& r) { return std::to_string(r.gpus); });
    row("Data Processed",
        [](const StepReport& r) { return util::format_bytes(r.data_bytes); });
    row("Memory", [](const StepReport& r) {
      return util::format_bytes(r.peak_memory_bytes);
    });
    row("Total Time",
        [](const StepReport& r) { return util::format_duration(r.duration()); });
    return table.render(name_ + " resource summary (Table I layout)");
  }
  util::Table flat({"Step", "Pods", "CPUs", "GPUs", "Data", "Peak mem", "Time"});
  for (const auto& r : reports_) {
    flat.add_row({r.name, std::to_string(r.pods),
                  std::to_string(static_cast<int>(r.cpus)), std::to_string(r.gpus),
                  util::format_bytes(r.data_bytes),
                  util::format_bytes(r.peak_memory_bytes),
                  util::format_duration(r.duration())});
  }
  return flat.render(name_ + " step summary");
}

std::string Workflow::export_kepler() const {
  // Kepler workflows are MoML documents: entities (actors) joined by
  // relations; each of our steps becomes an actor in a sequential chain,
  // annotated with its measured properties when the step has run.
  std::string xml;
  xml += "<?xml version=\"1.0\"?>\n";
  xml += "<entity name=\"" + name_ + "\" class=\"ptolemy.actor.TypedCompositeActor\">\n";
  xml += "  <property name=\"namespace\" value=\"" + ns_ + "\"/>\n";
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const auto& step = steps_[i];
    xml += "  <entity name=\"" + step.name +
           "\" class=\"org.chaseci.workflow.KubernetesStep\">\n";
    xml += "    <property name=\"stepLabel\" value=\"" + step.label + "\"/>\n";
    if (i < reports_.size()) {
      const auto& r = reports_[i];
      xml += "    <property name=\"measured.pods\" value=\"" +
             std::to_string(r.pods) + "\"/>\n";
      xml += "    <property name=\"measured.gpus\" value=\"" +
             std::to_string(r.gpus) + "\"/>\n";
      xml += "    <property name=\"measured.duration\" value=\"" +
             util::format_duration(r.duration()) + "\"/>\n";
      xml += "    <property name=\"measured.data\" value=\"" +
             util::format_bytes(r.data_bytes) + "\"/>\n";
    }
    xml += "  </entity>\n";
  }
  for (std::size_t i = 0; i + 1 < steps_.size(); ++i) {
    xml += "  <relation name=\"r" + std::to_string(i) + "\"/>\n";
    xml += "  <link port=\"" + steps_[i].name + ".output\" relation=\"r" +
           std::to_string(i) + "\"/>\n";
    xml += "  <link port=\"" + steps_[i + 1].name + ".input\" relation=\"r" +
           std::to_string(i) + "\"/>\n";
  }
  xml += "</entity>\n";
  return xml;
}

}  // namespace chase::wf
