#include "core/jupyterhub.hpp"

namespace chase::core {

JupyterHub::JupyterHub(kube::KubeCluster& kube, Options options)
    : kube_(kube), options_(std::move(options)) {
  if (!kube_.has_namespace(options_.ns)) kube_.create_namespace(options_.ns);
  kube_.sim().spawn(culler_loop(this));
}

kube::Result<kube::PodPtr> JupyterHub::spawn(const std::string& user) {
  if (auto it = sessions_.find(user); it != sessions_.end()) {
    if (!it->second.pod->terminal()) {
      touch(user);
      return {it->second.pod, ""};
    }
    sessions_.erase(it);
  }
  kube::PodSpec spec;
  kube::ContainerSpec c;
  c.name = "notebook";
  c.image = "jupyter/datascience-notebook";
  c.image_size = options_.image_size;
  c.requests = options_.notebook_resources;
  // The notebook serves until culled or stopped.
  c.program = [](kube::PodContext& ctx) -> sim::Task {
    while (!ctx.cancelled()) {
      co_await ctx.sim().sleep(30.0);
    }
  };
  spec.containers.push_back(std::move(c));
  const std::string name = "jupyter-" + user + "-" + std::to_string(spawned_++);
  auto result = kube_.create_pod(options_.ns, name, std::move(spec),
                                 {{"app", "jupyterhub"}, {"user", user}});
  if (!result.ok()) return result;
  sessions_[user] = Session{result.value, kube_.sim().now()};
  return result;
}

bool JupyterHub::has_session(const std::string& user) const {
  auto it = sessions_.find(user);
  return it != sessions_.end() && !it->second.pod->terminal();
}

void JupyterHub::touch(const std::string& user) {
  if (auto it = sessions_.find(user); it != sessions_.end()) {
    it->second.last_activity = kube_.sim().now();
  }
}

void JupyterHub::stop(const std::string& user) {
  auto it = sessions_.find(user);
  if (it == sessions_.end()) return;
  kube_.delete_pod(options_.ns, it->second.pod->meta.name);
  sessions_.erase(it);
}

int JupyterHub::active_sessions() const {
  int n = 0;
  for (const auto& [user, session] : sessions_) {
    n += !session.pod->terminal();
  }
  return n;
}

sim::Task JupyterHub::culler_loop(JupyterHub* self) {
  auto alive = self->alive_;
  auto& sim = self->kube_.sim();
  while (*alive) {
    co_await sim.sleep(self->options_.cull_period);
    if (!*alive) co_return;
    const double now = sim.now();
    std::vector<std::string> idle;
    for (const auto& [user, session] : self->sessions_) {
      if (!session.pod->terminal() &&
          now - session.last_activity > self->options_.idle_timeout) {
        idle.push_back(user);
      }
    }
    for (const auto& user : idle) {
      self->stop(user);
      self->culled_ += 1;
    }
  }
}

}  // namespace chase::core
