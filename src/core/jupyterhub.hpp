#pragma once
/// \file jupyterhub.hpp
/// JupyterHub (paper §VII): "This software allows for a web based
/// environment to automatically be generated per user on demand. The
/// Jupyter Notebook instance that is generated is attached to a GPU on the
/// cluster... This process allows for quick development of code without the
/// hassle of setting up any code or configuration locally."
///
/// The hub spawns one notebook pod per user on demand (GPU attached, CephFS
/// mounted by the pod program), tracks activity, and culls idle sessions to
/// return GPUs to the pool — the resource hygiene a shared cluster needs.

#include <map>
#include <memory>
#include <string>

#include "kube/cluster.hpp"

namespace chase::core {

class JupyterHub {
 public:
  struct Options {
    std::string ns = "jupyterhub";
    /// Per-notebook resources (paper: one GPU each).
    kube::ResourceList notebook_resources{1.0, util::gb(12), 1};
    kube::Bytes image_size = util::gb(3);
    /// Idle sessions are culled after this long without activity.
    double idle_timeout = 2 * util::kHour;
    /// How often the culler checks.
    double cull_period = 5 * util::kMinute;
  };

  JupyterHub(kube::KubeCluster& kube, Options options);
  JupyterHub(kube::KubeCluster& kube) : JupyterHub(kube, Options{}) {}
  ~JupyterHub() { *alive_ = false; }  // stops the culler loop safely

  /// Get-or-create the user's notebook pod. Existing live sessions are
  /// returned as-is (and touched).
  kube::Result<kube::PodPtr> spawn(const std::string& user);
  bool has_session(const std::string& user) const;
  /// Record user activity (notebook keystrokes), resetting the idle clock.
  void touch(const std::string& user);
  /// Tear a session down immediately.
  void stop(const std::string& user);

  int active_sessions() const;
  std::uint64_t sessions_culled() const { return culled_; }

 private:
  struct Session {
    kube::PodPtr pod;
    double last_activity = 0;
  };
  static sim::Task culler_loop(JupyterHub* self);

  kube::KubeCluster& kube_;
  Options options_;
  std::map<std::string, Session> sessions_;
  std::uint64_t culled_ = 0;
  std::uint64_t spawned_ = 0;  // makes respawned pod names unique
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace chase::core
