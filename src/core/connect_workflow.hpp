#pragma once
/// \file connect_workflow.hpp
/// The paper's case study (§III): the accelerated CONNECT object-segmentation
/// workflow over MERRA-2 IVT data, as a 4-step chase::wf workflow on the
/// Nautilus testbed:
///
///   Step 1 — THREDDS data download: a Redis-fed Job of download workers
///            (Aria2, 20 parallel connections each) pulls the IVT variable
///            subset (455 GB -> 246 GB), merge pods bundle the 112,249
///            NetCDF files into large HDF objects in the Ceph Object Store.
///   Step 2 — Model training: one pod, one 1080ti; serial protobuf data
///            prep, then FFN training on the 576×361×240 volume.
///   Step 3 — Model inference: a Job of N single-GPU pods (paper: 50) sharding
///            2.3e10 voxels evenly.
///   Step 4 — JupyterLab visualization: one pod loads 5.8 GB of results from
///            Ceph and renders.
///
/// All knobs the ablation benches vary (workers, connections, GPUs, variable
/// subsetting, distributed prep/training) are parameters. Data is virtual
/// (byte counts) at this scale; the small-scale *real* ML path lives in
/// examples/connect_workflow.cpp.

#include <cstdint>
#include <memory>
#include <string>

#include "core/nautilus.hpp"
#include "core/workflow.hpp"
#include "ml/cost.hpp"

namespace chase::core {

struct ConnectWorkflowParams {
  // --- step 1: download ------------------------------------------------------
  std::string dataset = "M2I3NPASM";
  /// Variable to subset; empty string downloads whole files (ablation A2).
  std::string variable = "IVT";
  int download_workers = 10;
  int aria2_connections = 20;
  int merge_pods = 2;
  /// Redis messages, each a list of URLs (the paper's "files that contain
  /// urls"); files are split evenly across lists.
  int url_lists = 500;
  /// Per-merger throughput of combining NetCDF files into HDF bundles.
  double merge_bytes_per_cpu_second = 30e6;

  // --- step 2: training -------------------------------------------------------
  /// Serial NetCDF->protobuf preparation throughput (the Fig. 5 "purple"
  /// phase); §III-E1's distributed variant splits this across workers.
  double prep_bytes_per_second = 66e6;
  int prep_workers = 1;   // ablation A4 (distributed pre-processing)
  int train_gpus = 1;     // ablation A5 (distributed training); >1 uses a
                          // sync-SGD ReplicaSet with all-reduce overhead
  /// Communication efficiency per additional worker for distributed training.
  double dist_train_efficiency = 0.88;

  // --- step 3: inference --------------------------------------------------------
  int inference_gpus = 50;
  /// Per-pod runtime jitter (stragglers), fraction of mean.
  double straggler_jitter = 0.04;
  /// Seed of the straggler-jitter stream; the run is a pure function of the
  /// seed (tools/determinism_check replays a seed twice and diffs traces).
  std::uint64_t straggler_seed = 2027;

  // --- step 4: visualization ------------------------------------------------------
  double viz_render_seconds = 120.0;

  // --- fault tolerance ---------------------------------------------------------
  /// Redelivery lease on queue messages: a popped URL list a worker never
  /// acks (pod died mid-download) returns to the queue after this long.
  double queue_lease_ttl = 600.0;
  /// Per-URL-list download attempts (only failed files are refetched).
  int download_max_attempts = 5;
  /// Exponential backoff between fault-path retries, seconds.
  double retry_backoff_base = 1.0;
  double retry_backoff_max = 60.0;

  // --- shared ------------------------------------------------------------------------
  /// Scale the archive (files and voxels) for fast tests: 1.0 = paper scale.
  double data_fraction = 1.0;
  /// Which steps to build (1..4); per-figure benches isolate single steps.
  std::vector<int> steps = {1, 2, 3, 4};
  ml::FfnCostModel cost;
  ml::PaperWorkload paper;
  std::string ns = "atmos-connect";
};

/// Wires the 4-step workflow against a Nautilus testbed. The returned
/// Workflow is ready to `start(bed.sim)`; keep the builder alive until the
/// run finishes (it owns shared workflow state).
class ConnectWorkflow {
 public:
  ConnectWorkflow(Nautilus& bed, ConnectWorkflowParams params);

  wf::Workflow& workflow() { return *workflow_; }
  const ConnectWorkflowParams& params() const { return params_; }

  /// Total files and bytes the run will move (after data_fraction scaling).
  std::uint64_t scaled_file_count() const;
  double scaled_subset_bytes() const;
  double scaled_archive_bytes() const;
  double scaled_inference_voxels() const;

  /// Files durably downloaded exactly once (byte-conservation check: equals
  /// scaled_file_count() after a completed step 1, faults or not).
  std::uint64_t files_fetched() const;
  /// Fault-path retries across download workers and mergers.
  int download_retries() const;

  /// Shared mutable state between the step bodies and pod programs
  /// (public so the program factories can reference it; treat as internal).
  struct State;

 private:
  void build();

  Nautilus& bed_;
  ConnectWorkflowParams params_;
  std::shared_ptr<State> state_;
  std::unique_ptr<wf::Workflow> workflow_;
};

}  // namespace chase::core
