#pragma once
/// \file hyperparam.hpp
/// Hyperparameter & validation sweeps (paper §III-E3): "A Redis queue is
/// being developed to store model training/testing validation split
/// methodologies and parameter sets to be used in multi-model validation."
///
/// This implements that future-work item end to end: parameter sets (and
/// their train/validation split seeds) go into the Redis queue; a
/// Kubernetes Job of worker pods pops sets and — *really* — trains a small
/// FFN on synthetic IVT data, validates on the held-out split, and records
/// the metrics. The sweep's leaderboard picks the winning configuration.

#include <memory>
#include <string>
#include <vector>

#include "core/nautilus.hpp"
#include "ml/eval.hpp"
#include "ml/ffn.hpp"
#include "ml/synth.hpp"

namespace chase::core {

struct HyperparamSpec {
  std::string id;          // e.g. "lr0.02-adam"
  float learning_rate = 0.02f;
  int steps = 300;
  int recursion = 1;
  ml::FfnModel::OptimizerConfig::Kind optimizer =
      ml::FfnModel::OptimizerConfig::Kind::Sgd;
  /// Validation-split methodology: the seed of the held-out volume.
  std::uint64_t split_seed = 1000;
};

struct HyperparamResult {
  HyperparamSpec spec;
  float final_loss = 0.f;
  double precision = 0, recall = 0, iou = 0;
  std::string pod;        // which worker evaluated it
  double wall_time = 0;   // simulated seconds the trial occupied its pod
};

class HyperparamSweep {
 public:
  struct Options {
    int workers = 4;
    /// Data configuration for training volumes (validation volumes reuse it
    /// with the split seed).
    ml::IvtFieldParams data;
    /// Simulated GPU-seconds charged per optimizer step (the real CPU math
    /// is free in simulated time; this models the 1080ti cost).
    double gpu_seconds_per_step = 0.05;
    std::string ns = "hyperparam";
  };

  HyperparamSweep(Nautilus& bed, Options options);

  /// Queue the parameter sets and launch the worker Job; the returned event
  /// fires when every set has been evaluated.
  sim::EventPtr run(std::vector<HyperparamSpec> specs);

  const std::vector<HyperparamResult>& results() const { return results_; }
  /// Best result by validation IoU; nullptr before any results.
  const HyperparamResult* best() const;
  std::string leaderboard() const;

 private:
  struct State;
  Nautilus& bed_;
  Options options_;
  std::shared_ptr<State> state_;
  std::vector<HyperparamResult> results_;
};

}  // namespace chase::core
