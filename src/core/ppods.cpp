#include "core/ppods.hpp"

#include <algorithm>
#include <sstream>

#include "util/units.hpp"

namespace chase::wf {

PpodsSession::PpodsSession(kube::KubeCluster& kube, mon::Registry& metrics,
                           std::string ns, std::string name)
    : kube_(kube), metrics_(metrics), ns_(std::move(ns)), name_(std::move(name)) {
  if (!kube_.has_namespace(ns_)) kube_.create_namespace(ns_);
}

void PpodsSession::add_member(const std::string& user) {
  if (std::find(members_.begin(), members_.end(), user) == members_.end()) {
    members_.push_back(user);
  }
}

void PpodsSession::register_step(const std::string& step, const std::string& owner) {
  add_member(owner);
  for (auto& [name, existing_owner] : step_owners_) {
    if (name == step) {
      existing_owner = owner;
      return;
    }
  }
  step_owners_.emplace_back(step, owner);
}

std::string PpodsSession::owner_of(const std::string& step) const {
  for (const auto& [name, owner] : step_owners_) {
    if (name == step) return owner;
  }
  return "";
}

std::vector<std::string> PpodsSession::steps() const {
  std::vector<std::string> out;
  out.reserve(step_owners_.size());
  for (const auto& [name, owner] : step_owners_) out.push_back(name);
  return out;
}

void PpodsSession::add_expectation(const std::string& step, std::string description,
                                   std::function<bool(const StepReport&)> check) {
  expectations_.emplace_back(step,
                             StepExpectation{std::move(description), std::move(check)});
}

sim::EventPtr PpodsSession::run_trial(StepSpec spec, const std::string& notes) {
  // Each trial is its own single-step workflow: "each step can easily be
  // tested independently of one another".
  auto workflow = std::make_unique<Workflow>(kube_, metrics_, ns_,
                                             name_ + "/" + spec.name);
  Workflow* raw = workflow.get();
  trial_runs_.push_back(std::move(workflow));
  raw->add_step(spec);

  auto recorded = sim::make_event();
  auto runner = [](PpodsSession* self, Workflow* wf, std::string step,
                   std::string notes_text, sim::EventPtr done) -> sim::Task {
    co_await wf->execute();
    StepTrial trial;
    trial.step = step;
    trial.owner = self->owner_of(step);
    trial.notes = std::move(notes_text);
    trial.report = wf->reports().back();
    int count = 0;
    for (const auto& prior : self->trials_) count += prior.step == step;
    trial.number = count + 1;
    for (const auto& [expected_step, expectation] : self->expectations_) {
      if (expected_step == step && !expectation.check(trial.report)) {
        trial.failed_expectations.push_back(expectation.description);
      }
    }
    self->trials_.push_back(std::move(trial));
    done->trigger(self->kube_.sim());
  };
  kube_.sim().spawn(runner(this, raw, spec.name, notes, recorded));
  return recorded;
}

std::vector<const StepTrial*> PpodsSession::trials_of(const std::string& step) const {
  std::vector<const StepTrial*> out;
  for (const auto& trial : trials_) {
    if (trial.step == step) out.push_back(&trial);
  }
  return out;
}

double PpodsSession::improvement(const std::string& step) const {
  auto runs = trials_of(step);
  if (runs.size() < 2) return 1.0;
  const double first = runs.front()->report.duration();
  double best = first;
  for (const auto* trial : runs) best = std::min(best, trial->report.duration());
  return best > 0 ? first / best : 1.0;
}

std::string PpodsSession::render_board() const {
  util::Table table({"Step", "Owner", "Trials", "Best time", "Improvement", "Status"});
  for (const auto& [step, owner] : step_owners_) {
    auto runs = trials_of(step);
    std::string best = "-", status = "not run";
    if (!runs.empty()) {
      double best_time = runs.front()->report.duration();
      for (const auto* trial : runs) {
        best_time = std::min(best_time, trial->report.duration());
      }
      best = util::format_duration(best_time);
      const auto* last = runs.back();
      status = last->passed() ? "passing"
                              : "FAILING: " + last->failed_expectations.front();
    }
    table.add_row({step, owner, std::to_string(runs.size()), best,
                   "x" + util::format_double(improvement(step), 2), status});
  }
  return table.render("PPoDS session '" + name_ + "'");
}

}  // namespace chase::wf
