#include "core/hyperparam.hpp"

#include <algorithm>

#include "ml/ffn_infer.hpp"
#include "redis/redis.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace chase::core {

struct HyperparamSweep::State {
  Nautilus* bed = nullptr;
  Options options;
  std::vector<HyperparamSpec> specs;
  std::vector<HyperparamResult>* results = nullptr;
  ml::IvtField training_data;  // shared training volume (generated once)
};

HyperparamSweep::HyperparamSweep(Nautilus& bed, Options options)
    : bed_(bed), options_(std::move(options)), state_(std::make_shared<State>()) {
  state_->bed = &bed_;
  state_->options = options_;
  state_->results = &results_;
  state_->training_data = ml::generate_ivt(options_.data);
  bed_.kube->create_namespace(options_.ns);
}

sim::EventPtr HyperparamSweep::run(std::vector<HyperparamSpec> specs) {
  state_->specs = std::move(specs);
  auto state = state_;
  auto done = sim::make_event();

  // Host Redis on the first GPU node for the sweep (standalone service).
  bed_.redis->host_on(bed_.inventory.machine(bed_.gpu_machines()[0]).net_node);
  for (std::size_t i = 0; i < state_->specs.size(); ++i) {
    bed_.redis->rpush("hyperparam-queue", std::to_string(i));
  }
  for (int w = 0; w < options_.workers; ++w) {
    bed_.redis->rpush("hyperparam-queue", "STOP");
  }

  kube::JobSpec job;
  job.ns = options_.ns;
  job.name = "hyperparam";
  job.labels = {{"app", "hyperparam"}};
  job.completions = options_.workers;
  job.parallelism = options_.workers;
  kube::ContainerSpec c;
  c.name = "trainer";
  c.image = "tensorflow/ffn";
  c.requests = {2, util::gb(12), 1};
  c.program = [state](kube::PodContext& ctx) -> sim::Task {
    redis::RedisClient client(ctx.sim(), ctx.network(), *state->bed->redis,
                              ctx.net_node());
    while (!ctx.cancelled()) {
      std::string msg;
      bool got = false;
      co_await client.blpop("hyperparam-queue", &msg, &got);
      if (!got || msg == "STOP") co_return;
      const auto index = static_cast<std::size_t>(std::stoull(msg));
      const HyperparamSpec spec = state->specs.at(index);

      // Real training on the shared volume with this parameter set.
      ml::FfnConfig cfg;
      cfg.channels = 6;
      cfg.modules = 1;
      cfg.fov = 7;
      ml::FfnModel model(cfg);
      ml::FfnTrainer::Options topts;
      topts.steps = spec.steps;
      topts.recursion = spec.recursion;
      topts.learning_rate = spec.learning_rate;
      topts.optimizer = spec.optimizer;
      ml::FfnTrainer trainer(model, state->training_data.ivt,
                             state->training_data.truth, topts);
      const float loss = trainer.train();

      // Simulated GPU wall time for the trial.
      const double start = ctx.sim().now();
      co_await ctx.gpu_compute(state->options.gpu_seconds_per_step * spec.steps);

      // Validate on the held-out split defined by the methodology seed.
      ml::IvtFieldParams validation_params = state->options.data;
      validation_params.seed = spec.split_seed;
      auto validation = ml::generate_ivt(validation_params);
      ml::InferenceOptions iopts;
      iopts.seed_threshold = 300.f;
      iopts.move_threshold = 0.7f;
      iopts.segment_threshold = 0.5f;
      auto inference = ml::ffn_inference(model, validation.ivt, iopts);
      auto metrics = ml::voxel_metrics(inference.segments, validation.truth);

      HyperparamResult result;
      result.spec = spec;
      result.final_loss = loss;
      result.precision = metrics.precision();
      result.recall = metrics.recall();
      result.iou = metrics.iou();
      result.pod = ctx.pod().meta.name;
      result.wall_time = ctx.sim().now() - start;
      state->results->push_back(std::move(result));
    }
  };
  job.pod_template.containers.push_back(std::move(c));
  auto handle = bed_.kube->create_job(job).value;

  auto waiter = [](Nautilus* bed, kube::JobPtr job_handle, sim::EventPtr ev) -> sim::Task {
    co_await job_handle->done->wait(bed->sim);
    bed->redis->host_on(-1);
    ev->trigger(bed->sim);
  };
  bed_.sim.spawn(waiter(&bed_, handle, done));
  return done;
}

const HyperparamResult* HyperparamSweep::best() const {
  const HyperparamResult* top = nullptr;
  for (const auto& result : results_) {
    if (top == nullptr || result.iou > top->iou) top = &result;
  }
  return top;
}

std::string HyperparamSweep::leaderboard() const {
  std::vector<const HyperparamResult*> order;
  for (const auto& result : results_) order.push_back(&result);
  std::sort(order.begin(), order.end(),
            [](const HyperparamResult* a, const HyperparamResult* b) {
              // Equal-IoU configs need a total order, or the leaderboard
              // (and any report diffed against it) depends on result
              // addresses via std::sort's unstable tie handling.
              if (a->iou != b->iou) return a->iou > b->iou;
              return a->spec.id < b->spec.id;
            });
  util::Table table({"Params", "Optimizer", "Loss", "Precision", "Recall", "IoU", "Pod"});
  for (const auto* result : order) {
    table.add_row(
        {result->spec.id,
         result->spec.optimizer == ml::FfnModel::OptimizerConfig::Kind::Adam ? "adam"
                                                                             : "sgd",
         util::format_double(result->final_loss, 3),
         util::format_double(result->precision, 3),
         util::format_double(result->recall, 3), util::format_double(result->iou, 3),
         result->pod});
  }
  return table.render("Multi-model validation leaderboard (paper SIII-E3)");
}

}  // namespace chase::core
