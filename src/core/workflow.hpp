#pragma once
/// \file workflow.hpp
/// The paper's primary contribution (§V, §VI): a workflow layer that declares
/// steps as desired state against the orchestrator and *measures every step*
/// ("a step-by-step workflow and performance measurement approach"). Each
/// step body creates Jobs/ReplicaSets via kube; the driver tags the step's
/// pods, waits for completion, and snapshots pods / CPUs / GPUs / memory /
/// data / duration — exactly the columns of Table I. The measurement records
/// also power the PPoDS ("Process for the Practice of Data Science")
/// collaborative development reports of §VI.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kube/cluster.hpp"
#include "mon/metrics.hpp"
#include "sim/event.hpp"
#include "sim/simulation.hpp"
#include "util/table.hpp"

namespace chase::wf {

class Workflow;

/// One row of the Table-I-style step summary.
struct StepReport {
  std::string name;
  int pods = 0;
  double cpus = 0.0;      // sum of scheduled pods' CPU requests
  int gpus = 0;           // sum of scheduled pods' GPU requests
  double data_bytes = 0;  // "Data Processed"
  double peak_memory_bytes = 0;
  int retries = 0;        // fault-path retries surfaced by the step body
  double start_time = 0;
  double end_time = 0;
  double duration() const { return end_time - start_time; }
};

/// Passed to step bodies: access to the world plus measurement hooks.
class StepContext {
 public:
  StepContext(Workflow& wf, std::string step_label)
      : workflow_(wf), label_(std::move(step_label)) {}

  kube::KubeCluster& kube() const;
  sim::Simulation& sim() const;
  mon::Registry& metrics() const;
  const std::string& ns() const;

  /// Label value all of this step's pods must carry ("step" -> label) so the
  /// measurement layer can attribute usage.
  const std::string& step_label() const { return label_; }
  /// Convenience: labels map for pod templates.
  kube::Labels step_labels() const { return {{"step", label_}}; }

  /// Record logical bytes processed by this step (Table I "Data Processed").
  void add_data(double bytes);
  /// Record fault-path retries (re-queued downloads, redelivered queue
  /// leases, re-run shards). Surfaced per step as StepReport.retries and the
  /// "workflow_step_retries" metric.
  void add_retries(int n);

 private:
  friend class Workflow;
  Workflow& workflow_;
  std::string label_;
  double data_bytes_ = 0;
  int retries_ = 0;
};

struct StepSpec {
  std::string name;   // "Step 1: THREDDS download"
  std::string label;  // short label used on pods, e.g. "1"
  /// The step body: declare Jobs/ReplicaSets, await their completion.
  /// Takes the context by pointer (the `Foo* self` coroutine idiom): a
  /// reference parameter would be copied into the lazy frame as a reference
  /// and is exactly the bug class chase_lint's coro-ref-param check flags.
  std::function<sim::Task(StepContext*)> run;
};

/// Sequential workflow driver with per-step measurement.
class Workflow {
 public:
  Workflow(kube::KubeCluster& kube, mon::Registry& metrics, std::string ns,
           std::string name = "workflow");

  void add_step(StepSpec spec);

  /// Execute all steps in order; `done` fires at the end. Must be spawned
  /// into the simulation (or awaited from a task).
  sim::Task execute();
  /// Convenience: spawn execute() and return the completion event.
  sim::EventPtr start(sim::Simulation& sim);

  bool finished() const { return finished_; }
  const std::vector<StepReport>& reports() const { return reports_; }

  /// Render the Table-I-style summary of all executed steps.
  std::string summary_table() const;

  /// Export the workflow as a Kepler-style MoML actor graph (paper §III-E5:
  /// "move this towards a collaborative workflow using the PPODS
  /// methodology and the new Kepler 3.0 interface").
  std::string export_kepler() const;

 private:
  friend class StepContext;
  StepReport measure_step(const StepSpec& spec, const StepContext& ctx, double start,
                          double end) const;

  kube::KubeCluster& kube_;
  mon::Registry& metrics_;
  std::string ns_;
  std::string name_;
  std::vector<StepSpec> steps_;
  std::vector<StepReport> reports_;
  bool finished_ = false;
};

}  // namespace chase::wf
