#include "core/nautilus.hpp"

#include <sstream>

namespace chase::core {

using util::gbit_per_s;

Nautilus::Nautilus(NautilusOptions options) : options_(std::move(options)) {
  // --- network: CENIC-like core with per-site uplinks -----------------------
  core_ = net.add_node("prp-core");
  for (std::size_t s = 0; s < options_.sites.size(); ++s) {
    auto sw = net.add_node(options_.sites[s] + "-switch");
    const double gbps = options_.wan_gbps.empty()
                            ? 100.0
                            : options_.wan_gbps[s % options_.wan_gbps.size()];
    // WAN latency: a few ms of fiber across California/the West.
    net.add_link(sw, core_, gbit_per_s(gbps), 3e-3);
    site_switches_.push_back(sw);
  }

  // --- orchestrator, with an image registry at the first site ----------------
  auto registry_node = net.add_node("registry.sdsc");
  net.add_link(registry_node, site_switches_[0], gbit_per_s(40), 1e-4);
  kube::KubeCluster::Options kopts = options_.kube_options;
  kopts.registry_node = registry_node;
  kube = std::make_unique<kube::KubeCluster>(sim, net, inventory, &metrics, kopts);

  // --- storage ------------------------------------------------------------------
  ceph::CephCluster::Options copts;
  copts.replication = options_.ceph_replication;
  copts.pg_count = options_.ceph_pg_count;
  ceph = std::make_unique<ceph::CephCluster>(sim, net, inventory, &metrics, copts);

  // --- machines ---------------------------------------------------------------------
  for (std::size_t s = 0; s < options_.sites.size(); ++s) {
    const std::string& site = options_.sites[s];
    for (int i = 0; i < options_.fiona8_per_site; ++i) {
      const std::string name = site + "-fiona8-" + std::to_string(i);
      auto nn = net.add_node(name);
      net.add_link(nn, site_switches_[s], gbit_per_s(20), 1e-4);
      auto mid = inventory.add(cluster::fiona8(name, site), nn);
      kube->register_node(mid);
      gpu_machines_.push_back(mid);
    }
    for (int i = 0; i < options_.storage_per_site; ++i) {
      const std::string name = site + "-stor-" + std::to_string(i);
      auto nn = net.add_node(name);
      net.add_link(nn, site_switches_[s], gbit_per_s(40), 1e-4);
      auto mid = inventory.add(
          cluster::storage_fiona(name, site, options_.storage_capacity), nn);
      storage_machines_.push_back(mid);
      ceph->add_osd(mid);
    }
  }
  fs = std::make_unique<ceph::CephFs>(*ceph, "cephfs-data", options_.ceph_replication);

  // --- data service: THREDDS DTN at UCSD with the MERRA-2 catalog --------------
  {
    auto nn = net.add_node("thredds-dtn.ucsd");
    net.add_link(nn, site_switches_[0], gbit_per_s(20), 1e-4);
    thredds_machine_ = inventory.add(cluster::dtn("thredds-dtn", options_.sites[0]), nn);
    thredds = std::make_unique<thredds::ThreddsServer>(sim, net, nn,
                                                       options_.thredds_options);
    thredds->add_dataset(thredds::make_merra2_m2i3npasm());
  }

  // --- queue + auth ---------------------------------------------------------------
  redis = std::make_unique<redis::RedisServer>(sim);
  sso.register_provider("ucsd.edu");
  sso.register_provider("uci.edu");
  sso.register_provider("berkeley.edu");

  // --- cluster-level probes ----------------------------------------------------------
  metrics.register_probe("net_total_rate", {}, [this] { return net.total_flow_rate(); });
  metrics.register_probe("net_bytes_total", {},
                         [this] { return net.total_bytes_delivered(); });
  metrics.register_probe("kube_allocated_cpu", {},
                         [this] { return kube->total_allocated().cpu; });
  metrics.register_probe("kube_allocated_gpus", {}, [this] {
    return static_cast<double>(kube->total_allocated().gpus);
  });
}

std::string Nautilus::describe() const {
  std::ostringstream os;
  os << "Nautilus on PRP: " << options_.sites.size() << " sites\n";
  for (std::size_t s = 0; s < options_.sites.size(); ++s) {
    const double gbps = options_.wan_gbps.empty()
                            ? 100.0
                            : options_.wan_gbps[s % options_.wan_gbps.size()];
    os << "  " << options_.sites[s] << ": " << options_.fiona8_per_site
       << " FIONA8 (8x 1080ti), " << options_.storage_per_site
       << " storage FIONA (" << util::format_bytes(static_cast<double>(options_.storage_capacity))
       << "), uplink " << gbps << "G\n";
  }
  os << "Totals: " << inventory.total_gpus() << " GPUs, " << inventory.total_cpus()
     << " CPU cores, " << util::format_bytes(static_cast<double>(inventory.total_memory()))
     << " RAM, Ceph raw capacity "
     << util::format_bytes(static_cast<double>(ceph->total_capacity())) << " ("
     << options_.ceph_replication << "x replication)\n";
  return os.str();
}

}  // namespace chase::core
