/// \file bench_compare.cpp
/// Perf-regression gate: diff a fresh `bench_core_throughput --json` run
/// against the committed baseline (BENCH_core_throughput.json).
///
/// Two checks per size rung, by name:
///   * `events` must match the baseline EXACTLY — the bench is a seeded
///     deterministic workload, so any drift in the event count is a
///     behavior change sneaking in through a "perf" patch, not noise.
///   * `events_per_sec` must be at least (100 - tolerance)% of the
///     baseline. Wall time is machine- and load-dependent, so the default
///     tolerance is deliberately loose (40%); it catches order-of-magnitude
///     regressions (a reintroduced per-event allocation, an accidental
///     O(n^2)), not scheduler jitter.
///
/// The current run can be given as a file (--current) or produced on the
/// spot by launching the bench binary (--bench), which is how the
/// perf-labeled ctest uses it:
///
///   $ build/tools/bench_compare --baseline BENCH_core_throughput.json
///         --bench build/bench/bench_core_throughput --tolerance 40
///   $ build/tools/bench_compare --baseline a.json --current b.json
///
/// Exit 0: all rungs within tolerance. Exit 1: regression (or event-count
/// drift). Exit 2: usage / IO / parse error.
///
/// The parser below reads exactly the schema bench_core_throughput emits
/// (schema 1); it is a scanner, not a general JSON library, on purpose —
/// the repo has no JSON dependency and does not want one for this.

#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct SizeResult {
  std::string name;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  double sim_per_wall = 0.0;
};

struct BenchRun {
  int schema = 0;
  bool smoke = false;
  std::vector<SizeResult> sizes;
};

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Value of `"key":` scanning from `from` within [from, to); npos if absent.
std::size_t find_key(const std::string& s, const std::string& key,
                     std::size_t from, std::size_t to) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = s.find(needle, from);
  if (at == std::string::npos || at >= to) return std::string::npos;
  const std::size_t colon = s.find(':', at + needle.size());
  if (colon == std::string::npos || colon >= to) return std::string::npos;
  return s.find_first_not_of(" \t\r\n", colon + 1);
}

bool parse_run(const std::string& text, BenchRun* run, std::string* err) {
  std::size_t at = find_key(text, "schema", 0, text.size());
  if (at == std::string::npos) {
    *err = "missing \"schema\"";
    return false;
  }
  run->schema = std::atoi(text.c_str() + at);
  if (run->schema != 1) {
    *err = "unsupported schema " + std::to_string(run->schema);
    return false;
  }
  at = find_key(text, "smoke", 0, text.size());
  if (at == std::string::npos) {
    *err = "missing \"smoke\"";
    return false;
  }
  run->smoke = text.compare(at, 4, "true") == 0;

  const std::size_t sizes_at = find_key(text, "sizes", 0, text.size());
  if (sizes_at == std::string::npos || text[sizes_at] != '[') {
    *err = "missing \"sizes\" array";
    return false;
  }
  std::size_t cursor = sizes_at + 1;
  while (true) {
    const std::size_t open = text.find('{', cursor);
    const std::size_t close_arr = text.find(']', cursor);
    if (open == std::string::npos || (close_arr != std::string::npos && close_arr < open)) {
      break;  // end of array
    }
    const std::size_t close = text.find('}', open);
    if (close == std::string::npos) {
      *err = "unterminated size object";
      return false;
    }
    SizeResult r;
    std::size_t f = find_key(text, "name", open, close);
    if (f == std::string::npos || text[f] != '"') {
      *err = "size object without \"name\"";
      return false;
    }
    const std::size_t name_end = text.find('"', f + 1);
    r.name = text.substr(f + 1, name_end - f - 1);
    f = find_key(text, "events", open, close);
    if (f == std::string::npos) {
      *err = "size '" + r.name + "' without \"events\"";
      return false;
    }
    r.events = std::strtoull(text.c_str() + f, nullptr, 10);
    f = find_key(text, "events_per_sec", open, close);
    if (f == std::string::npos) {
      *err = "size '" + r.name + "' without \"events_per_sec\"";
      return false;
    }
    r.events_per_sec = std::strtod(text.c_str() + f, nullptr);
    f = find_key(text, "sim_per_wall", open, close);
    if (f != std::string::npos) r.sim_per_wall = std::strtod(text.c_str() + f, nullptr);
    run->sizes.push_back(r);
    cursor = close + 1;
  }
  if (run->sizes.empty()) {
    *err = "no sizes in run";
    return false;
  }
  return true;
}

const SizeResult* find_size(const BenchRun& run, const std::string& name) {
  for (const auto& s : run.sizes) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: bench_compare --baseline FILE (--current FILE | --bench EXE [--smoke])\n"
      "                     [--tolerance PCT] [--out FILE]\n"
      "\n"
      "  --baseline FILE   committed reference run (BENCH_core_throughput.json)\n"
      "  --current FILE    fresh run to compare (from bench_core_throughput --json)\n"
      "  --bench EXE       produce the current run by executing EXE --json now\n"
      "  --smoke           pass --smoke to EXE (only with --bench)\n"
      "  --tolerance PCT   max allowed events/sec regression, percent (default 40)\n"
      "  --out FILE        where --bench writes the fresh run (default: temp file)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  std::string bench_exe;
  std::string out_path;
  bool smoke = false;
  double tolerance = 40.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_compare: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--baseline") {
      baseline_path = next();
    } else if (arg == "--current") {
      current_path = next();
    } else if (arg == "--bench") {
      bench_exe = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--tolerance") {
      tolerance = std::atof(next());
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "bench_compare: unknown argument '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }
  if (baseline_path.empty() || (current_path.empty() == bench_exe.empty())) {
    usage(stderr);
    return 2;
  }

  if (!bench_exe.empty()) {
    if (out_path.empty()) out_path = "bench_compare_current.json";
    std::string cmd = "\"" + bench_exe + "\" --json --out \"" + out_path + "\"";
    if (smoke) cmd += " --smoke";
    std::fprintf(stderr, "bench_compare: running %s\n", cmd.c_str());
    const int rc = std::system(cmd.c_str());
    if (rc != 0) {
      std::fprintf(stderr, "bench_compare: bench run failed (rc=%d)\n", rc);
      return 2;
    }
    current_path = out_path;
  }

  std::string baseline_text, current_text, err;
  if (!read_file(baseline_path, &baseline_text)) {
    std::fprintf(stderr, "bench_compare: cannot read '%s'\n", baseline_path.c_str());
    return 2;
  }
  if (!read_file(current_path, &current_text)) {
    std::fprintf(stderr, "bench_compare: cannot read '%s'\n", current_path.c_str());
    return 2;
  }
  BenchRun baseline, current;
  if (!parse_run(baseline_text, &baseline, &err)) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", baseline_path.c_str(), err.c_str());
    return 2;
  }
  if (!parse_run(current_text, &current, &err)) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", current_path.c_str(), err.c_str());
    return 2;
  }
  if (baseline.smoke != current.smoke) {
    std::fprintf(stderr,
                 "bench_compare: smoke flags differ (baseline=%s, current=%s); "
                 "the runs are different workloads and cannot be compared\n",
                 baseline.smoke ? "true" : "false", current.smoke ? "true" : "false");
    return 2;
  }

  const double floor_ratio = 1.0 - tolerance / 100.0;
  int failures = 0;
  std::printf("%-8s %12s %12s %14s %14s %8s\n", "size", "base ev", "cur ev",
              "base ev/s", "cur ev/s", "ratio");
  for (const auto& base : baseline.sizes) {
    const SizeResult* cur = find_size(current, base.name);
    if (cur == nullptr) {
      std::printf("%-8s missing from current run: FAIL\n", base.name.c_str());
      ++failures;
      continue;
    }
    const double ratio =
        base.events_per_sec > 0.0 ? cur->events_per_sec / base.events_per_sec : 0.0;
    const bool events_ok = cur->events == base.events;
    const bool speed_ok = ratio >= floor_ratio;
    std::printf("%-8s %12llu %12llu %14.1f %14.1f %7.2fx %s\n", base.name.c_str(),
                static_cast<unsigned long long>(base.events),
                static_cast<unsigned long long>(cur->events), base.events_per_sec,
                cur->events_per_sec, ratio,
                events_ok && speed_ok ? "ok" : "FAIL");
    if (!events_ok) {
      std::printf("  event count drifted from the committed baseline: the seeded "
                  "workload changed behavior, not just speed\n");
      ++failures;
    } else if (!speed_ok) {
      std::printf("  events/sec regressed below %.0f%% of baseline\n", floor_ratio * 100.0);
      ++failures;
    }
  }
  if (failures > 0) {
    std::printf("bench_compare: %d size(s) FAILED (tolerance %.0f%%)\n", failures,
                tolerance);
    return 1;
  }
  std::printf("bench_compare: all %zu size(s) within tolerance (%.0f%%)\n",
              baseline.sizes.size(), tolerance);
  return 0;
}
