#pragma once
/// \file lint.hpp
/// chase_lint: a project-specific coroutine-lifetime static analyzer.
///
/// PR 2's worst bugs were one family: coroutine frames and the references
/// they hold outliving (or failing to outlive) a suspension point —
/// `blpop_impl` keeping a dangling `const std::string&` parameter across
/// `co_await`, and parked BLPOP waiters writing through pointers into
/// destroyed frames. clang-tidy 17+ has two checks in this space, but the
/// tidy gate needs clang installed and only covers src/; this analyzer is
/// dependency-free (own lexer, no LLVM) so it runs in every CI job and on
/// any dev box, and it knows this codebase's `sim::Task` idiom well enough
/// to also catch the two heuristic classes tidy has no check for.
///
/// Checks (see analyze.cpp for the exact heuristics):
///   coro-ref-param     coroutine (function or lambda) parameter passed by
///                      reference, std::string_view, or std::span
///   coro-lambda-capture  coroutine lambda capturing by reference or `this`
///   coro-stale-ref     reference/pointer/iterator into a container bound
///                      before a co_await and used after resumption
///   coro-frame-escape  address of a frame local handed to a queue/callback
///                      sink with no liveness guard in scope
///   lint-suppression   malformed or unused inline suppression
///
/// Perf family (PR 6) — fires only inside *hot* functions, i.e. functions
/// in a `hot-path` directory or named by a `hot-function` policy entry
/// (qualified `Class::name` or bare), plus every lambda nested in one:
///   hot-alloc          heap allocation on the hot path: `new`,
///                      make_shared/make_unique, std::function construction,
///                      string concatenation, push_back with no visible
///                      reserve() on the same receiver anywhere in the file
///   hot-arg-copy       by-value std::string/std::vector/expensive-type
///                      parameter of a hot non-coroutine function, or an
///                      expensive-type local copy-initialised from an lvalue
///                      (no move, no call). Coroutine parameters are exempt:
///                      the coro-* family *requires* owning by-value params,
///                      and lifetime beats a copy (see DESIGN.md)
///   hot-relookup       the same container indexed/found twice with the same
///                      single-token key in one scope with no rebind between
///
/// Determinism family (PR 8) — bit-identical seeded replay is this repo's
/// regression oracle (tools/determinism_check); these checks statically ban
/// the constructs that break it. They run everywhere, not just in hot or
/// coroutine code:
///   det-unordered-iter  range-for / .begin() iteration over an
///                       std::unordered_map/unordered_set whose loop body has
///                       observable effects (mutation of outer state, calls
///                       to effectful members, accumulation, output,
///                       co_await); bucket order is implementation-defined.
///                       Membership-only scans are silent; a container the
///                       policy names with `allow-unordered` is exempt
///   det-pointer-order   ordered containers keyed by raw pointers
///                       (map<T*,...>, set<T*>), std::less<T*>, comparator
///                       lambdas returning `a < b` on pointer parameters,
///                       and comparator-less sorts of vector<T*>: address
///                       order varies under ASLR and allocation history
///   det-float-tiebreak  sort/heap comparators whose single sort key is
///                       floating-point with no integral/id tiebreak — equal
///                       keys leave the final order input/implementation
///                       dependent (the bug class PRs 5/7 fixed by hand with
///                       (cap,fid) / (level,link id) total orders). Fields
///                       whose float-ness lives in another header are named
///                       with `float-key` in the policy file
///   det-entropy         std::random_device, rand()/srand(), time(nullptr),
///                       std::chrono {system,steady,high_resolution}_clock:
///                       wall-clock and hardware entropy outside util::Rng
///                       and the sim clock makes replay unreproducible
///
/// Inline suppression (same line as the finding, or the line above):
///   // chase-lint: allow(check-name) <written justification, required>
/// File-level exemption (in .chase-lint, for whole cold directories):
///   allow-file <glob> (check-name) <written justification, required>

#include <cstdint>
#include <string>
#include <vector>

namespace chase::lint {

// --- lexer -------------------------------------------------------------------

enum class TokKind : std::uint8_t { Ident, Number, Str, Chr, Punct };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

struct Comment {
  int line;
  std::string text;  // without the // or /* */ markers, trimmed
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenize one translation unit. Comments and preprocessor directives are
/// stripped from the token stream; comments are kept (with line numbers)
/// for suppression parsing.
LexResult lex(std::string_view source);

// --- configuration -----------------------------------------------------------

/// One `allow-file <glob> (check) why` policy entry: every finding of
/// `check` in a file whose path matches `glob` is suppressed. Unused
/// entries are reported like unused inline suppressions (see
/// `allow_file_used` below).
struct AllowFile {
  std::string glob;   // '*' matches any run of characters, '?' any one
  std::string check;  // a single check name
  std::string why;    // written justification, required
  int line = 0;       // line in the config file, for unused reporting
};

/// One `allow-unordered <name> <why>` policy entry: iterating a container
/// with this (unqualified) variable name is exempt from det-unordered-iter.
/// Reserved for containers whose iteration-order effects are provably
/// unobservable (e.g. Simulation::detached_, destroyed wholesale in the
/// destructor after the last trace hook has fired). Unused entries are
/// reported like unused allow-file policy.
struct AllowUnordered {
  std::string name;  // container variable name, e.g. detached_
  std::string why;   // written justification, required
  int line = 0;      // line in the config file, for unused reporting
};

struct Config {
  /// Lvalue-reference coroutine parameters of these (unqualified) types are
  /// accepted: the type must, by construction, outlive every coroutine
  /// frame (e.g. the Simulation that owns the frames). Keep this list short
  /// and justified in .chase-lint.
  std::vector<std::string> allow_ref_types;
  /// RAII types whose presence in a coroutine body marks frame-pointer
  /// escapes as guarded (the shared liveness-flag idiom from blpop_impl).
  std::vector<std::string> guard_types;
  /// Member/function names treated as escape sinks for coro-frame-escape.
  std::vector<std::string> sink_names;
  /// Path substrings excluded from tree walks (e.g. lint fixture corpora).
  std::vector<std::string> exclude_paths;

  // --- perf family -----------------------------------------------------------
  /// Path substrings: every function in a matching file is hot.
  std::vector<std::string> hot_paths;
  /// Function names, qualified (`Network::transfer`) or bare (`transfer`).
  /// Qualified entries only match definitions spelled `Class::name`; bare
  /// entries match any definition with that name.
  std::vector<std::string> hot_functions;
  /// Extra by-value-expensive types for hot-arg-copy, beyond the built-in
  /// std:: containers (e.g. a big POD config struct).
  std::vector<std::string> expensive_types;
  /// Types exempted from hot-arg-copy (cheap to copy despite the name, or
  /// copied deliberately as policy).
  std::vector<std::string> allow_copy_types;
  /// File-level check exemptions (`allow-file` entries).
  std::vector<AllowFile> allow_files;

  // --- determinism family -----------------------------------------------------
  /// Containers exempt from det-unordered-iter (`allow-unordered` entries).
  std::vector<AllowUnordered> allow_unordered;
  /// Field/function names known to be floating-point across translation
  /// units (the declaring header is a different file than the comparator),
  /// so det-float-tiebreak can classify `a.iou < b.iou` without a compiler.
  std::vector<std::string> float_keys;
};

/// Match `glob` ('*' = any run, '?' = any one char) against a path. A glob
/// with no '/' is also tried against the basename, so `*_test.cpp` works.
bool glob_match(std::string_view glob, std::string_view path);

/// Built-in defaults: no allowed ref types, LiveGuard as guard, the usual
/// container/callback sinks, no excludes.
Config default_config();

/// Parse a `.chase-lint` config file into/over `cfg`. Lines:
///   allow-ref-type <Type>   guard-type <Type>   sink <name>   exclude <path>
///   hot-path <path-substr>  hot-function <name> expensive-type <Type>
///   allow-copy-type <Type>  allow-file <glob> (<check>) <why...>
///   allow-unordered <name> <why...>             float-key <name>
/// '#' starts a comment. Returns false and sets *error on malformed input.
bool load_config(const std::string& path, Config* cfg, std::string* error);

// --- analysis ----------------------------------------------------------------

struct Finding {
  std::string check;
  std::string file;
  int line = 0;
  std::string function;  // enclosing function name, or "<lambda>"
  std::string message;
};

/// Analyze one file's source text. Returned findings already have inline
/// suppressions applied; malformed or unused suppressions surface as
/// `lint-suppression` findings so every allow() stays justified and live.
/// If `allow_file_used` is non-null it must have cfg.allow_files.size()
/// entries; each entry that suppressed at least one finding is set to 1 so
/// the caller can report dead allow-file policy across the whole walk.
/// `allow_unordered_used` works the same way for cfg.allow_unordered.
std::vector<Finding> analyze_source(const std::string& path, std::string_view source,
                                    const Config& cfg,
                                    std::vector<char>* allow_file_used = nullptr,
                                    std::vector<char>* allow_unordered_used = nullptr);

/// All check names, for --list-checks and suppression validation.
const std::vector<std::string>& check_names();

/// One-line description of a check, for --list-checks and SARIF rule
/// metadata. Returns a generic string for unknown names.
const char* check_description(const std::string& check);

/// Stable fingerprint of a finding for the baseline file: FNV-1a over
/// check, file, function and message shape (line numbers excluded so the
/// baseline survives unrelated edits above the finding).
std::uint64_t fingerprint(const Finding& f);

}  // namespace chase::lint
