#pragma once
/// \file lint.hpp
/// chase_lint: a project-specific coroutine-lifetime static analyzer.
///
/// PR 2's worst bugs were one family: coroutine frames and the references
/// they hold outliving (or failing to outlive) a suspension point —
/// `blpop_impl` keeping a dangling `const std::string&` parameter across
/// `co_await`, and parked BLPOP waiters writing through pointers into
/// destroyed frames. clang-tidy 17+ has two checks in this space, but the
/// tidy gate needs clang installed and only covers src/; this analyzer is
/// dependency-free (own lexer, no LLVM) so it runs in every CI job and on
/// any dev box, and it knows this codebase's `sim::Task` idiom well enough
/// to also catch the two heuristic classes tidy has no check for.
///
/// Checks (see analyze.cpp for the exact heuristics):
///   coro-ref-param     coroutine (function or lambda) parameter passed by
///                      reference, std::string_view, or std::span
///   coro-lambda-capture  coroutine lambda capturing by reference or `this`
///   coro-stale-ref     reference/pointer/iterator into a container bound
///                      before a co_await and used after resumption
///   coro-frame-escape  address of a frame local handed to a queue/callback
///                      sink with no liveness guard in scope
///   lint-suppression   malformed or unused inline suppression
///
/// Inline suppression (same line as the finding, or the line above):
///   // chase-lint: allow(check-name) <written justification, required>

#include <cstdint>
#include <string>
#include <vector>

namespace chase::lint {

// --- lexer -------------------------------------------------------------------

enum class TokKind : std::uint8_t { Ident, Number, Str, Chr, Punct };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

struct Comment {
  int line;
  std::string text;  // without the // or /* */ markers, trimmed
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenize one translation unit. Comments and preprocessor directives are
/// stripped from the token stream; comments are kept (with line numbers)
/// for suppression parsing.
LexResult lex(std::string_view source);

// --- configuration -----------------------------------------------------------

struct Config {
  /// Lvalue-reference coroutine parameters of these (unqualified) types are
  /// accepted: the type must, by construction, outlive every coroutine
  /// frame (e.g. the Simulation that owns the frames). Keep this list short
  /// and justified in .chase-lint.
  std::vector<std::string> allow_ref_types;
  /// RAII types whose presence in a coroutine body marks frame-pointer
  /// escapes as guarded (the shared liveness-flag idiom from blpop_impl).
  std::vector<std::string> guard_types;
  /// Member/function names treated as escape sinks for coro-frame-escape.
  std::vector<std::string> sink_names;
  /// Path substrings excluded from tree walks (e.g. lint fixture corpora).
  std::vector<std::string> exclude_paths;
};

/// Built-in defaults: no allowed ref types, LiveGuard as guard, the usual
/// container/callback sinks, no excludes.
Config default_config();

/// Parse a `.chase-lint` config file into/over `cfg`. Lines:
///   allow-ref-type <Type>   guard-type <Type>   sink <name>   exclude <path>
/// '#' starts a comment. Returns false and sets *error on malformed input.
bool load_config(const std::string& path, Config* cfg, std::string* error);

// --- analysis ----------------------------------------------------------------

struct Finding {
  std::string check;
  std::string file;
  int line = 0;
  std::string function;  // enclosing function name, or "<lambda>"
  std::string message;
};

/// Analyze one file's source text. Returned findings already have inline
/// suppressions applied; malformed or unused suppressions surface as
/// `lint-suppression` findings so every allow() stays justified and live.
std::vector<Finding> analyze_source(const std::string& path, std::string_view source,
                                    const Config& cfg);

/// All check names, for --list-checks and suppression validation.
const std::vector<std::string>& check_names();

/// Stable fingerprint of a finding for the baseline file: FNV-1a over
/// check, file, function and message shape (line numbers excluded so the
/// baseline survives unrelated edits above the finding).
std::uint64_t fingerprint(const Finding& f);

}  // namespace chase::lint
