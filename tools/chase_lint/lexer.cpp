/// \file lexer.cpp
/// Minimal C++ tokenizer for chase_lint. It only needs to be faithful about
/// the things the checks look at: identifiers, punctuation, suspension
/// keywords, comments (for suppressions), and it must never be confused by
/// string/char literals, raw strings, or preprocessor lines.

#include <cctype>

#include "lint.hpp"

namespace chase::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

/// Multi-char punctuators we must keep whole so the checks can tell `&`
/// from `&&` and `->` from `-`. Longest match first.
const char* kPuncts[] = {"<<=", ">>=", "...", "->*", "::",  "->", "<<", ">>",
                         "<=",  ">=",  "==",  "!=",  "&&",  "||", "+=", "-=",
                         "*=",  "/=",  "%=",  "&=",  "|=",  "^=", "++", "--"};

}  // namespace

LexResult lex(std::string_view src) {
  LexResult out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto push = [&](TokKind kind, std::string text) {
    out.tokens.push_back(Token{kind, std::move(text), line});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Preprocessor directive: swallow the (possibly continued) line.
    if (c == '#') {
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t start = i + 2;
      while (i < n && src[i] != '\n') ++i;
      out.comments.push_back(Comment{line, trim(src.substr(start, i - start))});
      continue;
    }
    // Block comment (attributed to its first line).
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int first_line = line;
      std::size_t start = i + 2;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      std::size_t end = (i + 1 < n) ? i : n;
      out.comments.push_back(
          Comment{first_line, trim(src.substr(start, end - start))});
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    // Raw string literal: [prefix]R"delim( ... )delim". `at` sits on the
    // opening '"'; returns the index just past the closing quote, counting
    // the newlines the literal spans.
    auto lex_raw_string = [&](std::size_t at) {
      std::size_t d = at + 1;
      while (d < n && src[d] != '(') ++d;
      std::string delim;
      delim.reserve(d - at + 1);
      delim += ')';
      delim.append(src.substr(at + 1, d - (at + 1)));
      delim += '"';
      std::size_t close = src.find(delim, d);
      if (close == std::string_view::npos) close = n;
      for (std::size_t k = at; k < close && k < n; ++k) {
        if (src[k] == '\n') ++line;
      }
      push(TokKind::Str, "R\"...\"");
      return (close == n) ? n : close + delim.size();
    };
    // A user-defined-literal suffix glued to a string/char literal ("10s"sv,
    // 'c'_tag) belongs to the literal; consuming it here keeps it from
    // surfacing as a stray identifier token.
    auto skip_udl_suffix = [&](std::size_t at) {
      while (at < n && ident_char(src[at])) ++at;
      return at;
    };
    // String / char literal (with escapes). Encoding prefixes (u8, L, ...)
    // lex as part of a preceding identifier, which is fine for us — except
    // raw strings, where the "(...)" body must not be scanned for quotes;
    // the identifier branch below routes u8R"(...)" etc. here too.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;  // unterminated; keep line count sane
        ++j;
      }
      push(quote == '"' ? TokKind::Str : TokKind::Chr, std::string(1, quote));
      i = (j < n) ? skip_udl_suffix(j + 1) : n;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      const std::string_view text = src.substr(i, j - i);
      // Raw-string encoding prefixes, exact match only (`fooR"x"` is the
      // identifier fooR followed by an ordinary string, per max munch).
      if (j < n && src[j] == '"' &&
          (text == "R" || text == "LR" || text == "uR" || text == "UR" ||
           text == "u8R")) {
        i = skip_udl_suffix(lex_raw_string(j));
        continue;
      }
      push(TokKind::Ident, std::string(text));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i;
      while (j < n && (ident_char(src[j]) || src[j] == '.' ||
                       // Digit separator: 1'000'000 is one number, not a
                       // number followed by a character literal.
                       (src[j] == '\'' && j + 1 < n && ident_char(src[j + 1])) ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P')))) {
        ++j;
      }
      push(TokKind::Number, std::string(src.substr(i, j - i)));
      i = j;
      continue;
    }
    // Punctuation, longest match first.
    bool matched = false;
    for (const char* p : kPuncts) {
      const std::size_t len = std::char_traits<char>::length(p);
      if (src.compare(i, len, p) == 0) {
        push(TokKind::Punct, p);
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      push(TokKind::Punct, std::string(1, c));
      ++i;
    }
  }
  return out;
}

}  // namespace chase::lint
