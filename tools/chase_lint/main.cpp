/// \file main.cpp
/// chase_lint CLI: walk the tree, run the checks, apply the baseline, and
/// report in human or JSON form.
///
///   $ chase_lint src tools bench tests examples
///   $ chase_lint --format=json --baseline tools/chase_lint_baseline.txt src
///   $ chase_lint --update-baseline src            # absorb current findings
///
/// Exit codes: 0 clean, 1 unsuppressed findings, 2 usage or I/O error.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using chase::lint::Config;
using chase::lint::Finding;

namespace {

bool has_source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh";
}

bool is_excluded(const std::string& path, const Config& cfg) {
  for (const std::string& ex : cfg.exclude_paths) {
    if (path.find(ex) != std::string::npos) return true;
  }
  // Never descend into build trees or VCS metadata.
  return path.find("/build") != std::string::npos ||
         path.find("/.git") != std::string::npos ||
         path.find("/_build") != std::string::npos;
}

std::vector<std::string> collect_files(const std::vector<std::string>& roots,
                                       const Config& cfg) {
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        const std::string path = it->path().generic_string();
        if (it->is_directory() && is_excluded(path + "/", cfg)) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && has_source_extension(it->path()) &&
            !is_excluded(path, cfg)) {
          files.push_back(path);
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      std::fprintf(stderr, "chase_lint: no such file or directory: %s\n",
                   root.c_str());
      std::exit(2);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c == '\r') {
      out += "\\r";
    } else {
      out += c;
    }
  }
  return out;
}

/// Minimal SARIF 2.1.0 document, enough for GitHub code scanning: one run,
/// one rule per check (with its one-line description), one result per
/// finding, and the baseline fingerprint as a partial fingerprint so code
/// scanning can track findings across commits.
void print_sarif(const std::vector<Finding>& findings) {
  std::printf(
      "{\n"
      "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
      "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"chase_lint\",\n"
      "          \"informationUri\": \"https://example.invalid/chase_lint\",\n"
      "          \"rules\": [\n");
  const auto& names = chase::lint::check_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::printf(
        "            {\"id\": \"%s\", \"shortDescription\": {\"text\": "
        "\"%s\"}}%s\n",
        names[i].c_str(), json_escape(chase::lint::check_description(names[i])).c_str(),
        i + 1 < names.size() ? "," : "");
  }
  std::printf(
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n");
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    char fp[32];
    std::snprintf(fp, sizeof fp, "%016llx",
                  static_cast<unsigned long long>(chase::lint::fingerprint(f)));
    std::printf(
        "        {\n"
        "          \"ruleId\": \"%s\",\n"
        "          \"level\": \"error\",\n"
        "          \"message\": {\"text\": \"%s\"},\n"
        "          \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
        "{\"uri\": \"%s\"}, \"region\": {\"startLine\": %d}}}],\n"
        "          \"partialFingerprints\": {\"chaseLintFingerprint/v1\": "
        "\"%s\"}\n"
        "        }%s\n",
        f.check.c_str(), json_escape(f.message).c_str(),
        json_escape(f.file).c_str(), f.line > 0 ? f.line : 1, fp,
        i + 1 < findings.size() ? "," : "");
  }
  std::printf(
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "human";
  std::string baseline_path;
  std::string config_path;
  std::vector<std::string> check_globs;  // --checks: report only matching checks
  bool update_baseline = false;
  std::vector<std::string> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      const std::size_t len = std::strlen(flag);
      if (arg.size() > len && arg[len] == '=') return arg.substr(len + 1);
      if (i + 1 >= argc) {
        std::fprintf(stderr, "chase_lint: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg.rfind("--format", 0) == 0) {
      format = value("--format");
    } else if (arg.rfind("--baseline", 0) == 0 && arg.rfind("--baseline-", 0) != 0) {
      baseline_path = value("--baseline");
    } else if (arg.rfind("--config", 0) == 0) {
      config_path = value("--config");
    } else if (arg.rfind("--checks", 0) == 0) {
      std::stringstream ss(value("--checks"));
      std::string one;
      while (std::getline(ss, one, ',')) {
        if (!one.empty()) check_globs.push_back(one);
      }
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--list-checks") {
      for (const std::string& name : chase::lint::check_names()) {
        std::printf("%-20s %s\n", name.c_str(),
                    chase::lint::check_description(name));
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: chase_lint [--format=human|json|sarif] [--config FILE]\n"
          "                  [--baseline FILE] [--update-baseline]\n"
          "                  [--checks GLOB[,GLOB...]] [--list-checks] <paths...>\n"
          "Static analysis for the sim::Task idiom: coroutine lifetime,\n"
          "hot-path allocation, and determinism (det-*) check families.\n"
          "--checks filters which findings are *reported* (e.g. 'det-*');\n"
          "analysis always runs every check so suppression bookkeeping stays\n"
          "consistent.\n"
          "Suppress inline with: // chase-lint: allow(<check>) <why it is safe>\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "chase_lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (format != "human" && format != "json" && format != "sarif") {
    std::fprintf(stderr,
                 "chase_lint: --format must be 'human', 'json' or 'sarif'\n");
    return 2;
  }
  if (roots.empty()) {
    std::fprintf(stderr, "chase_lint: no paths given (try --help)\n");
    return 2;
  }

  Config cfg = chase::lint::default_config();
  if (config_path.empty() && fs::exists(".chase-lint")) config_path = ".chase-lint";
  if (!config_path.empty()) {
    std::string error;
    if (!chase::lint::load_config(config_path, &cfg, &error)) {
      std::fprintf(stderr, "chase_lint: %s\n", error.c_str());
      return 2;
    }
  }

  // Baseline: multiset of finding fingerprints to tolerate (one each).
  std::map<std::uint64_t, int> baseline;
  if (!baseline_path.empty() && !update_baseline) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "chase_lint: cannot open baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::stringstream ss(line);
      std::uint64_t fp = 0;
      if (ss >> std::hex >> fp) baseline[fp] += 1;
    }
  }

  const std::vector<std::string> files = collect_files(roots, cfg);
  std::vector<Finding> findings;
  std::vector<char> allow_file_used(cfg.allow_files.size(), 0);
  std::vector<char> allow_unordered_used(cfg.allow_unordered.size(), 0);
  int baselined = 0;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "chase_lint: cannot read %s\n", file.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string source = buf.str();
    for (Finding& f : chase::lint::analyze_source(file, source, cfg,
                                                  &allow_file_used,
                                                  &allow_unordered_used)) {
      const auto fp = chase::lint::fingerprint(f);
      auto it = baseline.find(fp);
      if (it != baseline.end() && it->second > 0) {
        it->second -= 1;
        ++baselined;
        continue;
      }
      findings.push_back(std::move(f));
    }
  }

  // Dead allow-file policy is a finding, same as an unused inline allow():
  // an entry that suppresses nothing can only mask future regressions.
  for (std::size_t i = 0; i < cfg.allow_files.size(); ++i) {
    if (allow_file_used[i] != 0) continue;
    const chase::lint::AllowFile& af = cfg.allow_files[i];
    findings.push_back(Finding{
        "lint-suppression", config_path, af.line, "",
        "allow-file entry '" + af.glob + " (" + af.check +
            ")' suppressed nothing in this walk; delete it so dead policy "
            "cannot mask future regressions"});
  }
  for (std::size_t i = 0; i < cfg.allow_unordered.size(); ++i) {
    if (allow_unordered_used[i] != 0) continue;
    const chase::lint::AllowUnordered& au = cfg.allow_unordered[i];
    findings.push_back(Finding{
        "lint-suppression", config_path, au.line, "",
        "allow-unordered entry '" + au.name +
            "' exempted no loop in this walk; delete it so dead policy "
            "cannot mask future regressions"});
  }

  // --checks filters what is *reported* (and therefore the exit code);
  // analysis always runs everything so allow()/allow-file bookkeeping stays
  // consistent across invocations with different filters.
  if (!check_globs.empty()) {
    findings.erase(std::remove_if(findings.begin(), findings.end(),
                                  [&](const Finding& f) {
                                    for (const std::string& g : check_globs) {
                                      if (chase::lint::glob_match(g, f.check))
                                        return false;
                                    }
                                    return true;
                                  }),
                   findings.end());
  }

  if (update_baseline) {
    if (baseline_path.empty()) {
      std::fprintf(stderr, "chase_lint: --update-baseline needs --baseline FILE\n");
      return 2;
    }
    std::ofstream out(baseline_path);
    out << "# chase_lint baseline: one fingerprint per tolerated finding.\n"
           "# Regenerate with: chase_lint --baseline "
        << baseline_path
        << " --update-baseline <paths>\n"
           "# Prefer fixing or inline-suppressing (with a justification) over\n"
           "# baselining; this file exists to land the linter on a tree with\n"
           "# pre-existing findings, then shrink to empty.\n";
    for (const Finding& f : findings) {
      char buf2[32];
      std::snprintf(buf2, sizeof buf2, "%016llx",
                    static_cast<unsigned long long>(chase::lint::fingerprint(f)));
      out << buf2 << "  # " << f.check << " " << f.file << ":" << f.line << "\n";
    }
    std::printf("chase_lint: wrote %zu fingerprint(s) to %s\n", findings.size(),
                baseline_path.c_str());
    return 0;
  }

  for (const auto& [fp, remaining] : baseline) {
    if (remaining > 0) {
      std::fprintf(stderr,
                   "chase_lint: note: %d stale baseline entr%s (%016llx...) -- "
                   "regenerate with --update-baseline\n",
                   remaining, remaining == 1 ? "y" : "ies",
                   static_cast<unsigned long long>(fp));
      break;
    }
  }

  if (format == "sarif") {
    print_sarif(findings);
    return findings.empty() ? 0 : 1;
  }
  if (format == "json") {
    std::printf("{\n  \"files_scanned\": %zu,\n  \"baselined\": %d,\n"
                "  \"findings\": [\n",
                files.size(), baselined);
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      std::printf("    {\"check\": \"%s\", \"file\": \"%s\", \"line\": %d, "
                  "\"function\": \"%s\", \"message\": \"%s\"}%s\n",
                  f.check.c_str(), json_escape(f.file).c_str(), f.line,
                  json_escape(f.function).c_str(), json_escape(f.message).c_str(),
                  i + 1 < findings.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  } else {
    for (const Finding& f : findings) {
      std::printf("%s:%d: [%s]%s%s\n    %s\n", f.file.c_str(), f.line,
                  f.check.c_str(), f.function.empty() ? "" : " in ",
                  f.function.c_str(), f.message.c_str());
    }
    std::printf("chase_lint: %zu file(s), %zu finding(s)%s\n", files.size(),
                findings.size(),
                baselined > 0
                    ? (" (" + std::to_string(baselined) + " baselined)").c_str()
                    : "");
  }
  return findings.empty() ? 0 : 1;
}
