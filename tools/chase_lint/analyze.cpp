/// \file analyze.cpp
/// chase_lint's function extractor and the check families: coroutine
/// lifetime, hot-path perf, and determinism.
///
/// This is a *shape* analyzer, not a compiler: it finds function and lambda
/// bodies by bracket matching over the token stream, decides coroutine-ness
/// by the presence of co_await/co_return/co_yield in a body (excluding
/// nested lambdas/local functions), and applies narrow syntactic patterns
/// tuned to this codebase's sim::Task idiom. Heuristic checks (stale-ref,
/// frame-escape) deliberately trade recall for a near-zero false-positive
/// rate: every pattern here is one that has already produced a real bug in
/// this repo or is one mutation away from it.
///
/// The determinism family (det-*) scans the whole token stream rather than
/// per-function: pointer-keyed member containers and entropy sources live at
/// class/namespace scope. Type information is approximated per file (a name
/// is "float" if the file declares it with float/double, or the policy
/// classifies it with `float-key`); that is enough because the conventions
/// being enforced — ordered containers, (key,id) total orders, util::Rng as
/// the only entropy source — are local idioms, not whole-program properties.

#include <algorithm>
#include <array>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_set>

#include "lint.hpp"

namespace chase::lint {

namespace {

// Keywords that can directly precede a '(' without introducing a function
// definition (control flow, operators, specifiers).
const std::unordered_set<std::string> kNonFunctionNames = {
    "if",      "for",       "while",    "switch",        "catch",   "return",
    "co_return", "co_await", "co_yield", "sizeof",       "alignof", "alignas",
    "decltype", "noexcept",  "new",      "delete",        "throw",   "case",
    "else",    "do",        "operator", "static_assert", "requires", "defined",
    "constexpr", "consteval", "assert"};

const std::unordered_set<std::string> kTypeishExcluded = {
    "const", "volatile", "struct", "class", "typename", "auto"};

const std::string kEmpty;

bool is_suspension(const Token& t) {
  return t.kind == TokKind::Ident &&
         (t.text == "co_await" || t.text == "co_yield");
}
bool is_coro_keyword(const Token& t) {
  return t.kind == TokKind::Ident &&
         (t.text == "co_await" || t.text == "co_yield" || t.text == "co_return");
}

struct Fn {
  std::string name;
  std::string qualified;  // "Class::name" when defined out-of-line, else ""
  bool is_lambda = false;
  int line = 0;
  std::size_t intro = 0;                         // first token (name or '[')
  std::size_t params_begin = 0, params_end = 0;  // inside the parens
  std::size_t caps_begin = 0, caps_end = 0;      // lambda capture list
  std::size_t body_begin = 0, body_end = 0;      // inside the braces
  int parent = -1;
  bool is_coroutine = false;
  bool is_hot = false;  // in a hot-path file / hot-function entry / nested in one
  std::vector<int> children;
};

struct Analyzer {
  const std::string& path;
  const Config& cfg;
  std::vector<Token> toks;
  std::vector<Comment> comments;
  std::vector<std::ptrdiff_t> match;  // matching (){}[] index, or -1
  std::vector<Fn> fns;
  std::vector<Finding> findings;
  std::unordered_set<std::string> reserved_names;  // receivers with X.reserve(
  std::vector<char>* allow_file_used = nullptr;    // parallel to cfg.allow_files
  std::vector<char>* allow_unordered_used = nullptr;  // parallel to cfg.allow_unordered

  explicit Analyzer(const std::string& p, const LexResult& lexed, const Config& c)
      : path(p), cfg(c), toks(lexed.tokens), comments(lexed.comments) {}

  const Token& tok(std::size_t i) const { return toks[i]; }
  bool is(std::size_t i, const char* s) const {
    return i < toks.size() && toks[i].text == s;
  }

  void emit(const char* check, int line, const Fn& fn, std::string message) {
    findings.push_back(Finding{check, path, line, fn.name, std::move(message)});
  }

  // --- bracket matching ------------------------------------------------------
  void build_match() {
    match.assign(toks.size(), -1);
    std::vector<std::size_t> parens;
    std::vector<std::size_t> braces;
    std::vector<std::size_t> squares;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const std::string& s = toks[i].text;
      if (toks[i].kind != TokKind::Punct) continue;
      if (s == "(") parens.push_back(i);
      if (s == "{") braces.push_back(i);
      if (s == "[") squares.push_back(i);
      auto close = [&](std::vector<std::size_t>& stack) {
        if (stack.empty()) return;
        match[stack.back()] = static_cast<std::ptrdiff_t>(i);
        match[i] = static_cast<std::ptrdiff_t>(stack.back());
        stack.pop_back();
      };
      if (s == ")") close(parens);
      if (s == "}") close(braces);
      if (s == "]") close(squares);
    }
  }

  /// Step over a balanced group if `i` sits on an opener; otherwise ++i.
  std::size_t skip_group(std::size_t i) const {
    if (i < toks.size() && match[i] > static_cast<std::ptrdiff_t>(i)) {
      return static_cast<std::size_t>(match[i]) + 1;
    }
    return i + 1;
  }

  // --- function / lambda extraction -----------------------------------------

  /// After a parameter list's ')': skip qualifiers (const, noexcept(...),
  /// ->Type, attributes, ctor init lists, requires clauses) and return the
  /// index of the body '{', or npos if this is not a definition.
  std::size_t find_body_brace(std::size_t k) const {
    static const std::unordered_set<std::string> kQualifiers = {
        "const", "noexcept", "override", "final", "mutable", "&", "&&",
        "constexpr", "try", "volatile"};
    while (k < toks.size()) {
      const std::string& s = toks[k].text;
      if (s == "{") return k;
      if (s == ";" || s == "=" || s == "," || s == ")") return std::string::npos;
      if (kQualifiers.count(s) != 0u) {
        ++k;
        if (k < toks.size() && toks[k].text == "(") k = skip_group(k);
        continue;
      }
      if (s == "[" && k + 1 < toks.size() && toks[k + 1].text == "[") {
        k = skip_group(k);  // [[attribute]]
        continue;
      }
      if (s == "->" || s == "requires") {
        // Trailing return type / requires clause: scan to the body brace.
        ++k;
        while (k < toks.size()) {
          const std::string& q = toks[k].text;
          if (q == "{" || q == ";" || q == "=") break;
          k = (q == "(" || q == "[") ? skip_group(k) : k + 1;
        }
        continue;
      }
      if (s == ":") {
        // Ctor init list: `name(...)` / `name{...}` items, then the body
        // brace (which follows ')', '}' or '...', never an identifier).
        ++k;
        while (k < toks.size()) {
          if (toks[k].text == "{" && k > 0 &&
              (toks[k - 1].text == ")" || toks[k - 1].text == "}" ||
               toks[k - 1].text == "...")) {
            return k;
          }
          if (toks[k].text == ";") return std::string::npos;
          k = (toks[k].text == "(" || toks[k].text == "{") ? skip_group(k) : k + 1;
        }
        return std::string::npos;
      }
      return std::string::npos;
    }
    return std::string::npos;
  }

  void find_named_functions() {
    for (std::size_t i = 1; i < toks.size(); ++i) {
      if (!is(i, "(")) continue;
      const Token& prev = toks[i - 1];
      if (prev.kind != TokKind::Ident) continue;
      if (kNonFunctionNames.count(prev.text) != 0u) continue;
      if (match[i] < 0) continue;
      const std::size_t close = static_cast<std::size_t>(match[i]);
      const std::size_t body = find_body_brace(close + 1);
      if (body == std::string::npos || match[body] < 0) continue;
      Fn fn;
      fn.name = prev.text;
      if (i >= 3 && toks[i - 2].text == "::" && toks[i - 3].kind == TokKind::Ident) {
        fn.qualified = toks[i - 3].text + "::" + prev.text;
      }
      fn.line = prev.line;
      fn.intro = i - 1;
      fn.params_begin = i + 1;
      fn.params_end = close;
      fn.body_begin = body + 1;
      fn.body_end = static_cast<std::size_t>(match[body]);
      fns.push_back(std::move(fn));
    }
  }

  void find_lambdas() {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!is(i, "[") || match[i] < 0) continue;
      if (i + 1 < toks.size() && toks[i + 1].text == "[") continue;  // attribute
      if (i > 0) {
        const Token& prev = toks[i - 1];
        // Subscript or array declarator, not a lambda introducer.
        if (prev.kind == TokKind::Ident && kNonFunctionNames.count(prev.text) == 0u)
          continue;
        if (prev.text == ")" || prev.text == "]") continue;
      }
      Fn fn;
      fn.name = "<lambda>";
      fn.is_lambda = true;
      fn.line = toks[i].line;
      fn.intro = i;
      fn.caps_begin = i + 1;
      fn.caps_end = static_cast<std::size_t>(match[i]);
      std::size_t j = fn.caps_end + 1;
      if (j < toks.size() && toks[j].text == "<") {  // []<typename T>(...)
        int depth = 1;
        ++j;
        while (j < toks.size() && depth > 0) {
          if (toks[j].text == "<") ++depth;
          if (toks[j].text == ">") --depth;
          j = (toks[j].text == "(") ? skip_group(j) : j + 1;
        }
      }
      if (j < toks.size() && toks[j].text == "(" && match[j] > 0) {
        fn.params_begin = j + 1;
        fn.params_end = static_cast<std::size_t>(match[j]);
        j = fn.params_end + 1;
      }
      const std::size_t body = find_body_brace(j);
      if (body == std::string::npos || match[body] < 0) continue;
      fn.body_begin = body + 1;
      fn.body_end = static_cast<std::size_t>(match[body]);
      fns.push_back(std::move(fn));
    }
  }

  void link_and_classify() {
    // Innermost enclosing body wins as parent.
    for (std::size_t a = 0; a < fns.size(); ++a) {
      std::size_t best_size = std::string::npos;
      for (std::size_t b = 0; b < fns.size(); ++b) {
        if (a == b) continue;
        if (fns[b].body_begin <= fns[a].intro && fns[a].body_end <= fns[b].body_end) {
          const std::size_t size = fns[b].body_end - fns[b].body_begin;
          if (size < best_size) {
            best_size = size;
            fns[a].parent = static_cast<int>(b);
          }
        }
      }
    }
    for (std::size_t a = 0; a < fns.size(); ++a) {
      if (fns[a].parent >= 0) fns[fns[a].parent].children.push_back(static_cast<int>(a));
    }
    for (Fn& fn : fns) {
      for_own_tokens(fn, [&](std::size_t i) {
        if (is_coro_keyword(toks[i])) fn.is_coroutine = true;
      });
    }

    // Hot classification: a hot-path file marks every function hot; a
    // hot-function entry marks definitions by qualified or bare name; and
    // hotness flows into nested lambdas / local functions (they run on the
    // same path).
    bool file_hot = false;
    for (const std::string& p : cfg.hot_paths) {
      if (path.find(p) != std::string::npos) {
        file_hot = true;
        break;
      }
    }
    for (Fn& fn : fns) {
      fn.is_hot = file_hot;
      for (const std::string& h : cfg.hot_functions) {
        if (h == fn.name || (!fn.qualified.empty() && h == fn.qualified)) {
          fn.is_hot = true;
          break;
        }
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (Fn& fn : fns) {
        if (!fn.is_hot && fn.parent >= 0 && fns[static_cast<std::size_t>(fn.parent)].is_hot) {
          fn.is_hot = true;
          changed = true;
        }
      }
    }
  }

  /// Visit the token indices of `fn`'s body that belong to `fn` itself,
  /// skipping every nested lambda / local function definition.
  template <typename Visit>
  void for_own_tokens(const Fn& fn, Visit&& visit) const {
    // Children sorted by position; ranges are disjoint.
    std::vector<std::pair<std::size_t, std::size_t>> skips;
    for (int c : fn.children) {
      skips.emplace_back(fns[c].intro, fns[c].body_end + 1);  // incl. '}'
    }
    std::sort(skips.begin(), skips.end());
    std::size_t s = 0;
    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      while (s < skips.size() && skips[s].second <= i) ++s;
      if (s < skips.size() && skips[s].first <= i && i < skips[s].second) {
        i = skips[s].second - 1;  // land on the last skipped token
        continue;
      }
      visit(i);
    }
  }

  // --- parameter splitting ---------------------------------------------------

  /// Split [begin, end) on top-level commas (angle depth tracked
  /// heuristically: '<' after an identifier or '>' opens a template list).
  std::vector<std::pair<std::size_t, std::size_t>> split_params(std::size_t begin,
                                                                std::size_t end) const {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    int depth = 0;
    int angle = 0;
    std::size_t start = begin;
    for (std::size_t i = begin; i < end; ++i) {
      const std::string& s = toks[i].text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      if (s == ")" || s == "]" || s == "}") --depth;
      if (s == "<" && i > begin &&
          (toks[i - 1].kind == TokKind::Ident || toks[i - 1].text == ">")) {
        ++angle;
      }
      if (s == ">" && angle > 0) --angle;
      if (s == ">>" && angle > 0) angle = std::max(0, angle - 2);
      if (s == "," && depth == 0 && angle == 0) {
        out.emplace_back(start, i);
        start = i + 1;
      }
    }
    if (start < end) out.emplace_back(start, end);
    return out;
  }

  bool is_allowed_ref_type(const std::string& type) const {
    return std::find(cfg.allow_ref_types.begin(), cfg.allow_ref_types.end(), type) !=
           cfg.allow_ref_types.end();
  }

  // --- check: coro-ref-param -------------------------------------------------

  void check_ref_params(const Fn& fn) {
    static const std::unordered_set<std::string> kViewTypes = {
        "string_view", "wstring_view", "u8string_view", "u16string_view",
        "u32string_view", "span"};
    for (auto [pb, pe] : split_params(fn.params_begin, fn.params_end)) {
      if (pb >= pe) continue;
      if (pe - pb == 1 && (toks[pb].text == "void" || toks[pb].text == "...")) continue;
      int depth = 0;
      int angle = 0;
      std::size_t ref_at = std::string::npos;
      bool rvalue = false;
      std::string view_type;
      std::string last_ident;
      std::string name;
      std::string type_before_ref;
      for (std::size_t i = pb; i < pe; ++i) {
        const std::string& s = toks[i].text;
        if (s == "(" || s == "[" || s == "{") ++depth;
        if (s == ")" || s == "]" || s == "}") --depth;
        if (s == "<" && i > pb &&
            (toks[i - 1].kind == TokKind::Ident || toks[i - 1].text == ">")) {
          ++angle;
        } else if (s == ">" && angle > 0) {
          --angle;
        } else if (s == ">>" && angle > 0) {
          angle = std::max(0, angle - 2);
        }
        if (depth != 0 || angle != 0) continue;
        if (s == "=") break;  // default argument: the name came just before
        if (toks[i].kind == TokKind::Ident) {
          if (kViewTypes.count(s) != 0u) view_type = s;
          if (kTypeishExcluded.count(s) == 0u) {
            last_ident = s;
            name = s;
          }
          continue;
        }
        if ((s == "&" || s == "&&") && ref_at == std::string::npos) {
          ref_at = i;
          rvalue = (s == "&&");
          type_before_ref = last_ident;
        }
      }
      if (ref_at != std::string::npos) {
        if (!rvalue && is_allowed_ref_type(type_before_ref)) continue;
        emit("coro-ref-param", toks[ref_at].line, fn,
             "parameter '" + (name.empty() ? type_before_ref : name) +
                 "' of coroutine '" + fn.name + "' is passed by " +
                 (rvalue ? std::string("rvalue reference")
                         : std::string("reference")) +
                 "; the referent can be destroyed while the frame is suspended "
                 "(the blpop_impl bug class) -- take it by value, or by pointer "
                 "to an object that provably outlives the frame");
      } else if (!view_type.empty()) {
        emit("coro-ref-param", toks[pb].line, fn,
             "parameter '" + name + "' of coroutine '" + fn.name +
                 "' is a view type (std::" + view_type +
                 "); the viewed buffer can be destroyed while the frame is "
                 "suspended -- take an owning value instead");
      }
    }
  }

  // --- check: coro-lambda-capture --------------------------------------------

  void check_lambda_captures(const Fn& fn) {
    for (auto [cb, ce] : split_params(fn.caps_begin, fn.caps_end)) {
      if (cb >= ce) continue;
      if (toks[cb].text == "&") {
        const std::string what =
            (ce - cb == 1) ? "by-reference capture default '[&]'"
                           : "by-reference capture '&" + toks[cb + 1].text + "'";
        emit("coro-lambda-capture", toks[cb].line, fn,
             "coroutine lambda has " + what +
                 "; captures live in the lambda object, not the coroutine "
                 "frame, and the referent can die before the frame resumes -- "
                 "capture by value or pass state as a parameter");
      } else if (ce - cb == 1 && toks[cb].text == "this") {
        emit("coro-lambda-capture", toks[cb].line, fn,
             "coroutine lambda captures 'this'; if the object is destroyed "
             "while the frame is suspended every member access dangles -- "
             "capture '*this' by value or pass the object as a parameter");
      }
    }
  }

  // --- check: coro-stale-ref -------------------------------------------------

  std::size_t find_stmt_end(std::size_t i, std::size_t limit) const {
    while (i < limit) {
      const std::string& s = toks[i].text;
      if (s == ";") return i;
      i = (s == "(" || s == "[" || s == "{") ? skip_group(i) : i + 1;
    }
    return limit;
  }

  bool range_has_container_access(std::size_t b, std::size_t e) const {
    static const std::unordered_set<std::string> kAccessors = {
        "at",   "front", "back",        "top",         "data",
        "find", "begin", "end",         "rbegin",      "rend",
        "cbegin", "cend", "lower_bound", "upper_bound", "equal_range"};
    for (std::size_t i = b; i < e; ++i) {
      if (toks[i].text == "[") return true;
      if (toks[i].kind == TokKind::Ident && kAccessors.count(toks[i].text) != 0u &&
          i + 1 < e && toks[i + 1].text == "(") {
        return true;
      }
    }
    return false;
  }

  bool range_yields_iterator(std::size_t b, std::size_t e) const {
    static const std::unordered_set<std::string> kIterCalls = {
        "begin", "end",         "rbegin",      "rend",       "cbegin",
        "cend",  "lower_bound", "upper_bound", "equal_range", "find"};
    for (std::size_t i = b; i < e; ++i) {
      if (toks[i].kind == TokKind::Ident && kIterCalls.count(toks[i].text) != 0u &&
          i + 1 < e && toks[i + 1].text == "(") {
        return true;
      }
    }
    return false;
  }

  void check_stale_refs(const Fn& fn) {
    struct Binding {
      std::string name;
      int decl_line;
      int depth;
      const char* what;
      bool stale = false;
      int stale_line = 0;
      bool reported = false;
    };
    std::vector<Binding> bindings;
    int depth = 0;
    // A co_await's operand is evaluated before the frame suspends, so uses
    // inside the awaiting statement are safe; bindings turn stale at the
    // *end* of that statement.
    int pending_stale_line = 0;

    // Flatten own-token indices once so we can look ahead safely.
    std::vector<std::size_t> own;
    for_own_tokens(fn, [&](std::size_t i) { own.push_back(i); });

    for (std::size_t k = 0; k < own.size(); ++k) {
      const std::size_t i = own[k];
      const std::string& s = toks[i].text;
      if (s == ";" || s == "{" || s == "}") {
        if (pending_stale_line != 0) {
          for (Binding& b : bindings) {
            if (!b.stale) {
              b.stale = true;
              b.stale_line = pending_stale_line;
            }
          }
          pending_stale_line = 0;
        }
      }
      if (s == "{") {
        ++depth;
        continue;
      }
      if (s == "}") {
        --depth;
        bindings.erase(std::remove_if(bindings.begin(), bindings.end(),
                                      [&](const Binding& b) { return b.depth > depth; }),
                       bindings.end());
        continue;
      }
      if (is_suspension(toks[i])) {
        pending_stale_line = toks[i].line;
        continue;
      }
      // Declarations: `T& name = init`, `T* name = init`, `auto name = init`.
      const bool next_is_name = k + 2 < own.size() &&
                                toks[own[k + 1]].kind == TokKind::Ident &&
                                toks[own[k + 2]].text == "=";
      if (next_is_name && (s == "&" || s == "*" || s == "auto")) {
        const bool typeish_before =
            s == "auto" ||
            (k > 0 && (toks[own[k - 1]].kind == TokKind::Ident ||
                       toks[own[k - 1]].text == ">"));
        if (typeish_before) {
          const std::size_t init_b = own[k + 2] + 1;
          const std::size_t init_e = find_stmt_end(init_b, fn.body_end);
          const bool risky = (s == "auto")
                                 ? range_yields_iterator(init_b, init_e)
                                 : range_has_container_access(init_b, init_e);
          if (risky) {
            bindings.push_back(Binding{toks[own[k + 1]].text, toks[own[k + 1]].line,
                                       depth,
                                       s == "auto" ? "iterator"
                                       : s == "&"  ? "reference"
                                                   : "pointer"});
          }
          k += 2;  // past `name =`; the initializer is scanned by the walk
          continue;
        }
      }
      if (toks[i].kind != TokKind::Ident) continue;
      for (Binding& b : bindings) {
        if (b.name != s) continue;
        const bool writes_through = k > 0 && toks[own[k - 1]].text == "*";
        const bool rebinds = !writes_through && k + 1 < own.size() &&
                             toks[own[k + 1]].text == "=";
        if (rebinds) {
          b.stale = false;
          b.reported = false;
        } else if (b.stale && !b.reported) {
          b.reported = true;
          emit("coro-stale-ref", toks[i].line, fn,
               std::string("'") + b.name + "' (" + b.what +
                   " into a container, bound at line " +
                   std::to_string(b.decl_line) + ") is used after the co_await "
                   "at line " + std::to_string(b.stale_line) +
                   "; the container may have been mutated while this frame was "
                   "suspended -- re-acquire it after resumption");
        }
      }
    }
  }

  // --- check: coro-frame-escape ----------------------------------------------

  void check_frame_escape(const Fn& fn) {
    std::unordered_set<std::string> locals;
    for (auto [pb, pe] : split_params(fn.params_begin, fn.params_end)) {
      // Last identifier of the declarator is the parameter name.
      for (std::size_t i = pe; i > pb;) {
        --i;
        if (toks[i].text == "=") pe = i;  // default arg: name precedes it
      }
      for (std::size_t i = pe; i > pb;) {
        --i;
        if (toks[i].kind == TokKind::Ident) {
          locals.insert(toks[i].text);
          break;
        }
      }
    }

    std::vector<std::size_t> own;
    for_own_tokens(fn, [&](std::size_t i) { own.push_back(i); });

    std::size_t first_guard = std::string::npos;
    for (std::size_t k = 0; k < own.size(); ++k) {
      const Token& t = toks[own[k]];
      if (t.kind != TokKind::Ident) continue;
      if (std::find(cfg.guard_types.begin(), cfg.guard_types.end(), t.text) !=
          cfg.guard_types.end()) {
        first_guard = std::min(first_guard, own[k]);
      }
      // Local declarations: `Type name =|;|{|(`, with a type-ish token
      // before the name.
      if (k > 0 && k + 1 < own.size()) {
        const Token& prev = toks[own[k - 1]];
        const std::string& next = toks[own[k + 1]].text;
        const bool declish =
            (prev.kind == TokKind::Ident && kNonFunctionNames.count(prev.text) == 0u &&
             prev.text != "return") ||
            prev.text == ">" || prev.text == "*" || prev.text == "&";
        if (declish && (next == "=" || next == ";" || next == "{" || next == "(")) {
          locals.insert(t.text);
        }
      }
    }

    for (std::size_t k = 0; k + 1 < own.size(); ++k) {
      const Token& t = toks[own[k]];
      if (t.kind != TokKind::Ident || toks[own[k + 1]].text != "(") continue;
      if (std::find(cfg.sink_names.begin(), cfg.sink_names.end(), t.text) ==
          cfg.sink_names.end()) {
        continue;
      }
      const std::size_t open = own[k + 1];
      if (match[open] < 0) continue;
      const std::size_t close = static_cast<std::size_t>(match[open]);
      const bool guarded = first_guard < open;
      for (std::size_t i = open + 1; i < close; ++i) {
        // Bare `&local` in argument position.
        if (toks[i].text == "&" && i > open &&
            (toks[i - 1].text == "(" || toks[i - 1].text == "," ||
             toks[i - 1].text == "{" || toks[i - 1].text == "=") &&
            i + 2 <= close && toks[i + 1].kind == TokKind::Ident &&
            (toks[i + 2].text == "," || toks[i + 2].text == ")" ||
             toks[i + 2].text == "}")) {
          if (locals.count(toks[i + 1].text) != 0u && !guarded) {
            emit("coro-frame-escape", toks[i].line, fn,
                 "address of frame local '" + toks[i + 1].text +
                     "' escapes into '" + t.text +
                     "(...)'; if this coroutine frame is destroyed first, the "
                     "consumer writes through a dangling pointer (the parked-"
                     "BLPOP bug class) -- copy the value or guard the frame "
                     "with a shared liveness flag (LiveGuard)");
          }
        }
        // A by-reference-capturing lambda queued into a sink.
        if (toks[i].text == "[" && (toks[i - 1].text == "(" || toks[i - 1].text == ",") &&
            match[i] > 0) {
          const auto caps_end = static_cast<std::size_t>(match[i]);
          for (std::size_t c = i + 1; c < caps_end; ++c) {
            if (toks[c].text == "&" && !guarded) {
              emit("coro-frame-escape", toks[i].line, fn,
                   "callback handed to '" + t.text +
                       "(...)' captures coroutine-frame state by reference; "
                       "the callback can outlive this frame -- capture by "
                       "value or guard with a shared liveness flag");
              break;
            }
          }
          i = caps_end;
        }
      }
    }
  }

  // --- perf family (hot-alloc, hot-arg-copy, hot-relookup) -------------------

  /// Own body tokens with `CHASE_*(...)` argument groups removed: assertion
  /// failure paths are allowed to build strings / allocate, deliberately.
  std::vector<std::size_t> own_hot_tokens(const Fn& fn) const {
    std::vector<std::size_t> own;
    for_own_tokens(fn, [&](std::size_t i) { own.push_back(i); });
    std::vector<std::size_t> out;
    out.reserve(own.size());
    for (std::size_t k = 0; k < own.size(); ++k) {
      const Token& t = toks[own[k]];
      if (t.kind == TokKind::Ident && t.text.rfind("CHASE_", 0) == 0 &&
          k + 1 < own.size() && toks[own[k + 1]].text == "(" &&
          match[own[k + 1]] > 0) {
        const auto close = static_cast<std::size_t>(match[own[k + 1]]);
        while (k + 1 < own.size() && own[k + 1] <= close) ++k;
        continue;
      }
      out.push_back(own[k]);
    }
    return out;
  }

  bool is_expensive_type(const std::string& s) const {
    static const std::unordered_set<std::string> kBuiltin = {
        "string", "wstring", "basic_string", "vector",        "deque",
        "list",   "map",     "multimap",     "unordered_map", "set",
        "multiset", "unordered_set", "function"};
    if (std::find(cfg.allow_copy_types.begin(), cfg.allow_copy_types.end(), s) !=
        cfg.allow_copy_types.end()) {
      return false;
    }
    return kBuiltin.count(s) != 0u ||
           std::find(cfg.expensive_types.begin(), cfg.expensive_types.end(), s) !=
               cfg.expensive_types.end();
  }

  // --- check: hot-alloc ------------------------------------------------------

  void check_hot_alloc(const Fn& fn) {
    static const std::unordered_set<std::string> kAllocCalls = {
        "make_shared", "make_unique", "make_shared_for_overwrite",
        "make_unique_for_overwrite"};
    const std::vector<std::size_t> own = own_hot_tokens(fn);
    for (std::size_t k = 0; k < own.size(); ++k) {
      const Token& t = toks[own[k]];
      const Token* nx = k + 1 < own.size() ? &toks[own[k + 1]] : nullptr;
      if (t.kind == TokKind::Ident) {
        if (t.text == "new") {
          emit("hot-alloc", t.line, fn,
               "operator new on the hot path; every dispatched event pays this "
               "allocation -- pool the object, use inline storage, or hoist "
               "the allocation out of the steady state");
          continue;
        }
        if (kAllocCalls.count(t.text) != 0u && nx != nullptr &&
            (nx->text == "<" || nx->text == "(")) {
          emit("hot-alloc", t.line, fn,
               "std::" + t.text + " on the hot path allocates per call -- "
               "reuse a pooled object or construct once outside the loop");
          continue;
        }
        if (t.text == "function" && k >= 2 && toks[own[k - 1]].text == "::" &&
            toks[own[k - 2]].text == "std") {
          emit("hot-alloc", t.line, fn,
               "std::function constructed on the hot path; captures beyond "
               "the small-buffer limit heap-allocate -- use util::SmallFn, a "
               "template parameter, or a plain function pointer");
          continue;
        }
        if ((t.text == "push_back" || t.text == "emplace_back") && nx != nullptr &&
            nx->text == "(" && k >= 2 &&
            (toks[own[k - 1]].text == "." || toks[own[k - 1]].text == "->") &&
            toks[own[k - 2]].kind == TokKind::Ident) {
          const std::string& recv = toks[own[k - 2]].text;
          if (reserved_names.count(recv) == 0u) {
            emit("hot-alloc", t.line, fn,
                 "'" + recv + "." + t.text + "' with no visible '" + recv +
                     ".reserve(...)' anywhere in this file; steady-state "
                     "growth reallocates on the hot path -- reserve capacity "
                     "up front");
          }
          continue;
        }
      }
      if (t.kind == TokKind::Punct && (t.text == "+" || t.text == "+=")) {
        const Token* pv = k > 0 ? &toks[own[k - 1]] : nullptr;
        const bool str_adjacent = (pv != nullptr && pv->kind == TokKind::Str) ||
                                  (nx != nullptr && nx->kind == TokKind::Str);
        const bool to_string_next =
            nx != nullptr &&
            (nx->text == "to_string" ||
             (nx->text == "std" && k + 3 < own.size() &&
              toks[own[k + 3]].text == "to_string"));
        if (str_adjacent || to_string_next) {
          emit("hot-alloc", t.line, fn,
               "string concatenation on the hot path allocates a temporary "
               "per call -- build the string once outside the loop, or write "
               "into a reused buffer");
        }
      }
    }
  }

  // --- check: hot-arg-copy ---------------------------------------------------

  /// By-value expensive parameters of hot *non-coroutine* functions.
  /// Coroutine parameters are exempt by design: the coro-* family requires
  /// owning by-value parameters, and lifetime safety beats one copy.
  void check_hot_param_copies(const Fn& fn) {
    for (auto [pb, pe] : split_params(fn.params_begin, fn.params_end)) {
      if (pb >= pe) continue;
      int depth = 0;
      int angle = 0;
      bool by_value = true;
      std::string type_ident;
      std::string name;
      for (std::size_t i = pb; i < pe; ++i) {
        const std::string& s = toks[i].text;
        if (s == "(" || s == "[" || s == "{") ++depth;
        if (s == ")" || s == "]" || s == "}") --depth;
        if (s == "<" && i > pb &&
            (toks[i - 1].kind == TokKind::Ident || toks[i - 1].text == ">")) {
          ++angle;
        } else if (s == ">" && angle > 0) {
          --angle;
        } else if (s == ">>" && angle > 0) {
          angle = std::max(0, angle - 2);
        }
        if (depth != 0 || angle != 0) continue;
        if (s == "=") break;  // default argument
        if (s == "&" || s == "&&" || s == "*" || s == "...") by_value = false;
        if (toks[i].kind == TokKind::Ident && kTypeishExcluded.count(s) == 0u &&
            s != "std") {
          if (type_ident.empty()) type_ident = s;
          name = s;
        }
      }
      if (by_value && is_expensive_type(type_ident)) {
        emit("hot-arg-copy", toks[pb].line, fn,
             "parameter '" + name + "' of hot function '" + fn.name +
                 "' takes a " + type_ident + " by value; every call on the "
                 "hot path deep-copies it -- take const& (non-coroutine "
                 "callees only), or allow-copy-type it with a justification");
      }
    }
  }

  /// Expensive-type locals copy-initialised from a plain lvalue chain
  /// (`std::vector<int> v = other.member;` — no call, no std::move).
  void check_hot_copy_init(const Fn& fn) {
    const std::vector<std::size_t> own = own_hot_tokens(fn);
    for (std::size_t k = 0; k < own.size(); ++k) {
      const Token& t = toks[own[k]];
      if (t.kind != TokKind::Ident || !is_expensive_type(t.text)) continue;
      // Template arguments, then the declared name, then '='.
      std::size_t j = k + 1;
      if (j < own.size() && toks[own[j]].text == "<") {
        int angle = 1;
        ++j;
        while (j < own.size() && angle > 0) {
          const std::string& s = toks[own[j]].text;
          if (s == "<") ++angle;
          if (s == ">") --angle;
          if (s == ">>") angle -= 2;
          ++j;
        }
      }
      if (j >= own.size() || toks[own[j]].kind != TokKind::Ident) continue;
      const std::string decl_name = toks[own[j]].text;
      if (j + 1 >= own.size() || toks[own[j + 1]].text != "=") continue;
      bool plain_lvalue = true;
      bool any_ident = false;
      std::size_t m = j + 2;
      for (; m < own.size() && toks[own[m]].text != ";"; ++m) {
        const Token& x = toks[own[m]];
        if (x.kind == TokKind::Ident) {
          if (x.text == "move") {
            plain_lvalue = false;  // std::move(...) transfers, no deep copy
            break;
          }
          any_ident = true;
          continue;
        }
        if (x.kind == TokKind::Punct &&
            (x.text == "." || x.text == "->" || x.text == "::" ||
             x.text == "[" || x.text == "]")) {
          continue;
        }
        plain_lvalue = false;  // a call or expression: likely constructs in place
        break;
      }
      if (plain_lvalue && any_ident && m < own.size()) {
        emit("hot-arg-copy", toks[own[j]].line, fn,
             "'" + decl_name + "' deep-copies a " + t.text + " on the hot "
             "path -- bind a const& / pointer, or std::move if the source is "
             "dead (copies kept deliberately for lifetime across co_await "
             "need an inline allow with the reason)");
      }
    }
  }

  // --- check: hot-relookup ---------------------------------------------------

  void check_hot_relookup(const Fn& fn) {
    static const std::unordered_set<std::string> kLookupCalls = {
        "at", "find", "count", "contains", "erase"};
    struct Entry {
      int count = 0;
      int depth = 0;
      int first_line = 0;
      bool reported = false;
    };
    std::map<std::pair<std::string, std::string>, Entry> seen;
    const std::vector<std::size_t> own = own_hot_tokens(fn);
    int depth = 0;
    auto single_token_key = [&](std::size_t k) -> const Token* {
      const Token& key = toks[own[k]];
      if (key.kind == TokKind::Ident || key.kind == TokKind::Number ||
          key.kind == TokKind::Str) {
        return &key;
      }
      return nullptr;
    };
    auto record = [&](const std::string& recv, const std::string& key, int line) {
      Entry& e = seen[{recv, key}];
      if (e.count == 0) {
        e.depth = depth;
        e.first_line = line;
      }
      ++e.count;
      if (e.count >= 2 && !e.reported) {
        e.reported = true;
        emit("hot-relookup", line, fn,
             "'" + recv + "' is looked up with key '" + key +
                 "' again in this scope (first at line " +
                 std::to_string(e.first_line) + "); each lookup walks the "
                 "container -- keep the reference/iterator from the first "
                 "lookup");
      }
    };
    for (std::size_t k = 0; k < own.size(); ++k) {
      const std::string& s = toks[own[k]].text;
      if (s == "{") {
        ++depth;
        continue;
      }
      if (s == "}") {
        --depth;
        for (auto it = seen.begin(); it != seen.end();) {
          it = it->second.depth > depth ? seen.erase(it) : std::next(it);
        }
        continue;
      }
      if (toks[own[k]].kind != TokKind::Ident) continue;
      // Key or receiver mutated: forget what we knew about it.
      const bool mutated =
          (k + 1 < own.size() && (toks[own[k + 1]].text == "=" ||
                                  toks[own[k + 1]].text == "+=" ||
                                  toks[own[k + 1]].text == "-=" ||
                                  toks[own[k + 1]].text == "++" ||
                                  toks[own[k + 1]].text == "--")) ||
          (k > 0 && (toks[own[k - 1]].text == "++" || toks[own[k - 1]].text == "--"));
      if (mutated) {
        for (auto it = seen.begin(); it != seen.end();) {
          it = (it->first.first == s || it->first.second == s) ? seen.erase(it)
                                                               : std::next(it);
        }
        continue;
      }
      // Composite receivers (`a.b[k]`) are skipped: `b` alone does not name
      // one container.
      if (k > 0 && (toks[own[k - 1]].text == "." || toks[own[k - 1]].text == "->"))
        continue;
      if (k + 3 < own.size() && toks[own[k + 1]].text == "[" &&
          toks[own[k + 3]].text == "]") {
        if (const Token* key = single_token_key(k + 2)) {
          record(s, key->text, key->line);
        }
        continue;
      }
      if (k + 5 < own.size() &&
          (toks[own[k + 1]].text == "." || toks[own[k + 1]].text == "->") &&
          kLookupCalls.count(toks[own[k + 2]].text) != 0u &&
          toks[own[k + 3]].text == "(" && toks[own[k + 5]].text == ")") {
        if (const Token* key = single_token_key(k + 4)) {
          record(s, key->text, key->line);
        }
      }
    }
  }

  // --- determinism family (det-*) --------------------------------------------
  // These scan the whole token stream: pointer-keyed members and entropy
  // sources live at class scope, outside any function body.

  /// Innermost function whose body contains token `i`, or nullptr at file
  /// scope.
  const Fn* enclosing_fn(std::size_t i) const {
    std::size_t best_size = std::string::npos;
    const Fn* best = nullptr;
    for (const Fn& fn : fns) {
      if (fn.body_begin <= i && i < fn.body_end) {
        const std::size_t size = fn.body_end - fn.body_begin;
        if (size < best_size) {
          best_size = size;
          best = &fn;
        }
      }
    }
    return best;
  }

  std::string enclosing_fn_name(std::size_t i) const {
    const Fn* fn = enclosing_fn(i);
    return fn != nullptr ? fn->name : std::string();
  }

  void emit_at(const char* check, std::size_t tok_idx, std::string message) {
    findings.push_back(Finding{check, path, toks[tok_idx].line,
                               enclosing_fn_name(tok_idx), std::move(message)});
  }

  /// From the '<' at `open`, index of the matching '>' (or the '>>' that
  /// closes it), handling nested angles and stepping over (){}[] groups.
  /// npos when this '<' turns out to be a comparison (hits ';' first).
  std::size_t close_angle(std::size_t open) const {
    int angle = 0;
    std::size_t j = open;
    while (j < toks.size()) {
      const std::string& s = toks[j].text;
      if (s == "(" || s == "[" || s == "{") {
        j = skip_group(j);
        continue;
      }
      if (s == ";") return std::string::npos;
      if (s == "<") {
        ++angle;
      } else if (s == ">") {
        if (--angle == 0) return j;
      } else if (s == ">>") {
        angle -= 2;
        if (angle <= 0) return j;
      }
      ++j;
    }
    return std::string::npos;
  }

  /// Walk back from `end` (exclusive) to the base identifier of a postfix
  /// chain: `a.b[i]` -> a for lhs-of-assignment bases (outward walk), or the
  /// *terminal* member for sort keys (`a.score()` -> score) when
  /// `want_terminal`. Empty string when the shape is not a simple chain.
  std::string chain_ident(std::size_t begin, std::size_t end, bool want_terminal) const {
    std::size_t j = end;
    std::string found;
    while (j > begin) {
      --j;
      const std::string& s = toks[j].text;
      if (s == ")" || s == "]") {
        if (match[j] < 0 || static_cast<std::size_t>(match[j]) < begin) return {};
        j = static_cast<std::size_t>(match[j]);
        continue;
      }
      if (toks[j].kind == TokKind::Ident) {
        found = s;
        if (want_terminal) return found;
        // Keep walking outward over `.` / `->` / `::` to the chain base.
        if (j >= 2 && (toks[j - 1].text == "." || toks[j - 1].text == "->" ||
                       toks[j - 1].text == "::")) {
          --j;  // land on the separator; loop steps to the previous component
          continue;
        }
        return found;
      }
      return found;
    }
    return found;
  }

  // --- check: det-entropy ----------------------------------------------------

  void check_det_entropy() {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::Ident) continue;
      const std::string& s = toks[i].text;
      const std::string& prev = i > 0 ? toks[i - 1].text : kEmpty;
      const bool next_call = is(i + 1, "(");
      const bool member = prev == "." || prev == "->";
      const bool std_qualified =
          prev == "::" && i >= 2 && toks[i - 2].text == "std";
      if (s == "random_device" && !member) {
        emit_at("det-entropy", i,
                "std::random_device draws hardware entropy; replay cannot "
                "reproduce it -- seed a util::Rng and thread it through");
        continue;
      }
      if ((s == "system_clock" || s == "steady_clock" ||
           s == "high_resolution_clock") &&
          !member) {
        emit_at("det-entropy", i,
                "std::chrono::" + s + " reads the wall clock; sim logic must "
                "use Simulation::now() so replay is time-independent "
                "(measurement-only uses need an allow with the reason)");
        continue;
      }
      if ((s == "rand" || s == "srand") && next_call && !member &&
          (prev != "::" || std_qualified)) {
        emit_at("det-entropy", i,
                s + "() uses hidden global PRNG state shared across the "
                "process; use a seeded util::Rng owned by the caller");
        continue;
      }
      if (s == "time" && next_call && !member) {
        // `time(...)` is a common method/field name; only the C library
        // call shapes count: std::time(...) or time(nullptr)/time(0).
        const std::size_t open = i + 1;
        const std::size_t close =
            match[open] > 0 ? static_cast<std::size_t>(match[open]) : open;
        const bool null_arg =
            close == open + 2 &&
            (toks[open + 1].text == "nullptr" || toks[open + 1].text == "NULL" ||
             toks[open + 1].text == "0");
        if (std_qualified || (prev != "::" && null_arg)) {
          emit_at("det-entropy", i,
                  "time() reads the wall clock; sim logic must derive time "
                  "from Simulation::now() and seeds from the CLI");
        }
        continue;
      }
      if (s == "clock" && next_call && std_qualified) {
        emit_at("det-entropy", i,
                "std::clock() reads processor time; replay cannot reproduce "
                "it -- use Simulation::now()");
        continue;
      }
      if ((s == "gettimeofday" || s == "clock_gettime") && next_call && !member) {
        emit_at("det-entropy", i,
                s + "() reads the wall clock; use Simulation::now()");
        continue;
      }
    }
  }

  // --- check: det-pointer-order ----------------------------------------------

  /// Names of variables declared as vector<T*> in this file, for the
  /// comparator-less-sort pattern.
  std::unordered_set<std::string> ptr_vector_names() const {
    std::unordered_set<std::string> out;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].text != "vector" || toks[i].kind != TokKind::Ident) continue;
      if (!is(i + 1, "<")) continue;
      const std::size_t close = close_angle(i + 1);
      if (close == std::string::npos) continue;
      // Element type ends in '*' (the token right before the closing angle).
      if (close == 0 || toks[close - 1].text != "*") continue;
      std::size_t j = close + 1;
      while (j < toks.size() && (toks[j].text == "&" || toks[j].text == "*" ||
                                 toks[j].text == "const")) {
        ++j;
      }
      if (j < toks.size() && toks[j].kind == TokKind::Ident) out.insert(toks[j].text);
    }
    return out;
  }

  void check_det_pointer_order() {
    static const std::unordered_set<std::string> kOrderedByKey = {
        "map", "multimap", "set", "multiset"};
    const std::unordered_set<std::string> ptr_vecs = ptr_vector_names();
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::Ident) continue;
      const std::string& s = toks[i].text;
      const bool std_scoped = i > 0 && toks[i - 1].text == "::";
      // Pattern A: std::map<T*, ...> / std::set<T*> -- the *key* slot.
      if (kOrderedByKey.count(s) != 0u && std_scoped && is(i + 1, "<")) {
        const std::size_t close = close_angle(i + 1);
        if (close == std::string::npos) continue;
        // End of the first template argument: the first top-level comma,
        // or the closing angle itself.
        int angle = 1;
        std::size_t key_end = close;
        for (std::size_t j = i + 2; j < close;) {
          const std::string& q = toks[j].text;
          if (q == "(" || q == "[" || q == "{") {
            j = skip_group(j);
            continue;
          }
          if (q == "<") ++angle;
          if (q == ">") --angle;
          if (q == ">>") angle -= 2;
          if (q == "," && angle == 1) {
            key_end = j;
            break;
          }
          ++j;
        }
        if (key_end > 0 && toks[key_end - 1].text == "*") {
          emit_at("det-pointer-order", i,
                  "std::" + s + " keyed by a raw pointer iterates in address "
                  "order, which varies under ASLR and allocation history -- "
                  "key by a stable id (fid, uid, (level, id)) instead");
        }
        continue;
      }
      // Pattern B: std::less<T*> as an explicit comparator. std::less<>
      // (transparent) carries no pointer type and stays silent.
      if (s == "less" && std_scoped && is(i + 1, "<")) {
        const std::size_t close = close_angle(i + 1);
        if (close == std::string::npos) continue;
        for (std::size_t j = i + 2; j < close; ++j) {
          if (toks[j].text == "*") {
            emit_at("det-pointer-order", i,
                    "std::less over a raw pointer type orders by address -- "
                    "compare stable ids instead");
            break;
          }
        }
        continue;
      }
      // Pattern D: comparator-less sort of a vector<T*>.
      if ((s == "sort" || s == "stable_sort") && is(i + 1, "(") &&
          match[i + 1] > 0) {
        const std::size_t open = i + 1;
        const std::size_t close = static_cast<std::size_t>(match[open]);
        const auto args = split_params(open + 1, close);
        if (args.size() != 2) continue;  // a comparator arg is present
        const std::string base0 = chain_ident(args[0].first, args[0].second, false);
        if (!base0.empty() && ptr_vecs.count(base0) != 0u) {
          emit_at("det-pointer-order", i,
                  "sort of '" + base0 + "' (a vector of raw pointers) with no "
                  "comparator orders by address -- sort by a stable id");
        }
        continue;
      }
    }
    // Pattern C: comparator lambda whose body is exactly `return a < b;`
    // on two pointer parameters.
    for (const Fn& fn : fns) {
      if (!fn.is_lambda) continue;
      const auto params = split_params(fn.params_begin, fn.params_end);
      if (params.size() != 2) continue;
      std::array<std::string, 2> names;
      bool both_ptr = true;
      for (std::size_t p = 0; p < 2; ++p) {
        bool has_star = false;
        for (std::size_t j = params[p].first; j < params[p].second; ++j) {
          if (toks[j].text == "*") has_star = true;
          if (toks[j].kind == TokKind::Ident) names[p] = toks[j].text;
        }
        if (!has_star || names[p].empty()) both_ptr = false;
      }
      if (!both_ptr) continue;
      // Body shape: return <a> (<|>) <b> ;
      if (fn.body_end - fn.body_begin != 5) continue;
      const std::size_t b = fn.body_begin;
      if (toks[b].text == "return" &&
          (toks[b + 2].text == "<" || toks[b + 2].text == ">") &&
          toks[b + 4].text == ";" &&
          ((toks[b + 1].text == names[0] && toks[b + 3].text == names[1]) ||
           (toks[b + 1].text == names[1] && toks[b + 3].text == names[0]))) {
        emit_at("det-pointer-order", b + 2,
                "comparator orders raw pointers '" + names[0] + "' and '" +
                    names[1] + "' by address -- compare a stable id field "
                    "with a tiebreak instead");
      }
    }
  }

  // --- check: det-float-tiebreak ---------------------------------------------

  /// Names this file declares with float/double (locals, members, and
  /// `double name()` getters), plus the policy's cross-file `float-key`s.
  std::unordered_set<std::string> float_names() const {
    static const std::unordered_set<std::string> kFollows = {
        "=", ";", ",", ")", "{", ":", "("};
    std::unordered_set<std::string> out(cfg.float_keys.begin(),
                                        cfg.float_keys.end());
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].text != "float" && toks[i].text != "double") continue;
      std::size_t j = i + 1;
      while (j < toks.size() && (toks[j].text == "const" || toks[j].text == "*" ||
                                 toks[j].text == "&")) {
        ++j;
      }
      if (j + 1 < toks.size() && toks[j].kind == TokKind::Ident &&
          kFollows.count(toks[j + 1].text) != 0u) {
        out.insert(toks[j].text);
      }
    }
    return out;
  }

  void check_det_float_tiebreak() {
    static const std::unordered_set<std::string> kSortCalls = {
        "sort",      "stable_sort", "partial_sort", "nth_element",
        "make_heap", "push_heap",   "pop_heap",     "sort_heap"};
    const std::unordered_set<std::string> floats = float_names();

    // Lambdas bound to a name (`auto by_x = [...]`), so named comparators
    // passed to sort calls are analyzed too.
    std::map<std::string, std::size_t> named_lambda;
    for (std::size_t f = 0; f < fns.size(); ++f) {
      const Fn& fn = fns[f];
      if (!fn.is_lambda || fn.intro < 2) continue;
      if (toks[fn.intro - 1].text == "=" &&
          toks[fn.intro - 2].kind == TokKind::Ident) {
        named_lambda[toks[fn.intro - 2].text] = f;
      }
    }

    // Collect comparator-position lambdas: direct lambda args of sort
    // calls, plus named lambdas passed by name.
    std::unordered_set<std::size_t> comparators;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::Ident || kSortCalls.count(toks[i].text) == 0u)
        continue;
      if (!is(i + 1, "(") || match[i + 1] < 0) continue;
      const std::size_t open = i + 1;
      const std::size_t close = static_cast<std::size_t>(match[open]);
      for (const auto& [ab, ae] : split_params(open + 1, close)) {
        if (ae - ab == 1 && toks[ab].kind == TokKind::Ident) {
          const auto it = named_lambda.find(toks[ab].text);
          if (it != named_lambda.end()) comparators.insert(it->second);
        }
      }
      for (std::size_t f = 0; f < fns.size(); ++f) {
        if (!fns[f].is_lambda) continue;
        // Direct argument: the lambda's introducer sits at this call's top
        // level (skip_group jumps over nested groups without entering them).
        std::size_t j = open + 1;
        while (j < close) {
          if (j == fns[f].intro) {
            comparators.insert(f);
            break;
          }
          j = (match[j] > static_cast<std::ptrdiff_t>(j)) ? skip_group(j) : j + 1;
        }
      }
    }

    for (std::size_t f : comparators) {
      const Fn& fn = fns[f];
      // Parameter names, to exempt value-sorts of raw floats (`return a < b`
      // on double params: equal keys are identical values, order among them
      // is unobservable).
      std::unordered_set<std::string> param_names;
      for (const auto& [pb, pe] : split_params(fn.params_begin, fn.params_end)) {
        for (std::size_t j = pe; j > pb;) {
          --j;
          if (toks[j].kind == TokKind::Ident) {
            param_names.insert(toks[j].text);
            break;
          }
        }
      }
      // One return, one comparison, no tiebreak machinery.
      std::size_t ret = std::string::npos;
      int returns = 0;
      for (std::size_t j = fn.body_begin; j < fn.body_end; ++j) {
        if (toks[j].text == "return") {
          ++returns;
          ret = j;
        }
      }
      if (returns != 1) continue;  // multiple returns = the tiebreak idiom
      std::size_t semi = ret;
      while (semi < fn.body_end && toks[semi].text != ";") ++semi;
      std::size_t cmp = std::string::npos;
      bool disqualified = false;
      for (std::size_t j = ret + 1; j < semi; ++j) {
        const std::string& q = toks[j].text;
        if (q == "<" || q == ">") {
          if (cmp != std::string::npos) disqualified = true;
          cmp = j;
        }
        if (q == "==" || q == "!=" || q == "&&" || q == "||" || q == "," ||
            q == "?" || q == "tie") {
          disqualified = true;
        }
      }
      if (disqualified || cmp == std::string::npos) continue;
      const std::string key = chain_ident(ret + 1, cmp, /*want_terminal=*/true);
      if (key.empty() || floats.count(key) == 0u) continue;
      const bool bare_param_value =
          cmp == ret + 2 && param_names.count(toks[ret + 1].text) != 0u;
      if (bare_param_value) continue;
      emit_at("det-float-tiebreak", cmp,
              "comparator's only sort key '" + key + "' is floating-point; "
              "equal keys leave the final order input/implementation "
              "dependent -- add an integral id tiebreak (the (cap,fid) / "
              "(level, link id) idiom)");
    }
  }

  // --- check: det-unordered-iter ---------------------------------------------

  std::unordered_set<std::string> unordered_container_names() const {
    std::unordered_set<std::string> types = {"unordered_map", "unordered_set",
                                             "unordered_multimap",
                                             "unordered_multiset"};
    // Aliases: `using Name = ...unordered_...;`.
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
      if (toks[i].text != "using" || toks[i + 1].kind != TokKind::Ident ||
          toks[i + 2].text != "=") {
        continue;
      }
      for (std::size_t j = i + 3; j < toks.size() && toks[j].text != ";"; ++j) {
        if (types.count(toks[j].text) != 0u) {
          types.insert(toks[i + 1].text);
          break;
        }
      }
    }
    std::unordered_set<std::string> out;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::Ident || types.count(toks[i].text) == 0u)
        continue;
      std::size_t j = i + 1;
      if (is(j, "<")) {
        const std::size_t close = close_angle(j);
        if (close == std::string::npos) continue;
        j = close + 1;
      }
      while (j < toks.size() && (toks[j].text == "&" || toks[j].text == "*" ||
                                 toks[j].text == "const")) {
        ++j;
      }
      if (j < toks.size() && toks[j].kind == TokKind::Ident) out.insert(toks[j].text);
    }
    return out;
  }

  /// Scan a loop body [b, e) for an observable effect given the set of
  /// loop-local names. Returns the token index of the first effect, or npos.
  std::size_t find_loop_effect(std::size_t b, std::size_t e,
                               std::unordered_set<std::string>& locals) const {
    static const std::unordered_set<std::string> kEffectCalls = {
        "push_back",  "emplace_back", "push_front", "emplace_front",
        "push",       "pop",          "pop_back",   "pop_front",
        "insert",     "erase",        "emplace",    "schedule",
        "enqueue",    "send",         "record",     "destroy",
        "resume",     "clear",        "reset",      "notify",
        "post",       "write",        "append",     "add",
        "remove",     "log"};
    static const std::unordered_set<std::string> kAssignOps = {
        "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};
    // First pass: collect locals declared inside the body (`Type name =`,
    // `auto name =`), so writes to them do not count as effects.
    for (std::size_t j = b; j + 1 < e; ++j) {
      if (toks[j].kind != TokKind::Ident || j == b) continue;
      const Token& prev = toks[j - 1];
      const std::string& next = toks[j + 1].text;
      const bool declish =
          (prev.kind == TokKind::Ident && kNonFunctionNames.count(prev.text) == 0u) ||
          prev.text == ">" || prev.text == "*" || prev.text == "&";
      if (declish && (next == "=" || next == ";" || next == "{")) {
        locals.insert(toks[j].text);
      }
    }
    for (std::size_t j = b; j < e; ++j) {
      const Token& t = toks[j];
      if (is_coro_keyword(t)) return j;  // schedules/suspends: order observable
      if (t.text == "<<") return j;      // stream output
      if (t.kind == TokKind::Ident && kEffectCalls.count(t.text) != 0u &&
          is(j + 1, "(")) {
        // Effectful call -- unless the receiver is a loop-local (building
        // per-iteration scratch state that dies with the iteration).
        if (j >= 2 && (toks[j - 1].text == "." || toks[j - 1].text == "->")) {
          const std::string recv = chain_ident(b, j - 1, /*want_terminal=*/false);
          if (!recv.empty() && locals.count(recv) != 0u) continue;
        }
        return j;
      }
      if (t.kind == TokKind::Punct && kAssignOps.count(t.text) != 0u && j > b) {
        // `found = true;` is the membership-flag idiom: assigning a lone
        // constant is order-independent (the result only records that some
        // element matched), so only non-constant RHS counts as an effect.
        const bool const_rhs =
            t.text == "=" && j + 2 < e && toks[j + 2].text == ";" &&
            (toks[j + 1].kind == TokKind::Number ||
             toks[j + 1].text == "true" || toks[j + 1].text == "false" ||
             toks[j + 1].text == "nullptr");
        if (const_rhs) continue;
        const std::string base = chain_ident(b, j, /*want_terminal=*/false);
        if (!base.empty() && locals.count(base) == 0u) return j;
        continue;
      }
      if ((t.text == "++" || t.text == "--")) {
        std::string base;
        if (j + 1 < e && toks[j + 1].kind == TokKind::Ident) {
          base = toks[j + 1].text;  // pre-increment
        } else if (j > b) {
          base = chain_ident(b, j, /*want_terminal=*/false);  // post-increment
        }
        if (!base.empty() && locals.count(base) == 0u) return j;
      }
    }
    return std::string::npos;
  }

  void check_det_unordered_iter() {
    const std::unordered_set<std::string> unordered = unordered_container_names();
    if (unordered.empty() && cfg.allow_unordered.empty()) return;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].text != "for" || !is(i + 1, "(") || match[i + 1] < 0) continue;
      const std::size_t open = i + 1;
      const std::size_t close = static_cast<std::size_t>(match[open]);
      // Find the range-for ':' (a ';' first means a classic for).
      std::size_t colon = std::string::npos;
      bool classic = false;
      for (std::size_t j = open + 1; j < close;) {
        const std::string& s = toks[j].text;
        if (s == ";") {
          classic = true;
          break;
        }
        if (s == ":") {
          colon = j;
          break;
        }
        j = skip_group(j);
      }
      std::string base;
      std::unordered_set<std::string> locals;
      if (colon != std::string::npos) {
        // Range expression must be a plain identifier chain (a call result
        // is somebody else's snapshot, not a live unordered container).
        bool simple = true;
        for (std::size_t j = colon + 1; j < close; ++j) {
          const Token& t = toks[j];
          if (t.kind == TokKind::Ident) {
            base = t.text;
            continue;
          }
          if (t.text == "." || t.text == "->" || t.text == "::") continue;
          simple = false;
          break;
        }
        if (!simple || base.empty()) continue;
        // Loop variable / structured-binding names are loop-local.
        for (std::size_t j = open + 1; j < colon; ++j) {
          if (toks[j].kind == TokKind::Ident &&
              kTypeishExcluded.count(toks[j].text) == 0u) {
            locals.insert(toks[j].text);
          }
        }
      } else if (classic) {
        // Iterator loop: `for (auto it = X.begin(); ...)` over unordered X.
        for (std::size_t j = open + 1; j + 3 < close; ++j) {
          if (toks[j].kind == TokKind::Ident &&
              (toks[j + 1].text == "." || toks[j + 1].text == "->") &&
              (toks[j + 2].text == "begin" || toks[j + 2].text == "cbegin") &&
              toks[j + 3].text == "(") {
            base = toks[j].text;
            break;
          }
          if (toks[j].text == ";") break;  // only the init statement
        }
        if (base.empty()) continue;
        for (std::size_t j = open + 1; j < close; ++j) {
          if (toks[j].kind == TokKind::Ident &&
              kTypeishExcluded.count(toks[j].text) == 0u) {
            locals.insert(toks[j].text);
          }
        }
      } else {
        continue;
      }
      // Policy escape: allow-unordered names containers whose iteration
      // effects are provably order-independent. Matched by name *before*
      // the per-file classification gate, because the exempted container is
      // typically a member declared in a header this file never shows the
      // analyzer (Simulation::detached_).
      bool allowed = false;
      for (std::size_t a = 0; a < cfg.allow_unordered.size(); ++a) {
        if (cfg.allow_unordered[a].name == base) {
          allowed = true;
          if (allow_unordered_used != nullptr) (*allow_unordered_used)[a] = 1;
          break;
        }
      }
      if (allowed) continue;
      // Per-file type approximation: only names this file declares (or
      // aliases) as unordered are classified. Cross-file unordered members
      // are out of reach by design -- the repo convention is std::map for
      // anything iterated, and the replay oracle catches the rest.
      if (unordered.count(base) == 0u) continue;
      // Body: the brace group after ')', or a single statement.
      std::size_t body_b = close + 1;
      std::size_t body_e;
      if (is(body_b, "{") && match[body_b] > 0) {
        body_e = static_cast<std::size_t>(match[body_b]);
        ++body_b;
      } else {
        body_e = find_stmt_end(body_b, toks.size());
      }
      const std::size_t effect = find_loop_effect(body_b, body_e, locals);
      if (effect == std::string::npos) continue;
      // The sorted-snapshot idiom: a loop that only collects elements into
      // a container which is std::sort'ed later in the same function has
      // imposed a total order before anything observable happens.
      static const std::unordered_set<std::string> kCollects = {
          "push_back", "emplace_back", "insert", "push", "emplace"};
      bool snapshot = false;
      if (toks[effect].kind == TokKind::Ident &&
          kCollects.count(toks[effect].text) != 0u && effect >= 2 &&
          (toks[effect - 1].text == "." || toks[effect - 1].text == "->")) {
        const std::string recv =
            chain_ident(body_b, effect - 1, /*want_terminal=*/false);
        const Fn* fn = enclosing_fn(i);
        if (!recv.empty() && fn != nullptr) {
          for (std::size_t j = body_e; j + 1 < fn->body_end && !snapshot; ++j) {
            if ((toks[j].text == "sort" || toks[j].text == "stable_sort") &&
                is(j + 1, "(") && match[j + 1] > 0) {
              const auto sort_close = static_cast<std::size_t>(match[j + 1]);
              for (std::size_t m = j + 2; m < sort_close; ++m) {
                if (toks[m].text == recv) {
                  snapshot = true;
                  break;
                }
              }
            }
          }
        }
      }
      if (!snapshot) {
        emit_at("det-unordered-iter", i,
                "iteration over unordered container '" + base + "' has an "
                "observable effect at line " + std::to_string(toks[effect].line) +
                "; bucket order is implementation-defined, so replay and "
                "cross-platform runs diverge -- use std::map, iterate a "
                "sorted snapshot, or justify with allow-unordered");
      }
    }
  }

  // --- allow-file policy -----------------------------------------------------

  void apply_allow_files() {
    if (cfg.allow_files.empty()) return;
    std::vector<Finding> kept;
    kept.reserve(findings.size());
    for (Finding& f : findings) {
      bool suppressed = false;
      for (std::size_t i = 0; i < cfg.allow_files.size(); ++i) {
        const AllowFile& af = cfg.allow_files[i];
        if (af.check == f.check && glob_match(af.glob, path)) {
          suppressed = true;
          if (allow_file_used != nullptr) (*allow_file_used)[i] = 1;
          break;
        }
      }
      if (!suppressed) kept.push_back(std::move(f));
    }
    findings = std::move(kept);
  }

  // --- suppressions ----------------------------------------------------------

  struct Suppression {
    int line = 0;
    std::vector<std::string> checks;
    bool used = false;
  };

  void apply_suppressions() {
    std::vector<Suppression> sups;
    for (const Comment& c : comments) {
      // Only comments *starting* with the marker are suppressions, so prose
      // that merely mentions the syntax (docs, this file) stays inert.
      if (c.text.rfind("chase-lint:", 0) != 0) continue;
      std::string rest = c.text.substr(11);
      const std::size_t a = rest.find("allow(");
      const std::size_t z = rest.find(')');
      if (a == std::string::npos || z == std::string::npos || z < a) {
        findings.push_back(Finding{"lint-suppression", path, c.line, "",
                                   "malformed suppression; expected "
                                   "'chase-lint: allow(<check>) <justification>'"});
        continue;
      }
      Suppression sup;
      sup.line = c.line;
      std::stringstream names(rest.substr(a + 6, z - a - 6));
      std::string name;
      bool ok = true;
      while (std::getline(names, name, ',')) {
        name.erase(std::remove(name.begin(), name.end(), ' '), name.end());
        if (std::find(check_names().begin(), check_names().end(), name) ==
            check_names().end()) {
          findings.push_back(Finding{"lint-suppression", path, c.line, "",
                                     "suppression names unknown check '" + name +
                                         "' (see --list-checks)"});
          ok = false;
          continue;
        }
        sup.checks.push_back(name);
      }
      std::string just = rest.substr(z + 1);
      const std::size_t first = just.find_first_not_of(" \t:-");
      if (first == std::string::npos) {
        findings.push_back(
            Finding{"lint-suppression", path, c.line, "",
                    "suppression has no written justification; say *why* the "
                    "lifetime is safe, e.g. '// chase-lint: allow(coro-stale-"
                    "ref) map is not mutated while this step runs'"});
        ok = false;
      }
      if (ok && !sup.checks.empty()) sups.push_back(std::move(sup));
    }

    std::vector<Finding> kept;
    for (Finding& f : findings) {
      bool suppressed = false;
      for (Suppression& s : sups) {
        if ((s.line == f.line || s.line + 1 == f.line) &&
            std::find(s.checks.begin(), s.checks.end(), f.check) != s.checks.end()) {
          s.used = true;
          suppressed = true;
          break;
        }
      }
      if (!suppressed) kept.push_back(std::move(f));
    }
    findings = std::move(kept);
    for (const Suppression& s : sups) {
      if (!s.used) {
        findings.push_back(Finding{"lint-suppression", path, s.line, "",
                                   "suppression no longer matches any finding; "
                                   "delete it so dead allows cannot mask future "
                                   "regressions"});
      }
    }
  }

  std::vector<Finding> run() {
    build_match();
    find_named_functions();
    find_lambdas();
    link_and_classify();
    // Receivers with a visible reserve() anywhere in this file, for the
    // push_back heuristic (the reserve typically lives in a constructor).
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].kind == TokKind::Ident &&
          (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
          toks[i + 2].text == "reserve") {
        reserved_names.insert(toks[i].text);
      }
    }
    for (const Fn& fn : fns) {
      if (!fn.is_coroutine) continue;
      check_ref_params(fn);
      if (fn.is_lambda) check_lambda_captures(fn);
      check_stale_refs(fn);
      check_frame_escape(fn);
    }
    for (const Fn& fn : fns) {
      if (!fn.is_hot) continue;
      check_hot_alloc(fn);
      if (!fn.is_coroutine) check_hot_param_copies(fn);
      check_hot_copy_init(fn);
      check_hot_relookup(fn);
    }
    check_det_entropy();
    check_det_pointer_order();
    check_det_float_tiebreak();
    check_det_unordered_iter();
    apply_allow_files();
    apply_suppressions();
    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                if (a.line != b.line) return a.line < b.line;
                return a.check < b.check;
              });
    return std::move(findings);
  }
};

}  // namespace

const std::vector<std::string>& check_names() {
  static const std::vector<std::string> kNames = {
      "coro-ref-param", "coro-lambda-capture", "coro-stale-ref",
      "coro-frame-escape", "lint-suppression", "hot-alloc", "hot-arg-copy",
      "hot-relookup", "det-unordered-iter", "det-pointer-order",
      "det-float-tiebreak", "det-entropy"};
  return kNames;
}

const char* check_description(const std::string& check) {
  if (check == "coro-ref-param")
    return "coroutine parameter passed by reference or as a view type";
  if (check == "coro-lambda-capture")
    return "coroutine lambda capturing by reference or 'this'";
  if (check == "coro-stale-ref")
    return "container reference/iterator bound before co_await, used after";
  if (check == "coro-frame-escape")
    return "address of a frame local escapes into a queue/callback sink";
  if (check == "lint-suppression")
    return "malformed, unjustified, or unused lint suppression";
  if (check == "hot-alloc")
    return "heap allocation on the hot path";
  if (check == "hot-arg-copy")
    return "expensive by-value parameter or deep copy in a hot function";
  if (check == "hot-relookup")
    return "same container looked up twice with the same key in one scope";
  if (check == "det-unordered-iter")
    return "iteration over an unordered container with observable effects";
  if (check == "det-pointer-order")
    return "ordered container, comparator, or sort keyed by raw pointer values";
  if (check == "det-float-tiebreak")
    return "sort/heap comparator whose only key is floating-point, no tiebreak";
  if (check == "det-entropy")
    return "wall-clock or hardware entropy outside util::Rng and the sim clock";
  return "chase_lint check";
}

bool glob_match(std::string_view glob, std::string_view path) {
  // Iterative wildcard match with single-star backtracking.
  auto match_impl = [](std::string_view g, std::string_view s) {
    std::size_t gi = 0, si = 0;
    std::size_t star_g = std::string_view::npos, star_s = 0;
    while (si < s.size()) {
      if (gi < g.size() && (g[gi] == '?' || g[gi] == s[si])) {
        ++gi;
        ++si;
      } else if (gi < g.size() && g[gi] == '*') {
        star_g = gi++;
        star_s = si;
      } else if (star_g != std::string_view::npos) {
        gi = star_g + 1;
        si = ++star_s;
      } else {
        return false;
      }
    }
    while (gi < g.size() && g[gi] == '*') ++gi;
    return gi == g.size();
  };
  if (match_impl(glob, path)) return true;
  if (glob.find('/') == std::string_view::npos) {
    const std::size_t slash = path.rfind('/');
    if (slash != std::string_view::npos && match_impl(glob, path.substr(slash + 1)))
      return true;
  } else if (!glob.empty() && glob.front() != '/' && glob.front() != '*') {
    // `src/viz/*` should match the path however the walk was rooted.
    std::string anchored = "*/";
    anchored += glob;
    return match_impl(anchored, path);
  }
  return false;
}

Config default_config() {
  Config cfg;
  cfg.guard_types = {"LiveGuard"};
  cfg.sink_names = {"push_back",  "emplace_back", "push_front", "emplace_front",
                    "push",       "emplace",      "insert",     "enqueue",
                    "schedule",   "subscribe",    "set_trace_hook",
                    "add_audit_hook", "set_callback", "register_callback"};
  return cfg;
}

bool load_config(const std::string& path, Config* cfg, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open config file: " + path;
    return false;
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::stringstream ss(line);
    std::string key;
    std::string value;
    if (!(ss >> key)) continue;
    if (!(ss >> value)) {
      *error = path + ":" + std::to_string(line_no) + ": '" + key + "' needs a value";
      return false;
    }
    if (key == "allow-ref-type") {
      cfg->allow_ref_types.push_back(value);
    } else if (key == "guard-type") {
      cfg->guard_types.push_back(value);
    } else if (key == "sink") {
      cfg->sink_names.push_back(value);
    } else if (key == "exclude") {
      cfg->exclude_paths.push_back(value);
    } else if (key == "hot-path") {
      cfg->hot_paths.push_back(value);
    } else if (key == "hot-function") {
      cfg->hot_functions.push_back(value);
    } else if (key == "expensive-type") {
      cfg->expensive_types.push_back(value);
    } else if (key == "allow-copy-type") {
      cfg->allow_copy_types.push_back(value);
    } else if (key == "allow-file") {
      std::string check;
      if (!(ss >> check) || check.size() < 3 || check.front() != '(' ||
          check.back() != ')') {
        *error = path + ":" + std::to_string(line_no) +
                 ": allow-file needs '(<check>)' after the glob";
        return false;
      }
      check = check.substr(1, check.size() - 2);
      if (std::find(check_names().begin(), check_names().end(), check) ==
          check_names().end()) {
        *error = path + ":" + std::to_string(line_no) +
                 ": allow-file names unknown check '" + check + "'";
        return false;
      }
      std::string why;
      std::getline(ss, why);
      const std::size_t first = why.find_first_not_of(" \t");
      why = first == std::string::npos ? std::string() : why.substr(first);
      if (why.empty()) {
        *error = path + ":" + std::to_string(line_no) +
                 ": allow-file has no written justification; say *why* the "
                 "whole file/directory is exempt";
        return false;
      }
      cfg->allow_files.push_back(AllowFile{value, check, why, line_no});
    } else if (key == "allow-unordered") {
      std::string why;
      std::getline(ss, why);
      const std::size_t first = why.find_first_not_of(" \t");
      why = first == std::string::npos ? std::string() : why.substr(first);
      if (why.empty()) {
        *error = path + ":" + std::to_string(line_no) +
                 ": allow-unordered has no written justification; say *why* "
                 "iteration order over this container is unobservable";
        return false;
      }
      cfg->allow_unordered.push_back(AllowUnordered{value, why, line_no});
    } else if (key == "float-key") {
      cfg->float_keys.push_back(value);
    } else {
      *error = path + ":" + std::to_string(line_no) + ": unknown directive '" + key +
               "' (allow-ref-type | guard-type | sink | exclude | hot-path | "
               "hot-function | expensive-type | allow-copy-type | allow-file | "
               "allow-unordered | float-key)";
      return false;
    }
  }
  return true;
}

std::vector<Finding> analyze_source(const std::string& path, std::string_view source,
                                    const Config& cfg,
                                    std::vector<char>* allow_file_used,
                                    std::vector<char>* allow_unordered_used) {
  Analyzer analyzer(path, lex(source), cfg);
  analyzer.allow_file_used = allow_file_used;
  analyzer.allow_unordered_used = allow_unordered_used;
  return analyzer.run();
}

std::uint64_t fingerprint(const Finding& f) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::string_view s) {
    for (char c : s) {
      // Digits are skipped so line references inside messages do not churn
      // the baseline when unrelated code moves.
      if (c >= '0' && c <= '9') continue;
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;
    h *= 0x100000001b3ULL;
  };
  mix(f.check);
  mix(f.file);
  mix(f.function);
  mix(f.message);
  return h;
}

}  // namespace chase::lint
