/// \file determinism_check.cpp
/// Deterministic-replay race detector for the simulation layer.
///
/// The discrete-event kernel promises that a seeded workflow is a pure
/// function of its inputs: same seed, same event trace, bit for bit. This
/// harness runs the paper's CONNECT workflow N times (default 2) with one
/// seed, hashes every processed event (virtual time and sequence number)
/// plus the end-of-run counters, and fails on any divergence — the analog
/// of a race detector for code that is *supposed* to be single-threaded
/// and ordered. Any nondeterminism (unordered-container iteration leaking
/// into scheduling, address-dependent ordering, uninitialised reads, a
/// stray OS-thread interaction) shows up as a hash mismatch, and the block
/// index narrows down where the traces forked.
///
/// Run it under the `tsan` preset to additionally catch real data races in
/// util::ThreadPool users, and with CHASE_AUDIT_LEVEL=2 to sweep every
/// subsystem's check_invariants() at each checkpoint along the way.
///
///   $ build/tools/determinism_check --seed 1 --seed 2
///   $ build/tools/determinism_check --runs 3 --data-fraction 0.01 --audit
///
/// Exit code 0 iff every seed replays identically.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/connect_workflow.hpp"
#include "core/nautilus.hpp"
#include "sim/event.hpp"
#include "util/check.hpp"

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
constexpr std::uint64_t kEventsPerBlock = 4096;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (value >> (byte * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t bits_of(double d) {
  std::uint64_t u = 0;
  static_assert(sizeof(u) == sizeof(d));
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

/// One run's fingerprint: a rolling hash over the full event trace, closed
/// per-block so a mismatch can be localised to a window of events.
struct Trace {
  std::uint64_t hash = kFnvOffset;
  std::vector<std::uint64_t> block_hashes;
  std::uint64_t events = 0;
  double end_time = 0.0;
  double net_bytes = 0.0;
  double ceph_bytes = 0.0;

  std::uint64_t final_hash() const {
    std::uint64_t h = hash;
    h = fnv1a(h, events);
    h = fnv1a(h, bits_of(end_time));
    h = fnv1a(h, bits_of(net_bytes));
    h = fnv1a(h, bits_of(ceph_bytes));
    return h;
  }
};

Trace run_workflow(std::uint64_t seed, double data_fraction) {
  chase::core::Nautilus bed;
  Trace trace;
  bed.sim.set_trace_hook([&trace](double time, std::uint64_t seq) {
    trace.hash = fnv1a(trace.hash, bits_of(time));
    trace.hash = fnv1a(trace.hash, seq);
    if (++trace.events % kEventsPerBlock == 0) {
      trace.block_hashes.push_back(trace.hash);
    }
  });

  chase::core::ConnectWorkflowParams params;
  params.data_fraction = data_fraction;
  params.inference_gpus = 16;
  params.straggler_seed = seed;
  chase::core::ConnectWorkflow cwf(bed, params);
  auto done = cwf.workflow().start(bed.sim);
  const bool finished = chase::sim::run_until(bed.sim, done);
  if (!finished) {
    std::fprintf(stderr, "determinism_check: workflow did not complete\n");
    std::exit(2);
  }
  trace.block_hashes.push_back(trace.hash);
  trace.end_time = bed.sim.now();
  trace.net_bytes = bed.net.total_bytes_delivered();
  trace.ceph_bytes = bed.ceph->total_bytes_written();
  return trace;
}

/// Returns true iff `a` and `b` agree; prints where they fork otherwise.
bool compare(std::uint64_t seed, const Trace& a, const Trace& b, int run_index) {
  if (a.final_hash() == b.final_hash()) return true;
  std::fprintf(stderr,
               "determinism_check: DIVERGENCE for seed %" PRIu64 " (run 1 vs run %d)\n"
               "  run 1: %" PRIu64 " events, end t=%.9g, hash %016" PRIx64 "\n"
               "  run %d: %" PRIu64 " events, end t=%.9g, hash %016" PRIx64 "\n",
               seed, run_index, a.events, a.end_time, a.final_hash(), run_index,
               b.events, b.end_time, b.final_hash());
  const std::size_t blocks = std::min(a.block_hashes.size(), b.block_hashes.size());
  for (std::size_t i = 0; i < blocks; ++i) {
    if (a.block_hashes[i] != b.block_hashes[i]) {
      std::fprintf(stderr,
                   "  traces fork within events [%" PRIu64 ", %" PRIu64 ")\n",
                   i * kEventsPerBlock, (i + 1) * kEventsPerBlock);
      return false;
    }
  }
  std::fprintf(stderr, "  traces fork after event %" PRIu64 "\n",
               blocks * kEventsPerBlock);
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::uint64_t> seeds;
  int runs = 2;
  double data_fraction = 0.005;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "determinism_check: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seeds.push_back(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--runs") {
      runs = std::atoi(next());
    } else if (arg == "--data-fraction") {
      data_fraction = std::atof(next());
    } else if (arg == "--audit") {
      chase::util::set_audit_level(2);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: determinism_check [--seed N]... [--runs N] [--data-fraction F] [--audit]\n"
          "Replays the seeded CONNECT workflow and fails if the event traces diverge.\n");
      return 0;
    } else {
      std::fprintf(stderr, "determinism_check: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (seeds.empty()) seeds = {1, 2};
  if (runs < 2) runs = 2;

  bool ok = true;
  for (std::uint64_t seed : seeds) {
    const Trace first = run_workflow(seed, data_fraction);
    std::printf("seed %" PRIu64 ": %" PRIu64 " events, end t=%.6g, hash %016" PRIx64 "\n",
                seed, first.events, first.end_time, first.final_hash());
    for (int r = 2; r <= runs; ++r) {
      const Trace replay = run_workflow(seed, data_fraction);
      ok = compare(seed, first, replay, r) && ok;
    }
  }
  if (ok) std::printf("determinism_check: all %zu seed(s) replayed identically\n",
                      seeds.size());
  return ok ? 0 : 1;
}
