/// \file determinism_check.cpp
/// Deterministic-replay race detector for the simulation layer.
///
/// The discrete-event kernel promises that a seeded workflow is a pure
/// function of its inputs: same seed, same event trace, bit for bit. This
/// harness runs the paper's CONNECT workflow N times (default 2) with one
/// seed, hashes every processed event (virtual time and sequence number)
/// plus the end-of-run counters, and fails on any divergence — the analog
/// of a race detector for code that is *supposed* to be single-threaded
/// and ordered. Any nondeterminism (unordered-container iteration leaking
/// into scheduling, address-dependent ordering, uninitialised reads, a
/// stray OS-thread interaction) shows up as a hash mismatch, and the block
/// index narrows down where the traces forked.
///
/// Run it under the `tsan` preset to additionally catch real data races in
/// util::ThreadPool users, and with CHASE_AUDIT_LEVEL=2 to sweep every
/// subsystem's check_invariants() at each checkpoint along the way.
///
///   $ build/tools/determinism_check --seed 1 --seed 2
///   $ build/tools/determinism_check --runs 3 --data-fraction 0.01 --audit
///   $ build/tools/determinism_check --chaos --seed 1
///   $ build/tools/determinism_check --sites 4 --chaos
///
/// `--chaos` additionally arms a fixed, seeded ChaosPlan (GPU-node crashes,
/// a THREDDS-uplink partition, an OSD failure, a Redis pod kill) against the
/// running workflow and fingerprints the executed fault trace alongside the
/// event trace: the fault *paths* — eviction, requeue, lease redelivery,
/// PG recovery — must replay bit-identically too.
///
/// Exit code 0 iff every seed replays identically.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "chaos/chaos.hpp"
#include "cluster/machine.hpp"
#include "core/connect_workflow.hpp"
#include "core/nautilus.hpp"
#include "kube/cluster.hpp"
#include "kube/federation.hpp"
#include "net/network.hpp"
#include "sim/event.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
constexpr std::uint64_t kEventsPerBlock = 4096;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (value >> (byte * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t bits_of(double d) {
  std::uint64_t u = 0;
  static_assert(sizeof(u) == sizeof(d));
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

/// One run's fingerprint: a rolling hash over the full event trace, closed
/// per-block so a mismatch can be localised to a window of events.
struct Trace {
  std::uint64_t hash = kFnvOffset;
  std::vector<std::uint64_t> block_hashes;
  std::uint64_t events = 0;
  double end_time = 0.0;
  double net_bytes = 0.0;
  double ceph_bytes = 0.0;
  // --chaos only: rolling hash and count of executed faults.
  std::uint64_t fault_hash = kFnvOffset;
  std::uint64_t faults = 0;

  std::uint64_t final_hash() const {
    std::uint64_t h = hash;
    h = fnv1a(h, events);
    h = fnv1a(h, bits_of(end_time));
    h = fnv1a(h, bits_of(net_bytes));
    h = fnv1a(h, bits_of(ceph_bytes));
    h = fnv1a(h, fault_hash);
    h = fnv1a(h, faults);
    return h;
  }
};

/// The --chaos fault schedule. Deliberately fixed (same plan every run, every
/// seed): the point is not fault variety but that the *recovery* event trace
/// is a pure function of (plan, seed). Times sit inside the smoke-scale
/// CONNECT run so every fault actually fires while its step is in flight.
chase::chaos::ChaosPlan chaos_plan(chase::core::Nautilus& bed,
                                   const chase::core::ConnectWorkflow& cwf) {
  chase::chaos::ChaosPlan plan(/*seed=*/2029);
  // Step 1 (download): partition the THREDDS uplink, heal after 3 minutes;
  // kill the Redis pod so the ReplicaSet has to self-heal and the queue
  // leases have to redeliver.
  const chase::net::LinkId uplink =
      bed.net.find_link(bed.thredds->node(), bed.site_switch(0));
  plan.partition_link(/*at=*/120.0, uplink, /*down_for=*/180.0);
  plan.kill_pods(/*at=*/400.0, cwf.params().ns, {{"app", "redis"}});
  // Storage: one OSD drops out and comes back; PG recovery traffic races
  // the workload's own writes.
  plan.fail_osd(/*at=*/300.0, /*osd=*/3, /*down_for=*/300.0);
  // Compute: a fifth of the GPU fleet crashes mid-run and recovers later;
  // evicted pods must requeue their shards.
  plan.crash_fraction(/*at=*/900.0, bed.gpu_machines(), /*fraction=*/0.20,
                      /*down_for=*/600.0);
  return plan;
}

Trace run_workflow(std::uint64_t seed, double data_fraction, bool with_chaos) {
  chase::core::Nautilus bed;
  Trace trace;
  bed.sim.set_trace_hook([&trace](double time, std::uint64_t seq) {
    trace.hash = fnv1a(trace.hash, bits_of(time));
    trace.hash = fnv1a(trace.hash, seq);
    if (++trace.events % kEventsPerBlock == 0) {
      trace.block_hashes.push_back(trace.hash);
    }
  });

  chase::core::ConnectWorkflowParams params;
  params.data_fraction = data_fraction;
  params.inference_gpus = 16;
  params.straggler_seed = seed;
  chase::core::ConnectWorkflow cwf(bed, params);

  std::unique_ptr<chase::chaos::ChaosInjector> injector;
  if (with_chaos) {
    injector = std::make_unique<chase::chaos::ChaosInjector>(
        bed.sim, bed.net, bed.inventory, chaos_plan(bed, cwf), bed.kube.get(),
        bed.ceph.get(), &bed.metrics);
    injector->set_fault_hook(
        [&trace](chase::chaos::FaultKind kind, double when, int victims) {
          trace.fault_hash = fnv1a(trace.fault_hash,
                                   static_cast<std::uint64_t>(kind));
          trace.fault_hash = fnv1a(trace.fault_hash, bits_of(when));
          trace.fault_hash = fnv1a(trace.fault_hash,
                                   static_cast<std::uint64_t>(victims));
          ++trace.faults;
        });
    injector->arm();
  }

  auto done = cwf.workflow().start(bed.sim);
  const bool finished = chase::sim::run_until(bed.sim, done);
  if (!finished) {
    std::fprintf(stderr, "determinism_check: workflow did not complete\n");
    std::exit(2);
  }
  trace.block_hashes.push_back(trace.hash);
  trace.end_time = bed.sim.now();
  trace.net_bytes = bed.net.total_bytes_delivered();
  trace.ceph_bytes = bed.ceph->total_bytes_written();
  return trace;
}

/// --sites N: a synthetic federation scenario instead of the CONNECT
/// workflow. N sites of FIONA8s behind per-site cores joined by a 100GbE
/// WAN mesh, one KubeCluster per site, a seeded job stream routed by the
/// FederationController (data-locality + headroom placement, image pulls
/// from a site-0 registry crossing the WAN). Under --chaos a site-granular
/// fault plan runs against it — island the last site, crash a quarter of
/// site 1 — and the fault trace is fingerprinted like the event trace: the
/// hierarchical route caches, the label/feasibility indexes, and the
/// sampled scheduler must all replay bit-identically under site faults.
Trace run_federation(std::uint64_t seed, int sites, bool with_chaos) {
  namespace ck = chase::kube;
  namespace cc = chase::cluster;

  chase::sim::Simulation sim;
  chase::net::Network net(sim);
  cc::Inventory inventory(net);
  Trace trace;
  sim.set_trace_hook([&trace](double time, std::uint64_t seq) {
    trace.hash = fnv1a(trace.hash, bits_of(time));
    trace.hash = fnv1a(trace.hash, seq);
    if (++trace.events % kEventsPerBlock == 0) {
      trace.block_hashes.push_back(trace.hash);
    }
  });

  constexpr int kNodesPerSite = 16;
  std::vector<chase::net::NodeId> cores;
  for (int s = 0; s < sites; ++s) {
    const std::string site = "site-" + std::to_string(s);
    cores.push_back(net.add_node(site + "-core", s));
    for (int i = 0; i < kNodesPerSite; ++i) {
      const chase::net::NodeId leaf = net.add_node(site + "-n" + std::to_string(i), s);
      net.add_link(leaf, cores.back(), chase::util::gbit_per_s(10.0), 0.5e-3);
      inventory.add(cc::fiona8(site + "-n" + std::to_string(i), site), leaf);
    }
  }
  for (int a = 0; a < sites; ++a) {
    for (int b = a + 1; b < sites; ++b) {
      net.add_link(cores[static_cast<std::size_t>(a)],
                   cores[static_cast<std::size_t>(b)],
                   chase::util::gbit_per_s(100.0), 30e-3);
    }
  }

  ck::KubeCluster::Options opt;
  opt.registry_node = cores[0];
  std::vector<std::unique_ptr<ck::KubeCluster>> clusters;
  ck::FederationController fed;
  for (int s = 0; s < sites; ++s) {
    const std::string site = "site-" + std::to_string(s);
    clusters.push_back(
        std::make_unique<ck::KubeCluster>(sim, net, inventory, nullptr, opt));
    for (cc::MachineId m : inventory.at_site(site)) clusters.back()->register_node(m);
    fed.add_site(site, *clusters.back(), {"ds-" + std::to_string(s)});
  }

  chase::util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  for (int j = 0; j < 8 * sites; ++j) {
    ck::JobSpec job;
    job.ns = "default";
    job.name = "fedjob-" + std::to_string(j);
    ck::ContainerSpec c;
    c.requests = {2.0, chase::util::gb(2.0), 1};
    const double run_s = rng.uniform(1.0, 5.0);
    c.program = [run_s](ck::PodContext& ctx) -> chase::sim::Task {
      co_await ctx.sim().sleep(run_s);
    };
    job.pod_template.containers.push_back(std::move(c));
    job.completions = 24;
    job.parallelism = 4;
    job.backoff_limit = 1 << 20;
    auto r = fed.submit_job(std::move(job), "ds-" + std::to_string(j % sites));
    if (!r.ok()) {
      std::fprintf(stderr, "determinism_check: federation submit failed: %s\n",
                   r.error.c_str());
      std::exit(2);
    }
  }

  std::unique_ptr<chase::chaos::ChaosInjector> injector;
  if (with_chaos) {
    chase::chaos::ChaosPlan plan(/*seed=*/2029);
    plan.partition_site(/*at=*/20.0, /*site=*/sites - 1, /*down_for=*/30.0);
    plan.crash_fraction(/*at=*/35.0, inventory.at_site("site-1"),
                        /*fraction=*/0.25, /*down_for=*/25.0);
    injector = std::make_unique<chase::chaos::ChaosInjector>(sim, net, inventory,
                                                             plan);
    injector->set_fault_hook(
        [&trace](chase::chaos::FaultKind kind, double when, int victims) {
          trace.fault_hash = fnv1a(trace.fault_hash,
                                   static_cast<std::uint64_t>(kind));
          trace.fault_hash = fnv1a(trace.fault_hash, bits_of(when));
          trace.fault_hash = fnv1a(trace.fault_hash,
                                   static_cast<std::uint64_t>(victims));
          ++trace.faults;
        });
    injector->arm();
  }

  sim.run();
  trace.block_hashes.push_back(trace.hash);
  trace.end_time = sim.now();
  trace.net_bytes = net.total_bytes_delivered();
  trace.ceph_bytes = 0.0;
  return trace;
}

/// Returns true iff `a` and `b` agree; prints where they fork otherwise.
/// Agreement is a raw memcmp of the full per-block hash sequence plus
/// every counter compared bitwise — not just final_hash() equality, so a
/// (vanishingly unlikely) rolling-hash collision cannot mask a divergence
/// and intra-process state leakage between runs shows up even when it
/// cancels out of the final digest.
bool compare(std::uint64_t seed, const Trace& a, const Trace& b, int run_index) {
  const bool blocks_equal =
      a.block_hashes.size() == b.block_hashes.size() &&
      (a.block_hashes.empty() ||
       std::memcmp(a.block_hashes.data(), b.block_hashes.data(),
                   a.block_hashes.size() * sizeof(std::uint64_t)) == 0);
  if (blocks_equal && a.hash == b.hash && a.events == b.events &&
      bits_of(a.end_time) == bits_of(b.end_time) &&
      bits_of(a.net_bytes) == bits_of(b.net_bytes) &&
      bits_of(a.ceph_bytes) == bits_of(b.ceph_bytes) &&
      a.fault_hash == b.fault_hash && a.faults == b.faults) {
    return true;
  }
  std::fprintf(stderr,
               "determinism_check: DIVERGENCE for seed %" PRIu64 " (run 1 vs run %d)\n"
               "  run 1: %" PRIu64 " events, %" PRIu64 " faults, end t=%.9g, hash %016" PRIx64 "\n"
               "  run %d: %" PRIu64 " events, %" PRIu64 " faults, end t=%.9g, hash %016" PRIx64 "\n",
               seed, run_index, a.events, a.faults, a.end_time, a.final_hash(),
               run_index, b.events, b.faults, b.end_time, b.final_hash());
  if (a.fault_hash != b.fault_hash) {
    std::fprintf(stderr, "  fault traces differ (kind/time/victims fingerprint)\n");
  }
  const std::size_t blocks = std::min(a.block_hashes.size(), b.block_hashes.size());
  for (std::size_t i = 0; i < blocks; ++i) {
    if (a.block_hashes[i] != b.block_hashes[i]) {
      std::fprintf(stderr,
                   "  traces fork within events [%" PRIu64 ", %" PRIu64 ")\n",
                   i * kEventsPerBlock, (i + 1) * kEventsPerBlock);
      return false;
    }
  }
  std::fprintf(stderr, "  traces fork after event %" PRIu64 "\n",
               blocks * kEventsPerBlock);
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::uint64_t> seeds;
  int runs = 2;
  double data_fraction = 0.005;
  bool with_chaos = false;
  int fed_sites = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "determinism_check: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seeds.push_back(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--runs") {
      runs = std::atoi(next());
    } else if (arg == "--data-fraction") {
      data_fraction = std::atof(next());
    } else if (arg == "--audit") {
      chase::util::set_audit_level(2);
    } else if (arg == "--chaos") {
      with_chaos = true;
    } else if (arg == "--sites") {
      fed_sites = std::atoi(next());
      if (fed_sites < 2) {
        std::fprintf(stderr, "determinism_check: --sites needs N >= 2\n");
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: determinism_check [--seed N]... [--runs N] [--data-fraction F] [--audit] [--chaos] [--sites N]\n"
          "Replays the seeded CONNECT workflow and fails if the event traces diverge.\n"
          "--chaos arms a fixed fault plan and fingerprints the fault trace too.\n"
          "--sites N replays an N-site federation scenario instead (WAN mesh,\n"
          "per-site clusters, federated placement; --chaos adds a site partition).\n");
      return 0;
    } else {
      std::fprintf(stderr, "determinism_check: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (seeds.empty()) seeds = {1, 2};
  if (runs < 2) runs = 2;

  bool ok = true;
  auto run_once = [&](std::uint64_t seed) {
    return fed_sites > 0 ? run_federation(seed, fed_sites, with_chaos)
                         : run_workflow(seed, data_fraction, with_chaos);
  };
  for (std::uint64_t seed : seeds) {
    const Trace first = run_once(seed);
    std::printf("seed %" PRIu64 ": %" PRIu64 " events, %" PRIu64
                " faults, end t=%.6g, hash %016" PRIx64 "\n",
                seed, first.events, first.faults, first.end_time,
                first.final_hash());
    if (with_chaos && first.faults == 0) {
      std::fprintf(stderr,
                   "determinism_check: --chaos executed no faults; the plan "
                   "no longer overlaps the run\n");
      ok = false;
    }
    for (int r = 2; r <= runs; ++r) {
      const Trace replay = run_once(seed);
      ok = compare(seed, first, replay, r) && ok;
    }
  }
  if (ok) std::printf("determinism_check: all %zu seed(s) replayed identically\n",
                      seeds.size());
  return ok ? 0 : 1;
}
