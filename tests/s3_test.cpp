/// Tests for the S3-compatible object gateway over Ceph.

#include <gtest/gtest.h>

#include "ceph/s3.hpp"

namespace ce = chase::ceph;
namespace cc = chase::cluster;
namespace cn = chase::net;
namespace cs = chase::sim;
namespace cu = chase::util;

namespace {

struct S3Bed {
  cs::Simulation sim;
  cn::Network net{sim};
  cc::Inventory inventory{net};
  cn::NodeId client;
  std::unique_ptr<ce::CephCluster> ceph;
  std::unique_ptr<ce::S3Gateway> s3;

  S3Bed() {
    auto sw = net.add_node("switch");
    client = net.add_node("client");
    net.add_link(client, sw, cu::gbit_per_s(40), 1e-4);
    ce::CephCluster::Options opts;
    opts.replication = 2;
    ceph = std::make_unique<ce::CephCluster>(sim, net, inventory, nullptr, opts);
    for (int i = 0; i < 4; ++i) {
      auto name = "stor-" + std::to_string(i);
      auto nn = net.add_node(name);
      net.add_link(nn, sw, cu::gbit_per_s(40), 1e-4);
      ceph->add_osd(inventory.add(cc::storage_fiona(name, "SDSC", cu::tb(50)), nn));
    }
    s3 = std::make_unique<ce::S3Gateway>(*ceph);
  }
};

}  // namespace

TEST(S3, BucketLifecycle) {
  S3Bed bed;
  EXPECT_TRUE(bed.s3->create_bucket("merra"));
  EXPECT_FALSE(bed.s3->create_bucket("merra"));  // duplicate
  EXPECT_FALSE(bed.s3->create_bucket(""));
  EXPECT_TRUE(bed.s3->bucket_exists("merra"));
  EXPECT_EQ(bed.s3->list_buckets(), (std::vector<std::string>{"merra"}));
  EXPECT_TRUE(bed.s3->delete_bucket("merra"));
  EXPECT_FALSE(bed.s3->bucket_exists("merra"));
}

TEST(S3, PutGetHeadDelete) {
  S3Bed bed;
  bed.s3->create_bucket("results");
  auto put = bed.s3->put_object(bed.client, "results", "run1/segments.h5", cu::gb(1));
  bed.sim.run();
  ASSERT_TRUE(put->ok);
  EXPECT_EQ(*bed.s3->head_object("results", "run1/segments.h5"), cu::gb(1));

  auto get = bed.s3->get_object(bed.client, "results", "run1/segments.h5");
  bed.sim.run();
  EXPECT_TRUE(get->ok);
  EXPECT_EQ(get->bytes, cu::gb(1));

  EXPECT_TRUE(bed.s3->delete_object("results", "run1/segments.h5"));
  EXPECT_FALSE(bed.s3->delete_object("results", "run1/segments.h5"));
  EXPECT_FALSE(bed.s3->head_object("results", "run1/segments.h5").has_value());
}

TEST(S3, PutToMissingBucketFails) {
  S3Bed bed;
  auto put = bed.s3->put_object(bed.client, "nope", "key", 100);
  bed.sim.run();
  EXPECT_FALSE(put->ok);
}

TEST(S3, ListObjectsByPrefix) {
  S3Bed bed;
  bed.s3->create_bucket("b");
  for (const char* key : {"runs/1/a", "runs/1/b", "runs/2/a", "models/x"}) {
    bed.s3->put_object(bed.client, "b", key, cu::mb(10));
  }
  bed.sim.run();
  EXPECT_EQ(bed.s3->list_objects("b").size(), 4u);
  EXPECT_EQ(bed.s3->list_objects("b", "runs/").size(), 3u);
  EXPECT_EQ(bed.s3->list_objects("b", "runs/1/").size(), 2u);
  EXPECT_EQ(bed.s3->list_objects("b", "zzz").size(), 0u);
  EXPECT_EQ(bed.s3->list_objects("missing").size(), 0u);
}

TEST(S3, NonEmptyBucketCannotBeDeleted) {
  S3Bed bed;
  bed.s3->create_bucket("b");
  bed.s3->put_object(bed.client, "b", "k", 100);
  bed.sim.run();
  EXPECT_FALSE(bed.s3->delete_bucket("b"));
  bed.s3->delete_object("b", "k");
  EXPECT_TRUE(bed.s3->delete_bucket("b"));
}

TEST(S3, MultipartUploadComposes) {
  S3Bed bed;
  bed.s3->create_bucket("archive");
  auto id = bed.s3->initiate_multipart("archive", "big.tar");
  ASSERT_FALSE(id.empty());
  // Parts out of order.
  auto p2 = bed.s3->upload_part(bed.client, id, 2, cu::gb(1));
  auto p1 = bed.s3->upload_part(bed.client, id, 1, cu::gb(2));
  auto p3 = bed.s3->upload_part(bed.client, id, 3, cu::mb(500));
  bed.sim.run();
  ASSERT_TRUE(p1->ok && p2->ok && p3->ok);

  auto done = bed.s3->complete_multipart(id);
  bed.sim.run();
  ASSERT_TRUE(done->ok);
  EXPECT_EQ(done->bytes, cu::gb(3) + cu::mb(500));
  EXPECT_EQ(*bed.s3->head_object("archive", "big.tar"), cu::gb(3) + cu::mb(500));
  // Parts were freed: only the composed object remains in the pool.
  EXPECT_EQ(bed.ceph->object_count("s3-objects"), 1u);
  // Capacity accounting: 3.5GB x replication 2.
  cu::Bytes used = 0;
  for (int osd = 0; osd < 4; ++osd) used += bed.ceph->osd_used(osd);
  EXPECT_EQ(used, (cu::gb(3) + cu::mb(500)) * 2);
}

TEST(S3, MultipartAbortFreesParts) {
  S3Bed bed;
  bed.s3->create_bucket("b");
  auto id = bed.s3->initiate_multipart("b", "k");
  bed.s3->upload_part(bed.client, id, 1, cu::gb(1));
  bed.sim.run();
  bed.s3->abort_multipart(id);
  EXPECT_EQ(bed.ceph->object_count("s3-objects"), 0u);
  // Completing an aborted upload fails.
  auto done = bed.s3->complete_multipart(id);
  bed.sim.run();
  EXPECT_FALSE(done->ok);
}

TEST(S3, MultipartToMissingBucketRejected) {
  S3Bed bed;
  EXPECT_TRUE(bed.s3->initiate_multipart("ghost", "k").empty());
  auto part = bed.s3->upload_part(bed.client, "bogus-id", 1, 100);
  bed.sim.run();
  EXPECT_FALSE(part->ok);
}

TEST(S3, ComposePreservesReadability) {
  S3Bed bed;
  bed.s3->create_bucket("b");
  auto id = bed.s3->initiate_multipart("b", "k");
  for (int part = 1; part <= 5; ++part) {
    bed.s3->upload_part(bed.client, id, part, cu::mb(100));
  }
  bed.sim.run();
  auto done = bed.s3->complete_multipart(id);
  bed.sim.run();
  ASSERT_TRUE(done->ok);
  auto get = bed.s3->get_object(bed.client, "b", "k");
  bed.sim.run();
  EXPECT_TRUE(get->ok);
  EXPECT_EQ(get->bytes, cu::mb(100) * 5);
}
