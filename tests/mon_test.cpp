#include <gtest/gtest.h>

#include "mon/metrics.hpp"
#include "sim/simulation.hpp"

namespace cm = chase::mon;
namespace cs = chase::sim;

TEST(TimeSeries, Stats) {
  cm::TimeSeries ts;
  ts.append(0, 1);
  ts.append(10, 5);
  ts.append(20, 3);
  EXPECT_DOUBLE_EQ(ts.max_over_time(), 5);
  EXPECT_DOUBLE_EQ(ts.min_over_time(), 1);
  EXPECT_DOUBLE_EQ(ts.avg_over_time(), 3);
  EXPECT_DOUBLE_EQ(ts.last(), 3);
  EXPECT_DOUBLE_EQ(ts.rate(), (3.0 - 1.0) / 20.0);
}

TEST(TimeSeries, ValueAtStepInterpolation) {
  cm::TimeSeries ts;
  ts.append(10, 1);
  ts.append(20, 2);
  EXPECT_DOUBLE_EQ(ts.value_at(5), 0);
  EXPECT_DOUBLE_EQ(ts.value_at(10), 1);
  EXPECT_DOUBLE_EQ(ts.value_at(15), 1);
  EXPECT_DOUBLE_EQ(ts.value_at(25), 2);
}

TEST(TimeSeries, EmptySeriesSafe) {
  cm::TimeSeries ts;
  EXPECT_DOUBLE_EQ(ts.max_over_time(), 0);
  EXPECT_DOUBLE_EQ(ts.rate(), 0);
  EXPECT_DOUBLE_EQ(ts.value_at(100), 0);
}

TEST(Registry, ProbeSampling) {
  cs::Simulation sim;
  cm::Registry reg;
  double cpu = 0.0;
  reg.register_probe("cpu", {{"pod", "w1"}}, [&] { return cpu; });
  auto stop = cs::make_event();
  reg.start_sampler(sim, 10.0, stop);
  sim.schedule(15.0, [&] { cpu = 4.0; });
  sim.schedule(35.0, [&] { stop->trigger(sim); });
  sim.run(60.0);
  const auto* ts = reg.find("cpu", {{"pod", "w1"}});
  ASSERT_NE(ts, nullptr);
  // Samples at t=0,10,20,30,40 (final sample after stop fired).
  ASSERT_GE(ts->samples().size(), 4u);
  EXPECT_DOUBLE_EQ(ts->value_at(10), 0.0);
  EXPECT_DOUBLE_EQ(ts->value_at(20), 4.0);
}

TEST(Registry, SamplerStopsAfterEvent) {
  cs::Simulation sim;
  cm::Registry reg;
  reg.register_probe("g", {}, [] { return 1.0; });
  auto stop = cs::make_event();
  reg.start_sampler(sim, 5.0, stop);
  sim.schedule(12.0, [&] { stop->trigger(sim); });
  sim.run(1000.0);
  // The queue must drain: no endless sampler.
  EXPECT_TRUE(sim.empty());
}

TEST(Registry, SelectByLabelSubset) {
  cm::Registry reg;
  reg.record("mem", {{"pod", "a"}, {"step", "1"}}, 0, 10);
  reg.record("mem", {{"pod", "b"}, {"step", "1"}}, 0, 20);
  reg.record("mem", {{"pod", "c"}, {"step", "2"}}, 0, 40);
  EXPECT_EQ(reg.select("mem").size(), 3u);
  EXPECT_EQ(reg.select("mem", {{"step", "1"}}).size(), 2u);
  EXPECT_EQ(reg.select("mem", {{"step", "2"}}).size(), 1u);
  EXPECT_EQ(reg.select("other").size(), 0u);
}

TEST(Registry, SumAtAndMaxSum) {
  cm::Registry reg;
  reg.record("mem", {{"pod", "a"}}, 0, 10);
  reg.record("mem", {{"pod", "a"}}, 10, 30);
  reg.record("mem", {{"pod", "b"}}, 0, 5);
  reg.record("mem", {{"pod", "b"}}, 10, 1);
  EXPECT_DOUBLE_EQ(reg.sum_at("mem", {}, 0), 15);
  EXPECT_DOUBLE_EQ(reg.sum_at("mem", {}, 10), 31);
  EXPECT_DOUBLE_EQ(reg.max_sum("mem", {}), 31);
}

TEST(Registry, UnregisterProbeStopsSampling) {
  cs::Simulation sim;
  cm::Registry reg;
  reg.register_probe("x", {{"i", "1"}}, [] { return 1.0; });
  reg.sample_now(0);
  reg.unregister_probe("x", {{"i", "1"}});
  reg.sample_now(1);
  EXPECT_EQ(reg.find("x", {{"i", "1"}})->samples().size(), 1u);
}

TEST(Registry, ChartContainsSeriesName) {
  cm::Registry reg;
  for (int i = 0; i < 10; ++i) reg.record("gpu", {{"pod", "inf-0"}}, i, i % 3);
  std::string chart = reg.chart("GPU usage", "gpus", "gpu");
  EXPECT_NE(chart.find("inf-0"), std::string::npos);
  EXPECT_NE(chart.find("GPU usage"), std::string::npos);
}

TEST(Registry, KeyToString) {
  EXPECT_EQ(cm::key_to_string({"cpu", {}}), "cpu");
  EXPECT_EQ(cm::key_to_string({"cpu", {{"pod", "a"}}}), "cpu{pod=a}");
}
