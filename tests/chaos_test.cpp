#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "chaos/chaos.hpp"
#include "core/connect_workflow.hpp"
#include "core/nautilus.hpp"
#include "sim/event.hpp"

namespace cc = chase::cluster;
namespace ch = chase::chaos;
namespace cn = chase::net;
namespace co = chase::core;
namespace cs = chase::sim;

TEST(ChaosInjector, PartitionAndHealLink) {
  co::Nautilus bed;
  const cn::LinkId uplink = bed.net.find_link(bed.thredds->node(), bed.site_switch(0));
  ASSERT_GE(uplink, 0);

  ch::ChaosPlan plan;
  plan.partition_link(/*at=*/10.0, uplink, /*down_for=*/20.0);
  ch::ChaosInjector injector(bed.sim, bed.net, bed.inventory, plan);
  injector.arm();

  bed.sim.run(15.0);
  EXPECT_FALSE(bed.net.link_up(uplink));
  bed.sim.run(40.0);
  EXPECT_TRUE(bed.net.link_up(uplink));
  EXPECT_EQ(injector.report().link_partitions, 1);
  EXPECT_EQ(injector.report().link_heals, 1);
}

TEST(ChaosInjector, DegradeScalesBandwidthAndRestores) {
  co::Nautilus bed;
  const cn::LinkId uplink = bed.net.find_link(bed.thredds->node(), bed.site_switch(0));
  ch::ChaosPlan plan;
  plan.degrade_link(5.0, uplink, /*factor=*/0.25, /*degraded_for=*/10.0);
  ch::ChaosInjector injector(bed.sim, bed.net, bed.inventory, plan);
  injector.arm();

  bed.sim.run(7.0);
  EXPECT_DOUBLE_EQ(bed.net.link_bandwidth_factor(uplink), 0.25);
  bed.sim.run(20.0);
  EXPECT_DOUBLE_EQ(bed.net.link_bandwidth_factor(uplink), 1.0);
  EXPECT_EQ(injector.report().link_degradations, 1);
  EXPECT_EQ(injector.report().link_restores, 1);
}

TEST(ChaosInjector, NodeDegradeScalesEveryLinkAndRestores) {
  // A straggler node, not a dead one: every link at the machine's endpoint
  // drops to 10% of built bandwidth, then restores.
  co::Nautilus bed;
  const cc::MachineId victim = bed.gpu_machines().front();
  const cn::NodeId node = bed.inventory.machine(victim).net_node;
  const int links = static_cast<int>(bed.net.links_at(node).size());
  ASSERT_GE(links, 1);

  ch::ChaosPlan plan;
  plan.degrade_node(5.0, victim, /*factor=*/0.1, /*degraded_for=*/10.0);
  ch::ChaosInjector injector(bed.sim, bed.net, bed.inventory, plan);
  injector.arm();

  bed.sim.run(7.0);
  for (cn::LinkId l : bed.net.links_at(node)) {
    EXPECT_DOUBLE_EQ(bed.net.link_bandwidth_factor(l), 0.1);
  }
  bed.sim.run(20.0);
  for (cn::LinkId l : bed.net.links_at(node)) {
    EXPECT_DOUBLE_EQ(bed.net.link_bandwidth_factor(l), 1.0);
  }
  EXPECT_EQ(injector.report().node_degradations, links);
  EXPECT_EQ(injector.report().node_restores, links);
  EXPECT_EQ(injector.report().events_executed, 2);
}

TEST(ChaosInjector, NodeCrashFractionIsDeterministicPerSeed) {
  // Same plan + seed => same victims, different seed => (almost surely)
  // different ones. Victims must be distinct and come from the pool.
  auto victims_for = [](std::uint64_t seed) {
    co::Nautilus bed;
    ch::ChaosPlan plan(seed);
    plan.crash_fraction(1.0, bed.gpu_machines(), 0.25);
    ch::ChaosInjector injector(bed.sim, bed.net, bed.inventory, plan);
    injector.arm();
    bed.sim.run(2.0);
    std::vector<cc::MachineId> down;
    for (cc::MachineId m : bed.gpu_machines()) {
      if (!bed.inventory.up(m)) down.push_back(m);
    }
    return down;
  };
  const auto a = victims_for(7);
  const auto b = victims_for(7);
  const auto c = victims_for(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 4u);  // ceil(0.25 * 16 machines)
}

TEST(ChaosInjector, NodeCrashRecoversAfterDuration) {
  co::Nautilus bed;
  const cc::MachineId victim = bed.gpu_machines().front();
  ch::ChaosPlan plan;
  plan.crash_node(5.0, victim, /*down_for=*/10.0);
  ch::ChaosInjector injector(bed.sim, bed.net, bed.inventory, plan, bed.kube.get(),
                             bed.ceph.get(), &bed.metrics);
  injector.arm();
  bed.sim.run(7.0);
  EXPECT_FALSE(bed.inventory.up(victim));
  bed.sim.run(20.0);
  EXPECT_TRUE(bed.inventory.up(victim));
  EXPECT_EQ(injector.report().node_crashes, 1);
  EXPECT_EQ(injector.report().node_recoveries, 1);
}

TEST(ChaosInjector, OsdFailureRemapsAndRecovers) {
  co::Nautilus bed;
  ch::ChaosPlan plan;
  plan.fail_osd(2.0, /*osd=*/0, /*down_for=*/30.0);
  ch::ChaosInjector injector(bed.sim, bed.net, bed.inventory, plan, bed.kube.get(),
                             bed.ceph.get(), &bed.metrics);
  injector.arm();
  bed.sim.run(100.0);  // fail, remap, recover, re-remap
  EXPECT_EQ(injector.report().osd_failures, 1);
  EXPECT_EQ(injector.report().osd_recoveries, 1);
  bed.ceph->check_invariants();  // replica placement clean after the churn
}

TEST(ChaosInjector, ConnectStep1SurvivesWorkerNodeCrashes) {
  // End-to-end: the download step completes with every file accounted for
  // even when machines crash mid-download (pods rescheduled, queue leases
  // redelivered, slabs refetched).
  co::Nautilus bed;
  co::ConnectWorkflowParams params;
  params.data_fraction = 0.01;
  params.steps = {1};
  params.queue_lease_ttl = 60.0;
  co::ConnectWorkflow cwf(bed, params);

  ch::ChaosPlan plan(/*seed=*/11);
  plan.crash_fraction(/*at=*/20.0, bed.gpu_machines(), 0.25, /*down_for=*/120.0);
  ch::ChaosInjector injector(bed.sim, bed.net, bed.inventory, plan, bed.kube.get(),
                             bed.ceph.get(), &bed.metrics);
  injector.arm();

  auto done = cwf.workflow().start(bed.sim);
  ASSERT_TRUE(cs::run_until(bed.sim, done));
  EXPECT_TRUE(cwf.workflow().finished());
  EXPECT_EQ(cwf.files_fetched(), cwf.scaled_file_count());
  EXPECT_GT(injector.report().node_crashes, 0);
}
