#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "chaos/chaos.hpp"
#include "core/connect_workflow.hpp"
#include "core/nautilus.hpp"
#include "kube/cluster.hpp"
#include "sim/event.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace cc = chase::cluster;
namespace ch = chase::chaos;
namespace cn = chase::net;
namespace co = chase::core;
namespace cs = chase::sim;

TEST(ChaosInjector, PartitionAndHealLink) {
  co::Nautilus bed;
  const cn::LinkId uplink = bed.net.find_link(bed.thredds->node(), bed.site_switch(0));
  ASSERT_GE(uplink, 0);

  ch::ChaosPlan plan;
  plan.partition_link(/*at=*/10.0, uplink, /*down_for=*/20.0);
  ch::ChaosInjector injector(bed.sim, bed.net, bed.inventory, plan);
  injector.arm();

  bed.sim.run(15.0);
  EXPECT_FALSE(bed.net.link_up(uplink));
  bed.sim.run(40.0);
  EXPECT_TRUE(bed.net.link_up(uplink));
  EXPECT_EQ(injector.report().link_partitions, 1);
  EXPECT_EQ(injector.report().link_heals, 1);
}

TEST(ChaosInjector, DegradeScalesBandwidthAndRestores) {
  co::Nautilus bed;
  const cn::LinkId uplink = bed.net.find_link(bed.thredds->node(), bed.site_switch(0));
  ch::ChaosPlan plan;
  plan.degrade_link(5.0, uplink, /*factor=*/0.25, /*degraded_for=*/10.0);
  ch::ChaosInjector injector(bed.sim, bed.net, bed.inventory, plan);
  injector.arm();

  bed.sim.run(7.0);
  EXPECT_DOUBLE_EQ(bed.net.link_bandwidth_factor(uplink), 0.25);
  bed.sim.run(20.0);
  EXPECT_DOUBLE_EQ(bed.net.link_bandwidth_factor(uplink), 1.0);
  EXPECT_EQ(injector.report().link_degradations, 1);
  EXPECT_EQ(injector.report().link_restores, 1);
}

TEST(ChaosInjector, NodeDegradeScalesEveryLinkAndRestores) {
  // A straggler node, not a dead one: every link at the machine's endpoint
  // drops to 10% of built bandwidth, then restores.
  co::Nautilus bed;
  const cc::MachineId victim = bed.gpu_machines().front();
  const cn::NodeId node = bed.inventory.machine(victim).net_node;
  const int links = static_cast<int>(bed.net.links_at(node).size());
  ASSERT_GE(links, 1);

  ch::ChaosPlan plan;
  plan.degrade_node(5.0, victim, /*factor=*/0.1, /*degraded_for=*/10.0);
  ch::ChaosInjector injector(bed.sim, bed.net, bed.inventory, plan);
  injector.arm();

  bed.sim.run(7.0);
  for (cn::LinkId l : bed.net.links_at(node)) {
    EXPECT_DOUBLE_EQ(bed.net.link_bandwidth_factor(l), 0.1);
  }
  bed.sim.run(20.0);
  for (cn::LinkId l : bed.net.links_at(node)) {
    EXPECT_DOUBLE_EQ(bed.net.link_bandwidth_factor(l), 1.0);
  }
  EXPECT_EQ(injector.report().node_degradations, links);
  EXPECT_EQ(injector.report().node_restores, links);
  EXPECT_EQ(injector.report().events_executed, 2);
}

TEST(ChaosInjector, NodeCrashFractionIsDeterministicPerSeed) {
  // Same plan + seed => same victims, different seed => (almost surely)
  // different ones. Victims must be distinct and come from the pool.
  auto victims_for = [](std::uint64_t seed) {
    co::Nautilus bed;
    ch::ChaosPlan plan(seed);
    plan.crash_fraction(1.0, bed.gpu_machines(), 0.25);
    ch::ChaosInjector injector(bed.sim, bed.net, bed.inventory, plan);
    injector.arm();
    bed.sim.run(2.0);
    std::vector<cc::MachineId> down;
    for (cc::MachineId m : bed.gpu_machines()) {
      if (!bed.inventory.up(m)) down.push_back(m);
    }
    return down;
  };
  const auto a = victims_for(7);
  const auto b = victims_for(7);
  const auto c = victims_for(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 4u);  // ceil(0.25 * 16 machines)
}

TEST(ChaosInjector, NodeCrashRecoversAfterDuration) {
  co::Nautilus bed;
  const cc::MachineId victim = bed.gpu_machines().front();
  ch::ChaosPlan plan;
  plan.crash_node(5.0, victim, /*down_for=*/10.0);
  ch::ChaosInjector injector(bed.sim, bed.net, bed.inventory, plan, bed.kube.get(),
                             bed.ceph.get(), &bed.metrics);
  injector.arm();
  bed.sim.run(7.0);
  EXPECT_FALSE(bed.inventory.up(victim));
  bed.sim.run(20.0);
  EXPECT_TRUE(bed.inventory.up(victim));
  EXPECT_EQ(injector.report().node_crashes, 1);
  EXPECT_EQ(injector.report().node_recoveries, 1);
}

TEST(ChaosInjector, OsdFailureRemapsAndRecovers) {
  co::Nautilus bed;
  ch::ChaosPlan plan;
  plan.fail_osd(2.0, /*osd=*/0, /*down_for=*/30.0);
  ch::ChaosInjector injector(bed.sim, bed.net, bed.inventory, plan, bed.kube.get(),
                             bed.ceph.get(), &bed.metrics);
  injector.arm();
  bed.sim.run(100.0);  // fail, remap, recover, re-remap
  EXPECT_EQ(injector.report().osd_failures, 1);
  EXPECT_EQ(injector.report().osd_recoveries, 1);
  bed.ceph->check_invariants();  // replica placement clean after the churn
}

TEST(ChaosInjector, ConnectStep1SurvivesWorkerNodeCrashes) {
  // End-to-end: the download step completes with every file accounted for
  // even when machines crash mid-download (pods rescheduled, queue leases
  // redelivered, slabs refetched).
  co::Nautilus bed;
  co::ConnectWorkflowParams params;
  params.data_fraction = 0.01;
  params.steps = {1};
  params.queue_lease_ttl = 60.0;
  co::ConnectWorkflow cwf(bed, params);

  ch::ChaosPlan plan(/*seed=*/11);
  plan.crash_fraction(/*at=*/20.0, bed.gpu_machines(), 0.25, /*down_for=*/120.0);
  ch::ChaosInjector injector(bed.sim, bed.net, bed.inventory, plan, bed.kube.get(),
                             bed.ceph.get(), &bed.metrics);
  injector.arm();

  auto done = cwf.workflow().start(bed.sim);
  ASSERT_TRUE(cs::run_until(bed.sim, done));
  EXPECT_TRUE(cwf.workflow().finished());
  EXPECT_EQ(cwf.files_fetched(), cwf.scaled_file_count());
  EXPECT_GT(injector.report().node_crashes, 0);
}

// --- site faults and index consistency under churn ---------------------------

namespace {

namespace ck = chase::kube;
namespace cu = chase::util;

/// Two-site kube bed over one shared cluster: per-site star fabrics joined
/// by a WAN link, every machine registered with a per-site label.
struct TwoSiteBed {
  cs::Simulation sim;
  cn::Network net{sim};
  cc::Inventory inventory{net};
  std::unique_ptr<ck::KubeCluster> kube;
  std::vector<cn::NodeId> switches;
  std::vector<cc::MachineId> machines;

  explicit TwoSiteBed(int nodes_per_site = 4) {
    kube = std::make_unique<ck::KubeCluster>(sim, net, inventory, nullptr);
    for (int s = 0; s < 2; ++s) {
      const std::string site = "site-" + std::to_string(s);
      switches.push_back(net.add_node(site + "-sw", s));
      for (int i = 0; i < nodes_per_site; ++i) {
        const std::string name = site + "-n" + std::to_string(i);
        const cn::NodeId nn = net.add_node(name, s);
        net.add_link(nn, switches.back(), cu::gbit_per_s(20), 1e-4);
        const cc::MachineId m = inventory.add(cc::fiona8(name, site), nn);
        kube->register_node(m, {{"pool", i % 2 == 0 ? "even" : "odd"}});
        machines.push_back(m);
      }
    }
    net.add_link(switches[0], switches[1], cu::gbit_per_s(100), 30e-3);
  }
};

/// Ground truth for nodes_matching: full scan over every registered node.
std::vector<cc::MachineId> rescan_matching(const TwoSiteBed& bed,
                                           const ck::Labels& selector) {
  std::vector<cc::MachineId> out;
  for (cc::MachineId m : bed.machines) {
    if (ck::selector_matches(selector, bed.kube->node(m).labels)) out.push_back(m);
  }
  return out;
}

}  // namespace

TEST(ChaosInjector, SitePartitionIslandsAndHealsOneSite) {
  TwoSiteBed bed;
  ch::ChaosPlan plan;
  plan.partition_site(/*at=*/5.0, /*site=*/1, /*down_for=*/20.0);
  ch::ChaosInjector injector(bed.sim, bed.net, bed.inventory, plan);
  injector.arm();

  const cn::LinkId wan = bed.net.find_link(bed.switches[0], bed.switches[1]);
  bed.sim.run(10.0);
  EXPECT_FALSE(bed.net.link_up(wan));  // islanded
  // Intra-site links on both sides stay up.
  for (cn::LinkId l : bed.net.links_at(bed.switches[1])) {
    if (!bed.net.link_is_wan(l)) EXPECT_TRUE(bed.net.link_up(l));
  }
  bed.sim.run(40.0);
  EXPECT_TRUE(bed.net.link_up(wan));  // healed
  EXPECT_EQ(injector.report().site_partitions, 1);
  EXPECT_EQ(injector.report().site_heals, 1);
}

TEST(ChaosIndexes, StayConsistentUnderSeededDrainTaintCrashChurn) {
  // Property-style: a seeded stream of drains, taints, crashes, site
  // partitions, and re-registrations runs against a live scheduling
  // workload; at every step the feasibility + label indexes must agree with
  // a from-scratch rescan (check_invariants audits the index internals at
  // level 2; rescan_matching cross-checks the selector answers).
  const int prev_audit = cu::set_audit_level(2);
  TwoSiteBed bed;
  cu::Rng rng(0xC0FFEE);

  // Background workload: a replace-on-failure job stream per site keeps the
  // scheduler busy while the faults land.
  for (int s = 0; s < 2; ++s) {
    ck::JobSpec job;
    job.ns = "default";
    job.name = "churn-" + std::to_string(s);
    ck::ContainerSpec c;
    c.requests = {2, cu::gb(2), 1};
    c.program = [](ck::PodContext& ctx) -> cs::Task {
      co_await ctx.sim().sleep(3.0);
    };
    job.pod_template.containers.push_back(std::move(c));
    job.pod_template.node_selector["site"] = "site-" + std::to_string(s);
    job.completions = 40;
    job.parallelism = 4;
    job.backoff_limit = 1000;
    ASSERT_TRUE(bed.kube->create_job(job).ok());
  }

  ch::ChaosPlan plan(/*seed=*/7);
  plan.crash_fraction(/*at=*/10.0, bed.machines, 0.25, /*down_for=*/15.0);
  plan.partition_site(/*at=*/20.0, /*site=*/1, /*down_for=*/10.0);
  ch::ChaosInjector injector(bed.sim, bed.net, bed.inventory, plan, bed.kube.get());
  injector.arm();

  const std::vector<ck::Labels> probes = {
      {{"pool", "even"}},
      {{"site", "site-0"}},
      {{"site", "site-1"}, {"pool", "odd"}},
      {{"gpu-model", "GTX 1080ti"}},
      {},
  };
  const auto check_indexes = [&] {
    bed.kube->check_invariants();
    for (const auto& selector : probes) {
      EXPECT_EQ(bed.kube->nodes_matching(selector), rescan_matching(bed, selector));
    }
  };

  double t = 1.0;
  for (int step = 0; step < 30; ++step, t += rng.uniform(1.0, 3.0)) {
    const cc::MachineId victim =
        bed.machines[rng.uniform_u64(bed.machines.size())];
    switch (rng.uniform_u64(5)) {
      case 0:
        bed.sim.schedule(t, [&, victim] { bed.kube->drain(victim); });
        bed.sim.schedule(t + 4.0, [&, victim] { bed.kube->uncordon(victim); });
        break;
      case 1:
        bed.sim.schedule(t, [&, victim] {
          bed.kube->add_taint(victim,
                              ck::Taint{"chaos", "x", ck::TaintEffect::NoExecute});
        });
        bed.sim.schedule(t + 3.0,
                         [&, victim] { bed.kube->remove_taint(victim, "chaos"); });
        break;
      case 2:
        bed.sim.schedule(t, [&, victim] { bed.inventory.set_up(victim, false); });
        bed.sim.schedule(t + 5.0, [&, victim] { bed.inventory.set_up(victim, true); });
        break;
      case 3:  // relabel mid-flight: the index must drop the old posting
        bed.sim.schedule(t, [&, victim, step] {
          bed.kube->register_node(
              victim, {{"pool", step % 2 == 0 ? "relabel-a" : "relabel-b"}});
        });
        break;
      default:
        bed.sim.schedule(t, check_indexes);
        break;
    }
  }
  bed.sim.run(t + 30.0);
  check_indexes();
  bed.sim.run();
  check_indexes();

  // The workload survived the churn: both job streams completed.
  EXPECT_TRUE(bed.kube->get_job("default", "churn-0")->complete);
  EXPECT_TRUE(bed.kube->get_job("default", "churn-1")->complete);
  cu::set_audit_level(prev_audit);
}
