/// Cross-module integration tests: the full workflow under failure
/// injection, concurrent multi-tenant load, alerting wired to live metrics,
/// scheduler policies, and the Kepler export.

#include <gtest/gtest.h>

#include "core/connect_workflow.hpp"
#include "core/nautilus.hpp"

namespace co = chase::core;
namespace cw = chase::wf;
namespace ck = chase::kube;
namespace cs = chase::sim;
namespace cu = chase::util;

TEST(Integration, WorkflowSurvivesNodeFailuresMidRun) {
  co::Nautilus bed;
  co::ConnectWorkflowParams params;
  params.data_fraction = 5e-4;
  params.download_workers = 4;
  params.merge_pods = 1;
  params.url_lists = 8;
  params.inference_gpus = 8;
  params.viz_render_seconds = 5.0;
  co::ConnectWorkflow cwf(bed, params);

  // Kill a GPU node during step 1 and another during step 3; bring the
  // first one back later. Every controller must converge regardless.
  bed.sim.schedule(120.0, [&] { bed.inventory.set_up(bed.gpu_machines()[0], false); });
  bed.sim.schedule(2000.0, [&] { bed.inventory.set_up(bed.gpu_machines()[1], false); });
  bed.sim.schedule(4000.0, [&] { bed.inventory.set_up(bed.gpu_machines()[0], true); });

  auto done = cwf.workflow().start(bed.sim);
  ASSERT_TRUE(cs::run_until(bed.sim, done));
  ASSERT_EQ(cwf.workflow().reports().size(), 4u);
  for (const auto& report : cwf.workflow().reports()) {
    EXPECT_GT(report.duration(), 0.0) << report.name;
  }
  // The results made it to storage despite the churn.
  EXPECT_TRUE(bed.fs->exists("/models/ffn-ckpt"));
  EXPECT_EQ(bed.fs->list("/results/").size(),
            static_cast<std::size_t>(params.inference_gpus));
}

TEST(Integration, WorkflowAndTenantsShareTheCluster) {
  co::Nautilus bed;
  // A competing tenant occupies GPUs while the workflow runs.
  bed.kube->create_namespace("carl-uci");
  ck::JobSpec other;
  other.ns = "carl-uci";
  other.name = "rl-training";
  other.completions = 6;
  other.parallelism = 6;
  ck::ContainerSpec c;
  c.requests = {2, cu::gb(16), 4};
  c.program = [](ck::PodContext& ctx) -> cs::Task {
    co_await ctx.gpu_compute(4 * 1200.0);
  };
  other.pod_template.containers.push_back(std::move(c));
  auto other_job = bed.kube->create_job(other).value;

  co::ConnectWorkflowParams params;
  params.data_fraction = 5e-4;
  params.download_workers = 4;
  params.merge_pods = 1;
  params.url_lists = 8;
  params.inference_gpus = 20;
  params.viz_render_seconds = 5.0;
  co::ConnectWorkflow cwf(bed, params);
  auto done = cwf.workflow().start(bed.sim);
  ASSERT_TRUE(cs::run_until(bed.sim, done));
  bed.sim.run();
  EXPECT_TRUE(other_job->complete);
  EXPECT_EQ(cwf.workflow().reports().size(), 4u);
}

TEST(Integration, AlertsFireOnWorkflowLoad) {
  co::Nautilus bed;
  bed.metrics.add_alert({"gpus-busy", "kube_allocated_gpus", {}, true, 10.0});
  co::ConnectWorkflowParams params;
  params.steps = {3};
  params.data_fraction = 1e-3;
  params.inference_gpus = 16;
  co::ConnectWorkflow cwf(bed, params);
  auto stop = cs::make_event();
  bed.metrics.start_sampler(bed.sim, 10.0, stop);
  auto done = cwf.workflow().start(bed.sim);
  ASSERT_TRUE(cs::run_until(bed.sim, done));
  stop->trigger(bed.sim);
  bed.sim.run();
  ASSERT_EQ(bed.metrics.alerts().size(), 1u);
  EXPECT_GE(bed.metrics.alerts()[0].transitions, 1);
  EXPECT_FALSE(bed.metrics.alerts()[0].firing);  // cleared after the job
}

TEST(Integration, BinPackPolicyConsolidates) {
  auto count_busy_nodes = [](ck::KubeCluster::SchedulingPolicy policy) {
    co::NautilusOptions nopts;
    nopts.kube_options.policy = policy;
    co::Nautilus bed(nopts);
    for (int i = 0; i < 8; ++i) {
      ck::PodSpec spec;
      ck::ContainerSpec c;
      c.requests = {2, cu::gb(8), 1};
      c.program = [](ck::PodContext& ctx) -> cs::Task {
        co_await ctx.sim().sleep(1e5);
      };
      spec.containers.push_back(std::move(c));
      bed.kube->create_pod("default", "p" + std::to_string(i), std::move(spec));
    }
    bed.sim.run(60.0);
    int busy = 0;
    for (auto machine : bed.gpu_machines()) {
      busy += !bed.kube->node(machine).pods.empty();
    }
    return busy;
  };
  const int spread = count_busy_nodes(ck::KubeCluster::SchedulingPolicy::Spread);
  const int packed = count_busy_nodes(ck::KubeCluster::SchedulingPolicy::BinPack);
  EXPECT_EQ(spread, 8);  // one pod per node
  EXPECT_LE(packed, 2);  // 8 pods x (2 CPU, 1 GPU) fit on one FIONA8
}

TEST(Integration, KeplerExportDescribesExecutedWorkflow) {
  co::Nautilus bed;
  co::ConnectWorkflowParams params;
  params.data_fraction = 1e-4;
  params.download_workers = 2;
  params.merge_pods = 1;
  params.url_lists = 4;
  params.inference_gpus = 2;
  params.viz_render_seconds = 2.0;
  co::ConnectWorkflow cwf(bed, params);
  auto done = cwf.workflow().start(bed.sim);
  ASSERT_TRUE(cs::run_until(bed.sim, done));
  const std::string moml = cwf.workflow().export_kepler();
  EXPECT_NE(moml.find("<?xml"), std::string::npos);
  EXPECT_NE(moml.find("Step 1: THREDDS download"), std::string::npos);
  EXPECT_NE(moml.find("Step 4: JupyterLab visualization"), std::string::npos);
  EXPECT_NE(moml.find("measured.duration"), std::string::npos);
  // Sequential chain: 3 relations for 4 steps.
  std::size_t relations = 0, pos = 0;
  while ((pos = moml.find("<relation", pos)) != std::string::npos) {
    ++relations;
    ++pos;
  }
  EXPECT_EQ(relations, 3u);
}

TEST(Integration, DeterministicAcrossRuns) {
  auto run_once = [] {
    co::Nautilus bed;
    co::ConnectWorkflowParams params;
    params.data_fraction = 2e-4;
    params.download_workers = 3;
    params.merge_pods = 1;
    params.url_lists = 5;
    params.inference_gpus = 4;
    params.viz_render_seconds = 3.0;
    co::ConnectWorkflow cwf(bed, params);
    auto done = cwf.workflow().start(bed.sim);
    cs::run_until(bed.sim, done);
    std::vector<double> durations;
    for (const auto& r : cwf.workflow().reports()) durations.push_back(r.duration());
    return durations;
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]) << "step " << i;
  }
}
