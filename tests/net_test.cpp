#include <gtest/gtest.h>

#include <cmath>

#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "util/units.hpp"

namespace cn = chase::net;
namespace cs = chase::sim;
namespace cu = chase::util;

namespace {

struct Net2 {
  cs::Simulation sim;
  cn::Network net{sim};
  cn::NodeId a, b;
  explicit Net2(double bw = 100.0, double latency = 0.0) {
    a = net.add_node("a");
    b = net.add_node("b");
    net.add_link(a, b, bw, latency);
  }
};

}  // namespace

TEST(Network, SingleFlowUsesFullBandwidth) {
  Net2 w(100.0);
  auto t = w.net.transfer(w.a, w.b, 1000);
  w.sim.run();
  EXPECT_FALSE(t->failed);
  EXPECT_DOUBLE_EQ(t->finish_time, 10.0);
}

TEST(Network, LatencyDelaysCompletion) {
  Net2 w(100.0, 2.5);
  auto t = w.net.transfer(w.a, w.b, 1000);
  w.sim.run();
  EXPECT_DOUBLE_EQ(t->finish_time, 12.5);
}

TEST(Network, TwoFlowsShareFairly) {
  Net2 w(100.0);
  auto t1 = w.net.transfer(w.a, w.b, 1000);
  auto t2 = w.net.transfer(w.a, w.b, 1000);
  w.sim.run();
  // Both at 50 B/s until both finish at t=20.
  EXPECT_DOUBLE_EQ(t1->finish_time, 20.0);
  EXPECT_DOUBLE_EQ(t2->finish_time, 20.0);
}

TEST(Network, ShortFlowFinishesThenLongSpeedsUp) {
  Net2 w(100.0);
  auto small = w.net.transfer(w.a, w.b, 500);
  auto big = w.net.transfer(w.a, w.b, 1500);
  w.sim.run();
  // Share 50/50 until small finishes at t=10 (500B at 50B/s); big then has
  // 1000B left at 100B/s -> finishes at t=20.
  EXPECT_DOUBLE_EQ(small->finish_time, 10.0);
  EXPECT_DOUBLE_EQ(big->finish_time, 20.0);
}

TEST(Network, RateCapHonored) {
  Net2 w(100.0);
  cn::TransferOptions opts;
  opts.rate_cap = 10.0;
  auto t = w.net.transfer(w.a, w.b, 100, opts);
  w.sim.run();
  EXPECT_DOUBLE_EQ(t->finish_time, 10.0);
}

TEST(Network, CappedFlowLeavesBandwidthToOthers) {
  Net2 w(100.0);
  cn::TransferOptions capped;
  capped.rate_cap = 20.0;
  auto slow = w.net.transfer(w.a, w.b, 200, capped);   // 20 B/s -> 10s
  auto fast = w.net.transfer(w.a, w.b, 800);           // 80 B/s -> 10s
  w.sim.run();
  EXPECT_DOUBLE_EQ(slow->finish_time, 10.0);
  EXPECT_DOUBLE_EQ(fast->finish_time, 10.0);
}

TEST(Network, MultiHopBottleneck) {
  cs::Simulation sim;
  cn::Network net(sim);
  auto a = net.add_node("a");
  auto m = net.add_node("switch");
  auto b = net.add_node("b");
  net.add_link(a, m, 100.0, 0.0);
  net.add_link(m, b, 50.0, 0.0);  // bottleneck
  auto t = net.transfer(a, b, 500);
  sim.run();
  EXPECT_DOUBLE_EQ(t->finish_time, 10.0);
}

TEST(Network, CrossTrafficSharesBottleneckOnly) {
  // a->c and b->c share the s->c link; a->b does not.
  cs::Simulation sim;
  cn::Network net(sim);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto c = net.add_node("c");
  auto s = net.add_node("s");
  net.add_link(a, s, 100.0, 0.0);
  net.add_link(b, s, 100.0, 0.0);
  net.add_link(c, s, 100.0, 0.0);
  auto t1 = net.transfer(a, c, 500);
  auto t2 = net.transfer(b, c, 500);
  sim.run();
  // Each gets 50 B/s on the shared s->c link.
  EXPECT_DOUBLE_EQ(t1->finish_time, 10.0);
  EXPECT_DOUBLE_EQ(t2->finish_time, 10.0);
}

TEST(Network, FullDuplexIndependentDirections) {
  Net2 w(100.0);
  auto fwd = w.net.transfer(w.a, w.b, 1000);
  auto rev = w.net.transfer(w.b, w.a, 1000);
  w.sim.run();
  // Opposite directions do not contend.
  EXPECT_DOUBLE_EQ(fwd->finish_time, 10.0);
  EXPECT_DOUBLE_EQ(rev->finish_time, 10.0);
}

TEST(Network, ZeroByteTransferPaysLatencyOnly) {
  Net2 w(100.0, 1.5);
  auto t = w.net.transfer(w.a, w.b, 0);
  w.sim.run();
  EXPECT_DOUBLE_EQ(t->finish_time, 1.5);
}

TEST(Network, LocalTransferIsLatencyFree) {
  Net2 w;
  auto t = w.net.transfer(w.a, w.a, 1000000);
  w.sim.run();
  EXPECT_DOUBLE_EQ(t->finish_time, 0.0);
  EXPECT_FALSE(t->failed);
}

TEST(Network, UnreachableFails) {
  cs::Simulation sim;
  cn::Network net(sim);
  auto a = net.add_node("a");
  auto b = net.add_node("b");  // no link
  auto t = net.transfer(a, b, 100);
  sim.run();
  EXPECT_TRUE(t->failed);
}

TEST(Network, NodeDownFailsInFlightFlows) {
  cs::Simulation sim;
  cn::Network net(sim);
  auto a = net.add_node("a");
  auto s = net.add_node("s");
  auto b = net.add_node("b");
  net.add_link(a, s, 100.0, 0.0);
  net.add_link(s, b, 100.0, 0.0);
  auto t = net.transfer(a, b, 10000);
  sim.schedule(5.0, [&] { net.set_node_up(s, false); });
  sim.run();
  EXPECT_TRUE(t->failed);
  EXPECT_DOUBLE_EQ(t->finish_time, 5.0);
}

TEST(Network, ReroutesAroundDownNodeForNewFlows) {
  cs::Simulation sim;
  cn::Network net(sim);
  auto a = net.add_node("a");
  auto s1 = net.add_node("s1");
  auto s2 = net.add_node("s2");
  auto b = net.add_node("b");
  net.add_link(a, s1, 100.0, 0.0);
  net.add_link(s1, b, 100.0, 0.0);
  net.add_link(a, s2, 50.0, 0.0);
  net.add_link(s2, b, 50.0, 0.0);
  net.set_node_up(s1, false);
  EXPECT_TRUE(net.reachable(a, b));
  auto t = net.transfer(a, b, 500);
  sim.run();
  EXPECT_FALSE(t->failed);
  EXPECT_DOUBLE_EQ(t->finish_time, 10.0);  // via the 50 B/s path
}

TEST(Network, InstantaneousRatesObservable) {
  Net2 w(100.0);
  w.net.transfer(w.a, w.b, 10000);
  w.sim.run(1.0);
  EXPECT_DOUBLE_EQ(w.net.node_tx_rate(w.a), 100.0);
  EXPECT_DOUBLE_EQ(w.net.node_rx_rate(w.b), 100.0);
  EXPECT_DOUBLE_EQ(w.net.total_flow_rate(), 100.0);
  EXPECT_EQ(w.net.active_flows(), 1u);
}

TEST(Network, BytesDeliveredAccumulates) {
  Net2 w(100.0);
  w.net.transfer(w.a, w.b, 1000);
  w.sim.run();
  EXPECT_NEAR(w.net.total_bytes_delivered(), 1000.0, 1.0);
}

TEST(Network, SendCoroutineCompletes) {
  Net2 w(100.0);
  static double done_at;
  done_at = -1;
  auto proc = [](Net2* env) -> cs::Task {
    co_await env->net.send(env->a, env->b, 1000);
    done_at = env->sim.now();
  };
  w.sim.spawn(proc(&w));
  w.sim.run();
  EXPECT_DOUBLE_EQ(done_at, 10.0);
}

namespace {

/// Three hosts on a star switch; host c's access link is the slow one.
struct Star3 {
  cs::Simulation sim;
  cn::Network net{sim};
  cn::NodeId sw, a, b, c;
  Star3() {
    sw = net.add_node("sw");
    a = net.add_node("a");
    b = net.add_node("b");
    c = net.add_node("c");
    net.add_link(a, sw, 100.0, 0.0);
    net.add_link(b, sw, 100.0, 0.0);
    net.add_link(c, sw, 25.0, 0.0);
  }
};

}  // namespace

TEST(Network, SendGroupBarriersOnSlowestLeg) {
  // A ring round a->b->c->a: every leg starts at once, the barrier releases
  // when the last leg lands. Legs over c's 25 B/s access link take 40 s;
  // the a->b leg finishing at 10 s does not release the round early.
  Star3 w;
  static double done_at;
  done_at = -1;
  auto proc = [](Star3* env) -> cs::Task {
    std::vector<cn::Network::GroupLeg> legs;
    legs.push_back({env->a, env->b, 1000});
    legs.push_back({env->b, env->c, 1000});
    legs.push_back({env->c, env->a, 1000});
    co_await env->net.send_group(std::move(legs));
    done_at = env->sim.now();
  };
  w.sim.spawn(proc(&w));
  w.sim.run();
  EXPECT_DOUBLE_EQ(done_at, 40.0);
}

TEST(Network, SendGroupCompletesDespiteFailedLeg) {
  // A leg to a downed node fails immediately instead of hanging the barrier.
  Star3 w;
  w.net.set_node_up(w.c, false);
  static double done_at;
  done_at = -1;
  auto proc = [](Star3* env) -> cs::Task {
    std::vector<cn::Network::GroupLeg> legs;
    legs.push_back({env->a, env->b, 1000});
    legs.push_back({env->b, env->c, 1000});  // dead destination
    co_await env->net.send_group(std::move(legs));
    done_at = env->sim.now();
  };
  w.sim.spawn(proc(&w));
  w.sim.run();
  EXPECT_DOUBLE_EQ(done_at, 10.0);  // gated by the surviving a->b leg only
}

// Property sweep: with N identical flows on one link, each finishes at N*T.
class FairnessSweep : public ::testing::TestWithParam<int> {};

TEST_P(FairnessSweep, NFlowsFinishTogether) {
  const int n = GetParam();
  Net2 w(1000.0);
  std::vector<cn::TransferPtr> ts;
  for (int i = 0; i < n; ++i) ts.push_back(w.net.transfer(w.a, w.b, 1000));
  w.sim.run();
  for (auto& t : ts) {
    EXPECT_NEAR(t->finish_time, static_cast<double>(n), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, FairnessSweep, ::testing::Values(1, 2, 3, 5, 8, 16, 64));
