#include <gtest/gtest.h>

#include <vector>

#include "sim/event.hpp"
#include "sim/simulation.hpp"

namespace cs = chase::sim;

TEST(Simulation, RunsEventsInTimeOrder) {
  cs::Simulation sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulation, FifoAtSameTimestamp) {
  cs::Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, RunUntilStopsEarly) {
  cs::Simulation sim;
  int fired = 0;
  sim.schedule(1.0, [&] { fired++; });
  sim.schedule(5.0, [&] { fired++; });
  sim.run(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, NestedScheduling) {
  cs::Simulation sim;
  double inner_time = -1;
  sim.schedule(1.0, [&] { sim.schedule(2.0, [&] { inner_time = sim.now(); }); });
  sim.run();
  EXPECT_DOUBLE_EQ(inner_time, 3.0);
}

TEST(Simulation, EventsProcessedCount) {
  cs::Simulation sim;
  for (int i = 0; i < 7; ++i) sim.schedule(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

namespace {

cs::Task sleeper(cs::Simulation& sim, double dt, double* woke_at) {
  co_await sim.sleep(dt);
  *woke_at = sim.now();
}

cs::Task parent_task(cs::Simulation& sim, std::vector<int>* log) {
  log->push_back(1);
  co_await sim.sleep(1.0);
  log->push_back(2);
  double t = 0;
  co_await sleeper(sim, 2.0, &t);  // await a child coroutine
  log->push_back(3);
  EXPECT_DOUBLE_EQ(t, 3.0);
}

}  // namespace

TEST(Task, SleepAdvancesClock) {
  cs::Simulation sim;
  double woke = -1;
  sim.spawn(sleeper(sim, 5.0, &woke));
  sim.run();
  EXPECT_DOUBLE_EQ(woke, 5.0);
}

TEST(Task, AwaitChildTask) {
  cs::Simulation sim;
  std::vector<int> log;
  sim.spawn(parent_task(sim, &log));
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Task, ZeroDelaySleepDoesNotSuspendForever) {
  cs::Simulation sim;
  double woke = -1;
  sim.spawn(sleeper(sim, 0.0, &woke));
  sim.run();
  EXPECT_DOUBLE_EQ(woke, 0.0);
}

TEST(Task, ManyConcurrentProcesses) {
  cs::Simulation sim;
  static int finished;
  finished = 0;
  auto proc = [](cs::Simulation& s, double dt) -> cs::Task {
    co_await s.sleep(dt);
    finished++;
  };
  for (int i = 0; i < 1000; ++i) sim.spawn(proc(sim, 1.0 + i * 0.001));
  sim.run();
  EXPECT_EQ(finished, 1000);
}

TEST(Task, UnfinishedTaskCleanedUpAtTeardown) {
  // A process suspended forever must be destroyed with the simulation
  // without leaking or crashing (ASAN would catch both).
  auto forever = [](cs::Simulation& s) -> cs::Task {
    co_await s.sleep(1e18);
  };
  cs::Simulation sim;
  sim.spawn(forever(sim));
  sim.run(10.0);
}

TEST(Event, TriggerWakesAllWaiters) {
  cs::Simulation sim;
  auto ev = cs::make_event();
  static int woken;
  woken = 0;
  auto waiter = [](cs::Simulation& s, cs::EventPtr e) -> cs::Task {
    co_await e->wait(s);
    woken++;
  };
  for (int i = 0; i < 5; ++i) sim.spawn(waiter(sim, ev));
  sim.schedule(2.0, [&] { ev->trigger(sim); });
  sim.run();
  EXPECT_EQ(woken, 5);
  EXPECT_TRUE(ev->fired());
}

TEST(Event, AwaitAlreadyFiredEventReturnsImmediately) {
  cs::Simulation sim;
  auto ev = cs::make_event();
  ev->trigger(sim);
  static double at;
  at = -1;
  auto waiter = [](cs::Simulation& s, cs::EventPtr e) -> cs::Task {
    co_await s.sleep(3.0);
    co_await e->wait(s);
    at = s.now();
  };
  sim.spawn(waiter(sim, ev));
  sim.run();
  EXPECT_DOUBLE_EQ(at, 3.0);
}

TEST(Event, DoubleTriggerIsIdempotent) {
  cs::Simulation sim;
  auto ev = cs::make_event();
  ev->trigger(sim);
  EXPECT_NO_THROW(ev->trigger(sim));
}

TEST(Event, WaitAll) {
  cs::Simulation sim;
  auto e1 = cs::make_event();
  auto e2 = cs::make_event();
  auto e3 = cs::make_event();
  static double done_at;
  done_at = -1;
  auto waiter = [](cs::Simulation& s, std::vector<cs::EventPtr> group) -> cs::Task {
    co_await cs::wait_all(s, std::move(group));
    done_at = s.now();
  };
  sim.spawn(waiter(sim, {e1, e2, e3}));
  sim.schedule(1.0, [&] { e2->trigger(sim); });
  sim.schedule(5.0, [&] { e1->trigger(sim); });
  sim.schedule(3.0, [&] { e3->trigger(sim); });
  sim.run();
  EXPECT_DOUBLE_EQ(done_at, 5.0);
}

TEST(Semaphore, LimitsConcurrency) {
  cs::Simulation sim;
  cs::Semaphore sem(2);
  static int active;
  static int peak;
  active = peak = 0;
  auto worker = [](cs::Simulation& s, cs::Semaphore* sm) -> cs::Task {
    co_await sm->acquire();
    active++;
    peak = std::max(peak, active);
    co_await s.sleep(1.0);
    active--;
    sm->release(s);
  };
  for (int i = 0; i < 10; ++i) sim.spawn(worker(sim, &sem));
  sim.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(active, 0);
  // 10 jobs, 2 at a time, 1s each -> 5s.
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Semaphore, FifoHandoff) {
  cs::Simulation sim;
  cs::Semaphore sem(1);
  static std::vector<int> order;
  order.clear();
  auto worker = [](cs::Simulation& s, cs::Semaphore* sm, int id) -> cs::Task {
    co_await sm->acquire();
    order.push_back(id);
    co_await s.sleep(1.0);
    sm->release(s);
  };
  for (int i = 0; i < 4; ++i) sim.spawn(worker(sim, &sem, i));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Latch, FiresAtZero) {
  cs::Simulation sim;
  auto done = cs::make_event();
  cs::Latch latch(3, done);
  sim.schedule(1.0, [&] { latch.count_down(sim); });
  sim.schedule(2.0, [&] { latch.count_down(sim); });
  sim.run();
  EXPECT_FALSE(done->fired());
  sim.schedule(0.0, [&] { latch.count_down(sim); });
  sim.run();
  EXPECT_TRUE(done->fired());
}
