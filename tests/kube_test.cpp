#include <gtest/gtest.h>

#include <memory>

#include "kube/cluster.hpp"

namespace ck = chase::kube;
namespace cc = chase::cluster;
namespace cn = chase::net;
namespace cs = chase::sim;
namespace cu = chase::util;

namespace {

/// A small testbed: N FIONA8 nodes on one switch.
struct Testbed {
  cs::Simulation sim;
  cn::Network net{sim};
  cc::Inventory inventory{net};
  chase::mon::Registry metrics;
  std::unique_ptr<ck::KubeCluster> kube;
  cn::NodeId switch_node;

  explicit Testbed(int nodes = 2, ck::KubeCluster::Options options = {}) {
    switch_node = net.add_node("switch");
    kube = std::make_unique<ck::KubeCluster>(sim, net, inventory, &metrics, options);
    for (int i = 0; i < nodes; ++i) {
      auto name = "fiona8-" + std::to_string(i);
      auto nn = net.add_node(name);
      net.add_link(nn, switch_node, cu::gbit_per_s(20), 1e-4);
      auto id = inventory.add(cc::fiona8(name, "UCSD"), nn);
      kube->register_node(id);
    }
  }
};

ck::Program sleep_program(double seconds) {
  return [seconds](ck::PodContext& ctx) -> cs::Task {
    co_await ctx.sim().sleep(seconds);
  };
}

ck::Program failing_program() {
  return [](ck::PodContext& ctx) -> cs::Task {
    co_await ctx.sim().sleep(1.0);
    ctx.fail("boom");
  };
}

ck::PodSpec simple_pod(double run_seconds, ck::ResourceList requests = {1, cu::gb(1), 0}) {
  ck::PodSpec spec;
  ck::ContainerSpec c;
  c.requests = requests;
  c.program = sleep_program(run_seconds);
  spec.containers.push_back(std::move(c));
  return spec;
}

}  // namespace

TEST(Kube, PodLifecycle) {
  Testbed tb;
  auto result = tb.kube->create_pod("default", "p1", simple_pod(10.0));
  ASSERT_TRUE(result.ok()) << result.error;
  auto pod = result.value;
  EXPECT_EQ(pod->phase, ck::PodPhase::Pending);
  tb.sim.run();
  EXPECT_EQ(pod->phase, ck::PodPhase::Succeeded);
  EXPECT_GE(pod->node, 0);
  EXPECT_GT(pod->started_at, 0.0);
  EXPECT_GE(pod->finished_at, pod->started_at + 10.0);
}

TEST(Kube, DuplicatePodRejected) {
  Testbed tb;
  ASSERT_TRUE(tb.kube->create_pod("default", "p1", simple_pod(1.0)).ok());
  EXPECT_FALSE(tb.kube->create_pod("default", "p1", simple_pod(1.0)).ok());
}

TEST(Kube, UnknownNamespaceRejected) {
  Testbed tb;
  EXPECT_FALSE(tb.kube->create_pod("nope", "p1", simple_pod(1.0)).ok());
}

TEST(Kube, FailingProgramYieldsFailedPhase) {
  Testbed tb;
  ck::PodSpec spec;
  ck::ContainerSpec c;
  c.program = failing_program();
  spec.containers.push_back(std::move(c));
  auto pod = tb.kube->create_pod("default", "bad", std::move(spec)).value;
  tb.sim.run();
  EXPECT_EQ(pod->phase, ck::PodPhase::Failed);
  EXPECT_EQ(pod->reason, "boom");
}

TEST(Kube, ResourcesReservedAndReleased) {
  Testbed tb(1);
  ck::ResourceList req{4, cu::gb(8), 2};
  auto pod = tb.kube->create_pod("default", "p1", simple_pod(5.0, req)).value;
  tb.sim.run(3.0);
  EXPECT_EQ(pod->phase, ck::PodPhase::Running);
  auto alloc = tb.kube->total_allocated();
  EXPECT_DOUBLE_EQ(alloc.cpu, 4);
  EXPECT_EQ(alloc.gpus, 2);
  EXPECT_EQ(pod->gpu_ids.size(), 2u);
  tb.sim.run();
  alloc = tb.kube->total_allocated();
  EXPECT_DOUBLE_EQ(alloc.cpu, 0);
  EXPECT_EQ(alloc.gpus, 0);
}

TEST(Kube, GpuDevicePluginGrantsDistinctDevices) {
  Testbed tb(1);
  auto p1 = tb.kube->create_pod("default", "a", simple_pod(50.0, {1, cu::gb(1), 4})).value;
  auto p2 = tb.kube->create_pod("default", "b", simple_pod(50.0, {1, cu::gb(1), 4})).value;
  tb.sim.run(10.0);
  ASSERT_EQ(p1->gpu_ids.size(), 4u);
  ASSERT_EQ(p2->gpu_ids.size(), 4u);
  for (int g1 : p1->gpu_ids) {
    for (int g2 : p2->gpu_ids) EXPECT_NE(g1, g2);
  }
}

TEST(Kube, PodsQueueWhenClusterFull) {
  Testbed tb(1);  // one node: 8 GPUs
  std::vector<ck::PodPtr> pods;
  for (int i = 0; i < 3; ++i) {
    pods.push_back(tb.kube
                       ->create_pod("default", "g" + std::to_string(i),
                                    simple_pod(10.0, {1, cu::gb(1), 4}))
                       .value);
  }
  tb.sim.run(5.0);
  // Only 2 fit (8 GPUs / 4 each); the third must wait.
  int running = 0, pending = 0;
  for (auto& p : pods) {
    running += p->phase == ck::PodPhase::Running;
    pending += p->phase == ck::PodPhase::Pending;
  }
  EXPECT_EQ(running, 2);
  EXPECT_EQ(pending, 1);
  tb.sim.run();
  for (auto& p : pods) EXPECT_EQ(p->phase, ck::PodPhase::Succeeded);
}

TEST(Kube, NodeSelectorRespected) {
  Testbed tb(2);
  // Give node 1 a special label.
  auto nn = tb.net.add_node("viz-node");
  tb.net.add_link(nn, tb.switch_node, cu::gbit_per_s(10), 1e-4);
  auto special = tb.inventory.add(cc::fiona8("viz-node", "UCM"), nn);
  tb.kube->register_node(special, {{"role", "viz"}});

  auto spec = simple_pod(1.0);
  spec.node_selector = {{"role", "viz"}};
  auto pod = tb.kube->create_pod("default", "p", std::move(spec)).value;
  tb.sim.run();
  EXPECT_EQ(pod->node, special);

  auto site_spec = simple_pod(1.0);
  site_spec.node_selector = {{"site", "UCM"}};
  auto pod2 = tb.kube->create_pod("default", "p2", std::move(site_spec)).value;
  tb.sim.run();
  EXPECT_EQ(pod2->node, special);
}

TEST(Kube, UnsatisfiableSelectorStaysPending) {
  Testbed tb;
  auto spec = simple_pod(1.0);
  spec.node_selector = {{"site", "Mars"}};
  auto pod = tb.kube->create_pod("default", "p", std::move(spec)).value;
  tb.sim.run(100.0);
  EXPECT_EQ(pod->phase, ck::PodPhase::Pending);
}

TEST(Kube, SchedulerSpreadsAcrossNodes) {
  Testbed tb(2);
  auto p1 = tb.kube->create_pod("default", "a", simple_pod(20.0, {8, cu::gb(8), 0})).value;
  auto p2 = tb.kube->create_pod("default", "b", simple_pod(20.0, {8, cu::gb(8), 0})).value;
  tb.sim.run(10.0);
  EXPECT_NE(p1->node, p2->node);
}

TEST(Kube, JobRunsToCompletion) {
  Testbed tb(2);
  ck::JobSpec spec;
  spec.ns = "default";
  spec.name = "download";
  spec.pod_template = simple_pod(10.0);
  spec.completions = 6;
  spec.parallelism = 3;
  auto job = tb.kube->create_job(spec).value;
  tb.sim.run();
  EXPECT_TRUE(job->complete);
  EXPECT_EQ(job->succeeded, 6);
  EXPECT_EQ(job->active, 0);
  EXPECT_TRUE(job->done->fired());
  // Two waves of 3 pods, ~10s each plus start overhead.
  EXPECT_GT(job->finished_at, 20.0);
  EXPECT_LT(job->finished_at, 40.0);
}

TEST(Kube, JobParallelismBounded) {
  Testbed tb(2);
  ck::JobSpec spec;
  spec.ns = "default";
  spec.name = "j";
  spec.pod_template = simple_pod(30.0);
  spec.completions = 10;
  spec.parallelism = 4;
  auto job = tb.kube->create_job(spec).value;
  tb.sim.run(15.0);
  EXPECT_EQ(job->active, 4);
  int running = 0;
  for (const auto& pod : tb.kube->list_pods("default", {{"job", "j"}})) {
    running += pod->phase == ck::PodPhase::Running;
  }
  EXPECT_EQ(running, 4);
}

TEST(Kube, JobBackoffLimitFailsJob) {
  Testbed tb;
  ck::JobSpec spec;
  spec.ns = "default";
  spec.name = "cursed";
  ck::ContainerSpec c;
  c.program = failing_program();
  spec.pod_template.containers.push_back(std::move(c));
  spec.completions = 1;
  spec.backoff_limit = 2;
  auto job = tb.kube->create_job(spec).value;
  tb.sim.run();
  EXPECT_TRUE(job->failed_state);
  EXPECT_FALSE(job->complete);
  EXPECT_EQ(job->failed, 3);  // initial + 2 retries
}

TEST(Kube, ReplicaSetMaintainsReplicas) {
  Testbed tb(2);
  ck::ReplicaSetSpec spec;
  spec.ns = "default";
  spec.name = "redis";
  spec.replicas = 2;
  spec.labels = {{"app", "redis"}};
  // Long-running service pods.
  spec.pod_template = simple_pod(1e6);
  auto rs = tb.kube->create_replica_set(spec).value;
  tb.sim.run(20.0);
  EXPECT_EQ(rs->active, 2);
  int running = 0;
  for (const auto& pod : tb.kube->list_pods("default", {{"app", "redis"}})) {
    running += pod->phase == ck::PodPhase::Running;
  }
  EXPECT_EQ(running, 2);
}

TEST(Kube, ReplicaSetReplacesFailedPod) {
  Testbed tb(2);
  ck::ReplicaSetSpec spec;
  spec.ns = "default";
  spec.name = "svc";
  spec.replicas = 1;
  spec.labels = {{"app", "svc"}};
  spec.pod_template = simple_pod(1e6);
  tb.kube->create_replica_set(spec);
  tb.sim.run(10.0);
  tb.kube->delete_pod("default", "svc-0");
  tb.sim.run(30.0);
  auto replacement = tb.kube->get_pod("default", "svc-1");
  ASSERT_NE(replacement, nullptr);
  EXPECT_EQ(replacement->phase, ck::PodPhase::Running);
}

TEST(Kube, DeleteReplicaSetStopsReplacement) {
  Testbed tb(2);
  ck::ReplicaSetSpec spec;
  spec.ns = "default";
  spec.name = "svc";
  spec.replicas = 2;
  spec.labels = {{"app", "svc"}};
  spec.pod_template = simple_pod(1e6);
  tb.kube->create_replica_set(spec);
  tb.sim.run(10.0);
  tb.kube->delete_replica_set("default", "svc");
  tb.sim.run(50.0);
  for (const auto& pod : tb.kube->list_pods("default", {{"app", "svc"}})) {
    EXPECT_TRUE(pod->terminal());
  }
}

TEST(Kube, NodeLossReschedulesJobPods) {
  Testbed tb(2);
  ck::JobSpec spec;
  spec.ns = "default";
  spec.name = "resilient";
  spec.pod_template = simple_pod(60.0, {20, cu::gb(32), 0});
  spec.completions = 2;
  spec.parallelism = 2;
  spec.backoff_limit = 10;
  auto job = tb.kube->create_job(spec).value;
  tb.sim.run(30.0);
  // Each node holds one pod (20 CPU of 24). Kill node 0.
  tb.inventory.set_up(0, false);
  tb.sim.run();
  EXPECT_TRUE(job->complete);
  EXPECT_EQ(job->succeeded, 2);
  // Node-loss evictions are rescheduled without counting as failures.
  EXPECT_EQ(job->failed, 0);
  int evicted = 0;
  for (const auto& pod : tb.kube->list_pods("default", {{"job", "resilient"}})) {
    evicted += pod->reason == "NodeLost";
  }
  EXPECT_GE(evicted, 1);
}

TEST(Kube, NamespaceQuotaEnforced) {
  Testbed tb;
  tb.kube->create_namespace("atmos");
  ck::ResourceQuota quota;
  quota.hard = {4, cu::gb(64), 8};
  tb.kube->set_quota("atmos", quota);
  ASSERT_TRUE(tb.kube->create_pod("atmos", "a", simple_pod(1e6, {3, cu::gb(1), 0})).ok());
  // 3 + 2 > 4 CPUs -> rejected.
  auto denied = tb.kube->create_pod("atmos", "b", simple_pod(1e6, {2, cu::gb(1), 0}));
  EXPECT_FALSE(denied.ok());
  EXPECT_NE(denied.error.find("quota"), std::string::npos);
  // Other namespaces unaffected.
  EXPECT_TRUE(tb.kube->create_pod("default", "c", simple_pod(1e6, {2, cu::gb(1), 0})).ok());
}

TEST(Kube, QuotaReleasedOnPodCompletion) {
  Testbed tb;
  tb.kube->create_namespace("atmos");
  ck::ResourceQuota quota;
  quota.hard = {4, cu::gb(64), 8};
  tb.kube->set_quota("atmos", quota);
  ASSERT_TRUE(tb.kube->create_pod("atmos", "a", simple_pod(5.0, {4, cu::gb(1), 0})).ok());
  tb.sim.run();
  EXPECT_TRUE(tb.kube->create_pod("atmos", "b", simple_pod(5.0, {4, cu::gb(1), 0})).ok());
}

TEST(Kube, MaxPodsQuota) {
  Testbed tb;
  tb.kube->create_namespace("small");
  ck::ResourceQuota quota;
  quota.hard = {1000, cu::gb(1000), 100};
  quota.max_pods = 2;
  tb.kube->set_quota("small", quota);
  EXPECT_TRUE(tb.kube->create_pod("small", "a", simple_pod(1e6)).ok());
  EXPECT_TRUE(tb.kube->create_pod("small", "b", simple_pod(1e6)).ok());
  EXPECT_FALSE(tb.kube->create_pod("small", "c", simple_pod(1e6)).ok());
}

TEST(Kube, AuthRequiredWhenEnabled) {
  Testbed tb;
  chase::auth::CILogon sso;
  chase::auth::Rbac rbac;
  sso.register_provider("ucsd.edu");
  tb.kube->enable_auth(&sso, &rbac);
  tb.kube->create_namespace("atmos");

  // No token: rejected.
  EXPECT_FALSE(tb.kube->create_pod("atmos", "x", simple_pod(1.0)).ok());

  auto token = *sso.login("ucsd.edu", "sellars");
  // Not yet a member: rejected.
  EXPECT_FALSE(tb.kube->create_pod("atmos", "x", simple_pod(1.0), {}, {}, &token).ok());

  rbac.grant_member("atmos", token.identity);
  EXPECT_TRUE(tb.kube->create_pod("atmos", "x", simple_pod(1.0), {}, {}, &token).ok());
  // But not in someone else's namespace.
  tb.kube->create_namespace("carl-uci");
  EXPECT_FALSE(tb.kube->create_pod("carl-uci", "y", simple_pod(1.0), {}, {}, &token).ok());
}

TEST(Kube, JobControllerPodsBypassRbacButRespectQuota) {
  Testbed tb;
  chase::auth::CILogon sso;
  chase::auth::Rbac rbac;
  sso.register_provider("ucsd.edu");
  tb.kube->enable_auth(&sso, &rbac);
  tb.kube->create_namespace("atmos");
  auto token = *sso.login("ucsd.edu", "pi");
  rbac.grant_admin("atmos", token.identity);

  ck::JobSpec spec;
  spec.ns = "atmos";
  spec.name = "j";
  spec.pod_template = simple_pod(5.0);
  spec.completions = 2;
  spec.parallelism = 2;
  auto job = tb.kube->create_job(spec, &token);
  ASSERT_TRUE(job.ok()) << job.error;
  tb.sim.run();
  EXPECT_TRUE(job.value->complete);
}

TEST(Kube, ServiceResolvesRunningPodsRoundRobin) {
  Testbed tb(2);
  ck::ReplicaSetSpec spec;
  spec.ns = "default";
  spec.name = "redis";
  spec.replicas = 2;
  spec.labels = {{"app", "redis"}};
  spec.pod_template = simple_pod(1e6);
  tb.kube->create_replica_set(spec);
  tb.kube->create_service({"default", "redis", {{"app", "redis"}}});
  EXPECT_FALSE(tb.kube->resolve_service("default", "redis").has_value());  // not up yet
  tb.sim.run(20.0);
  auto first = tb.kube->resolve_service("default", "redis");
  auto second = tb.kube->resolve_service("default", "redis");
  ASSERT_TRUE(first && second);
  EXPECT_NE((*first)->meta.name, (*second)->meta.name);
}

TEST(Kube, ImagePullPaysNetworkCostOncePerNode) {
  ck::KubeCluster::Options opts;
  Testbed tb0(0, opts);
  // Build a testbed with a registry.
  auto registry = tb0.net.add_node("registry");
  tb0.net.add_link(registry, tb0.switch_node, 100e6, 1e-3);  // slow: 100 MB/s
  tb0.kube->options();  // silence unused warnings path
  // Recreate cluster with registry option.
  ck::KubeCluster::Options with_reg;
  with_reg.registry_node = registry;
  ck::KubeCluster kube(tb0.sim, tb0.net, tb0.inventory, nullptr, with_reg);
  auto nn = tb0.net.add_node("n0");
  tb0.net.add_link(nn, tb0.switch_node, cu::gbit_per_s(20), 1e-4);
  auto mid = tb0.inventory.add(cc::fiona8("n0", "UCSD"), nn);
  kube.register_node(mid);

  ck::PodSpec spec = simple_pod(1.0);
  spec.containers[0].image = "tensorflow/ffn";
  spec.containers[0].image_size = cu::gb(1);  // 10s at 100 MB/s
  auto p1 = kube.create_pod("default", "p1", spec).value;
  tb0.sim.run();
  const double first_start = p1->started_at;
  EXPECT_GT(first_start, 10.0);  // paid the pull

  auto p2 = kube.create_pod("default", "p2", spec).value;
  tb0.sim.run();
  // Cached: starts in ~container_start_latency + scheduling.
  EXPECT_LT(p2->started_at - p2->created_at, 3.0);
}

TEST(Kube, PodUsageMetricsRecorded) {
  Testbed tb;
  auto program = [](ck::PodContext& ctx) -> cs::Task {
    ctx.set_memory_usage(cu::gb(10));
    co_await ctx.compute(40.0, 4.0);  // 10s at 4 cores
  };
  ck::PodSpec spec;
  ck::ContainerSpec c;
  c.requests = {4, cu::gb(16), 0};
  c.program = program;
  spec.containers.push_back(std::move(c));
  tb.kube->create_pod("default", "worker", std::move(spec), {{"step", "1"}});

  auto stop = cs::make_event();
  tb.metrics.start_sampler(tb.sim, 1.0, stop);
  tb.sim.schedule(30.0, [&] { stop->trigger(tb.sim); });
  tb.sim.run(60.0);

  auto cpu = tb.metrics.select("pod_cpu_cores", {{"pod", "worker"}});
  ASSERT_EQ(cpu.size(), 1u);
  EXPECT_DOUBLE_EQ(cpu[0].second->max_over_time(), 4.0);
  auto memory = tb.metrics.select("pod_memory_bytes", {{"step", "1"}});
  ASSERT_EQ(memory.size(), 1u);
  EXPECT_DOUBLE_EQ(memory[0].second->max_over_time(), static_cast<double>(cu::gb(10)));
  // Series closed at zero after termination.
  EXPECT_DOUBLE_EQ(cpu[0].second->last(), 0.0);
}

TEST(Kube, GpuComputeUsesAllGrantedGpus) {
  Testbed tb(1);
  static double elapsed;
  elapsed = -1;
  auto program = [](ck::PodContext& ctx) -> cs::Task {
    const double t0 = ctx.sim().now();
    co_await ctx.gpu_compute(80.0);  // 80 GPU-seconds over 8 GPUs -> 10s
    elapsed = ctx.sim().now() - t0;
  };
  ck::PodSpec spec;
  ck::ContainerSpec c;
  c.requests = {1, cu::gb(4), 8};
  c.program = program;
  spec.containers.push_back(std::move(c));
  tb.kube->create_pod("default", "train", std::move(spec));
  tb.sim.run();
  EXPECT_DOUBLE_EQ(elapsed, 10.0);
}

TEST(Kube, MultiContainerPodWaitsForAll) {
  Testbed tb;
  ck::PodSpec spec;
  for (double d : {5.0, 15.0}) {
    ck::ContainerSpec c;
    c.name = "c" + std::to_string(static_cast<int>(d));
    c.requests = {1, cu::gb(1), 0};
    c.program = sleep_program(d);
    spec.containers.push_back(std::move(c));
  }
  auto pod = tb.kube->create_pod("default", "multi", std::move(spec)).value;
  tb.sim.run();
  EXPECT_EQ(pod->phase, ck::PodPhase::Succeeded);
  EXPECT_GE(pod->finished_at - pod->started_at, 15.0);
  EXPECT_LT(pod->finished_at - pod->started_at, 16.0);
}
