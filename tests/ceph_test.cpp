#include <gtest/gtest.h>

#include <set>

#include "ceph/ceph.hpp"
#include "ceph/cephfs.hpp"

namespace ce = chase::ceph;
namespace cc = chase::cluster;
namespace cn = chase::net;
namespace cs = chase::sim;
namespace cu = chase::util;

namespace {

struct StorageBed {
  cs::Simulation sim;
  cn::Network net{sim};
  cc::Inventory inventory{net};
  cn::NodeId switch_node;
  cn::NodeId client;
  std::unique_ptr<ce::CephCluster> ceph;
  std::vector<cc::MachineId> storage_machines;
  std::vector<int> osds;

  explicit StorageBed(int storage_nodes = 4, ce::CephCluster::Options opts = {}) {
    switch_node = net.add_node("switch");
    client = net.add_node("client");
    net.add_link(client, switch_node, cu::gbit_per_s(40), 1e-4);
    ceph = std::make_unique<ce::CephCluster>(sim, net, inventory, nullptr, opts);
    for (int i = 0; i < storage_nodes; ++i) {
      auto name = "stor-" + std::to_string(i);
      auto nn = net.add_node(name);
      net.add_link(nn, switch_node, cu::gbit_per_s(40), 1e-4);
      auto mid = inventory.add(cc::storage_fiona(name, "UCSD", cu::tb(100)), nn);
      storage_machines.push_back(mid);
      osds.push_back(ceph->add_osd(mid));
    }
  }
};

}  // namespace

TEST(Ceph, PutAndGetRoundTrip) {
  StorageBed bed;
  bed.ceph->create_pool("data");
  auto put = bed.ceph->put_async(bed.client, "data", "obj1", cu::gb(1));
  bed.sim.run();
  EXPECT_TRUE(put->ok);
  EXPECT_TRUE(bed.ceph->exists("data", "obj1"));
  EXPECT_EQ(*bed.ceph->object_size("data", "obj1"), cu::gb(1));

  auto get = bed.ceph->get_async(bed.client, "data", "obj1");
  bed.sim.run();
  EXPECT_TRUE(get->ok);
  EXPECT_EQ(get->bytes, cu::gb(1));
}

TEST(Ceph, MissingObjectGetFails) {
  StorageBed bed;
  bed.ceph->create_pool("data");
  auto get = bed.ceph->get_async(bed.client, "data", "ghost");
  bed.sim.run();
  EXPECT_FALSE(get->ok);
}

TEST(Ceph, MissingPoolPutFails) {
  StorageBed bed;
  auto put = bed.ceph->put_async(bed.client, "nope", "x", 100);
  bed.sim.run();
  EXPECT_FALSE(put->ok);
}

TEST(Ceph, ReplicationConsumesCapacityOnEachReplica) {
  ce::CephCluster::Options opts;
  opts.replication = 3;
  StorageBed bed(4, opts);
  bed.ceph->create_pool("data");
  auto put = bed.ceph->put_async(bed.client, "data", "obj", cu::gb(2));
  bed.sim.run();
  ASSERT_TRUE(put->ok);
  cu::Bytes used = 0;
  int holders = 0;
  for (int osd : bed.osds) {
    if (bed.ceph->osd_used(osd) > 0) {
      ++holders;
      used += bed.ceph->osd_used(osd);
    }
  }
  EXPECT_EQ(holders, 3);
  EXPECT_EQ(used, cu::gb(2) * 3);
}

TEST(Ceph, OverwriteDoesNotLeakCapacity) {
  StorageBed bed;
  bed.ceph->create_pool("data", 2);
  auto p1 = bed.ceph->put_async(bed.client, "data", "obj", cu::gb(4));
  bed.sim.run();
  auto p2 = bed.ceph->put_async(bed.client, "data", "obj", cu::gb(1));
  bed.sim.run();
  ASSERT_TRUE(p1->ok && p2->ok);
  cu::Bytes used = 0;
  for (int osd : bed.osds) used += bed.ceph->osd_used(osd);
  EXPECT_EQ(used, cu::gb(1) * 2);
}

TEST(Ceph, RemoveFreesCapacity) {
  StorageBed bed;
  bed.ceph->create_pool("data", 2);
  auto put = bed.ceph->put_async(bed.client, "data", "obj", cu::gb(1));
  bed.sim.run();
  ASSERT_TRUE(put->ok);
  bed.ceph->remove("data", "obj");
  for (int osd : bed.osds) EXPECT_EQ(bed.ceph->osd_used(osd), 0u);
  EXPECT_FALSE(bed.ceph->exists("data", "obj"));
}

TEST(Ceph, ReplicasOnDistinctMachines) {
  ce::CephCluster::Options opts;
  opts.replication = 3;
  opts.pg_count = 64;
  StorageBed bed(5, opts);
  bed.ceph->create_pool("data");
  for (int pg = 0; pg < 64; ++pg) {
    auto acting = bed.ceph->acting_set("data", pg);
    ASSERT_EQ(acting.size(), 3u) << "pg " << pg;
    std::set<cc::MachineId> machines;
    for (int osd : acting) {
      machines.insert(bed.storage_machines[static_cast<std::size_t>(osd)]);
    }
    EXPECT_EQ(machines.size(), 3u) << "pg " << pg;
  }
}

TEST(Ceph, PlacementIsBalanced) {
  ce::CephCluster::Options opts;
  opts.replication = 2;
  opts.pg_count = 512;
  StorageBed bed(8, opts);
  bed.ceph->create_pool("data");
  std::vector<int> load(8, 0);
  for (int pg = 0; pg < 512; ++pg) {
    for (int osd : bed.ceph->acting_set("data", pg)) load[static_cast<std::size_t>(osd)]++;
  }
  const double expected = 512.0 * 2 / 8;
  for (int l : load) {
    EXPECT_GT(l, expected * 0.6);
    EXPECT_LT(l, expected * 1.4);
  }
}

TEST(Ceph, AddingOsdMovesLittleData) {
  ce::CephCluster::Options opts;
  opts.replication = 2;
  opts.pg_count = 512;
  StorageBed bed(8, opts);
  bed.ceph->create_pool("data");
  std::vector<std::vector<int>> before(512);
  for (int pg = 0; pg < 512; ++pg) before[pg] = bed.ceph->acting_set("data", pg);

  // Add a 9th OSD.
  auto nn = bed.net.add_node("stor-8");
  bed.net.add_link(nn, bed.switch_node, cu::gbit_per_s(40), 1e-4);
  auto mid = bed.inventory.add(cc::storage_fiona("stor-8", "UCSD", cu::tb(100)), nn);
  bed.ceph->add_osd(mid);
  bed.sim.run();

  int changed = 0;
  for (int pg = 0; pg < 512; ++pg) {
    if (bed.ceph->acting_set("data", pg) != before[pg]) ++changed;
  }
  // Ideal straw2 movement: 2/9 of PG-replicas gain the new OSD (~22%); allow
  // generous slack but require far less than a full reshuffle.
  EXPECT_LT(changed, 512 * 40 / 100);
  EXPECT_GT(changed, 512 * 8 / 100);
}

TEST(Ceph, OsdFailureDegradesThenRecovers) {
  ce::CephCluster::Options opts;
  opts.replication = 2;
  opts.pg_count = 32;
  opts.recovery_rate = 1e9;
  StorageBed bed(4, opts);
  bed.ceph->create_pool("data");
  for (int i = 0; i < 50; ++i) {
    bed.ceph->put_async(bed.client, "data", "obj" + std::to_string(i), cu::gb(1));
  }
  bed.sim.run();
  ASSERT_TRUE(bed.ceph->health().healthy());
  ASSERT_EQ(bed.ceph->object_count("data"), 50u);

  bed.inventory.set_up(bed.storage_machines[0], false);
  auto after_fail = bed.ceph->health();
  EXPECT_FALSE(after_fail.healthy());
  EXPECT_GT(after_fail.pgs_recovering + after_fail.pgs_degraded, 0);

  bed.sim.run();  // recovery traffic drains
  auto recovered = bed.ceph->health();
  EXPECT_TRUE(recovered.healthy()) << "clean=" << recovered.pgs_clean
                                   << " degraded=" << recovered.pgs_degraded
                                   << " recovering=" << recovered.pgs_recovering;
  // All objects still readable.
  auto get = bed.ceph->get_async(bed.client, "data", "obj7");
  bed.sim.run();
  EXPECT_TRUE(get->ok);
}

TEST(Ceph, ReplicationFactorOneLosesRedundancy) {
  ce::CephCluster::Options opts;
  opts.replication = 1;
  StorageBed bed(3, opts);
  bed.ceph->create_pool("data");
  auto put = bed.ceph->put_async(bed.client, "data", "obj", cu::gb(1));
  bed.sim.run();
  ASSERT_TRUE(put->ok);
  int holders = 0;
  for (int osd : bed.osds) holders += bed.ceph->osd_used(osd) > 0;
  EXPECT_EQ(holders, 1);
}

TEST(Ceph, HigherReplicationTakesLonger) {
  double times[2];
  for (int run = 0; run < 2; ++run) {
    ce::CephCluster::Options opts;
    opts.replication = run == 0 ? 1 : 3;
    StorageBed bed(4, opts);
    bed.ceph->create_pool("data");
    auto put = bed.ceph->put_async(bed.client, "data", "obj", cu::gb(8));
    bed.sim.run();
    ASSERT_TRUE(put->ok);
    times[run] = put->finish_time - put->start_time;
  }
  EXPECT_GT(times[1], times[0] * 1.3);
}

TEST(Ceph, HealthCountsBytesStored) {
  StorageBed bed;
  bed.ceph->create_pool("data", 2);
  bed.ceph->put_async(bed.client, "data", "a", cu::gb(1));
  bed.ceph->put_async(bed.client, "data", "b", cu::gb(2));
  bed.sim.run();
  EXPECT_EQ(bed.ceph->health().bytes_stored, cu::gb(3));
  // Written bytes include replication.
  EXPECT_DOUBLE_EQ(bed.ceph->total_bytes_written(), static_cast<double>(cu::gb(3)) * 2);
}

// Property sweep: every object's PG is stable and within range for varied
// pool/object names.
class PgMapping : public ::testing::TestWithParam<int> {};

TEST_P(PgMapping, StableAndInRange) {
  ce::CephCluster::Options opts;
  opts.pg_count = GetParam();
  StorageBed bed(3, opts);
  bed.ceph->create_pool("p");
  for (int i = 0; i < 200; ++i) {
    const std::string name = "object-" + std::to_string(i * 7919);
    const int pg1 = bed.ceph->pg_of("p", name);
    const int pg2 = bed.ceph->pg_of("p", name);
    EXPECT_EQ(pg1, pg2);
    EXPECT_GE(pg1, 0);
    EXPECT_LT(pg1, GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(PgCounts, PgMapping, ::testing::Values(16, 64, 128, 256));

TEST(CephFs, WriteListReadRemove) {
  StorageBed bed;
  ce::CephFs fs(*bed.ceph, "cephfs-data", 2);
  static bool done;
  done = false;
  auto writer = [](StorageBed* b, ce::CephFs* f) -> cs::Task {
    co_await f->write_file(b->client, "/merra2/1980/jan.h5", cu::mb(500));
    co_await f->write_file(b->client, "/merra2/1980/feb.h5", cu::mb(400));
    co_await f->write_file(b->client, "/models/ffn.ckpt", cu::mb(381));
    done = true;
  };
  bed.sim.spawn(writer(&bed, &fs));
  bed.sim.run();
  ASSERT_TRUE(done);

  EXPECT_TRUE(fs.exists("/models/ffn.ckpt"));
  EXPECT_EQ(*fs.file_size("/models/ffn.ckpt"), cu::mb(381));
  EXPECT_EQ(fs.list("/merra2/").size(), 2u);
  EXPECT_EQ(fs.bytes_under("/merra2/"), cu::mb(900));
  EXPECT_EQ(fs.list("/").size(), 3u);

  fs.remove_file("/merra2/1980/jan.h5");
  EXPECT_EQ(fs.list("/merra2/").size(), 1u);
  EXPECT_FALSE(fs.exists("/merra2/1980/jan.h5"));
}

TEST(CephFs, ReadMissingFileFails) {
  StorageBed bed;
  ce::CephFs fs(*bed.ceph);
  auto io = fs.read_file_async(bed.client, "/nope");
  bed.sim.run();
  EXPECT_FALSE(io->ok);
}
