/// \file net_scaling_test.cpp
/// Property tests for the scoped max-min recompute and lazy settlement
/// (DESIGN.md "Incremental max-min rate updates").
///
/// The incremental formulation is only allowed to be *faster* than the
/// all-components recompute — never different. These tests drive the two
/// implementations against each other over randomized topologies and churn
/// sequences, and pin down the observable contracts the optimization must
/// preserve:
///
///   * bit-identical rates vs. a from-scratch progressive filling after
///     every mutation (rates_match_full_recompute), across >= 100 random
///     topology/churn schedules including link flaps and degradations;
///   * exact byte conservation under lazy per-flow settlement;
///   * bit-identical event traces across replays, including chaos-style
///     link flap schedules (the determinism contract that bench_compare
///     and tools/determinism_check rely on);
///   * scoped recompute leaves disjoint components' live rates untouched.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace cn = chase::net;
namespace cs = chase::sim;
namespace cu = chase::util;

namespace {

// FNV-1a over the event trace: the same fingerprint scheme as
// tools/determinism_check, reimplemented locally so the test stays a
// plain gtest binary.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

/// A random connected topology: a spanning chain (guarantees one
/// component) plus a few chords, with mixed bandwidths so bottlenecks land
/// on different links per seed.
struct RandomTopo {
  cs::Simulation sim;
  cn::Network net{sim};
  std::vector<cn::NodeId> nodes;
  std::vector<cn::LinkId> links;

  explicit RandomTopo(cu::Rng& rng, int n) {
    nodes.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      nodes.push_back(net.add_node("n" + std::to_string(i)));
    }
    for (int i = 1; i < n; ++i) {
      links.push_back(net.add_link(nodes[static_cast<std::size_t>(i - 1)],
                                   nodes[static_cast<std::size_t>(i)],
                                   rng.uniform(50.0, 400.0), 0.0));
    }
    const int chords = static_cast<int>(rng.uniform_u64(3));
    for (int c = 0; c < chords && n > 2; ++c) {
      const auto a = rng.uniform_u64(static_cast<std::uint64_t>(n));
      auto b = rng.uniform_u64(static_cast<std::uint64_t>(n));
      if (a == b) b = (b + 1) % static_cast<std::uint64_t>(n);
      if (net.find_link(nodes[a], nodes[b]) >= 0) continue;
      links.push_back(net.add_link(nodes[a], nodes[b], rng.uniform(50.0, 400.0), 0.0));
    }
  }

  cn::NodeId pick_node(cu::Rng& rng) const {
    return nodes[rng.uniform_u64(nodes.size())];
  }
  cn::LinkId pick_link(cu::Rng& rng) const {
    return links[rng.uniform_u64(links.size())];
  }
};

}  // namespace

// The core property: after EVERY mutation the incremental rates are
// bit-identical to a from-scratch progressive filling over all components.
// 120 random seeds x ~30 mutations each — flow arrivals (the scoped
// recompute's add path), drained completions (the remove path), link flaps
// (fail + re-rate), and bandwidth degradation (re-rate in place).
TEST(NetScaling, RandomChurnMatchesFullRecompute) {
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    cu::Rng rng(0xABCD0000ULL + seed);
    const int n = 3 + static_cast<int>(rng.uniform_u64(8));
    RandomTopo w(rng, n);

    std::vector<cn::TransferPtr> handles;
    const int steps = 25 + static_cast<int>(rng.uniform_u64(15));
    for (int step = 0; step < steps; ++step) {
      const double roll = rng.uniform();
      if (roll < 0.55) {
        // Arrival: a fresh flow between random endpoints.
        auto src = w.pick_node(rng);
        auto dst = w.pick_node(rng);
        if (src == dst) dst = w.nodes[(static_cast<std::size_t>(dst) + 1) % w.nodes.size()];
        handles.push_back(w.net.transfer(
            src, dst, static_cast<cu::Bytes>(rng.uniform(1e3, 5e4))));
      } else if (roll < 0.75) {
        // Completion churn: run the event loop a little so some flows
        // finish and their removal re-runs the scoped recompute.
        for (int k = 0; k < 8 && w.sim.step(); ++k) {
        }
      } else if (roll < 0.9) {
        // Chaos-style flap: both the fail path and the heal path re-rate.
        const auto l = w.pick_link(rng);
        w.net.set_link_up(l, false);
        ASSERT_TRUE(w.net.rates_match_full_recompute())
            << "seed " << seed << " step " << step << " (link down)";
        w.net.set_link_up(l, true);
      } else {
        // Degradation: shrink or restore capacity under live flows.
        w.net.set_link_bandwidth_factor(w.pick_link(rng), rng.uniform(0.1, 1.0));
      }
      ASSERT_TRUE(w.net.rates_match_full_recompute())
          << "seed " << seed << " step " << step;
      w.net.check_invariants();
    }

    // Drain: every completion exercises the removal path one more time.
    while (w.sim.step()) {
    }
    ASSERT_TRUE(w.net.rates_match_full_recompute()) << "seed " << seed << " (drained)";
    ASSERT_EQ(w.net.active_flows(), 0u) << "seed " << seed;
    w.net.check_invariants();
  }
}

// Lazy settlement must not lose or invent bytes: once the sim drains,
// cumulative delivered bytes equal the sum of successfully completed
// transfer sizes exactly (every flow's final settle runs at completion),
// and mid-run the on-the-fly accrual in total_bytes_delivered() is
// monotone non-decreasing.
TEST(NetScaling, LazySettlementConservesBytes) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    cu::Rng rng(0xBEEF0000ULL + seed);
    RandomTopo w(rng, 6);

    double expected = 0.0;
    std::vector<cn::TransferPtr> handles;
    for (int i = 0; i < 40; ++i) {
      auto src = w.pick_node(rng);
      auto dst = w.pick_node(rng);
      if (src == dst) dst = w.nodes[(static_cast<std::size_t>(dst) + 1) % w.nodes.size()];
      const auto bytes = static_cast<cu::Bytes>(rng.uniform(1e3, 1e5));
      handles.push_back(w.net.transfer(src, dst, bytes));
    }

    double last = 0.0;
    while (w.sim.step()) {
      const double d = w.net.total_bytes_delivered();
      ASSERT_GE(d, last) << "seed " << seed;
      last = d;
    }
    for (const auto& h : handles) {
      ASSERT_FALSE(h->failed) << "seed " << seed;
      expected += static_cast<double>(h->bytes);
    }
    EXPECT_NEAR(w.net.total_bytes_delivered(), expected, expected * 1e-9)
        << "seed " << seed;
    w.net.check_invariants();
  }
}

namespace {

/// One fixed churn-plus-chaos schedule; returns the FNV-1a fingerprint of
/// the full (time, seq) event trace — the replay-determinism observable.
std::uint64_t traced_run(bool with_flaps) {
  cu::Rng rng(0x5EED5EEDULL);
  RandomTopo w(rng, 8);

  std::uint64_t h = kFnvOffset;
  w.sim.set_trace_hook([&h](double t, std::uint64_t seq) {
    h = fnv1a(fnv1a(h, bits(t)), seq);
  });

  for (int i = 0; i < 60; ++i) {
    auto src = w.pick_node(rng);
    auto dst = w.pick_node(rng);
    if (src == dst) dst = w.nodes[(static_cast<std::size_t>(dst) + 1) % w.nodes.size()];
    w.net.transfer(src, dst, static_cast<cu::Bytes>(rng.uniform(1e3, 1e5)));
    if (with_flaps && i % 12 == 7) {
      // Chaos-style mid-run flap: fail a random link, then heal it a few
      // events later so surviving flows are re-rated twice.
      const auto l = w.pick_link(rng);
      w.net.set_link_up(l, false);
      for (int k = 0; k < 4 && w.sim.step(); ++k) {
      }
      w.net.set_link_up(l, true);
    }
    for (int k = 0; k < 6 && w.sim.step(); ++k) {
    }
  }
  while (w.sim.step()) {
  }
  EXPECT_TRUE(w.net.rates_match_full_recompute());
  return fnv1a(h, w.sim.events_processed());
}

}  // namespace

// Replaying the same seeded schedule must reproduce the event trace
// bit-for-bit — the incremental recompute introduces no iteration-order or
// accumulation-order dependence. Covered both with and without the chaos
// flap schedule (the fail/heal paths take different recompute scopes).
TEST(NetScaling, DeterminismHashReplays) {
  EXPECT_EQ(traced_run(false), traced_run(false));
  EXPECT_EQ(traced_run(true), traced_run(true));
  EXPECT_NE(traced_run(false), traced_run(true));  // flaps do change the trace
}

// Churn in one component must not even touch flows in another: a
// disconnected pair's rate stays bit-identical (no settle, no re-rate)
// while an unrelated component churns through arrivals and completions.
TEST(NetScaling, ScopedRecomputeLeavesOtherComponentsUntouched) {
  cs::Simulation sim;
  cn::Network net(sim);
  // Component A: one long-lived flow at full bandwidth.
  const auto a1 = net.add_node("a1");
  const auto a2 = net.add_node("a2");
  net.add_link(a1, a2, 100.0, 0.0);
  // Component B: disjoint churn factory.
  const auto b1 = net.add_node("b1");
  const auto b2 = net.add_node("b2");
  net.add_link(b1, b2, 250.0, 0.0);

  auto longhaul = net.transfer(a1, a2, 1'000'000);
  // The flow starts via a scheduled event; step until its rate is live.
  while (net.node_tx_rate(a1) == 0.0 && sim.step()) {
  }
  const double rate_before = net.node_tx_rate(a1);
  EXPECT_DOUBLE_EQ(rate_before, 100.0);

  cu::Rng rng(0x0FF5CALL);
  for (int i = 0; i < 30; ++i) {
    auto churn = net.transfer(b1, b2, static_cast<cu::Bytes>(rng.uniform(1e2, 1e4)));
    // Step exactly until this churn flow completes — no further, or the
    // next popped event would be the longhaul's own (far-future)
    // completion.
    while (churn->finish_time < 0.0 && sim.step()) {
    }
    // Bit-identical, not just close: A was never in B's recompute scope.
    ASSERT_EQ(bits(net.node_tx_rate(a1)), bits(rate_before)) << "iter " << i;
    ASSERT_TRUE(net.rates_match_full_recompute()) << "iter " << i;
  }
  sim.run();
  EXPECT_FALSE(longhaul->failed);
  EXPECT_DOUBLE_EQ(longhaul->finish_time, 10000.0);  // 1e6 B at 100 B/s
}
