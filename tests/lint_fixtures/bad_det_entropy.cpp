// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// det-entropy positives: every wall-clock / hardware-entropy source the
// check knows. Any of these feeding sim state makes seeded replay
// unreproducible; the only sanctioned sources are util::Rng (seeded from
// the CLI) and Simulation::now().
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fix {

unsigned seed_from_hardware() {
  std::random_device rd;  // LINT[det-entropy]
  return rd();
}

void jitter_times(Scheduler* sched) {
  auto wall = std::chrono::steady_clock::now();           // LINT[det-entropy]
  auto stamp = std::chrono::system_clock::now();          // LINT[det-entropy]
  auto fine = std::chrono::high_resolution_clock::now();  // LINT[det-entropy]
  sched->offset(wall, stamp, fine);
}

int legacy_seed() {
  std::srand(42);              // LINT[det-entropy]
  int jitter = rand() % 7;     // LINT[det-entropy]
  long stamp = time(nullptr);  // LINT[det-entropy]
  long ticks = std::time(0);   // LINT[det-entropy]
  return jitter + static_cast<int>(stamp + ticks);
}

void posix_clocks(struct timeval* tv, struct timespec* ts) {
  gettimeofday(tv, nullptr);            // LINT[det-entropy]
  clock_gettime(CLOCK_MONOTONIC, ts);   // LINT[det-entropy]
}

// Suppressed: this harness prints how long the run took; the duration is
// display-only output and never feeds back into sim behavior.
double measure_wall_seconds(Simulation* sim) {
  // chase-lint: allow(det-entropy) wall time is display-only output, never a sim input
  auto start = std::chrono::steady_clock::now();
  sim->run();
  // chase-lint: allow(det-entropy) wall time is display-only output, never a sim input
  auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace fix
