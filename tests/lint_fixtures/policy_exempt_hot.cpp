// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// Policy-exempt case: the fixture config carries
//   allow-file policy_exempt_hot.cpp (hot-alloc) <why>
// so hot-alloc findings in this file are suppressed wholesale -- the
// cold-directory escape hatch that avoids per-line allows. Checks NOT named
// by the entry still fire, so allow-file stays a scalpel, not a blanket.
#include <memory>

namespace fix {

void hot_fn(Pool* pool) {
  auto sp = std::make_shared<Entry>();  // hot-alloc, suppressed by allow-file
  auto* e = new Entry();                // hot-alloc, suppressed by allow-file
  pool->keep(sp, e);
}

void hot_fn(std::map<int, double>& m, int k) {
  m[k] = 1.0;
  touch(m[k]);  // LINT[hot-relookup]  (allow-file covers hot-alloc only)
}

}  // namespace fix
