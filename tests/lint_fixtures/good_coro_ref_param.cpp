// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// No markers: every construct here must stay silent.
#include <string>

namespace fix {

// The repo's safe idiom: by-value parameters live in the frame.
sim::Task blpop_impl(std::string key, std::string* out, bool* got) {
  *got = false;
  co_await round_trip();
  *out = server.lpop(key);
  *got = true;
}

// Allow-listed environment types (see .chase-lint): a Simulation& cannot
// outlive its frames, a PodContext& is heap-owned by the pod.
sim::Task waiter(sim::Simulation& sim, sim::EventPtr ev) {
  co_await ev->wait(sim);
}

sim::Task program(kube::PodContext& ctx) {
  co_await ctx.compute(1.0, 2.0);
}

// Not a coroutine: references are fine in ordinary functions.
int count(const std::string& key, const std::vector<int>& xs) {
  return static_cast<int>(xs.size()) + static_cast<int>(key.size());
}

// A reference parameter on a *nested, non-coroutine* lambda inside a
// coroutine body is fine -- the nested frame is not lazy.
sim::Task outer(std::string key) {
  auto fmt = [](const std::string& s) { return s + "!"; };
  co_await send(fmt(key));
}

}  // namespace fix
