// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// hot-alloc negatives: the same allocation patterns stay silent off the hot
// path, when capacity is visibly reserved, inside CHASE_* assertion
// arguments (failure paths may allocate), or under a justified allow().
#include <memory>

namespace fix {

// Not named by any hot-function entry: allocations here are setup cost.
void cold_setup(Pool* pool) {
  auto* e = new Entry();
  auto sp = std::make_shared<Entry>();
  std::function<void()> cb = pool->handler();
  pool->keep(e, sp, cb);
}

// A visible reserve() on the receiver -- anywhere in the file, typically a
// constructor -- licenses steady-state push_back.
struct Batcher {
  Batcher() { items_.reserve(1024); }
  std::vector<int> items_;
};

void hot_fn(Batcher* b, int x) {
  b->items_.push_back(x);
  std::vector<int>& items_ = b->items_;
  items_.push_back(x);
}

// Assertion arguments are failure-path code: building the message may
// allocate, and that is fine -- it only runs when the invariant is broken.
void hot_fn(Ledger* l, int got, int want) {
  CHASE_ASSERT(got == want,
               "ledger drift: " + std::to_string(got) + " != " + std::to_string(want));
  l->advance();
}

// A justified inline allow() is the per-line escape hatch.
void hot_fn(Registry* r) {
  auto probe = std::make_shared<Probe>();  // chase-lint: allow(hot-alloc) fixture: one-time lazy init, not steady state
  r->adopt(probe);
}

}  // namespace fix
