// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// det-float-tiebreak negatives: the (key, id) tiebreak idiom, integral
// keys, std::tie total orders, and value-sorts of raw floats stay silent.
#include <algorithm>
#include <tuple>
#include <vector>

namespace fix {

struct Cand {
  double score;
  int id;
};

// The blessed idiom: compare the float key, then break ties on a stable id.
void rank(std::vector<Cand>& cands) {
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  });
}

// Integral keys are already a total order.
void rank_by_id(std::vector<Cand>& cands) {
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.id < b.id; });
}

// std::tie spells the tiebreak in one expression.
void rank_tied(std::vector<Cand>& cands) {
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    return std::tie(a.score, a.id) < std::tie(b.score, b.id);
  });
}

// Sorting raw floats by value: equal keys are identical values, so their
// relative order is unobservable.
void sort_values(std::vector<double>& xs) {
  std::sort(xs.begin(), xs.end());
  std::sort(xs.begin(), xs.end(), [](double a, double b) { return a > b; });
}

// A float-comparing lambda that is never handed to a sort or heap call is
// not a comparator; equality-style uses stay out of scope.
void partition_stats(const std::vector<Cand>& cands, Stats* stats) {
  auto hotter = [](const Cand& a, const Cand& b) { return a.score > b.score; };
  stats->note_pairwise(hotter);
}

}  // namespace fix
