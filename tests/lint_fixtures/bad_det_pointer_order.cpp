// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// det-pointer-order positives: every spelling of "ordered by address" the
// check knows. Address order varies under ASLR and allocation history, so
// any of these makes iteration or sort order differ between runs.
#include <functional>
#include <map>
#include <set>
#include <vector>

namespace fix {

// Ordered containers keyed by raw pointers iterate in address order.
std::map<Node*, int> rank_by_node;   // LINT[det-pointer-order]
std::set<const Flow*> active_flows;  // LINT[det-pointer-order]

// std::less over a pointer type is the same hazard spelled explicitly.
using FrameCmp = std::less<Frame*>;  // LINT[det-pointer-order]

// Comparator lambda ordering its two pointer parameters by address.
void order_frames(std::vector<Frame*>& frames) {
  std::sort(frames.begin(), frames.end(),
            [](const Frame* a, const Frame* b) { return a < b; });  // LINT[det-pointer-order]
}

// Comparator-less sort of a vector of raw pointers.
void order_pods(std::vector<Pod*>& pods) {
  std::sort(pods.begin(), pods.end());  // LINT[det-pointer-order]
}

// Suppressed: this map is only ever used for point lookups (insert / find /
// erase); nothing iterates it, so its internal order is unobservable.
// chase-lint: allow(det-pointer-order) point lookups only, never iterated; order is unobservable
std::map<Frame*, int> debug_refcounts;

}  // namespace fix
