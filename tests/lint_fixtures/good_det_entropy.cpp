// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// det-entropy negatives: the sanctioned randomness/time sources, and names
// that merely *look* like the banned ones (members, methods, fields).
#include <cstdint>

#include "util/rng.hpp"

namespace fix {

// The sanctioned source: a util::Rng seeded from the CLI.
double sample_delay(util::Rng& rng) {
  return rng.exponential(1.5);
}

// Sim time comes from the simulation clock, never the wall.
double next_deadline(const Simulation& sim, double interval) {
  return sim.now() + interval;
}

// Methods and members named like the banned calls belong to their objects.
std::uint64_t shuffle(Deck* deck, Telemetry* t) {
  deck->rand();                 // member: not ::rand()
  const double at = t->time();  // member: not ::time()
  t->clock().tick();            // member: not std::clock()
  return deck->draws() + static_cast<std::uint64_t>(at);
}

// A field named `time` and a free call with a non-null argument are both
// ordinary identifiers, not the C library wall clock.
double event_time(const Event& ev, int step) {
  double time = ev.time;
  return time + scale(time(step));
}

}  // namespace fix
