// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// Suppression semantics: a justified allow() silences its finding; a
// missing justification, an unknown check name, and an allow() that matches
// nothing are each findings in their own right (lint-suppression), so dead
// or lazy suppressions cannot accumulate.
#include <string>

namespace fix {

// Justified suppression on the finding's own line: silent.
sim::Task justified(const std::string& key) {  // chase-lint: allow(coro-ref-param) fixture: referent is a global interned string, outlives every frame
  co_await use(key);
}

// Justified suppression on the line above the finding: silent.
// chase-lint: allow(coro-ref-param) fixture: referent is a global interned string, outlives every frame
sim::Task justified_above(const std::string& key) {
  co_await use(key);
}

// No justification: the allow() is rejected AND the underlying finding
// still surfaces.
// LINT+1[coro-ref-param] LINT+1[lint-suppression]
sim::Task unjustified(const std::string& key) {  // chase-lint: allow(coro-ref-param)
  co_await use(key);
}

// Unknown check name: rejected (and there is no finding here to hide).
// LINT+1[lint-suppression]
// chase-lint: allow(not-a-real-check) because reasons
sim::Task fine(std::string key) {
  co_await use(key);
}

// Unused suppression: nothing on this line fires, so the allow() itself is
// reported -- dead allows must be deleted, not hoarded.
// LINT+1[lint-suppression]
// chase-lint: allow(coro-stale-ref) fixture: nothing here needs suppressing
sim::Task clean(std::string key) {
  co_await use(key);
}

}  // namespace fix
