// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// No markers: every construct here must stay silent.
#include <string>

namespace fix {

// The sanctioned pattern (redis blpop_impl): a LiveGuard flips a shared
// liveness flag when the frame dies, and the consumer checks it before
// writing through the escaped pointers.
sim::Task park_waiter_guarded(Server* self, std::string key, std::string* out) {
  auto live = std::make_shared<bool>(true);
  LiveGuard guard(live);
  bool delivered = false;
  self->blocked_[key].push_back(Waiter{ready, out, &delivered, live});
  co_await ready->wait(self->sim_);
  (void)delivered;
}

// Escaping heap-owned state by value is fine; nothing points into the frame.
sim::Task publish_shared(Bus* self) {
  auto box = std::make_shared<int>(0);
  self->subscribe("topic", box);
  co_await self->drain();
}

// Passing a local's address to an ordinary call that is not a sink (it
// cannot outlive the statement) is fine.
sim::Task out_param(Server* self) {
  bool ok = false;
  self->ping(&ok);
  co_await self->drain();
  (void)ok;
}

}  // namespace fix
