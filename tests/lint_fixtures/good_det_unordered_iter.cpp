// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// det-unordered-iter negatives: membership-only scans, ordered maps, the
// sorted-snapshot idiom, and policy-exempted containers stay silent.
#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fix {

// Membership-only scan: reads and compares, then returns a constant.
bool has_flow(const std::unordered_set<int>& hot, int fid) {
  for (int h : hot) {
    if (h == fid) return true;
  }
  return false;
}

// The membership-flag idiom: assigning a lone constant is order-independent
// (the result only records that some element matched).
bool any_ready(const std::unordered_map<int, int>& state) {
  bool ready = false;
  for (const auto& [key, v] : state) {
    if (v > 0) {
      ready = true;
      break;
    }
  }
  return ready;
}

// std::map iterates in key order: effects are fine.
void settle_all(std::map<int, Flow*>& flows, Ledger* ledger) {
  for (auto& [fid, f] : flows) {
    ledger->append(fid);
  }
}

// The sorted-snapshot idiom: collect keys, impose a total order, then act.
void drain_sorted(const std::unordered_map<int, int>& pending, Sink* sink) {
  std::vector<int> keys;
  for (const auto& [key, v] : pending) {
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  for (int key : keys) {
    sink->record(pending.at(key));
  }
}

// Range expression with a call is somebody's snapshot, not a live
// unordered container; out of scope by design.
void walk_snapshot(Registry* reg, Sink* sink) {
  for (const auto& item : reg->sorted_items()) {
    sink->record(item);
  }
}

// Per-iteration scratch state dies with the iteration: writes to it are
// unobservable outside the loop body.
void local_scratch(const std::unordered_map<int, int>& m, Sink* sink) {
  for (const auto& [key, v] : m) {
    std::vector<int> tmp;
    tmp.push_back(v);
    if (tmp.front() == 0) sink->flag_zero();
  }
}

// Policy-exempted container (fixture policy: allow-unordered
// allowed_registry_, mirroring the tree's Simulation::detached_ teardown).
void teardown(Host* h) {
  for (void* frame : allowed_registry_) {
    h->destroy(frame);
  }
}

}  // namespace fix
