// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// Every `LINT` bracket marker names a finding expected on that line; the
// `+1` form expects it on the following line. A marker-free line must stay
// silent.
//
// The blpop_impl regression (PR 2): a lazy coroutine frame stores the
// *reference* parameter, not the referent; the caller's temporary is gone by
// the first suspension point and `key` dangles for the rest of the frame.
#include <string>

namespace fix {

sim::Task blpop_impl(const std::string& key, std::string* out, bool* got) {  // LINT[coro-ref-param]
  *got = false;
  co_await round_trip();
  *out = server.lpop(key);  // reads through the dangling reference
  *got = true;
}

sim::Task view_param(std::string_view dataset) {  // LINT[coro-ref-param]
  co_await fetch(dataset);
}

sim::Task span_param(std::span<const int> shards) {  // LINT[coro-ref-param]
  co_await scatter(shards);
}

sim::Task mutable_ref(std::vector<int>& acc, int x) {  // LINT[coro-ref-param]
  co_await tick();
  acc.push_back(x);
}

struct Client {
  // Member coroutines are just as lazy as free ones.
  sim::Task publish(const std::string& channel, int payload);  // declaration: no body, silent
};

sim::Task Client::publish(const std::string& channel, int payload) {  // LINT[coro-ref-param]
  co_await round_trip();
  server.publish(channel, payload);
}

// Rvalue-reference parameters dangle the same way: the frame stores the
// reference, and the moved-from temporary dies at the call's end.
sim::Task sink(std::vector<int>&& xs) {  // LINT[coro-ref-param]
  auto mine = std::move(xs);
  co_await tick();
  (void)mine;
}

void spawn_all(Runtime* rt) {
  // Coroutine lambdas with reference parameters are the same bug.
  auto worker = [](Queue& q, int id) -> sim::Task {  // LINT[coro-ref-param]
    co_await q.pop();
    (void)id;
  };
  rt->spawn(worker(rt->queue, 1));
}

}  // namespace fix
