// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// A coroutine lambda's closure lives only as long as the std::function (or
// temporary) holding it; by-reference captures and `this` dangle as soon as
// the frame outlives the enclosing scope.
#include <string>

namespace fix {

void schedule_work(Runtime* rt) {
  int total = 0;
  auto a = [&](sim::Simulation& s) -> sim::Task {  // LINT[coro-lambda-capture]
    co_await s.sleep(1.0);
    total++;
  };
  auto b = [&total](sim::Simulation& s) -> sim::Task {  // LINT[coro-lambda-capture]
    co_await s.sleep(1.0);
    total++;
  };
  rt->spawn(a(rt->sim));
  rt->spawn(b(rt->sim));
}

struct Controller {
  Runtime* rt;
  int reconciles = 0;
  void start() {
    auto loop = [this]() -> sim::Task {  // LINT[coro-lambda-capture]
      co_await rt->sim.sleep(5.0);
      reconciles++;
    };
    rt->spawn(loop());
  }
};

}  // namespace fix
