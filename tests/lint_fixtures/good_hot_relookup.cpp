// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// hot-relookup negatives: different keys, a key rebound between lookups,
// sibling scopes, composite receivers, cold functions, and the justified
// allow() escape hatch.
#include <map>

namespace fix {

void hot_fn(std::map<int, double>& m, int a, int b) {
  m[a] = 1.0;
  m[b] = 2.0;  // different key: silent
}

void hot_fn(std::map<int, double>& m, int k) {
  m[k] = 1.0;
  ++k;
  m[k] = 2.0;  // key advanced between lookups: a different element
}

void hot_fn(std::map<int, double>& m, int k, Iter& src) {
  m[k] = 1.0;
  k = src.next();
  m[k] = 2.0;  // key rebound: silent
}

void hot_fn(std::map<int, double>& m, int k, bool flip) {
  if (flip) {
    m[k] = 1.0;
  }
  {
    m[k] = 2.0;  // sibling scope: the first lookup's element may be gone
  }
}

// Composite receivers are skipped: `a.rows` and `b.rows` share a trailing
// name but are different containers.
void hot_fn(Table& a, Table& b, int k) {
  a.rows[k] = 1;
  b.rows[k] = 2;
}

// Off the hot path the double walk is tolerated.
void cold_audit(std::map<int, double>& m, int k) {
  m[k] = 1.0;
  check(m[k]);
}

// Deliberate double lookup, justified inline: the first lookup's iterator
// is invalidated by the callback in between.
void hot_fn(std::map<int, double>& m, int k, Cb cb) {
  m[k] = 1.0;
  cb();
  touch(m[k]);  // chase-lint: allow(hot-relookup) fixture: cb() may rehash m; the first reference is invalid here
}

}  // namespace fix
