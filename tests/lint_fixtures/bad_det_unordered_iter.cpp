// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// det-unordered-iter positives: loops over unordered containers whose
// bodies have observable effects, so bucket order (implementation-defined
// and seed-independent) leaks into traces, hashes, or scheduled events.
#include <unordered_map>
#include <unordered_set>

namespace fix {

// Accumulation: float += in bucket order changes the rounded total.
double sum_rates(const std::unordered_map<int, double>& rates) {
  double total = 0.0;
  for (const auto& [fid, r] : rates) {  // LINT[det-unordered-iter]
    total += r;
  }
  return total;
}

// Event scheduling from a bucket-ordered walk: (time, seq) pairs diverge.
void kick_all(Simulation* sim, std::unordered_set<Waiter*>& parked) {
  for (Waiter* w : parked) {  // LINT[det-unordered-iter]
    sim->schedule(0.0, w);
  }
}

// Output: the report is written in bucket order.
void dump(std::ostream& os, const std::unordered_map<int, int>& counts) {
  for (const auto& [key, v] : counts) {  // LINT[det-unordered-iter]
    os << key << v;
  }
}

// Iterator-loop spelling of the same hazard.
void drain(std::unordered_map<int, Item>& items, Sink* sink) {
  for (auto it = items.begin(); it != items.end(); ++it) {  // LINT[det-unordered-iter]
    sink->record(it->second);
  }
}

// Aliased unordered types are still unordered.
using FlowIndex = std::unordered_map<int, Flow*>;
void settle(FlowIndex& flows, Ledger* ledger) {
  for (auto& [fid, f] : flows) {  // LINT[det-unordered-iter]
    ledger->append(fid);
  }
}

// Suppressed: integer += is commutative and overflow-free here, and only
// the final total is ever observed, so bucket order cannot surface.
long tally(const std::unordered_map<int, long>& hits) {
  long n = 0;
  // chase-lint: allow(det-unordered-iter) integer += commutes; only the final total is observed
  for (const auto& [key, v] : hits) {
    n += v;
  }
  return n;
}

}  // namespace fix
