// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// det-pointer-order negatives: pointers as mapped *values*, transparent
// std::less<>, id-keyed comparators with tiebreaks, and comparator-less
// sorts of value types all stay silent.
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

namespace fix {

// Pointer as the mapped value: lookup by stable id, order comes from the key.
std::map<int, Node*> node_by_id;

// Hash containers do not promise any order; pointer keys are a
// det-unordered-iter concern (when iterated), not an ordering one.
std::unordered_map<Node*, int> scratch_index;

// Transparent comparator carries no pointer type.
std::set<int, std::less<>> by_value;

// Comparing through stable id fields with a tiebreak is the blessed idiom.
void order_frames(std::vector<Frame*>& frames) {
  std::sort(frames.begin(), frames.end(), [](const Frame* a, const Frame* b) {
    if (a->level != b->level) return a->level < b->level;
    return a->id < b->id;
  });
}

// Comparator-less sort of values orders by the values themselves.
void order_ids(std::vector<int>& ids) {
  std::sort(ids.begin(), ids.end());
}

// A sort of pointers *with* an id comparator is pattern-D exempt.
void order_pods(std::vector<Pod*>& pods) {
  std::sort(pods.begin(), pods.end(),
            [](const Pod* a, const Pod* b) { return a->uid < b->uid; });
}

}  // namespace fix
