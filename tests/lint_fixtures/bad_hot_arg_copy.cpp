// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// hot-arg-copy positives: by-value expensive parameters of hot
// non-coroutine functions, and expensive-type locals copy-initialised from
// a plain lvalue (no call, no std::move).
#include <string>

namespace fix {

void hot_fn(std::string key, int ttl) {  // LINT[hot-arg-copy]
  index.put(key, ttl);
}

void hot_fn(std::vector<int> shards) {  // LINT[hot-arg-copy]
  scatter(shards);
}

// Qualified hot-function entries cover out-of-line member definitions.
void Fabric::hot_method(std::map<int, double> rates) {  // LINT[hot-arg-copy]
  apply(rates);
}

// Copy-assignment shape: an expensive local deep-copied from an lvalue.
void hot_fn(const Group& group) {
  const std::vector<int> acting = group.acting;  // LINT[hot-arg-copy]
  place(acting);
}

void hot_fn(Registry* r) {
  std::string name = r->state.label;  // LINT[hot-arg-copy]
  r->touch(name);
}

}  // namespace fix
