// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// det-float-tiebreak positives: sort/heap comparators whose only key is
// floating-point. Equal keys leave the final order to std::sort's
// implementation (and, for pointers/indices, to allocation history) -- the
// bug class the (cap, fid) and (level, link id) total orders fixed.
#include <algorithm>
#include <vector>

namespace fix {

struct Cand {
  double score;
  int id;
};

// Direct lambda comparator on a float member.
void rank(std::vector<Cand>& cands) {
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.score > b.score; });  // LINT[det-float-tiebreak]
}

// Heap comparators have the same requirement as sort comparators.
void heapify(std::vector<Cand>& cands) {
  std::make_heap(cands.begin(), cands.end(),
                 [](const Cand& a, const Cand& b) { return a.score < b.score; });  // LINT[det-float-tiebreak]
}

// A float-returning getter is a float key too.
struct Probe {
  double weight() const;
};
void rank_probes(std::vector<Probe>& probes) {
  std::sort(probes.begin(), probes.end(),
            [](const Probe& a, const Probe& b) { return a.weight() < b.weight(); });  // LINT[det-float-tiebreak]
}

// Named comparator bound to a variable, then passed to the sort by name.
void rank_named(std::vector<Cand>& cands) {
  auto by_score = [](const Cand& a, const Cand& b) { return a.score < b.score; };  // LINT[det-float-tiebreak]
  std::sort(cands.begin(), cands.end(), by_score);
}

// xfile_score is declared double in another header; the fixture policy
// classifies it with `float-key xfile_score` (mirroring the tree's
// `float-key iou` for HyperparamResult).
void rank_remote(std::vector<Remote>& remotes) {
  std::sort(remotes.begin(), remotes.end(),
            [](const Remote& a, const Remote& b) { return a.xfile_score < b.xfile_score; });  // LINT[det-float-tiebreak]
}

// Suppressed: scores in this corpus are distinct by construction (each is
// a unique power of two), so no two elements can ever tie.
void rank_unique(std::vector<Cand>& cands) {
  std::sort(cands.begin(), cands.end(),
            // chase-lint: allow(det-float-tiebreak) scores are distinct powers of two by construction; ties impossible
            [](const Cand& a, const Cand& b) { return a.score < b.score; });
}

}  // namespace fix
