// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// hot-arg-copy negatives. The load-bearing one is the first: *coroutine*
// parameters are exempt by design -- the coro-* family requires owning
// by-value parameters (a const& dangles across co_await, the blpop_impl bug
// class), and lifetime safety beats one copy. The explicit allow mechanisms
// (allow-copy-type policy, inline allow) cover the rest.
#include <string>

namespace fix {

// Coroutine: by-value std::string is REQUIRED here, never a finding.
sim::Task hot_fn(std::string key, Redis* server) {
  co_await server->round_trip();
  server->touch(key);
}

// const& on a non-coroutine hot function is the fix, not a finding.
void hot_fn(const std::string& key, Index* index) {
  index->put(key);
}

// allow-copy-type policy: CheapHandle is expensive-looking but cheap.
void hot_fn(CheapHandle h) {
  h.bump();
}

// std::move transfers, it does not deep-copy.
void hot_fn(std::vector<int>&& xs) {
  std::vector<int> mine = std::move(xs);
  scatter(mine);
}

// Initialisation from a call constructs in place (or elides): silent.
void hot_fn(Planner* p) {
  std::vector<int> plan = p->plan();
  apply(plan);
}

// Off the hot path, by-value strings are idiomatic and silent.
void cold_configure(std::string name, std::vector<int> shards) {
  registry.put(name, shards);
}

// Deliberate lifetime copy across a suspension, justified inline.
sim::Task hot_fn(const Group* group) {
  const std::vector<int> acting = group->acting;  // chase-lint: allow(hot-arg-copy) fixture: group->acting can be rebalanced across the co_await; the frame needs a stable copy
  co_await replicate(acting);
}

}  // namespace fix
