// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// hot-alloc positives: every steady-state allocation pattern the check
// knows, inside a function the fixture policy marks hot (`hot_fn`, plus
// the qualified `Fabric::hot_method` entry).
#include <memory>

namespace fix {

void hot_fn(Pool* pool) {
  auto* e = new Entry();                     // LINT[hot-alloc]
  auto sp = std::make_shared<Entry>();       // LINT[hot-alloc]
  auto up = std::make_unique<Entry>(1, 2);   // LINT[hot-alloc]
  pool->keep(e, sp, up);
}

void hot_fn(Dispatcher* d) {
  std::function<void()> cb = d->handler();   // LINT[hot-alloc]
  d->set(cb);
}

void hot_fn(Log* log, int shard) {
  std::string msg = log->tag() + std::to_string(shard);  // LINT[hot-alloc]
  msg += ".part";                                        // LINT[hot-alloc]
  log->write(msg);
}

void hot_fn(std::vector<int>* out, int x) {
  out->push_back(x);  // LINT[hot-alloc]  (no reserve() anywhere in this file)
}

// Qualified hot-function entries match out-of-line definitions.
void Fabric::hot_method(Frame* f) {
  frames_.emplace_back(f);  // LINT[hot-alloc]
}

// Lambdas nested in a hot function run on the same path: hotness flows in.
void hot_fn(Queue* q) {
  auto drain = [q] {
    auto next = std::make_shared<Item>();  // LINT[hot-alloc]
    q->put(next);
  };
  drain();
}

}  // namespace fix
