// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// References, pointers and iterators into containers bound before a
// co_await and used after it: the container may have rehashed, reallocated
// or erased the element while the frame was suspended.
#include <map>

namespace fix {

sim::Task stale_reference(Cluster* self, std::string pool) {
  auto& group = self->pools_.at(pool);
  co_await self->replicate(pool);
  group.state = State::Clean;  // LINT[coro-stale-ref]
}

sim::Task stale_pointer(Buffer* self) {
  char* p = self->bytes_.data();
  co_await self->flush();
  *p = 0;  // LINT[coro-stale-ref]
}

sim::Task stale_iterator(Registry* self, std::string key) {
  auto it = self->entries_.find(key);
  co_await self->sync();
  self->touch(it);  // LINT[coro-stale-ref]
}

sim::Task stale_after_loop_await(Cluster* self, std::string pool) {
  auto& group = self->pools_.at(pool);
  for (int replica : group.acting) {
    co_await self->push_to(replica);
  }
  group.state = State::Clean;  // LINT[coro-stale-ref]
}

}  // namespace fix
