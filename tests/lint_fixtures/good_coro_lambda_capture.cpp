// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// No markers: every construct here must stay silent.
#include <string>

namespace fix {

void schedule_work(Runtime* rt, State& state) {
  // By-value captures are copied into the closure (and from there into the
  // frame at the first call).
  auto a = [rt](sim::Simulation& s) -> sim::Task {
    co_await s.sleep(1.0);
    rt->ticks++;
  };
  // Init-captures make the copy explicit; capturing a *pointer* by value is
  // the sanctioned way to reach enclosing locals.
  auto b = [st = &state](sim::Simulation& s) -> sim::Task {
    co_await s.sleep(1.0);
    st->ticks++;
  };
  rt->spawn(a(rt->sim));
  rt->spawn(b(rt->sim));
}

struct Controller {
  Runtime* rt;
  int reconciles = 0;
  void start() {
    // `*this` copies the object into the closure.
    auto loop = [*this]() mutable -> sim::Task {
      co_await rt->sim.sleep(5.0);
      reconciles++;
    };
    rt->spawn(loop());
  }
  void tally(std::vector<int>& xs) {
    int sum = 0;
    // By-reference captures in a NON-coroutine lambda are ordinary C++.
    std::for_each(xs.begin(), xs.end(), [&](int x) { sum += x; });
    reconciles = sum;
  }
};

}  // namespace fix
