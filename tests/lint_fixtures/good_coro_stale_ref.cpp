// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// No markers: every construct here must stay silent.
#include <map>

namespace fix {

// Use strictly before the suspension: safe.
sim::Task use_before_await(Cluster* self, std::string pool) {
  auto& group = self->pools_.at(pool);
  group.state = State::Recovering;
  co_await self->replicate(pool);
}

// A co_await's operand is evaluated before the frame parks, so a use inside
// the awaiting statement itself is safe.
sim::Task use_in_await_operand(Cluster* self, std::string pool) {
  auto& group = self->pools_.at(pool);
  co_await group.drained->wait(self->sim_);
}

// The sanctioned fix: re-acquire after every resumption.
sim::Task reacquire(Cluster* self, std::string pool) {
  auto& group = self->pools_.at(pool);
  group.state = State::Recovering;
  co_await self->replicate(pool);
  auto& group_now = self->pools_.at(pool);
  group_now.state = State::Clean;
}

// Rebinding the name after the await refreshes it.
sim::Task rebind(Registry* self, std::string key) {
  auto it = self->entries_.find(key);
  co_await self->sync();
  it = self->entries_.find(key);
  self->touch(it);
}

// Bindings that do not reach into a container are not tracked.
sim::Task env_binding(StepContext* ctx) {
  auto& kube = ctx->kube();
  co_await ctx->sim().sleep(1.0);
  kube.create_job({});
}

// A binding scoped entirely before the await dies with its block.
sim::Task scoped_binding(Cluster* self, std::string pool) {
  {
    auto& group = self->pools_.at(pool);
    group.state = State::Recovering;
  }
  co_await self->replicate(pool);
}

}  // namespace fix
