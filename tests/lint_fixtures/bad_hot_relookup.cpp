// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// hot-relookup positives: the same container walked twice with the same
// single-token key in one scope, across every accessor the check knows.
#include <map>

namespace fix {

void hot_fn(std::map<int, double>& m, int k) {
  m[k] = 1.0;
  double v = m[k];  // LINT[hot-relookup]
  use(v);
}

void hot_fn(Table& t, int key) {
  auto it = t.rows.find(key);
  if (it == t.rows.end()) return;
  consume(*it);
}

void hot_fn(std::map<int, double>& m, int k) {
  auto it = m.find(k);
  if (it == m.end()) return;
  m.erase(k);  // LINT[hot-relookup]  (erase(it) reuses the first walk)
}

// Mixed accessors still hit the same container with the same key.
void hot_fn(Index& idx, int id) {
  if (idx.count(id) == 0) return;
  idx.at(id).touch();  // LINT[hot-relookup]
}

// Nested lambdas inherit hotness and their own scope tracking.
void hot_fn(FlowMap& flows) {
  auto freeze = [&flows](int id) {
    flows[id].rate = 0.0;
    flows[id].frozen = true;  // LINT[hot-relookup]
  };
  freeze(7);
}

}  // namespace fix
