// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// hot-path (directory) policy: the fixture config carries `hot-path
// hot_dir_` which matches this file's name, so EVERY function here is hot
// -- no hot-function entry needed. This mirrors `hot-path src/sim/` in the
// real tree: the event loop is hot wholesale.
#include <memory>

namespace fix {

void any_function_at_all(Pool* pool) {
  auto sp = std::make_shared<Entry>();  // LINT[hot-alloc]
  pool->keep(sp);
}

}  // namespace fix
