// chase_lint fixture corpus -- parsed by chase_lint_test, never compiled.
// The parked-waiter bug class (PR 2): a coroutine publishes the address of
// one of its frame locals into a queue or callback registry, then suspends.
// If the frame is destroyed first (pod evicted, simulation torn down), the
// consumer writes through a dangling pointer.
#include <string>

namespace fix {

sim::Task park_waiter(Server* self, std::string key, std::string* out) {
  bool delivered = false;
  self->blocked_[key].push_back(Waiter{ready, out, &delivered});  // LINT[coro-frame-escape]
  co_await ready->wait(self->sim_);
  (void)delivered;
}

sim::Task subscribe_local(Bus* self) {
  int hits = 0;
  self->subscribe("topic", &hits);  // LINT[coro-frame-escape]
  co_await self->drain();
}

sim::Task queue_callback(Runtime* rt) {
  double latest = 0.0;
  rt->schedule(1.0, [&] { latest = rt->now(); });  // LINT[coro-frame-escape]
  co_await rt->tick();
  (void)latest;
}

}  // namespace fix
