// Runtime witness for the zero-alloc event loop: these tests link the
// chase_alloc_hook object library, so global operator new/delete count into
// util::alloc_stats. They prove (a) the counters count, (b) BlockPool
// recycles blocks instead of re-reaching the global heap, (c) SmallFn stays
// inline for event-loop-sized captures and pools the overflow, and (d) a
// steady-state Simulation ping-pong loop dispatches events with ZERO global
// allocations — the claim the hot-alloc lint enforces statically and
// Simulation::step() audits at CHASE_AUDIT level >= 2.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/simulation.hpp"
#include "util/alloc_stats.hpp"
#include "util/block_pool.hpp"
#include "util/check.hpp"
#include "util/small_fn.hpp"

namespace alloc = chase::util::alloc_stats;
using chase::util::BlockPool;
using chase::util::SmallFn;

TEST(AllocStats, HookIsLinkedIntoThisBinary) {
  // The whole suite is meaningless without the counting replacement; fail
  // loudly if the CMake wiring ever drops it.
  EXPECT_TRUE(alloc::hooked());
}

TEST(AllocStats, CountsNewAndDelete) {
  const std::uint64_t news0 = alloc::news();
  const std::uint64_t dels0 = alloc::deletes();
  const std::uint64_t bytes0 = alloc::bytes();

  auto* p = new std::uint64_t(42);
  EXPECT_GE(alloc::news(), news0 + 1);
  EXPECT_GE(alloc::bytes(), bytes0 + sizeof(std::uint64_t));
  delete p;
  EXPECT_GE(alloc::deletes(), dels0 + 1);
}

TEST(AllocStats, ResetZeroesCounters) {
  auto* p = new int(7);
  delete p;
  alloc::reset();
  EXPECT_EQ(alloc::news(), 0u);
  EXPECT_EQ(alloc::deletes(), 0u);
  EXPECT_EQ(alloc::bytes(), 0u);
  EXPECT_TRUE(alloc::hooked());  // reset clears counts, not presence
}

TEST(BlockPool, ReusesFreedBlocks) {
  BlockPool& pool = BlockPool::instance();
  void* a = pool.allocate(96);  // 128-byte class
  pool.deallocate(a, 96);
  const auto before = pool.stats();
  void* b = pool.allocate(100);  // same class: must be the cached block
  EXPECT_EQ(b, a);
  const auto after = pool.stats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses);
  pool.deallocate(b, 100);
}

TEST(BlockPool, SteadyStateChurnNeverReachesGlobalHeap) {
  BlockPool& pool = BlockPool::instance();
  // Warm up one block per class, then churn: every allocate must be a hit
  // and the global-new counter must not move.
  std::vector<std::size_t> sizes = {48, 64, 112, 200, 512};
  for (std::size_t n : sizes) {
    void* p = pool.allocate(n);
    pool.deallocate(p, n);
  }
  const auto warm = pool.stats();
  alloc::reset();
  for (int round = 0; round < 1000; ++round) {
    for (std::size_t n : sizes) {
      void* p = pool.allocate(n);
      pool.deallocate(p, n);
    }
  }
  const auto hot = pool.stats();
  EXPECT_EQ(hot.misses, warm.misses);
  EXPECT_EQ(hot.passthrough, warm.passthrough);
  EXPECT_EQ(hot.hits, warm.hits + 1000 * sizes.size());
  EXPECT_EQ(alloc::news(), 0u) << "pool churn hit the global allocator";
}

TEST(BlockPool, PassthroughAboveLargestClass) {
  BlockPool& pool = BlockPool::instance();
  const auto before = pool.stats();
  void* p = pool.allocate(4096);
  const auto after = pool.stats();
  EXPECT_EQ(after.passthrough, before.passthrough + 1);
  pool.deallocate(p, 4096);
}

TEST(BlockPool, OutstandingTracksLiveBlocks) {
  BlockPool& pool = BlockPool::instance();
  const auto before = pool.stats();
  void* a = pool.allocate(64);
  void* b = pool.allocate(64);
  EXPECT_EQ(pool.stats().outstanding, before.outstanding + 2);
  pool.deallocate(a, 64);
  pool.deallocate(b, 64);
  EXPECT_EQ(pool.stats().outstanding, before.outstanding);
}

TEST(BlockPool, GrowsUnderExhaustionWithoutDoubleFree) {
  // Drain far past any cached capacity so the pool must mint fresh blocks,
  // then return everything. Under ASan this doubles as a no-double-free /
  // no-overlap check on the free-list plumbing.
  BlockPool& pool = BlockPool::instance();
  std::vector<void*> live;
  live.reserve(3000);
  for (int i = 0; i < 3000; ++i) live.push_back(pool.allocate(64));
  // All blocks distinct: write a tag, then verify before freeing.
  for (std::size_t i = 0; i < live.size(); ++i) {
    *static_cast<std::uint64_t*>(live[i]) = i;
  }
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(*static_cast<std::uint64_t*>(live[i]), i);
    pool.deallocate(live[i], 64);
  }
  pool.trim();  // leave the global pool lean for the other tests
}

TEST(SmallFn, InlineCaptureDoesNotAllocate) {
  std::uint64_t x = 0, y = 0, z = 0;
  alloc::reset();
  SmallFn<void()> fn([&x, &y, &z] { x = y = z = 1; });  // 24B capture: inline
  EXPECT_TRUE(fn.is_inline());
  EXPECT_EQ(alloc::news(), 0u);
  fn();
  EXPECT_EQ(alloc::news(), 0u);
  EXPECT_EQ(x + y + z, 3u);
}

TEST(SmallFn, OversizeCaptureGoesToPoolNotGlobalHeap) {
  struct Big {
    std::uint64_t words[12];  // 96B: over the 48B inline buffer
  };
  Big big{};
  big.words[11] = 7;
  // Warm the pool's size class so steady-state construction is a pool hit.
  {
    SmallFn<std::uint64_t()> warm([big] { return big.words[11]; });
    EXPECT_FALSE(warm.is_inline());
  }
  alloc::reset();
  SmallFn<std::uint64_t()> fn([big] { return big.words[11]; });
  EXPECT_FALSE(fn.is_inline());
  EXPECT_EQ(fn(), 7u);
  EXPECT_EQ(alloc::news(), 0u) << "pooled SmallFn reached the global heap";
}

TEST(SmallFn, MoveTransfersTargetAndEmptiesSource) {
  int calls = 0;
  SmallFn<void()> a([&calls] { ++calls; });
  SmallFn<void()> b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move): testing moved-from state
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  SmallFn<void()> c;
  c = std::move(b);
  c();
  EXPECT_EQ(calls, 2);
}

TEST(SmallFn, DestroysCapturedStateExactlyOnce) {
  auto token = std::make_shared<int>(5);
  std::weak_ptr<int> watch = token;
  {
    SmallFn<int()> fn([token] { return *token; });
    token.reset();
    EXPECT_EQ(fn(), 5);
    SmallFn<int()> moved(std::move(fn));
    EXPECT_EQ(moved(), 5);
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(SmallFn, InlineBoundaryIsExactlyKInline) {
  // 48 bytes of captures is the last inline size; one more byte spills to
  // the pool. Pins the kInline contract the Entry layout depends on.
  struct Fit {
    unsigned char bytes[SmallFn<int()>::kInline];
  };
  struct Spill {
    unsigned char bytes[SmallFn<int()>::kInline + 1];
  };
  static_assert(SmallFn<int()>::fits_inline<Fit>());
  static_assert(!SmallFn<int()>::fits_inline<Spill>());
  Fit fit{};
  fit.bytes[0] = 9;
  Spill spill{};
  spill.bytes[SmallFn<int()>::kInline] = 11;
  SmallFn<int()> in([fit] { return static_cast<int>(fit.bytes[0]); });
  SmallFn<int()> out(
      [spill] { return static_cast<int>(spill.bytes[SmallFn<int()>::kInline]); });
  EXPECT_TRUE(in.is_inline());
  EXPECT_FALSE(out.is_inline());
  EXPECT_EQ(in(), 9);
  EXPECT_EQ(out(), 11);
}

TEST(SmallFn, PooledTargetSurvivesRepeatedRelocation) {
  // Aliasing regression test for the launder'd D* in the inline buffer: the
  // spill pointer is a placement-new'd object, and every move relocates it
  // into a fresh buffer. Bounce the callable through a chain of moves (as
  // the event heap does on every sift) and check the target still invokes
  // and destroys exactly once.
  struct Big {
    std::uint64_t words[12];  // 96B: always pooled
    std::shared_ptr<int> token;
  };
  auto token = std::make_shared<int>(21);
  std::weak_ptr<int> watch = token;
  Big big{};
  big.words[3] = 21;
  big.token = token;
  token.reset();
  {
    SmallFn<std::uint64_t()> fn(
        [big] { return big.words[3] + static_cast<std::uint64_t>(*big.token); });
    big.token.reset();  // the capture owns the only remaining reference
    EXPECT_FALSE(fn.is_inline());
    for (int hop = 0; hop < 8; ++hop) {
      SmallFn<std::uint64_t()> next(std::move(fn));
      EXPECT_EQ(next(), 42u);
      fn = std::move(next);
    }
    EXPECT_EQ(fn(), 42u);
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired()) << "pooled capture leaked or double-lived";
}

TEST(SmallFn, MoveDoesNotAllocate) {
  std::uint64_t v = 3;
  SmallFn<std::uint64_t()> a([v] { return v; });
  alloc::reset();
  SmallFn<std::uint64_t()> b(std::move(a));
  SmallFn<std::uint64_t()> c;
  c = std::move(b);
  EXPECT_EQ(alloc::news(), 0u);
  EXPECT_EQ(c(), 3u);
}

namespace {

chase::sim::Task ping_pong(chase::sim::Simulation* sim, int* remaining) {
  while (*remaining > 0) {
    --*remaining;
    co_await sim->sleep(0.5);
  }
}

}  // namespace

TEST(ZeroAllocEventLoop, SteadyStateDispatchesWithZeroGlobalAllocations) {
  // The headline claim: once coroutine frames exist and the heap vector has
  // hit its high-water mark, the event loop — schedule, heap sift, SmallFn
  // relocation, dispatch, coroutine resume — performs ZERO global
  // allocations per event. Run with expensive audits on so
  // Simulation::step()'s own CHASE_AUDIT window is exercised too.
  const int saved_level = chase::util::audit_level();
  chase::util::set_audit_level(2);

  chase::sim::Simulation sim;
  int hot_budget = 20000;
  int warm_budget = 64;
  sim.spawn(ping_pong(&sim, &warm_budget));
  sim.run(40.0);  // warmup: frames allocated, queue capacity settled
  EXPECT_EQ(warm_budget, 0);

  sim.spawn(ping_pong(&sim, &hot_budget));
  sim.run(41.0);  // drain the spawn event + first resumes
  const std::uint64_t processed_before = sim.events_processed();
  alloc::reset();
  sim.run(41.0 + 20000 * 0.5 + 1.0);
  const std::uint64_t dispatched = sim.events_processed() - processed_before;
  EXPECT_EQ(alloc::news(), 0u)
      << "steady-state event loop allocated on the global heap across "
      << dispatched << " events";
  EXPECT_GT(dispatched, 19000u);
  EXPECT_EQ(hot_budget, 0);

  chase::util::set_audit_level(saved_level);
}
