#include <gtest/gtest.h>

#include "cluster/machine.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace cc = chase::cluster;
namespace cn = chase::net;
namespace cs = chase::sim;
namespace cu = chase::util;

TEST(MachineSpecs, FionaMatchesPaper) {
  auto f = cc::fiona("f1", "UCSD");
  EXPECT_EQ(f.cpu_cores, 24);  // dual 12-core
  EXPECT_EQ(f.memory, cu::gb(96));
  EXPECT_EQ(f.disk_capacity, cu::tb(1));
  EXPECT_DOUBLE_EQ(f.nic_bps, cu::gbit_per_s(20));  // two 10 GbE
  EXPECT_EQ(f.gpus, 0);
}

TEST(MachineSpecs, Fiona8HasEightGameGpus) {
  auto f = cc::fiona8("f8", "UCSD");
  EXPECT_EQ(f.gpus, 8);
  EXPECT_EQ(f.gpu_model, cc::GpuModel::GTX1080Ti);
  EXPECT_GT(cc::gpu_fp32_tflops(f.gpu_model), 10.0);
}

TEST(MachineSpecs, GpuModelNames) {
  EXPECT_STREQ(cc::gpu_model_name(cc::GpuModel::GTX1080Ti), "GTX 1080ti");
  EXPECT_STREQ(cc::gpu_model_name(cc::GpuModel::None), "none");
  EXPECT_DOUBLE_EQ(cc::gpu_fp32_tflops(cc::GpuModel::None), 0.0);
}

TEST(Inventory, TotalsAggregate) {
  cs::Simulation sim;
  cn::Network net(sim);
  cc::Inventory inv(net);
  auto n1 = net.add_node("m1");
  auto n2 = net.add_node("m2");
  inv.add(cc::fiona8("m1", "UCSD"), n1);
  inv.add(cc::fiona("m2", "UCI"), n2);
  EXPECT_EQ(inv.size(), 2u);
  EXPECT_EQ(inv.total_gpus(), 8);
  EXPECT_EQ(inv.total_cpus(), 48);
  EXPECT_EQ(inv.total_memory(), cu::gb(192) + cu::gb(96));
}

TEST(Inventory, FailurePropagatesToNetworkAndSubscribers) {
  cs::Simulation sim;
  cn::Network net(sim);
  cc::Inventory inv(net);
  auto n1 = net.add_node("m1");
  auto id = inv.add(cc::fiona("m1", "UCSD"), n1);

  int notifications = 0;
  bool last_state = true;
  inv.subscribe([&](cc::MachineId, bool up) {
    ++notifications;
    last_state = up;
  });

  inv.set_up(id, false);
  EXPECT_FALSE(inv.up(id));
  EXPECT_FALSE(net.node_up(n1));
  EXPECT_EQ(notifications, 1);
  EXPECT_FALSE(last_state);

  // Idempotent: setting the same state again does not re-notify.
  inv.set_up(id, false);
  EXPECT_EQ(notifications, 1);

  inv.set_up(id, true);
  EXPECT_TRUE(net.node_up(n1));
  EXPECT_EQ(notifications, 2);
  EXPECT_TRUE(last_state);
}

TEST(Inventory, StorageFionaCapacity) {
  auto s = cc::storage_fiona("s1", "SDSC", cu::tb(100));
  EXPECT_EQ(s.disk_capacity, cu::tb(100));
  EXPECT_GT(s.disk_write_bw, 1e9);
}

// --- node lifecycle under a running Job (drain / NoExecute taint) --------------

#include <memory>

#include "kube/cluster.hpp"

namespace ck = chase::kube;

namespace {

/// A small kube testbed: N FIONA nodes on one switch.
struct LifecycleBed {
  cs::Simulation sim;
  cn::Network net{sim};
  cc::Inventory inventory{net};
  chase::mon::Registry metrics;
  std::unique_ptr<ck::KubeCluster> kube;
  std::vector<cc::MachineId> machines;

  explicit LifecycleBed(int nodes = 3) {
    auto sw = net.add_node("switch");
    kube = std::make_unique<ck::KubeCluster>(sim, net, inventory, &metrics);
    for (int i = 0; i < nodes; ++i) {
      auto name = "fiona-" + std::to_string(i);
      auto nn = net.add_node(name);
      net.add_link(nn, sw, cu::gbit_per_s(20), 1e-4);
      machines.push_back(inventory.add(cc::fiona(name, "UCSD"), nn));
      kube->register_node(machines.back());
    }
  }

  ck::JobPtr long_job(int completions, double seconds) {
    ck::JobSpec job;
    job.ns = "default";
    job.name = "work";
    job.completions = completions;
    job.parallelism = completions;
    job.backoff_limit = 0;  // any *counted* failure kills the job
    ck::ContainerSpec c;
    c.requests = {1, cu::gb(1), 0};
    c.program = [seconds](ck::PodContext& ctx) -> cs::Task {
      co_await ctx.compute(seconds, 1.0);
    };
    job.pod_template.containers.push_back(std::move(c));
    return kube->create_job(job).value;
  }
};

}  // namespace

TEST(NodeLifecycle, DrainMidJobReschedulesWithoutBackoffCost) {
  LifecycleBed bed;
  auto job = bed.long_job(/*completions=*/2, /*seconds=*/100.0);
  // Let the pods bind, then drain whichever node hosts the first pod.
  bed.sim.run(10.0);
  auto pods = bed.kube->list_pods("default");
  ASSERT_FALSE(pods.empty());
  const auto victim = static_cast<cc::MachineId>(pods.front()->node);
  ASSERT_GE(victim, 0);
  bed.kube->drain(victim);
  bed.sim.run();

  EXPECT_TRUE(job->complete) << "drain killed the job";
  EXPECT_FALSE(job->failed_state);
  EXPECT_EQ(job->failed, 0) << "drain evictions must not count against backoff";
  EXPECT_EQ(job->succeeded, 2);
  // Replacement pods all landed off the cordoned node.
  for (const auto& pod : bed.kube->list_pods("default")) {
    if (pod->phase == ck::PodPhase::Succeeded) {
      EXPECT_NE(pod->node, victim) << pod->meta.name << " ran on the drained node";
    }
  }
}

TEST(NodeLifecycle, NoExecuteTaintEvictsAndReschedulesWithoutBackoffCost) {
  LifecycleBed bed;
  auto job = bed.long_job(/*completions=*/2, /*seconds=*/100.0);
  bed.sim.run(10.0);
  auto pods = bed.kube->list_pods("default");
  ASSERT_FALSE(pods.empty());
  const auto victim = static_cast<cc::MachineId>(pods.front()->node);
  ASSERT_GE(victim, 0);
  bed.kube->add_taint(victim, {"maintenance", "true", ck::TaintEffect::NoExecute});
  bed.sim.run();

  EXPECT_TRUE(job->complete) << "NoExecute taint killed the job";
  EXPECT_FALSE(job->failed_state);
  EXPECT_EQ(job->failed, 0) << "taint evictions must not count against backoff";
  EXPECT_EQ(job->succeeded, 2);
  for (const auto& pod : bed.kube->list_pods("default")) {
    if (pod->phase == ck::PodPhase::Succeeded) {
      EXPECT_NE(pod->node, victim) << pod->meta.name << " ran on the tainted node";
    }
  }
}

TEST(NodeLifecycle, DisruptPodReplacedWithoutBackoffCost) {
  LifecycleBed bed;
  auto job = bed.long_job(/*completions=*/1, /*seconds=*/50.0);
  bed.sim.run(5.0);
  auto pods = bed.kube->list_pods("default");
  ASSERT_EQ(pods.size(), 1u);
  bed.kube->disrupt_pod("default", pods.front()->meta.name);
  bed.sim.run();
  EXPECT_TRUE(job->complete);
  EXPECT_EQ(job->failed, 0) << "disruptions must not count against backoff";
  EXPECT_EQ(job->succeeded, 1);
}
