#include <gtest/gtest.h>

#include "cluster/machine.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace cc = chase::cluster;
namespace cn = chase::net;
namespace cs = chase::sim;
namespace cu = chase::util;

TEST(MachineSpecs, FionaMatchesPaper) {
  auto f = cc::fiona("f1", "UCSD");
  EXPECT_EQ(f.cpu_cores, 24);  // dual 12-core
  EXPECT_EQ(f.memory, cu::gb(96));
  EXPECT_EQ(f.disk_capacity, cu::tb(1));
  EXPECT_DOUBLE_EQ(f.nic_bps, cu::gbit_per_s(20));  // two 10 GbE
  EXPECT_EQ(f.gpus, 0);
}

TEST(MachineSpecs, Fiona8HasEightGameGpus) {
  auto f = cc::fiona8("f8", "UCSD");
  EXPECT_EQ(f.gpus, 8);
  EXPECT_EQ(f.gpu_model, cc::GpuModel::GTX1080Ti);
  EXPECT_GT(cc::gpu_fp32_tflops(f.gpu_model), 10.0);
}

TEST(MachineSpecs, GpuModelNames) {
  EXPECT_STREQ(cc::gpu_model_name(cc::GpuModel::GTX1080Ti), "GTX 1080ti");
  EXPECT_STREQ(cc::gpu_model_name(cc::GpuModel::None), "none");
  EXPECT_DOUBLE_EQ(cc::gpu_fp32_tflops(cc::GpuModel::None), 0.0);
}

TEST(Inventory, TotalsAggregate) {
  cs::Simulation sim;
  cn::Network net(sim);
  cc::Inventory inv(net);
  auto n1 = net.add_node("m1");
  auto n2 = net.add_node("m2");
  inv.add(cc::fiona8("m1", "UCSD"), n1);
  inv.add(cc::fiona("m2", "UCI"), n2);
  EXPECT_EQ(inv.size(), 2u);
  EXPECT_EQ(inv.total_gpus(), 8);
  EXPECT_EQ(inv.total_cpus(), 48);
  EXPECT_EQ(inv.total_memory(), cu::gb(192) + cu::gb(96));
}

TEST(Inventory, FailurePropagatesToNetworkAndSubscribers) {
  cs::Simulation sim;
  cn::Network net(sim);
  cc::Inventory inv(net);
  auto n1 = net.add_node("m1");
  auto id = inv.add(cc::fiona("m1", "UCSD"), n1);

  int notifications = 0;
  bool last_state = true;
  inv.subscribe([&](cc::MachineId, bool up) {
    ++notifications;
    last_state = up;
  });

  inv.set_up(id, false);
  EXPECT_FALSE(inv.up(id));
  EXPECT_FALSE(net.node_up(n1));
  EXPECT_EQ(notifications, 1);
  EXPECT_FALSE(last_state);

  // Idempotent: setting the same state again does not re-notify.
  inv.set_up(id, false);
  EXPECT_EQ(notifications, 1);

  inv.set_up(id, true);
  EXPECT_TRUE(net.node_up(n1));
  EXPECT_EQ(notifications, 2);
  EXPECT_TRUE(last_state);
}

TEST(Inventory, StorageFionaCapacity) {
  auto s = cc::storage_fiona("s1", "SDSC", cu::tb(100));
  EXPECT_EQ(s.disk_capacity, cu::tb(100));
  EXPECT_GT(s.disk_write_bw, 1e9);
}
