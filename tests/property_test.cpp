/// Property-based tests: randomized sweeps over topologies, workloads and
/// configurations, checking the invariants each substrate must uphold
/// regardless of input.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ceph/ceph.hpp"
#include "kube/cluster.hpp"
#include "ml/connect.hpp"
#include "ml/ffn.hpp"
#include "ml/synth.hpp"
#include "net/network.hpp"
#include "redis/redis.hpp"
#include "util/rng.hpp"

namespace ck = chase::kube;
namespace cc = chase::cluster;
namespace ce = chase::ceph;
namespace cn = chase::net;
namespace cr = chase::redis;
namespace cs = chase::sim;
namespace cu = chase::util;
namespace ml = chase::ml;

// --- network: max-min fairness invariants over random topologies ------------------

class NetworkProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkProperties, RandomTopologyFlowsCompleteAndLinksNeverOversubscribed) {
  cu::Rng rng(GetParam());
  cs::Simulation sim;
  cn::Network net(sim);

  // Random connected topology: a backbone chain plus random chords.
  const int nodes = 6 + static_cast<int>(rng.uniform_u64(8));
  std::vector<cn::NodeId> ids;
  std::vector<cn::LinkId> links;
  for (int i = 0; i < nodes; ++i) ids.push_back(net.add_node("n" + std::to_string(i)));
  for (int i = 1; i < nodes; ++i) {
    links.push_back(net.add_link(ids[static_cast<std::size_t>(i - 1)],
                                 ids[static_cast<std::size_t>(i)],
                                 rng.uniform(50e6, 1e9), rng.uniform(0, 2e-3)));
  }
  for (int extra = 0; extra < nodes / 3; ++extra) {
    const auto a = rng.uniform_u64(static_cast<std::uint64_t>(nodes));
    const auto b = rng.uniform_u64(static_cast<std::uint64_t>(nodes));
    if (a == b) continue;
    links.push_back(net.add_link(ids[a], ids[b], rng.uniform(50e6, 1e9),
                                 rng.uniform(0, 2e-3)));
  }

  // Random flows.
  const int flows = 10 + static_cast<int>(rng.uniform_u64(30));
  std::vector<cn::TransferPtr> transfers;
  double total_bytes = 0;
  for (int f = 0; f < flows; ++f) {
    const auto a = rng.uniform_u64(static_cast<std::uint64_t>(nodes));
    const auto b = rng.uniform_u64(static_cast<std::uint64_t>(nodes));
    if (a == b) continue;
    const auto bytes = static_cast<cu::Bytes>(rng.uniform(1e6, 5e8));
    total_bytes += static_cast<double>(bytes);
    transfers.push_back(net.transfer(ids[a], ids[b], bytes));
  }

  // Feasibility probes while flows are active.
  for (double t : {0.5, 2.0, 10.0, 60.0}) {
    sim.schedule(t, [&net, &links] {
      for (auto link : links) {
        ASSERT_LE(net.link_utilization(link), 1.0 + 1e-6);
      }
    });
  }
  sim.run();

  for (const auto& transfer : transfers) {
    EXPECT_FALSE(transfer->failed);
    EXPECT_GE(transfer->finish_time, transfer->start_time);
  }
  // Conservation: everything sent arrived (within fluid-model rounding).
  EXPECT_NEAR(net.total_bytes_delivered(), total_bytes, flows * 2.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkProperties,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- scheduler: no oversubscription under random workloads --------------------------

class SchedulerProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerProperties, NeverOversubscribesAndGrantsDistinctGpus) {
  cu::Rng rng(GetParam());
  cs::Simulation sim;
  cn::Network net(sim);
  cc::Inventory inventory(net);
  ck::KubeCluster kube(sim, net, inventory, nullptr);
  auto sw = net.add_node("sw");
  std::vector<cc::MachineId> machines;
  const int nodes = 3 + static_cast<int>(rng.uniform_u64(4));
  for (int i = 0; i < nodes; ++i) {
    auto nn = net.add_node("n" + std::to_string(i));
    net.add_link(nn, sw, 1e9, 1e-4);
    machines.push_back(inventory.add(cc::fiona8("n" + std::to_string(i), "X"), nn));
    kube.register_node(machines.back());
  }

  const int pods = 30 + static_cast<int>(rng.uniform_u64(40));
  for (int p = 0; p < pods; ++p) {
    ck::PodSpec spec;
    ck::ContainerSpec c;
    c.requests = {rng.uniform(0.5, 6.0),
                  static_cast<cu::Bytes>(rng.uniform(1e9, 3e10)),
                  static_cast<int>(rng.uniform_u64(4))};
    const double runtime = rng.uniform(5.0, 300.0);
    c.program = [runtime](ck::PodContext& ctx) -> cs::Task {
      co_await ctx.sim().sleep(runtime);
    };
    spec.containers.push_back(std::move(c));
    kube.create_pod("default", "p" + std::to_string(p), std::move(spec));
  }

  // Invariant probes at random times during execution.
  auto check = [&] {
    for (auto machine : machines) {
      const auto& info = kube.node(machine);
      ASSERT_LE(info.allocated.cpu, info.allocatable.cpu + 1e-9);
      ASSERT_LE(info.allocated.memory, info.allocatable.memory);
      ASSERT_LE(info.allocated.gpus, info.allocatable.gpus);
      std::set<int> gpus_in_use;
      for (const auto& pod : info.pods) {
        for (int gpu : pod->gpu_ids) {
          ASSERT_TRUE(gpus_in_use.insert(gpu).second)
              << "GPU " << gpu << " double-granted on node " << machine;
        }
      }
    }
  };
  for (int probe = 0; probe < 20; ++probe) {
    sim.schedule(rng.uniform(1.0, 400.0), check);
  }
  sim.run();
  // Everything eventually ran to completion (capacity was sufficient).
  for (const auto& pod : kube.list_pods("default")) {
    EXPECT_EQ(pod->phase, ck::PodPhase::Succeeded) << pod->meta.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperties, ::testing::Values(7, 11, 19, 42, 99));

// --- CRUSH: placement invariants across cluster shapes --------------------------------

struct CrushCase {
  int osds;
  int replication;
};

class CrushProperties : public ::testing::TestWithParam<CrushCase> {};

TEST_P(CrushProperties, DistinctHostsFullWidthAndStability) {
  const auto param = GetParam();
  cs::Simulation sim;
  cn::Network net(sim);
  cc::Inventory inventory(net);
  ce::CephCluster::Options opts;
  opts.replication = param.replication;
  opts.pg_count = 64;
  ce::CephCluster ceph(sim, net, inventory, nullptr, opts);
  std::vector<cc::MachineId> machines;
  for (int i = 0; i < param.osds; ++i) {
    auto nn = net.add_node("s" + std::to_string(i));
    machines.push_back(inventory.add(
        cc::storage_fiona("s" + std::to_string(i), "X", cu::tb(100)), nn));
    ceph.add_osd(machines.back());
  }
  ceph.create_pool("p");

  const int expected_width = std::min(param.osds, param.replication);
  for (int pg = 0; pg < 64; ++pg) {
    const auto acting = ceph.acting_set("p", pg);
    ASSERT_EQ(static_cast<int>(acting.size()), expected_width) << "pg " << pg;
    std::set<cc::MachineId> hosts;
    for (int osd : acting) hosts.insert(machines[static_cast<std::size_t>(osd)]);
    ASSERT_EQ(hosts.size(), acting.size()) << "pg " << pg;
    // Stability: recomputation yields the same set.
    ASSERT_EQ(ceph.acting_set("p", pg), acting);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, CrushProperties,
                         ::testing::Values(CrushCase{3, 2}, CrushCase{3, 3},
                                           CrushCase{2, 3}, CrushCase{8, 2},
                                           CrushCase{8, 3}, CrushCase{16, 3}));

// --- CONNECT: equivalence with brute force over many random volumes ---------------------

class ConnectEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConnectEquivalence, UnionFindMatchesFloodFill) {
  ml::IvtFieldParams p;
  p.nx = 20;
  p.ny = 16;
  p.nt = 10;
  p.events = 3;
  p.seed = GetParam();
  auto field = ml::generate_ivt(p);
  ml::ConnectParams cp;
  cp.min_voxels = 1;
  auto result = ml::connect_label(field.ivt, cp);

  // Reference: per-voxel BFS flood fill.
  ml::Volume<std::int32_t> reference(p.nx, p.ny, p.nt, 0);
  int next = 1;
  auto above = [&](int x, int y, int t) { return field.ivt.at(x, y, t) > cp.threshold; };
  for (int t = 0; t < p.nt; ++t) {
    for (int y = 0; y < p.ny; ++y) {
      for (int x = 0; x < p.nx; ++x) {
        if (!above(x, y, t) || reference.at(x, y, t) != 0) continue;
        std::vector<std::array<int, 3>> stack{{x, y, t}};
        reference.at(x, y, t) = next;
        while (!stack.empty()) {
          auto [cx, cy, ct] = stack.back();
          stack.pop_back();
          for (int dt = -1; dt <= 1; ++dt) {
            for (int dy = -1; dy <= 1; ++dy) {
              for (int dx = -1; dx <= 1; ++dx) {
                const int nx2 = cx + dx, ny2 = cy + dy, nt2 = ct + dt;
                if (!field.ivt.inside(nx2, ny2, nt2) || !above(nx2, ny2, nt2)) continue;
                if (reference.at(nx2, ny2, nt2) != 0) continue;
                reference.at(nx2, ny2, nt2) = next;
                stack.push_back({nx2, ny2, nt2});
              }
            }
          }
        }
        ++next;
      }
    }
  }
  // Same partition up to label renaming.
  std::map<std::int32_t, std::int32_t> fwd, rev;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const auto a = result.labels.data()[i];
    const auto b = reference.data()[i];
    ASSERT_EQ(a == 0, b == 0);
    if (a == 0) continue;
    if (auto it = fwd.find(a); it != fwd.end()) {
      ASSERT_EQ(it->second, b);
    } else {
      fwd[a] = b;
    }
    if (auto it = rev.find(b); it != rev.end()) {
      ASSERT_EQ(it->second, a);
    } else {
      rev[b] = a;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConnectEquivalence,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808));

// --- FFN: gradient correctness across architectures --------------------------------------

struct FfnShape {
  int channels;
  int fov;
};

class FfnGradientSweep : public ::testing::TestWithParam<FfnShape> {};

TEST_P(FfnGradientSweep, ModelGradientMatchesFiniteDifference) {
  const auto shape = GetParam();
  ml::FfnConfig cfg;
  cfg.channels = shape.channels;
  cfg.modules = 1;
  cfg.fov = shape.fov;
  cfg.seed = 5;
  ml::FfnModel model(cfg);

  ml::Tensor4 input(2, cfg.fov, cfg.fov, cfg.fov);
  cu::Rng rng(31);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input.data()[i] = static_cast<float>(rng.normal(0, 0.5));
  }
  ml::Volume<std::uint8_t> target(cfg.fov, cfg.fov, cfg.fov, 0);
  for (int z = 0; z < cfg.fov; ++z) {
    for (int y = 0; y < cfg.fov; ++y) {
      for (int x = 0; x < cfg.fov / 2; ++x) target.at(x, y, z) = 1;
    }
  }

  // Analytic loss decrease prediction vs an actual tiny SGD step: after one
  // small step against the gradient the loss must not increase.
  ml::Tensor4 logits, dlogits;
  ml::FfnModel::Workspace ws;
  model.forward(input, logits, &ws);
  const float before = ml::FfnModel::logistic_loss(logits, target, dlogits);
  model.train_step(input, dlogits, ws, 0.01f, 0.0f);
  model.forward(input, logits);
  ml::Tensor4 unused;
  const float after = ml::FfnModel::logistic_loss(logits, target, unused);
  EXPECT_LT(after, before + 1e-5f) << "loss increased after a gradient step";
}

INSTANTIATE_TEST_SUITE_P(Shapes, FfnGradientSweep,
                         ::testing::Values(FfnShape{2, 5}, FfnShape{4, 5},
                                           FfnShape{4, 7}, FfnShape{8, 7}));

// --- redis: exactly-once queue delivery under random producers/consumers ------------------

class QueueProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueueProperties, EveryMessageDeliveredExactlyOnce) {
  cu::Rng rng(GetParam());
  cs::Simulation sim;
  cn::Network net(sim);
  auto sw = net.add_node("sw");
  auto server_node = net.add_node("redis");
  net.add_link(server_node, sw, 1e9, 1e-4);
  cr::RedisServer server(sim);
  server.host_on(server_node);

  const int consumers = 2 + static_cast<int>(rng.uniform_u64(5));
  const int messages = 40 + static_cast<int>(rng.uniform_u64(100));

  static std::multiset<std::string> delivered;
  delivered.clear();
  auto consumer = [](cs::Simulation* s, cn::Network* n, cr::RedisServer* srv,
                     cn::NodeId node) -> cs::Task {
    cr::RedisClient client(*s, *n, *srv, node);
    while (true) {
      std::string msg;
      bool got = false;
      co_await client.blpop("q", &msg, &got);
      if (!got || msg == "STOP") co_return;
      delivered.insert(msg);
    }
  };
  for (int worker = 0; worker < consumers; ++worker) {
    auto node = net.add_node("w" + std::to_string(worker));
    net.add_link(node, sw, 1e9, 1e-4);
    sim.spawn(consumer(&sim, &net, &server, node));
  }
  // Producer pushes at random times.
  for (int m = 0; m < messages; ++m) {
    sim.schedule(rng.uniform(0.0, 50.0),
                 [&server, m] { server.rpush("q", "m" + std::to_string(m)); });
  }
  sim.schedule(100.0, [&server, consumers] {
    for (int worker = 0; worker < consumers; ++worker) server.rpush("q", "STOP");
  });
  sim.run();

  EXPECT_EQ(delivered.size(), static_cast<std::size_t>(messages));
  for (int m = 0; m < messages; ++m) {
    EXPECT_EQ(delivered.count("m" + std::to_string(m)), 1u) << "message " << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueProperties, ::testing::Values(3, 14, 159, 2653));
