/// Tests for the meteorological IVT derivation (paper §III: IVT computed
/// from the assimilated M2I3NPASM fields).

#include <gtest/gtest.h>

#include <cmath>

#include "ml/meteo.hpp"

namespace ml = chase::ml;

TEST(Ivt, ZeroWindGivesZeroIvt) {
  ml::MeteoParams p;
  p.nx = 16;
  p.ny = 12;
  p.levels = 10;
  p.background_wind = 0;
  p.jet_speed = 0;
  auto state = ml::generate_meteo_state(p);
  auto ivt = ml::compute_ivt(state);
  for (int y = 0; y < p.ny; ++y) {
    for (int x = 0; x < p.nx; ++x) {
      EXPECT_NEAR(ivt.at(x, y, 0), 0.f, 1e-6);
    }
  }
}

TEST(Ivt, DryAtmosphereGivesZeroIvt) {
  ml::MeteoParams p;
  p.nx = 8;
  p.ny = 8;
  p.levels = 10;
  p.surface_humidity = 0;
  p.plume_humidity = 0;
  auto state = ml::generate_meteo_state(p);
  auto ivt = ml::compute_ivt(state);
  EXPECT_NEAR(ivt.at(4, 4, 0), 0.f, 1e-6);
}

TEST(Ivt, BackgroundMagnitudePhysicallyPlausible) {
  // Typical mid-latitude background IVT is tens of kg/m/s; AR cores exceed
  // 250 kg/m/s (the CONNECT threshold).
  ml::MeteoParams p;
  auto state = ml::generate_meteo_state(p);
  auto ivt = ml::compute_ivt(state);
  // Far from the plume.
  const float background = ivt.at(2, 2, 0);
  EXPECT_GT(background, 20.f);
  EXPECT_LT(background, 150.f);
  // Plume core crosses the AR threshold.
  const float core = ivt.at(static_cast<int>(p.plume_x), static_cast<int>(p.plume_y), 0);
  EXPECT_GT(core, 250.f);
  EXPECT_LT(core, 2000.f);
}

TEST(Ivt, ComponentsComposeToMagnitude) {
  ml::MeteoParams p;
  p.nx = 24;
  p.ny = 16;
  auto state = ml::generate_meteo_state(p);
  ml::Volume<float> iu, iv;
  ml::compute_ivt_components(state, iu, iv);
  auto magnitude = ml::compute_ivt(state);
  for (int y = 0; y < p.ny; y += 3) {
    for (int x = 0; x < p.nx; x += 3) {
      EXPECT_NEAR(magnitude.at(x, y, 0),
                  std::hypot(iu.at(x, y, 0), iv.at(x, y, 0)), 1e-4);
    }
  }
}

TEST(Ivt, TransportFollowsPlumeOrientation) {
  ml::MeteoParams p;
  p.plume_angle = 0.3;
  auto state = ml::generate_meteo_state(p);
  ml::Volume<float> iu, iv;
  ml::compute_ivt_components(state, iu, iv);
  const int cx = static_cast<int>(p.plume_x), cy = static_cast<int>(p.plume_y);
  const double direction = std::atan2(iv.at(cx, cy, 0), iu.at(cx, cy, 0));
  EXPECT_NEAR(direction, p.plume_angle, 0.05);
}

TEST(Ivt, MoreLevelsConvergeToSameIntegral) {
  ml::MeteoParams coarse;
  coarse.nx = 8;
  coarse.ny = 8;
  coarse.levels = 12;
  coarse.seed = 1;
  ml::MeteoParams fine = coarse;
  fine.levels = 60;
  // Disable noise influence by zeroing jitter via fixed humidity/wind only:
  // compare plume-free columns where noise is the only variation. Use a
  // tolerance generous enough for the 5% noise.
  auto ivt_coarse = ml::compute_ivt(ml::generate_meteo_state(coarse));
  auto ivt_fine = ml::compute_ivt(ml::generate_meteo_state(fine));
  EXPECT_NEAR(ivt_fine.at(1, 1, 0) / ivt_coarse.at(1, 1, 0), 1.0, 0.12);
}

TEST(Ivt, MerraLevelCountMatchesPaper) {
  ml::MeteoParams p;  // default 42 levels, "42 vertical levels in the atmosphere"
  auto state = ml::generate_meteo_state(p);
  EXPECT_EQ(state.pressure_levels.size(), 42u);
  EXPECT_GT(state.pressure_levels.front(), state.pressure_levels.back());
}
