#include <gtest/gtest.h>

#include "thredds/catalog.hpp"
#include "thredds/server.hpp"

namespace ct = chase::thredds;
namespace cn = chase::net;
namespace cs = chase::sim;
namespace cu = chase::util;

TEST(Calendar, DaysFromCivil) {
  EXPECT_EQ(ct::days_from_civil(1970, 1, 1), 0);
  EXPECT_EQ(ct::days_from_civil(1970, 1, 2), 1);
  EXPECT_EQ(ct::days_from_civil(1969, 12, 31), -1);
  // Leap handling.
  EXPECT_EQ(ct::days_from_civil(2000, 3, 1) - ct::days_from_civil(2000, 2, 28), 2);
  EXPECT_EQ(ct::days_from_civil(1900, 3, 1) - ct::days_from_civil(1900, 2, 28), 1);
}

TEST(Merra2, MatchesPaperArchive) {
  auto ds = ct::make_merra2_m2i3npasm();
  // "112,249 NetCDF files"
  EXPECT_EQ(ds.file_count, 112249u);
  // "total archive size from 455GB to 246GB"
  EXPECT_NEAR(static_cast<double>(ds.total_bytes()), 455e9, 0.01 * 455e9);
  auto ivt = ds.total_subset_bytes("IVT");
  ASSERT_TRUE(ivt.has_value());
  EXPECT_NEAR(static_cast<double>(*ivt), 246e9, 0.005 * 246e9);
  // 576x361 grid, 42 levels.
  EXPECT_EQ(ds.grid_x, 576);
  EXPECT_EQ(ds.grid_y, 361);
  EXPECT_EQ(ds.levels, 42);
}

TEST(Merra2, FileTimesAndUrls) {
  auto ds = ct::make_merra2_m2i3npasm();
  EXPECT_EQ(ds.file_time(0).to_string(), "1980-01-01T00:00Z");
  EXPECT_EQ(ds.file_time(1).to_string(), "1980-01-01T03:00Z");
  EXPECT_EQ(ds.file_time(8).to_string(), "1980-01-02T00:00Z");
  // Last file: 2018-06-01T00Z (inclusive endpoint).
  EXPECT_EQ(ds.file_time(ds.file_count - 1).to_string(), "2018-06-01T00:00Z");
  EXPECT_EQ(ds.file_url(0), "/thredds/M2I3NPASM/1980-01-01T00:00Z.nc4");
}

TEST(Merra2, SubsetSmallerThanWholeFile) {
  auto ds = ct::make_merra2_m2i3npasm();
  auto ivt = ds.subset_bytes("IVT");
  ASSERT_TRUE(ivt.has_value());
  EXPECT_LT(*ivt, ds.file_bytes());
  EXPECT_FALSE(ds.subset_bytes("NOPE").has_value());
}

namespace {

struct ThreddsBed {
  cs::Simulation sim;
  cn::Network net{sim};
  cn::NodeId server_node;
  cn::NodeId client_node;
  std::unique_ptr<ct::ThreddsServer> server;

  explicit ThreddsBed(ct::ThreddsServer::Options opts = {}) {
    auto sw = net.add_node("switch");
    server_node = net.add_node("thredds-dtn");
    client_node = net.add_node("worker");
    net.add_link(server_node, sw, cu::gbit_per_s(20), 1e-3);
    net.add_link(client_node, sw, cu::gbit_per_s(20), 1e-3);
    server = std::make_unique<ct::ThreddsServer>(sim, net, server_node, opts);
    server->add_dataset(ct::make_merra2_m2i3npasm());
  }
};

}  // namespace

TEST(ThreddsServer, FetchSubsetDeliversVariableBytes) {
  ThreddsBed bed;
  static bool ok;
  static cu::Bytes bytes;
  ok = false;
  bytes = 0;
  auto prog = [](ThreddsBed* b) -> cs::Task {
    co_await b->server->fetch(b->client_node, "M2I3NPASM", 0, "IVT", &ok, &bytes);
  };
  bed.sim.spawn(prog(&bed));
  bed.sim.run();
  EXPECT_TRUE(ok);
  auto expected = bed.server->dataset("M2I3NPASM")->subset_bytes("IVT");
  EXPECT_EQ(bytes, *expected);
  EXPECT_EQ(bed.server->requests_served(), 1u);
  EXPECT_DOUBLE_EQ(bed.server->bytes_served(), static_cast<double>(*expected));
}

TEST(ThreddsServer, WholeFileFetchWhenNoVariable) {
  ThreddsBed bed;
  static cu::Bytes bytes;
  bytes = 0;
  auto prog = [](ThreddsBed* b) -> cs::Task {
    bool ok = false;
    co_await b->server->fetch(b->client_node, "M2I3NPASM", 0, "", &ok, &bytes);
    EXPECT_TRUE(ok);
  };
  bed.sim.spawn(prog(&bed));
  bed.sim.run();
  EXPECT_EQ(bytes, bed.server->dataset("M2I3NPASM")->file_bytes());
}

TEST(ThreddsServer, UnknownDatasetOrIndexFails) {
  ThreddsBed bed;
  static int failures;
  failures = 0;
  auto prog = [](ThreddsBed* b) -> cs::Task {
    bool ok = true;
    co_await b->server->fetch(b->client_node, "NOPE", 0, "IVT", &ok);
    failures += !ok;
    ok = true;
    co_await b->server->fetch(b->client_node, "M2I3NPASM", 999999999, "IVT", &ok);
    failures += !ok;
    ok = true;
    co_await b->server->fetch(b->client_node, "M2I3NPASM", 0, "BOGUS", &ok);
    failures += !ok;
  };
  bed.sim.spawn(prog(&bed));
  bed.sim.run();
  EXPECT_EQ(failures, 3);
}

TEST(ThreddsServer, ExtractionSlotsBoundServiceRate) {
  // With 2 extraction slots at 1s each, 10 requests take >= 5s even though
  // the network is fast.
  ct::ThreddsServer::Options opts;
  opts.extraction_slots = 2;
  opts.extraction_seconds = 1.0;
  opts.request_overhead = 0.0;
  ThreddsBed bed(opts);
  static int completed;
  completed = 0;
  auto prog = [](ThreddsBed* b, std::size_t index) -> cs::Task {
    bool ok = false;
    co_await b->server->fetch(b->client_node, "M2I3NPASM", index, "IVT", &ok);
    if (ok) ++completed;
  };
  for (std::size_t i = 0; i < 10; ++i) bed.sim.spawn(prog(&bed, i));
  bed.sim.run();
  EXPECT_EQ(completed, 10);
  EXPECT_GE(bed.sim.now(), 5.0);
  EXPECT_LT(bed.sim.now(), 7.0);
}

TEST(Aria2, DownloadsAllFilesAcrossConnections) {
  ct::ThreddsServer::Options opts;
  opts.extraction_seconds = 0.05;
  opts.request_overhead = 0.0;
  ThreddsBed bed(opts);
  ct::Aria2Client aria(bed.sim, *bed.server, bed.client_node, 20);
  std::vector<std::size_t> files;
  for (std::size_t i = 0; i < 100; ++i) files.push_back(i);
  static ct::DownloadStats stats;
  stats = {};
  auto prog = [](ThreddsBed* /*b*/, ct::Aria2Client* a, std::vector<std::size_t> f) -> cs::Task {
    co_await a->download("M2I3NPASM", std::move(f), "IVT", &stats);
  };
  bed.sim.spawn(prog(&bed, &aria, files));
  bed.sim.run();
  EXPECT_TRUE(stats.ok);
  EXPECT_EQ(stats.files, 100u);
  auto per_file = *bed.server->dataset("M2I3NPASM")->subset_bytes("IVT");
  EXPECT_EQ(stats.bytes, per_file * 100);
}

TEST(Aria2, MoreConnectionsFasterUntilServerBound) {
  double elapsed[3];
  const int connection_counts[3] = {1, 4, 64};
  for (int run = 0; run < 3; ++run) {
    ct::ThreddsServer::Options opts;
    opts.extraction_slots = 8;
    opts.extraction_seconds = 0.1;
    opts.request_overhead = 0.0;
    ThreddsBed bed(opts);
    ct::Aria2Client aria(bed.sim, *bed.server, bed.client_node, connection_counts[run]);
    std::vector<std::size_t> files;
    for (std::size_t i = 0; i < 200; ++i) files.push_back(i);
    static ct::DownloadStats stats;
    stats = {};
    auto prog = [](ct::Aria2Client* a, std::vector<std::size_t> f) -> cs::Task {
      co_await a->download("M2I3NPASM", std::move(f), "IVT", &stats);
    };
    bed.sim.spawn(prog(&aria, files));
    bed.sim.run();
    EXPECT_TRUE(stats.ok);
    elapsed[run] = bed.sim.now();
  }
  EXPECT_LT(elapsed[1], elapsed[0] * 0.5);   // 4 connections much faster than 1
  EXPECT_GT(elapsed[2], elapsed[1] * 0.25);  // but 64 is server-bound, not 16x
}

TEST(Aria2, EmptyFileListCompletesImmediately) {
  ThreddsBed bed;
  ct::Aria2Client aria(bed.sim, *bed.server, bed.client_node, 4);
  static ct::DownloadStats stats;
  stats = {};
  auto prog = [](ct::Aria2Client* a) -> cs::Task {
    co_await a->download("M2I3NPASM", {}, "IVT", &stats);
  };
  bed.sim.spawn(prog(&aria));
  bed.sim.run();
  EXPECT_TRUE(stats.ok);
  EXPECT_EQ(stats.files, 0u);
}
