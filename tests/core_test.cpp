#include <gtest/gtest.h>

#include "core/connect_workflow.hpp"
#include "core/nautilus.hpp"
#include "core/workflow.hpp"

namespace co = chase::core;
namespace cw = chase::wf;
namespace ck = chase::kube;
namespace cs = chase::sim;
namespace cu = chase::util;

TEST(Nautilus, BuildsThePlatform) {
  co::Nautilus bed;
  // 8 sites x 2 FIONA8 x 8 GPUs.
  EXPECT_EQ(bed.inventory.total_gpus(), 128);
  EXPECT_EQ(bed.kube->node_count(), 16u);
  EXPECT_EQ(bed.ceph->osd_count(), 8u);
  // "over a petabyte of storage".
  EXPECT_GE(bed.ceph->total_capacity(), cu::tb(1000));
  // THREDDS hosts the MERRA-2 catalog.
  ASSERT_NE(bed.thredds->dataset("M2I3NPASM"), nullptr);
  EXPECT_EQ(bed.thredds->dataset("M2I3NPASM")->file_count, 112249u);
  // Federation ready.
  EXPECT_TRUE(bed.sso.has_provider("ucsd.edu"));
  auto desc = bed.describe();
  EXPECT_NE(desc.find("UCSD"), std::string::npos);
  EXPECT_NE(desc.find("128 GPUs"), std::string::npos);
}

TEST(Workflow, MeasuresStepsSequentially) {
  co::Nautilus bed;
  cw::Workflow wf(*bed.kube, bed.metrics, "default", "test-wf");

  auto make_step = [&](const std::string& name, const std::string& label,
                       double run_seconds, int pods) {
    return cw::StepSpec{
        name, label,
        [label, run_seconds, pods](cw::StepContext* ctx) -> chase::sim::Task {
          ck::JobSpec job;
          job.ns = "default";
          job.name = "job-" + label;
          job.labels = ctx->step_labels();
          job.completions = pods;
          job.parallelism = pods;
          ck::ContainerSpec c;
          c.requests = {2, cu::gb(4), 0};
          c.program = [run_seconds](ck::PodContext& pctx) -> chase::sim::Task {
            co_await pctx.compute(run_seconds * 2.0, 2.0);
          };
          job.pod_template.containers.push_back(std::move(c));
          auto j = ctx->kube().create_job(job).value;
          co_await j->done->wait(ctx->sim());
          ctx->add_data(1e9);
        }};
  };
  wf.add_step(make_step("alpha", "a", 10.0, 2));
  wf.add_step(make_step("beta", "b", 5.0, 3));

  auto stop = cs::make_event();
  bed.metrics.start_sampler(bed.sim, 5.0, stop);
  auto done = wf.start(bed.sim);
  ASSERT_TRUE(cs::run_until(bed.sim, done));
  stop->trigger(bed.sim);
  bed.sim.run();

  ASSERT_TRUE(wf.finished());
  ASSERT_EQ(wf.reports().size(), 2u);
  const auto& alpha = wf.reports()[0];
  const auto& beta = wf.reports()[1];
  EXPECT_EQ(alpha.pods, 2);
  EXPECT_EQ(beta.pods, 3);
  EXPECT_DOUBLE_EQ(alpha.cpus, 4);
  EXPECT_DOUBLE_EQ(beta.cpus, 6);
  EXPECT_DOUBLE_EQ(alpha.data_bytes, 1e9);
  EXPECT_GE(alpha.duration(), 10.0);
  EXPECT_GE(beta.duration(), 5.0);
  // Steps are sequential.
  EXPECT_GE(beta.start_time, alpha.end_time);
  // Peak memory: pods request 4 GB and report it while running.
  EXPECT_GE(alpha.peak_memory_bytes, static_cast<double>(cu::gb(4)));
  auto table = wf.summary_table();
  EXPECT_NE(table.find("alpha"), std::string::npos);
}

TEST(ConnectWorkflow, ScaledDownRunCompletesAllFourSteps) {
  co::Nautilus bed;
  co::ConnectWorkflowParams params;
  params.data_fraction = 2e-4;  // ~22 files
  params.download_workers = 3;
  params.merge_pods = 1;
  params.url_lists = 5;
  params.inference_gpus = 4;
  params.viz_render_seconds = 10.0;
  co::ConnectWorkflow cwf(bed, params);

  EXPECT_GE(cwf.scaled_file_count(), 20u);
  EXPECT_LT(cwf.scaled_file_count(), 30u);

  auto stop = cs::make_event();
  bed.metrics.start_sampler(bed.sim, 30.0, stop);
  auto done = cwf.workflow().start(bed.sim);
  ASSERT_TRUE(cs::run_until(bed.sim, done));
  stop->trigger(bed.sim);

  ASSERT_EQ(cwf.workflow().reports().size(), 4u);
  const auto& reports = cwf.workflow().reports();

  // Step 1: 3 workers + 1 merger + 1 coordinator + 1 redis = 6 pods, 0 GPUs.
  EXPECT_EQ(reports[0].pods, 6);
  EXPECT_EQ(reports[0].gpus, 0);
  EXPECT_NEAR(reports[0].data_bytes, cwf.scaled_subset_bytes(), 1.0);
  // Step 2: one trainer with one GPU.
  EXPECT_EQ(reports[1].pods, 1);
  EXPECT_EQ(reports[1].gpus, 1);
  // Step 3: 4 inference pods, one GPU each.
  EXPECT_EQ(reports[2].pods, 4);
  EXPECT_EQ(reports[2].gpus, 4);
  // Step 4: one JupyterLab pod.
  EXPECT_EQ(reports[3].pods, 1);

  // Data made it into the Ceph Object Store.
  EXPECT_GT(bed.fs->list("/merra2/").size(), 0u);
  EXPECT_TRUE(bed.fs->exists("/models/ffn-ckpt"));
  EXPECT_EQ(bed.fs->list("/results/").size(), 4u);

  // All steps took nonzero time, and inference dominates training at equal
  // scale factors when sharded over few GPUs.
  for (const auto& r : reports) EXPECT_GT(r.duration(), 0.0);
}

TEST(ConnectWorkflow, SubsettingReducesBytes) {
  co::Nautilus bed;
  co::ConnectWorkflowParams with_subset;
  with_subset.data_fraction = 1e-4;
  co::ConnectWorkflow a(bed, with_subset);

  co::ConnectWorkflowParams whole_files = with_subset;
  whole_files.variable = "";  // no subsetting: 455 GB archive
  whole_files.ns = "atmos-whole";
  co::ConnectWorkflow b(bed, whole_files);

  EXPECT_NEAR(b.scaled_subset_bytes() / a.scaled_subset_bytes(), 455.0 / 246.0, 0.05);
}

TEST(ConnectWorkflow, WorkerCpuMetricsRecordedPerPod) {
  co::Nautilus bed;
  co::ConnectWorkflowParams params;
  params.data_fraction = 1e-4;
  params.download_workers = 2;
  params.merge_pods = 1;
  params.url_lists = 4;
  params.inference_gpus = 2;
  params.viz_render_seconds = 5.0;
  co::ConnectWorkflow cwf(bed, params);

  auto stop = cs::make_event();
  bed.metrics.start_sampler(bed.sim, 0.5, stop);
  auto done = cwf.workflow().start(bed.sim);
  ASSERT_TRUE(cs::run_until(bed.sim, done));
  stop->trigger(bed.sim);

  // Fig. 3 data: per-worker CPU series exist under step=1.
  auto cpu_series = bed.metrics.select("pod_cpu_cores", {{"step", "1"}, {"job", "download"}});
  EXPECT_EQ(cpu_series.size(), 2u);
  for (const auto& [key, ts] : cpu_series) {
    EXPECT_GT(ts->max_over_time(), 1.0);  // busy while downloading
  }
  // Fig. 6 data: GPU usage series under step=3.
  auto gpu_series = bed.metrics.select("pod_gpus", {{"step", "3"}});
  EXPECT_EQ(gpu_series.size(), 2u);
}
