/// Tests for the PPoDS collaborative workflow-development layer (paper §VI).

#include <gtest/gtest.h>

#include "core/nautilus.hpp"
#include "core/ppods.hpp"

namespace co = chase::core;
namespace cw = chase::wf;
namespace ck = chase::kube;
namespace cs = chase::sim;
namespace cu = chase::util;

namespace {

std::string name_of(cw::StepContext* ctx) {
  static int counter = 0;
  return "trial-" + ctx->step_label() + "-" + std::to_string(counter++);
}

/// A step implementation parameterized by worker count — the knob a
/// developer iterates on during exploratory development.
cw::StepSpec make_step(const std::string& name, int workers, double work_seconds) {
  return cw::StepSpec{
      name, name,
      [workers, work_seconds](cw::StepContext* ctx) -> cs::Task {
        ck::JobSpec job;
        job.ns = ctx->ns();
        job.name = name_of(ctx);
        job.labels = ctx->step_labels();
        job.completions = workers;
        job.parallelism = workers;
        ck::ContainerSpec c;
        c.requests = {2, cu::gb(4), 0};
        const double per_worker = work_seconds / workers;
        c.program = [per_worker](ck::PodContext& pctx) -> cs::Task {
          co_await pctx.compute(per_worker * 2.0, 2.0);
        };
        job.pod_template.containers.push_back(std::move(c));
        auto handle = ctx->kube().create_job(job).value;
        co_await handle->done->wait(ctx->sim());
        ctx->add_data(1e9);
      }};
}

}  // namespace

TEST(Ppods, MembershipAndOwnership) {
  co::Nautilus bed;
  cw::PpodsSession session(*bed.kube, bed.metrics, "dev", "connect-dev");
  session.register_step("download", "kyle");
  session.register_step("training", "isaac");
  session.register_step("download", "kyle");  // idempotent
  EXPECT_EQ(session.members().size(), 2u);
  EXPECT_EQ(session.owner_of("download"), "kyle");
  EXPECT_EQ(session.owner_of("unknown"), "");
  EXPECT_EQ(session.steps().size(), 2u);
  // Re-assign ownership.
  session.register_step("download", "scott");
  EXPECT_EQ(session.owner_of("download"), "scott");
  EXPECT_EQ(session.steps().size(), 2u);
}

TEST(Ppods, TrialsRecordMeasurements) {
  co::Nautilus bed;
  cw::PpodsSession session(*bed.kube, bed.metrics, "dev", "s");
  session.register_step("download", "kyle");
  auto done = session.run_trial(make_step("download", 2, 100.0), "first try");
  ASSERT_TRUE(cs::run_until(bed.sim, done));
  ASSERT_EQ(session.trials().size(), 1u);
  const auto& trial = session.trials()[0];
  EXPECT_EQ(trial.step, "download");
  EXPECT_EQ(trial.owner, "kyle");
  EXPECT_EQ(trial.number, 1);
  EXPECT_EQ(trial.notes, "first try");
  EXPECT_EQ(trial.report.pods, 2);
  EXPECT_GT(trial.report.duration(), 0.0);
  EXPECT_DOUBLE_EQ(trial.report.data_bytes, 1e9);
}

TEST(Ppods, ImprovementAcrossTrials) {
  co::Nautilus bed;
  cw::PpodsSession session(*bed.kube, bed.metrics, "dev", "s");
  session.register_step("download", "kyle");
  // Iteration: 1 worker, then 4 workers — the paper's "scaling the number
  // of workers" exploration.
  auto t1 = session.run_trial(make_step("download", 1, 400.0), "serial");
  cs::run_until(bed.sim, t1);
  auto t2 = session.run_trial(make_step("download", 4, 400.0), "4 workers");
  cs::run_until(bed.sim, t2);
  ASSERT_EQ(session.trials().size(), 2u);
  EXPECT_EQ(session.trials()[1].number, 2);
  EXPECT_GT(session.improvement("download"), 2.5);
  EXPECT_DOUBLE_EQ(session.improvement("nope"), 1.0);
}

TEST(Ppods, ExpectationsValidateTrials) {
  co::Nautilus bed;
  cw::PpodsSession session(*bed.kube, bed.metrics, "dev", "s");
  session.register_step("download", "kyle");
  session.add_expectation("download", "processes 1GB",
                          [](const cw::StepReport& r) { return r.data_bytes >= 1e9; });
  session.add_expectation("download", "finishes under 3 minutes",
                          [](const cw::StepReport& r) { return r.duration() < 180.0; });

  auto slow = session.run_trial(make_step("download", 1, 400.0), "too slow");
  cs::run_until(bed.sim, slow);
  EXPECT_FALSE(session.trials()[0].passed());
  ASSERT_EQ(session.trials()[0].failed_expectations.size(), 1u);
  EXPECT_EQ(session.trials()[0].failed_expectations[0], "finishes under 3 minutes");

  auto fast = session.run_trial(make_step("download", 8, 400.0), "8 workers");
  cs::run_until(bed.sim, fast);
  EXPECT_TRUE(session.trials()[1].passed());
}

TEST(Ppods, BoardRendersStatus) {
  co::Nautilus bed;
  cw::PpodsSession session(*bed.kube, bed.metrics, "dev", "connect");
  session.register_step("download", "kyle");
  session.register_step("training", "isaac");
  session.add_expectation("download", "under 1s",
                          [](const cw::StepReport& r) { return r.duration() < 1.0; });
  auto done = session.run_trial(make_step("download", 2, 100.0));
  cs::run_until(bed.sim, done);
  const std::string board = session.render_board();
  EXPECT_NE(board.find("connect"), std::string::npos);
  EXPECT_NE(board.find("kyle"), std::string::npos);
  EXPECT_NE(board.find("FAILING: under 1s"), std::string::npos);
  EXPECT_NE(board.find("not run"), std::string::npos);  // training untried
}

TEST(Ppods, ParallelTrialsOfDifferentSteps) {
  // "Development can happen in parallel": two owners run their steps
  // concurrently in the same namespace.
  co::Nautilus bed;
  cw::PpodsSession session(*bed.kube, bed.metrics, "dev", "s");
  session.register_step("download", "kyle");
  session.register_step("training", "isaac");
  auto a = session.run_trial(make_step("download", 2, 100.0));
  auto b = session.run_trial(make_step("training", 3, 100.0));
  cs::run_until(bed.sim, a);
  cs::run_until(bed.sim, b);
  EXPECT_EQ(session.trials().size(), 2u);
  EXPECT_EQ(session.trials_of("download").size(), 1u);
  EXPECT_EQ(session.trials_of("training").size(), 1u);
}
