/// Tests for the advanced orchestrator features: taints/tolerations,
/// cordon/drain, priority + preemption, ReplicaSet scaling, Deployments
/// with rolling updates.

#include <gtest/gtest.h>

#include <memory>

#include "kube/cluster.hpp"

namespace ck = chase::kube;
namespace cc = chase::cluster;
namespace cn = chase::net;
namespace cs = chase::sim;
namespace cu = chase::util;

namespace {

struct Testbed {
  cs::Simulation sim;
  cn::Network net{sim};
  cc::Inventory inventory{net};
  std::unique_ptr<ck::KubeCluster> kube;
  cn::NodeId switch_node;
  std::vector<cc::MachineId> machines;

  explicit Testbed(int nodes = 2) {
    switch_node = net.add_node("switch");
    kube = std::make_unique<ck::KubeCluster>(sim, net, inventory, nullptr);
    for (int i = 0; i < nodes; ++i) {
      auto name = "fiona8-" + std::to_string(i);
      auto nn = net.add_node(name);
      net.add_link(nn, switch_node, cu::gbit_per_s(20), 1e-4);
      machines.push_back(inventory.add(cc::fiona8(name, "UCSD"), nn));
      kube->register_node(machines.back());
    }
  }
};

ck::PodSpec pod_spec(double run_seconds, ck::ResourceList requests = {1, cu::gb(1), 0}) {
  ck::PodSpec spec;
  ck::ContainerSpec c;
  c.requests = requests;
  c.program = [run_seconds](ck::PodContext& ctx) -> cs::Task {
    co_await ctx.sim().sleep(run_seconds);
  };
  spec.containers.push_back(std::move(c));
  return spec;
}

}  // namespace

// --- taints / tolerations --------------------------------------------------------

TEST(Taints, NoScheduleKeepsPodsAway) {
  Testbed tb(2);
  tb.kube->add_taint(tb.machines[0], {"dedicated", "viz", ck::TaintEffect::NoSchedule});
  for (int i = 0; i < 4; ++i) {
    tb.kube->create_pod("default", "p" + std::to_string(i), pod_spec(1e6));
  }
  tb.sim.run(30.0);
  for (const auto& pod : tb.kube->list_pods("default")) {
    EXPECT_EQ(pod->node, tb.machines[1]) << pod->meta.name;
  }
}

TEST(Taints, TolerationAllowsScheduling) {
  Testbed tb(1);
  tb.kube->add_taint(tb.machines[0], {"dedicated", "viz", ck::TaintEffect::NoSchedule});
  auto plain = tb.kube->create_pod("default", "plain", pod_spec(1e6)).value;
  auto spec = pod_spec(1e6);
  spec.tolerations.push_back({"dedicated", "viz"});
  auto tolerant = tb.kube->create_pod("default", "tolerant", spec).value;
  tb.sim.run(30.0);
  EXPECT_EQ(plain->phase, ck::PodPhase::Pending);
  EXPECT_EQ(tolerant->phase, ck::PodPhase::Running);
}

TEST(Taints, WildcardTolerationMatchesAnyValue) {
  Testbed tb(1);
  tb.kube->add_taint(tb.machines[0], {"team", "alpha", ck::TaintEffect::NoSchedule});
  auto spec = pod_spec(1e6);
  spec.tolerations.push_back({"team", ""});  // any value
  auto pod = tb.kube->create_pod("default", "p", spec).value;
  tb.sim.run(30.0);
  EXPECT_EQ(pod->phase, ck::PodPhase::Running);
}

TEST(Taints, NoExecuteEvictsRunningPods) {
  Testbed tb(1);
  auto victim = tb.kube->create_pod("default", "victim", pod_spec(1e6)).value;
  auto spec = pod_spec(1e6);
  spec.tolerations.push_back({"maintenance", ""});
  auto survivor = tb.kube->create_pod("default", "survivor", spec).value;
  tb.sim.run(30.0);
  ASSERT_EQ(victim->phase, ck::PodPhase::Running);

  tb.kube->add_taint(tb.machines[0], {"maintenance", "on", ck::TaintEffect::NoExecute});
  tb.sim.run(60.0);
  EXPECT_EQ(victim->phase, ck::PodPhase::Failed);
  EXPECT_EQ(victim->reason, "TaintNoExecute");
  EXPECT_EQ(survivor->phase, ck::PodPhase::Running);
}

TEST(Taints, RemoveTaintRestoresScheduling) {
  Testbed tb(1);
  tb.kube->add_taint(tb.machines[0], {"hold", "1", ck::TaintEffect::NoSchedule});
  auto pod = tb.kube->create_pod("default", "p", pod_spec(5.0)).value;
  tb.sim.run(30.0);
  EXPECT_EQ(pod->phase, ck::PodPhase::Pending);
  tb.kube->remove_taint(tb.machines[0], "hold");
  tb.sim.run();
  EXPECT_EQ(pod->phase, ck::PodPhase::Succeeded);
}

// --- cordon / drain -----------------------------------------------------------------

TEST(Cordon, StopsNewSchedulingKeepsRunning) {
  Testbed tb(1);
  auto running = tb.kube->create_pod("default", "running", pod_spec(1e6)).value;
  tb.sim.run(30.0);
  ASSERT_EQ(running->phase, ck::PodPhase::Running);

  tb.kube->cordon(tb.machines[0]);
  auto blocked = tb.kube->create_pod("default", "blocked", pod_spec(5.0)).value;
  tb.sim.run(tb.sim.now() + 60.0);
  EXPECT_EQ(running->phase, ck::PodPhase::Running);  // not evicted
  EXPECT_EQ(blocked->phase, ck::PodPhase::Pending);

  tb.kube->uncordon(tb.machines[0]);
  tb.sim.run(tb.sim.now() + 60.0);
  EXPECT_EQ(blocked->phase, ck::PodPhase::Succeeded);
}

TEST(Drain, EvictsAndReschedulesJobPodsWithoutFailures) {
  Testbed tb(2);
  ck::JobSpec spec;
  spec.ns = "default";
  spec.name = "work";
  spec.completions = 2;
  spec.parallelism = 2;
  spec.pod_template = pod_spec(120.0, {20, cu::gb(16), 0});  // one per node
  auto job = tb.kube->create_job(spec).value;
  tb.sim.run(30.0);
  ASSERT_EQ(job->active, 2);

  tb.kube->drain(tb.machines[0]);
  tb.sim.run(tb.sim.now() + 10.0);
  // Drained pod failed with reason Drained; replacement cannot fit on the
  // cordoned node, so it waits for node 1.
  int drained = 0;
  for (const auto& pod : tb.kube->list_pods("default", {{"job", "work"}})) {
    drained += pod->reason == "Drained";
  }
  EXPECT_EQ(drained, 1);
  EXPECT_EQ(job->failed, 0);  // drains don't count
  tb.sim.run();
  EXPECT_TRUE(job->complete);
}

// --- priority & preemption --------------------------------------------------------------

TEST(Preemption, HighPriorityEvictsLowPriority) {
  Testbed tb(1);
  // Fill the node's 8 GPUs with two low-priority pods.
  auto low1 = tb.kube->create_pod("default", "low1", pod_spec(1e6, {1, cu::gb(4), 4})).value;
  auto low2 = tb.kube->create_pod("default", "low2", pod_spec(1e6, {1, cu::gb(4), 4})).value;
  tb.sim.run(30.0);
  ASSERT_EQ(low1->phase, ck::PodPhase::Running);
  ASSERT_EQ(low2->phase, ck::PodPhase::Running);

  auto spec = pod_spec(60.0, {1, cu::gb(4), 4});
  spec.priority = 10;
  auto high = tb.kube->create_pod("default", "high", spec).value;
  tb.sim.run(tb.sim.now() + 30.0);
  EXPECT_EQ(high->phase, ck::PodPhase::Running);
  const bool one_evicted = (low1->reason == "Preempted") ^ (low2->reason == "Preempted");
  EXPECT_TRUE(one_evicted);
}

TEST(Preemption, EqualPriorityDoesNotPreempt) {
  Testbed tb(1);
  auto low = tb.kube->create_pod("default", "a", pod_spec(1e6, {1, cu::gb(4), 8})).value;
  tb.sim.run(30.0);
  auto spec = pod_spec(10.0, {1, cu::gb(4), 8});
  spec.priority = 0;
  auto peer = tb.kube->create_pod("default", "b", spec).value;
  tb.sim.run(tb.sim.now() + 60.0);
  EXPECT_EQ(low->phase, ck::PodPhase::Running);
  EXPECT_EQ(peer->phase, ck::PodPhase::Pending);
}

TEST(Preemption, EvictsCheapestSufficientSet) {
  Testbed tb(1);
  // Three low-priority pods: 2+2+4 GPUs. A high pod needing 2 GPUs should
  // evict exactly one of the 2-GPU pods (lowest priority first).
  auto spec2a = pod_spec(1e6, {1, cu::gb(4), 2});
  spec2a.priority = 1;
  auto spec2b = pod_spec(1e6, {1, cu::gb(4), 2});
  spec2b.priority = 2;
  auto spec4 = pod_spec(1e6, {1, cu::gb(4), 4});
  spec4.priority = 3;
  auto a = tb.kube->create_pod("default", "a", spec2a).value;
  auto b = tb.kube->create_pod("default", "b", spec2b).value;
  auto c = tb.kube->create_pod("default", "c", spec4).value;
  tb.sim.run(30.0);

  auto high = pod_spec(60.0, {1, cu::gb(4), 2});
  high.priority = 10;
  auto h = tb.kube->create_pod("default", "h", high).value;
  tb.sim.run(tb.sim.now() + 30.0);
  EXPECT_EQ(h->phase, ck::PodPhase::Running);
  EXPECT_EQ(a->reason, "Preempted");  // the lowest priority victim
  EXPECT_EQ(b->phase, ck::PodPhase::Running);
  EXPECT_EQ(c->phase, ck::PodPhase::Running);
}

// --- ReplicaSet scaling ----------------------------------------------------------------------

TEST(ReplicaSetScaling, UpAndDown) {
  Testbed tb(2);
  ck::ReplicaSetSpec spec;
  spec.ns = "default";
  spec.name = "svc";
  spec.replicas = 2;
  spec.labels = {{"app", "svc"}};
  spec.pod_template = pod_spec(1e6);
  auto rs = tb.kube->create_replica_set(spec).value;
  tb.sim.run(30.0);
  EXPECT_EQ(rs->active, 2);

  tb.kube->scale_replica_set("default", "svc", 5);
  tb.sim.run(tb.sim.now() + 30.0);
  int running = 0;
  for (const auto& pod : tb.kube->list_pods("default", {{"app", "svc"}})) {
    running += pod->phase == ck::PodPhase::Running;
  }
  EXPECT_EQ(running, 5);

  tb.kube->scale_replica_set("default", "svc", 1);
  tb.sim.run(tb.sim.now() + 30.0);
  running = 0;
  for (const auto& pod : tb.kube->list_pods("default", {{"app", "svc"}})) {
    running += pod->phase == ck::PodPhase::Running;
  }
  EXPECT_EQ(running, 1);
  EXPECT_EQ(rs->active, 1);
}

// --- Deployments ---------------------------------------------------------------------------------

TEST(Deployment, CreateRunsReplicas) {
  Testbed tb(2);
  ck::DeploymentSpec spec;
  spec.ns = "default";
  spec.name = "web";
  spec.replicas = 3;
  spec.labels = {{"app", "web"}};
  spec.pod_template = pod_spec(1e6);
  spec.pod_template.containers[0].image = "web:v1";
  auto deployment = tb.kube->create_deployment(spec).value;
  tb.sim.run(60.0);
  int running = 0;
  for (const auto& pod : tb.kube->list_pods("default", {{"app", "web"}})) {
    running += pod->phase == ck::PodPhase::Running;
  }
  EXPECT_EQ(running, 3);
  EXPECT_EQ(deployment->revision, 1);
  EXPECT_FALSE(deployment->rolling);
}

TEST(Deployment, RollingUpdateReplacesAllPodsWithoutGap) {
  Testbed tb(2);
  ck::DeploymentSpec spec;
  spec.ns = "default";
  spec.name = "web";
  spec.replicas = 3;
  spec.labels = {{"app", "web"}};
  spec.pod_template = pod_spec(1e6);
  spec.pod_template.containers[0].image = "web:v1";
  auto deployment = tb.kube->create_deployment(spec).value;
  tb.sim.run(60.0);

  // Track availability during the rollout: never fewer than 3 running pods.
  static int min_running;
  min_running = 1000;
  auto probe = [&tb]() {
    int running = 0;
    for (const auto& pod : tb.kube->list_pods("default", {{"app", "web"}})) {
      running += pod->phase == ck::PodPhase::Running;
    }
    return running;
  };
  for (double t = tb.sim.now(); t < tb.sim.now() + 300; t += 2.0) {
    tb.sim.schedule(t - tb.sim.now(), [&] { min_running = std::min(min_running, probe()); });
  }

  auto v2 = pod_spec(1e6);
  v2.containers[0].image = "web:v2";
  tb.kube->update_deployment("default", "web", v2);
  ASSERT_TRUE(cs::run_until(tb.sim, deployment->rolled_out));
  tb.sim.run(tb.sim.now() + 30.0);

  EXPECT_EQ(deployment->revision, 2);
  EXPECT_FALSE(deployment->rolling);
  EXPECT_GE(min_running, 3);  // surge: capacity never dipped
  int v2_running = 0, v1_running = 0;
  for (const auto& pod : tb.kube->list_pods("default", {{"app", "web"}})) {
    if (pod->phase != ck::PodPhase::Running) continue;
    v2_running += pod->spec.containers[0].image == "web:v2";
    v1_running += pod->spec.containers[0].image == "web:v1";
  }
  EXPECT_EQ(v2_running, 3);
  EXPECT_EQ(v1_running, 0);
}

TEST(Deployment, DeleteRemovesAllPods) {
  Testbed tb(2);
  ck::DeploymentSpec spec;
  spec.ns = "default";
  spec.name = "web";
  spec.replicas = 2;
  spec.labels = {{"app", "web"}};
  spec.pod_template = pod_spec(1e6);
  tb.kube->create_deployment(spec);
  tb.sim.run(60.0);
  tb.kube->delete_deployment("default", "web");
  tb.sim.run(tb.sim.now() + 30.0);
  for (const auto& pod : tb.kube->list_pods("default", {{"app", "web"}})) {
    EXPECT_TRUE(pod->terminal());
  }
  EXPECT_EQ(tb.kube->get_deployment("default", "web"), nullptr);
}

// --- CronJobs ---------------------------------------------------------------------------------

TEST(CronJob, FiresPeriodically) {
  Testbed tb(2);
  ck::CronJobSpec spec;
  spec.ns = "default";
  spec.name = "ingest";
  spec.period = 100.0;
  spec.job_template.pod_template = pod_spec(10.0);
  spec.job_template.completions = 1;
  auto cron = tb.kube->create_cron_job(spec);
  ASSERT_TRUE(cron.ok()) << cron.error;
  tb.sim.run(350.0);
  EXPECT_EQ(cron.value->fired, 3u);  // t=100, 200, 300
  int jobs = 0;
  for (const auto& pod : tb.kube->list_pods("default", {{"cronjob", "ingest"}})) {
    jobs += pod->phase == ck::PodPhase::Succeeded;
  }
  EXPECT_GE(jobs, 2);
  tb.kube->delete_cron_job("default", "ingest");
  tb.sim.run(1000.0);
  EXPECT_EQ(cron.value->fired, 3u);  // no more firings after delete
}

TEST(CronJob, ForbidSkipsWhileRunning) {
  Testbed tb(2);
  ck::CronJobSpec spec;
  spec.ns = "default";
  spec.name = "slow";
  spec.period = 50.0;
  spec.forbid_concurrent = true;
  spec.job_template.pod_template = pod_spec(175.0);  // outlives 3 periods
  auto cron = tb.kube->create_cron_job(spec).value;
  // Fires at t=50 (job busy until ~226), skips t=100/150/200, fires at 250.
  tb.sim.run(260.0);
  EXPECT_EQ(cron->fired, 2u);
  EXPECT_EQ(cron->skipped, 3u);
  tb.kube->delete_cron_job("default", "slow");
  tb.sim.run(2000.0);
}

TEST(CronJob, AllowConcurrentRunsInParallel) {
  Testbed tb(2);
  ck::CronJobSpec spec;
  spec.ns = "default";
  spec.name = "burst";
  spec.period = 50.0;
  spec.forbid_concurrent = false;
  spec.job_template.pod_template = pod_spec(175.0);
  auto cron = tb.kube->create_cron_job(spec).value;
  tb.sim.run(260.0);
  EXPECT_EQ(cron->fired, 5u);
  EXPECT_EQ(cron->skipped, 0u);
  tb.kube->delete_cron_job("default", "burst");
  tb.sim.run(2000.0);
}

TEST(CronJob, SuspendPausesFirings) {
  Testbed tb(2);
  ck::CronJobSpec spec;
  spec.ns = "default";
  spec.name = "paused";
  spec.period = 50.0;
  spec.job_template.pod_template = pod_spec(5.0);
  auto cron = tb.kube->create_cron_job(spec).value;
  tb.sim.run(120.0);
  EXPECT_EQ(cron->fired, 2u);
  tb.kube->suspend_cron_job("default", "paused", true);
  tb.sim.run(400.0);
  EXPECT_EQ(cron->fired, 2u);
  tb.kube->suspend_cron_job("default", "paused", false);
  tb.sim.run(520.0);
  EXPECT_GE(cron->fired, 3u);
  tb.kube->delete_cron_job("default", "paused");
  tb.sim.run(2000.0);
}

TEST(CronJob, RejectsBadSpecs) {
  Testbed tb(1);
  ck::CronJobSpec spec;
  spec.ns = "default";
  spec.name = "bad";
  spec.period = -5.0;
  EXPECT_FALSE(tb.kube->create_cron_job(spec).ok());
  spec.period = 10.0;
  spec.ns = "ghost";
  EXPECT_FALSE(tb.kube->create_cron_job(spec).ok());
}
