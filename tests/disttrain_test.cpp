/// Data-parallel FFN training (ml/disttrain.hpp): bit-identity of the ring
/// all-reduce and the synchronous parameter server against the single-trainer
/// large-batch reference, the stale-synchronous divergence, backup-worker
/// straggler mitigation, and chaos healing with shard conservation.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>

#include "chaos/chaos.hpp"
#include "core/nautilus.hpp"
#include "ml/disttrain.hpp"
#include "sim/event.hpp"
#include "util/units.hpp"

namespace ch = chase::chaos;
namespace co = chase::core;
namespace cs = chase::sim;
namespace cu = chase::util;
namespace ml = chase::ml;

namespace {

/// Two-site testbed: 4 FIONA8s (32 GPUs) keep construction cheap.
co::NautilusOptions small_bed(int sites = 2) {
  co::NautilusOptions options;
  options.sites.resize(static_cast<std::size_t>(sites));
  for (int s = 0; s < sites; ++s) options.sites[static_cast<std::size_t>(s)] = "Site" + std::to_string(s);
  options.fiona8_per_site = 2;
  options.storage_per_site = 1;
  options.wan_gbps.assign(static_cast<std::size_t>(sites), 40.0);
  return options;
}

/// Test-scale job: tiny model + volume so the numeric work is milliseconds.
ml::DistTrainConfig small_config() {
  ml::DistTrainConfig config;
  config.workers = 4;
  config.steps = 24;
  config.model.channels = 4;
  config.model.modules = 1;
  config.model.fov = 7;
  config.data.nx = 48;
  config.data.ny = 32;
  config.data.nt = 32;
  config.data.events = 4;
  config.optimizer.learning_rate = 0.05f;
  config.seed = 11;
  return config;
}

void expect_bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  if (!a.empty()) {
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));
  }
}

ml::DistTrainReport run_to_completion(co::Nautilus& bed, ml::DistTrainer& trainer) {
  const cs::EventPtr done = trainer.start();
  EXPECT_TRUE(cs::run_until(bed.sim, done));
  EXPECT_TRUE(trainer.finished());
  return trainer.report();
}

}  // namespace

TEST(ShardedIvtDataset, StreamsArePureFunctionsOfShardAndStep) {
  const auto config = small_config();
  ml::ShardedIvtDataset dataset(config.data, config.workers, config.model, config.seed,
                                config.input_mean, config.input_scale);
  ml::Tensor4 a, b;
  ml::Volume<std::uint8_t> ta, tb;
  dataset.example(2, 17, a, ta);
  dataset.example(0, 3, b, tb);  // interleaved other-shard draw must not disturb it
  dataset.example(2, 17, b, tb);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));
  // Distinct shards draw from distinct slabs/streams.
  dataset.example(1, 17, b, tb);
  EXPECT_NE(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));
}

TEST(DistTrain, RingAllReduceMatchesLargeBatchReferenceBitwise) {
  co::Nautilus bed(small_bed());
  const auto config = small_config();
  ml::DistTrainer trainer(*bed.kube, config);
  const auto report = run_to_completion(bed, trainer);
  const auto reference = ml::reference_large_batch(config);

  expect_bitwise_equal(report.losses, reference.losses);
  EXPECT_EQ(report.hash, reference.hash);
  EXPECT_EQ(report.applied_updates, config.steps);
  for (int s = 0; s < config.workers; ++s) {
    EXPECT_EQ(report.shard_contributions[static_cast<std::size_t>(s)], config.steps);
  }
  EXPECT_EQ(report.worker_restarts, 0);
  EXPECT_EQ(report.dropped_gradients, 0);
  EXPECT_GT(report.comm_bytes, 0u);
  EXPECT_GT(report.sim_seconds, 0.0);
  EXPECT_FALSE(report.gpu_model.empty());
}

TEST(DistTrain, ParamServerStalenessZeroMatchesReferenceBitwise) {
  co::Nautilus bed(small_bed());
  auto config = small_config();
  config.sync = ml::DistTrainConfig::Sync::ParamServer;
  ml::DistTrainer trainer(*bed.kube, config);
  const auto report = run_to_completion(bed, trainer);
  const auto reference = ml::reference_large_batch(config);

  expect_bitwise_equal(report.losses, reference.losses);
  EXPECT_EQ(report.hash, reference.hash);
  EXPECT_EQ(report.applied_updates, config.steps);
  EXPECT_EQ(report.dropped_gradients, 0);
}

TEST(DistTrain, RingAndParamServerAgreeButPayDifferentTraffic) {
  const auto config = small_config();
  auto ps_config = config;
  ps_config.sync = ml::DistTrainConfig::Sync::ParamServer;

  co::Nautilus ring_bed(small_bed());
  ml::DistTrainer ring(*ring_bed.kube, config);
  const auto ring_report = run_to_completion(ring_bed, ring);

  co::Nautilus ps_bed(small_bed());
  ml::DistTrainer ps(*ps_bed.kube, ps_config);
  const auto ps_report = run_to_completion(ps_bed, ps);

  EXPECT_EQ(ring_report.hash, ps_report.hash);
  expect_bitwise_equal(ring_report.losses, ps_report.losses);
  EXPECT_NE(ring_report.comm_bytes, ps_report.comm_bytes);
}

TEST(DistTrain, StaleGradientsDivergeFromSynchronousTrajectory) {
  auto sync_config = small_config();
  sync_config.sync = ml::DistTrainConfig::Sync::ParamServer;
  sync_config.steps = 16;
  auto stale_config = sync_config;
  stale_config.staleness = 4;

  co::Nautilus sync_bed(small_bed());
  ml::DistTrainer sync_trainer(*sync_bed.kube, sync_config);
  const auto sync_report = run_to_completion(sync_bed, sync_trainer);

  co::Nautilus stale_bed(small_bed());
  ml::DistTrainer stale_trainer(*stale_bed.kube, stale_config);
  const auto stale_report = run_to_completion(stale_bed, stale_trainer);

  // Every push applies individually: workers x steps updates, and the
  // trajectory is NOT the synchronous one (the async accuracy penalty the
  // bench quantifies as the staleness cliff).
  EXPECT_EQ(stale_report.applied_updates, stale_config.workers * stale_config.steps);
  EXPECT_EQ(sync_report.applied_updates, sync_config.steps);
  EXPECT_NE(stale_report.hash, sync_report.hash);
  // Shard conservation holds in async mode too.
  for (int s = 0; s < stale_config.workers; ++s) {
    EXPECT_EQ(stale_report.shard_contributions[static_cast<std::size_t>(s)],
              stale_config.steps);
  }
}

TEST(DistTrain, BackupWorkerMitigatesStraggler) {
  // Degrade the network of the machine hosting shard 0's primary worker.
  // Without a backup every synchronous step waits on the straggler's pushes;
  // with one redundant worker the healthy mirror wins the shard race.
  auto base = small_config();
  base.sync = ml::DistTrainConfig::Sync::ParamServer;
  base.steps = 10;
  base.flops_per_example = 1e12;        // ~0.3 s of GPU per microbatch
  base.sync_bytes = cu::mb(20);         // make the exchange network-bound

  auto run = [&](int backups, double* seconds, int* dropped, int* covered) {
    co::Nautilus bed(small_bed(/*sites=*/3));  // 6 FIONA8s: one pod per machine
    auto config = base;
    config.backup_workers = backups;
    ml::DistTrainer trainer(*bed.kube, config);
    const cs::EventPtr done = trainer.start();
    bed.sim.run(2.0);  // pods are placed and running by now
    const auto pods = bed.kube->list_pods(config.ns, {{"slot", "0"}});
    ASSERT_EQ(pods.size(), 1u);
    const chase::net::NodeId victim =
        bed.inventory.machine(pods.front()->node).net_node;
    for (chase::net::LinkId l : bed.net.links_at(victim)) {
      bed.net.set_link_bandwidth_factor(l, 0.02);
    }
    ASSERT_TRUE(cs::run_until(bed.sim, done));
    *seconds = trainer.report().sim_seconds;
    *dropped = trainer.report().dropped_gradients;
    *covered = 0;
    for (int slot : {0, config.workers}) {
      if (slot < static_cast<int>(trainer.report().shard_contributions.size())) {
        *covered += trainer.report()
                        .shard_contributions[static_cast<std::size_t>(slot)];
      }
    }
  };

  double slow_seconds = 0.0, fast_seconds = 0.0;
  int slow_dropped = 0, fast_dropped = 0;
  int slow_covered = 0, fast_covered = 0;
  run(0, &slow_seconds, &slow_dropped, &slow_covered);
  run(1, &fast_seconds, &fast_dropped, &fast_covered);

  EXPECT_LT(fast_seconds, slow_seconds);
  EXPECT_EQ(slow_dropped, 0);
  EXPECT_GT(fast_dropped, 0);  // the straggler's late arrivals were discarded
  // Shard 0 is applied exactly `steps` times whether one slot or two fed it.
  EXPECT_EQ(slow_covered, base.steps);
  EXPECT_EQ(fast_covered, base.steps);
}

TEST(DistTrain, ChaosKillMidEpochHealsBitIdentically) {
  auto config = small_config();
  config.steps = 16;
  // ~1 s of GPU per microbatch so the kill lands mid-epoch, not after the
  // run has already finished.
  config.flops_per_example = 3.3e12;

  co::Nautilus clean_bed(small_bed());
  ml::DistTrainer clean(*clean_bed.kube, config);
  const auto clean_report = run_to_completion(clean_bed, clean);

  co::Nautilus bed(small_bed());
  ml::DistTrainer trainer(*bed.kube, config);
  ch::ChaosPlan plan;
  plan.kill_pods(/*at=*/6.0, config.ns,
                 {{"app", "disttrain"}, {"role", "worker"}}, /*fraction=*/0.5);
  ch::ChaosInjector injector(bed.sim, bed.net, bed.inventory, plan, bed.kube.get());
  injector.arm();
  const auto report = run_to_completion(bed, trainer);

  EXPECT_EQ(injector.report().pods_killed, 2);
  EXPECT_GE(report.worker_restarts, 1);
  // Healing is invisible to the math: same losses, same weights, same hash,
  // and every (shard, step) microbatch applied exactly once.
  expect_bitwise_equal(report.losses, clean_report.losses);
  EXPECT_EQ(report.hash, clean_report.hash);
  const int total = std::accumulate(report.shard_contributions.begin(),
                                    report.shard_contributions.end(), 0);
  EXPECT_EQ(total, config.workers * config.steps);
  // ...but not to the clock: restarted pods cost real simulated time.
  EXPECT_GT(report.sim_seconds, clean_report.sim_seconds);
}

TEST(DistTrain, WallClockShrinksWithWorkerCountAtFixedBatch) {
  // Strong scaling: total examples fixed, so more workers means fewer
  // sequential steps of the same per-worker microbatch cost.
  const int total_examples = 32;
  double seconds[2] = {0.0, 0.0};
  int idx = 0;
  for (int workers : {1, 4}) {
    co::Nautilus bed(small_bed());
    auto config = small_config();
    config.workers = workers;
    config.steps = total_examples / workers;
    config.flops_per_example = 1e12;
    ml::DistTrainer trainer(*bed.kube, config);
    const auto report = run_to_completion(bed, trainer);
    EXPECT_EQ(report.applied_updates, config.steps);
    seconds[idx++] = report.sim_seconds;
  }
  EXPECT_LT(seconds[1], seconds[0]);
}
