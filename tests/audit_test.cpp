/// \file audit_test.cpp
/// The invariant-audit framework (util/check.hpp) and each subsystem's
/// check_invariants(): the check macros and their level gating, the
/// Simulation checkpoint machinery, and one dedicated audit scenario per
/// subsystem (sim, net, redis, ceph, kube) that runs busy state at audit
/// level 2 and demands a clean bill of health — plus detection tests showing
/// a violated invariant actually reaches the failure handler.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ceph/ceph.hpp"
#include "core/connect_workflow.hpp"
#include "core/nautilus.hpp"
#include "kube/cluster.hpp"
#include "net/network.hpp"
#include "redis/redis.hpp"
#include "sim/event.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace ck = chase::kube;
namespace cc = chase::cluster;
namespace ce = chase::ceph;
namespace cn = chase::net;
namespace cr = chase::redis;
namespace cs = chase::sim;
namespace cu = chase::util;

namespace {

/// Capture check failures instead of aborting; restores the previous handler
/// (and failure-count-visible state) on destruction.
struct CaptureFailures {
  std::vector<cu::CheckContext> failures;
  cu::CheckFailureHandler prev;
  CaptureFailures() {
    prev = cu::set_check_failure_handler(
        [this](const cu::CheckContext& ctx) { failures.push_back(ctx); });
  }
  ~CaptureFailures() { cu::set_check_failure_handler(std::move(prev)); }
};

struct ScopedAuditLevel {
  int prev;
  explicit ScopedAuditLevel(int level) : prev(cu::set_audit_level(level)) {}
  ~ScopedAuditLevel() { cu::set_audit_level(prev); }
};

// --- the macros and level gating ------------------------------------------------

TEST(CheckFramework, AssertFiresRegardlessOfLevel) {
  CaptureFailures cap;
  ScopedAuditLevel lvl(0);
  CHASE_ASSERT(1 + 1 == 2);
  EXPECT_TRUE(cap.failures.empty());
  CHASE_ASSERT(false, "forced");
  ASSERT_EQ(cap.failures.size(), 1u);
  EXPECT_STREQ(cap.failures[0].kind, "CHASE_ASSERT");
  EXPECT_EQ(cap.failures[0].message, "forced");
  EXPECT_NE(cap.failures[0].line, 0);
}

TEST(CheckFramework, InvariantGatedByLevel) {
  CaptureFailures cap;
  {
    ScopedAuditLevel off(0);
    CHASE_INVARIANT(false, "must be skipped at level 0");
    EXPECT_TRUE(cap.failures.empty());
  }
  {
    ScopedAuditLevel on(1);
    CHASE_INVARIANT(false, "caught at level 1");
    EXPECT_EQ(cap.failures.size(), 1u);
  }
}

TEST(CheckFramework, AuditRequiresLevelTwo) {
  CaptureFailures cap;
  {
    ScopedAuditLevel one(1);
    CHASE_AUDIT(false, "expensive check skipped at level 1");
    EXPECT_TRUE(cap.failures.empty());
  }
  {
    ScopedAuditLevel two(2);
    CHASE_AUDIT(false, "expensive check runs at level 2");
    ASSERT_EQ(cap.failures.size(), 1u);
    EXPECT_STREQ(cap.failures[0].kind, "CHASE_AUDIT");
  }
}

TEST(CheckFramework, FailureCountIncrements) {
  CaptureFailures cap;
  const auto before = cu::check_failure_count();
  CHASE_ASSERT(false);
  CHASE_ASSERT(false);
  EXPECT_EQ(cu::check_failure_count(), before + 2);
}

// --- Simulation: checkpoint machinery + heap invariants -------------------------

TEST(SimAudit, HooksFireDuringRunAndOnDemand) {
  cs::Simulation sim;
  int fired = 0;
  const auto id = sim.add_audit_hook([&fired] { ++fired; });
  EXPECT_EQ(sim.audit_hook_count(), 1u);

  sim.set_audit_interval(8);
  for (int i = 0; i < 100; ++i) sim.schedule(i * 0.1, [] {});
  sim.run();
  // 100 events at interval 8, plus the final quiescent checkpoint.
  EXPECT_GE(fired, 12);

  const int after_run = fired;
  sim.audit_now();
  EXPECT_EQ(fired, after_run + 1);

  sim.remove_audit_hook(id);
  EXPECT_EQ(sim.audit_hook_count(), 0u);
  sim.audit_now();
  EXPECT_EQ(fired, after_run + 1);
}

TEST(SimAudit, CheckInvariantsCleanOnBusyHeap) {
  CaptureFailures cap;
  ScopedAuditLevel lvl(2);
  cs::Simulation sim;
  for (int i = 0; i < 50; ++i) sim.schedule(i * 0.5, [] {});
  sim.check_invariants();
  sim.run(10.0);
  sim.check_invariants();
  EXPECT_TRUE(cap.failures.empty());
}

TEST(SimAudit, FailingHookIsReportedAtCheckpoints) {
  CaptureFailures cap;
  ScopedAuditLevel lvl(1);
  cs::Simulation sim;
  // A subsystem whose invariant is broken: the checkpoint sweep must surface
  // it through the handler rather than silently continuing.
  sim.add_audit_hook([] { CHASE_INVARIANT(false, "corrupted subsystem state"); });
  sim.set_audit_interval(4);
  for (int i = 0; i < 16; ++i) sim.schedule(i * 1.0, [] {});
  sim.run();
  ASSERT_FALSE(cap.failures.empty());
  EXPECT_EQ(cap.failures[0].message, "corrupted subsystem state");
}

// --- Network ------------------------------------------------------------------

TEST(NetAudit, ConservationHoldsMidFlightAndAfterNodeFailure) {
  CaptureFailures cap;
  ScopedAuditLevel lvl(2);
  cs::Simulation sim;
  cn::Network net(sim);
  auto sw = net.add_node("switch");
  std::vector<cn::NodeId> hosts;
  for (int i = 0; i < 4; ++i) {
    hosts.push_back(net.add_node("h" + std::to_string(i)));
    net.add_link(hosts.back(), sw, cu::gbit_per_s(10), 1e-4);
  }
  std::vector<cn::TransferPtr> transfers;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i == j) continue;
      transfers.push_back(net.transfer(hosts[static_cast<std::size_t>(i)],
                                       hosts[static_cast<std::size_t>(j)], cu::gb(1)));
    }
  }
  sim.run(0.05);
  net.check_invariants();  // mid-flight: flows active, rates assigned
  net.set_node_up(hosts[3], false);
  net.check_invariants();  // failed node: its flows must be torn down cleanly
  sim.run();
  net.check_invariants();
  EXPECT_TRUE(cap.failures.empty());
}

// --- Redis --------------------------------------------------------------------

TEST(RedisAudit, BlpopDisciplineAndExpiryGenerationsHold) {
  CaptureFailures cap;
  ScopedAuditLevel lvl(2);
  cs::Simulation sim;
  cn::Network net(sim);
  cr::RedisServer server(sim);
  auto sw = net.add_node("switch");
  auto server_node = net.add_node("redis");
  auto client_node = net.add_node("worker");
  net.add_link(server_node, sw, cu::gbit_per_s(10), 1e-4);
  net.add_link(client_node, sw, cu::gbit_per_s(10), 1e-4);
  server.host_on(server_node);
  cr::RedisClient client(sim, net, server, client_node);

  // Park BLPOP waiters, then feed them; handoff must never leave a value
  // queued while a waiter is parked (the invariant check_invariants guards).
  static std::string out[4];
  static bool got[4];
  auto waiter = [](cr::RedisClient* c, int w) -> cs::Task {
    co_await c->blpop("queue", &out[w], &got[w]);
  };
  for (int w = 0; w < 4; ++w) sim.spawn(waiter(&client, w));
  sim.schedule(1.0, [&server] {
    for (int i = 0; i < 4; ++i) server.rpush("queue", "job-" + std::to_string(i));
  });
  server.set("session", "token");
  server.expire("session", 5.0);
  sim.set_audit_interval(1);  // audit at every event while waiters are parked
  sim.run();
  server.check_invariants();
  for (bool g : got) EXPECT_TRUE(g);
  EXPECT_TRUE(cap.failures.empty());
}

// --- Ceph ---------------------------------------------------------------------

TEST(CephAudit, PlacementAndAccountingHoldAcrossMachineFailure) {
  CaptureFailures cap;
  ScopedAuditLevel lvl(2);
  cs::Simulation sim;
  cn::Network net(sim);
  cc::Inventory inventory(net);
  auto sw = net.add_node("switch");
  auto client = net.add_node("client");
  net.add_link(client, sw, cu::gbit_per_s(40), 1e-4);
  ce::CephCluster::Options opts;
  auto ceph = std::make_unique<ce::CephCluster>(sim, net, inventory, nullptr, opts);
  std::vector<cc::MachineId> machines;
  for (int i = 0; i < 4; ++i) {
    auto name = "stor-" + std::to_string(i);
    auto nn = net.add_node(name);
    net.add_link(nn, sw, cu::gbit_per_s(40), 1e-4);
    machines.push_back(inventory.add(cc::storage_fiona(name, "UCSD", cu::tb(100)), nn));
    ceph->add_osd(machines.back());
  }
  ceph->create_pool("data");
  std::vector<ce::IoPtr> puts;
  for (int i = 0; i < 8; ++i) {
    puts.push_back(ceph->put_async(client, "data", "obj-" + std::to_string(i), cu::gb(2)));
  }
  sim.set_audit_interval(16);
  sim.run();
  for (const auto& p : puts) EXPECT_TRUE(p->ok);
  ceph->check_invariants();

  // Kill a machine mid-recovery churn: replicas must stay on distinct live
  // machines and used-bytes within capacity throughout.
  inventory.set_up(machines[0], false);
  sim.run(sim.now() + 50.0);
  ceph->check_invariants();
  inventory.set_up(machines[0], true);
  sim.run();
  ceph->check_invariants();
  EXPECT_TRUE(cap.failures.empty());
}

// --- Kube ---------------------------------------------------------------------

TEST(KubeAudit, SchedulingQuotaAndOwnerCountsHold) {
  CaptureFailures cap;
  ScopedAuditLevel lvl(2);
  cs::Simulation sim;
  cn::Network net(sim);
  cc::Inventory inventory(net);
  chase::mon::Registry metrics;
  auto sw = net.add_node("switch");
  auto kube = std::make_unique<ck::KubeCluster>(sim, net, inventory, &metrics);
  for (int i = 0; i < 3; ++i) {
    auto name = "fiona8-" + std::to_string(i);
    auto nn = net.add_node(name);
    net.add_link(nn, sw, cu::gbit_per_s(20), 1e-4);
    kube->register_node(inventory.add(cc::fiona8(name, "UCSD"), nn));
  }

  auto sleeper = [](double seconds) -> ck::Program {
    return [seconds](ck::PodContext& ctx) -> cs::Task {
      co_await ctx.sim().sleep(seconds);
    };
  };
  ck::PodSpec spec;
  ck::ContainerSpec c;
  c.requests = {2, cu::gb(4), 1};
  c.program = sleeper(20.0);
  spec.containers.push_back(std::move(c));

  for (int i = 0; i < 12; ++i) {
    auto r = kube->create_pod("default", "p" + std::to_string(i), spec);
    ASSERT_TRUE(r.ok()) << r.error;
  }
  sim.set_audit_interval(8);
  sim.run(5.0);
  kube->check_invariants();  // mid-run: some bound, some pending
  sim.run();
  kube->check_invariants();  // quiescent: all terminal, counters drained
  EXPECT_TRUE(cap.failures.empty());
}

// --- end to end: the paper workflow under full audits ---------------------------

TEST(WorkflowAudit, ConnectWorkflowRunsCleanAtLevelTwo) {
  CaptureFailures cap;
  ScopedAuditLevel lvl(2);
  chase::core::Nautilus bed;
  chase::core::ConnectWorkflowParams params;
  params.data_fraction = 0.002;
  params.inference_gpus = 8;
  chase::core::ConnectWorkflow cwf(bed, params);
  auto done = cwf.workflow().start(bed.sim);
  EXPECT_TRUE(chase::sim::run_until(bed.sim, done));
  bed.sim.audit_now();
  EXPECT_TRUE(cap.failures.empty());
}

}  // namespace
